// Package ringrobots is a production-quality Go implementation of
//
//	D'Angelo, Di Stefano, Navarra, Nisse, Suchan.
//	"A unified approach for different tasks on rings in robot-based
//	computing systems." IPPS 2013 (INRIA RR-8013).
//
// It provides the min-CORDA model of autonomous robots on anonymous
// rings (asynchronous Look-Compute-Move cycles, oblivious anonymous
// disoriented robots), the paper's unified two-phase algorithms for
// exclusive perpetual exploration, exclusive perpetual graph searching
// and gathering, verifiers certifying the perpetual properties, and a
// game solver mechanizing the paper's impossibility results.
//
// # Quick start
//
//	start, _ := ringrobots.RandomRigidConfig(rand.New(rand.NewSource(1)), 12, 6)
//	alg, _ := ringrobots.NewAlgorithm(ringrobots.Gathering, 12, 6)
//	world, _ := ringrobots.NewWorld(ringrobots.Gathering, start)
//	runner := ringrobots.NewRunner(world, alg)
//	runner.RunUntil((*ringrobots.World).Gathered, 100000)
//
// The facade re-exports the library's stable surface; the full API lives
// in the internal packages and is exercised by the examples/ directory.
package ringrobots

import (
	"math/rand"

	"ringrobots/internal/align"
	"ringrobots/internal/config"
	"ringrobots/internal/corda"
	"ringrobots/internal/core"
	"ringrobots/internal/enumerate"
	"ringrobots/internal/explore"
	"ringrobots/internal/feasibility"
	"ringrobots/internal/gather"
	"ringrobots/internal/mcsim"
	"ringrobots/internal/search"
)

// Task identifies one of the paper's three problems.
type Task = core.Task

// The three tasks of the unified approach.
const (
	Exploration = core.Exploration
	Searching   = core.Searching
	Gathering   = core.Gathering
)

// Config is a configuration: the set of occupied nodes of an anonymous
// ring (robot multiplicities live in the World).
type Config = config.Config

// View is a cyclic sequence of interval lengths as perceived by a robot.
type View = config.View

// CanonKey is the compact comparable canonical identity of a
// configuration class (equal keys ⇔ equivalent up to rotation and
// reflection). Use Config.CanonKey() to obtain one; it replaces string
// canonical keys in deduplication maps.
type CanonKey = config.CanonKey

// World is the simulator's ground truth of robot positions.
type World = corda.World

// Snapshot is what one robot perceives during Look.
type Snapshot = corda.Snapshot

// Decision is the outcome of a robot's Compute phase.
type Decision = corda.Decision

// Decisions.
const (
	Stay     = corda.Stay
	TowardLo = corda.TowardLo
	TowardHi = corda.TowardHi
	Either   = corda.Either
)

// Algorithm is an oblivious per-robot protocol.
type Algorithm = corda.Algorithm

// Runner executes atomic Look-Compute-Move cycles.
type Runner = corda.Runner

// AsyncRunner executes under full asynchrony with pending moves.
type AsyncRunner = corda.AsyncRunner

// Engine is the goroutine-per-robot CSP runtime.
type Engine = corda.Engine

// Verdict classifies parameters in the feasibility characterization.
type Verdict = core.Verdict

// Verdicts.
const (
	Solvable     = core.Solvable
	Impossible   = core.Impossible
	Open         = core.Open
	NoRigidStart = core.NoRigidStart
	Degenerate   = core.Degenerate
)

// NewConfig builds a configuration from occupied nodes.
func NewConfig(n int, occupied ...int) (Config, error) { return config.New(n, occupied...) }

// CStar returns the distinguished configuration C* (§2) targeted by the
// common first phase of all three algorithms.
func CStar(n, k int) (Config, error) { return config.CStar(n, k) }

// RandomRigidConfig draws a uniformly random rigid exclusive
// configuration — a valid starting point for every task.
func RandomRigidConfig(rng *rand.Rand, n, k int) (Config, error) {
	return enumerate.RandomRigid(rng, n, k, 100000)
}

// RigidConfigs enumerates every rigid exclusive configuration of k robots
// on an n-node ring up to rotation and reflection.
func RigidConfigs(n, k int) ([]Config, error) { return enumerate.RigidClasses(n, k) }

// NewAlgorithm returns the paper's algorithm for the task, validating the
// solvable parameter range (Theorems 6–8).
func NewAlgorithm(task Task, n, k int) (Algorithm, error) { return core.New(task, n, k) }

// NewWorld builds the world matching the task's capability model from a
// rigid starting configuration.
func NewWorld(task Task, c Config) (*World, error) { return core.NewWorld(task, c) }

// NewRunner wires a deterministic round-robin runner.
func NewRunner(w *World, alg Algorithm) *Runner { return corda.NewRunner(w, alg) }

// NewAsyncRunner wires a fully asynchronous runner with the given
// adversary.
func NewAsyncRunner(w *World, alg Algorithm, sched corda.AsyncScheduler) *AsyncRunner {
	return corda.NewAsyncRunner(w, alg, sched)
}

// NewRandomAsyncAdversary returns a seeded asynchronous adversary that
// holds pending moves with the given bias.
func NewRandomAsyncAdversary(seed int64, holdBias float64) corda.AsyncScheduler {
	return corda.NewRandomAsync(seed, holdBias)
}

// AlignTo runs the common phase 1 (Algorithm Align, §3) on an exclusive
// world until C* is reached, returning the number of moves.
func AlignTo(w *World, maxSteps int) (int, error) { return align.Run(w, maxSteps) }

// Gather runs the complete gathering algorithm to termination.
func Gather(w *World, maxSteps int) (int, error) { return gather.Run(w, maxSteps) }

// VerifyPerpetual certifies perpetual searching and exploration from a
// rigid start (see search.Verify for the methodology).
func VerifyPerpetual(c Config, alg Algorithm, budget int) (search.Report, error) {
	return search.Verify(c, alg, budget)
}

// CharacterizeSearching reproduces the paper's feasibility
// characterization of exclusive perpetual graph searching for (n, k).
func CharacterizeSearching(n, k int) (Verdict, string) { return core.CharacterizeSearching(n, k) }

// CharacterizeGathering reproduces Theorem 8's gathering range.
func CharacterizeGathering(n, k int) (Verdict, string) { return core.CharacterizeGathering(n, k) }

// NewExplorationTracker counts per-robot node visits on a world.
func NewExplorationTracker(w *World) *explore.Tracker { return explore.NewTracker(w) }

// NewContamination tracks mixed-search edge contamination on a world.
func NewContamination(w *World) *search.Contamination { return search.NewContamination(w) }

// TransitionGraph regenerates the configuration diagrams of Figures 4–9.
func TransitionGraph(n, k int) (*feasibility.TransitionGraph, error) {
	return feasibility.NewTransitionGraph(n, k)
}

// ProveSearchingImpossible runs the strategy-synthesis game solver for
// exclusive perpetual graph searching on (n, k); see package feasibility.
func ProveSearchingImpossible(n, k int) (feasibility.Result, error) {
	return feasibility.NewSolver(n, k).Solve()
}

// SimSpec describes a batched Monte Carlo workload: many independent
// fair-schedule samples of one algorithm from one starting
// configuration (see internal/corda's backend contract).
type SimSpec = corda.SimSpec

// SimReport is the deterministic aggregate of a Monte Carlo batch:
// outcome counts, gathering-time histogram, coverage and clearing
// statistics. Identical specs produce bit-identical reports at any
// worker count and on either backend.
type SimReport = corda.SimReport

// SimBackend runs a SimSpec to a SimReport.
type SimBackend = corda.Backend

// MonteCarloSpec assembles the SimSpec matching a task's capability
// model (the Monte Carlo analogue of NewWorld): exclusive lanes for the
// perpetual tasks, contamination tracking for searching, multiplicity
// detection and the gathered stop for gathering.
func MonteCarloSpec(task Task, start Config, samples, maxSteps int, seed uint64) (SimSpec, error) {
	return mcsim.SpecFor(task, start, samples, maxSteps, seed)
}

// NewBatchBackend returns the struct-of-arrays batch engine: thousands
// of lanes stepped in a tight allocation-free loop across a worker pool
// (workers 0 means GOMAXPROCS).
func NewBatchBackend(spec SimSpec, workers int) (*mcsim.Engine, error) {
	return mcsim.New(spec, workers)
}

// NewProofBackend returns the reference backend: the same workload
// driven one world at a time through AsyncRunner, bit-identical to the
// batch engine lane for lane.
func NewProofBackend(spec SimSpec) (*mcsim.ProofBackend, error) {
	return mcsim.NewProof(spec)
}
