module ringrobots

go 1.22
