// Package gather implements the gathering task (§5): all k robots must
// eventually occupy a single node and stay there. In the min-CORDA model
// this requires the local ("weak") multiplicity detection capability —
// without any multiplicity detection gathering on rings is impossible
// (Klasing, Markou, Pelc 2008), and local detection is the weakest
// variant.
//
// The algorithm (Fig. 14) is the paper's third use of the unified
// approach: phase 1 runs Align to reach C*; phase 2 repeatedly applies
// rule Contraction, collapsing the C*-type configuration one occupied
// node at a time onto a growing multiplicity; when only two nodes remain
// occupied, the unique robot that is not part of the multiplicity walks
// to it (Theorem 8: gathering of k > 2 robots on n > k+2 nodes from any
// rigid exclusive configuration).
package gather

import (
	"fmt"

	"ringrobots/internal/align"
	"ringrobots/internal/config"
	"ringrobots/internal/corda"
)

// Gathering is the per-robot algorithm of Fig. 14. It implements
// corda.Algorithm and requires a world with multiplicity detection
// enabled and exclusivity disabled.
type Gathering struct{}

// Name implements corda.Algorithm.
func (Gathering) Name() string { return "gathering" }

// Validate checks Theorem 8's parameter range: k > 2 robots on n > k+2
// nodes (with n = k+1 or k+2 every configuration is symmetric or
// periodic, so no rigid starting configuration exists).
func Validate(n, k int) error {
	if k <= 2 {
		return fmt.Errorf("gather: need k > 2 robots, got k=%d (k=2 is unsolvable on rings, k=1 trivial)", k)
	}
	if n <= k+2 {
		return fmt.Errorf("gather: need n > k+2, got n=%d, k=%d (no rigid configuration exists)", n, k)
	}
	return nil
}

// Compute implements corda.Algorithm.
func (Gathering) Compute(s corda.Snapshot) corda.Decision {
	j := s.OccupiedNodes()
	switch {
	case j == 1:
		// Gathered; robots on the multiplicity stay forever.
		return corda.Stay
	case j == 2:
		// Final phase: the robot that is alone moves towards the other
		// occupied node; robots composing the multiplicity do not move.
		if s.Multiplicity {
			return corda.Stay
		}
		if s.Symmetric() {
			// Two occupied nodes at antipodal distance: unreachable from
			// C*-type contraction; defensively let the adversary choose.
			return corda.Either
		}
		return corda.TowardLo
	default:
		c, err := config.FromIntervals(0, s.Lo)
		if err != nil {
			return corda.Stay
		}
		if isType, _ := c.IsCStarType(); isType {
			// Rule Contraction: robots on the first node of the sequence
			// (the supermin anchor) move towards the second. The C*-type
			// configuration is rigid, so exactly the robots at the anchor
			// node see their Lo view equal to the supermin.
			if s.Lo.Equal(c.SuperminView()) {
				return corda.TowardLo
			}
			return corda.Stay
		}
		// Phase 1: not yet C*-type — run Align on the reconstruction we
		// already built (its supermin and classification are memoized, so
		// the C*-type test above costs nothing extra).
		return align.DecideReconstructed(c)
	}
}

// Run drives a world to the gathered state under the given runner budget,
// with atomic round-robin scheduling. The world must be non-exclusive
// with multiplicity detection enabled (as built by NewWorld).
func Run(w *corda.World, maxSteps int) (moves int, err error) {
	r := corda.NewRunner(w, Gathering{})
	reason, err := r.RunUntil((*corda.World).Gathered, maxSteps)
	if err != nil {
		return r.Moves(), err
	}
	if reason != corda.StopCondition {
		return r.Moves(), fmt.Errorf("gather: stopped with reason %v before gathering (world %v)", reason, w)
	}
	return r.Moves(), nil
}

// NewWorld builds a gathering world from an exclusive rigid starting
// configuration: multiplicities allowed, local multiplicity detection on.
func NewWorld(c config.Config) (*corda.World, error) {
	if err := Validate(c.N(), c.K()); err != nil {
		return nil, err
	}
	if !c.IsRigid() {
		return nil, fmt.Errorf("gather: starting configuration %v is not rigid", c)
	}
	w := corda.FromConfig(c, false)
	w.EnableMultiplicityDetection()
	return w, nil
}
