package gather

import (
	"math/rand"
	"testing"

	"ringrobots/internal/config"
	"ringrobots/internal/corda"
	"ringrobots/internal/enumerate"
)

func TestValidate(t *testing.T) {
	if err := Validate(10, 2); err == nil {
		t.Error("accepted k=2")
	}
	if err := Validate(7, 5); err == nil {
		t.Error("accepted n=k+2")
	}
	if err := Validate(6, 5); err == nil {
		t.Error("accepted n=k+1")
	}
	if err := Validate(8, 5); err != nil {
		t.Errorf("rejected valid (k=5, n=8): %v", err)
	}
	if err := Validate(6, 3); err != nil {
		t.Errorf("rejected valid (k=3, n=6): %v", err)
	}
}

func TestNewWorldRejectsNonRigid(t *testing.T) {
	sym := config.MustNew(10, 0, 1, 3, 7, 9)
	if _, err := NewWorld(sym); err == nil {
		t.Error("accepted symmetric start")
	}
	if _, err := NewWorld(config.MustNew(10, 0, 5)); err == nil {
		t.Error("accepted k=2")
	}
}

func TestContractionFromCStar(t *testing.T) {
	// From C*(10,5) the contraction collapses {0,1,2,3,5} step by step:
	// after each full contraction the configuration stays C*-type with
	// one fewer occupied node.
	c, err := config.CStar(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(c)
	if err != nil {
		t.Fatal(err)
	}
	r := corda.NewRunner(w, Gathering{})
	seenJ := map[int]bool{5: true}
	for step := 0; step < 4000 && !w.Gathered(); step++ {
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
		cfg := w.Config()
		if cfg.K() >= 3 {
			if ok, j := cfg.IsCStarType(); !ok {
				t.Fatalf("intermediate %v not C*-type", cfg)
			} else {
				seenJ[j] = true
			}
		}
	}
	if !w.Gathered() {
		t.Fatal("did not gather")
	}
	for j := 3; j <= 5; j++ {
		if !seenJ[j] {
			t.Errorf("contraction skipped j=%d", j)
		}
	}
	// All robots on one node, and that node holds all k robots.
	if w.CountAt(w.Position(0)) != 5 {
		t.Errorf("gathered node holds %d robots", w.CountAt(w.Position(0)))
	}
}

func TestTheorem8Exhaustive(t *testing.T) {
	// E7: gathering succeeds from every rigid configuration with
	// 2 < k < n−2, n ≤ 12.
	total := 0
	for n := 6; n <= 11; n++ {
		for k := 3; k < n-2; k++ {
			classes, err := enumerate.RigidClasses(n, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range classes {
				w, err := NewWorld(c)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := Run(w, 100*n*n); err != nil {
					t.Fatalf("n=%d k=%d from %v: %v", n, k, c, err)
				}
				total++
			}
		}
	}
	if total < 100 {
		t.Fatalf("exhaustive space suspiciously small: %d", total)
	}
	t.Logf("gathered from %d rigid configurations", total)
}

func TestTheorem8LargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{20, 50, 100} {
		for trial := 0; trial < 3; trial++ {
			// Cap k: the per-Look cost grows with k² and the largest rings
			// are exercised for their n, not their k.
			k := 3 + rng.Intn(10)
			c, err := enumerate.RandomRigid(rng, n, k, 10000)
			if err != nil {
				t.Fatal(err)
			}
			w, err := NewWorld(c)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(w, 200*n*n); err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
		}
	}
}

func TestGatheringUnderAsyncAdversary(t *testing.T) {
	// Gathering must survive arbitrary asynchrony: pending moves held
	// across other robots' full cycles, stale snapshots in the
	// contraction pile, adversarial Either resolution.
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 15; trial++ {
		n := 7 + rng.Intn(8)
		k := 3 + rng.Intn(n-6)
		c, err := enumerate.RandomRigid(rng, n, k, 5000)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorld(c)
		if err != nil {
			t.Fatal(err)
		}
		as := corda.NewAsyncRunner(w, Gathering{}, corda.NewRandomAsync(int64(trial*7+1), 0.35))
		reason, err := as.RunUntil((*corda.World).Gathered, 3000*n)
		if err != nil {
			t.Fatalf("trial %d (n=%d k=%d from %v): %v", trial, n, k, c, err)
		}
		if reason != corda.StopCondition {
			t.Fatalf("trial %d: stopped %v before gathering (world %v, pending %d)",
				trial, reason, w, as.PendingCount())
		}
	}
}

func TestGatheringOnConcurrentEngine(t *testing.T) {
	// The CSP engine (one goroutine per robot) must gather too — E9.
	for seed := int64(0); seed < 5; seed++ {
		c, err := enumerate.RandomRigid(rand.New(rand.NewSource(seed+100)), 12, 5, 5000)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorld(c)
		if err != nil {
			t.Fatal(err)
		}
		e := &corda.Engine{
			World:     w,
			Algorithm: Gathering{},
			Budget:    200000,
			Seed:      seed,
			Stop:      (*corda.World).Gathered,
		}
		if _, _, err := e.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !w.Gathered() {
			t.Fatalf("seed %d: engine stopped without gathering: %v", seed, w)
		}
	}
}

func TestGatheredStateIsStable(t *testing.T) {
	// Once gathered, nobody ever moves again (the task demands the robots
	// remain on the node).
	w, err := corda.NewWorld(9, []int{4, 4, 4, 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	w.EnableMultiplicityDetection()
	movers := corda.MoverSet(w, Gathering{})
	if len(movers) != 0 {
		t.Fatalf("robots %v want to move after gathering", movers)
	}
}

func TestFinalPhaseSingleRobotWalks(t *testing.T) {
	// Two occupied nodes: multiplicity of 3 at node 0, singleton at 4.
	// Only the singleton moves, and it walks the short way.
	w, err := corda.NewWorld(10, []int{0, 0, 0, 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	w.EnableMultiplicityDetection()
	movers := corda.MoverSet(w, Gathering{})
	if len(movers) != 1 || w.Position(movers[0]) != 4 {
		t.Fatalf("movers = %v, want only the singleton at node 4", movers)
	}
	r := corda.NewRunner(w, Gathering{})
	if _, err := r.RunUntil((*corda.World).Gathered, 500); err != nil {
		t.Fatal(err)
	}
	if !w.Gathered() || w.Position(0) != 0 {
		t.Fatalf("gathering finished at %v, want everyone at node 0", w)
	}
	// The singleton walked 4→3→2→1→0: exactly 4 moves.
	if r.Moves() != 4 {
		t.Errorf("final phase took %d moves, want 4", r.Moves())
	}
}

func TestMultiplicityStragglersCatchUp(t *testing.T) {
	// Async scenario engineered at the contraction pile: several robots
	// share the anchor node; some execute late. Their stale decisions must
	// still be correct.
	c, err := config.CStar(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(c)
	if err != nil {
		t.Fatal(err)
	}
	// Robot ids follow node order: C*(9,4) occupies {0,1,2,4}; robot 0 is
	// the anchor mover. Let it look, hold the move, let everyone else
	// cycle (they all stay), then release.
	as := corda.NewAsyncRunner(w, Gathering{}, &corda.Script{Actions: []corda.Action{
		{Kind: corda.ActLookCompute, Robot: 0},
		{Kind: corda.ActLookCompute, Robot: 1},
		{Kind: corda.ActLookCompute, Robot: 2},
		{Kind: corda.ActLookCompute, Robot: 3},
		{Kind: corda.ActMove, Robot: 0},
	}})
	for i := 0; i < 5; i++ {
		if _, err := as.Step(); err != nil {
			t.Fatal(err)
		}
	}
	cfg := w.Config()
	if ok, j := cfg.IsCStarType(); !ok || j != 3 {
		t.Fatalf("after delayed contraction: %v (type=%v, j=%d)", cfg, ok, j)
	}
}
