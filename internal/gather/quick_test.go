package gather

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ringrobots/internal/corda"
	"ringrobots/internal/enumerate"
)

// Property-based checks of the gathering phase structure.

func TestQuickGatheringInvariants(t *testing.T) {
	// From any rigid start: the run gathers; the robot count never
	// changes; once the configuration becomes C*-type it stays C*-type
	// (or smaller) until only two, then one, node remains occupied.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 7 + rng.Intn(14)
		k := 3 + rng.Intn(n-5)
		if k >= n-2 {
			k = n - 3
		}
		start, err := enumerate.RandomRigid(rng, n, k, 50000)
		if err != nil {
			return true // no rigid configuration for this (n,k)
		}
		w, err := NewWorld(start)
		if err != nil {
			return false
		}
		r := corda.NewRunner(w, Gathering{})
		everCStarType := false
		for step := 0; step < 400*n && !w.Gathered(); step++ {
			if _, err := r.Step(); err != nil {
				return false
			}
			cfg := w.Config()
			if isType, _ := cfg.IsCStarType(); isType {
				everCStarType = true
			} else if everCStarType && cfg.K() > 2 {
				// Once contraction starts, the configuration must remain
				// C*-type until the two-node endgame.
				return false
			}
		}
		return w.Gathered() && w.K() == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickGatheredNodeHostsAllRobots(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 7 + rng.Intn(10)
		k := 3 + rng.Intn(3)
		if k >= n-2 {
			return true
		}
		start, err := enumerate.RandomRigid(rng, n, k, 50000)
		if err != nil {
			return true
		}
		w, err := NewWorld(start)
		if err != nil {
			return false
		}
		if _, err := Run(w, 500*n*n); err != nil {
			return false
		}
		return w.CountAt(w.Position(0)) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickNoMoveAfterGathering(t *testing.T) {
	// Stability: after gathering, arbitrary further activations (any
	// scheduler) never move anyone.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(10)
		node := rng.Intn(n)
		k := 3 + rng.Intn(4)
		positions := make([]int, k)
		for i := range positions {
			positions[i] = node
		}
		w, err := corda.NewWorld(n, positions, false)
		if err != nil {
			return false
		}
		w.EnableMultiplicityDetection()
		r := corda.NewRunner(w, Gathering{})
		for i := 0; i < 3*k; i++ {
			moved, err := r.Step()
			if err != nil || moved {
				return false
			}
		}
		return w.Gathered()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
