package corda

import (
	"testing"

	"ringrobots/internal/config"
	"ringrobots/internal/ring"
)

// These tests replay, as executable adversaries, the scheduling arguments
// the paper's impossibility proofs are built on. They do not prove the
// theorems (the feasibility package's game solver does); they demonstrate
// that the model machinery can express each proof's adversary verbatim.

// TestTheorem2DiametralTrap: §4.2, Theorem 2, even n. Two robots in a
// diametral configuration running any "walk somewhere" algorithm are
// scheduled so both look before either moves; if the algorithm moves them
// symmetrically, the configuration stays diametral forever.
func TestTheorem2DiametralTrap(t *testing.T) {
	n := 8
	// A natural 2-robot strategy: walk along your smaller side; when the
	// views are equal (diametral), pick "either" and let the adversary
	// choose.
	walker := AlgorithmFunc{Label: "naive-2-searcher", Fn: func(s Snapshot) Decision {
		if s.Lo[0] == 0 {
			return Stay // adjacent: hold position
		}
		if s.Symmetric() {
			return Either
		}
		return TowardLo
	}}
	w := FromConfig(config.MustNew(n, 0, 4), true) // diametral on an 8-ring
	if !w.Ring().Diametral(0, 4) {
		t.Fatal("fixture not diametral")
	}
	// Adversary: both robots look (computing Either), then both moves
	// execute — resolved so the robots rotate the same way, keeping the
	// configuration diametral. Repeat.
	script := &Script{}
	for i := 0; i < 10; i++ {
		script.Actions = append(script.Actions,
			Action{Kind: ActLookCompute, Robot: 0},
			Action{Kind: ActLookCompute, Robot: 1},
			Action{Kind: ActMove, Robot: 0},
			Action{Kind: ActMove, Robot: 1},
		)
		script.Either = append(script.Either, ring.CW, ring.CW)
	}
	r := NewAsyncRunner(w, walker, script)
	for i := 0; i < len(script.Actions); i++ {
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	u, v := w.Position(0), w.Position(1)
	if !w.Ring().Diametral(u, v) {
		t.Fatalf("adversary failed to maintain the diametral trap: robots at %d,%d", u, v)
	}
}

// TestLemma7SymmetricScheduling: §4.2, Lemma 7. An even number of robots
// in a configuration symmetric about an axis through an empty node v, on
// an odd ring: scheduling mirror robots simultaneously preserves the
// axis, so v can never be occupied without a collision.
func TestLemma7SymmetricScheduling(t *testing.T) {
	n := 9
	// Axis through empty node 0 (and the edge across). Mirror pairs:
	// (1,8), (3,6). The configuration {1,3,6,8} is symmetric under
	// u ↦ −u mod 9.
	c := config.MustNew(n, 1, 3, 6, 8)
	if !c.IsSymmetric() || c.IsPeriodic() {
		t.Fatal("fixture must be symmetric and aperiodic")
	}
	// A protocol that marches robots toward the axis node 0.
	marcher := AlgorithmFunc{Label: "march-to-axis", Fn: func(s Snapshot) Decision {
		if s.Symmetric() {
			return Either
		}
		return TowardLo
	}}
	w := FromConfig(c, true)
	// The adversary alternates the mirror pair (robots 0 and 3 sit at
	// nodes 1 and 8): both look, then both move. Their mirrored views
	// force mirrored decisions; if both ever target node 0 the second
	// move is a collision — which is precisely Lemma 7's argument that
	// the task is unachievable, not a model bug.
	script := &Script{Actions: []Action{
		{Kind: ActLookCompute, Robot: 0},
		{Kind: ActLookCompute, Robot: 3},
		{Kind: ActMove, Robot: 0},
		{Kind: ActMove, Robot: 3},
	}}
	r := NewAsyncRunner(w, marcher, script)
	var err error
	for i := 0; i < len(script.Actions) && err == nil; i++ {
		_, err = r.Step()
	}
	if err == nil {
		// No collision this round: the mirror property must persist.
		pos := w.Positions()
		mirror := map[int]bool{}
		for _, u := range pos {
			mirror[(n-u)%n] = true
		}
		for _, u := range pos {
			if !mirror[u] {
				t.Fatalf("mirror symmetry broken: positions %v", pos)
			}
		}
	}
	// Either outcome (collision or preserved symmetry) realizes the
	// lemma's dichotomy; reaching here means the machinery expressed it.
}

// TestTheorem4PendingMoveTrap: §4.2, Theorem 4 (k = n−2) uses the
// signature asynchronous trick: one of two symmetric robots looks and
// computes, its move is held pending, the twin then acts, and releasing
// the pending move causes a collision. We reproduce the mechanism.
func TestTheorem4PendingMoveTrap(t *testing.T) {
	n := 6
	// k = n−2 = 4: occupied {0,1,3,4}, holes at 2 and 5. Symmetric.
	c := config.MustNew(n, 0, 1, 3, 4)
	if !c.IsSymmetric() {
		t.Fatal("fixture must be symmetric")
	}
	// Protocol: robots adjacent to a hole move into it (choosing the Lo
	// side; symmetric robots let the adversary pick).
	filler := AlgorithmFunc{Label: "hole-filler", Fn: func(s Snapshot) Decision {
		if s.Lo[0] > 0 {
			if s.Symmetric() {
				return Either
			}
			return TowardLo
		}
		return Stay
	}}
	w := FromConfig(c, true)
	// Robots 1 (node 1) and 2 (node 3) both border hole 2. The adversary
	// lets robot 1 look (deciding to enter the hole), HOLDS the move,
	// lets robot 2 look and move into the hole first, then releases
	// robot 1's stale move — a collision on node 2.
	script := &Script{
		Actions: []Action{
			{Kind: ActLookCompute, Robot: 1},
			{Kind: ActLookCompute, Robot: 2},
			{Kind: ActMove, Robot: 2},
			{Kind: ActMove, Robot: 1},
		},
		Either: []ring.Direction{ring.CW, ring.CCW},
	}
	r := NewAsyncRunner(w, filler, script)
	var err error
	steps := 0
	for steps < len(script.Actions) && err == nil {
		_, err = r.Step()
		steps++
	}
	if err == nil {
		t.Fatalf("pending-move trap did not produce a collision (world %v)", w)
	}
}
