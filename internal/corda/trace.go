package corda

import (
	"fmt"
	"strings"
)

// TraceRecorder is a MoveObserver that keeps executed moves (up to Cap,
// 0 = unbounded) together with the configuration after each move.
type TraceRecorder struct {
	Cap    int
	Events []MoveEvent
	Keys   []string // world StateKey after each event

	dropped int
}

// ObserveMove implements MoveObserver.
func (t *TraceRecorder) ObserveMove(ev MoveEvent, w *World) {
	if t.Cap > 0 && len(t.Events) >= t.Cap {
		t.dropped++
		return
	}
	t.Events = append(t.Events, ev)
	t.Keys = append(t.Keys, w.StateKey())
}

// Dropped returns the number of events discarded past the cap.
func (t *TraceRecorder) Dropped() int { return t.dropped }

// String renders a compact trace like "r2:5→6 r0:0→7 …".
func (t *TraceRecorder) String() string {
	var b strings.Builder
	for i, ev := range t.Events {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "r%d:%d→%d", ev.Robot, ev.From, ev.To)
	}
	if t.dropped > 0 {
		fmt.Fprintf(&b, " …(+%d)", t.dropped)
	}
	return b.String()
}

// CycleDetector finds the first recurrence of a state key sequence —
// used to certify that a perpetual algorithm has entered its steady-state
// loop and to measure the loop's period.
type CycleDetector struct {
	seen  map[string]int
	Start int // index of the first state of the detected cycle
	Len   int // cycle length (0 until detected)
	count int
}

// NewCycleDetector returns an empty detector.
func NewCycleDetector() *CycleDetector {
	return &CycleDetector{seen: make(map[string]int)}
}

// Offer records a state key and reports whether a cycle just closed.
func (c *CycleDetector) Offer(key string) bool {
	if c.Len > 0 {
		return true
	}
	if at, ok := c.seen[key]; ok {
		c.Start = at
		c.Len = c.count - at
		return true
	}
	c.seen[key] = c.count
	c.count++
	return false
}

// Detected reports whether a cycle has been found.
func (c *CycleDetector) Detected() bool { return c.Len > 0 }
