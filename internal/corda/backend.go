package corda

import (
	"fmt"
	"math/bits"

	"ringrobots/internal/config"
	"ringrobots/internal/ring"
)

// This file defines the backend contract that separates the package's
// proof-oriented engines (Runner / AsyncRunner / Engine: one world at a
// time, built for verification and trace extraction) from
// throughput-oriented ones (internal/mcsim: thousands of struct-of-array
// worlds stepped in a tight loop). A Backend consumes a SimSpec — a
// Monte Carlo workload over independent fair-schedule samples — and
// produces a SimReport of deterministic aggregate statistics.
//
// The determinism contract: a SimSpec fully determines every lane. Lane
// i's schedule randomness is an independent splittable stream derived
// from (Seed, i), so any two backends — or the same backend at any
// worker count — that honor the contract produce identical reports.

// SimSpec describes a batch of independent schedule samples: every lane
// starts from Start, runs Algorithm under a uniformly random fair
// asynchronous schedule (each scheduler tick activates a uniformly
// chosen robot: robots holding a pending move execute it, others perform
// Look-Compute), and stops on gathering, a collision, or the MaxSteps
// tick budget.
type SimSpec struct {
	// Start is the shared starting configuration (one robot per occupied
	// node; rings up to config.MaxMaskRing nodes).
	Start config.Config
	// Algorithm is the per-robot protocol; it must be a pure function of
	// the Snapshot (the corda.Algorithm contract), which is what lets
	// batch backends memoize decisions per perception class.
	Algorithm Algorithm
	// Exclusive enforces the exclusivity property: a move onto an
	// occupied node ends the lane with LaneCollision.
	Exclusive bool
	// Multiplicity enables the local multiplicity bit in perceptions
	// (required by gathering).
	Multiplicity bool
	// StopOnGathered ends a lane once all robots share one node and no
	// move is pending (the gathering task's goal test).
	StopOnGathered bool
	// TrackClearing maintains the mixed graph-searching contamination
	// state (§4.1) per lane and reports clearing statistics.
	TrackClearing bool
	// Samples is the number of independent lanes.
	Samples int
	// MaxSteps is the per-lane scheduler-tick budget (each tick is one
	// Look-Compute or one Move half-cycle).
	MaxSteps int
	// Seed derives every lane's independent randomness stream.
	Seed uint64
}

// Validate reports whether the spec is runnable.
func (s SimSpec) Validate() error {
	if s.Algorithm == nil {
		return fmt.Errorf("corda: sim spec needs an algorithm")
	}
	if s.Start.N() == 0 {
		return fmt.Errorf("corda: sim spec needs a starting configuration")
	}
	if s.Start.N() > config.MaxMaskRing {
		return fmt.Errorf("corda: ring size %d exceeds the %d-node batch limit", s.Start.N(), config.MaxMaskRing)
	}
	if s.Samples <= 0 {
		return fmt.Errorf("corda: sim spec needs Samples > 0, got %d", s.Samples)
	}
	if s.MaxSteps <= 0 {
		return fmt.Errorf("corda: sim spec needs MaxSteps > 0, got %d", s.MaxSteps)
	}
	return nil
}

// LaneOutcome is how one lane ended.
type LaneOutcome uint8

const (
	// LaneBudget: the tick budget elapsed without reaching a goal state.
	LaneBudget LaneOutcome = iota
	// LaneGathered: all robots on one node with no pending move.
	LaneGathered
	// LaneCollision: the algorithm moved a robot onto an occupied node
	// in exclusive mode (a model violation; the lane ends immediately).
	LaneCollision

	numLaneOutcomes
)

func (o LaneOutcome) String() string {
	switch o {
	case LaneBudget:
		return "budget"
	case LaneGathered:
		return "gathered"
	case LaneCollision:
		return "collision"
	}
	return fmt.Sprintf("LaneOutcome(%d)", int(o))
}

// Histogram is a fixed-size power-of-two-bucket histogram: a value v is
// counted in bucket bits.Len64(v), so bucket b holds values in
// [2^(b−1), 2^b). Fixed size keeps SimReport comparable with ==, the
// property the determinism tests pin.
type Histogram struct {
	Buckets [40]uint64
}

// Add counts v.
func (h *Histogram) Add(v uint64) {
	b := bits.Len64(v)
	if b >= len(h.Buckets) {
		b = len(h.Buckets) - 1
	}
	h.Buckets[b]++
}

// Total returns the number of counted values.
func (h Histogram) Total() uint64 {
	var t uint64
	for _, c := range h.Buckets {
		t += c
	}
	return t
}

// String renders the non-empty buckets compactly.
func (h Histogram) String() string {
	s := "{"
	first := true
	for b, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if !first {
			s += " "
		}
		first = false
		lo := uint64(0)
		if b > 0 {
			lo = uint64(1) << uint(b-1)
		}
		s += fmt.Sprintf("<%d:%d", lo*2, c)
	}
	return s + "}"
}

// SimReport aggregates a batch of lanes. All fields are fixed-size
// value types, so two reports compare with == — the bit-identical
// determinism contract across worker counts and backends.
type SimReport struct {
	// Samples is the number of lanes simulated.
	Samples int
	// Steps is the total number of scheduler ticks across lanes.
	Steps uint64
	// Moves is the total number of executed moves.
	Moves uint64
	// Outcomes counts lanes by LaneOutcome.
	Outcomes [numLaneOutcomes]int
	// GatherHist is the distribution of ticks-to-gather over gathered
	// lanes; GatherSum their total (GatherSum/Outcomes[LaneGathered] is
	// the empirical mean gathering time).
	GatherHist Histogram
	GatherSum  uint64
	// CoverageSum is the summed per-lane count of distinct nodes visited
	// by at least one robot; CoveredLanes counts lanes that visited all
	// n nodes.
	CoverageSum  uint64
	CoveredLanes int
	// Clearing statistics (zero unless SimSpec.TrackClearing). After
	// every all-clear event the adversarial recontamination probe of the
	// searching verifiers (search.Contamination.Reset) is applied —
	// otherwise the all-clear state would be absorbing and recurrence
	// unobservable. AllClearEvents totals all-clear events across lanes,
	// AllClearLanes counts lanes with at least one, RecurrentClearLanes
	// those that cleared again after a full recontamination (evidence of
	// *perpetual* clearing, the searching task's goal), and ClearSum the
	// summed final clear-edge counts.
	AllClearEvents      uint64
	AllClearLanes       int
	RecurrentClearLanes int
	ClearSum            uint64
}

// Gathered returns the number of gathered lanes.
func (r SimReport) Gathered() int { return r.Outcomes[LaneGathered] }

// GatheredRate returns the empirical gathering frequency.
func (r SimReport) GatheredRate() float64 {
	return float64(r.Gathered()) / float64(r.Samples)
}

// MeanGatherSteps returns the mean ticks-to-gather over gathered lanes
// (0 when none gathered).
func (r SimReport) MeanGatherSteps() float64 {
	if r.Gathered() == 0 {
		return 0
	}
	return float64(r.GatherSum) / float64(r.Gathered())
}

// Backend runs a SimSpec to a SimReport. Implementations: the batch
// engine internal/mcsim.Engine (struct-of-arrays lanes, millions of
// steps per second) and internal/mcsim.ProofBackend (the same workload
// driven one world at a time through corda.AsyncRunner — the reference
// semantics the batch engine is differentially tested against).
type Backend interface {
	Name() string
	Simulate() (SimReport, error)
}

// SnapshotFromMask builds what a robot on occupied node u of the
// occupancy mask occ perceives (ring of n ≤ 64 nodes, mult the robot's
// local multiplicity bit), together with the simulator direction
// realizing the Lo view. It is World.Snapshot reconstructed from a
// packed lane state: bufLo and bufHi are caller-owned scratch the
// returned views alias (grown as needed and returned), so steady-state
// callers allocate nothing. The construction — CW view, CCW view,
// lexicographic ordering with CW winning ties — matches World.Snapshot
// exactly; TestSnapshotFromMaskMatchesWorld pins the equivalence.
func SnapshotFromMask(occ uint64, n, u int, mult bool, bufLo, bufHi config.View) (Snapshot, ring.Direction, config.View, config.View) {
	cw := config.ViewFromMaskInto(occ, n, u, ring.CW, bufLo)
	ccw := config.ViewFromMaskInto(occ, n, u, ring.CCW, bufHi)
	lo, hi, loDir := cw, ccw, ring.CW
	if ccw.Less(cw) {
		lo, hi, loDir = ccw, cw, ring.CCW
	}
	return Snapshot{Lo: lo, Hi: hi, Multiplicity: mult}, loDir, cw, ccw
}
