package corda

import (
	"errors"
	"testing"

	"ringrobots/internal/config"
	"ringrobots/internal/ring"
)

// approach is a toy algorithm: a robot moves along its lexicographically
// smaller side unless it is adjacent to another robot. With two robots it
// shrinks the smaller gap until they are adjacent, then stops.
var approach = AlgorithmFunc{
	Label: "approach",
	Fn: func(s Snapshot) Decision {
		if s.Lo[0] == 0 {
			return Stay
		}
		if s.Symmetric() {
			return Either
		}
		return TowardLo
	},
}

// crash always moves toward its Lo side, even onto occupied nodes.
var crash = AlgorithmFunc{
	Label: "crash",
	Fn: func(s Snapshot) Decision {
		if s.Symmetric() {
			return Either
		}
		return TowardLo
	},
}

// idle never moves.
var idle = AlgorithmFunc{Label: "idle", Fn: func(Snapshot) Decision { return Stay }}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(6, nil, true); err == nil {
		t.Error("accepted zero robots")
	}
	if _, err := NewWorld(6, []int{1, 1}, true); err == nil {
		t.Error("exclusive world accepted a shared node")
	}
	w, err := NewWorld(6, []int{1, 1, 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	if w.CountAt(1) != 2 || w.CountAt(4) != 1 || w.CountAt(0) != 0 {
		t.Error("counts wrong after multiplicity placement")
	}
	if w.K() != 3 || w.N() != 6 {
		t.Errorf("K=%d N=%d", w.K(), w.N())
	}
}

func TestWorldConfigCollapsesMultiplicity(t *testing.T) {
	w, err := NewWorld(8, []int{0, 0, 0, 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	c := w.Config()
	if c.K() != 2 {
		t.Fatalf("configuration sees %d occupied nodes, want 2", c.K())
	}
	if !c.Occupied(0) || !c.Occupied(5) {
		t.Fatal("wrong occupied set")
	}
}

func TestSnapshotOrientation(t *testing.T) {
	c := config.MustNew(10, 0, 1, 2, 3, 5)
	w := FromConfig(c, true)
	// Robot ids follow increasing node order: id 0 at node 0.
	snap, loDir := w.Snapshot(0)
	if !snap.Lo.Equal(config.View{0, 0, 0, 1, 4}) {
		t.Errorf("Lo = %v", snap.Lo)
	}
	if !snap.Hi.Equal(config.View{4, 1, 0, 0, 0}) {
		t.Errorf("Hi = %v", snap.Hi)
	}
	if loDir != ring.CW {
		t.Errorf("loDir = %v, want cw", loDir)
	}
	if snap.Symmetric() {
		t.Error("asymmetric snapshot reported symmetric")
	}
	if snap.N() != 10 || snap.OccupiedNodes() != 5 {
		t.Errorf("N=%d, occupied=%d", snap.N(), snap.OccupiedNodes())
	}
}

func TestSnapshotLoHiOrdering(t *testing.T) {
	w := FromConfig(config.MustNew(9, 0, 2, 3), true)
	for id := 0; id < w.K(); id++ {
		snap, loDir := w.Snapshot(id)
		if snap.Hi.Less(snap.Lo) {
			t.Fatalf("robot %d: Hi < Lo", id)
		}
		// The direction handed back must realize Lo.
		u := w.Position(id)
		if !w.Config().ViewFrom(u, loDir).Equal(snap.Lo) {
			t.Fatalf("robot %d: loDir does not realize Lo", id)
		}
	}
}

func TestSnapshotMultiplicityBit(t *testing.T) {
	w, err := NewWorld(8, []int{0, 0, 3}, false)
	if err != nil {
		t.Fatal(err)
	}
	// Bit hidden until capability enabled.
	snap, _ := w.Snapshot(0)
	if snap.Multiplicity {
		t.Error("multiplicity bit set without the capability")
	}
	w.EnableMultiplicityDetection()
	snap, _ = w.Snapshot(0)
	if !snap.Multiplicity {
		t.Error("robot on a multiplicity did not see the bit")
	}
	snap, _ = w.Snapshot(2)
	if snap.Multiplicity {
		t.Error("solo robot saw a multiplicity bit (detection must be local)")
	}
}

func TestMoveRobotExclusivity(t *testing.T) {
	w := FromConfig(config.MustNew(6, 0, 1), true)
	if _, err := w.MoveRobot(0, ring.CW); err == nil {
		t.Fatal("move onto occupied node succeeded in exclusive world")
	} else {
		var ce *CollisionError
		if !errors.As(err, &ce) {
			t.Fatalf("error type %T, want CollisionError", err)
		}
	}
	ev, err := w.MoveRobot(0, ring.CCW)
	if err != nil {
		t.Fatal(err)
	}
	if ev.From != 0 || ev.To != 5 {
		t.Errorf("event %+v", ev)
	}
	if w.Position(0) != 5 || w.CountAt(0) != 0 || w.CountAt(5) != 1 {
		t.Error("world state wrong after move")
	}
}

func TestMoveRobotMerge(t *testing.T) {
	w, _ := NewWorld(6, []int{0, 1}, false)
	if _, err := w.MoveRobot(0, ring.CW); err != nil {
		t.Fatalf("merge move failed in non-exclusive world: %v", err)
	}
	if w.CountAt(1) != 2 {
		t.Error("merge did not stack robots")
	}
	if !w.Gathered() {
		t.Error("Gathered() false after merge of all robots")
	}
}

func TestCloneIndependence(t *testing.T) {
	w := FromConfig(config.MustNew(6, 0, 2), true)
	cl := w.Clone()
	if _, err := cl.MoveRobot(0, ring.CCW); err != nil {
		t.Fatal(err)
	}
	if w.Position(0) != 0 {
		t.Error("clone shares state with original")
	}
	if w.StateKey() == cl.StateKey() {
		t.Error("state keys should differ after clone moved")
	}
}

func TestRunnerApproachTwoRobots(t *testing.T) {
	w := FromConfig(config.MustNew(10, 0, 4), true)
	r := NewRunner(w, approach)
	reason, err := r.RunUntil(nil, 200)
	if err != nil {
		t.Fatal(err)
	}
	if reason != StopQuiescent {
		t.Fatalf("stop reason %v, want quiescent", reason)
	}
	c := w.Config()
	g := c.Intervals()
	if g[0] != 0 && g[1] != 0 {
		t.Fatalf("robots not adjacent at quiescence: %v", c)
	}
}

func TestRunnerStopCondition(t *testing.T) {
	w := FromConfig(config.MustNew(10, 0, 4), true)
	r := NewRunner(w, approach)
	calls := 0
	reason, err := r.RunUntil(func(w *World) bool {
		calls++
		return w.Config().Intervals()[0] <= 1 || w.Config().Intervals()[1] <= 1
	}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if reason != StopCondition {
		t.Fatalf("stop reason %v", reason)
	}
	if calls == 0 {
		t.Fatal("stop predicate never evaluated")
	}
}

func TestRunnerBudget(t *testing.T) {
	w := FromConfig(config.MustNew(12, 0, 6), true) // symmetric: approach walks forever
	r := NewRunner(w, AlgorithmFunc{Label: "wander", Fn: func(s Snapshot) Decision {
		if s.Symmetric() {
			return Either
		}
		return TowardHi // widen the small gap, then keep walking
	}})
	reason, err := r.RunUntil(nil, 57)
	if err != nil {
		t.Fatal(err)
	}
	if reason != StopBudget {
		t.Fatalf("stop reason %v, want budget", reason)
	}
	if r.Steps() != 57 {
		t.Fatalf("steps = %d, want 57", r.Steps())
	}
}

func TestRunnerCollisionSurfaces(t *testing.T) {
	w := FromConfig(config.MustNew(8, 0, 3), true)
	r := NewRunner(w, crash)
	_, err := r.RunUntil(nil, 100)
	if err == nil {
		t.Fatal("crash algorithm did not produce a collision error")
	}
	var ce *CollisionError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a CollisionError", err)
	}
}

func TestRunnerObservers(t *testing.T) {
	w := FromConfig(config.MustNew(10, 0, 4), true)
	r := NewRunner(w, approach)
	tr := &TraceRecorder{}
	r.Observe(tr)
	if _, err := r.RunUntil(nil, 200); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != r.Moves() {
		t.Fatalf("trace has %d events, runner counted %d moves", len(tr.Events), r.Moves())
	}
	for _, ev := range tr.Events {
		if !w.Ring().Adjacent(ev.From, ev.To) {
			t.Fatalf("recorded non-adjacent move %+v", ev)
		}
	}
}

func TestMoverSet(t *testing.T) {
	w := FromConfig(config.MustNew(10, 0, 4), true)
	movers := MoverSet(w, approach)
	if len(movers) != 2 {
		t.Fatalf("approach should want to move both robots, got %v", movers)
	}
	if ms := MoverSet(w, idle); len(ms) != 0 {
		t.Fatalf("idle has movers %v", ms)
	}
}

func TestAsyncRunnerMatchesSequentialForSingleMover(t *testing.T) {
	// With a single robot the async and sequential executions must agree
	// on the set of visited nodes regardless of scheduling.
	start := config.MustNew(7, 3)
	seqW := FromConfig(start, true)
	seq := NewRunner(seqW, crash) // one robot: always Either, walks forever
	if _, err := seq.RunUntil(nil, 20); err != nil {
		t.Fatal(err)
	}
	asyncW := FromConfig(start, true)
	as := NewAsyncRunner(asyncW, crash, NewRandomAsync(3, 0.3))
	if _, err := as.RunUntil(nil, 60); err != nil {
		t.Fatal(err)
	}
	if as.Moves() == 0 {
		t.Fatal("async runner executed no moves")
	}
}

func TestAsyncPendingBookkeeping(t *testing.T) {
	w := FromConfig(config.MustNew(9, 0, 4), true)
	script := &Script{Actions: []Action{
		{Kind: ActLookCompute, Robot: 0},
		{Kind: ActLookCompute, Robot: 1},
		{Kind: ActMove, Robot: 1},
		{Kind: ActMove, Robot: 0},
	}}
	r := NewAsyncRunner(w, approach, script)
	if _, err := r.Step(); err != nil { // look 0
		t.Fatal(err)
	}
	if !r.Pending(0) || r.Pending(1) {
		t.Fatal("pending flags wrong after first look")
	}
	if _, err := r.Step(); err != nil { // look 1
		t.Fatal(err)
	}
	if r.PendingCount() != 2 {
		t.Fatalf("pending count %d, want 2", r.PendingCount())
	}
	moved, err := r.Step() // move 1
	if err != nil || !moved {
		t.Fatalf("move 1: moved=%v err=%v", moved, err)
	}
	moved, err = r.Step() // move 0 — uses the stale decision, still legal here
	if err != nil || !moved {
		t.Fatalf("move 0: moved=%v err=%v", moved, err)
	}
	if r.PendingCount() != 0 {
		t.Fatal("pending moves remain after execution")
	}
	if r.Moves() != 2 || r.Steps() != 4 {
		t.Fatalf("moves=%d steps=%d", r.Moves(), r.Steps())
	}
}

func TestAsyncSchedulerMisuseErrors(t *testing.T) {
	w := FromConfig(config.MustNew(9, 0, 4), true)
	bad := &Script{Actions: []Action{{Kind: ActMove, Robot: 0}}}
	r := NewAsyncRunner(w, approach, bad)
	if _, err := r.Step(); err == nil {
		t.Error("moving a robot with no pending move did not error")
	}
	bad2 := &Script{Actions: []Action{
		{Kind: ActLookCompute, Robot: 0},
		{Kind: ActLookCompute, Robot: 0},
	}}
	r2 := NewAsyncRunner(w.Clone(), approach, bad2)
	if _, err := r2.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Step(); err == nil {
		t.Error("looking a robot with a pending move did not error")
	}
}

func TestAsyncStaleMoveCanCollide(t *testing.T) {
	// The adversary demonstrates why exclusivity can break under stale
	// views with a naive algorithm: both robots at distance 2 decide to
	// enter the middle node, then both moves execute.
	w := FromConfig(config.MustNew(8, 0, 2), true)
	script := &Script{
		Actions: []Action{
			{Kind: ActLookCompute, Robot: 0},
			{Kind: ActLookCompute, Robot: 1},
			{Kind: ActMove, Robot: 0},
			{Kind: ActMove, Robot: 1},
		},
		Either: []ring.Direction{ring.CW, ring.CCW},
	}
	r := NewAsyncRunner(w, AlgorithmFunc{Label: "greedy", Fn: func(s Snapshot) Decision {
		if s.Lo[0] == 0 {
			return Stay
		}
		if s.Symmetric() {
			return Either
		}
		return TowardLo
	}}, script)
	var err error
	for i := 0; i < 4 && err == nil; i++ {
		_, err = r.Step()
	}
	if err == nil {
		t.Fatal("expected a collision under the adversarial schedule")
	}
	var ce *CollisionError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a CollisionError", err)
	}
}

func TestEngineRunsAndStops(t *testing.T) {
	w := FromConfig(config.MustNew(10, 0, 4), true)
	e := &Engine{
		World:     w,
		Algorithm: approach,
		Budget:    10000,
		Seed:      1,
		Stop: func(w *World) bool {
			g := w.Config().Intervals()
			return g[0] == 0 || g[1] == 0
		},
	}
	looks, moves, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if looks == 0 {
		t.Fatal("engine served no looks")
	}
	if moves == 0 {
		t.Fatal("engine executed no moves")
	}
	g := w.Config().Intervals()
	if g[0] != 0 && g[1] != 0 {
		t.Fatalf("engine stopped before the condition held: %v", w)
	}
}

func TestEngineBudget(t *testing.T) {
	w := FromConfig(config.MustNew(10, 0, 5), true)
	e := &Engine{World: w, Algorithm: idle, Budget: 100, Seed: 7}
	looks, moves, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if moves != 0 {
		t.Fatal("idle algorithm moved")
	}
	if looks < 100 {
		t.Fatalf("engine under-served looks: %d", looks)
	}
}

func TestEngineSurfacesCollision(t *testing.T) {
	w := FromConfig(config.MustNew(8, 0, 1, 2, 3), true)
	e := &Engine{World: w, Algorithm: crash, Budget: 10000, Seed: 11}
	_, _, err := e.Run()
	if err == nil {
		t.Fatal("engine did not surface the collision")
	}
}

func TestEngineNeedsBudget(t *testing.T) {
	w := FromConfig(config.MustNew(8, 0, 4), true)
	e := &Engine{World: w, Algorithm: idle}
	if _, _, err := e.Run(); err == nil {
		t.Fatal("engine accepted zero budget")
	}
}

func TestCycleDetector(t *testing.T) {
	d := NewCycleDetector()
	keys := []string{"a", "b", "c", "d", "b"}
	var closedAt int = -1
	for i, k := range keys {
		if d.Offer(k) && closedAt < 0 {
			closedAt = i
		}
	}
	if closedAt != 4 {
		t.Fatalf("cycle closed at %d, want 4", closedAt)
	}
	if d.Start != 1 || d.Len != 3 {
		t.Fatalf("cycle start=%d len=%d, want 1,3", d.Start, d.Len)
	}
	if !d.Detected() {
		t.Fatal("Detected() false after detection")
	}
	// Further offers keep reporting true without changing the result.
	if !d.Offer("zzz") || d.Len != 3 {
		t.Fatal("detector unstable after detection")
	}
}

func TestTraceRecorderCap(t *testing.T) {
	tr := &TraceRecorder{Cap: 2}
	w := FromConfig(config.MustNew(9, 0, 4), true)
	for i := 0; i < 5; i++ {
		tr.ObserveMove(MoveEvent{Robot: 0, From: i, To: i + 1}, w)
	}
	if len(tr.Events) != 2 || tr.Dropped() != 3 {
		t.Fatalf("events=%d dropped=%d", len(tr.Events), tr.Dropped())
	}
	if tr.String() == "" {
		t.Error("empty trace string")
	}
}

func TestDecisionStrings(t *testing.T) {
	for d, want := range map[Decision]string{Stay: "stay", TowardLo: "toward-lo", TowardHi: "toward-hi", Either: "either"} {
		if d.String() != want {
			t.Errorf("%d.String() = %q", int(d), d.String())
		}
	}
	if Stay.Moving() || !Either.Moving() {
		t.Error("Moving() misclassifies")
	}
	if ActLookCompute.String() != "look" || ActMove.String() != "move" {
		t.Error("action kind strings wrong")
	}
}
