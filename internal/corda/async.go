package corda

import (
	"fmt"
	"math/rand"

	"ringrobots/internal/ring"
)

// ActionKind distinguishes the two halves of an asynchronous cycle.
type ActionKind int

const (
	// ActLookCompute makes a robot look and compute; if it decides to
	// move, the move becomes pending until the adversary executes it.
	ActLookCompute ActionKind = iota
	// ActMove executes a robot's pending move.
	ActMove
)

func (k ActionKind) String() string {
	if k == ActLookCompute {
		return "look"
	}
	return "move"
}

// Action is one adversary scheduling decision.
type Action struct {
	Kind  ActionKind
	Robot int
}

// AsyncScheduler is the adversary of the fully asynchronous model: it
// interleaves Look-Compute and Move halves of robot cycles arbitrarily
// (subject to each robot finishing a pending move before looking again)
// and resolves Either decisions.
type AsyncScheduler interface {
	// NextAction picks the next action. pending[id] reports whether robot
	// id has a computed move awaiting execution.
	NextAction(w *World, pending []bool, step int) Action
	// ResolveEither picks the direction of an Either decision at
	// compute time.
	ResolveEither(w *World, id, step int) ring.Direction
}

// AsyncRunner executes an algorithm under full asynchrony: a robot's
// Compute may be based on an arbitrarily outdated snapshot, because other
// actions can be scheduled between its Look and its Move (§2: "robots that
// cannot communicate may move based on outdated perceptions").
type AsyncRunner struct {
	World     *World
	Algorithm Algorithm
	Scheduler AsyncScheduler
	Observers []MoveObserver

	pending []pendingMove
	step    int
	moves   int
}

type pendingMove struct {
	active bool
	dir    ring.Direction
}

// NewAsyncRunner builds an async runner.
func NewAsyncRunner(w *World, alg Algorithm, sched AsyncScheduler) *AsyncRunner {
	return &AsyncRunner{
		World:     w,
		Algorithm: alg,
		Scheduler: sched,
		pending:   make([]pendingMove, w.K()),
	}
}

// Observe registers a move observer.
func (r *AsyncRunner) Observe(obs MoveObserver) { r.Observers = append(r.Observers, obs) }

// Pending reports whether robot id has an unexecuted move.
func (r *AsyncRunner) Pending(id int) bool { return r.pending[id].active }

// PendingCount returns the number of unexecuted moves.
func (r *AsyncRunner) PendingCount() int {
	n := 0
	for _, p := range r.pending {
		if p.active {
			n++
		}
	}
	return n
}

// Steps returns the number of scheduled actions so far.
func (r *AsyncRunner) Steps() int { return r.step }

// Moves returns the number of executed moves so far.
func (r *AsyncRunner) Moves() int { return r.moves }

// Step performs one adversary-chosen action. moved reports whether a move
// was executed (not merely computed).
func (r *AsyncRunner) Step() (moved bool, err error) {
	flags := make([]bool, len(r.pending))
	for i, p := range r.pending {
		flags[i] = p.active
	}
	a := r.Scheduler.NextAction(r.World, flags, r.step)
	defer func() { r.step++ }()
	switch a.Kind {
	case ActLookCompute:
		if r.pending[a.Robot].active {
			return false, fmt.Errorf("corda: scheduler looked robot %d while its move is pending", a.Robot)
		}
		snap, loDir := r.World.Snapshot(a.Robot)
		d := r.Algorithm.Compute(snap)
		if d == Stay {
			return false, nil // cycle complete without a move
		}
		if snap.Symmetric() {
			d = Either
		}
		dir, derr := decisionDirection(d, loDir, r.Scheduler.ResolveEither(r.World, a.Robot, r.step))
		if derr != nil {
			return false, derr
		}
		r.pending[a.Robot] = pendingMove{active: true, dir: dir}
		return false, nil
	case ActMove:
		if !r.pending[a.Robot].active {
			return false, fmt.Errorf("corda: scheduler moved robot %d with no pending move", a.Robot)
		}
		dir := r.pending[a.Robot].dir
		r.pending[a.Robot] = pendingMove{}
		ev, merr := r.World.MoveRobot(a.Robot, dir)
		if merr != nil {
			return false, fmt.Errorf("%s at async step %d: %w", r.Algorithm.Name(), r.step, merr)
		}
		ev.Step = r.step
		r.moves++
		for _, obs := range r.Observers {
			obs.ObserveMove(ev, r.World)
		}
		return true, nil
	}
	return false, fmt.Errorf("corda: unknown action kind %v", a.Kind)
}

// RunUntil drives the runner until stop holds, quiescence (no pending
// moves and no robot wants to move), or the budget is spent.
func (r *AsyncRunner) RunUntil(stop func(w *World) bool, maxSteps int) (StopReason, error) {
	idle := 0
	for r.step < maxSteps {
		if stop != nil && stop(r.World) && r.PendingCount() == 0 {
			return StopCondition, nil
		}
		moved, err := r.Step()
		if err != nil {
			return StopBudget, err
		}
		if moved {
			idle = 0
			continue
		}
		idle++
		if idle >= 2*r.World.K() && r.PendingCount() == 0 && len(MoverSet(r.World, r.Algorithm)) == 0 {
			return StopQuiescent, nil
		}
	}
	if stop != nil && stop(r.World) && r.PendingCount() == 0 {
		return StopCondition, nil
	}
	return StopBudget, nil
}

// RandomAsync is a seeded adversary: it picks uniformly among all legal
// actions (looking a robot with no pending move, or executing any pending
// move), optionally biased to hold moves pending longer. It is fair with
// probability 1.
type RandomAsync struct {
	Rng *rand.Rand
	// HoldBias in [0,1) is the probability of preferring a Look action
	// even when pending moves exist, stretching the window in which
	// snapshots go stale. 0 means uniform over all legal actions.
	HoldBias float64
}

// NewRandomAsync returns a seeded random asynchronous adversary.
func NewRandomAsync(seed int64, holdBias float64) *RandomAsync {
	return &RandomAsync{Rng: rand.New(rand.NewSource(seed)), HoldBias: holdBias}
}

// NextAction implements AsyncScheduler.
func (s *RandomAsync) NextAction(w *World, pending []bool, step int) Action {
	var looks, moves []int
	for id, p := range pending {
		if p {
			moves = append(moves, id)
		} else {
			looks = append(looks, id)
		}
	}
	if len(moves) == 0 {
		return Action{Kind: ActLookCompute, Robot: looks[s.Rng.Intn(len(looks))]}
	}
	if len(looks) == 0 || (s.HoldBias == 0 && s.Rng.Intn(len(looks)+len(moves)) >= len(looks)) ||
		(s.HoldBias > 0 && s.Rng.Float64() >= s.HoldBias) {
		return Action{Kind: ActMove, Robot: moves[s.Rng.Intn(len(moves))]}
	}
	return Action{Kind: ActLookCompute, Robot: looks[s.Rng.Intn(len(looks))]}
}

// ResolveEither implements AsyncScheduler.
func (s *RandomAsync) ResolveEither(w *World, id, step int) ring.Direction {
	if s.Rng.Intn(2) == 0 {
		return ring.CW
	}
	return ring.CCW
}

// Script is a fixed adversary schedule for reproducing the paper's proof
// scenarios verbatim in tests.
type Script struct {
	Actions []Action
	// Either lists directions consumed in order by Either resolutions.
	Either []ring.Direction

	next, nextEither int
}

// NextAction implements AsyncScheduler; it panics past the end of the
// script (tests size budgets to the script).
func (s *Script) NextAction(w *World, pending []bool, step int) Action {
	a := s.Actions[s.next]
	s.next++
	return a
}

// ResolveEither implements AsyncScheduler.
func (s *Script) ResolveEither(w *World, id, step int) ring.Direction {
	if s.nextEither < len(s.Either) {
		d := s.Either[s.nextEither]
		s.nextEither++
		return d
	}
	return ring.CW
}
