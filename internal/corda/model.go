// Package corda implements the min-CORDA model of computation (§2.1):
// anonymous, uniform, oblivious, disoriented robots on an anonymous ring,
// operating in asynchronous Look-Compute-Move cycles, perceiving only the
// positions of the other robots (plus, optionally, a local multiplicity
// bit), with all scheduling controlled by an adversary.
//
// The package provides three executions of the same semantics:
//
//   - Runner: deterministic sequential stepper (one atomic
//     Look-Compute-Move per step) used for verification;
//   - AsyncRunner: explicit pending-move state, letting an adversary
//     separate a robot's Look from its Move arbitrarily;
//   - Engine: a CSP-style concurrent runtime with one goroutine per robot,
//     exercising real interleavings.
package corda

import (
	"fmt"

	"ringrobots/internal/config"
	"ringrobots/internal/ring"
)

// Snapshot is everything a robot perceives during its Look phase: its two
// directional views ordered lexicographically, and — when the multiplicity
// capability is enabled — whether its own node hosts more than one robot
// (local/weak multiplicity detection, §2.1).
//
// Snapshots deliberately expose no node labels and no globally consistent
// orientation: Lo and Hi are defined only relative to the robot itself.
type Snapshot struct {
	// Lo and Hi are the two views from the robot's node; Lo ≤ Hi
	// lexicographically. When Lo equals Hi the robot cannot distinguish
	// the two directions.
	Lo, Hi config.View
	// Multiplicity reports >1 robot on the robot's own node. Always false
	// unless the world was built with multiplicity detection enabled.
	Multiplicity bool
}

// N returns the ring size implied by the snapshot.
func (s Snapshot) N() int { return len(s.Lo) + s.Lo.Sum() }

// OccupiedNodes returns the number of occupied nodes the robot sees.
func (s Snapshot) OccupiedNodes() int { return len(s.Lo) }

// Symmetric reports whether the robot's two views coincide, i.e. the robot
// lies on an axis of symmetry and cannot distinguish its two directions.
func (s Snapshot) Symmetric() bool { return s.Lo.Equal(s.Hi) }

// Decision is the outcome of a robot's Compute phase.
type Decision int

const (
	// Stay keeps the robot idle for this cycle.
	Stay Decision = iota
	// TowardLo moves one step in the direction whose view is Lo.
	TowardLo
	// TowardHi moves one step in the direction whose view is Hi.
	TowardHi
	// Either moves one step in an adversary-chosen direction. It is the
	// only well-defined moving decision when the snapshot is symmetric
	// (the paper's "moves in an arbitrary direction", §3.1).
	Either
)

func (d Decision) String() string {
	switch d {
	case Stay:
		return "stay"
	case TowardLo:
		return "toward-lo"
	case TowardHi:
		return "toward-hi"
	case Either:
		return "either"
	}
	return fmt.Sprintf("Decision(%d)", int(d))
}

// Moving reports whether the decision moves the robot.
func (d Decision) Moving() bool { return d != Stay }

// Algorithm is the protocol run identically by every robot: a pure
// function from perception to decision. Implementations must be
// deterministic and must not retain state between calls (robots are
// oblivious).
type Algorithm interface {
	// Name identifies the algorithm in traces and errors.
	Name() string
	// Compute maps a snapshot to a decision.
	Compute(s Snapshot) Decision
}

// AlgorithmFunc adapts a function to the Algorithm interface.
type AlgorithmFunc struct {
	Label string
	Fn    func(Snapshot) Decision
}

// Name implements Algorithm.
func (a AlgorithmFunc) Name() string { return a.Label }

// Compute implements Algorithm.
func (a AlgorithmFunc) Compute(s Snapshot) Decision { return a.Fn(s) }

// MoveEvent describes one executed move, for observers (contamination and
// exploration trackers, traces).
type MoveEvent struct {
	Robot    int // simulator-internal robot identity
	From, To int // simulator-internal node labels
	Step     int // step counter of the runner that produced the event
}

// MoveObserver receives every executed move. The world is in its
// post-move state when the observer runs.
type MoveObserver interface {
	ObserveMove(ev MoveEvent, w *World)
}

// CollisionError reports a violated exclusivity constraint: a robot moved
// onto an occupied node in exclusive mode, which the paper's model forbids
// and its algorithms must never cause.
type CollisionError struct {
	Robot int
	Node  int
}

func (e *CollisionError) Error() string {
	return fmt.Sprintf("corda: robot %d collided moving onto occupied node %d", e.Robot, e.Node)
}

// decisionDirection resolves a decision into a simulator direction given
// the direction that realizes the Lo view. Either is resolved by the
// provided adversary choice.
func decisionDirection(d Decision, loDir ring.Direction, eitherChoice ring.Direction) (ring.Direction, error) {
	switch d {
	case TowardLo:
		return loDir, nil
	case TowardHi:
		return loDir.Opposite(), nil
	case Either:
		return eitherChoice, nil
	}
	return 0, fmt.Errorf("corda: decision %v does not move", d)
}
