package corda

import (
	"fmt"
	"math/rand"

	"ringrobots/internal/ring"
)

// Scheduler picks which robot performs its next atomic Look-Compute-Move
// cycle and resolves direction choices the model leaves to the adversary.
type Scheduler interface {
	// NextRobot returns the identity of the robot to activate.
	NextRobot(w *World, step int) int
	// ResolveEither picks a direction for an Either decision.
	ResolveEither(w *World, id int, step int) ring.Direction
}

// RoundRobin activates robots 0,1,…,k−1 cyclically and resolves Either
// clockwise. It is the fair deterministic scheduler used for verification.
type RoundRobin struct{}

// NextRobot implements Scheduler.
func (RoundRobin) NextRobot(w *World, step int) int { return step % w.K() }

// ResolveEither implements Scheduler.
func (RoundRobin) ResolveEither(w *World, id, step int) ring.Direction { return ring.CW }

// RandomScheduler activates uniformly random robots and resolves Either
// uniformly; it remains fair with probability 1. Deterministic under a
// fixed seed.
type RandomScheduler struct{ Rng *rand.Rand }

// NewRandomScheduler returns a seeded random scheduler.
func NewRandomScheduler(seed int64) *RandomScheduler {
	return &RandomScheduler{Rng: rand.New(rand.NewSource(seed))}
}

// NextRobot implements Scheduler.
func (s *RandomScheduler) NextRobot(w *World, step int) int { return s.Rng.Intn(w.K()) }

// ResolveEither implements Scheduler.
func (s *RandomScheduler) ResolveEither(w *World, id, step int) ring.Direction {
	if s.Rng.Intn(2) == 0 {
		return ring.CW
	}
	return ring.CCW
}

// Runner executes an algorithm with atomic Look-Compute-Move cycles.
// Atomicity makes runs reproducible; the paper's algorithms guarantee at
// most one robot ever decides to move in any reachable configuration, so
// atomic scheduling loses no generality for them (AsyncRunner and Engine
// exercise the general asynchronous case).
type Runner struct {
	World     *World
	Algorithm Algorithm
	Scheduler Scheduler
	Observers []MoveObserver

	step  int
	moves int
}

// NewRunner wires a runner with a round-robin scheduler by default.
func NewRunner(w *World, alg Algorithm) *Runner {
	return &Runner{World: w, Algorithm: alg, Scheduler: RoundRobin{}}
}

// Observe registers a move observer.
func (r *Runner) Observe(obs MoveObserver) { r.Observers = append(r.Observers, obs) }

// Step activates one robot through a full cycle and reports whether it
// moved. An error means the algorithm violated the model (collision).
func (r *Runner) Step() (moved bool, err error) {
	id := r.Scheduler.NextRobot(r.World, r.step)
	moved, err = r.activate(id)
	r.step++
	return moved, err
}

// Steps returns the number of activations performed so far.
func (r *Runner) Steps() int { return r.step }

// Moves returns the number of executed moves so far.
func (r *Runner) Moves() int { return r.moves }

func (r *Runner) activate(id int) (bool, error) {
	snap, loDir := r.World.Snapshot(id)
	d := r.Algorithm.Compute(snap)
	if d == Stay {
		return false, nil
	}
	if snap.Symmetric() {
		// The robot cannot distinguish its directions; any moving decision
		// is adversary-resolved.
		d = Either
	}
	dir, err := decisionDirection(d, loDir, r.Scheduler.ResolveEither(r.World, id, r.step))
	if err != nil {
		return false, err
	}
	ev, err := r.World.MoveRobot(id, dir)
	if err != nil {
		return false, fmt.Errorf("%s at step %d: %w", r.Algorithm.Name(), r.step, err)
	}
	ev.Step = r.step
	r.moves++
	for _, obs := range r.Observers {
		obs.ObserveMove(ev, r.World)
	}
	return true, nil
}

// RunUntil steps until stop returns true, every robot stays (quiescence),
// or maxSteps activations elapse. It reports how it stopped.
type StopReason int

const (
	// StopCondition: the stop predicate returned true.
	StopCondition StopReason = iota
	// StopQuiescent: a full round of activations produced no move and no
	// robot wants to move.
	StopQuiescent
	// StopBudget: maxSteps activations elapsed.
	StopBudget
)

func (s StopReason) String() string {
	switch s {
	case StopCondition:
		return "condition"
	case StopQuiescent:
		return "quiescent"
	case StopBudget:
		return "budget"
	}
	return fmt.Sprintf("StopReason(%d)", int(s))
}

// RunUntil drives the runner. stop may be nil (run to quiescence/budget).
func (r *Runner) RunUntil(stop func(w *World) bool, maxSteps int) (StopReason, error) {
	idleStreak := 0
	for r.step < maxSteps {
		if stop != nil && stop(r.World) {
			return StopCondition, nil
		}
		moved, err := r.Step()
		if err != nil {
			return StopBudget, err
		}
		if moved {
			idleStreak = 0
		} else {
			idleStreak++
			if idleStreak >= r.World.K() && r.quiescent() {
				return StopQuiescent, nil
			}
		}
	}
	if stop != nil && stop(r.World) {
		return StopCondition, nil
	}
	return StopBudget, nil
}

// quiescent reports whether no robot would move if activated now.
func (r *Runner) quiescent() bool {
	for id := 0; id < r.World.K(); id++ {
		snap, _ := r.World.Snapshot(id)
		if r.Algorithm.Compute(snap).Moving() {
			return false
		}
	}
	return true
}

// MoverSet returns the identities of robots that would move if activated
// in the current world — the paper's algorithms keep this a singleton on
// every reachable configuration (or empty at termination).
func MoverSet(w *World, alg Algorithm) []int {
	var movers []int
	for id := 0; id < w.K(); id++ {
		snap, _ := w.Snapshot(id)
		if alg.Compute(snap).Moving() {
			movers = append(movers, id)
		}
	}
	return movers
}
