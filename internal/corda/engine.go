package corda

import (
	"fmt"
	"math/rand"
	"sync"

	"ringrobots/internal/ring"
)

// Engine runs one goroutine per robot against a coordinator goroutine that
// owns the world — a CSP realization of the asynchronous model in which
// the Go runtime provides genuine (but budgeted) interleaving. Robots
// communicate with the coordinator exclusively over channels; the world is
// never shared.
//
// The Engine and the AsyncRunner implement the same semantics; the paper's
// algorithms must behave identically under both (experiment E9).
type Engine struct {
	World     *World
	Algorithm Algorithm
	Observers []MoveObserver

	// Budget caps the total number of Look operations served.
	Budget int
	// Stop, if non-nil, ends the run once it holds (checked between
	// requests while no move is in flight).
	Stop func(w *World) bool
	// Seed drives Either resolutions.
	Seed int64
	// FairnessWindow bounds how many Looks any robot may be served ahead
	// of the least-served robot (0 means the default of 8). The model
	// requires fair scheduling — every robot completes cycles infinitely
	// often — but the Go scheduler alone does not guarantee it: on a
	// single P, a robot whose channel handoffs keep inheriting the
	// coordinator's time slice can monopolize the budget and starve the
	// rest (the runnext ping-pong pathology). The coordinator therefore
	// defers Look requests from robots that are too far ahead until the
	// laggards catch up.
	FairnessWindow int
}

type lookRequest struct {
	id    int
	reply chan lookReply
}

type lookReply struct {
	snap  Snapshot
	loDir ring.Direction
	halt  bool
}

type moveRequest struct {
	id    int
	dir   ring.Direction
	reply chan moveReply
}

type moveReply struct {
	err  error
	halt bool
}

// Run executes robots until the stop condition holds or the budget is
// exhausted. It returns the number of Look operations served and the
// number of moves executed.
func (e *Engine) Run() (looks, moves int, err error) {
	if e.Budget <= 0 {
		return 0, 0, fmt.Errorf("corda: engine needs a positive budget")
	}
	k := e.World.K()
	lookCh := make(chan lookRequest)
	moveCh := make(chan moveRequest)
	var wg sync.WaitGroup

	// Robot goroutine: perpetually perform Look-Compute-Move cycles until
	// the coordinator signals halt.
	robot := func(id int) {
		defer wg.Done()
		lreply := make(chan lookReply, 1)
		mreply := make(chan moveReply, 1)
		for {
			lookCh <- lookRequest{id: id, reply: lreply}
			lr := <-lreply
			if lr.halt {
				return
			}
			d := e.Algorithm.Compute(lr.snap)
			if d == Stay {
				continue
			}
			if lr.snap.Symmetric() {
				d = Either
			}
			// Either is resolved by the coordinator; encode it as the Lo
			// direction and let the coordinator flip a seeded coin via a
			// sentinel. To keep the protocol minimal the robot resolves
			// using the loDir it was handed — the coordinator randomized
			// that handing for symmetric snapshots.
			dir, derr := decisionDirection(d, lr.loDir, lr.loDir)
			if derr != nil {
				dir = lr.loDir
			}
			moveCh <- moveRequest{id: id, dir: dir, reply: mreply}
			mr := <-mreply
			if mr.halt {
				return
			}
			if mr.err != nil {
				return // coordinator records the error and halts everyone
			}
		}
	}

	wg.Add(k)
	for id := 0; id < k; id++ {
		go robot(id)
	}

	rng := rand.New(rand.NewSource(e.Seed))
	window := e.FairnessWindow
	if window <= 0 {
		window = 8
	}
	servedBy := make([]int, k) // looks served per robot, for fairness
	minServed := 0
	deferred := make([]lookRequest, 0, k) // parked until laggards catch up
	recountMin := func() {
		minServed = servedBy[0]
		for _, s := range servedBy[1:] {
			if s < minServed {
				minServed = s
			}
		}
	}
	halting := false
	var firstErr error
	served := 0
	halted := 0
	serveLook := func(req lookRequest) {
		served++
		looks++
		servedBy[req.id]++
		if servedBy[req.id]-1 == minServed {
			recountMin()
		}
		snap, loDir := e.World.Snapshot(req.id)
		if snap.Symmetric() && rng.Intn(2) == 0 {
			// Adversary choice for indistinguishable directions.
			loDir = loDir.Opposite()
		}
		req.reply <- lookReply{snap: snap, loDir: loDir}
	}
	for halted < k {
		if !halting && (served >= e.Budget || (e.Stop != nil && e.Stop(e.World))) {
			halting = true
		}
		if halting && len(deferred) > 0 {
			for _, req := range deferred {
				req.reply <- lookReply{halt: true}
				halted++
			}
			deferred = deferred[:0]
			continue
		}
		// Release parked robots that are no longer ahead of the window,
		// re-checking the budget and stop condition before each serve so
		// a release pass can never overshoot the Look cap.
		if len(deferred) > 0 {
			kept := deferred[:0]
			for i, req := range deferred {
				if !halting && (served >= e.Budget || (e.Stop != nil && e.Stop(e.World))) {
					halting = true
				}
				if halting {
					kept = append(kept, deferred[i:]...)
					break
				}
				if servedBy[req.id]-minServed < window {
					serveLook(req)
				} else {
					kept = append(kept, req)
				}
			}
			deferred = kept
			if halting {
				continue // flush the remainder via the halting branch
			}
		}
		if halted >= k {
			break
		}
		select {
		case req := <-lookCh:
			if halting {
				req.reply <- lookReply{halt: true}
				halted++
				continue
			}
			if servedBy[req.id]-minServed >= window {
				// This robot is running too far ahead of the slowest one;
				// park its request so the starved robots get scheduled.
				deferred = append(deferred, req)
				continue
			}
			serveLook(req)
		case req := <-moveCh:
			if halting {
				req.reply <- moveReply{halt: true}
				halted++
				continue
			}
			ev, merr := e.World.MoveRobot(req.id, req.dir)
			if merr != nil {
				firstErr = fmt.Errorf("%s (engine): %w", e.Algorithm.Name(), merr)
				req.reply <- moveReply{err: merr}
				halted++
				halting = true
				continue
			}
			moves++
			ev.Step = served
			for _, obs := range e.Observers {
				obs.ObserveMove(ev, e.World)
			}
			req.reply <- moveReply{}
		}
	}
	wg.Wait()
	return looks, moves, firstErr
}
