package corda

import (
	"math/rand"
	"testing"

	"ringrobots/internal/config"
	"ringrobots/internal/ring"
)

// TestSnapshotFromMaskMatchesWorld pins the batch engines' perception
// path: SnapshotFromMask must reproduce World.Snapshot — views, their
// lexicographic ordering, the Lo direction, and the multiplicity bit —
// for every robot of random worlds.
func TestSnapshotFromMaskMatchesWorld(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(config.MaxMaskRing-2)
		k := 1 + rng.Intn(n)
		nodes := rng.Perm(n)[:k]
		c, err := config.New(n, nodes...)
		if err != nil {
			t.Fatal(err)
		}
		for _, multDetect := range []bool{false, true} {
			w := FromConfig(c, false)
			if multDetect {
				w.EnableMultiplicityDetection()
			}
			occ, err := c.OccupancyMask()
			if err != nil {
				t.Fatal(err)
			}
			var bufLo, bufHi config.View
			for id := 0; id < w.K(); id++ {
				want, wantLoDir := w.Snapshot(id)
				u := w.Position(id)
				mult := multDetect && w.CountAt(u) > 1
				var got Snapshot
				var gotLoDir ring.Direction
				got, gotLoDir, bufLo, bufHi = SnapshotFromMask(occ, n, u, mult, bufLo, bufHi)
				if gotLoDir != wantLoDir {
					t.Fatalf("n=%d nodes=%v robot %d: loDir %v, want %v", n, nodes, id, gotLoDir, wantLoDir)
				}
				if got.Multiplicity != want.Multiplicity {
					t.Fatalf("n=%d nodes=%v robot %d: mult %v, want %v", n, nodes, id, got.Multiplicity, want.Multiplicity)
				}
				if !got.Lo.Equal(want.Lo) || !got.Hi.Equal(want.Hi) {
					t.Fatalf("n=%d nodes=%v robot %d: snapshot (%v, %v), want (%v, %v)",
						n, nodes, id, got.Lo, got.Hi, want.Lo, want.Hi)
				}
			}
		}
	}
}

// TestSnapshotFromMaskZeroAlloc pins the steady-state contract: with
// buffers already grown, SnapshotFromMask allocates nothing.
func TestSnapshotFromMaskZeroAlloc(t *testing.T) {
	c := config.MustNew(16, 0, 2, 5, 9, 12)
	occ, err := c.OccupancyMask()
	if err != nil {
		t.Fatal(err)
	}
	var bufLo, bufHi config.View
	_, _, bufLo, bufHi = SnapshotFromMask(occ, 16, 5, false, bufLo, bufHi)
	allocs := testing.AllocsPerRun(100, func() {
		_, _, bufLo, bufHi = SnapshotFromMask(occ, 16, 5, false, bufLo, bufHi)
	})
	if allocs != 0 {
		t.Errorf("SnapshotFromMask allocated %.1f times per call with warm buffers, want 0", allocs)
	}
}
