package corda

import (
	"fmt"
	"sort"

	"ringrobots/internal/config"
	"ringrobots/internal/ring"
)

// World is the simulator's ground truth: where every robot is. Robots have
// identities here (indices) purely for bookkeeping; nothing about an
// identity ever reaches an Algorithm.
type World struct {
	r   ring.Ring
	pos []int // pos[id] = node occupied by robot id
	cnt []int // cnt[node] = number of robots on node

	// exclusive, when set, makes any move onto an occupied node a
	// CollisionError. Cleared for gathering, which creates multiplicities
	// on purpose.
	exclusive bool
	// multiplicityDetection controls whether snapshots carry the local
	// multiplicity bit (§2.1: the capability needed for gathering).
	multiplicityDetection bool

	// cfg memoizes the current configuration between moves: every Look
	// needs it, and between two moves an arbitrary number of Looks occur.
	cfg      config.Config
	cfgValid bool
	// keyBuf is scratch for StateKey (reused; the key itself is fresh).
	keyBuf []byte
	// snapBufs is the per-robot view-buffer pool behind Snapshot:
	// snapBufs[id] holds the two view buffers robot id's snapshots alias,
	// so steady-state Looks allocate nothing. See Snapshot for the
	// ownership rule.
	snapBufs []snapBuf
}

// snapBuf is one robot's pair of reusable view buffers.
type snapBuf struct {
	lo, hi config.View
}

// NewWorld places robots at the given nodes of an n-node ring (positions
// may repeat only when exclusive is false).
func NewWorld(n int, positions []int, exclusive bool) (*World, error) {
	if len(positions) == 0 {
		return nil, fmt.Errorf("corda: no robots")
	}
	r := ring.New(n)
	w := &World{
		r:         r,
		pos:       make([]int, len(positions)),
		cnt:       make([]int, n),
		exclusive: exclusive,
	}
	for id, u := range positions {
		u = r.Norm(u)
		if exclusive && w.cnt[u] > 0 {
			return nil, fmt.Errorf("corda: exclusive world has two robots on node %d", u)
		}
		w.pos[id] = u
		w.cnt[u]++
	}
	return w, nil
}

// FromConfig builds an exclusive world with one robot per occupied node of
// c, identities assigned in increasing node order.
func FromConfig(c config.Config, exclusive bool) *World {
	w, err := NewWorld(c.N(), c.Nodes(), exclusive)
	if err != nil {
		panic(err) // c is a valid exclusive configuration by construction
	}
	return w
}

// EnableMultiplicityDetection turns on the local multiplicity bit in
// snapshots (required by the gathering task).
func (w *World) EnableMultiplicityDetection() { w.multiplicityDetection = true }

// N returns the ring size.
func (w *World) N() int { return w.r.N() }

// K returns the number of robots.
func (w *World) K() int { return len(w.pos) }

// Ring returns the underlying ring.
func (w *World) Ring() ring.Ring { return w.r }

// Exclusive reports whether the world enforces the exclusivity property.
func (w *World) Exclusive() bool { return w.exclusive }

// Position returns the node of robot id.
func (w *World) Position(id int) int { return w.pos[id] }

// Positions returns all robot positions indexed by identity (fresh slice).
func (w *World) Positions() []int {
	out := make([]int, len(w.pos))
	copy(out, w.pos)
	return out
}

// CountAt returns the number of robots on node u.
func (w *World) CountAt(u int) int { return w.cnt[w.r.Norm(u)] }

// Config returns the current configuration (the set of occupied nodes).
// It is memoized between moves, so consecutive Looks share one Config
// value and its cached supermin/classification data.
func (w *World) Config() config.Config {
	if w.cfgValid {
		return w.cfg
	}
	occupied := make([]int, 0, len(w.pos))
	for u, c := range w.cnt {
		if c > 0 {
			occupied = append(occupied, u)
		}
	}
	sort.Ints(occupied)
	c, err := config.New(w.r.N(), occupied...)
	if err != nil {
		panic(err)
	}
	w.cfg, w.cfgValid = c, true
	return c
}

// Gathered reports whether all robots share one node.
func (w *World) Gathered() bool {
	first := w.pos[0]
	for _, u := range w.pos[1:] {
		if u != first {
			return false
		}
	}
	return true
}

// Snapshot builds what robot id perceives: its two directional views in
// lexicographic order plus (if enabled) the local multiplicity bit. The
// second return value is the simulator direction realizing the Lo view,
// needed to apply the robot's decision; it never reaches the algorithm.
//
// Ownership rule: the returned snapshot's views alias robot id's slot in
// a per-robot buffer pool and stay valid only until the next
// Snapshot(id) call for the SAME id. That is exactly the lifetime of one
// Look-Compute step, so the concurrent Engine — which hands each robot
// goroutine only its own snapshots, and never two at once — needs no
// copies: robot id cannot request another Look before finishing the
// Compute on its previous one. Callers that retain a snapshot across
// cycles (or share it between robots) must Clone it.
func (w *World) Snapshot(id int) (Snapshot, ring.Direction) {
	c := w.Config()
	u := w.pos[id]
	if w.snapBufs == nil {
		w.snapBufs = make([]snapBuf, len(w.pos))
	}
	buf := &w.snapBufs[id]
	cw := c.ViewFromInto(u, ring.CW, buf.lo)
	ccw := c.ViewFromInto(u, ring.CCW, buf.hi)
	buf.lo, buf.hi = cw, ccw
	lo, loDir := cw, ring.CW
	hi := ccw
	if ccw.Less(cw) {
		lo, hi, loDir = ccw, cw, ring.CCW
	}
	return Snapshot{
		Lo:           lo,
		Hi:           hi,
		Multiplicity: w.multiplicityDetection && w.cnt[u] > 1,
	}, loDir
}

// MoveRobot moves robot id one step in direction d, enforcing exclusivity
// if enabled. It returns the executed event.
func (w *World) MoveRobot(id int, d ring.Direction) (MoveEvent, error) {
	from := w.pos[id]
	to := w.r.Step(from, d)
	if w.exclusive && w.cnt[to] > 0 {
		return MoveEvent{}, &CollisionError{Robot: id, Node: to}
	}
	w.cnt[from]--
	w.cnt[to]++
	w.pos[id] = to
	w.cfgValid = false
	return MoveEvent{Robot: id, From: from, To: to}, nil
}

// Clone returns a deep copy of the world.
func (w *World) Clone() *World {
	pos := make([]int, len(w.pos))
	copy(pos, w.pos)
	cnt := make([]int, len(w.cnt))
	copy(cnt, w.cnt)
	return &World{
		r:                     w.r,
		pos:                   pos,
		cnt:                   cnt,
		exclusive:             w.exclusive,
		multiplicityDetection: w.multiplicityDetection,
		cfg:                   w.cfg,
		cfgValid:              w.cfgValid,
	}
}

// StateKey returns a compact identity-sensitive key of the world state,
// used for cycle detection in perpetual-task verification. The key is a
// binary string (four bytes per robot position, exact for any ring an
// int can index), far cheaper to build and hash than the former
// fmt.Sprint rendering. Unlike the feasibility solver's packed game
// state (whose bitmask words cap it at n ≤ 32), StateKey scales with
// the ring: verification worlds are not width-limited.
func (w *World) StateKey() string {
	if cap(w.keyBuf) < 4*len(w.pos) {
		w.keyBuf = make([]byte, 4*len(w.pos))
	}
	buf := w.keyBuf[:4*len(w.pos)]
	for i, u := range w.pos {
		buf[4*i] = byte(u)
		buf[4*i+1] = byte(u >> 8)
		buf[4*i+2] = byte(u >> 16)
		buf[4*i+3] = byte(u >> 24)
	}
	return string(buf)
}

func (w *World) String() string {
	return fmt.Sprintf("world{n=%d, robots=%v}", w.r.N(), w.pos)
}
