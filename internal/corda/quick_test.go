package corda

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ringrobots/internal/config"
	"ringrobots/internal/ring"
)

// Property-based checks of the model substrate.

func randomWorld(seed int64, exclusive bool) *World {
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(28)
	k := 1 + rng.Intn(n-1)
	var positions []int
	if exclusive {
		positions = rng.Perm(n)[:k]
	} else {
		positions = make([]int, k)
		for i := range positions {
			positions[i] = rng.Intn(n)
		}
	}
	w, err := NewWorld(n, positions, exclusive)
	if err != nil {
		panic(err)
	}
	return w
}

func TestQuickSnapshotViewsAreMutualReversals(t *testing.T) {
	// For every robot, the Hi view read backwards is the Lo view rotated
	// to start at the same interval — concretely: the two directional
	// views are plain reversals of each other.
	f := func(seed int64) bool {
		w := randomWorld(seed, true)
		for id := 0; id < w.K(); id++ {
			snap, loDir := w.Snapshot(id)
			if snap.Hi.Less(snap.Lo) {
				return false
			}
			u := w.Position(id)
			cfg := w.Config()
			if !cfg.ViewFrom(u, loDir).Equal(snap.Lo) {
				return false
			}
			if !cfg.ViewFrom(u, loDir.Opposite()).Equal(snap.Hi) {
				return false
			}
			for i := range snap.Lo {
				if snap.Lo[i] != snap.Hi[len(snap.Hi)-1-i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickSnapshotSumInvariant(t *testing.T) {
	// Lo and Hi always describe the same ring: k intervals summing to n−j
	// where j is the number of occupied nodes.
	f := func(seed int64) bool {
		w := randomWorld(seed, false)
		w.EnableMultiplicityDetection()
		occupied := w.Config().K()
		for id := 0; id < w.K(); id++ {
			snap, _ := w.Snapshot(id)
			if snap.OccupiedNodes() != occupied {
				return false
			}
			if snap.Lo.Sum() != w.N()-occupied || snap.Hi.Sum() != w.N()-occupied {
				return false
			}
			if snap.N() != w.N() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickMoveRobotPreservesCountInvariants(t *testing.T) {
	// After any sequence of random legal moves, per-node counts sum to k
	// and match positions exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWorld(seed, false)
		for step := 0; step < 50; step++ {
			id := rng.Intn(w.K())
			dir := ring.CW
			if rng.Intn(2) == 0 {
				dir = ring.CCW
			}
			if _, err := w.MoveRobot(id, dir); err != nil {
				return false // non-exclusive world: moves never fail
			}
		}
		counts := make([]int, w.N())
		for id := 0; id < w.K(); id++ {
			counts[w.Position(id)]++
		}
		total := 0
		for u := 0; u < w.N(); u++ {
			if w.CountAt(u) != counts[u] {
				return false
			}
			total += counts[u]
		}
		return total == w.K()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickConfigRunsPartitionRing(t *testing.T) {
	// Runs() must partition the occupied nodes, with gaps summing to the
	// empty nodes.
	f := func(seed int64) bool {
		w := randomWorld(seed, true)
		c := w.Config()
		runs := c.Runs()
		robots, gaps := 0, 0
		for _, r := range runs {
			robots += r.Len
			gaps += r.GapAfter
			// Every node of the run is occupied; the node past its end is
			// not (unless the ring is full).
			for i := 0; i < r.Len; i++ {
				if !c.Occupied(c.Ring().Norm(r.Start + i)) {
					return false
				}
			}
		}
		if c.K() == c.N() {
			return robots == c.N() && gaps == 0
		}
		return robots == c.K() && gaps == c.N()-c.K()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickAsyncNeverDeadlocksWithMovers(t *testing.T) {
	// Failure injection: under any random async schedule, if some robot
	// wants to move, the runner keeps making scheduling progress (no
	// livelock in the harness itself).
	f := func(seed int64) bool {
		w := randomWorld(seed, false)
		w.EnableMultiplicityDetection()
		walker := AlgorithmFunc{Label: "walker", Fn: func(s Snapshot) Decision {
			if s.Symmetric() {
				return Either
			}
			return TowardLo
		}}
		r := NewAsyncRunner(w, walker, NewRandomAsync(seed, 0.5))
		for i := 0; i < 200; i++ {
			if _, err := r.Step(); err != nil {
				return false
			}
		}
		return r.Moves() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickConfigIntervalViewDuality(t *testing.T) {
	// Rebuilding a configuration from any robot's view is the identity up
	// to relabeling: the rebuilt configuration has the same supermin.
	f := func(seed int64) bool {
		w := randomWorld(seed, true)
		c := w.Config()
		for _, u := range c.Nodes() {
			v := c.ViewFrom(u, ring.CW)
			rebuilt, err := config.FromIntervals(0, v)
			if err != nil {
				return false
			}
			if rebuilt.Canonical() != c.Canonical() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
