package search

import (
	"fmt"
	"sort"

	"ringrobots/internal/config"
	"ringrobots/internal/corda"
	"ringrobots/internal/ring"
)

// NminusThree is the dedicated algorithm of §4.4 clearing an n-node ring
// with k = n−3 robots (n ≥ 10), starting from any rigid exclusive
// configuration. With exactly three empty nodes, the configuration is
// described by the three block sizes (A,B,C), A < B < C (strict, by
// rigidity). Phase 1 (rules R1.1–R1.3) reaches one of the final
// configurations (0,2,k−2), (0,3,k−3), (1,2,k−3); phase 2 (rules
// R2.1–R2.3) cycles through them forever, perpetually clearing the ring
// (Theorem 7).
type NminusThree struct{}

// Name implements corda.Algorithm.
func (NminusThree) Name() string { return "n-minus-three" }

// Validate checks Theorem 7's parameter range.
func (NminusThree) Validate(n, k int) error {
	if k != n-3 {
		return fmt.Errorf("search: NminusThree requires k = n-3, got k=%d, n=%d", k, n)
	}
	if n < 10 {
		return fmt.Errorf("search: NminusThree requires n >= 10, got n=%d (impossible for n <= 9, Theorem 5)", n)
	}
	return nil
}

// N3Rule names the rule applied by one NminusThree step.
type N3Rule int

const (
	// N3None: no applicable rule (should not happen on rigid inputs).
	N3None N3Rule = iota
	// N3R11 is R1.1: A > 0, move A's robot closest to C towards C.
	N3R11
	// N3R12 is R1.2: A = 0, B = 1, move C's robot closest to B towards B.
	N3R12
	// N3R13 is R1.3: A = 0, B > 3, move B's robot closest to C towards C.
	N3R13
	// N3R21 is R2.1: (0,2,k−2), move C's robot closest to B towards B.
	N3R21
	// N3R22 is R2.2: (0,3,k−3), move B's robot closest to A towards A.
	N3R22
	// N3R23 is R2.3: (1,2,k−3), move A's robot towards C.
	N3R23
)

func (r N3Rule) String() string {
	switch r {
	case N3None:
		return "none"
	case N3R11:
		return "R1.1"
	case N3R12:
		return "R1.2"
	case N3R13:
		return "R1.3"
	case N3R21:
		return "R2.1"
	case N3R22:
		return "R2.2"
	case N3R23:
		return "R2.3"
	}
	return fmt.Sprintf("N3Rule(%d)", int(r))
}

// n3Arc is one of the three occupied arcs between consecutive empty nodes.
type n3Arc struct {
	size       int // number of robots in the arc (may be 0)
	startEmpty int // the empty node clockwise-before the arc
	endEmpty   int // the empty node clockwise-after the arc
}

// n3Blocks decomposes a k = n−3 configuration into its three arcs ordered
// by size. It errors when block sizes are not pairwise distinct (then the
// configuration is not rigid).
func n3Blocks(c config.Config) (blocks [3]n3Arc, err error) {
	n := c.N()
	if c.K() != n-3 {
		return blocks, fmt.Errorf("search: configuration has %d robots on %d nodes, need k = n-3", c.K(), n)
	}
	var empties []int
	for u := 0; u < n; u++ {
		if !c.Occupied(u) {
			empties = append(empties, u)
		}
	}
	if len(empties) != 3 {
		return blocks, fmt.Errorf("search: expected 3 empty nodes, found %d", len(empties))
	}
	r := c.Ring()
	arcs := make([]n3Arc, 3)
	for i := 0; i < 3; i++ {
		from := empties[i]
		to := empties[(i+1)%3]
		arcs[i] = n3Arc{
			size:       r.DistCW(from, to) - 1,
			startEmpty: from,
			endEmpty:   to,
		}
	}
	sort.Slice(arcs, func(i, j int) bool { return arcs[i].size < arcs[j].size })
	if arcs[0].size == arcs[1].size || arcs[1].size == arcs[2].size {
		return blocks, fmt.Errorf("search: block sizes %d,%d,%d not pairwise distinct (configuration not rigid)",
			arcs[0].size, arcs[1].size, arcs[2].size)
	}
	copy(blocks[:], arcs)
	return blocks, nil
}

// N3Plan is the single move NminusThree performs in a configuration.
type N3Plan struct {
	Rule   N3Rule
	Mover  int // node of the moving robot
	Target int // empty node it moves onto
}

// n3EndToward returns the end-robot of arc x on the side of the given
// boundary empty node.
func n3EndToward(c config.Config, x n3Arc, boundary int) int {
	r := c.Ring()
	if boundary == x.startEmpty {
		return r.Step(boundary, ring.CW)
	}
	return r.Step(boundary, ring.CCW)
}

// n3Boundary returns the empty node directly between arcs x and y
// (the boundary both share), preferring the side where they are adjacent
// through a single empty node.
func n3Boundary(x, y n3Arc) (int, bool) {
	if x.endEmpty == y.startEmpty {
		return x.endEmpty, true
	}
	if y.endEmpty == x.startEmpty {
		return y.endEmpty, true
	}
	return 0, false
}

// ComputeN3Plan determines the move of Fig. 13 on configuration c.
func ComputeN3Plan(c config.Config) (N3Plan, error) {
	blocks, err := n3Blocks(c)
	if err != nil {
		return N3Plan{}, err
	}
	a, b, cBig := blocks[0], blocks[1], blocks[2]
	k := c.K()

	moveEndToward := func(rule N3Rule, from, to n3Arc) (N3Plan, error) {
		boundary, ok := n3Boundary(from, to)
		if !ok {
			return N3Plan{}, fmt.Errorf("search: arcs not directly adjacent for rule %v in %v", rule, c)
		}
		return N3Plan{Rule: rule, Mover: n3EndToward(c, from, boundary), Target: boundary}, nil
	}

	switch {
	case a.size == 0 && b.size == 2 && cBig.size == k-2:
		return moveEndToward(N3R21, cBig, b)
	case a.size == 0 && b.size == 3 && cBig.size == k-3:
		// R2.2: B's robot closest to A moves towards A. A is the empty
		// arc: its "single empty boundary" with B is the shared empty.
		return moveEndToward(N3R22, b, a)
	case a.size == 1 && b.size == 2 && cBig.size == k-3:
		// R2.3: the singleton A moves towards C.
		return moveEndToward(N3R23, a, cBig)
	case a.size > 0:
		return moveEndToward(N3R11, a, cBig)
	case b.size == 1:
		return moveEndToward(N3R12, cBig, b)
	case b.size > 3:
		return moveEndToward(N3R13, b, cBig)
	}
	return N3Plan{}, fmt.Errorf("search: no NminusThree rule applies to %v", c)
}

// Compute implements corda.Algorithm: the robot reconstructs the
// configuration from its view, computes the global plan, and moves only
// if it is the planned mover.
func (NminusThree) Compute(s corda.Snapshot) corda.Decision {
	c, err := config.FromIntervals(0, s.Lo)
	if err != nil {
		return corda.Stay
	}
	p, err := ComputeN3Plan(c)
	if err != nil || p.Mover != 0 {
		return corda.Stay
	}
	switch p.Target {
	case 1:
		return corda.TowardLo
	case c.N() - 1:
		return corda.TowardHi
	}
	return corda.Stay
}
