package search

import (
	"testing"

	"ringrobots/internal/config"
	"ringrobots/internal/corda"
)

// unguardedRingClearing reproduces Fig. 11 with line 7 transcribed
// literally (q0 > 0 instead of the implementation's q0 > 2), to document
// why the guard is necessary. See EXPERIMENTS.md, E5.
type unguardedRingClearing struct{}

func (unguardedRingClearing) Name() string { return "ring-clearing-literal-line7" }

func (unguardedRingClearing) Compute(s corda.Snapshot) corda.Decision {
	c, err := config.FromIntervals(0, s.Lo)
	if err != nil {
		return corda.Stay
	}
	if ClassifyA(c) == NotInA {
		return corda.Stay // phase 1 irrelevant for this regression
	}
	for viewIsLo, w := range map[bool]config.View{true: s.Lo, false: s.Hi} {
		k := len(w)
		if k < 5 {
			continue
		}
		// Literal line 7: q0>0, q1=0, q2=1, qi=0 ∀i∈{3..k−2}, q_{k−1}>2.
		match := w[0] > 0 && w[1] == 0 && w[2] == 1 && w[k-1] > 2
		for i := 3; i <= k-2; i++ {
			if w[i] != 0 {
				match = false
			}
		}
		if match {
			if viewIsLo {
				return corda.TowardHi // towards q_{k−1} of the Lo view
			}
			return corda.TowardLo
		}
	}
	// All other rules as implemented.
	if d, ok := phase2Decision(s.Lo, true); ok {
		return d
	}
	if d, ok := phase2Decision(s.Hi, false); ok {
		return d
	}
	return corda.Stay
}

func TestLine7GuardRegression(t *testing.T) {
	// The A-d configuration for (k,n) = (5,11): S={0,1}, pair={3,4},
	// single robot at 8, two empty nodes between it and S.
	c := config.MustNew(11, 0, 1, 3, 4, 8)
	if got := ClassifyA(c); got != Ad {
		t.Fatalf("fixture classifies as %v, want A-d", got)
	}

	// With the literal line 7, the single robot is sent *away* from the
	// block: the configuration oscillates A-d ↔ A-d forever and the two
	// far edges are never cleared.
	w := corda.FromConfig(c, true)
	r := corda.NewRunner(w, unguardedRingClearing{})
	seen := map[string]int{}
	osc := 0
	for moves := 0; moves < 8; {
		moved, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !moved {
			continue
		}
		moves++
		key := w.Config().Canonical()
		seen[key]++
		if seen[key] > 1 {
			osc++
		}
		if got := ClassifyA(w.Config()); got != Ad {
			t.Fatalf("literal line 7 left A-d (%v) — regression scenario changed", got)
		}
	}
	if osc < 3 {
		t.Fatalf("expected an A-d ↔ A-d oscillation, distinct states seen: %v", seen)
	}

	// With the guarded implementation the same configuration progresses
	// A-d → A-e → A-a within two moves.
	w2 := corda.FromConfig(c, true)
	r2 := corda.NewRunner(w2, RingClearing{})
	classes := []AClass{}
	for moves := 0; moves < 2; {
		moved, err := r2.Step()
		if err != nil {
			t.Fatal(err)
		}
		if moved {
			moves++
			classes = append(classes, ClassifyA(w2.Config()))
		}
	}
	if classes[0] != Ae || classes[1] != Aa {
		t.Fatalf("guarded rule produced %v, want [A-e A-a]", classes)
	}
}

func TestPhase2ViewMatchesAgree(t *testing.T) {
	// Fig. 11 states some rules twice, once per reading direction (lines
	// 5/11 are A-b seen from the two sides). A robot may therefore match
	// on both of its views — but then both matches must direct the same
	// physical move, otherwise the algorithm would be ill-defined.
	for _, tc := range []struct{ n, k int }{{11, 5}, {12, 6}, {13, 7}, {14, 10}} {
		c, err := config.CStar(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 3*(tc.n+5); step++ {
			w := corda.FromConfig(c, true)
			for id := 0; id < w.K(); id++ {
				snap, _ := w.Snapshot(id)
				dLo, loMatch := phase2Decision(snap.Lo, true)
				dHi, hiMatch := phase2Decision(snap.Hi, false)
				if loMatch && hiMatch && dLo != dHi {
					t.Fatalf("(%d,%d): robot %d gets contradictory decisions %v/%v in %v",
						tc.n, tc.k, id, dLo, dHi, c)
				}
			}
			c = stepPhase2(t, c)
		}
	}
}

func TestOpenCase510IsAmbiguous(t *testing.T) {
	// Why the paper leaves (k,n) = (5,10) open: in its A-d configuration
	// the long gap equals the 2-gap, so the single robot's two views
	// coincide — the model cannot direct it. We exhibit the symmetric
	// snapshot directly.
	c := config.MustNew(10, 0, 1, 3, 4, 7) // S={0,1}, pair={3,4}, r=7, gaps 1,2,2
	if got := ClassifyA(c); got != Ad && got != Ae {
		t.Logf("classification: %v", got)
	}
	w := corda.FromConfig(c, true)
	// Robot ids follow node order; the single robot at node 7 is id 4.
	snap, _ := w.Snapshot(4)
	if !snap.Symmetric() {
		t.Fatalf("expected the (5,10) A-d mover's views to coincide, got Lo=%v Hi=%v", snap.Lo, snap.Hi)
	}
}
