package search

import (
	"fmt"

	"ringrobots/internal/align"
	"ringrobots/internal/config"
	"ringrobots/internal/corda"
)

// AClass labels the configuration families A-a … A-f of §4.3 (Fig. 12)
// used by the second phase of Algorithm Ring Clearing.
type AClass int

const (
	// NotInA marks configurations outside the family A, handled by Align.
	NotInA AClass = iota
	// Aa: a block of k−2 robots, one empty node, then two adjacent robots.
	Aa
	// Ab: a block of k−2, one empty node, a single robot, and another
	// single robot not adjacent to anything.
	Ab
	// Ac: a block of k−2, one empty node, a single robot; the second
	// single robot two empty nodes from the block's far side.
	Ac
	// Ad: a block of k−3, one empty node, two adjacent robots; a single
	// robot two empty nodes from the block's far side.
	Ad
	// Ae: like Ad with the single robot one empty node from the block.
	Ae
	// Af: asymmetric configurations with a block of k−1 and one single
	// robot (contains C*).
	Af
)

func (a AClass) String() string {
	switch a {
	case NotInA:
		return "not-in-A"
	case Aa:
		return "A-a"
	case Ab:
		return "A-b"
	case Ac:
		return "A-c"
	case Ad:
		return "A-d"
	case Ae:
		return "A-e"
	case Af:
		return "A-f"
	}
	return fmt.Sprintf("AClass(%d)", int(a))
}

// arc is one block of an oriented block/gap reading of a configuration:
// the block length followed by the gap to the next block in reading order.
type arc struct{ blockLen, gap int }

// orientedReadings returns every rotation of the block/gap sequence in
// both reading directions, so structural patterns can be matched without
// caring about the anonymous ring's orientation.
func orientedReadings(c config.Config) [][]arc {
	runs := c.Runs()
	m := len(runs)
	cw := make([]arc, m)
	for i, r := range runs {
		cw[i] = arc{r.Len, r.GapAfter}
	}
	// Counter-clockwise reading starting from block 0: blocks in reverse
	// cyclic order, each followed by the gap on its counter-clockwise
	// side.
	ccw := make([]arc, m)
	for i := 0; i < m; i++ {
		ccw[i] = arc{cw[(m-i)%m].blockLen, cw[(m-i-1+m)%m].gap}
	}
	out := make([][]arc, 0, 2*m)
	for s := 0; s < m; s++ {
		rotCW := make([]arc, m)
		rotCCW := make([]arc, m)
		for j := 0; j < m; j++ {
			rotCW[j] = cw[(s+j)%m]
			rotCCW[j] = ccw[(s+j)%m]
		}
		out = append(out, rotCW, rotCCW)
	}
	return out
}

// ClassifyA determines the A-family of a configuration from its block
// structure. It is the global (whole-configuration) counterpart of the
// per-robot view conditions in Fig. 11 and is used by tests and by phase
// detection.
//
// Note the origin of the paper's (k,n) = (5,10) exclusion: there the A-d
// family's two size-2 blocks become interchangeable (the gap between pair
// and single equals 2, mirroring the single-to-block gap), making the
// roles — hence the mover — ambiguous at the view level.
func ClassifyA(c config.Config) AClass {
	k := c.K()
	for _, seq := range orientedReadings(c) {
		switch len(seq) {
		case 2:
			a, b := seq[0], seq[1]
			// A-a: (k−2 block) —1— (pair) —G—, G > 2 for k < n−3.
			if a.blockLen == k-2 && a.gap == 1 && b.blockLen == 2 && b.gap > 2 {
				return Aa
			}
			// A-f: (k−1 block) —x— (single) —y— with x ≠ y (asymmetric).
			if a.blockLen == k-1 && b.blockLen == 1 && a.gap != b.gap {
				return Af
			}
		case 3:
			a, b, cc := seq[0], seq[1], seq[2]
			// A-b: (k−2) —1— (r′) —x— (r) —y—, y > 2.
			if a.blockLen == k-2 && a.gap == 1 && b.blockLen == 1 && cc.blockLen == 1 && cc.gap > 2 {
				return Ab
			}
			// A-c: same with y = 2.
			if a.blockLen == k-2 && a.gap == 1 && b.blockLen == 1 && cc.blockLen == 1 && cc.gap == 2 {
				return Ac
			}
			// A-d: (k−3) —1— (pair) —L— (single) —2—.
			if a.blockLen == k-3 && a.gap == 1 && b.blockLen == 2 && cc.blockLen == 1 && cc.gap == 2 {
				return Ad
			}
			// A-e: (k−3) —1— (pair) —L— (single) —1—.
			if a.blockLen == k-3 && a.gap == 1 && b.blockLen == 2 && cc.blockLen == 1 && cc.gap == 1 {
				return Ae
			}
		}
	}
	return NotInA
}

// RingClearing is the per-robot algorithm of Fig. 11: phase 1 runs Align
// until the configuration enters the family A; phase 2 cycles through
// A-a → A-b → … → A-e forever, clearing and exploring the ring
// (Theorem 6). Valid for n ≥ 10 and 5 ≤ k < n−3, except (k,n) = (5,10).
type RingClearing struct{}

// Name implements corda.Algorithm.
func (RingClearing) Name() string { return "ring-clearing" }

// Validate checks Theorem 6's parameter range.
func (RingClearing) Validate(n, k int) error {
	if n < 10 {
		return fmt.Errorf("search: ring clearing needs n >= 10, got n=%d (impossible for n <= 9, Theorem 5)", n)
	}
	if k < 5 {
		return fmt.Errorf("search: ring clearing needs k >= 5, got k=%d (impossible for k <= 3; k=4 is open)", k)
	}
	if k >= n-3 {
		return fmt.Errorf("search: ring clearing needs k < n-3, got k=%d, n=%d (use NminusThree for k=n-3)", k, n)
	}
	if k == 5 && n == 10 {
		return fmt.Errorf("search: the case k=5, n=10 is open in the paper and unsupported")
	}
	return nil
}

// Compute implements corda.Algorithm.
func (RingClearing) Compute(s corda.Snapshot) corda.Decision {
	c, err := config.FromIntervals(0, s.Lo)
	if err != nil {
		return corda.Stay
	}
	if ClassifyA(c) == NotInA {
		return align.DecideReconstructed(c)
	}
	// Phase 2: evaluate the conditions of Fig. 11 on both views. A match
	// on a view W means: "move towards q_{k−1}" = against W's reading
	// direction, "move towards q0" = along W's reading direction.
	if d, ok := phase2Decision(s.Lo, true); ok {
		return d
	}
	if d, ok := phase2Decision(s.Hi, false); ok {
		return d
	}
	return corda.Stay
}

// phase2Decision evaluates the movement conditions of Fig. 11 on one view.
// viewIsLo reports whether the view is the snapshot's Lo view; the
// returned decision is expressed in Lo/Hi terms.
func phase2Decision(w config.View, viewIsLo bool) (corda.Decision, bool) {
	k := len(w)
	if k < 5 {
		return corda.Stay, false
	}
	towardQ0 := corda.TowardLo    // along the reading direction of w
	towardQLast := corda.TowardHi // against it
	if !viewIsLo {
		towardQ0, towardQLast = corda.TowardHi, corda.TowardLo
	}

	allZero := func(from, to int) bool { // inclusive range check
		for i := from; i <= to; i++ {
			if w[i] != 0 {
				return false
			}
		}
		return true
	}

	// Line 4 (A-a): q0=0, q1=1, qi=0 ∀i∈{2..k−2}, q_{k−1}>2.
	if w[0] == 0 && w[1] == 1 && allZero(2, k-2) && w[k-1] > 2 {
		return towardQLast, true
	}
	// Line 5 (A-b): q0>0, q_{k−1}>2, q1=1, qi=0 ∀i∈{2..k−2}.
	if w[0] > 0 && w[k-1] > 2 && w[1] == 1 && allZero(2, k-2) {
		return towardQLast, true
	}
	// Line 6 (A-c): qi=0 ∀i∈{0..k−4}, q_{k−3}=2, q_{k−2}>0, q_{k−1}=1.
	if allZero(0, k-4) && w[k-3] == 2 && w[k-2] > 0 && w[k-1] == 1 {
		return towardQLast, true
	}
	// Line 7 (A-d): q0>0, q1=0, q2=1, qi=0 ∀i∈{3..k−2}, q_{k−1}>2.
	// Deviation from the paper's literal "q0 > 0": for k=5 that condition
	// also matches the A-d and A-e movers' toward-S views (q0 ∈ {1,2}),
	// colliding with lines 12–13 and sending the mover *away* from the
	// block (observed as an A-d ↔ A-d oscillation that never clears the
	// ring). Lines 12–13 are the operative A-d/A-e rules for every k in
	// Theorem 6's range, so line 7 is restricted to q0 > 2, where it
	// never conflicts. Recorded in EXPERIMENTS.md.
	if w[0] > 2 && w[1] == 0 && w[2] == 1 && allZero(3, k-2) && w[k-1] > 2 {
		return towardQLast, true
	}
	// Line 8 (A-f): qi=0 ∀i∈{0..k−3}, q_{k−2}>q_{k−1}>0, q_{k−2}+q_{k−1}>3.
	if allZero(0, k-3) && w[k-2] > w[k-1] && w[k-1] > 0 && w[k-2]+w[k-1] > 3 {
		return towardQLast, true
	}
	// Line 11 (A-b mirrored): q0>2, q_{k−1}>0, qi=0 ∀i∈{1..k−3}, q_{k−2}=1.
	if w[0] > 2 && w[k-1] > 0 && allZero(1, k-3) && w[k-2] == 1 {
		return towardQ0, true
	}
	// Line 12 (A-d mirrored): q0=2, qi=0 ∀i∈{1..k−4}, q_{k−3}=1, q_{k−2}=0, q_{k−1}>0.
	if w[0] == 2 && allZero(1, k-4) && w[k-3] == 1 && w[k-2] == 0 && w[k-1] > 0 {
		return towardQ0, true
	}
	// Line 13 (A-e): q0=1, qi=0 ∀i∈{1..k−4}, q_{k−3}=1, q_{k−2}=0, q_{k−1}>1.
	if w[0] == 1 && allZero(1, k-4) && w[k-3] == 1 && w[k-2] == 0 && w[k-1] > 1 {
		return towardQ0, true
	}
	return corda.Stay, false
}
