// Package search implements the exclusive perpetual graph searching task
// (§4): the mixed graph-searching substrate with instantaneous
// recontamination, the paper's Ring Clearing algorithm (§4.3) for
// 5 ≤ k < n−3, the NminusThree algorithm (§4.4) for k = n−3, and
// verifiers certifying that an execution perpetually clears the ring.
package search

import (
	"fmt"
	"strings"

	"ringrobots/internal/corda"
	"ringrobots/internal/ring"
)

// Contamination tracks the clear/contaminated state of every ring edge
// under the mixed graph-searching rules (§4.1):
//
//   - an edge becomes clear when a robot traverses it, or while both its
//     endpoints are occupied;
//   - a clear edge is instantaneously recontaminated if a robot-free path
//     connects one of its endpoints to an endpoint of a contaminated edge.
//
// All edges start contaminated. Contamination implements
// corda.MoveObserver so it can be attached to any runner or engine.
type Contamination struct {
	r     ring.Ring
	clear []bool

	// clearedTimes[e] counts contaminated→clear transitions of edge e.
	clearedTimes []int
	// allClearEvents counts transitions into the all-edges-clear state —
	// the "ring cleared" events whose recurrence defines perpetual
	// searching.
	allClearEvents int
	wasAllClear    bool
}

// NewContamination returns a tracker for the world's ring with every edge
// contaminated, then immediately applies the guarded-edge rule to the
// world's initial positions (edges between adjacent robots start clear).
func NewContamination(w *corda.World) *Contamination {
	t := &Contamination{
		r:            w.Ring(),
		clear:        make([]bool, w.Ring().Edges()),
		clearedTimes: make([]int, w.Ring().Edges()),
	}
	t.refresh(w, -1)
	return t
}

// ObserveMove implements corda.MoveObserver.
func (t *Contamination) ObserveMove(ev corda.MoveEvent, w *corda.World) {
	t.refresh(w, int(t.r.EdgeBetween(ev.From, ev.To)))
}

// Reset recontaminates every edge (the adversarial "worst moment" probe
// used to certify perpetual clearing), then re-applies the guarded-edge
// rule for the world's current positions.
func (t *Contamination) Reset(w *corda.World) {
	for e := range t.clear {
		t.clear[e] = false
	}
	t.wasAllClear = false
	t.refresh(w, -1)
}

// refresh recomputes edge states after a move along traversed (-1 when
// only re-evaluating occupancy, e.g. at initialization).
func (t *Contamination) refresh(w *corda.World, traversed int) {
	was := make([]bool, len(t.clear))
	copy(was, t.clear)

	if traversed >= 0 {
		t.clear[traversed] = true
	}
	// Guarded edges are clear while both endpoints are occupied.
	for e := 0; e < t.r.Edges(); e++ {
		u, v := t.r.EdgeEnds(ring.Edge(e))
		if w.CountAt(u) > 0 && w.CountAt(v) > 0 {
			t.clear[e] = true
		}
	}
	// Instantaneous recontamination closure: contamination spreads from
	// contaminated edges through unoccupied endpoints.
	for changed := true; changed; {
		changed = false
		for e := 0; e < t.r.Edges(); e++ {
			if t.clear[e] {
				continue
			}
			u, v := t.r.EdgeEnds(ring.Edge(e))
			for _, z := range []int{u, v} {
				if w.CountAt(z) > 0 {
					continue
				}
				a, b := t.r.IncidentEdges(z)
				for _, f := range []ring.Edge{a, b} {
					if t.clear[f] {
						t.clear[f] = false
						changed = true
					}
				}
			}
		}
	}

	for e := range t.clear {
		if t.clear[e] && !was[e] {
			t.clearedTimes[e]++
		}
	}
	now := t.AllClear()
	if now && !t.wasAllClear {
		t.allClearEvents++
	}
	t.wasAllClear = now
}

// AllClear reports whether every edge is currently clear — the ring is
// searched.
func (t *Contamination) AllClear() bool {
	for _, c := range t.clear {
		if !c {
			return false
		}
	}
	return true
}

// EdgeClear reports whether edge e is clear.
func (t *Contamination) EdgeClear(e ring.Edge) bool { return t.clear[e] }

// ClearCount returns the number of currently clear edges.
func (t *Contamination) ClearCount() int {
	n := 0
	for _, c := range t.clear {
		if c {
			n++
		}
	}
	return n
}

// AllClearEvents returns how many times the system has entered the
// all-edges-clear state.
func (t *Contamination) AllClearEvents() int { return t.allClearEvents }

// ClearedTimes returns how many times edge e transitioned to clear.
func (t *Contamination) ClearedTimes(e ring.Edge) int { return t.clearedTimes[e] }

// MinClearedTimes returns the minimum clear-transition count over all
// edges — positive once every edge has been cleared at least once.
func (t *Contamination) MinClearedTimes() int {
	m := t.clearedTimes[0]
	for _, c := range t.clearedTimes[1:] {
		if c < m {
			m = c
		}
	}
	return m
}

// StateKey encodes the edge states compactly for cycle detection.
func (t *Contamination) StateKey() string {
	var b strings.Builder
	for _, c := range t.clear {
		if c {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

func (t *Contamination) String() string {
	return fmt.Sprintf("contamination{%s, clears=%d}", t.StateKey(), t.allClearEvents)
}
