package search

import (
	"fmt"

	"ringrobots/internal/config"
	"ringrobots/internal/corda"
	"ringrobots/internal/explore"
)

// Report certifies an execution of a perpetual searching algorithm.
//
// Because the runner is deterministic (round-robin scheduling) and the
// joint state (robot positions, scheduler phase) is finite, a detected
// state recurrence proves the movement pattern repeats verbatim forever.
// Perpetual clearing is then certified by adversarial recontamination
// probes: at several offsets within the steady cycle every edge is
// recontaminated at once, and the run must reach the all-edges-clear
// state again within a bounded window. Since the probes cover the whole
// cycle and the cycle repeats forever, the ring is cleared infinitely
// often from any point of the execution — the paper's perpetual-searching
// property. Each probe also implies every edge transitions
// contaminated→clear, giving the per-edge "cleared infinitely often"
// reading as well.
type Report struct {
	// StepsToCycle counts activations until the steady-state recurrence.
	StepsToCycle int
	// CycleLen is the cycle length in activations.
	CycleLen int
	// MovesPerCycle counts executed moves within one cycle.
	MovesPerCycle int
	// Probes is the number of full-recontamination probes performed.
	Probes int
	// MaxRecoverySteps is the worst number of activations any probe
	// needed before the ring was completely clear again.
	MaxRecoverySteps int
	// Explored reports whether every robot visited every node during the
	// verification, proving perpetual exploration.
	Explored bool
}

// Verify runs alg from configuration c under round-robin scheduling and
// certifies perpetual clearing and perpetual exploration. The budget
// bounds pre-cycle activations; Verify fails if no recurrence appears
// within it, or if any recontamination probe fails to re-clear the ring.
func Verify(c config.Config, alg corda.Algorithm, budget int) (Report, error) {
	w := corda.FromConfig(c, true)
	r := corda.NewRunner(w, alg)
	cont := NewContamination(w)
	r.Observe(cont)

	key := func() string {
		return fmt.Sprintf("%s|%d", w.StateKey(), r.Steps()%w.K())
	}

	// Phase A: find the steady-state movement recurrence (positions and
	// scheduler phase; contamination is probed separately in phase B).
	det := corda.NewCycleDetector()
	det.Offer(key())
	for !det.Detected() {
		if r.Steps() >= budget {
			return Report{}, fmt.Errorf("search: no steady-state cycle within %d activations from %v", budget, c)
		}
		if _, err := r.Step(); err != nil {
			return Report{}, err
		}
		det.Offer(key())
	}
	rep := Report{StepsToCycle: r.Steps(), CycleLen: det.Len}

	// Phase B: measure one cycle and probe perpetual clearing at several
	// offsets within it.
	exp := explore.NewTracker(w)
	r.Observe(exp)
	probeEvery := det.Len / 4
	if probeEvery == 0 {
		probeEvery = 1
	}
	movesBefore := r.Moves()
	window := 4 * det.Len // recovery allowance per probe
	for offset := 0; offset < det.Len; offset += probeEvery {
		// Advance to the probe offset.
		for i := 0; i < probeEvery && offset > 0; i++ {
			if _, err := r.Step(); err != nil {
				return Report{}, err
			}
		}
		cont.Reset(w)
		recovered := false
		for i := 0; i < window; i++ {
			if _, err := r.Step(); err != nil {
				return Report{}, err
			}
			if cont.AllClear() {
				if i+1 > rep.MaxRecoverySteps {
					rep.MaxRecoverySteps = i + 1
				}
				recovered = true
				break
			}
		}
		if !recovered {
			return rep, fmt.Errorf("search: probe at offset %d not recovered within %d activations (alg %s, start %v)",
				offset, window, alg.Name(), c)
		}
		rep.Probes++
	}
	rep.MovesPerCycle = 0
	if det.Len > 0 {
		// Re-measure a clean cycle for the moves metric.
		m0 := r.Moves()
		for i := 0; i < det.Len; i++ {
			if _, err := r.Step(); err != nil {
				return Report{}, err
			}
		}
		rep.MovesPerCycle = r.Moves() - m0
	}
	_ = movesBefore

	// Phase C: exploration — keep cycling until every robot has visited
	// every node (bounded by n·k extra cycles, ample for the caterpillar
	// role rotation of Theorem 6 and the block rotation of Theorem 7).
	maxExtra := det.Len * (w.N()*w.K() + 2)
	for i := 0; i < maxExtra && !exp.FullyExplored(1); i++ {
		if _, err := r.Step(); err != nil {
			return Report{}, err
		}
	}
	rep.Explored = exp.FullyExplored(1)
	return rep, nil
}
