package search

import (
	"testing"

	"ringrobots/internal/config"
	"ringrobots/internal/corda"
	"ringrobots/internal/ring"
)

func TestContaminationInitialState(t *testing.T) {
	// Isolated robots: every edge contaminated.
	w := corda.FromConfig(config.MustNew(8, 0, 3, 6), true)
	c := NewContamination(w)
	if c.ClearCount() != 0 {
		t.Fatalf("isolated robots cleared %d edges at init", c.ClearCount())
	}
	// Adjacent robots guard their shared edge from the start.
	w2 := corda.FromConfig(config.MustNew(8, 0, 1, 2), true)
	c2 := NewContamination(w2)
	if c2.ClearCount() != 2 {
		t.Fatalf("block of 3 should guard 2 edges, got %d", c2.ClearCount())
	}
	if !c2.EdgeClear(ring.Edge(0)) || !c2.EdgeClear(ring.Edge(1)) {
		t.Fatal("wrong guarded edges")
	}
}

func TestContaminationTraversalClears(t *testing.T) {
	w := corda.FromConfig(config.MustNew(8, 0, 4), true)
	c := NewContamination(w)
	ev, err := w.MoveRobot(0, ring.CCW) // 0 → 7
	if err != nil {
		t.Fatal(err)
	}
	c.ObserveMove(ev, w)
	// Edge 7 (between 7 and 0) was traversed; but node 0 is now empty and
	// the contaminated edge 0-1 touches it: instant recontamination.
	if c.EdgeClear(ring.Edge(7)) {
		t.Fatal("edge 7 should be recontaminated through empty node 0")
	}
}

func TestContaminationSweepByPairOfRobots(t *testing.T) {
	// The classic 2-robot strategy of §4.1: one robot anchors at v, the
	// other walks around the ring; edges behind the walker stay clear
	// because the anchor blocks recontamination.
	n := 8
	w := corda.FromConfig(config.MustNew(n, 0, 1), true)
	c := NewContamination(w)
	// Robot 1 walks from node 1 all the way around to node 7.
	for i := 0; i < n-2; i++ {
		ev, err := w.MoveRobot(1, ring.CW)
		if err != nil {
			t.Fatal(err)
		}
		c.ObserveMove(ev, w)
		want := i + 2
		if i == n-3 {
			// Final step: the traversed edge clears and the wraparound
			// edge becomes guarded simultaneously.
			want = n
		}
		if got := c.ClearCount(); got != want {
			t.Fatalf("after %d walk steps: %d clear edges, want %d", i+1, got, want)
		}
	}
	if !c.AllClear() {
		t.Fatal("ring not cleared after the full sweep")
	}
	if c.AllClearEvents() != 1 {
		t.Fatalf("all-clear events = %d, want 1", c.AllClearEvents())
	}
}

func TestContaminationRecontaminationClosure(t *testing.T) {
	// Clear some edges, then expose a cleared edge to the contaminated
	// region: instantaneous recontamination must reclaim it, even though
	// the robot just traversed it.
	n := 8
	w := corda.FromConfig(config.MustNew(n, 0, 1), true)
	c := NewContamination(w)
	for i := 0; i < 3; i++ { // robot 1 walks 1→2→3→4
		ev, _ := w.MoveRobot(1, ring.CW)
		c.ObserveMove(ev, w)
	}
	if c.ClearCount() != 4 { // edges 0 (guarded), 1..3 (traversed)
		t.Fatalf("setup: %d clear edges, want 4", c.ClearCount())
	}
	// The anchor advances 0→1: it traverses edge 0, but node 0 becomes
	// empty and touches the contaminated edge 7-0, so edge 0 is instantly
	// recontaminated despite the traversal.
	ev, _ := w.MoveRobot(0, ring.CW)
	c.ObserveMove(ev, w)
	if c.EdgeClear(ring.Edge(0)) {
		t.Fatal("edge 0 should be recontaminated through empty node 0")
	}
	// The segment guarded between the robots at 1 and 4 stays clear.
	if !c.EdgeClear(ring.Edge(1)) || !c.EdgeClear(ring.Edge(2)) || !c.EdgeClear(ring.Edge(3)) {
		t.Fatal("protected segment lost clearance")
	}
}

func TestContaminationGuardedEdgeImmune(t *testing.T) {
	// An edge with both endpoints occupied stays clear even when all
	// surrounding edges are contaminated.
	w := corda.FromConfig(config.MustNew(9, 3, 4), true)
	c := NewContamination(w)
	if !c.EdgeClear(ring.Edge(3)) {
		t.Fatal("guarded edge not clear")
	}
	if c.ClearCount() != 1 {
		t.Fatalf("clear edges = %d, want 1", c.ClearCount())
	}
	if c.MinClearedTimes() != 0 {
		t.Fatal("min cleared times should be 0 (most edges never cleared)")
	}
	if c.ClearedTimes(ring.Edge(3)) != 1 {
		t.Fatal("guarded edge should count one clear transition")
	}
}

func TestClassifyAOnPaperFamilies(t *testing.T) {
	// n=12, k=6 instances of each family, built per Fig. 12.
	cases := []struct {
		name  string
		nodes []int
		want  AClass
	}{
		{"A-a", []int{0, 1, 2, 3, 5, 6}, Aa},                                  // block 4, gap, pair
		{"A-b", []int{0, 1, 2, 3, 5, 7}, Ab},                                  // block 4, gap, single, single far
		{"A-c", []int{0, 1, 2, 3, 5, 9}, Ac},                                  // single 2 gaps from far side
		{"A-d", []int{0, 1, 2, 4, 5, 9}, Ad},                                  // block 3, pair, single at 2
		{"A-e", []int{0, 1, 2, 4, 5, 10}, Ae},                                 // single at 1
		{"A-f/C*", []int{0, 1, 2, 3, 4, 6}, Af},                               // C*(12,6)
		{"A-f general", []int{0, 1, 2, 3, 4, 7}, Af},                          // k−1 block + single, gaps 2,4
		{"not in A: symmetric block+single", []int{0, 1, 2, 3, 4, 8}, NotInA}, // gaps 3,3
		{"not in A: three singles", []int{0, 2, 4, 6, 8, 10}, NotInA},
		{"not in A: A-b with y=1", []int{0, 1, 2, 3, 5, 10}, NotInA},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := config.MustNew(12, tc.nodes...)
			if got := ClassifyA(c); got != tc.want {
				t.Errorf("ClassifyA(%v) = %v, want %v", tc.nodes, got, tc.want)
			}
		})
	}
}

func TestClassifyAMirrorInvariance(t *testing.T) {
	// Classification must not depend on orientation or rotation.
	base := config.MustNew(12, 0, 1, 2, 3, 5, 6) // A-a
	n := 12
	for shift := 0; shift < n; shift++ {
		rot := make([]int, 0, 6)
		ref := make([]int, 0, 6)
		for _, u := range base.Nodes() {
			rot = append(rot, (u+shift)%n)
			ref = append(ref, ((n-u)+shift)%n)
		}
		if got := ClassifyA(config.MustNew(n, rot...)); got != Aa {
			t.Fatalf("rotation by %d: %v", shift, got)
		}
		if got := ClassifyA(config.MustNew(n, ref...)); got != Aa {
			t.Fatalf("reflection+%d: %v", shift, got)
		}
	}
}

func TestRingClearingValidate(t *testing.T) {
	var rc RingClearing
	if err := rc.Validate(9, 5); err == nil {
		t.Error("accepted n=9")
	}
	if err := rc.Validate(12, 4); err == nil {
		t.Error("accepted k=4")
	}
	if err := rc.Validate(12, 9); err == nil {
		t.Error("accepted k=n-3")
	}
	if err := rc.Validate(10, 5); err == nil {
		t.Error("accepted the open case (5,10)")
	}
	if err := rc.Validate(11, 5); err != nil {
		t.Errorf("rejected valid (5,11): %v", err)
	}
	if err := rc.Validate(12, 6); err != nil {
		t.Errorf("rejected valid (6,12): %v", err)
	}
}

// stepPhase2 drives one move from a configuration already in A and
// returns the successor configuration, asserting exactly one robot moves.
func stepPhase2(t *testing.T, c config.Config) config.Config {
	t.Helper()
	w := corda.FromConfig(c, true)
	movers := corda.MoverSet(w, RingClearing{})
	if len(movers) != 1 {
		t.Fatalf("config %v (%v): %d movers, want 1", c, ClassifyA(c), len(movers))
	}
	r := corda.NewRunner(w, RingClearing{})
	for {
		moved, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		if moved {
			break
		}
	}
	return w.Config()
}

func TestTheorem6CycleStructure(t *testing.T) {
	// From C* the algorithm enters A and cycles A-a → A-b* → A-c → A-d →
	// A-e → A-a; the class sequence must follow Fig. 12.
	for _, tc := range []struct{ n, k int }{{11, 5}, {12, 5}, {12, 6}, {13, 7}, {14, 6}, {16, 9}, {15, 11}} {
		c, err := config.CStar(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if err := (RingClearing{}).Validate(tc.n, tc.k); err != nil {
			t.Fatal(err)
		}
		// C* is in A-f: first move enters A-a or A-b.
		if got := ClassifyA(c); got != Af {
			t.Fatalf("(%d,%d): C* classified %v", tc.n, tc.k, got)
		}
		c = stepPhase2(t, c)
		if got := ClassifyA(c); got != Aa && got != Ab {
			t.Fatalf("(%d,%d): after C*: %v, want A-a or A-b", tc.n, tc.k, got)
		}
		// Walk 5 full cycles and validate the class transition relation.
		valid := map[AClass][]AClass{
			Aa: {Ab, Ac}, // straight to A-c when the long gap is exactly 3
			Ab: {Ab, Ac},
			Ac: {Ad},
			Ad: {Ae},
			Ae: {Aa},
		}
		prev := ClassifyA(c)
		seen := map[AClass]bool{prev: true}
		moves := 5 * (tc.n + 5)
		for i := 0; i < moves; i++ {
			c = stepPhase2(t, c)
			cur := ClassifyA(c)
			ok := false
			for _, nxt := range valid[prev] {
				if cur == nxt {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("(%d,%d): illegal transition %v → %v at %v", tc.n, tc.k, prev, cur, c)
			}
			seen[cur] = true
			prev = cur
		}
		mustSee := []AClass{Aa, Ac, Ad, Ae}
		if tc.n-tc.k-1 > 3 {
			// With a long gap of exactly 3 the A-b walk phase is empty.
			mustSee = append(mustSee, Ab)
		}
		for _, class := range mustSee {
			if !seen[class] {
				t.Fatalf("(%d,%d): class %v never visited", tc.n, tc.k, class)
			}
		}
	}
}

func TestTheorem6VerifyFromEveryRigidConfig(t *testing.T) {
	// E5: perpetual searching + exploration certified from C* for a grid
	// of (k,n); the Align phase from arbitrary rigid configurations is
	// covered by the align package and the core package's end-to-end test.
	for _, tc := range []struct{ n, k int }{{11, 5}, {11, 6}, {12, 5}, {12, 6}, {12, 7}, {13, 6}, {13, 8}, {14, 9}, {14, 5}} {
		c, err := config.CStar(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Verify(c, RingClearing{}, 500*tc.n*tc.k)
		if err != nil {
			t.Fatalf("(%d,%d): %v", tc.n, tc.k, err)
		}
		if rep.Probes < 4 {
			t.Errorf("(%d,%d): too few recontamination probes: %+v", tc.n, tc.k, rep)
		}
		if rep.MaxRecoverySteps <= 0 || rep.MaxRecoverySteps > 4*rep.CycleLen {
			t.Errorf("(%d,%d): implausible recovery bound: %+v", tc.n, tc.k, rep)
		}
		if !rep.Explored {
			t.Errorf("(%d,%d): not all robots visited all nodes (report %+v)", tc.n, tc.k, rep)
		}
	}
}

func TestNminusThreeValidate(t *testing.T) {
	var alg NminusThree
	if err := alg.Validate(12, 8); err == nil {
		t.Error("accepted k != n-3")
	}
	if err := alg.Validate(9, 6); err == nil {
		t.Error("accepted n=9")
	}
	if err := alg.Validate(10, 7); err != nil {
		t.Errorf("rejected valid (10,7): %v", err)
	}
}

func TestN3BlocksDecomposition(t *testing.T) {
	// n=10, k=7: empties {0,5,8} → blocks 4 (1-4), 2 (6,7), 1 (9).
	c := config.MustNew(10, 1, 2, 3, 4, 6, 7, 9)
	blocks, err := n3Blocks(c)
	if err != nil {
		t.Fatal(err)
	}
	if blocks[0].size != 1 || blocks[1].size != 2 || blocks[2].size != 4 {
		t.Fatalf("block sizes %d,%d,%d", blocks[0].size, blocks[1].size, blocks[2].size)
	}
	// Non-distinct blocks → not rigid → error.
	sym := config.MustNew(9, 1, 2, 4, 5, 7, 8)
	if _, err := n3Blocks(sym); err == nil {
		t.Error("accepted equal blocks")
	}
	// Wrong robot count → error.
	if _, err := n3Blocks(config.MustNew(10, 0, 1)); err == nil {
		t.Error("accepted k != n-3")
	}
}

func TestN3PlanPhase2Cycle(t *testing.T) {
	// R2.1 → R2.2 → R2.3 → R2.1 on n=12, k=9.
	n, k := 12, 9
	// (0,2,k−2) = (0,2,7): occupied: 7-block 0..6, empty 7, pair 8,9,
	// empties 10,11.
	c := config.MustNew(n, 0, 1, 2, 3, 4, 5, 6, 8, 9)
	blocks, err := n3Blocks(c)
	if err != nil {
		t.Fatal(err)
	}
	if blocks[0].size != 0 || blocks[1].size != 2 || blocks[2].size != k-2 {
		t.Fatalf("fixture is not (0,2,k-2): %d,%d,%d", blocks[0].size, blocks[1].size, blocks[2].size)
	}
	rules := []N3Rule{}
	for i := 0; i < 9; i++ {
		p, err := ComputeN3Plan(c)
		if err != nil {
			t.Fatalf("step %d at %v: %v", i, c, err)
		}
		rules = append(rules, p.Rule)
		next, err := c.Move(p.Mover, p.Target)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		c = next
	}
	want := []N3Rule{N3R21, N3R22, N3R23, N3R21, N3R22, N3R23, N3R21, N3R22, N3R23}
	for i := range want {
		if rules[i] != want[i] {
			t.Fatalf("rule sequence %v, want %v", rules, want)
		}
	}
}

func TestN3Phase1ReachesFinal(t *testing.T) {
	// Lemma 9: phase 1 reaches a final configuration from any rigid
	// configuration. Exhaustive over all rigid (A,B,C) partitions for
	// n = 10..16.
	for n := 10; n <= 16; n++ {
		k := n - 3
		for a := 0; a <= k/3; a++ {
			for b := a + 1; b < k-a-b+1; b++ {
				cBig := k - a - b
				if !(a < b && b < cBig) {
					continue
				}
				c := buildN3(n, a, b)
				steps := 0
				for {
					blocks, err := n3Blocks(c)
					if err != nil {
						t.Fatalf("n=%d (A,B)=(%d,%d): %v at %v", n, a, b, err, c)
					}
					s := [3]int{blocks[0].size, blocks[1].size, blocks[2].size}
					if s == [3]int{0, 2, k - 2} || s == [3]int{0, 3, k - 3} || s == [3]int{1, 2, k - 3} {
						break
					}
					if steps > 4*n {
						t.Fatalf("n=%d (A,B)=(%d,%d): no final configuration after %d steps", n, a, b, steps)
					}
					p, err := ComputeN3Plan(c)
					if err != nil {
						t.Fatal(err)
					}
					if p.Rule != N3R11 && p.Rule != N3R12 && p.Rule != N3R13 {
						t.Fatalf("phase-1 config used phase-2 rule %v", p.Rule)
					}
					next, err := c.Move(p.Mover, p.Target)
					if err != nil {
						t.Fatal(err)
					}
					c = next
					steps++
				}
			}
		}
	}
}

// buildN3 constructs the configuration with blocks (a, b, k−a−b) separated
// by single empty nodes (and the zero block collapsing two empties).
func buildN3(n, a, b int) config.Config {
	occupied := make([]int, 0, n-3)
	pos := 0
	for _, size := range []int{a, b, n - 3 - a - b} {
		pos++ // empty separator
		for i := 0; i < size; i++ {
			occupied = append(occupied, pos)
			pos++
		}
	}
	return config.MustNew(n, occupied...)
}

func TestTheorem7Verify(t *testing.T) {
	// E6: NminusThree perpetually clears and explores for k = n−3.
	for n := 10; n <= 14; n++ {
		c := buildN3(n, 0, 1) // (0,1,k−1): phase 1 needs R1.2 first
		rep, err := Verify(c, NminusThree{}, 2000*n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rep.Probes < 4 {
			t.Errorf("n=%d: too few recontamination probes: %+v", n, rep)
		}
		if !rep.Explored {
			t.Errorf("n=%d: exploration incomplete: %+v", n, rep)
		}
	}
}

func TestN3LocalMatchesGlobal(t *testing.T) {
	// Exactly one robot moves in every reachable NminusThree
	// configuration, and it is the planner's mover.
	for n := 10; n <= 14; n++ {
		c := buildN3(n, 1, 2)
		for step := 0; step < 6*n; step++ {
			p, err := ComputeN3Plan(c)
			if err != nil {
				t.Fatal(err)
			}
			w := corda.FromConfig(c, true)
			movers := corda.MoverSet(w, NminusThree{})
			if len(movers) != 1 {
				t.Fatalf("n=%d step %d: %d movers at %v", n, step, len(movers), c)
			}
			if w.Position(movers[0]) != p.Mover {
				t.Fatalf("n=%d step %d: local mover %d, plan %d", n, step, w.Position(movers[0]), p.Mover)
			}
			next, err := c.Move(p.Mover, p.Target)
			if err != nil {
				t.Fatal(err)
			}
			c = next
		}
	}
}

func TestRingClearingLocalSingleMover(t *testing.T) {
	// Throughout phase 2 of Ring Clearing exactly one robot wants to move.
	for _, tc := range []struct{ n, k int }{{11, 5}, {12, 6}, {13, 7}, {14, 10}} {
		c, _ := config.CStar(tc.n, tc.k)
		for step := 0; step < 4*(tc.n+5); step++ {
			w := corda.FromConfig(c, true)
			movers := corda.MoverSet(w, RingClearing{})
			if len(movers) != 1 {
				t.Fatalf("(%d,%d) step %d: %d movers at %v (%v)", tc.n, tc.k, step, len(movers), c, ClassifyA(c))
			}
			c = stepPhase2(t, c)
		}
	}
}

func TestAClassStrings(t *testing.T) {
	for a, want := range map[AClass]string{
		NotInA: "not-in-A", Aa: "A-a", Ab: "A-b", Ac: "A-c", Ad: "A-d", Ae: "A-e", Af: "A-f",
	} {
		if a.String() != want {
			t.Errorf("%d.String() = %q", int(a), a.String())
		}
	}
	for r, want := range map[N3Rule]string{
		N3None: "none", N3R11: "R1.1", N3R12: "R1.2", N3R13: "R1.3",
		N3R21: "R2.1", N3R22: "R2.2", N3R23: "R2.3",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", int(r), r.String())
		}
	}
}
