package align

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ringrobots/internal/config"
	"ringrobots/internal/corda"
	"ringrobots/internal/enumerate"
)

// Property-based checks of Align's single-step contract on randomly drawn
// rigid configurations of arbitrary size.

func randomRigid(t *testing.T, seed int64) config.Config {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 8 + rng.Intn(33) // 8..40
	k := 3 + rng.Intn(n-5)
	if k >= n-2 {
		k = n - 3
	}
	c, err := enumerate.RandomRigid(rng, n, k, 100000)
	if err != nil {
		t.Skipf("no rigid configuration for n=%d k=%d: %v", n, k, err)
	}
	return c
}

func TestQuickPlanProducesValidExclusiveMove(t *testing.T) {
	f := func(seed int64) bool {
		c := randomRigid(t, seed)
		p, err := ComputePlan(c)
		if err != nil {
			t.Logf("plan error at %v: %v", c, err)
			return false
		}
		if p.Done {
			return c.IsCStar()
		}
		// The mover must be occupied, the target empty and adjacent.
		if !c.Occupied(p.Mover) || c.Occupied(p.Target) {
			return false
		}
		if !c.Ring().Adjacent(p.Mover, p.Target) {
			return false
		}
		next, err := Apply(c, p)
		if err != nil {
			return false
		}
		// Robot count is preserved and the successor stays in Align's
		// domain (rigid, or the sanctioned (0,0,2,2) intermediate, or C*).
		if next.K() != c.K() {
			return false
		}
		return next.IsRigid() || next.IsPostCs() || next.IsCStar()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickSuperminNeverBelowCStar(t *testing.T) {
	// C* is the least rigid configuration in supermin order: no rigid
	// configuration's supermin view is smaller (Theorem 1's termination
	// argument rests on this).
	f := func(seed int64) bool {
		c := randomRigid(t, seed)
		cstar, err := config.CStarView(c.N(), c.K())
		if err != nil {
			return true
		}
		return !c.SuperminView().Less(cstar)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickLocalDecisionNeverPanicsOnArbitraryViews(t *testing.T) {
	// Robustness/failure injection: arbitrary (even inconsistent) view
	// pairs must never panic the local rule; Stay is the safe default.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		v := make(config.View, len(raw))
		for i, x := range raw {
			v[i] = int(x % 5)
		}
		s := snapshotFromView(v)
		d := DecideFromSnapshot(s)
		_ = d
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestAblationReductionPriority documents why Fig. 1 tries reduction_1
// before reduction_2: there are rigid configurations where reduction_2
// creates a symmetric configuration although reduction_1 does not —
// swapping the priority would strand the algorithm outside its domain.
func TestAblationReductionPriority(t *testing.T) {
	found := 0
	for n := 6; n <= 12 && found == 0; n++ {
		for k := 3; k < n-2; k++ {
			classes, err := enumerate.RigidClasses(n, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range classes {
				if c.IsCStar() {
					continue
				}
				w, anchors := c.Supermin()
				if w[0] != 0 {
					continue
				}
				l1 := firstPositive(w, 0)
				l2 := firstPositive(w, l1+1)
				if l2 < 0 {
					continue
				}
				nodes := nodesInOrder(c, anchors[0])
				m1 := nodes[(l1+1)%k]
				next1, err1 := c.Move(m1, c.Ring().Step(m1, anchors[0].Dir.Opposite()))
				m2 := nodes[(l2+1)%k]
				next2, err2 := c.Move(m2, c.Ring().Step(m2, anchors[0].Dir.Opposite()))
				if err1 != nil || err2 != nil {
					continue
				}
				if !next1.IsSymmetric() && next2.IsSymmetric() {
					found++
					t.Logf("witness: %v — reduction1 → %v (rigid), reduction2 → %v (symmetric)",
						c.SuperminView(), next1.SuperminView(), next2.SuperminView())
					break
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("no witness found: the reduction priority would be arbitrary")
	}
}

// snapshotFromView fabricates a snapshot whose two views are the given
// sequence and its plain reversal (what a robot would see if the sequence
// were a genuine interval cycle).
func snapshotFromView(v config.View) corda.Snapshot {
	rev := v.Clone()
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	lo, hi := v, rev
	if rev.Less(v) {
		lo, hi = rev, v
	}
	return corda.Snapshot{Lo: lo, Hi: hi}
}
