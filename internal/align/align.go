// Package align implements Algorithm Align (§3): starting from any rigid
// exclusive configuration of k ≥ 3 robots on an n-node ring (k < n−2), a
// sequence of single-robot moves that reaches the distinguished
// configuration C* = (0^{k−2}, 1, n−k−1), keeping every intermediate
// configuration rigid except for the one two-step detour through the
// symmetric configuration (0,0,2,2) taken from Cs = (0,1,1,2).
//
// Align is the common phase 1 of the paper's unified approach: graph
// searching, exploration and gathering all start by running it.
package align

import (
	"errors"
	"fmt"

	"ringrobots/internal/config"
	"ringrobots/internal/corda"
	"ringrobots/internal/ring"
)

// Rule names the reduction applied by one Align step (§3.1).
type Rule int

const (
	// RuleNone means no move: the configuration is already C*.
	RuleNone Rule = iota
	// Rule0 is reduction_0: shrink a positive supermin interval.
	Rule0
	// Rule1 is reduction_1: shrink the first positive interval q_{ℓ1}.
	Rule1
	// Rule2 is reduction_2: shrink the second positive interval q_{ℓ2}.
	Rule2
	// RuleMinus1 is reduction_{−1}: shrink the last interval q_{k−1}.
	RuleMinus1
	// RuleCs is the forced reduction_1 out of the special configurations
	// Cs = (0,1,1,2) and its symmetric successor (0,0,2,2).
	RuleCs
)

func (r Rule) String() string {
	switch r {
	case RuleNone:
		return "none"
	case Rule0:
		return "reduction0"
	case Rule1:
		return "reduction1"
	case Rule2:
		return "reduction2"
	case RuleMinus1:
		return "reduction-1"
	case RuleCs:
		return "reduction1(Cs)"
	}
	return fmt.Sprintf("Rule(%d)", int(r))
}

// Plan is the single move Align performs in a configuration.
type Plan struct {
	// Done reports that the configuration is C*; no move is needed.
	Done bool
	// Rule is the reduction applied.
	Rule Rule
	// Mover is the node of the robot that moves.
	Mover int
	// Target is the node it moves to. When Either is set the two neighbors
	// of Mover are symmetric and Target is one valid adversary choice.
	Target int
	// Either marks the (0,0,2,2) axis move whose direction is arbitrary.
	Either bool
}

// ErrNotApplicable reports a configuration outside Align's domain: not
// rigid (and not the sanctioned (0,0,2,2) intermediate), or with k or n
// out of range.
var ErrNotApplicable = errors.New("align: configuration is not rigid (and not the (0,0,2,2) intermediate)")

// Validate checks the parameter range of Theorem 1: k ≥ 3 robots on an
// n-node ring with k < n−2.
func Validate(n, k int) error {
	if k < 3 {
		return fmt.Errorf("align: need k >= 3 robots, got k=%d", k)
	}
	if k >= n-2 {
		return fmt.Errorf("align: need k < n-2, got k=%d, n=%d (no rigid configuration exists otherwise)", k, n)
	}
	return nil
}

// ComputePlan determines the move Align performs in configuration c,
// following Fig. 1 of the paper exactly.
func ComputePlan(c config.Config) (Plan, error) {
	if err := Validate(c.N(), c.K()); err != nil {
		return Plan{}, err
	}
	if c.IsCStar() {
		return Plan{Done: true, Rule: RuleNone}, nil
	}
	if c.IsPostCs() {
		// Symmetric intermediate reached only from Cs: the unique robot
		// with two equal views and both neighbors empty moves in an
		// arbitrary direction (§3.1).
		mover, ok := postCsAxisRobot(c)
		if !ok {
			return Plan{}, fmt.Errorf("align: (0,0,2,2) configuration without an axis robot: %v", c)
		}
		return Plan{Rule: RuleCs, Mover: mover, Target: c.Ring().Step(mover, ring.CW), Either: true}, nil
	}
	if !c.IsRigid() {
		return Plan{}, fmt.Errorf("%w: %v", ErrNotApplicable, c)
	}

	w, anchors := c.Supermin()
	a := anchors[0] // rigid ⇒ unique anchor (Lemma 1)
	k := c.K()
	// nthNode(j) is the j-th occupied node reading from the anchor in its
	// direction, i.e. the node between intervals q_{j−1} and q_j of the
	// supermin view — an O(1) index computation, replacing the former
	// nodesInOrder slice materialization on this per-step hot path.
	start := c.IndexOf(a.Node)
	nthNode := func(j int) int {
		if a.Dir == ring.CW {
			return c.NodeByIndex((start + j) % k)
		}
		return c.NodeByIndex(((start-j)%k + k) % k)
	}

	if w[0] > 0 {
		// reduction_0: the robot at node a moves into interval q0.
		return Plan{Rule: Rule0, Mover: a.Node, Target: c.Ring().Step(a.Node, a.Dir)}, nil
	}

	l1 := firstPositive(w, 0)
	if l1 < 0 {
		return Plan{}, fmt.Errorf("align: all-zero supermin view in %v", c)
	}
	// Candidate reductions are probed for successor symmetry with
	// config.SymmetricAfterMove — a two-entry delta on the memoized
	// interval cycle in pooled scratch — instead of materializing and
	// canonicalizing a fresh Config per probe; same applicability
	// semantics (ok=false exactly when the move would error).
	//
	// reduction_1: robot b between q_{ℓ1} and q_{ℓ1+1} moves into q_{ℓ1}.
	b := nthNode((l1 + 1) % k)
	p1 := Plan{Rule: Rule1, Mover: b, Target: c.Ring().Step(b, a.Dir.Opposite())}
	if sym, ok := c.SymmetricAfterMove(p1.Mover, p1.Target); ok && !sym {
		return p1, nil
	}

	l2 := firstPositive(w, l1+1)
	if l2 > 0 {
		// reduction_2: robot c between q_{ℓ2} and q_{ℓ2+1} moves into q_{ℓ2}.
		m2 := nthNode((l2 + 1) % k)
		p2 := Plan{Rule: Rule2, Mover: m2, Target: c.Ring().Step(m2, a.Dir.Opposite())}
		if sym, ok := c.SymmetricAfterMove(p2.Mover, p2.Target); ok && !sym {
			return p2, nil
		}
	}

	// reduction_{−1}: robot d between q_{k−2} and q_{k−1} moves into q_{k−1}.
	d := nthNode(k - 1)
	pm := Plan{Rule: RuleMinus1, Mover: d, Target: c.Ring().Step(d, a.Dir)}
	if sym, ok := c.SymmetricAfterMove(pm.Mover, pm.Target); ok && !sym {
		return pm, nil
	}

	// Only Cs = (0,1,1,2) reaches this point (Lemmas 3–5): perform
	// reduction_1 anyway; the successor is the symmetric (0,0,2,2).
	if !c.IsCs() {
		return Plan{}, fmt.Errorf("align: all reductions create symmetry but configuration %v is not Cs", c)
	}
	p1.Rule = RuleCs
	return p1, nil
}

// apply executes a plan on a configuration (exclusively).
func apply(c config.Config, p Plan) (config.Config, error) {
	return c.Move(p.Mover, p.Target)
}

// Apply executes the plan computed by ComputePlan and returns the next
// configuration.
func Apply(c config.Config, p Plan) (config.Config, error) {
	if p.Done {
		return c, nil
	}
	return apply(c, p)
}

// postCsAxisRobot locates the unique robot of a (0,0,2,2) configuration
// that lies alone on the symmetry axis: both its views coincide and both
// its neighbors are empty.
func postCsAxisRobot(c config.Config) (int, bool) {
	for _, u := range c.Nodes() {
		cw := c.ViewFrom(u, ring.CW)
		ccw := c.ViewFrom(u, ring.CCW)
		if cw.Equal(ccw) && cw[0] > 0 {
			return u, true
		}
	}
	return 0, false
}

func firstPositive(v config.View, from int) int {
	for i := from; i < len(v); i++ {
		if v[i] > 0 {
			return i
		}
	}
	return -1
}

// Algorithm is the oblivious per-robot realization of Align: each robot
// reconstructs the configuration from its own view, computes the global
// plan, and moves only if it is the planned mover. It implements
// corda.Algorithm.
type Algorithm struct{}

// Name implements corda.Algorithm.
func (Algorithm) Name() string { return "align" }

// Compute implements corda.Algorithm.
func (Algorithm) Compute(s corda.Snapshot) corda.Decision {
	return DecideFromSnapshot(s)
}

// DecideFromSnapshot computes the Align decision for a robot perceiving s.
// It is shared with the composed task algorithms (searching, gathering).
func DecideFromSnapshot(s corda.Snapshot) corda.Decision {
	// Reconstruct the ring with this robot at node 0 and the Lo view read
	// clockwise. The plan is a function of the configuration only, so any
	// consistent reconstruction yields the correct physical move.
	c, err := config.FromIntervals(0, s.Lo)
	if err != nil {
		return corda.Stay
	}
	return DecideReconstructed(c)
}

// DecideReconstructed computes the Align decision given the robot's own
// reconstruction of the configuration — built with the robot at node 0
// and its Lo view read clockwise, as config.FromIntervals(0, s.Lo) does.
// Composed algorithms that already hold such a reconstruction (gathering's
// C*-type test, searching's phase dispatch) call this directly instead of
// rebuilding it through DecideFromSnapshot.
func DecideReconstructed(c config.Config) corda.Decision {
	p, err := ComputePlan(c)
	if err != nil || p.Done || p.Mover != 0 {
		return corda.Stay
	}
	if p.Either {
		return corda.Either
	}
	switch p.Target {
	case 1: // clockwise in the reconstruction = the Lo reading direction
		return corda.TowardLo
	case c.N() - 1:
		return corda.TowardHi
	}
	return corda.Stay
}

// Run drives a world to C* with atomic scheduling, returning the number of
// moves. It fails if the budget is exhausted or a collision occurs.
func Run(w *corda.World, maxSteps int) (moves int, err error) {
	r := corda.NewRunner(w, Algorithm{})
	reason, err := r.RunUntil(func(w *corda.World) bool {
		return w.Config().IsCStar()
	}, maxSteps)
	if err != nil {
		return r.Moves(), err
	}
	if reason != corda.StopCondition {
		return r.Moves(), fmt.Errorf("align: stopped with reason %v before reaching C* (world %v)", reason, w)
	}
	return r.Moves(), nil
}
