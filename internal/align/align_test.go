package align

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ringrobots/internal/config"
	"ringrobots/internal/corda"
	"ringrobots/internal/enumerate"
	"ringrobots/internal/ring"
)

func TestValidate(t *testing.T) {
	if err := Validate(10, 2); err == nil {
		t.Error("accepted k=2")
	}
	if err := Validate(10, 8); err == nil {
		t.Error("accepted k=n-2")
	}
	if err := Validate(10, 9); err == nil {
		t.Error("accepted k=n-1")
	}
	if err := Validate(10, 7); err != nil {
		t.Errorf("rejected valid k=7, n=10: %v", err)
	}
	if err := Validate(6, 3); err != nil {
		t.Errorf("rejected valid k=3, n=6: %v", err)
	}
}

func TestPlanDoneOnCStar(t *testing.T) {
	c, _ := config.CStar(10, 5)
	p, err := ComputePlan(c)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Done || p.Rule != RuleNone {
		t.Fatalf("plan on C*: %+v", p)
	}
}

func TestPlanRejectsNonRigid(t *testing.T) {
	sym := config.MustNew(10, 0, 1, 3, 7, 9) // mirror-symmetric around node 0
	if !sym.IsSymmetric() {
		t.Fatal("test fixture is not symmetric")
	}
	if _, err := ComputePlan(sym); err == nil {
		t.Error("accepted a symmetric configuration")
	} else if !errors.Is(err, ErrNotApplicable) {
		t.Errorf("error %v does not wrap ErrNotApplicable", err)
	}
}

func TestPlanReduction0(t *testing.T) {
	// Supermin (1,2,3) on n=9, k=3: q0=1 > 0 → reduction_0.
	c, err := config.FromIntervals(0, config.View{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ComputePlan(c)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rule != Rule0 {
		t.Fatalf("rule = %v, want reduction0", p.Rule)
	}
	next, err := Apply(c, p)
	if err != nil {
		t.Fatal(err)
	}
	want := config.View{0, 2, 4}
	if !next.SuperminView().Equal(want) {
		t.Fatalf("after reduction0: %v, want supermin %v", next.SuperminView(), want)
	}
	if !next.SuperminView().Less(c.SuperminView()) {
		t.Fatal("reduction0 did not decrease the supermin")
	}
}

func TestPlanReduction1(t *testing.T) {
	// Supermin (0,2,1,3) on n=10, k=4: q0=0, ℓ1=1, reduction_1 shrinks q1.
	c, err := config.FromIntervals(0, config.View{0, 2, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ComputePlan(c)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rule != Rule1 {
		t.Fatalf("rule = %v, want reduction1", p.Rule)
	}
	next, err := Apply(c, p)
	if err != nil {
		t.Fatal(err)
	}
	want := config.View{0, 1, 2, 3}
	if !next.SuperminView().Equal(want) {
		t.Fatalf("after reduction1 supermin = %v, want %v", next.SuperminView(), want)
	}
}

func TestPlanReduction2(t *testing.T) {
	// A configuration satisfying Lemma 3's conditions 1–4 so reduction_1
	// creates symmetry: W = (0,1,q2,…,q_{k−1}) with q2+1=q_{k−1} and the
	// middle palindromic. Take (0,1,2,3): ℓ1=1, q_{ℓ1}=1, q_{ℓ1+1}+1=3=q3,
	// middle sequence empty → conditions hold. reduction_1 would give a
	// symmetric configuration, so Align must use reduction_2 (if it avoids
	// symmetry) on q_{ℓ2}=q2.
	c, err := config.FromIntervals(0, config.View{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ComputePlan(c)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rule != Rule2 {
		t.Fatalf("rule = %v, want reduction2", p.Rule)
	}
	next, err := Apply(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if !next.IsRigid() {
		t.Fatalf("reduction2 result not rigid: %v", next)
	}
	if !next.SuperminView().Less(c.SuperminView()) {
		t.Fatal("reduction2 did not decrease the supermin")
	}
}

func TestPlanReductionMinus1(t *testing.T) {
	// Lemma 5 family: W = (0,1,1,1,2) (k=5, n=10). reduction_1 and
	// reduction_2 both create symmetry; reduction_{−1} must apply and keep
	// the configuration rigid.
	c, err := config.FromIntervals(0, config.View{0, 1, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsRigid() {
		t.Fatal("fixture not rigid")
	}
	p, err := ComputePlan(c)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rule != RuleMinus1 {
		t.Fatalf("rule = %v, want reduction-1", p.Rule)
	}
	next, err := Apply(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if !next.IsRigid() {
		t.Fatalf("reduction-1 result not rigid: %v", next)
	}
	// reduction_{−1} may *increase* the supermin; Theorem 1 promises the
	// following move strictly decreases it below the original.
	p2, err := ComputePlan(next)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Rule != Rule1 {
		t.Fatalf("move after reduction-1 should be reduction1, got %v", p2.Rule)
	}
	next2, err := Apply(next, p2)
	if err != nil {
		t.Fatal(err)
	}
	if !next2.SuperminView().Less(c.SuperminView()) {
		t.Fatalf("two-step window did not decrease supermin: %v → %v → %v",
			c.SuperminView(), next.SuperminView(), next2.SuperminView())
	}
}

func TestCsDetour(t *testing.T) {
	// From Cs = (0,1,1,2), Align performs reduction_1 twice: first to the
	// symmetric (0,0,2,2), then the axis robot moves arbitrarily to C*.
	cs, err := config.FromIntervals(0, config.CsView())
	if err != nil {
		t.Fatal(err)
	}
	p, err := ComputePlan(cs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rule != RuleCs {
		t.Fatalf("rule from Cs = %v, want forced reduction1", p.Rule)
	}
	mid, err := Apply(cs, p)
	if err != nil {
		t.Fatal(err)
	}
	if !mid.IsPostCs() {
		t.Fatalf("Cs successor = %v, want (0,0,2,2)", mid.SuperminView())
	}
	p2, err := ComputePlan(mid)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Rule != RuleCs || !p2.Either {
		t.Fatalf("plan from (0,0,2,2) = %+v, want Either move", p2)
	}
	// Both directions must reach C*.
	for _, target := range []int{mid.Ring().Step(p2.Mover, ring.CW), mid.Ring().Step(p2.Mover, ring.CCW)} {
		final, err := mid.Move(p2.Mover, target)
		if err != nil {
			t.Fatal(err)
		}
		if !final.IsCStar() {
			t.Fatalf("axis move to %d gave %v, want C*", target, final.SuperminView())
		}
	}
}

// planWalk runs the global planner until C*, asserting Theorem 1's
// invariants along the way. It returns the number of moves.
func planWalk(t *testing.T, c config.Config) int {
	t.Helper()
	moves := 0
	budget := 4 * c.N() * c.N()
	prevSupermin := c.SuperminView()
	sinceDecrease := 0
	for !c.IsCStar() {
		if moves >= budget {
			t.Fatalf("no convergence after %d moves from %v", moves, c)
		}
		p, err := ComputePlan(c)
		if err != nil {
			t.Fatalf("plan failed at %v: %v", c, err)
		}
		next, err := Apply(c, p)
		if err != nil {
			t.Fatalf("apply failed at %v: %v", c, err)
		}
		// Theorem 1: intermediates are rigid or (0,0,2,2).
		if !next.IsCStar() && !next.IsRigid() && !next.IsPostCs() {
			t.Fatalf("intermediate %v is neither rigid nor (0,0,2,2)", next)
		}
		// Supermin decreases within every 2-move window (reduction_{−1}
		// and the Cs detour may take one non-decreasing step).
		if next.SuperminView().Less(prevSupermin) {
			prevSupermin = next.SuperminView()
			sinceDecrease = 0
		} else {
			sinceDecrease++
			if sinceDecrease > 2 {
				t.Fatalf("supermin stalled for %d moves at %v", sinceDecrease, next)
			}
		}
		c = next
		moves++
	}
	return moves
}

func TestTheorem1Exhaustive(t *testing.T) {
	// E1: from every rigid exclusive configuration with 3 ≤ k < n−2 and
	// n ≤ 13, the planner reaches C*.
	total := 0
	for n := 6; n <= 13; n++ {
		for k := 3; k < n-2; k++ {
			classes, err := enumerate.RigidClasses(n, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range classes {
				planWalk(t, c)
				total++
			}
		}
	}
	if total < 100 {
		t.Fatalf("exhaustive space suspiciously small: %d configurations", total)
	}
	t.Logf("verified Theorem 1 on %d rigid configurations", total)
}

func TestTheorem1RandomLargeRings(t *testing.T) {
	rng := rand.New(rand.NewSource(2013))
	for _, n := range []int{20, 50, 100} {
		for trial := 0; trial < 5; trial++ {
			k := 3 + rng.Intn(n-6)
			c, err := enumerate.RandomRigid(rng, n, k, 10000)
			if err != nil {
				t.Fatal(err)
			}
			moves := planWalk(t, c)
			if moves == 0 && !c.IsCStar() {
				t.Fatalf("zero moves from non-C* configuration %v", c)
			}
		}
	}
}

func TestLemma2Reduction0KeepsRigidAndDecreases(t *testing.T) {
	// Lemma 2: with q0 > 0, reduction_0 yields a rigid configuration with
	// strictly smaller supermin. Exhaustive over rigid classes.
	for n := 6; n <= 12; n++ {
		for k := 3; k < n-2; k++ {
			classes, err := enumerate.RigidClasses(n, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range classes {
				if c.SuperminView()[0] == 0 {
					continue
				}
				p, err := ComputePlan(c)
				if err != nil {
					t.Fatal(err)
				}
				if p.Rule != Rule0 {
					t.Fatalf("q0>0 but rule = %v at %v", p.Rule, c)
				}
				next, err := Apply(c, p)
				if err != nil {
					t.Fatal(err)
				}
				if !next.IsRigid() {
					t.Fatalf("Lemma 2 violated: %v → %v not rigid", c, next)
				}
				if !next.SuperminView().Less(c.SuperminView()) {
					t.Fatalf("Lemma 2 violated: supermin did not decrease at %v", c)
				}
			}
		}
	}
}

// lemma3Conditions evaluates conditions 1–4 of Lemma 3 on a supermin view,
// in their general palindromic form: after reduction_1, the view is
// (0^{ℓ1+1}, q_{ℓ1+1}+1, q_{ℓ1+2}, …, q_{k−1}) and, the zero block being
// the unique longest one, the configuration is symmetric iff the suffix
// after the zeros is a palindrome. For suffixes of length ≥ 2 this is
// exactly the paper's conditions 3 ∧ 4 (first = last via
// q_{ℓ1+1}+1 = q_{k−1}, middle palindromic); the paper's literal wording
// misses the degenerate suffix of length 1 (ℓ1 = k−2, e.g. W = (0,1,2)),
// where reduction_1 also creates symmetry. Recorded in EXPERIMENTS.md.
func lemma3Conditions(w config.View) bool {
	k := len(w)
	l1 := firstPositive(w, 0)
	if l1 <= 0 {
		return false
	}
	if w[l1] != 1 { // condition 2
		return false
	}
	// Suffix of the post-move view: (q_{ℓ1+1}+1, q_{ℓ1+2}, …, q_{k−1}).
	suffix := make([]int, 0, k-l1-1)
	suffix = append(suffix, w[l1+1]+1)
	suffix = append(suffix, w[l1+2:]...)
	i, j := 0, len(suffix)-1
	for i < j {
		if suffix[i] != suffix[j] {
			return false
		}
		i++
		j--
	}
	return true
}

func TestLemma3Iff(t *testing.T) {
	// For every rigid configuration with q0 = 0: reduction_1's result is
	// aperiodic, and it is symmetric iff conditions 1–4 hold.
	for n := 6; n <= 12; n++ {
		for k := 3; k < n-2; k++ {
			classes, err := enumerate.RigidClasses(n, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range classes {
				w, anchors := c.Supermin()
				if w[0] != 0 {
					continue
				}
				l1 := firstPositive(w, 0)
				nodes := nodesInOrder(c, anchors[0])
				mover := nodes[(l1+1)%k]
				next, err := c.Move(mover, c.Ring().Step(mover, anchors[0].Dir.Opposite()))
				if err != nil {
					t.Fatal(err)
				}
				if next.IsPeriodic() {
					t.Fatalf("Lemma 3 violated: reduction1 of %v is periodic", c)
				}
				want := lemma3Conditions(w)
				if got := next.IsSymmetric(); got != want {
					t.Fatalf("Lemma 3 iff violated at %v: symmetric=%v, conditions=%v", c, got, want)
				}
			}
		}
	}
}

func TestLemma4Iff(t *testing.T) {
	// For rigid configurations satisfying Lemma 3's conditions (so
	// reduction_1 creates symmetry): reduction_2's result is aperiodic and
	// symmetric iff W_min matches (0,1,1⁺,2) or
	// (0^{ℓ1},1,{0^{ℓ1−1},1}⁺,0^{ℓ1−2},1).
	checked := 0
	for n := 6; n <= 13; n++ {
		for k := 3; k < n-2; k++ {
			classes, err := enumerate.RigidClasses(n, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range classes {
				// Align never applies reductions at C*; the lemma's
				// hypotheses implicitly exclude it (at C*, reduction_2 can
				// produce symmetric or even periodic configurations, e.g.
				// (1,1,1) from C*(6,3)). Recorded in EXPERIMENTS.md.
				if c.IsCStar() {
					continue
				}
				w, anchors := c.Supermin()
				if w[0] != 0 || !lemma3Conditions(w) {
					continue
				}
				l2 := firstPositive(w, firstPositive(w, 0)+1)
				if l2 < 0 {
					continue
				}
				nodes := nodesInOrder(c, anchors[0])
				mover := nodes[(l2+1)%k]
				next, err := c.Move(mover, c.Ring().Step(mover, anchors[0].Dir.Opposite()))
				if err != nil {
					t.Fatal(err)
				}
				if next.IsPeriodic() {
					t.Fatalf("Lemma 4 violated: reduction2 of %v is periodic", c)
				}
				inPattern := matchesLemma4Patterns(w)
				if got := next.IsSymmetric(); got != inPattern {
					t.Fatalf("Lemma 4 iff violated at %v (W=%v): symmetric=%v, pattern=%v",
						c, w, got, inPattern)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no configurations exercised Lemma 4")
	}
	t.Logf("Lemma 4 verified on %d configurations", checked)
}

func matchesLemma4Patterns(w config.View) bool {
	if config.Lemma4Pattern5().MatchView(w) {
		return true
	}
	l1 := firstPositive(w, 0)
	if l1 >= 2 {
		if p, err := config.Lemma4Pattern6(l1); err == nil && p.MatchView(w) {
			return true
		}
	}
	return false
}

func TestLemma5Rigidity(t *testing.T) {
	// For rigid configurations in Lemma 5's families, reduction_{−1}
	// yields a rigid configuration — except Cs itself, the paper's
	// singular case.
	checked := 0
	for n := 6; n <= 13; n++ {
		for k := 3; k < n-2; k++ {
			classes, err := enumerate.RigidClasses(n, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range classes {
				w, anchors := c.Supermin()
				inL5 := config.Lemma5Pattern1().MatchView(w)
				if !inL5 {
					l1 := firstPositive(w, 0)
					if l1 >= 2 {
						if p, err := config.Lemma4Pattern6(l1); err == nil && p.MatchView(w) {
							inL5 = true
						}
					}
				}
				if !inL5 {
					continue
				}
				nodes := nodesInOrder(c, anchors[0])
				mover := nodes[k-1]
				next, err := c.Move(mover, c.Ring().Step(mover, anchors[0].Dir))
				if err != nil {
					t.Fatal(err)
				}
				if !next.IsRigid() {
					t.Fatalf("Lemma 5 violated: reduction-1 of %v (W=%v) gives non-rigid %v", c, w, next)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no configurations exercised Lemma 5")
	}
	t.Logf("Lemma 5 verified on %d configurations", checked)
}

func TestLocalRuleMatchesGlobalPlanner(t *testing.T) {
	// The oblivious per-robot rule must select exactly the planner's mover
	// and move, on every rigid configuration of the exhaustive space.
	for n := 6; n <= 12; n++ {
		for k := 3; k < n-2; k++ {
			classes, err := enumerate.RigidClasses(n, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range classes {
				if c.IsCStar() {
					w := corda.FromConfig(c, true)
					if movers := corda.MoverSet(w, Algorithm{}); len(movers) != 0 {
						t.Fatalf("robots want to move in C*: %v", movers)
					}
					continue
				}
				assertLocalMatchesPlan(t, c)
			}
		}
	}
}

func assertLocalMatchesPlan(t *testing.T, c config.Config) {
	t.Helper()
	p, err := ComputePlan(c)
	if err != nil {
		t.Fatalf("plan at %v: %v", c, err)
	}
	w := corda.FromConfig(c, true)
	movers := corda.MoverSet(w, Algorithm{})
	if len(movers) != 1 {
		t.Fatalf("local rule has %d movers at %v, want 1 (plan %+v)", len(movers), c, p)
	}
	id := movers[0]
	if got := w.Position(id); got != p.Mover {
		t.Fatalf("local mover at node %d, plan says %d (config %v)", got, p.Mover, c)
	}
	// Execute the local decision and compare configurations.
	snap, loDir := w.Snapshot(id)
	d := Algorithm{}.Compute(snap)
	if d == corda.Either {
		if !p.Either {
			t.Fatalf("local rule returned Either where plan is directed at %v", c)
		}
		return
	}
	var dir ring.Direction
	switch d {
	case corda.TowardLo:
		dir = loDir
	case corda.TowardHi:
		dir = loDir.Opposite()
	default:
		t.Fatalf("unexpected decision %v", d)
	}
	if got := w.Ring().Step(p.Mover, dir); got != p.Target {
		t.Fatalf("local rule moves %d→%d, plan %d→%d (config %v)", p.Mover, got, p.Mover, p.Target, c)
	}
}

func TestRunReachesCStarUnderRoundRobin(t *testing.T) {
	for n := 8; n <= 12; n++ {
		for k := 3; k < n-2; k++ {
			classes, err := enumerate.RigidClasses(n, k)
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range classes {
				if i%3 != 0 { // sample: the planner test is exhaustive already
					continue
				}
				w := corda.FromConfig(c, true)
				if _, err := Run(w, 20*n*n*k); err != nil {
					t.Fatalf("n=%d k=%d from %v: %v", n, k, c, err)
				}
				if !w.Config().IsCStar() {
					t.Fatalf("world not at C*: %v", w)
				}
			}
		}
	}
}

func TestRunUnderAsyncAdversary(t *testing.T) {
	// Align's single-mover property makes it insensitive to asynchrony:
	// random adversaries with held pending moves must still reach C*.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 8 + rng.Intn(6)
		k := 3 + rng.Intn(n-6)
		c, err := enumerate.RandomRigid(rng, n, k, 5000)
		if err != nil {
			t.Fatal(err)
		}
		w := corda.FromConfig(c, true)
		as := corda.NewAsyncRunner(w, Algorithm{}, corda.NewRandomAsync(int64(trial), 0.4))
		reason, err := as.RunUntil(func(w *corda.World) bool {
			return w.Config().IsCStar()
		}, 100*n*n*k)
		if err != nil {
			t.Fatalf("trial %d from %v: %v", trial, c, err)
		}
		if reason != corda.StopCondition {
			t.Fatalf("trial %d: stopped %v before C* (world %v)", trial, reason, w)
		}
	}
}

func TestRunFailsGracefullyOnBudget(t *testing.T) {
	c, err := enumerate.RandomRigid(rand.New(rand.NewSource(5)), 20, 9, 1000)
	if err != nil {
		t.Fatal(err)
	}
	w := corda.FromConfig(c, true)
	if _, err := Run(w, 3); err == nil {
		t.Error("Run with tiny budget reported success")
	}
}

func TestRuleStrings(t *testing.T) {
	for r, want := range map[Rule]string{
		RuleNone: "none", Rule0: "reduction0", Rule1: "reduction1",
		Rule2: "reduction2", RuleMinus1: "reduction-1", RuleCs: "reduction1(Cs)",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), want)
		}
	}
}

func TestDecideFromSnapshotIgnoresGarbage(t *testing.T) {
	// A snapshot whose views describe an invalid or out-of-domain
	// configuration must yield Stay, not a panic.
	s := corda.Snapshot{Lo: config.View{0, 0}, Hi: config.View{0, 0}}
	if d := DecideFromSnapshot(s); d != corda.Stay {
		t.Errorf("decision on degenerate snapshot = %v", d)
	}
}

func ExampleComputePlan() {
	c := config.MustNew(9, 0, 2, 5) // rigid, supermin (1,2,3): q0 > 0
	p, _ := ComputePlan(c)
	fmt.Println(p.Rule)
	// Output: reduction0
}

// nodesInOrder lists the occupied nodes starting at the anchor and
// following its reading direction, so that nodes[i] sits between
// intervals q_{i−1} and q_i of the supermin view. Retained as a test
// helper; production code computes the same mapping index-wise without
// materializing the slice (see ComputePlan's nthNode).
func nodesInOrder(c config.Config, a config.Anchor) []int {
	sorted := c.Nodes()
	k := len(sorted)
	start := -1
	for i, u := range sorted {
		if u == a.Node {
			start = i
			break
		}
	}
	if start < 0 {
		panic("align: anchor not an occupied node")
	}
	out := make([]int, k)
	for j := 0; j < k; j++ {
		if a.Dir == ring.CW {
			out[j] = sorted[(start+j)%k]
		} else {
			out[j] = sorted[((start-j)%k+k)%k]
		}
	}
	return out
}
