package feasibility

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"ringrobots/internal/config"
)

// This file implements the checkpoint layer of the table search: a
// suspended drain's complete restart state — the open branch frontier
// (copy-on-write chains flattened into an indexed node list), the
// pruning layer's refutation credits and nogood store, the prior tiers'
// surviving table, and the cumulative counters — plus a versioned
// binary encoding for journaling it (internal/journal). Capture happens
// either at a quiesce barrier (Solver.CheckpointEvery/OnCheckpoint,
// workQueue.pop) or at suspension (budget exhaustion, context cancel);
// Solver.Resume validates a checkpoint and rebuilds the work queue from
// it.

// ckptNode is one flattened tableNode: its parent by index into the
// checkpoint's node list (-1 for the root, which must precede its
// children), its (observation, decision) binding, and its live openKids
// count so the pruning layer's refutation closure resumes mid-flight.
type ckptNode struct {
	parent   int32
	obs      ObsKey
	d        Decision
	openKids int32
}

// ckptCredit is one observation's learned refutation credit, keyed by
// its obsHash (the credit store never needs the observation back).
type ckptCredit struct {
	hash   uint64
	credit int64
}

// ckptNogood is one refuted subtable with the pending limit it was
// refuted under.
type ckptNogood struct {
	limit   int32
	entries []pruneEntry
}

// Checkpoint is the restart state of a suspended drain. Values are
// produced by SolveContext/Resume (on suspension), by the OnCheckpoint
// callback (periodically), or by UnmarshalCheckpoint; they are opaque
// outside this package except through Stats.
type Checkpoint struct {
	version     string
	n, k        int
	maxCycleLen int
	noQuotient  bool
	noIncremental bool
	noPrune     bool

	pendingTiers []int
	tierIndex    int // index into pendingTiers of the suspended tier

	// counters is the cumulative Result so far (SurvivorTable stripped;
	// the prior survivor travels as entries below).
	counters Result

	hasPrior bool
	prior    []pruneEntry // prior tiers' surviving table, sorted by obs

	// nodes lists every tableNode on some frontier chain, parents
	// strictly before children; frontier indexes the open branches in
	// queue order (bottom of the LIFO stack first).
	nodes    []ckptNode
	frontier []int32

	credits []ckptCredit
	nogoods []ckptNogood
}

// tableEntries flattens a table into entries sorted by observation —
// the deterministic serialized form of a survivor.
func tableEntries(t Table) []pruneEntry {
	entries := make([]pruneEntry, 0, len(t))
	for o, d := range t {
		entries = append(entries, pruneEntry{obs: o, d: d})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].obs.Less(entries[j].obs) })
	return entries
}

// priorSurvivor rebuilds the prior tiers' surviving table (nil if the
// drain was suspended before any tier produced one).
func (ck *Checkpoint) priorSurvivor() Table {
	if !ck.hasPrior {
		return nil
	}
	t := make(Table, len(ck.prior))
	for _, e := range ck.prior {
		t[e.obs] = e.d
	}
	return t
}

// captureCheckpoint flattens the live drain state. frontier must be the
// complete open frontier in queue order (bottom first); the nodes are
// read, never retained, so calling under the quiesce barrier with the
// live queue slice is safe.
func (s *Solver) captureCheckpoint(tiers []int, ti int, counters Result, survivor Table, frontier []*tableNode, prune *pruneState) *Checkpoint {
	counters.SurvivorTable = nil
	ck := &Checkpoint{
		version:       SolverVersion,
		n:             s.N,
		k:             s.K,
		maxCycleLen:   s.MaxCycleLen,
		noQuotient:    s.NoQuotient,
		noIncremental: s.NoIncremental,
		noPrune:       s.NoPrune,
		pendingTiers:  append([]int(nil), tiers...),
		tierIndex:     ti,
		counters:      counters,
	}
	if survivor != nil {
		ck.hasPrior = true
		ck.prior = tableEntries(survivor)
	}
	index := make(map[*tableNode]int32)
	var addNode func(nd *tableNode) int32
	addNode = func(nd *tableNode) int32 {
		if nd == nil {
			return -1
		}
		if id, ok := index[nd]; ok {
			return id
		}
		p := addNode(nd.parent) // parents first: children refer backward
		id := int32(len(ck.nodes))
		ck.nodes = append(ck.nodes, ckptNode{parent: p, obs: nd.obs, d: nd.d, openKids: nd.openKids.Load()})
		index[nd] = id
		return id
	}
	for _, nd := range frontier {
		ck.frontier = append(ck.frontier, addNode(nd))
	}
	if prune != nil {
		ck.credits, ck.nogoods = prune.exportState()
	}
	return ck
}

// rebuildFrontier reconstructs the open branches as live tableNode
// chains (shared ancestors shared again, openKids restored), in the
// stored queue order. Snapshots are not checkpointed: resumed branches
// run a full analysis, whose per-branch outputs the incremental mode's
// differential contract pins as identical.
func (ck *Checkpoint) rebuildFrontier() ([]*tableNode, error) {
	if len(ck.frontier) == 0 {
		return nil, errors.New("feasibility: checkpoint has an empty frontier")
	}
	nodes := make([]*tableNode, len(ck.nodes))
	for i, cn := range ck.nodes {
		nd := &tableNode{obs: cn.obs, d: cn.d}
		if cn.parent >= 0 {
			if int(cn.parent) >= i {
				return nil, fmt.Errorf("feasibility: checkpoint node %d references non-prior parent %d", i, cn.parent)
			}
			nd.parent = nodes[cn.parent]
		}
		nd.openKids.Store(cn.openKids)
		nodes[i] = nd
	}
	out := make([]*tableNode, len(ck.frontier))
	for i, id := range ck.frontier {
		if id < 0 || int(id) >= len(nodes) {
			return nil, fmt.Errorf("feasibility: checkpoint frontier references node %d of %d", id, len(nodes))
		}
		out[i] = nodes[id]
	}
	return out, nil
}

// validateFor checks that a checkpoint can resume on this solver: same
// solver version (resume is only deterministic against the exact search
// that wrote it), same ring and search parameters, same mode flags,
// same tier ladder, and a non-empty frontier (an empty one would drain
// instantly into a bogus impossibility verdict).
func (ck *Checkpoint) validateFor(s *Solver) error {
	if ck == nil {
		return errors.New("feasibility: nil checkpoint")
	}
	if ck.version != SolverVersion {
		return fmt.Errorf("feasibility: checkpoint from solver version %q, this solver is %q", ck.version, SolverVersion)
	}
	if ck.n != s.N || ck.k != s.K {
		return fmt.Errorf("feasibility: checkpoint is for n=%d k=%d, solver has n=%d k=%d", ck.n, ck.k, s.N, s.K)
	}
	if ck.maxCycleLen != s.MaxCycleLen {
		return fmt.Errorf("feasibility: checkpoint MaxCycleLen %d != solver %d", ck.maxCycleLen, s.MaxCycleLen)
	}
	if ck.noQuotient != s.NoQuotient || ck.noIncremental != s.NoIncremental || ck.noPrune != s.NoPrune {
		return fmt.Errorf("feasibility: checkpoint search modes (NoQuotient=%t NoIncremental=%t NoPrune=%t) do not match solver (%t %t %t)",
			ck.noQuotient, ck.noIncremental, ck.noPrune, s.NoQuotient, s.NoIncremental, s.NoPrune)
	}
	tiers := s.PendingTiers
	if len(tiers) == 0 {
		tiers = []int{0, 2}
	}
	if len(tiers) != len(ck.pendingTiers) {
		return fmt.Errorf("feasibility: checkpoint tier ladder %v does not match solver %v", ck.pendingTiers, tiers)
	}
	for i, limit := range tiers {
		if ck.pendingTiers[i] != limit {
			return fmt.Errorf("feasibility: checkpoint tier ladder %v does not match solver %v", ck.pendingTiers, tiers)
		}
	}
	if ck.tierIndex < 0 || ck.tierIndex >= len(ck.pendingTiers) {
		return fmt.Errorf("feasibility: checkpoint tier index %d out of range for ladder %v", ck.tierIndex, ck.pendingTiers)
	}
	if len(ck.frontier) == 0 {
		return errors.New("feasibility: checkpoint has an empty frontier")
	}
	return nil
}

// CheckpointStats is the operator-facing summary of a checkpoint
// (cmd/drain prints it on every save and resume).
type CheckpointStats struct {
	Version          string
	N, K             int
	Tier             int // pending limit of the suspended tier
	TierIndex        int
	TierCount        int // length of the pending-tier ladder
	FrontierNodes    int
	FrontierDepthMin int // table entries bound on the shallowest open branch
	FrontierDepthMax int
	TablesExplored   int
	ExpansionUnits   int64
	Credits          int
	Nogoods          int
	HasPriorSurvivor bool
}

// Stats summarizes the checkpoint without rebuilding it.
func (ck *Checkpoint) Stats() CheckpointStats {
	st := CheckpointStats{
		Version:          ck.version,
		N:                ck.n,
		K:                ck.k,
		TierIndex:        ck.tierIndex,
		TierCount:        len(ck.pendingTiers),
		FrontierNodes:    len(ck.frontier),
		TablesExplored:   ck.counters.TablesExplored,
		ExpansionUnits:   ck.counters.ExpansionUnits,
		Credits:          len(ck.credits),
		Nogoods:          len(ck.nogoods),
		HasPriorSurvivor: ck.hasPrior,
	}
	if ck.tierIndex >= 0 && ck.tierIndex < len(ck.pendingTiers) {
		st.Tier = ck.pendingTiers[ck.tierIndex]
	}
	depth := make([]int, len(ck.nodes))
	for i, cn := range ck.nodes {
		if cn.parent >= 0 {
			depth[i] = depth[cn.parent] + 1
		}
	}
	for i, id := range ck.frontier {
		d := 0
		if int(id) < len(depth) {
			d = depth[id]
		}
		if i == 0 || d < st.FrontierDepthMin {
			st.FrontierDepthMin = d
		}
		if d > st.FrontierDepthMax {
			st.FrontierDepthMax = d
		}
	}
	return st
}

// --- binary encoding ---------------------------------------------------------

// ckptMagic and ckptFormat version the wire encoding separately from
// SolverVersion (which versions search semantics).
const ckptMagic = "RRCP"
const ckptFormat = 1

func appendObsKey(b []byte, o ObsKey) []byte {
	b = o.Lo.AppendBinary(b)
	return o.Hi.AppendBinary(b)
}

func decodeObsKey(b []byte) (ObsKey, int, error) {
	lo, n1, err := config.DecodeCanonKey(b)
	if err != nil {
		return ObsKey{}, 0, err
	}
	hi, n2, err := config.DecodeCanonKey(b[n1:])
	if err != nil {
		return ObsKey{}, 0, err
	}
	return ObsKey{Lo: lo, Hi: hi}, n1 + n2, nil
}

func appendEntry(b []byte, e pruneEntry) []byte {
	b = appendObsKey(b, e.obs)
	return binary.AppendUvarint(b, uint64(e.d))
}

var errTruncatedCkpt = errors.New("feasibility: truncated checkpoint encoding")

// ckptDecoder is a cursor with sticky error handling over the encoded
// checkpoint.
type ckptDecoder struct {
	b   []byte
	err error
}

func (d *ckptDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = errTruncatedCkpt
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *ckptDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.err = errTruncatedCkpt
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *ckptDecoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b) {
		d.err = errTruncatedCkpt
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *ckptDecoder) byte() byte {
	b := d.bytes(1)
	if d.err != nil {
		return 0
	}
	return b[0]
}

// count reads a length prefix and sanity-caps it against the remaining
// input (each element costs at least min bytes), so corrupt lengths
// fail cleanly instead of attempting giant allocations.
func (d *ckptDecoder) count(min int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if v > uint64(len(d.b)/min) {
		d.err = errTruncatedCkpt
		return 0
	}
	return int(v)
}

func (d *ckptDecoder) obsKey() ObsKey {
	if d.err != nil {
		return ObsKey{}
	}
	o, n, err := decodeObsKey(d.b)
	if err != nil {
		d.err = err
		return ObsKey{}
	}
	d.b = d.b[n:]
	return o
}

func (d *ckptDecoder) decision() Decision {
	v := d.uvarint()
	if d.err == nil && v > uint64(DEither) {
		d.err = fmt.Errorf("feasibility: checkpoint decision %d out of range", v)
	}
	return Decision(v)
}

// MarshalBinary encodes the checkpoint for journaling. The encoding is
// deterministic: capturing the same quiesced state twice yields
// identical bytes.
func (ck *Checkpoint) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, 256+64*len(ck.nodes))
	b = append(b, ckptMagic...)
	b = binary.AppendUvarint(b, ckptFormat)
	b = binary.AppendUvarint(b, uint64(len(ck.version)))
	b = append(b, ck.version...)
	b = binary.AppendUvarint(b, uint64(ck.n))
	b = binary.AppendUvarint(b, uint64(ck.k))
	b = binary.AppendUvarint(b, uint64(ck.maxCycleLen))
	var flags byte
	if ck.noQuotient {
		flags |= 1
	}
	if ck.noIncremental {
		flags |= 2
	}
	if ck.noPrune {
		flags |= 4
	}
	if ck.hasPrior {
		flags |= 8
	}
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(len(ck.pendingTiers)))
	for _, t := range ck.pendingTiers {
		b = binary.AppendUvarint(b, uint64(t))
	}
	b = binary.AppendUvarint(b, uint64(ck.tierIndex))
	b = appendResultCounters(b, &ck.counters)
	if ck.hasPrior {
		b = binary.AppendUvarint(b, uint64(len(ck.prior)))
		for _, e := range ck.prior {
			b = appendEntry(b, e)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(ck.nodes)))
	for _, nd := range ck.nodes {
		b = binary.AppendVarint(b, int64(nd.parent))
		b = appendObsKey(b, nd.obs)
		b = binary.AppendUvarint(b, uint64(nd.d))
		b = binary.AppendVarint(b, int64(nd.openKids))
	}
	b = binary.AppendUvarint(b, uint64(len(ck.frontier)))
	for _, id := range ck.frontier {
		b = binary.AppendUvarint(b, uint64(id))
	}
	b = binary.AppendUvarint(b, uint64(len(ck.credits)))
	for _, cr := range ck.credits {
		b = binary.LittleEndian.AppendUint64(b, cr.hash)
		b = binary.AppendVarint(b, cr.credit)
	}
	b = binary.AppendUvarint(b, uint64(len(ck.nogoods)))
	for _, ng := range ck.nogoods {
		b = binary.AppendUvarint(b, uint64(ng.limit))
		b = binary.AppendUvarint(b, uint64(len(ng.entries)))
		for _, e := range ng.entries {
			b = appendEntry(b, e)
		}
	}
	return b, nil
}

// UnmarshalCheckpoint decodes a checkpoint produced by MarshalBinary.
// It validates structure (magic, format, ranges, internal references)
// but not solver compatibility — Resume's validateFor does that.
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < len(ckptMagic) || string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, errors.New("feasibility: not a checkpoint (bad magic)")
	}
	d := &ckptDecoder{b: data[len(ckptMagic):]}
	if f := d.uvarint(); d.err == nil && f != ckptFormat {
		return nil, fmt.Errorf("feasibility: unsupported checkpoint format %d", f)
	}
	ck := &Checkpoint{}
	ck.version = string(d.bytes(int(d.uvarint())))
	ck.n = int(d.uvarint())
	ck.k = int(d.uvarint())
	ck.maxCycleLen = int(d.uvarint())
	flags := d.byte()
	ck.noQuotient = flags&1 != 0
	ck.noIncremental = flags&2 != 0
	ck.noPrune = flags&4 != 0
	ck.hasPrior = flags&8 != 0
	ck.pendingTiers = make([]int, 0, d.count(1))
	for i := cap(ck.pendingTiers); i > 0; i-- {
		ck.pendingTiers = append(ck.pendingTiers, int(d.uvarint()))
	}
	ck.tierIndex = int(d.uvarint())
	d.resultCounters(&ck.counters)
	if ck.hasPrior {
		n := d.count(3)
		ck.prior = make([]pruneEntry, 0, n)
		for i := 0; i < n; i++ {
			obs := d.obsKey()
			ck.prior = append(ck.prior, pruneEntry{obs: obs, d: d.decision()})
		}
	}
	nNodes := d.count(4)
	ck.nodes = make([]ckptNode, 0, nNodes)
	for i := 0; i < nNodes; i++ {
		parent := d.varint()
		if d.err == nil && (parent < -1 || parent >= int64(i)) {
			return nil, fmt.Errorf("feasibility: checkpoint node %d has invalid parent %d", i, parent)
		}
		obs := d.obsKey()
		dec := d.decision()
		kids := d.varint()
		ck.nodes = append(ck.nodes, ckptNode{parent: int32(parent), obs: obs, d: dec, openKids: int32(kids)})
	}
	nFront := d.count(1)
	ck.frontier = make([]int32, 0, nFront)
	for i := 0; i < nFront; i++ {
		id := d.uvarint()
		if d.err == nil && id >= uint64(len(ck.nodes)) {
			return nil, fmt.Errorf("feasibility: checkpoint frontier references node %d of %d", id, len(ck.nodes))
		}
		ck.frontier = append(ck.frontier, int32(id))
	}
	nCred := d.count(9)
	ck.credits = make([]ckptCredit, 0, nCred)
	for i := 0; i < nCred; i++ {
		raw := d.bytes(8)
		var h uint64
		if d.err == nil {
			h = binary.LittleEndian.Uint64(raw)
		}
		ck.credits = append(ck.credits, ckptCredit{hash: h, credit: d.varint()})
	}
	nNg := d.count(2)
	ck.nogoods = make([]ckptNogood, 0, nNg)
	for i := 0; i < nNg; i++ {
		limit := d.uvarint()
		nEnt := d.count(3)
		entries := make([]pruneEntry, 0, nEnt)
		for j := 0; j < nEnt; j++ {
			obs := d.obsKey()
			entries = append(entries, pruneEntry{obs: obs, d: d.decision()})
		}
		ck.nogoods = append(ck.nogoods, ckptNogood{limit: int32(limit), entries: entries})
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("feasibility: %d trailing bytes after checkpoint", len(d.b))
	}
	return ck, nil
}
