package feasibility

import (
	"math/rand"
	"testing"

	"ringrobots/internal/config"
	"ringrobots/internal/ring"
)

// randomState draws a game state with k occupied nodes and up to two
// pending moves on an n-ring.
func randomState(rng *rand.Rand, n, k int) state {
	var s state
	for set := 0; set < k; {
		u := rng.Intn(n)
		if s.occupied&(1<<uint(u)) == 0 {
			s.occupied |= 1 << uint(u)
			set++
		}
	}
	for p := rng.Intn(3); p > 0; p-- {
		u := rng.Intn(n)
		if !s.occupiedAt(u) {
			continue
		}
		if _, has := s.pendingAt(u); has {
			continue // one pending register per robot, as in the searcher
		}
		d := ring.CW
		if rng.Intn(2) == 0 {
			d = ring.CCW
		}
		s = s.withPending(u, d)
	}
	return s
}

// TestCanonStateOrbitInvariance checks the core property of the
// symmetry quotient: every dihedral image of a state canonicalizes to
// the same representative, the reported isometry actually maps the
// state onto it, and the representative is its own canonical form.
func TestCanonStateOrbitInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for n := 3; n <= maxRingSize; n++ {
		for trial := 0; trial < 24; trial++ {
			k := 1 + rng.Intn(n-1)
			s := randomState(rng, n, k)
			canon, g := canonState(s, n)
			if g.apply(s, n) != canon {
				t.Fatalf("n=%d state %+v: reported isometry (r=%d refl=%v) maps to %+v, not canon %+v",
					n, s, g.rot(), g.refl(), g.apply(s, n), canon)
			}
			if c2, g2 := canonState(canon, n); c2 != canon {
				t.Fatalf("n=%d: canonical state %+v re-canonicalizes to %+v (iso r=%d refl=%v)",
					n, canon, c2, g2.rot(), g2.refl())
			}
			for refl := 0; refl < 2; refl++ {
				for r := 0; r < n; r++ {
					img := isoOf(r, refl == 1).apply(s, n)
					if c2, _ := canonState(img, n); c2 != canon {
						t.Fatalf("n=%d state %+v image under (r=%d refl=%d): canon %+v != orbit canon %+v",
							n, s, r, refl, c2, canon)
					}
				}
			}
		}
	}
}

// TestIsomGroupLaws pins the packed isometry algebra: composition
// against the pointwise definition, inverses, and mask actions
// (including the shifted edge relabeling under reflections).
func TestIsomGroupLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for n := 3; n <= maxRingSize; n += 7 {
		all := make([]isom, 0, 2*n)
		for r := 0; r < n; r++ {
			all = append(all, isoOf(r, false), isoOf(r, true))
		}
		for _, g := range all {
			inv := g.inverse(n)
			if got := g.compose(inv, n); got != isoIdentity {
				t.Fatalf("n=%d: g∘g⁻¹ = (r=%d refl=%v)", n, got.rot(), got.refl())
			}
			for _, h := range all {
				gh := g.compose(h, n)
				for u := 0; u < n; u++ {
					if gh.node(u, n) != g.node(h.node(u, n), n) {
						t.Fatalf("n=%d: composition law fails at u=%d", n, u)
					}
				}
			}
			m := rng.Uint64() & (uint64(1)<<uint(n) - 1)
			var nodeWant, edgeWant uint64
			for u := 0; u < n; u++ {
				if m&(1<<uint(u)) != 0 {
					nodeWant |= 1 << uint(g.node(u, n))
					// Edge u joins nodes u and u+1; its image joins the
					// images of those nodes, which are adjacent.
					a, b := g.node(u, n), g.node((u+1)%n, n)
					e := a
					if (a+1)%n != b {
						e = b
					}
					edgeWant |= 1 << uint(e)
				}
			}
			if got := g.nodeMask(m, n); got != nodeWant {
				t.Fatalf("n=%d g=(r=%d refl=%v): nodeMask %b != %b", n, g.rot(), g.refl(), got, nodeWant)
			}
			if got := g.edgeMask(m, n); got != edgeWant {
				t.Fatalf("n=%d g=(r=%d refl=%v): edgeMask %b != %b", n, g.rot(), g.refl(), got, edgeWant)
			}
		}
	}
}

// solveMode runs a fresh solver in the requested mode.
func solveMode(t *testing.T, n, k int, noQuotient bool, tune func(*Solver)) Result {
	t.Helper()
	s := NewSolver(n, k)
	s.Workers = 1
	s.NoQuotient = noQuotient
	if tune != nil {
		tune(s)
	}
	res, err := s.Solve()
	if err != nil {
		t.Fatalf("(k=%d,n=%d) noQuotient=%v: %v", k, n, noQuotient, err)
	}
	return res
}

// checkModesAgree solves (n,k) in both modes and enforces the
// differential contract: identical verdicts and tiers, matching
// survivor existence, every reported survivor valid under the *other*
// mode's analysis, and the quotient never interning more states.
func checkModesAgree(t *testing.T, n, k int, tune func(*Solver)) (quot, oracle Result) {
	t.Helper()
	quot = solveMode(t, n, k, false, tune)
	oracle = solveMode(t, n, k, true, tune)
	if quot.Impossible != oracle.Impossible {
		t.Errorf("(k=%d,n=%d): verdict differs: quotient %v, oracle %v", k, n, quot.Impossible, oracle.Impossible)
	}
	if quot.Tier != oracle.Tier {
		t.Errorf("(k=%d,n=%d): tier differs: quotient %d, oracle %d", k, n, quot.Tier, oracle.Tier)
	}
	if (quot.SurvivorTable == nil) != (oracle.SurvivorTable == nil) {
		t.Errorf("(k=%d,n=%d): survivor existence differs between modes", k, n)
	}
	for _, res := range []Result{quot, oracle} {
		if res.SurvivorTable == nil {
			continue
		}
		for _, nq := range []bool{false, true} {
			mk := NewSolver(n, k)
			if tune != nil {
				tune(mk)
			}
			mk.NoQuotient = nq
			if !survivorHoldsMode(mk, res.Tier, res.SurvivorTable) {
				t.Errorf("(k=%d,n=%d): survivor table fails re-analysis with noQuotient=%v", k, n, nq)
			}
		}
	}
	return quot, oracle
}

// TestQuotientMatchesOracleSmall runs the full differential contract on
// every small paper-adjacent case, covering both impossibility and
// bounded-adversary-survivor outcomes at both tiers.
func TestQuotientMatchesOracleSmall(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{3, 1}, {4, 1}, {5, 1}, {3, 2}, {4, 2}, {5, 2}, {6, 2},
		{5, 3}, {6, 3}, {7, 3}, {5, 4}, {6, 4}, {6, 5}, {7, 4},
		{7, 5}, {7, 6}, {8, 4}, {8, 5}, {9, 6},
	} {
		checkModesAgree(t, tc.n, tc.k, nil)
	}
}

// TestQuotientMatchesOracleRandomized fuzzes the differential contract
// over random (k, n) instances with randomized adversary strength, so
// crippled-adversary survivors and odd tier ladders are exercised too.
// MaxCycleLen stays at values where the lasso hunt saturates: the cap
// counts quotient steps, and one quotient step can cover several raw
// steps (a canonical self-loop lifts to an up-to-n-step raw cycle), so
// a deliberately starved cap — MaxCycleLen = 1, as in
// TestSurvivorIndependentOfSchedule — cripples the oracle more than the
// quotient and the two legitimately disagree. The bounded-multiplicity
// hunt widens that starved-cap gap (a 2-step projected loop through a
// revisited canonical state lifts to a raw cycle far beyond an equal
// raw cap), so caps below 6 stay excluded here; at saturating caps the
// trials now also exercise orbit-mate loops — dense k (n−2, n−3)
// instances where the revisit hunt fires — and the contract must still
// hold. TestRevisitCatchesOrbitMateLoop pins one such loop exactly.
func TestQuotientMatchesOracleRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		n := 3 + rng.Intn(6) // 3..8
		k := 1 + rng.Intn(n-1)
		if trial%3 == 0 && n >= 5 {
			k = n - 2 - rng.Intn(2) // symmetric-rich band: orbit-mate loops live here
		}
		cycleLen := []int{6, 12, 24}[rng.Intn(3)]
		tiers := [][]int{{0}, {0, 1}, {0, 2}}[rng.Intn(3)]
		checkModesAgree(t, n, k, func(s *Solver) {
			s.MaxCycleLen = cycleLen
			s.PendingTiers = tiers
		})
	}
}

// TestRevisitCatchesOrbitMateLoop pins the bounded-multiplicity lasso
// hunt on a concrete (5,8) decision table whose only adversary win is a
// fair starvation loop visiting two orbit-mates — raw states on one
// loop that canonicalize to the same quotient state. The simple-cycle
// DFS cannot traverse that projection (it would have to enter the
// canonical state twice), so before the revisit hunt the quotiented
// searcher failed to refute this table and branched on; it was the one
// table in the whole (5,8) tree with that blind spot (the unquotiented
// oracle refutes it outright, which is part of why it closed branches
// earlier — the PR 3 follow-up). The entries were extracted by diffing
// the two searchers' refutation sets.
func fixtureTable() Table {
	key := func(lo, hi config.View) ObsKey {
		return ObsKey{Lo: config.KeyOf(lo), Hi: config.KeyOf(hi)}
	}
	return Table{
		key(config.View{0, 0, 2, 0, 1}, config.View{1, 0, 2, 0, 0}): DTowardHi,
		key(config.View{0, 2, 0, 0, 1}, config.View{1, 0, 0, 2, 0}): DTowardHi,
		key(config.View{0, 1, 0, 2, 0}, config.View{0, 2, 0, 1, 0}): DStay,
		key(config.View{0, 1, 1, 1, 0}, config.View{0, 1, 1, 1, 0}): DStay,
		key(config.View{0, 0, 0, 1, 2}, config.View{2, 1, 0, 0, 0}): DStay,
		key(config.View{0, 0, 1, 0, 2}, config.View{2, 0, 1, 0, 0}): DTowardHi,
		key(config.View{1, 0, 1, 0, 1}, config.View{1, 0, 1, 0, 1}): DStay,
		key(config.View{0, 0, 0, 3, 0}, config.View{0, 3, 0, 0, 0}): DStay,
		key(config.View{0, 0, 1, 2, 0}, config.View{0, 2, 1, 0, 0}): DStay,
		key(config.View{0, 0, 1, 1, 1}, config.View{1, 1, 1, 0, 0}): DStay,
		key(config.View{0, 1, 1, 0, 1}, config.View{1, 0, 1, 1, 0}): DStay,
		key(config.View{0, 0, 0, 2, 1}, config.View{1, 2, 0, 0, 0}): DTowardHi,
		key(config.View{0, 0, 3, 0, 0}, config.View{0, 0, 3, 0, 0}): DStay,
		key(config.View{0, 1, 0, 0, 2}, config.View{2, 0, 0, 1, 0}): DTowardHi,
		key(config.View{0, 0, 2, 1, 0}, config.View{0, 1, 2, 0, 0}): DStay,
		key(config.View{0, 1, 0, 1, 1}, config.View{1, 1, 0, 1, 0}): DTowardHi,
	}
}

func TestRevisitCatchesOrbitMateLoop(t *testing.T) {
	table := fixtureTable()
	for _, noQuotient := range []bool{false, true} {
		s := NewSolver(8, 5)
		ts := &tierSearch{
			n:             s.N,
			k:             s.K,
			pendingLimit:  0,
			maxExpansions: int64(s.MaxExpansions),
			maxCycleLen:   s.MaxCycleLen,
			quotient:      !noQuotient,
			starts:        s.initialStates(),
			obs:           newObsCache(s.N),
			queue:         newWorkQueue(),
		}
		w := newSearcher(ts)
		w.table = table
		win, _, _, err := w.analyze()
		if err != nil {
			t.Fatalf("noQuotient=%v: %v", noQuotient, err)
		}
		if !win {
			t.Errorf("noQuotient=%v: orbit-mate starvation loop not found — the fixture table must be refuted in both modes", noQuotient)
		}
	}
}

// TestQuotientMatchesOracleTheorem5 is the acceptance check of the
// symmetry quotient: identical verdicts and tiers on all six Theorem 5
// figures, with at least 4× interned-state compression on the deep
// (4,9) case.
func TestQuotientMatchesOracleTheorem5(t *testing.T) {
	if testing.Short() {
		t.Skip("deep differential game searches skipped in -short mode")
	}
	for _, f := range PaperFigures() {
		quot, oracle := checkModesAgree(t, f.N, f.K, nil)
		t.Logf("Figure %d (k=%d,n=%d): impossible=%v tier=%d; states quotient=%d oracle=%d (%.1fx)",
			f.Figure, f.K, f.N, quot.Impossible, quot.Tier,
			quot.StatesInterned, oracle.StatesInterned,
			float64(oracle.StatesInterned)/float64(quot.StatesInterned))
		if f.K == 4 && f.N == 9 {
			if quot.StatesInterned*4 > oracle.StatesInterned {
				t.Errorf("(4,9): interned-state compression below 4x: quotient %d, oracle %d",
					quot.StatesInterned, oracle.StatesInterned)
			}
		}
	}
}

// survivorHoldsMode re-analyzes a claimed survivor under the solver's
// configured mode (survivorHolds in determinism_test.go always uses the
// unquotiented oracle).
func survivorHoldsMode(s *Solver, tier int, tab Table) bool {
	ts := &tierSearch{
		n:             s.N,
		k:             s.K,
		pendingLimit:  tier,
		maxExpansions: int64(s.MaxExpansions),
		maxCycleLen:   s.MaxCycleLen,
		quotient:      !s.NoQuotient,
		starts:        s.initialStates(),
		obs:           newObsCache(s.N),
		queue:         newWorkQueue(),
	}
	w := newSearcher(ts)
	w.table = tab
	win, _, legal, err := w.analyze()
	return err == nil && !win && legal == 0
}
