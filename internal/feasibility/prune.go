package feasibility

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the tree-level pruning layer of the table
// search. PR 4 made each branch nearly free (graph-level reuse), so the
// deep drains are bound by the *number of tables explored*; the levers
// here shrink the tree itself. Three cooperating mechanisms, all shared
// across the worker pool and all disabled together by Solver.NoPrune
// (the differential oracle, exactly as NoQuotient and NoIncremental are
// for their layers):
//
//   - Refutation-guided observation ordering (selectNeededScored,
//     searcher.go): instead of branching on the undefined observation
//     with the fewest legal decisions, branch on the one with the most
//     waiting states plus a per-tier refutation credit updated on
//     every refuted branch. Binding a widely-waited observation
//     constrains the most states at once, so impossible subtrees
//     surface before the combinatorial bulk — this is the paper's
//     Theorem 5 case-analysis instinct ("pin down the decision the
//     adversary punishes everywhere") made mechanical, and it is the
//     dominant lever: (4,9) falls from 145 986 explored tables to 89,
//     (5,8) from 552 to 116, the (5,9) two-tier ladder from 53 957 to
//     1 536. Credits are reset at tier boundaries: a different pending
//     allowance is a different game, and carrying tier-0 statistics
//     into tier 2 measurably poisons its order ((5,9) explores 16–37×
//     more tables with solve-wide credits).
//
//   - Dominance pruning (searcher.dominatedChild): before a child
//     branch is enqueued, a one-step probe of the states waiting on the
//     newly-bound observation detects decisions that hand the adversary
//     an immediate win — a simultaneous same-observation group
//     activation that collides, or a Stay binding that completes an
//     all-stay deadlock on a still-contaminated ring. Such a child is
//     refuted without ever being queued or analyzed ((5,8): 34 of its
//     116-table tree's children, (4,9): 48, the bounded (3,20) drain
//     probe: 7.3 M). Both probes replicate exactly what the child's own
//     first re-expansion would find, so pruned children are branches
//     the full search provably refutes (the NoPrune contract is exact,
//     not just verdict-level).
//
//   - Subtable refutation memo (pruneState.nogoodHit): interior
//     branches whose children have all closed record their table as a
//     *nogood*. A candidate child whose table contains a recorded
//     nogood as a subset is refuted without analysis: every completion
//     of the superset is a completion of the refuted subtable, and
//     adversary wins are monotone both in table extension and in
//     pending allowance, so nogoods recorded at a lower tier remain
//     valid at higher ones (each record carries the pending limit it
//     was refuted under). Only non-final tiers record — within one tier
//     the search never revisits a table, so a record can only ever be
//     consumed by a later rung of the ladder. Measured honestly: hits
//     are rare (the (5,9) ladder sees a handful), because the
//     lazy-binding structure leaves almost no transpositions to find —
//     the memo is kept cheap enough (bloom + sorted-hash merge-walk
//     subset tests, bounded chains, zero-store fast path) that its
//     upside costs nothing measurable.
//
// A measurement worth recording for future levers: the lazy-binding
// game has *no* dead table entries. Reachability only grows as entries
// are added, so along any branch every defined entry is queried in the
// branch's own game graph (verified exhaustively on (5,8): zero
// droppable entries over all 552 unpruned tables). A transposition
// memo keyed by the projection of the table onto reachable observation
// classes therefore degenerates to exact-table keying — which is why
// the memo here is a subset nogood store rather than a projection
// cache.

// pruneCreditWeight scales the per-observation refutation credit
// against the waiting-state count in selectNeededScored. Swept over
// {0, 1, 4, 16} on the paper cases before per-tier credit scoping: 4 is
// the plateau ((4,9) 218 → 127 tables vs credit-free ordering; the
// later per-tier reset moved (5,9) far more than any weight choice).
const pruneCreditWeight = 4

const (
	pruneShards = 64
	// nogoodShardCap bounds each shard of the nogood store; a full
	// shard is wholesale-cleared (epoch-style, like interntable.go's
	// reset) rather than evicted entry-by-entry. The memo is an
	// accelerator: dropping entries only costs future hits.
	nogoodShardCap = 1 << 10
	// nogoodChainCap bounds the records sharing one anchor a lookup
	// will walk. Deep drains refute thousands of tables whose maximal
	// entry coincides; without the cap those chains turn every
	// pre-enqueue lookup into a linear scan of the store (measured 10×
	// the whole solve on (5,9)). Later records simply fall off the
	// chain — the memo misses them, soundly.
	nogoodChainCap = 16
	// nogoodMaxEntries skips recording deep tables: a long nogood is
	// contained in almost no other table (supersets of a 12-entry
	// refutation essentially never re-assemble), so storing it buys
	// nothing — and on branch-heavy drains the serialization of deep
	// interior closures was the dominant closure cost.
	nogoodMaxEntries = 12
)

// pruneEntry is one (observation, decision) binding of a nogood.
type pruneEntry struct {
	obs ObsKey
	d   Decision
}

// nogoodRec is one refuted subtable: its bindings, the pending limit it
// was refuted under (valid at any limit ≥ that one — a stronger
// adversary keeps every win), and the chain link to the previous record
// sharing its anchor hash.
type nogoodRec struct {
	limit int32
	next  int32 // chain of same-anchor records, -1 at the end
	// sig is the 64-bit membership bloom of the entries (one bit per
	// entry hash): a record can only be a subset of a candidate table
	// whose signature covers sig, so most non-hits die on one AND.
	sig uint64
	// hashes holds the entries' hashes in ascending order: the subset
	// test is a merge-walk of two sorted hash arrays (word compares
	// only). Near-miss candidates — cousin tables differing in one
	// decision — used to slip past the bloom and burn exact map lookups
	// here; the differing entry's hash is absent from the candidate, so
	// the merge-walk rejects them for free. entries back the exact
	// verification that guards against hash collisions (a false prune
	// must be impossible, not just unlikely).
	hashes  []uint64
	entries []pruneEntry
}

// pruneState is the pruning state shared by all workers and all tiers
// of one Solve: the per-observation refutation credits read by
// selectNeededScored, and the sharded nogood store. Both sides shard by
// observation hash to keep contention negligible under the worker
// pool; racing lookups that miss a just-recorded entry are benign (a
// missed prune is just an analyzed branch).
//
// The nogood index is keyed by the 64-bit anchor hash, not the entry
// struct: ObsKey holds CanonKeys with a string fallback, and hashing
// those through the generic map path dominated the whole solve on deep
// ladders. A hash collision only routes a lookup to records whose
// subset test then fails against the actual table — never a false
// prune.
type pruneState struct {
	credit [pruneShards]struct {
		mu sync.RWMutex
		m  map[uint64]int64
	}
	// recorded counts stored nogoods (approximately — shard clears do
	// not subtract): the zero fast-path lets solves that never record a
	// nogood skip all lookup work.
	recorded atomic.Int64
	nogood   [pruneShards]struct {
		mu   sync.RWMutex
		head map[uint64]int32 // anchor hash → latest record index
		recs []nogoodRec
	}
}

// newPruneState allocates only the shard skeleton; the shard maps are
// created on first write (reads of a nil map are well-defined misses),
// so small solves never pay for 2×64 map allocations.
func newPruneState() *pruneState {
	return &pruneState{}
}

// obsHash mixes an observation key into 64 bits (word-level, no string
// hashing for packable views).
func obsHash(o ObsKey) uint64 {
	h := o.Lo.Hash()*0x9e3779b97f4a7c15 + o.Hi.Hash()
	return h ^ h>>32
}

func entryHash(e pruneEntry) uint64 {
	return obsHash(e.obs)*0x9e3779b97f4a7c15 + uint64(e.d) + 1
}

// hashSigBit maps an entry hash to its membership-bloom bit; every
// bloom producer and consumer must go through it.
func hashSigBit(h uint64) uint64 {
	return 1 << ((h >> 58) & 63)
}

// sigInsertHash folds one entry hash into the membership bloom and
// insertion-sorts it into the ascending hash array — the single
// definition of the (sig, sorted hashes) representation both sides of
// the subset test must agree on.
func sigInsertHash(sig uint64, hashes []uint64, h uint64) (uint64, []uint64) {
	sig |= hashSigBit(h)
	j := len(hashes)
	hashes = append(hashes, h)
	for j > 0 && h < hashes[j-1] {
		hashes[j] = hashes[j-1]
		j--
	}
	hashes[j] = h
	return sig, hashes
}

// tableSigAndAnchors folds a table's entries into the membership bloom
// the nogood quick-reject compares against and collects the per-entry
// hashes in ascending order (into the caller's scratch) — the anchors
// probed and the merge-walk side of the subset test, one map iteration
// serving every child of the branch.
func tableSigAndAnchors(t Table, scratch []uint64) (uint64, []uint64) {
	var sig uint64
	scratch = scratch[:0]
	for o, d := range t {
		sig, scratch = sigInsertHash(sig, scratch, entryHash(pruneEntry{obs: o, d: d}))
	}
	return sig, scratch
}

// hashesCover reports whether every hash in need occurs in the sorted
// array have or equals extra (the child's new binding). Duplicate
// needs must be covered by duplicate haves — a conservative reject on
// the rare in-table hash collision, never a false accept.
func hashesCover(need, have []uint64, extra uint64) bool {
	i := 0
	for _, h := range need {
		if h == extra {
			continue
		}
		for i < len(have) && have[i] < h {
			i++
		}
		if i >= len(have) || have[i] != h {
			return false
		}
		i++
	}
	return true
}

// creditOf reads an observation's accumulated refutation credit.
// Credits are keyed by observation hash: a chance collision merges two
// observations' credits, which at worst nudges the (heuristic, freely
// choosable) branching order — determinism is unaffected, the hash is a
// pure function.
func (pr *pruneState) creditOf(o ObsKey) int64 {
	h := obsHash(o)
	sh := &pr.credit[h%pruneShards]
	sh.mu.RLock()
	c := sh.m[h]
	sh.mu.RUnlock()
	return c
}

// resetCredits clears every credit shard (tier boundary, when credits
// are scoped per tier).
func (pr *pruneState) resetCredits() {
	for i := range pr.credit {
		sh := &pr.credit[i]
		sh.mu.Lock()
		clear(sh.m)
		sh.mu.Unlock()
	}
}

// addCredit records one refuted branch bound at o.
func (pr *pruneState) addCredit(o ObsKey) {
	h := obsHash(o)
	sh := &pr.credit[h%pruneShards]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[uint64]int64)
	}
	sh.m[h]++
	sh.mu.Unlock()
}

// recordNogood stores a refuted subtable. entries must be sorted by
// observation key; the slice is retained.
func (pr *pruneState) recordNogood(limit int, entries []pruneEntry) {
	if len(entries) == 0 || len(entries) > nogoodMaxEntries {
		return
	}
	// Anchor: the maximal entry. Every superset of the nogood contains
	// it, so a lookup only has to consult the chains of the candidate
	// table's own entries.
	h := entryHash(entries[len(entries)-1])
	sh := &pr.nogood[h%pruneShards]
	sh.mu.Lock()
	if sh.head == nil {
		sh.head = make(map[uint64]int32)
	}
	if len(sh.recs) >= nogoodShardCap {
		clear(sh.head)
		sh.recs = sh.recs[:0]
	}
	head, ok := sh.head[h]
	if !ok {
		head = -1
	} else {
		// Respect the chain cap: a full chain keeps its existing (older)
		// records and this new one is simply not stored — the memo is an
		// accelerator, so dropping a record only costs a potential prune.
		depth := 1
		for i := head; i >= 0 && depth < nogoodChainCap; i = sh.recs[i].next {
			depth++
		}
		if depth >= nogoodChainCap {
			sh.mu.Unlock()
			return
		}
	}
	var sig uint64
	hashes := make([]uint64, 0, len(entries))
	for _, e := range entries {
		sig, hashes = sigInsertHash(sig, hashes, entryHash(e))
	}
	sh.head[h] = int32(len(sh.recs))
	sh.recs = append(sh.recs, nogoodRec{limit: int32(limit), next: head, sig: sig, hashes: hashes, entries: entries})
	sh.mu.Unlock()
	pr.recorded.Add(1)
}

// nogoodHit reports whether the table t extended by the binding
// (xo, xd) contains a nogood refuted at a pending limit ≤ limit. xo
// must be undefined in t (it is the branch's needed observation); tsig
// and hashes are the table's membership bloom and per-entry anchor
// hashes, both computed once per branch by the caller (the candidate's
// own entries are the only possible anchors of a contained nogood, and
// re-deriving them per child made the lookup the hottest path of small
// solves).
func (pr *pruneState) nogoodHit(limit int, t Table, tsig uint64, hashes []uint64, xo ObsKey, xd Decision) bool {
	x := pruneEntry{obs: xo, d: xd}
	xh := entryHash(x)
	csig := tsig | hashSigBit(xh)
	size := len(t) + 1
	if pr.anchoredHit(limit, t, hashes, xo, xd, xh, xh, csig, size) {
		return true
	}
	for _, h := range hashes {
		if pr.anchoredHit(limit, t, hashes, xo, xd, h, xh, csig, size) {
			return true
		}
	}
	return false
}

func (pr *pruneState) anchoredHit(limit int, t Table, tsorted []uint64, xo ObsKey, xd Decision, h, xh, csig uint64, size int) bool {
	sh := &pr.nogood[h%pruneShards]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	head, ok := sh.head[h]
	if !ok {
		return false
	}
	for i := head; i >= 0; i = sh.recs[i].next {
		r := &sh.recs[i]
		if int(r.limit) > limit || len(r.entries) > size || r.sig&^csig != 0 {
			continue
		}
		if !hashesCover(r.hashes, tsorted, xh) {
			continue
		}
		// Hash-covered: verify exactly (collisions must reject).
		ok := true
		for _, e := range r.entries {
			if e.obs == xo {
				if e.d != xd {
					ok = false
					break
				}
				continue
			}
			if d, defined := t[e.obs]; !defined || d != e.d {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// closeRefuted records that the branch at nd is fully refuted and
// propagates the closure up the table tree: credits the branch's
// binding observation, stores interior subtree roots as nogoods, and
// when this was the parent's last open child, closes the parent in
// turn. Leaf tables themselves are credited but not recorded: a leaf is
// the deepest table of its chain, and a later branch assembling a
// superset of it essentially never occurs — recording every leaf made
// serialization the dominant closure cost for zero measured hits. A
// no-op without pruning; skipped once the tier is cancelled (a stopped
// tier abandons branches without refuting them, so recording then would
// be unsound for the survivor path and pointless otherwise).
func (w *searcher) closeRefuted(nd *tableNode, leaf bool) {
	pr := w.ts.prune
	if pr == nil {
		return
	}
	for nd != nil && nd.parent != nil {
		if w.ts.stop.Load() {
			return
		}
		pr.addCredit(nd.obs)
		if !leaf && w.ts.recordNogoods {
			pr.recordNogood(w.ts.pendingLimit, nogoodEntries(nd))
		}
		p := nd.parent
		if p.openKids.Add(-1) != 0 {
			return
		}
		nd = p
		leaf = false
	}
}

// nogoodEntries serializes a branch's table chain as a fresh sorted
// entry slice (retained by the nogood store), or nil when the table is
// too deep to be worth recording.
func nogoodEntries(nd *tableNode) []pruneEntry {
	n := 0
	for c := nd; c != nil && c.parent != nil; c = c.parent {
		n++
	}
	if n > nogoodMaxEntries {
		return nil
	}
	entries := make([]pruneEntry, 0, n)
	for c := nd; c != nil && c.parent != nil; c = c.parent {
		e := pruneEntry{obs: c.obs, d: c.d}
		// Insertion sort by observation key; chains are short and
		// near-sorted order does not matter at this size.
		i := len(entries)
		entries = append(entries, e)
		for i > 0 && e.obs.Less(entries[i-1].obs) {
			entries[i] = entries[i-1]
			i--
		}
		entries[i] = e
	}
	return entries
}

// exportState snapshots the refutation credits and the nogood store
// for checkpoint serialization (checkpoint.go). Credits are sorted by
// hash so the encoding is deterministic; nogood records are emitted in
// shard order and, within a shard, in append order — re-recording them
// in that order (importState) rebuilds byte-identical chain structure,
// which the resume determinism contract needs. The solver only calls
// this while the tier is quiesced (workers parked or exited), but the
// shard locks are taken anyway so the method is safe under -race
// whenever it is reachable.
func (pr *pruneState) exportState() (credits []ckptCredit, nogoods []ckptNogood) {
	for i := range pr.credit {
		sh := &pr.credit[i]
		sh.mu.RLock()
		for h, c := range sh.m {
			if c != 0 {
				credits = append(credits, ckptCredit{hash: h, credit: c})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(credits, func(i, j int) bool { return credits[i].hash < credits[j].hash })
	for i := range pr.nogood {
		sh := &pr.nogood[i]
		sh.mu.RLock()
		for r := range sh.recs {
			rec := &sh.recs[r]
			nogoods = append(nogoods, ckptNogood{
				limit:   rec.limit,
				entries: append([]pruneEntry(nil), rec.entries...),
			})
		}
		sh.mu.RUnlock()
	}
	return credits, nogoods
}

// importState restores an exported pruning state into a fresh
// pruneState. Nogoods are replayed through recordNogood, so chain
// heads, links and the recorded counter come out exactly as they were
// at export time.
func (pr *pruneState) importState(credits []ckptCredit, nogoods []ckptNogood) {
	for _, c := range credits {
		sh := &pr.credit[c.hash%pruneShards]
		sh.mu.Lock()
		if sh.m == nil {
			sh.m = make(map[uint64]int64)
		}
		sh.m[c.hash] = c.credit
		sh.mu.Unlock()
	}
	for _, ng := range nogoods {
		pr.recordNogood(int(ng.limit), ng.entries)
	}
}

// dominatedChild reports whether binding obs := d hands the adversary
// an immediate win at a state already waiting on obs, making the child
// branch refutable without analysis. Both probes replicate precisely a
// check the child's own analysis performs during its first dirty
// re-expansion, so a pruned child is a branch the unpruned search would
// provably close as a win:
//
//   - d == DStay: the waiter state completes an all-stay deadlock —
//     no pending move, every robot's decision known and Stay under the
//     child table — while its stem contamination is not all-clear. A
//     Stay binding adds only stay self-loops, which the canonical
//     discovery replay ignores, so the child's stem contaminations
//     provably equal this branch's and w.cont is exactly the value the
//     child's deadlock check would use.
//
//   - d moving: a simultaneous fused activation of a same-observation
//     group has a direction resolution that collides (two movers onto
//     one node, or a mover onto a robot that stayed put). Enumerated
//     exactly as expand's group step does, against the same per-state
//     pending filter.
//
// Single fused moves never collide here (the legal mask already
// excludes moves onto occupied nodes, and every robot with this
// observation has the same neighborhood by view-determinism), so group
// activations are the only one-step collision source.
func (w *searcher) dominatedChild(obs ObsKey, d Decision) bool {
	if d == DStay {
		full := uint64(1)<<uint(w.n) - 1
		for i := range w.waiters {
			e := &w.waiters[i]
			if e.obs != obs || w.cont[e.id] == full {
				continue
			}
			st := w.states[e.id]
			if st.anyPending() {
				continue
			}
			os := w.ts.obs.get(st.occupied)
			dead := true
			for j := range os.infos {
				oi := &os.infos[j]
				dd := DStay
				if oi.obs != obs {
					var known bool
					dd, known = w.table[oi.obs]
					if !known {
						dead = false
						break
					}
				}
				if dd != DStay {
					dead = false
					break
				}
			}
			if dead {
				return true
			}
		}
		return false
	}
	for i := range w.waiters {
		e := &w.waiters[i]
		if e.obs != obs {
			continue
		}
		st := w.states[e.id]
		os := w.ts.obs.get(st.occupied)
		for _, g := range os.groups {
			if os.infos[g[0]].obs != obs {
				continue
			}
			w.groupBuf = w.groupBuf[:0]
			for _, gi := range g {
				if _, hasPending := st.pendingAt(os.infos[gi].node); !hasPending {
					w.groupBuf = append(w.groupBuf, os.infos[gi])
				}
			}
			if len(w.groupBuf) < 2 {
				continue
			}
			if w.enumGroupCollision(st, d, 0) {
				return true
			}
		}
	}
	return false
}

// enumGroupCollision enumerates the adversary's direction resolutions
// for w.groupBuf exactly as enumGroupCombos does, but only tests for a
// collision instead of materializing edges.
func (w *searcher) enumGroupCollision(st state, d Decision, idx int) bool {
	if idx == len(w.groupBuf) {
		_, _, collision := w.groupMoveMasks(st)
		return collision
	}
	dirs, nd := decisionDirs(d, w.groupBuf[idx].loDir)
	for j := 0; j < nd; j++ {
		w.dirs[idx] = dirs[j]
		if w.enumGroupCollision(st, d, idx+1) {
			return true
		}
	}
	return false
}
