package feasibility

import "sync/atomic"

// This file implements incremental sibling-branch re-analysis for the
// decision-table search. A child branch's table differs from its
// parent's by exactly one new entry, yet the searcher used to rebuild
// the entire reachable game graph per branch. Instead, a branch that
// fans out now publishes a snapshot of its finished analysis — the
// interned state graph, adjacency arena, stem contaminations, SCC
// partition, waiter registry and the intern-table image — and each
// child adopts it and re-does only the work the new entry can change:
//
//   - states whose expansion registered the newly-bound observation as
//     unknown (the waiter registry is the reverse index) are
//     re-expanded under the child table, which can add edges, flip
//     stayable bits, force collisions, or complete a deadlock;
//   - everything newly reachable from those states is expanded as in a
//     full analyze (the frontier);
//   - stem contaminations are replayed canonically over the final graph
//     (recomputeCont), reproducing bit-for-bit the values a full
//     analyze's discovery BFS would have assigned — new edges can
//     re-route discovery through previously-expanded states, which is
//     how a new entry creates wins "behind" the frontier;
//   - Tarjan is re-run (pure slice walking, negligible next to
//     expansion), and the expensive starvation-lasso hunts are skipped
//     for every head whose inputs provably match the parent's already
//     refuted hunt: its component is the same state set with the same
//     edge windows (no re-expanded or new member, monotone SCC growth
//     pins set equality by size), and its stem contamination is
//     unchanged.
//
// The child's per-branch outputs (win verdict, branching observation,
// legal mask) are exactly those of a full analyze of the same table —
// the expansion listing is a pure function of (state, table), the
// reachable set and edge windows therefore coincide, contamination is
// replayed in canonical discovery order, and a clean head's hunt was
// refuted by the parent over identical inputs. Solver.NoIncremental
// retains the full-reanalysis path as the differential oracle
// (incremental_test.go pins verdict, tier, survivor, tree shape and
// per-branch graph sizes).
//
// Budget accounting (satellite of the PR): re-expansion and frontier
// work is charged through the same checkAbort units as full expansion,
// and the lasso hunts and their fairness/contamination passes keep
// their PR 3 charging; the bookkeeping passes (snapshot copy,
// contamination replay, Tarjan) are word-op cheap and stay uncharged in
// both modes, exactly like Tarjan always was.

// branchSnap is a published branch analysis. It is immutable once
// pushed (workers only read it), shared by the branch's children, and
// recycled through tierSearch.snapPool when the last child releases it.
// Publishing is allocation-free in steady state: the worker's live
// arrays move into the snapshot and the worker inherits the pooled
// capacity in exchange.
type branchSnap struct {
	refs      atomic.Int32
	states    []state
	cont      []uint64
	info      []nodeInfo
	edges     []edge
	waiters   []waiter
	scc       []int32
	compSize  []int32
	tab       internTable
	numStarts int32
}

// releaseSnap drops one child's reference, recycling the snapshot's
// arrays once no child needs them.
func (ts *tierSearch) releaseSnap(s *branchSnap) {
	if s.refs.Add(-1) == 0 {
		ts.snapPool.Put(s)
	}
}

// publishSnap freezes the worker's finished analysis into a snapshot
// shared by the branch's children (refs = children) and swaps pooled
// backing arrays into the worker in exchange.
func (w *searcher) publishSnap(children int) *branchSnap {
	s, _ := w.ts.snapPool.Get().(*branchSnap)
	if s == nil {
		s = &branchSnap{}
	}
	w.states, s.states = s.states[:0], w.states
	w.cont, s.cont = s.cont[:0], w.cont
	w.info, s.info = s.info[:0], w.info
	w.edges, s.edges = s.edges[:0], w.edges
	w.waiters, s.waiters = s.waiters[:0], w.waiters
	w.scc, s.scc = s.scc[:0], w.scc
	w.compSize, s.compSize = s.compSize[:0], w.compSize
	w.tab, s.tab = s.tab, w.tab
	s.numStarts = w.numStarts
	s.refs.Store(int32(children))
	return s
}

// analyzeIncremental is analyze for a branch carrying its parent's
// snapshot: same contract, same outputs, but expansion work
// proportional to the frontier the branch's one new table entry
// unlocks. nd.obs is that entry's observation; the decision is already
// materialized in w.table.
func (w *searcher) analyzeIncremental(nd *tableNode) (win bool, neededObs ObsKey, legal uint8, err error) {
	snap := nd.snap
	inherited := int32(len(snap.states))

	// Adopt: copy the graph into the worker's reusable buffers (the
	// snapshot stays immutable for sibling workers). cont starts as the
	// parent's canonical values — provisional stems for edgeTo during
	// re-expansion, replaced wholesale by recomputeCont below.
	w.states = append(w.states[:0], snap.states...)
	w.cont = append(w.cont[:0], snap.cont...)
	w.info = append(w.info[:0], snap.info...)
	w.edges = append(w.edges[:0], snap.edges...)
	if int(snap.tab.count)*4 <= len(snap.tab.keys) {
		// Sparse image (tiny graph in a grown table): re-inserting the
		// states is cheaper than copying the slot arrays, and the
		// mapping is identical — ids are dense insertion order.
		w.tab.reset()
		for id := range w.states {
			w.tab.getOrPut(w.states[id], int32(id))
		}
	} else {
		w.tab.adoptFrom(&snap.tab)
	}
	w.numStarts = snap.numStarts
	w.prevCont, w.prevScc, w.prevCompSize = snap.cont, snap.scc, snap.compSize

	// Dirty set: the states whose expansion waits on the newly-bound
	// observation, deduplicated (a state may have registered it through
	// several robots).
	w.dirtyMark = growU64(w.dirtyMark, int(inherited))
	w.dirtyEpoch++
	w.dirtyList = w.dirtyList[:0]
	for i := range snap.waiters {
		e := &snap.waiters[i]
		if e.obs == nd.obs && w.dirtyMark[e.id] != w.dirtyEpoch {
			w.dirtyMark[e.id] = w.dirtyEpoch
			w.dirtyList = append(w.dirtyList, e.id)
		}
	}
	// Inherit the waiter registry minus the now-bound observation and
	// minus every dirty state: re-expansion re-registers a dirty state's
	// remaining unknowns, so the registry carries no stale entries down
	// the chain.
	w.waiters = w.waiters[:0]
	for i := range snap.waiters {
		e := &snap.waiters[i]
		if e.obs == nd.obs || w.dirtyMark[e.id] == w.dirtyEpoch {
			continue
		}
		w.waiters = append(w.waiters, *e)
	}

	// Re-expand the dirty states under the child table (their windows
	// are replaced; the old windows become arena garbage), then expand
	// the newly-discovered frontier exactly as the full BFS would.
	// Dirty states are visited in collision-likelihood order — pending
	// executions first, discovery order as the fallback within each
	// rank — so win-by-collision branches short-circuit as early as
	// possible (the PR 4 follow-up: a pending move fired into a changed
	// occupancy is the cheapest win to detect). The per-branch outputs
	// are order-independent: a win is a win whichever dirty state
	// trips it first, and a non-winning branch re-expands every dirty
	// state regardless, with selectNeeded and the contamination replay
	// both insensitive to interning order.
	w.orderDirtyByCollision()
	for _, id := range w.dirtyList {
		if err := w.checkAbort(); err != nil {
			return false, ObsKey{}, 0, err
		}
		if w.expand(id) {
			return true, ObsKey{}, 0, nil // collision forced
		}
	}
	for id := inherited; int(id) < len(w.states); id++ {
		if err := w.checkAbort(); err != nil {
			return false, ObsKey{}, 0, err
		}
		if w.expand(id) {
			return true, ObsKey{}, 0, nil
		}
	}

	// The graph is final: replay stem contaminations in canonical
	// discovery order, then run the deadlock check the full BFS
	// interleaves (new edges can re-route discovery, so inherited
	// states' stems — and deadlock verdicts — may change too).
	w.recomputeCont()
	full := uint64(1)<<uint(w.n) - 1
	for id := range w.states {
		if w.info[id].allStayDeadlock && w.cont[id] != full {
			return true, ObsKey{}, 0, nil
		}
	}

	w.computeSCCs()
	w.markDirtyComps(inherited)
	cleanHead := func(id int32) bool {
		// Identical inputs to the parent's hunt from this head (same
		// component set, same edge windows, same stem), which found
		// nothing — skip it. Sound for the bounded-multiplicity pass
		// too: the parent ran the same pass over the same inputs.
		return id < inherited && !w.compDirty[w.scc[id]] && w.cont[id] == w.prevCont[id]
	}
	var caps [3]int
	for _, lengthCap := range w.lengthCaps(&caps) {
		for id := int32(0); int(id) < len(w.states); id++ {
			if w.scc[id] < 0 || cleanHead(id) {
				continue
			}
			bad, err := w.findBadCycle(id, lengthCap)
			if err != nil {
				return false, ObsKey{}, 0, err
			}
			if bad {
				return true, ObsKey{}, 0, nil
			}
		}
	}
	if bad, err := w.huntNonSimple(cleanHead); bad || err != nil {
		if err != nil {
			return false, ObsKey{}, 0, err
		}
		return true, ObsKey{}, 0, nil
	}

	best, bestMask := w.selectNeeded()
	return false, best, bestMask, nil
}

// orderDirtyByCollision reorders w.dirtyList so states holding pending
// executions come first (more pendings first), keeping discovery order
// within each rank. A counting pass over the small pending range keeps
// the reorder allocation-free and deterministic.
func (w *searcher) orderDirtyByCollision() {
	if !w.ts.collisionOrder || len(w.dirtyList) < 2 {
		return
	}
	maxPend := 0
	for _, id := range w.dirtyList {
		if c := w.states[id].pendingCount(); c > maxPend {
			maxPend = c
		}
	}
	if maxPend == 0 {
		return // tier 0, or no pending-holding dirty state: order unchanged
	}
	w.dirtyTmp = append(w.dirtyTmp[:0], w.dirtyList...)
	w.dirtyList = w.dirtyList[:0]
	for rank := maxPend; rank >= 0; rank-- {
		for _, id := range w.dirtyTmp {
			if w.states[id].pendingCount() == rank {
				w.dirtyList = append(w.dirtyList, id)
			}
		}
	}
}

// recomputeCont replays the canonical discovery BFS of a full analyze
// over the final graph and assigns every state the stem contamination
// that BFS would have recorded: sources are visited in discovery order,
// edges in window order, and the first non-stay edge reaching a state
// fixes its stem via the same contApply/edgeMask composition edgeTo
// uses. Start states keep their fully-contaminated refresh.
func (w *searcher) recomputeCont() {
	nStates := len(w.states)
	w.visited = growU64(w.visited, nStates)
	w.visitEpoch++
	w.order = growI32(w.order, nStates)[:0]
	for id := int32(0); id < w.numStarts; id++ {
		w.cont[id] = contRefresh(0, w.states[id].occupied, w.n)
		w.visited[id] = w.visitEpoch
		w.order = append(w.order, id)
	}
	for qi := 0; qi < len(w.order); qi++ {
		id := w.order[qi]
		cm0 := w.cont[id]
		ni := &w.info[id]
		for x := int32(0); x < ni.edgeLen; x++ {
			e := &w.edges[ni.edgeOff+x]
			if e.stay || w.visited[e.to] == w.visitEpoch {
				continue
			}
			w.visited[e.to] = w.visitEpoch
			cm := cm0
			if e.movesCW|e.movesCCW != 0 {
				// The traversal masks live in the source frame; undo the
				// canonicalizing isometry to recover the pre-canonical
				// occupancy the move produced, exactly as edgeTo saw it.
				occPre := w.states[e.to].occupied
				if e.iso != isoIdentity {
					occPre = e.iso.inverse(w.n).nodeMask(occPre, w.n)
				}
				cm = contApply(cm, e.movesCW, e.movesCCW, occPre, w.n)
			}
			if e.iso != isoIdentity {
				cm = e.iso.edgeMask(cm, w.n)
			}
			w.cont[e.to] = cm
			w.order = append(w.order, e.to)
		}
	}
}

// markDirtyComps classifies each non-trivial component of the child
// graph as clean (provably equal, as a state set with identical edge
// windows, to a component the parent already hunted) or dirty. Adding
// edges only ever merges or grows SCCs, so a child component containing
// only inherited, non-re-expanded states that all carried one parent
// label L is a superset of parent component L; equal sizes then pin set
// equality. Any new, re-expanded, or parent-trivial member — including
// the back-reachable states a merge pulls in — dirties the component.
func (w *searcher) markDirtyComps(inherited int32) {
	nc := len(w.compSize)
	w.compDirty = growBool(w.compDirty, nc)
	w.compPrev = growI32(w.compPrev, nc)
	for c := 0; c < nc; c++ {
		w.compDirty[c] = false
		w.compPrev[c] = -2
	}
	for id := int32(0); int(id) < len(w.states); id++ {
		c := w.scc[id]
		if c < 0 || w.compDirty[c] {
			continue
		}
		if id >= inherited || w.dirtyMark[id] == w.dirtyEpoch {
			w.compDirty[c] = true
			continue
		}
		pl := w.prevScc[id]
		if pl < 0 {
			w.compDirty[c] = true
			continue
		}
		if w.compPrev[c] == -2 {
			w.compPrev[c] = pl
		} else if w.compPrev[c] != pl {
			w.compDirty[c] = true
		}
	}
	for c := 0; c < nc; c++ {
		if !w.compDirty[c] && w.compPrev[c] >= 0 && w.compSize[c] != w.prevCompSize[w.compPrev[c]] {
			w.compDirty[c] = true
		}
	}
}
