package feasibility

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// This file holds the machinery of the parallel table search: the
// copy-on-write decision-table chains handed to workers, the shared
// work queue of unexplored table branches, the sharded cross-branch
// observation cache, and the per-tier shared search context.

// --- copy-on-write tables ----------------------------------------------------

// tableNode is one binding of a partial decision table, represented as a
// persistent chain: a branch's table is the path from its node to the
// root. Sibling branches share their common prefix, so enqueueing a
// branch costs one small allocation instead of a map clone; workers
// materialize the chain into a scratch map once per analyze.
type tableNode struct {
	parent *tableNode // nil only for the root (empty table)
	obs    ObsKey
	d      Decision
	// snap is the parent branch's published analysis (nil for the root
	// and in NoIncremental mode): the child differs from it by exactly
	// the one (obs, d) binding above, so its worker re-expands only the
	// frontier that binding unlocks instead of rebuilding the graph.
	// See incremental.go.
	snap *branchSnap
	// openKids counts children enqueued but not yet refuted. When a
	// refuted child drops it to zero the node itself is refuted and the
	// closure propagates upward, recording subtree nogoods and
	// refutation credits along the way (prune.go). Untouched without
	// pruning.
	openKids atomic.Int32
}

// materializeInto rebuilds the chain as a lookup map (cleared first).
func (nd *tableNode) materializeInto(t Table) {
	clear(t)
	for ; nd != nil && nd.parent != nil; nd = nd.parent {
		t[nd.obs] = nd.d
	}
}

// toTable returns the chain as a fresh Table (for Result.SurvivorTable).
func (nd *tableNode) toTable() Table {
	t := make(Table)
	nd.materializeInto(t)
	return t
}

// --- work queue --------------------------------------------------------------

// workQueue is a shared LIFO of unexplored table branches. LIFO order
// makes a single worker reproduce the sequential depth-first search
// exactly; with several workers the tree is explored in parallel and
// siblings stolen from the top act as the coarsest-grained work items.
// pending counts branches pushed but not yet fully processed, so workers
// block (rather than exit) while a peer that might push children is
// still running.
//
// The queue doubles as the checkpoint quiesce point: when pauseWanted
// is set (requestPause), workers park inside pop instead of taking
// work, and the last one to park — with every node either queued or
// finished, none mid-process — runs the barrier callback over q.items,
// which at that instant is exactly the open frontier of the tier.
type workQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []*tableNode
	pending int
	stopped bool

	// workers counts pool members that have not exited pop with nil;
	// the solver sets it before launching the pool. paused counts
	// members currently parked at the pause barrier.
	workers     int
	paused      int
	pauseWanted bool
	// barrier runs under q.mu while the tier is quiesced; it receives
	// the live frontier (must not be retained) and reports whether the
	// search should continue (false aborts: the callback has already
	// recorded its error in the tierSearch).
	barrier func(frontier []*tableNode) bool
}

func newWorkQueue() *workQueue {
	q := &workQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *workQueue) push(nd *tableNode) {
	q.mu.Lock()
	q.items = append(q.items, nd)
	q.pending++
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until a branch is available, all work has drained, or the
// search was stopped; it returns nil in the latter two cases. While a
// pause is wanted, workers park here; the last to park runs the
// checkpoint barrier and releases the others.
func (q *workQueue) pop() *tableNode {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.stopped {
			q.workers--
			return nil
		}
		if q.pauseWanted {
			q.paused++
			if q.paused == q.workers {
				// Quiesced: no worker holds a node, so q.items is the
				// complete open frontier. Skip the callback when the tier
				// is about to drain anyway (empty frontier).
				if q.barrier != nil && len(q.items) > 0 {
					if !q.barrier(q.items) {
						q.stopped = true
					}
				}
				q.pauseWanted = false
				q.cond.Broadcast()
			} else {
				for q.pauseWanted && !q.stopped {
					q.cond.Wait()
				}
			}
			q.paused--
			continue
		}
		if n := len(q.items); n > 0 {
			nd := q.items[n-1]
			q.items[n-1] = nil
			q.items = q.items[:n-1]
			return nd
		}
		if q.pending == 0 {
			q.pauseWanted = false
			q.workers--
			q.cond.Broadcast()
			return nil
		}
		q.cond.Wait()
	}
}

// requestPause asks the pool to quiesce for a checkpoint at the next
// branch boundary. A no-op on a stopped or drained queue.
func (q *workQueue) requestPause() {
	q.mu.Lock()
	if !q.stopped && q.pending > 0 {
		q.pauseWanted = true
	}
	q.mu.Unlock()
	q.cond.Broadcast()
}

// drainRemaining returns the queued-but-unpopped branches in stack
// order (bottom to top). Only meaningful after the worker pool has
// exited; the caller owns nothing — the slice aliases the queue.
func (q *workQueue) drainRemaining() []*tableNode {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.items
}

// finish marks one popped branch fully processed (children, if any,
// were already pushed).
func (q *workQueue) finish() {
	q.mu.Lock()
	q.pending--
	done := q.pending == 0
	q.mu.Unlock()
	if done {
		q.cond.Broadcast()
	}
}

// stop aborts the search: pending blockers wake and drain.
func (q *workQueue) stop() {
	q.mu.Lock()
	q.stopped = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// --- sharded observation cache ----------------------------------------------

// obsSet is everything expansion needs to know about one configuration
// (occupied mask): the per-robot observations and the same-observation
// groups (size ≥ 2) eligible for simultaneous activation. It is computed
// once per mask and shared read-only across branches and workers.
type obsSet struct {
	infos []obsInfo
	// groups lists indices into infos of robots sharing one observation,
	// one slice per observation with at least two robots. Pending-ness is
	// table- and tier-independent here; expand filters per state.
	groups [][]int32
}

const obsCacheShards = 64

// obsCache memoizes obsSet per occupied mask across all table branches
// of a Solve, sharded to keep contention negligible under the worker
// pool. Duplicated computation on a racing miss is benign (the value is
// deterministic). Under the symmetry quotient every lookup arrives in
// canonical frame, so the cache holds one entry per configuration class
// — the same dihedral reduction as the interned frontier — instead of
// one per node labeling.
type obsCache struct {
	n      int
	shards [obsCacheShards]struct {
		mu sync.RWMutex
		m  map[uint64]*obsSet
	}
}

func newObsCache(n int) *obsCache {
	c := &obsCache{n: n}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]*obsSet)
	}
	return c
}

func obsShardOf(occ uint64) uint64 {
	return (occ * 0x9e3779b97f4a7c15) >> (64 - 6)
}

func (c *obsCache) get(occ uint64) *obsSet {
	sh := &c.shards[obsShardOf(occ)]
	sh.mu.RLock()
	os := sh.m[occ]
	sh.mu.RUnlock()
	if os != nil {
		return os
	}
	os = buildObsSet(occ, c.n)
	sh.mu.Lock()
	if prev := sh.m[occ]; prev != nil {
		os = prev
	} else {
		sh.m[occ] = os
	}
	sh.mu.Unlock()
	return os
}

func buildObsSet(occ uint64, n int) *obsSet {
	st := state{occupied: occ}
	cfg := st.config(n)
	os := &obsSet{infos: make([]obsInfo, 0, bits.OnesCount64(occ))}
	for u := 0; u < n; u++ {
		if !st.occupiedAt(u) {
			continue
		}
		obs, loDir, legal := obsOf(cfg, u)
		os.infos = append(os.infos, obsInfo{node: u, obs: obs, loDir: loDir, legal: legal})
	}
	for i := range os.infos {
		grouped := false
		for _, g := range os.groups {
			if os.infos[g[0]].obs == os.infos[i].obs {
				grouped = true
				break
			}
		}
		if grouped {
			continue
		}
		var g []int32
		for j := i + 1; j < len(os.infos); j++ {
			if os.infos[j].obs == os.infos[i].obs {
				g = append(g, int32(j))
			}
		}
		if g != nil {
			os.groups = append(os.groups, append([]int32{int32(i)}, g...))
		}
	}
	return os
}

// --- per-tier shared search state -------------------------------------------

// tierSearch is the state shared by all workers of one adversary tier:
// solver parameters, the cumulative expansion budget, the branch
// counter, the fail-fast stop flag, and the first survivor or error.
type tierSearch struct {
	n, k          int
	pendingLimit  int
	maxExpansions int64
	maxCycleLen   int
	// quotient interns states canonically under the ring's 2n dihedral
	// isometries (quotient.go); when set, every mask reaching the shared
	// obsCache below is already in canonical frame, so the cache holds
	// one entry per configuration class instead of one per labeling.
	quotient bool
	// incremental makes every non-root branch reuse its parent's
	// published analysis snapshot instead of re-expanding the reachable
	// graph from scratch (incremental.go). Off, the tier runs the
	// verbatim full-reanalysis oracle.
	incremental bool
	// collisionOrder re-expands dirty states in collision-likelihood
	// order (pending executions first) instead of discovery order
	// (incremental.go); the per-branch outputs are identical either
	// way, only how soon a win-by-collision branch short-circuits.
	collisionOrder bool
	// prune is the solve-wide pruning state (observation refutation
	// credits + the subtable nogood memo), shared by every worker of
	// every tier; nil under Solver.NoPrune. See prune.go.
	prune *pruneState
	// recordNogoods enables nogood recording for this tier. Only
	// non-final tiers record: a nogood can only ever be consumed by a
	// *later* tier of the ladder (within one tier the search never
	// revisits a table, and cousin subtrees assembling supersets of an
	// interior refutation measure zero across the paper cases), so
	// recording at the final tier is provably pure overhead.
	recordNogoods bool
	starts        []state
	obs           *obsCache
	queue         *workQueue

	// ckptEvery, when positive, quiesces the pool for a periodic
	// checkpoint every that many processed branches; branchHook is the
	// per-branch instrumentation / fault-injection hook. Both are wired
	// from the Solver.
	ckptEvery  int64
	branchHook func(int64)
	// done counts branches fully processed (popped, analyzed, children
	// pushed) — the checkpoint cadence counter.
	done atomic.Int64

	expansions atomic.Int64
	tables     atomic.Int64
	// statesInterned accumulates the per-branch interned-graph sizes —
	// the quotient's compression is measured by this counter. Both modes
	// count the same graphs: a branch's interned graph is identical
	// whether it was built fresh or inherited and extended.
	statesInterned atomic.Int64
	// statesReexpanded accumulates expand() calls actually performed —
	// in incremental mode only the unlocked frontier, in full mode every
	// interned state — so the reuse compression is the ratio between the
	// modes' values.
	statesReexpanded atomic.Int64
	// branchesReused counts branches analyzed incrementally from a
	// parent snapshot.
	branchesReused atomic.Int64
	// memoHits counts child branches refuted by the subtable nogood
	// memo without being enqueued; dominated counts children refuted by
	// the one-step dominance probe. Both are tree-level prunes: the
	// branches never reach TablesExplored.
	memoHits  atomic.Int64
	dominated atomic.Int64
	stop      atomic.Bool

	// snapPool recycles released branch snapshots (their array capacity)
	// across workers.
	snapPool sync.Pool

	mu       sync.Mutex
	survivor Table
	err      error
	// aborted collects branches popped but not completed when the tier
	// stopped: together with the queue's remaining items they form the
	// suspend frontier a checkpoint must capture, so a resumed drain
	// re-processes exactly the work an uninterrupted run would have.
	aborted []*tableNode
}

// fail records the first error and cancels the search.
func (ts *tierSearch) fail(err error) {
	ts.mu.Lock()
	if ts.err == nil {
		ts.err = err
	}
	ts.mu.Unlock()
	ts.stop.Store(true)
	ts.queue.stop()
}

// failQuiesced records an error from inside the checkpoint barrier,
// which already holds the queue lock: it must not call queue.stop (the
// barrier's caller marks the queue stopped itself).
func (ts *tierSearch) failQuiesced(err error) {
	ts.mu.Lock()
	if ts.err == nil {
		ts.err = err
	}
	ts.mu.Unlock()
	ts.stop.Store(true)
}

// abandon returns a popped-but-unfinished branch to the suspend
// frontier. The caller has already released the node's snapshot (if
// any) and uncounted it from tables when it was counted.
func (ts *tierSearch) abandon(nd *tableNode) {
	ts.mu.Lock()
	ts.aborted = append(ts.aborted, nd)
	ts.mu.Unlock()
}

// abandonedNodes returns the branches abandoned mid-process, in abandon
// order. Only meaningful after the worker pool has exited.
func (ts *tierSearch) abandonedNodes() []*tableNode {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.aborted
}

// foundSurvivor records a surviving table and cancels the search: one
// table the adversary cannot beat refutes impossibility at this tier.
func (ts *tierSearch) foundSurvivor(t Table) {
	ts.mu.Lock()
	if ts.survivor == nil {
		ts.survivor = t
	}
	ts.mu.Unlock()
	ts.stop.Store(true)
	ts.queue.stop()
}
