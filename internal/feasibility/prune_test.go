package feasibility

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"ringrobots/internal/config"
)

// solvePruneMode runs a fresh single-worker solver with the pruning
// layer on or off (and optional extra tuning).
func solvePruneMode(t *testing.T, n, k int, noPrune bool, tune func(*Solver)) Result {
	t.Helper()
	s := NewSolver(n, k)
	s.Workers = 1
	s.NoPrune = noPrune
	if tune != nil {
		tune(s)
	}
	res, err := s.Solve()
	if err != nil {
		t.Fatalf("(k=%d,n=%d) noPrune=%v: %v", k, n, noPrune, err)
	}
	return res
}

// checkPruneAgrees enforces the differential contract between the
// pruned search and the NoPrune oracle: identical verdicts and tiers,
// matching survivor existence, and every reported survivor valid under
// re-analysis in *both* modes. The explored tree differs by design —
// pruning exists to shrink it — so TablesExplored is not compared; the
// prune mode additionally must report no pruning work when disabled.
func checkPruneAgrees(t *testing.T, n, k int, tune func(*Solver)) (pruned, oracle Result) {
	t.Helper()
	pruned = solvePruneMode(t, n, k, false, tune)
	oracle = solvePruneMode(t, n, k, true, tune)
	if pruned.Impossible != oracle.Impossible {
		t.Errorf("(k=%d,n=%d): verdict differs: pruned %v, NoPrune %v", k, n, pruned.Impossible, oracle.Impossible)
	}
	if pruned.Tier != oracle.Tier {
		t.Errorf("(k=%d,n=%d): tier differs: pruned %d, NoPrune %d", k, n, pruned.Tier, oracle.Tier)
	}
	if (pruned.SurvivorTable == nil) != (oracle.SurvivorTable == nil) {
		t.Errorf("(k=%d,n=%d): survivor existence differs between modes", k, n)
	}
	if oracle.TablesMemoHit != 0 || oracle.BranchesDominated != 0 {
		t.Errorf("(k=%d,n=%d): NoPrune mode reports pruning work (%d memo hits, %d dominated)",
			k, n, oracle.TablesMemoHit, oracle.BranchesDominated)
	}
	for _, res := range []Result{pruned, oracle} {
		if res.SurvivorTable == nil {
			continue
		}
		for _, np := range []bool{false, true} {
			mk := NewSolver(n, k)
			if tune != nil {
				tune(mk)
			}
			mk.NoPrune = np
			if !survivorHoldsMode(mk, res.Tier, res.SurvivorTable) {
				t.Errorf("(k=%d,n=%d): survivor table fails re-analysis with noPrune=%v", k, n, np)
			}
		}
	}
	return pruned, oracle
}

// TestPruneMatchesNoPruneSmall runs the differential contract on every
// small paper-adjacent case, covering impossibility and
// bounded-adversary-survivor outcomes at both tiers.
func TestPruneMatchesNoPruneSmall(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{3, 1}, {4, 1}, {5, 1}, {3, 2}, {4, 2}, {5, 2}, {6, 2},
		{5, 3}, {6, 3}, {7, 3}, {5, 4}, {6, 4}, {6, 5}, {7, 4},
		{7, 5}, {7, 6}, {8, 4}, {8, 5}, {9, 6},
	} {
		checkPruneAgrees(t, tc.n, tc.k, nil)
	}
}

// TestPruneMatchesNoPruneRandomized fuzzes the contract over random
// (k, n) instances with randomized adversary strength and all quotient/
// incremental mode combinations, so pruning is exercised on quotiented
// and verbatim graphs, fresh and snapshot-reusing branches, crippled
// adversaries and odd tier ladders alike.
func TestPruneMatchesNoPruneRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		n := 3 + rng.Intn(6) // 3..8
		k := 1 + rng.Intn(n-1)
		cycleLen := []int{2, 6, 12, 24}[rng.Intn(4)]
		tiers := [][]int{{0}, {0, 1}, {0, 2}}[rng.Intn(3)]
		noQuotient := rng.Intn(2) == 1
		noIncremental := rng.Intn(2) == 1
		checkPruneAgrees(t, n, k, func(s *Solver) {
			s.MaxCycleLen = cycleLen
			s.PendingTiers = tiers
			s.NoQuotient = noQuotient
			s.NoIncremental = noIncremental
		})
	}
}

// TestPruneMatchesNoPruneTheorem5 is the acceptance check of the
// pruning layer: the differential contract on all six Theorem 5
// figures, the (5,8) tree-size target (≤ 250 explored tables in
// quotient mode, from 552 unpruned), and a sanity floor on the (4,9)
// collapse (the refutation-guided order takes it from ≈ 146 k unpruned
// tables to under a few hundred).
func TestPruneMatchesNoPruneTheorem5(t *testing.T) {
	if testing.Short() {
		t.Skip("deep differential game searches skipped in -short mode")
	}
	for _, f := range PaperFigures() {
		t0 := time.Now()
		pruned, oracle := checkPruneAgrees(t, f.N, f.K, nil)
		t.Logf("Figure %d (k=%d,n=%d): impossible=%v tier=%d; tables pruned=%d unpruned=%d (%.1fx), memoHits=%d dominated=%d, in %v",
			f.Figure, f.K, f.N, pruned.Impossible, pruned.Tier,
			pruned.TablesExplored, oracle.TablesExplored,
			float64(oracle.TablesExplored)/float64(pruned.TablesExplored),
			pruned.TablesMemoHit, pruned.BranchesDominated,
			time.Since(t0).Round(time.Millisecond))
		switch {
		case f.K == 5 && f.N == 8:
			if pruned.TablesExplored > 250 {
				t.Errorf("(5,8): pruned search explored %d tables, acceptance ceiling is 250", pruned.TablesExplored)
			}
			if pruned.BranchesDominated == 0 {
				t.Errorf("(5,8): dominance probe never fired")
			}
		case f.K == 4 && f.N == 9:
			if pruned.TablesExplored > 1000 {
				t.Errorf("(4,9): pruned search explored %d tables, expected the ordering to collapse it below 1000", pruned.TablesExplored)
			}
		}
	}
}

// TestPruneWallClock58 pins the (5,8) wall-clock direction: the pruned
// solve must be at least 1.25× faster than the NoPrune oracle. The
// steady-state benchmarks measure ≈ 2× (the acceptance evidence lives
// in the committed BENCH_*.json rows); the deliberately loose bound
// here only guards against the pruning layer regressing into a net
// loss, with margin for throttled or contended runners. Single 1 ms
// solves swing wildly, so whole batches are timed and the best of
// three rounds compared — cold-start and interference noise only ever
// slows a batch down, and the ratio cancels machine speed.
func TestPruneWallClock58(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison skipped in -short mode")
	}
	batch := func(noPrune bool) time.Duration {
		best := time.Duration(1<<63 - 1)
		for round := 0; round < 3; round++ {
			t0 := time.Now()
			for i := 0; i < 30; i++ {
				s := NewSolver(8, 5)
				s.Workers = 1
				s.NoPrune = noPrune
				if _, err := s.Solve(); err != nil {
					t.Fatal(err)
				}
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	pruned, unpruned := batch(false), batch(true)
	t.Logf("(5,8) best 30-solve batch: pruned=%v unpruned=%v (%.2fx)", pruned, unpruned, float64(unpruned)/float64(pruned))
	if pruned*5 > unpruned*4 {
		t.Errorf("(5,8): pruned solve %v not ≥1.25x faster than unpruned %v", pruned, unpruned)
	}
}

// TestPruneDeterministicAcrossWorkers checks that the shared pruning
// state — refutation credits and the nogood memo mutate concurrently
// under the worker pool — never makes the *verdict* schedule-dependent:
// verdicts, tiers and survivor existence are identical for every worker
// count, reported survivors hold under re-analysis, and the
// single-worker search stays bit-reproducible including the new
// counters. (The tree shape and counter values under a parallel search
// are schedule-dependent, exactly like TablesExplored always was.)
func TestPruneDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct{ n, k int }{
		{5, 1}, {6, 2}, {7, 3}, {5, 4}, {6, 4}, {7, 4}, {8, 4}, {8, 5}, {9, 6},
	}
	if !testing.Short() {
		cases = append(cases, struct{ n, k int }{9, 4}, struct{ n, k int }{9, 5})
	}
	parallel := 4
	if p := runtime.GOMAXPROCS(0); p > parallel {
		parallel = p
	}
	for _, tc := range cases {
		seq := solveWorkers(t, tc.n, tc.k, 1)
		seq2 := solveWorkers(t, tc.n, tc.k, 1)
		par := solveWorkers(t, tc.n, tc.k, parallel)
		if seq.Impossible != seq2.Impossible || seq.Tier != seq2.Tier ||
			seq.TablesExplored != seq2.TablesExplored ||
			seq.TablesMemoHit != seq2.TablesMemoHit ||
			seq.BranchesDominated != seq2.BranchesDominated {
			t.Errorf("(k=%d,n=%d): sequential pruned runs disagree: %+v vs %+v", tc.k, tc.n, seq, seq2)
		}
		if par.Impossible != seq.Impossible || par.Tier != seq.Tier {
			t.Errorf("(k=%d,n=%d): verdict/tier differs across worker counts under shared pruning state",
				tc.k, tc.n)
		}
		if (seq.SurvivorTable == nil) != (par.SurvivorTable == nil) {
			t.Errorf("(k=%d,n=%d): survivor existence differs across worker counts", tc.k, tc.n)
		}
		for _, res := range []Result{seq, par} {
			if res.SurvivorTable != nil && !survivorHolds(NewSolver(tc.n, tc.k), res.Tier, res.SurvivorTable) {
				t.Errorf("(k=%d,n=%d): reported survivor table does not survive re-analysis", tc.k, tc.n)
			}
		}
	}
}

// --- nogood store -------------------------------------------------------------

func ngKey(lo, hi config.View) ObsKey { return ObsKey{Lo: config.KeyOf(lo), Hi: config.KeyOf(hi)} }

// ngHit wraps nogoodHit with the per-branch precomputation the searcher
// performs.
func ngHit(pr *pruneState, limit int, t Table, xo ObsKey, xd Decision) bool {
	sig, hashes := tableSigAndAnchors(t, nil)
	return pr.nogoodHit(limit, t, sig, hashes, xo, xd)
}

// TestNogoodStoreSubsetSemantics pins the memo's contract directly:
// a lookup hits exactly when the candidate table (plus its new binding)
// contains a recorded nogood whose pending limit is not above the
// query's.
func TestNogoodStoreSubsetSemantics(t *testing.T) {
	pr := newPruneState()
	o := func(i int) ObsKey {
		return ngKey(config.View{0, i, 1}, config.View{1, i, 0})
	}
	mk := func(pairs ...int) []pruneEntry {
		var es []pruneEntry
		for i := 0; i+1 < len(pairs); i += 2 {
			e := pruneEntry{obs: o(pairs[i]), d: Decision(pairs[i+1])}
			j := len(es)
			es = append(es, e)
			for j > 0 && e.obs.Less(es[j-1].obs) {
				es[j] = es[j-1]
				j--
			}
			es[j] = e
		}
		return es
	}
	// Nogood {o1:stay, o3:lo} refuted at limit 0.
	pr.recordNogood(0, mk(1, int(DStay), 3, int(DTowardLo)))

	tab := Table{o(1): DStay}
	// Adding o3:lo completes the superset: hit at limit 0 and above.
	if !ngHit(pr, 0, tab, o(3), DTowardLo) {
		t.Error("superset with matching binding missed")
	}
	if !ngHit(pr, 2, tab, o(3), DTowardLo) {
		t.Error("nogood from a lower limit must prune at a higher one")
	}
	// Wrong decision on the new binding: no hit.
	if ngHit(pr, 0, tab, o(3), DTowardHi) {
		t.Error("hit despite mismatched decision on the new binding")
	}
	// Missing entry: no hit.
	empty := Table{}
	if ngHit(pr, 0, empty, o(3), DTowardLo) {
		t.Error("hit despite missing o1 entry")
	}
	// Entry with conflicting decision: no hit.
	conflict := Table{o(1): DTowardLo}
	if ngHit(pr, 0, conflict, o(3), DTowardLo) {
		t.Error("hit despite conflicting o1 decision")
	}
	// Superset through extra entries still hits.
	big := Table{o(1): DStay, o(2): DEither, o(5): DStay}
	if !ngHit(pr, 0, big, o(3), DTowardLo) {
		t.Error("superset with extra entries missed")
	}
	// A nogood recorded at a higher limit must not prune a lower one
	// (a stronger adversary's win proves nothing about a weaker one).
	pr.recordNogood(2, mk(2, int(DStay), 4, int(DEither)))
	tab2 := Table{o(2): DStay}
	if ngHit(pr, 0, tab2, o(4), DEither) {
		t.Error("limit-2 nogood pruned a limit-0 query")
	}
	if !ngHit(pr, 2, tab2, o(4), DEither) {
		t.Error("limit-2 nogood missed at its own limit")
	}
}

// TestNogoodStoreBounds exercises the chain cap and the epoch-style
// shard clear: overflowing records are dropped (never wrongly matched),
// and the store keeps answering correctly after saturation.
func TestNogoodStoreBounds(t *testing.T) {
	pr := newPruneState()
	anchor := ngKey(config.View{0, 9, 1}, config.View{1, 9, 0})
	vary := func(i int) ObsKey {
		return ngKey(config.View{0, i, 2}, config.View{2, i, 0})
	}
	// All these nogoods share the anchor (the maximal entry is sorted
	// last deterministically only per-content, so build them as
	// {vary(i), anchor} sorted).
	recorded := 0
	for i := 0; i < 4*nogoodChainCap; i++ {
		a := pruneEntry{obs: vary(i), d: DStay}
		b := pruneEntry{obs: anchor, d: DTowardLo}
		es := []pruneEntry{a, b}
		if b.obs.Less(a.obs) {
			es = []pruneEntry{b, a}
		}
		pr.recordNogood(0, es)
		recorded++
	}
	hits := 0
	for i := 0; i < 4*nogoodChainCap; i++ {
		tab := Table{vary(i): DStay}
		if ngHit(pr, 0, tab, anchor, DTowardLo) {
			hits++
		}
	}
	if hits == 0 {
		t.Error("saturated chain answers nothing")
	}
	if hits > recorded {
		t.Errorf("more hits (%d) than recorded nogoods (%d)", hits, recorded)
	}
	// Wrong-decision queries never hit regardless of saturation.
	for i := 0; i < 4*nogoodChainCap; i++ {
		tab := Table{vary(i): DStay}
		if ngHit(pr, 0, tab, anchor, DTowardHi) {
			t.Fatal("saturated chain produced a false positive")
		}
	}
}
