package feasibility

import (
	"errors"
	"testing"

	"ringrobots/internal/config"
)

func TestTransitionGraphCountsMatchFigures(t *testing.T) {
	for _, f := range PaperFigures() {
		g, err := NewTransitionGraph(f.N, f.K)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Classes) != f.Classes {
			t.Errorf("Figure %d (k=%d,n=%d): %d classes, paper shows %d",
				f.Figure, f.K, f.N, len(g.Classes), f.Classes)
		}
		// Every class must have at least one outgoing arc unless the ring
		// is full (a robot adjacent to a hole can always move into it).
		for i, arcs := range g.Arcs {
			if f.K < f.N && len(arcs) == 0 {
				t.Errorf("Figure %d: class %d has no successors", f.Figure, i+1)
			}
		}
		if g.String() == "" || g.DOT() == "" {
			t.Error("empty rendering")
		}
	}
}

func TestTransitionGraphFig4Structure(t *testing.T) {
	// Figure 4 (k=4, n=7): four classes; the unique rigid one (A1) can
	// reach the three symmetric ones (A2, A3, A4) and itself.
	g, err := NewTransitionGraph(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	rigidIdx := -1
	for i, c := range g.Classes {
		if c.IsRigid() {
			if rigidIdx >= 0 {
				t.Fatal("two rigid classes for (4,7)")
			}
			rigidIdx = i
		}
	}
	if rigidIdx < 0 {
		t.Fatal("no rigid class for (4,7); Figure 4 has A1")
	}
	// A1's moves reach every class (the paper: moving b, c, or a toward c
	// leads to A4, A3, A2; moving a toward b stays in A1).
	if got := len(g.Arcs[rigidIdx]); got != 4 {
		t.Errorf("rigid class reaches %d classes, want all 4", got)
	}
}

func TestTransitionsAreMutual(t *testing.T) {
	// Single-robot moves are reversible, so reachability between classes
	// is symmetric.
	g, err := NewTransitionGraph(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	has := func(list []int, x int) bool {
		for _, v := range list {
			if v == x {
				return true
			}
		}
		return false
	}
	for i, arcs := range g.Arcs {
		for _, j := range arcs {
			if !has(g.Arcs[j], i) {
				t.Errorf("arc C%d->C%d has no reverse", i+1, j+1)
			}
		}
	}
}

// legalAt computes the observation and legal-decision list of the robot
// at node u in configuration c — the solver's own pipeline, exercised
// end to end.
func legalAt(t *testing.T, c config.Config, u int) (ObsKey, []Decision) {
	t.Helper()
	obs, _, mask := obsOf(c, u)
	return obs, decisionsFromMask(mask)
}

func TestLegalDecisions(t *testing.T) {
	// Node 0 of {0,3,5} on n=8 sees (2,0,0,2) both ways — symmetric with
	// a positive first interval: stay or either.
	sym := config.MustNew(8, 0, 3, 5)
	obs, ds := legalAt(t, sym, 0)
	if obs.Lo != obs.Hi {
		t.Errorf("expected symmetric observation, got %v", obs)
	}
	if len(ds) != 2 || ds[0] != DStay || ds[1] != DEither {
		t.Errorf("symmetric obs decisions = %v", ds)
	}
	// Middle node of a 3-run: both neighbors occupied, (0,…) both ways —
	// stay only.
	blocked := config.MustNew(7, 0, 1, 2)
	if _, ds := legalAt(t, blocked, 1); len(ds) != 1 || ds[0] != DStay {
		t.Errorf("blocked symmetric obs decisions = %v", ds)
	}
	// Asymmetric with both sides open: all three of stay/toward-lo/toward-hi.
	open := config.MustNew(9, 0, 2, 5)
	if _, ds := legalAt(t, open, 0); len(ds) != 3 {
		t.Errorf("open asymmetric obs decisions = %v", ds)
	}
	// Asymmetric with one side blocked: stay or the open direction only.
	half := config.MustNew(9, 0, 1, 3)
	if _, ds := legalAt(t, half, 1); len(ds) != 2 || ds[0] != DStay {
		t.Errorf("half-blocked obs decisions = %v", ds)
	}
}

func TestSolverRejectsBadParams(t *testing.T) {
	if _, err := NewSolver(2, 1).Solve(); err == nil {
		t.Error("accepted n=2")
	}
	if _, err := NewSolver(8, 8).Solve(); err == nil {
		t.Error("accepted k=n")
	}
	if _, err := NewSolver(33, 3).Solve(); err == nil {
		t.Error("accepted n>32")
	}
}

func TestWideRingImpossibility(t *testing.T) {
	// Rings beyond the former n ≤ 16 packed-state limit solve end to end
	// with the 192-bit state. Theorems 2 and 3 (k ≤ 3) hold for any n.
	for _, tc := range []struct{ n, k int }{{18, 1}, {20, 2}, {24, 2}, {18, 3}, {32, 2}} {
		res, err := NewSolver(tc.n, tc.k).Solve()
		if err != nil {
			t.Fatalf("(k=%d,n=%d): %v", tc.k, tc.n, err)
		}
		if !res.Impossible {
			t.Errorf("(k=%d,n=%d): survivor table found; paper proves impossibility for k <= 3",
				tc.k, tc.n)
		}
	}
}

func TestImpossibilityTinyCases(t *testing.T) {
	// k=1 and k=2 on small rings: Theorem 2.
	for _, tc := range []struct{ n, k int }{{3, 1}, {4, 1}, {5, 1}, {3, 2}, {4, 2}, {5, 2}, {6, 2}} {
		s := NewSolver(tc.n, tc.k)
		res, err := s.Solve()
		if err != nil {
			t.Fatalf("(k=%d,n=%d): %v", tc.k, tc.n, err)
		}
		if !res.Impossible {
			t.Errorf("(k=%d,n=%d): solver found survivor table %v; paper proves impossibility",
				tc.k, tc.n, res.SurvivorTable)
		}
	}
}

func TestImpossibilityThreeRobots(t *testing.T) {
	// Theorem 3: three robots, n > 3.
	for _, n := range []int{5, 6, 7} {
		res, err := NewSolver(n, 3).Solve()
		if err != nil {
			if errors.Is(err, ErrBudget) {
				t.Skipf("n=%d k=3: budget exhausted (recorded in EXPERIMENTS.md)", n)
			}
			t.Fatal(err)
		}
		if !res.Impossible {
			t.Errorf("(k=3,n=%d): survivor table found; Theorem 3 proves impossibility", n)
		}
	}
}

func TestImpossibilityNminusOneNminusTwo(t *testing.T) {
	// Lemma 6 (k=n−1) and Theorem 4 (k=n−2) at small n.
	for _, tc := range []struct{ n, k int }{{5, 4}, {6, 5}, {7, 6}, {5, 3}, {6, 4}, {7, 5}} {
		res, err := NewSolver(tc.n, tc.k).Solve()
		if err != nil {
			if errors.Is(err, ErrBudget) {
				t.Skipf("(k=%d,n=%d): budget exhausted", tc.k, tc.n)
			}
			t.Fatal(err)
		}
		if !res.Impossible {
			t.Errorf("(k=%d,n=%d): survivor table found; paper proves impossibility", tc.k, tc.n)
		}
	}
}

func TestTheorem5Figures(t *testing.T) {
	// The six exhaustive cases of Theorem 5 (Figures 4–9). All run to
	// completion under the default budget; five confirm impossibility.
	// The exception is (5,9): the bounded adversary (pending ≤ 2,
	// starvation loops ≤ MaxCycleLen, pruned loop search) exhausts its
	// table tree but one table survives it. A survivor under a
	// *restricted* adversary is not a solvability proof and does not
	// contradict Theorem 5 — (5,9) is exactly the case whose paper proof
	// needs the most intricate asynchronous scheduling.
	if testing.Short() {
		t.Skip("exhaustive game search skipped in -short mode")
	}
	for _, f := range PaperFigures() {
		res, err := NewSolver(f.N, f.K).Solve()
		if err != nil {
			if errors.Is(err, ErrBudget) {
				t.Logf("Figure %d (k=%d,n=%d): budget exhausted after %d tables (inconclusive)",
					f.Figure, f.K, f.N, res.TablesExplored)
				continue
			}
			t.Fatal(err)
		}
		if !res.Impossible {
			if f.K == 5 && f.N == 9 {
				t.Logf("Figure 9 (k=5,n=9): one table survived the bounded adversary over %d branches "+
					"(known limitation; a stronger adversary model is needed to close this case)",
					res.TablesExplored)
				continue
			}
			t.Errorf("Figure %d (k=%d,n=%d): survivor table %v; Theorem 5 proves impossibility",
				f.Figure, f.K, f.N, res.SurvivorTable)
		} else {
			t.Logf("Figure %d (k=%d,n=%d): impossibility confirmed over %d table branches",
				f.Figure, f.K, f.N, res.TablesExplored)
		}
	}
}

func TestDecisionStrings(t *testing.T) {
	for d, want := range map[Decision]string{
		DStay: "stay", DTowardLo: "toward-lo", DTowardHi: "toward-hi", DEither: "either",
	} {
		if d.String() != want {
			t.Errorf("%d.String() = %q", int(d), d.String())
		}
	}
}

func TestObsKeyDistinguishesViews(t *testing.T) {
	// Two different configurations must never share an observation key,
	// and the Lo/Hi components must decode back to the actual views.
	c := config.MustNew(8, 0, 2, 3, 6)
	obs, loDir, _ := obsOf(c, 0)
	lo := c.ViewFrom(0, loDir)
	hi := c.ViewFrom(0, loDir.Opposite())
	if !obs.Lo.View().Equal(lo) || !obs.Hi.View().Equal(hi) {
		t.Errorf("obs %v does not decode to views %v / %v", obs, lo, hi)
	}
	other, _, _ := obsOf(config.MustNew(8, 0, 2, 4, 6), 0)
	if obs == other {
		t.Error("distinct observations share a key")
	}
}
