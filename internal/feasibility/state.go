package feasibility

import (
	"math/bits"

	"ringrobots/internal/config"
	"ringrobots/internal/ring"
)

// maxRingSize is the widest ring the solver supports: n ≤ 32 keeps every
// single-word bitmask — occupancy, activation sets, per-edge
// contamination, and their rotations — inside a uint64. The binding
// constraints are those masks, not the pending register (see state).
const maxRingSize = 32

// state is a game position: which nodes are occupied and which of them
// hold robots with a computed-but-unexecuted move. It is a plain
// comparable 192-bit value, used directly as the interning key of the
// state graph.
type state struct {
	occupied uint64 // bitmask over nodes
	// pending holds 2 bits per node (0 none, 1 cw, 2 ccw), node u at bits
	// [2(u mod 32), 2(u mod 32)+2) of word u/32. Only word 0 is populated
	// at the current maxRingSize of 32; the second word is headroom for
	// an n ≤ 64 solver once the occupancy/contamination masks and their
	// rotation helpers grow past single words.
	pending [2]uint64
}

func (s state) occupiedAt(u int) bool { return s.occupied&(1<<uint(u)) != 0 }

func (s state) pendingAt(u int) (ring.Direction, bool) {
	switch (s.pending[u>>5] >> (2 * (uint(u) & 31))) & 3 {
	case 1:
		return ring.CW, true
	case 2:
		return ring.CCW, true
	}
	return 0, false
}

// anyPending reports whether any robot holds a computed-but-unexecuted move.
func (s state) anyPending() bool { return s.pending[0]|s.pending[1] != 0 }

// pendingCount counts robots holding a computed-but-unexecuted move —
// the collision-likelihood key for dirty-state re-expansion ordering
// (incremental.go): every pending execution is a move the adversary can
// fire into a changed occupancy.
func (s state) pendingCount() int {
	const odd = 0x5555555555555555
	return bits.OnesCount64((s.pending[0]|s.pending[0]>>1)&odd) +
		bits.OnesCount64((s.pending[1]|s.pending[1]>>1)&odd)
}

func (s state) withPending(u int, d ring.Direction) state {
	bits := uint64(1)
	if d == ring.CCW {
		bits = 2
	}
	s.pending[u>>5] |= bits << (2 * (uint(u) & 31))
	return s
}

func (s state) clearPending(u int) state {
	s.pending[u>>5] &^= 3 << (2 * (uint(u) & 31))
	return s
}

// hashState mixes the 192-bit packed state into a 64-bit hash for the
// open-addressing intern table. A splitmix-style finalizer over the
// three words: cheap, and strong enough that linear probing stays short
// at the table's 3/4 load cap.
func hashState(s state) uint64 {
	h := s.occupied
	h = (h ^ s.pending[0]*0xbf58476d1ce4e5b9) * 0x9e3779b97f4a7c15
	h = (h ^ s.pending[1]*0x94d049bb133111eb) * 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 29
	return h
}

// config materializes the occupied set as a configuration value.
func (s state) config(n int) config.Config {
	nodes := make([]int, 0, 8)
	for u := 0; u < n; u++ {
		if s.occupiedAt(u) {
			nodes = append(nodes, u)
		}
	}
	return config.MustNew(n, nodes...)
}

// --- contamination on edge bitmasks -----------------------------------------
//
// The mixed-search rules of §4.1, evaluated on bitmasks instead of
// per-edge boolean slices: the ring's n edges (edge e joins nodes e and
// e+1 mod n) fit one word for n ≤ 32, so the clear/contaminated fixpoint
// becomes a handful of rotate-and-mask steps per move batch. Semantics
// are identical to package search's Contamination; the boolean-slice
// oracle is retained in the tests and differentially checked.

// rotL1 rotates an n-bit mask up by one: bit u of the result is bit u−1
// (mod n) of m. m must have no bits at or above position n.
func rotL1(m uint64, n int) uint64 {
	return (m<<1 | m>>(uint(n)-1)) & (uint64(1)<<uint(n) - 1)
}

// rotR1 rotates an n-bit mask down by one: bit u of the result is bit
// u+1 (mod n) of m.
func rotR1(m uint64, n int) uint64 {
	return (m>>1 | m<<(uint(n)-1)) & (uint64(1)<<uint(n) - 1)
}

// contRefresh returns the stable clear-edge mask reached from the given
// clear set under occupancy occ: an edge between two occupied nodes is
// always clear, and contamination spreads from a contaminated edge
// through an unoccupied shared endpoint to the adjacent edge, iterated
// to fixpoint.
func contRefresh(clear, occ uint64, n int) uint64 {
	full := uint64(1)<<uint(n) - 1
	// Both endpoints occupied: edge e joins nodes e and e+1.
	clear |= occ & rotR1(occ, n)
	dirty := full &^ clear
	for {
		// Unoccupied endpoints of contaminated edges…
		nodes := (dirty | rotL1(dirty, n)) &^ occ
		// …recontaminate both of their incident edges (node u touches
		// edges u−1 and u).
		next := dirty | nodes | rotR1(nodes, n)
		if next == dirty {
			return full &^ dirty
		}
		dirty = next
	}
}

// contApply records a batch of simultaneous traversals (as origin masks
// per direction) against the post-move occupancy and returns the
// refreshed clear mask. A robot leaving node u clockwise traverses edge
// u; counterclockwise, edge u−1.
func contApply(clear, movesCW, movesCCW, occAfter uint64, n int) uint64 {
	clear |= movesCW | rotR1(movesCCW, n)
	return contRefresh(clear, occAfter, n)
}
