package feasibility

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"ringrobots/internal/journal"
)

// The fault-injection suite: a journaled drain runs in a subprocess
// that SIGKILLs itself after a randomized number of processed branches;
// the parent respawns it against the same journal until a verdict
// lands, then checks the crash-riddled drain reached exactly the
// uninterrupted outcome — verdict, tier, survivor validity, and (single
// worker) bit-identical TablesExplored. This is the real-crash
// counterpart of TestPeriodicCheckpointResume, exercising the whole
// stack: periodic checkpoints, fsync'd journal appends, torn-tail
// recovery on reopen, checkpoint decode, and Resume.

const faultHelperEnv = "RINGROBOTS_FAULT_HELPER"

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fault helper: bad %s=%q: %v\n", name, v, err)
			os.Exit(2)
		}
		return n
	}
	return def
}

// TestFaultHelperProcess is not a test: it is the subprocess body of
// the fault suite, entered only when the parent re-executes the test
// binary with faultHelperEnv set. It runs (or resumes) one journaled
// drain leg, killing itself mid-search when asked to, and exits the
// process directly.
func TestFaultHelperProcess(t *testing.T) {
	if os.Getenv(faultHelperEnv) != "1" {
		t.Skip("not a fault-helper invocation")
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "fault helper: "+format+"\n", args...)
		os.Exit(2)
	}
	log, err := journal.Open(os.Getenv("RINGROBOTS_FAULT_JOURNAL"), journal.SyncAlways)
	if err != nil {
		fail("open journal: %v", err)
	}
	s := NewSolver(envInt("RINGROBOTS_FAULT_RING", 7), envInt("RINGROBOTS_FAULT_ROBOTS", 3))
	s.Workers = 1
	if c := envInt("RINGROBOTS_FAULT_CYCLECAP", 0); c > 0 {
		s.MaxCycleLen = c
	}
	if tiers := os.Getenv("RINGROBOTS_FAULT_TIERS"); tiers != "" {
		s.PendingTiers = nil
		for _, part := range strings.Split(tiers, ",") {
			v, err := strconv.Atoi(part)
			if err != nil {
				fail("bad tiers %q", tiers)
			}
			s.PendingTiers = append(s.PendingTiers, v)
		}
	}
	s.CheckpointEvery = envInt("RINGROBOTS_FAULT_EVERY", 2)
	s.OnCheckpoint = func(cp *Checkpoint) error {
		raw, err := cp.MarshalBinary()
		if err != nil {
			return err
		}
		return log.Append(append([]byte{'C'}, raw...))
	}
	if crashAfter := int64(envInt("RINGROBOTS_FAULT_CRASH_AFTER", 0)); crashAfter > 0 {
		s.BranchHook = func(done int64) {
			if done >= crashAfter {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}

	var resume *Checkpoint
	if last, ok := log.Last(); ok {
		if len(last) == 0 {
			fail("empty journal record")
		}
		if last[0] == 'V' {
			os.Exit(0) // a previous leg already finished the drain
		}
		ck, err := UnmarshalCheckpoint(last[1:])
		if err != nil {
			fail("decode checkpoint: %v", err)
		}
		resume = ck
	}
	var res Result
	if resume != nil {
		res, _, err = s.Resume(context.Background(), resume)
	} else {
		res, _, err = s.SolveContext(context.Background())
	}
	if err != nil {
		fail("solve: %v", err)
	}
	v := []byte{'V', 0}
	if res.Impossible {
		v[1] |= 1
	}
	if res.SurvivorTable != nil {
		v[1] |= 2
	}
	v = binary.AppendUvarint(v, uint64(res.Tier))
	v = binary.AppendUvarint(v, uint64(res.TablesExplored))
	if res.SurvivorTable != nil {
		entries := tableEntries(res.SurvivorTable)
		v = binary.AppendUvarint(v, uint64(len(entries)))
		for _, e := range entries {
			v = appendEntry(v, e)
		}
	}
	if err := log.Append(v); err != nil {
		fail("journal verdict: %v", err)
	}
	if err := log.Close(); err != nil {
		fail("close journal: %v", err)
	}
	os.Exit(0)
}

// TestCrashResumeEquivalence drives the subprocess fault helper with
// kill -9 at randomized branch counts until the journaled drain reaches
// a verdict, then compares it to the uninterrupted in-process run.
func TestCrashResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess fault suite skipped under -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	cases := []struct {
		name     string
		n, k     int
		cycleCap int
		tiers    string
	}{
		// An impossibility verdict on the deepest cheap tree...
		{"impossible", 7, 3, 0, ""},
		// ...and a survivor verdict (crippled adversary, per
		// TestSurvivorIndependentOfSchedule) so the prior-survivor and
		// survivor-serialization paths cross a real crash too.
		{"survivor", 7, 4, 1, "0"},
	}
	rng := rand.New(rand.NewSource(7))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mk := func() *Solver {
				s := NewSolver(tc.n, tc.k)
				s.Workers = 1
				if tc.cycleCap > 0 {
					s.MaxCycleLen = tc.cycleCap
				}
				if tc.tiers != "" {
					s.PendingTiers = nil
					for _, part := range strings.Split(tc.tiers, ",") {
						v, _ := strconv.Atoi(part)
						s.PendingTiers = append(s.PendingTiers, v)
					}
				}
				return s
			}
			straight, err := mk().Solve()
			if err != nil {
				t.Fatalf("uninterrupted solve: %v", err)
			}
			jp := filepath.Join(t.TempDir(), "drain.journal")
			kills := 0
			for spawns := 0; ; spawns++ {
				if spawns > 300 {
					t.Fatalf("drain did not converge after %d spawns", spawns)
				}
				crashAfter := 3 + rng.Intn(7)
				cmd := exec.Command(exe, "-test.run", "^TestFaultHelperProcess$", "-test.v")
				cmd.Env = append(os.Environ(),
					faultHelperEnv+"=1",
					"RINGROBOTS_FAULT_JOURNAL="+jp,
					"RINGROBOTS_FAULT_RING="+strconv.Itoa(tc.n),
					"RINGROBOTS_FAULT_ROBOTS="+strconv.Itoa(tc.k),
					"RINGROBOTS_FAULT_CYCLECAP="+strconv.Itoa(tc.cycleCap),
					"RINGROBOTS_FAULT_TIERS="+tc.tiers,
					"RINGROBOTS_FAULT_EVERY=2",
					"RINGROBOTS_FAULT_CRASH_AFTER="+strconv.Itoa(crashAfter),
				)
				out, err := cmd.CombinedOutput()
				if err == nil {
					break
				}
				var ee *exec.ExitError
				if errors.As(err, &ee) {
					if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL {
						kills++
						continue // crashed as injected; respawn to resume
					}
				}
				t.Fatalf("helper spawn %d failed: %v\n%s", spawns, err, out)
			}
			// The drain must actually have crossed crashes, not finished
			// in one clean leg — unless the whole tree is smaller than
			// the smallest crash point.
			if kills == 0 && straight.TablesExplored > 9 {
				t.Errorf("no SIGKILL landed across the drain (tree has %d tables)", straight.TablesExplored)
			}
			log, err := journal.Open(jp, journal.SyncNone)
			if err != nil {
				t.Fatalf("reopen journal: %v", err)
			}
			defer log.Close()
			last, ok := log.Last()
			if !ok || len(last) < 2 || last[0] != 'V' {
				t.Fatalf("journal does not end with a verdict record")
			}
			impossible := last[1]&1 != 0
			hasSurvivor := last[1]&2 != 0
			d := &ckptDecoder{b: last[2:]}
			tier := int(d.uvarint())
			tables := int(d.uvarint())
			var survivor Table
			if hasSurvivor {
				cnt := d.count(3)
				survivor = make(Table, cnt)
				for i := 0; i < cnt; i++ {
					obs := d.obsKey()
					survivor[obs] = d.decision()
				}
			}
			if d.err != nil {
				t.Fatalf("decode verdict record: %v", d.err)
			}
			if impossible != straight.Impossible || tier != straight.Tier {
				t.Errorf("crash drain verdict/tier (%v, %d) != uninterrupted (%v, %d)",
					impossible, tier, straight.Impossible, straight.Tier)
			}
			if tables != straight.TablesExplored {
				t.Errorf("crash drain TablesExplored %d != uninterrupted %d", tables, straight.TablesExplored)
			}
			if hasSurvivor != (straight.SurvivorTable != nil) {
				t.Errorf("crash drain survivor existence %v != uninterrupted %v", hasSurvivor, straight.SurvivorTable != nil)
			}
			if survivor != nil && !survivorHolds(mk(), tier, survivor) {
				t.Errorf("crash drain survivor does not survive re-analysis")
			}
			t.Logf("%s: %d kills before verdict (tables=%d)", tc.name, kills, tables)
		})
	}
}
