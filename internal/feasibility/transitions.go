package feasibility

import (
	"fmt"
	"sort"
	"strings"

	"ringrobots/internal/config"
	"ringrobots/internal/enumerate"
	"ringrobots/internal/ring"
)

// TransitionGraph regenerates the configuration diagrams of the paper's
// Figures 4–9: the distinct exclusive configurations of k robots on an
// n-node ring (up to rotation and reflection) and, for each, which
// configurations a single robot move can reach.
type TransitionGraph struct {
	N, K int
	// Classes are the distinct configurations, ordered by supermin view.
	Classes []config.Config
	// Arcs[i] lists the indices of classes reachable from Classes[i] by
	// moving one robot to an adjacent empty node (deduplicated, sorted).
	Arcs [][]int
}

// NewTransitionGraph enumerates the diagram for (n, k).
func NewTransitionGraph(n, k int) (*TransitionGraph, error) {
	classes, err := enumerate.Classes(n, k)
	if err != nil {
		return nil, err
	}
	index := make(map[config.CanonKey]int, len(classes))
	for i, c := range classes {
		index[c.CanonKey()] = i
	}
	g := &TransitionGraph{N: n, K: k, Classes: classes, Arcs: make([][]int, len(classes))}
	for i, c := range classes {
		seen := make(map[int]bool)
		for _, u := range c.Nodes() {
			for _, d := range []ring.Direction{ring.CW, ring.CCW} {
				to := c.Ring().Step(u, d)
				if c.Occupied(to) {
					continue
				}
				next, err := c.Move(u, to)
				if err != nil {
					return nil, err
				}
				j, ok := index[next.CanonKey()]
				if !ok {
					return nil, fmt.Errorf("feasibility: successor class %v missing", next.SuperminView())
				}
				seen[j] = true
			}
		}
		arcs := make([]int, 0, len(seen))
		for j := range seen {
			arcs = append(arcs, j)
		}
		sort.Ints(arcs)
		g.Arcs[i] = arcs
	}
	return g, nil
}

// String renders the diagram as text: one line per class with its
// supermin view, symmetry classification, and successors — the textual
// equivalent of Figures 4–9.
func (g *TransitionGraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "configurations of k=%d robots on an n=%d ring (%d classes)\n", g.K, g.N, len(g.Classes))
	for i, c := range g.Classes {
		kind := "rigid"
		switch {
		case c.IsPeriodic():
			kind = "periodic"
		case c.IsSymmetric():
			kind = "symmetric"
		}
		fmt.Fprintf(&b, "  C%-2d %-22s %-9s -> ", i+1, c.SuperminView(), kind)
		for j, a := range g.Arcs[i] {
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "C%d", a+1)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DOT renders the diagram in Graphviz format.
func (g *TransitionGraph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph \"k%d_n%d\" {\n", g.K, g.N)
	for i, c := range g.Classes {
		shape := "ellipse"
		if c.IsSymmetric() || c.IsPeriodic() {
			shape = "box"
		}
		fmt.Fprintf(&b, "  C%d [label=\"%s\", shape=%s];\n", i+1, c.SuperminView(), shape)
	}
	for i, arcs := range g.Arcs {
		for _, j := range arcs {
			fmt.Fprintf(&b, "  C%d -> C%d;\n", i+1, j+1)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// PaperFigures lists the six cases of Theorem 5 with the configuration
// counts shown in Figures 4–9.
func PaperFigures() []struct{ Figure, K, N, Classes int } {
	return []struct{ Figure, K, N, Classes int }{
		{4, 4, 7, 4},
		{5, 4, 8, 8},
		{6, 5, 8, 5},
		{7, 6, 9, 7},
		{8, 4, 9, 10},
		{9, 5, 9, 10},
	}
}
