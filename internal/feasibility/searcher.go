package feasibility

import (
	"errors"
	"math/bits"

	"ringrobots/internal/ring"
)

// errStopped aborts a worker's analyze when another worker already
// settled the tier (survivor found or error recorded). Never escapes the
// package.
var errStopped = errors.New("feasibility: search cancelled")

// expansionBatch is how many expansions a worker accumulates locally
// before flushing to the shared budget counter and re-checking the
// budget and the stop flag.
const expansionBatch = 1024

// edge is one adversary scheduling step in the state graph: a single
// robot's Look (creating a pending move or completing a Stay cycle), a
// pending execution, a fused Look+Move, or the simultaneous fused
// activation of a group of robots sharing one observation. Everything is
// a dense id or a node bitmask — an edge owns no heap memory.
type edge struct {
	to int32 // dense state id
	// stay marks a Look that resulted in a Stay decision (a complete
	// robot cycle without movement). Stay edges are self-loops; they are
	// excluded from cycle search and re-inserted by the fairness check.
	stay bool
	// iso is the isometry that canonicalized the target state under the
	// symmetry quotient: iso(post-move state in the source's frame) is
	// states[to]. Identity when quotienting is off. acts and the move
	// masks below stay in the source's frame; the lasso checks compose
	// iso records to lift quotient cycles back to real executions.
	iso isom
	// acts is the bitmask of nodes whose robots were activated or moved.
	acts uint64
	// movesCW/movesCCW are the origin bitmasks of traversals executed by
	// this step, split by direction (both zero for pure Looks and Stays).
	movesCW  uint64
	movesCCW uint64
}

// nodeInfo caches per-state expansion results. Edges live in the
// searcher's shared arena; nodeInfo only holds the window.
type nodeInfo struct {
	edgeOff int32
	edgeLen int32
	// stayable is the bitmask of nodes whose robots have a known Stay
	// decision in this state (used by the fairness check).
	stayable uint64
	// allStayDeadlock marks states where no robot has a pending move and
	// every robot's (known) decision is Stay with no unknowns.
	allStayDeadlock bool
}

// tarFrame is one frame of the iterative Tarjan stack.
type tarFrame struct {
	id   int32
	edge int32
}

// cycleVisit is one lifted step of a candidate starvation loop: the
// canonical state visited and the accumulated isometry mapping its
// frame into the loop head's (lift) frame.
type cycleVisit struct {
	id int32
	v  isom
}

// searcher is one worker's search engine: the materialized table of the
// branch under analysis, the state-interning tables (state → dense id
// with slice-backed adjacency, replacing the former per-branch
// map[uint64] trio), and every scratch buffer, all reused across the
// branches this worker processes.
type searcher struct {
	ts           *tierSearch
	n            int
	pendingLimit int
	// quotient interns states canonically under the 2n ring isometries
	// (see quotient.go); off, the searcher is the unquotiented oracle.
	quotient bool

	// table is the current branch's decision table, rebuilt from the
	// copy-on-write chain once per analyze.
	table Table

	// State interning: states[id], cont[id] (stem contamination clear
	// mask at discovery) and info[id] are parallel; edges is the shared
	// adjacency arena indexed by nodeInfo windows. tab is the
	// epoch-stamped open-addressing interner (interntable.go): a branch
	// reset is O(1) and the whole image snapshots by memcpy.
	tab    internTable
	states []state
	cont   []uint64
	info   []nodeInfo
	edges  []edge
	// numStarts is how many distinct (canonicalized) start states head
	// the intern order; the canonical-discovery replay in incremental
	// mode re-seeds exactly that prefix.
	numStarts int32

	// waiters records every (state, observation) pair whose expansion
	// found the observation missing from the table, with its
	// legal-decision mask. It replaces the former needed map: besides
	// driving branch selection it is the reverse index incremental
	// re-analysis uses to find the states a new table entry unlocks.
	waiters []waiter

	// expanded counts expand() calls this branch (flushed to the shared
	// statesReexpanded counter by process) — the measure of expansion
	// work actually performed, identical in meaning for both modes.
	expanded int64

	// Incremental re-analysis scratch (incremental.go). prevCont,
	// prevScc and prevCompSize alias the parent snapshot's arrays for
	// the duration of one analyzeIncremental call.
	prevCont     []uint64
	prevScc      []int32
	prevCompSize []int32
	dirtyMark    []uint64
	dirtyEpoch   uint64
	dirtyList    []int32
	dirtyTmp     []int32
	order        []int32
	compDirty    []bool
	compPrev     []int32

	// canonCache memoizes the occupied-mask half of state
	// canonicalization per worker: at most C(n,k) distinct masks exist
	// per tier, so after warmup every edgeTo canonicalization is one map
	// hit plus (under pending tiers) a tiny tie-break. Lock-free by
	// being worker-local; it persists across the worker's branches.
	canonCache map[uint64]occCanon

	// Tarjan scratch.
	scc      []int32
	compSize []int32
	tarIndex []int32
	tarLow   []int32
	onStack  []bool
	tarStack []int32
	frames   []tarFrame

	// Cycle-hunt scratch. The visit marks are epoch-stamped so findBadCycle
	// never has to clear the slice; the epoch is 64-bit because one searcher
	// lives for a whole tier and deep budgets (T5LONG runs 2G expansions)
	// could wrap a 32-bit counter, aliasing stale marks into fresh searches.
	visited    []uint64
	visitEpoch uint64
	path       []edge
	cycle      []edge
	visits     []cycleVisit
	maskSeen   []uint64
	isoSeen    []isom
	passClear  []bool

	// Group-activation scratch.
	groupBuf []obsInfo
	dirs     []ring.Direction

	// Pruning scratch: the distinct-observation aggregation of
	// selectNeededScored, and the per-component flag of the
	// bounded-multiplicity lasso hunt (true when the component carries
	// an in-component non-identity-isometry edge — the profile gate for
	// non-simple projected cycles).
	agg        []obsAgg
	compIso    []bool
	anchorHash []uint64

	// local is the expansion count not yet flushed to the shared budget.
	local int64
}

// waiter is one registered unknown: state id waits on obs, whose legal
// decisions are legal. See searcher.waiters.
type waiter struct {
	obs   ObsKey
	id    int32
	legal uint8
}

// obsAgg is one distinct undefined observation in selectNeededScored's
// aggregation: how many waiter registrations it has and its legal mask.
type obsAgg struct {
	obs   ObsKey
	count int32
	legal uint8
}

func newSearcher(ts *tierSearch) *searcher {
	return &searcher{
		ts:           ts,
		n:            ts.n,
		pendingLimit: ts.pendingLimit,
		quotient:     ts.quotient,
		table:        make(Table, 64),
		canonCache:   make(map[uint64]occCanon, 1<<8),
		dirs:         make([]ring.Direction, ts.k),
	}
}

// canonState is the cached hot-path variant of the package-level
// canonState: the Booth kernel runs once per distinct occupied mask per
// worker.
func (w *searcher) canonState(s state) (state, isom) {
	oc, ok := w.canonCache[s.occupied]
	if !ok {
		oc = computeOccCanon(s.occupied, w.n)
		w.canonCache[s.occupied] = oc
	}
	return oc.canonicalize(s, w.n)
}

// process analyzes one table branch: a win closes the subtree, a
// completed table is a survivor (cancelling the tier), and an undefined
// observation fans out child branches onto the queue. Children are
// pushed in descending decision order so the LIFO queue pops them in the
// fixed enumeration order — with one worker this reproduces the
// sequential depth-first search exactly.
//
// A branch carrying its parent's snapshot is re-analyzed incrementally
// (incremental.go): the per-branch outputs (win, needed, legal) are
// exactly those of a full analyze of the same table, so the explored
// tree — and, per worker count, every Result field except the work
// counters — is identical in both modes. Branches that fan out publish
// a snapshot of the finished analysis for their children in turn.
//
// With pruning on (the default), candidate children are filtered before
// they are enqueued — the dominance probe and the subtable nogood memo
// refute some without analysis (prune.go) — and every refuted branch
// propagates a closure up the tree, feeding the refutation credits that
// drive the branching-observation order.
func (w *searcher) process(nd *tableNode) {
	if w.ts.stop.Load() {
		// Popped just as the tier stopped: hand the untouched branch to
		// the suspend frontier so a checkpoint does not lose it. Its
		// snapshot is released — a resumed branch re-analyzes in full
		// (same per-branch outputs, see incremental.go).
		if nd.snap != nil {
			w.ts.releaseSnap(nd.snap)
			nd.snap = nil
		}
		w.ts.abandon(nd)
		return
	}
	w.ts.tables.Add(1)
	nd.materializeInto(w.table)
	var win bool
	var needed ObsKey
	var legal uint8
	var err error
	if nd.snap != nil {
		w.ts.branchesReused.Add(1)
		win, needed, legal, err = w.analyzeIncremental(nd)
		w.prevCont, w.prevScc, w.prevCompSize = nil, nil, nil
		w.ts.releaseSnap(nd.snap)
		nd.snap = nil
	} else {
		win, needed, legal, err = w.analyze()
	}
	w.ts.statesInterned.Add(int64(len(w.states)))
	w.ts.statesReexpanded.Add(w.expanded)
	w.expanded = 0
	if err != nil {
		if err != errStopped {
			w.ts.fail(err)
		}
		// The branch was not completed: uncount it and return it to the
		// suspend frontier. A resumed drain re-processes (and re-counts)
		// it exactly once, which is what keeps single-worker
		// TablesExplored bit-identical to an uninterrupted run.
		w.ts.tables.Add(-1)
		w.ts.abandon(nd)
		return
	}
	if win {
		w.closeRefuted(nd, true)
		return
	}
	if legal == 0 {
		w.ts.foundSurvivor(nd.toTable())
		return
	}
	var kept [4]Decision
	nk := 0
	pr := w.ts.prune
	var tsig uint64
	checkNogoods := pr != nil && pr.recorded.Load() > 0
	if checkNogoods {
		tsig, w.anchorHash = tableSigAndAnchors(w.table, w.anchorHash)
	}
	for d := DEither; d >= DStay; d-- {
		if legal&(1<<uint(d)) == 0 {
			continue
		}
		if pr != nil {
			if w.dominatedChild(needed, d) {
				w.ts.dominated.Add(1)
				pr.addCredit(needed)
				continue
			}
			if checkNogoods && pr.nogoodHit(w.ts.pendingLimit, w.table, tsig, w.anchorHash, needed, d) {
				w.ts.memoHits.Add(1)
				pr.addCredit(needed)
				continue
			}
		}
		kept[nk] = d
		nk++
	}
	if nk == 0 {
		// Every candidate child was refuted without analysis: the
		// branch itself is a refuted subtree root.
		w.closeRefuted(nd, false)
		return
	}
	var snap *branchSnap
	if w.ts.incremental {
		snap = w.publishSnap(nk)
	}
	nd.openKids.Store(int32(nk))
	for i := 0; i < nk; i++ {
		w.ts.queue.push(&tableNode{parent: nd, obs: needed, d: kept[i], snap: snap})
	}
}

// checkAbort counts one unit of search work; every expansionBatch units
// it flushes to the shared budget and reports budget exhaustion or a
// cancelled tier.
func (w *searcher) checkAbort() error {
	w.local++
	if w.local < expansionBatch {
		return nil
	}
	total := w.ts.expansions.Add(w.local)
	w.local = 0
	// The stop flag outranks the budget: once a peer settled the tier
	// (survivor found), burning past the budget on a branch the settled
	// verdict makes irrelevant must not surface as ErrBudget.
	if w.ts.stop.Load() {
		return errStopped
	}
	if total > w.ts.maxExpansions {
		return ErrBudget
	}
	return nil
}

// flush publishes the residual local expansion count and enforces the
// budget at the branch boundary. The enforcement here is load-bearing:
// checkAbort only tests the budget every expansionBatch units of
// locally accumulated work, and on branch-cheap drains (a few dozen
// charged units per branch under incremental reuse and pruning) the
// local counter is reset by this flush before ever reaching the batch
// size — without the test below, small probe budgets were ignored
// entirely and the queue drained on wall clock alone.
func (w *searcher) flush() {
	if w.local > 0 {
		total := w.ts.expansions.Add(w.local)
		w.local = 0
		if total > w.ts.maxExpansions && !w.ts.stop.Load() {
			w.ts.fail(ErrBudget)
		}
	}
}

func (w *searcher) step(u int, d ring.Direction) int {
	if d == ring.CW {
		if u+1 == w.n {
			return 0
		}
		return u + 1
	}
	if u == 0 {
		return w.n - 1
	}
	return u - 1
}

// analyze explores the adversary-reachable state graph under the current
// table. It returns win=true when a collision or a fair starvation lasso
// is forced using only defined entries; otherwise it reports an
// undefined observation (legal != 0) for the table search to branch on,
// or legal == 0 when the table already determines all behavior.
func (w *searcher) analyze() (win bool, neededObs ObsKey, legal uint8, err error) {
	w.tab.reset()
	w.waiters = w.waiters[:0]
	w.states = w.states[:0]
	w.cont = w.cont[:0]
	w.info = w.info[:0]
	w.edges = w.edges[:0]
	full := uint64(1)<<uint(w.n) - 1

	for _, st := range w.ts.starts {
		if w.quotient {
			st, _ = w.canonState(st)
		}
		if _, ok := w.tab.lookup(st); ok {
			continue
		}
		w.intern(st, contRefresh(0, st.occupied, w.n))
	}
	w.numStarts = int32(len(w.states))

	// BFS: appending interned states makes the slice its own queue.
	for id := int32(0); int(id) < len(w.states); id++ {
		if err := w.checkAbort(); err != nil {
			return false, ObsKey{}, 0, err
		}
		if w.expand(id) {
			return true, ObsKey{}, 0, nil // collision forced
		}
		if w.info[id].allStayDeadlock && w.cont[id] != full {
			// Nothing ever moves again and the ring is not clear: a fair
			// (all robots cycle with Stay) starvation of the task.
			return true, ObsKey{}, 0, nil
		}
	}

	// No collision, no deadlock win. Hunt for a fair starvation loop,
	// restricted to non-trivial strongly connected components of the
	// non-stay edge graph (only they can carry cycles) and with
	// iteratively deepened length caps (adversary wins are usually
	// short), never exceeding MaxCycleLen.
	w.computeSCCs()
	var caps [3]int
	for _, lengthCap := range w.lengthCaps(&caps) {
		for id := int32(0); int(id) < len(w.states); id++ {
			if w.scc[id] < 0 {
				continue // trivial component: no cycle through here
			}
			bad, err := w.findBadCycle(id, lengthCap)
			if err != nil {
				return false, ObsKey{}, 0, err
			}
			if bad {
				return true, ObsKey{}, 0, nil
			}
		}
	}
	if bad, err := w.huntNonSimple(nil); bad || err != nil {
		if err != nil {
			return false, ObsKey{}, 0, err
		}
		return true, ObsKey{}, 0, nil
	}

	best, bestMask := w.selectNeeded()
	return false, best, bestMask, nil
}

// lengthCaps fills the iterative-deepening schedule of the lasso hunt
// into the caller's array: adversary wins are usually short, so short
// caps run first, never exceeding MaxCycleLen.
func (w *searcher) lengthCaps(caps *[3]int) []int {
	*caps = [3]int{6, 12, w.ts.maxCycleLen}
	if w.ts.maxCycleLen <= 6 {
		return caps[2:]
	}
	if w.ts.maxCycleLen <= 12 {
		caps[1] = w.ts.maxCycleLen
		return caps[:2]
	}
	return caps[:]
}

// selectNeeded picks the branching observation. With pruning on it
// defers to the refutation-guided order below; the NoPrune oracle keeps
// the historical choice — the undefined observation with the fewest
// legal decisions (smallest fan-out first keeps the table tree narrow),
// ties broken by the deterministic ObsKey order. Duplicate
// registrations are harmless under the min, and the defined-in-table
// filter is defensive: registrations only ever happen for unknown
// observations and incremental adoption drops entries the branch's new
// binding resolved.
func (w *searcher) selectNeeded() (ObsKey, uint8) {
	if w.ts.prune != nil {
		return w.selectNeededScored(w.ts.prune)
	}
	var best ObsKey
	var bestMask uint8
	bestOptions := 1 << 30
	for i := range w.waiters {
		e := &w.waiters[i]
		if _, defined := w.table[e.obs]; defined {
			continue
		}
		opts := bits.OnesCount8(e.legal)
		if opts < bestOptions || (opts == bestOptions && e.obs.Less(best)) {
			best = e.obs
			bestMask = e.legal
			bestOptions = opts
		}
	}
	return best, bestMask
}

// selectNeededScored is the refutation-guided branching order: pick the
// undefined observation with the highest score = waiting-state count +
// pruneCreditWeight × refutation credit, ties broken by fewer legal
// decisions, then ObsKey order. Binding the most-waited observation
// constrains the most states at once — refuting subtrees surface before
// the combinatorial bulk, which is worth orders of magnitude on the
// deep drains ((4,9): 145 986 → 89 explored tables, with the
// dominance probe and per-tier credits; prune.go). The credit term
// steers later siblings toward observations whose bindings have already
// refuted branches elsewhere in the tree. The argmax is total (score,
// fan-out, key), so the choice is independent of waiter registration
// order — which differs between incremental and full re-analysis.
func (w *searcher) selectNeededScored(pr *pruneState) (ObsKey, uint8) {
	w.agg = w.agg[:0]
	for i := range w.waiters {
		e := &w.waiters[i]
		if _, defined := w.table[e.obs]; defined {
			continue
		}
		found := false
		for j := range w.agg {
			if w.agg[j].obs == e.obs {
				w.agg[j].count++
				found = true
				break
			}
		}
		if !found {
			w.agg = append(w.agg, obsAgg{obs: e.obs, count: 1, legal: e.legal})
		}
	}
	var best ObsKey
	var bestMask uint8
	bestScore := int64(-1)
	bestOpts := 1 << 30
	for j := range w.agg {
		a := &w.agg[j]
		score := int64(a.count) + pruneCreditWeight*pr.creditOf(a.obs)
		opts := bits.OnesCount8(a.legal)
		if score > bestScore || (score == bestScore && (opts < bestOpts || (opts == bestOpts && a.obs.Less(best)))) {
			best, bestMask, bestScore, bestOpts = a.obs, a.legal, score, opts
		}
	}
	return best, bestMask
}

// intern binds a new state to the next dense id with its stem
// contamination, growing the parallel arrays.
func (w *searcher) intern(st state, cm uint64) int32 {
	id := int32(len(w.states))
	w.tab.getOrPut(st, id)
	w.states = append(w.states, st)
	w.cont = append(w.cont, cm)
	w.info = append(w.info, nodeInfo{})
	return id
}

// edgeTo interns the target state of an edge, deriving its stem
// contamination from the source state's on first discovery. Under the
// symmetry quotient the target is canonicalized first; the returned
// isometry maps the source-frame post-move state onto the interned
// representative (identity when quotienting is off) and must be
// recorded on the edge.
func (w *searcher) edgeTo(from int32, next state, movesCW, movesCCW uint64) (int32, isom) {
	g := isoIdentity
	can := next
	if w.quotient {
		can, g = w.canonState(next)
	}
	if id, ok := w.tab.lookup(can); ok {
		return id, g
	}
	cm := w.cont[from]
	if movesCW|movesCCW != 0 {
		cm = contApply(cm, movesCW, movesCCW, next.occupied, w.n)
	}
	if g != isoIdentity {
		cm = g.edgeMask(cm, w.n)
	}
	return w.intern(can, cm), g
}

// expand lists the adversary's options at a state into the edge arena.
// It reports whether the adversary can force a collision here. The
// listing is a pure function of (state, table): re-expanding a state
// under a larger table appends a fresh window whose edge sequence is
// exactly what a from-scratch analyze of that table would produce —
// the property incremental re-analysis rests on.
func (w *searcher) expand(id int32) (collision bool) {
	w.expanded++
	st := w.states[id]
	ni := nodeInfo{edgeOff: int32(len(w.edges))}
	unknowns := false
	movers := false
	pendingCount := 0

	// Pending executions (no table lookups needed).
	if st.anyPending() {
		for occ := st.occupied; occ != 0; occ &= occ - 1 {
			u := bits.TrailingZeros64(occ)
			dir, ok := st.pendingAt(u)
			if !ok {
				continue
			}
			pendingCount++
			movers = true
			to := w.step(u, dir)
			if st.occupiedAt(to) {
				return true
			}
			next := st.clearPending(u)
			next.occupied = next.occupied&^(1<<uint(u)) | 1<<uint(to)
			var mcw, mccw uint64
			if dir == ring.CW {
				mcw = 1 << uint(u)
			} else {
				mccw = 1 << uint(u)
			}
			tid, g := w.edgeTo(id, next, mcw, mccw)
			w.edges = append(w.edges, edge{
				to: tid, iso: g, acts: 1 << uint(u), movesCW: mcw, movesCCW: mccw,
			})
		}
	}

	// Fused and pending Look+Compute actions.
	os := w.ts.obs.get(st.occupied)
	for i := range os.infos {
		oi := &os.infos[i]
		if _, hasPending := st.pendingAt(oi.node); hasPending {
			continue
		}
		d, known := w.table[oi.obs]
		if !known {
			unknowns = true
			w.waiters = append(w.waiters, waiter{obs: oi.obs, id: id, legal: oi.legal})
			continue
		}
		if d == DStay {
			ni.stayable |= 1 << uint(oi.node)
			w.edges = append(w.edges, edge{to: id, acts: 1 << uint(oi.node), stay: true})
			continue
		}
		movers = true
		dirs, nd := decisionDirs(d, oi.loDir)
		// Fused single activation: Look+Compute+Move atomically.
		for j := 0; j < nd; j++ {
			to := w.step(oi.node, dirs[j])
			if st.occupiedAt(to) {
				return true // defensive; legal masks exclude blocked moves
			}
			next := st
			next.occupied = next.occupied&^(1<<uint(oi.node)) | 1<<uint(to)
			var mcw, mccw uint64
			if dirs[j] == ring.CW {
				mcw = 1 << uint(oi.node)
			} else {
				mccw = 1 << uint(oi.node)
			}
			tid, g := w.edgeTo(id, next, mcw, mccw)
			w.edges = append(w.edges, edge{
				to: tid, iso: g, acts: 1 << uint(oi.node), movesCW: mcw, movesCCW: mccw,
			})
		}
		// Split Look (pending created, move later) when the tier allows.
		if pendingCount < w.pendingLimit {
			for j := 0; j < nd; j++ {
				next := st.withPending(oi.node, dirs[j])
				tid, g := w.edgeTo(id, next, 0, 0)
				w.edges = append(w.edges, edge{to: tid, iso: g, acts: 1 << uint(oi.node)})
			}
		}
	}

	// Simultaneous fused activation of whole same-observation groups:
	// the adversary's classic symmetry exploit (Lemma 7, Theorem 4, the
	// B8 rotation of case (4,8)).
	for _, g := range os.groups {
		d, known := w.table[os.infos[g[0]].obs]
		if !known || d == DStay {
			continue
		}
		w.groupBuf = w.groupBuf[:0]
		for _, gi := range g {
			if _, hasPending := st.pendingAt(os.infos[gi].node); !hasPending {
				w.groupBuf = append(w.groupBuf, os.infos[gi])
			}
		}
		if len(w.groupBuf) < 2 {
			continue
		}
		if w.enumGroupCombos(id, st, d, 0) {
			return true
		}
	}

	ni.allStayDeadlock = !unknowns && !movers
	ni.edgeLen = int32(len(w.edges)) - ni.edgeOff
	w.info[id] = ni
	return false
}

// decisionDirs resolves a moving decision into candidate directions
// without allocating. Deterministic decisions contribute one direction;
// Either contributes both (the adversary resolves it).
func decisionDirs(d Decision, loDir ring.Direction) ([2]ring.Direction, int) {
	switch d {
	case DTowardLo:
		return [2]ring.Direction{loDir}, 1
	case DTowardHi:
		return [2]ring.Direction{loDir.Opposite()}, 1
	case DEither:
		return [2]ring.Direction{ring.CW, ring.CCW}, 2
	}
	return [2]ring.Direction{}, 0
}

// enumGroupCombos enumerates the adversary's direction resolutions for
// the filtered group in w.groupBuf, writing candidates into w.dirs.
func (w *searcher) enumGroupCombos(id int32, st state, d Decision, idx int) (collision bool) {
	if idx == len(w.groupBuf) {
		return w.applyGroupMove(id, st)
	}
	dirs, nd := decisionDirs(d, w.groupBuf[idx].loDir)
	for j := 0; j < nd; j++ {
		w.dirs[idx] = dirs[j]
		if w.enumGroupCombos(id, st, d, idx+1) {
			return true
		}
	}
	return false
}

// groupMoveMasks resolves the simultaneous moves of w.groupBuf along
// w.dirs into (targets, origins) masks, reporting a collision when two
// movers end on one node or a mover lands on a robot that did not move.
// A simultaneous swap of adjacent robots is conservatively treated as
// legal (configuration unchanged), keeping the modeled adversary no
// stronger than the paper's. Shared by the expansion's group step and
// the pre-enqueue dominance probe (prune.go), so the two can never
// disagree about what collides.
func (w *searcher) groupMoveMasks(st state) (targets, origins uint64, collision bool) {
	for i := range w.groupBuf {
		to := w.step(w.groupBuf[i].node, w.dirs[i])
		tb := uint64(1) << uint(to)
		if targets&tb != 0 {
			return 0, 0, true // two movers on one node
		}
		targets |= tb
		origins |= 1 << uint(w.groupBuf[i].node)
	}
	return targets, origins, (st.occupied&^origins)&targets != 0
}

// applyGroupMove executes the simultaneous moves of w.groupBuf along
// w.dirs, reporting a collision instead of an edge when the resolution
// collides (see groupMoveMasks).
func (w *searcher) applyGroupMove(id int32, st state) (collision bool) {
	targets, origins, collides := w.groupMoveMasks(st)
	if collides {
		return true
	}
	var mcw, mccw uint64
	for i := range w.groupBuf {
		if w.dirs[i] == ring.CW {
			mcw |= 1 << uint(w.groupBuf[i].node)
		} else {
			mccw |= 1 << uint(w.groupBuf[i].node)
		}
	}
	next := st
	next.occupied = st.occupied&^origins | targets
	to, g := w.edgeTo(id, next, mcw, mccw)
	w.edges = append(w.edges, edge{
		to: to, iso: g, acts: origins, movesCW: mcw, movesCCW: mccw,
	})
	return false
}

// computeSCCs labels every state with its strongly-connected-component
// id over non-stay edges, using -1 for states in trivial (single,
// non-cyclic) components. Iterative Tarjan over dense ids.
func (w *searcher) computeSCCs() {
	nStates := len(w.states)
	w.scc = growI32(w.scc, nStates)
	w.tarIndex = growI32(w.tarIndex, nStates)
	w.tarLow = growI32(w.tarLow, nStates)
	w.onStack = growBool(w.onStack, nStates)
	for i := 0; i < nStates; i++ {
		w.tarIndex[i] = -1
		w.onStack[i] = false
	}
	w.tarStack = w.tarStack[:0]
	w.frames = w.frames[:0]
	w.compSize = w.compSize[:0]
	next := int32(0)

	for root := int32(0); int(root) < nStates; root++ {
		if w.tarIndex[root] >= 0 {
			continue
		}
		w.tarIndex[root] = next
		w.tarLow[root] = next
		next++
		w.tarStack = append(w.tarStack, root)
		w.onStack[root] = true
		w.frames = append(w.frames, tarFrame{id: root})
		for len(w.frames) > 0 {
			f := &w.frames[len(w.frames)-1]
			ni := &w.info[f.id]
			advanced := false
			for f.edge < ni.edgeLen {
				e := &w.edges[ni.edgeOff+f.edge]
				f.edge++
				if e.stay {
					continue
				}
				t := e.to
				if w.tarIndex[t] < 0 {
					w.tarIndex[t] = next
					w.tarLow[t] = next
					next++
					w.tarStack = append(w.tarStack, t)
					w.onStack[t] = true
					w.frames = append(w.frames, tarFrame{id: t})
					advanced = true
					break
				}
				if w.onStack[t] {
					if w.tarIndex[t] < w.tarLow[f.id] {
						w.tarLow[f.id] = w.tarIndex[t]
					}
					if w.tarLow[t] < w.tarLow[f.id] {
						w.tarLow[f.id] = w.tarLow[t]
					}
				}
			}
			if advanced {
				continue
			}
			if len(w.frames) > 1 {
				p := w.frames[len(w.frames)-2].id
				if w.tarLow[f.id] < w.tarLow[p] {
					w.tarLow[p] = w.tarLow[f.id]
				}
			}
			if w.tarLow[f.id] == w.tarIndex[f.id] {
				size := int32(0)
				comp := int32(len(w.compSize))
				for {
					t := w.tarStack[len(w.tarStack)-1]
					w.tarStack = w.tarStack[:len(w.tarStack)-1]
					w.onStack[t] = false
					w.scc[t] = comp
					size++
					if t == f.id {
						break
					}
				}
				w.compSize = append(w.compSize, size)
			}
			w.frames = w.frames[:len(w.frames)-1]
		}
	}
	for i := 0; i < nStates; i++ {
		if w.compSize[w.scc[i]] < 2 && !w.hasMoveSelfLoop(int32(i)) {
			w.scc[i] = -1
		}
	}
}

// hasMoveSelfLoop reports whether a state has a non-stay edge to
// itself. Raw states can never self-loop (every move changes occupancy
// or pending), but under the symmetry quotient an isometric successor
// collapses onto its source — a real one-step cycle that the
// single-state-component filter must not discard (the k = 1 rings are
// the extreme case: the whole orbit is one canonical state).
func (w *searcher) hasMoveSelfLoop(id int32) bool {
	ni := &w.info[id]
	for x := int32(0); x < ni.edgeLen; x++ {
		if e := &w.edges[ni.edgeOff+x]; !e.stay && e.to == id {
			return true
		}
	}
	return false
}

// revisitLengthCap bounds the bounded-multiplicity hunt independently
// of MaxCycleLen. A non-simple projected loop revisits its repeated
// state within a short window — the (5,8) blind-spot loop needs only
// length 4, and 6 doubles that margin — while hunting revisit paths at
// the full 24-step cap roughly doubled the per-branch cost of small
// solves for zero extra catches on any measured case: the candidates it
// added just burned fairness/badness lift passes.
const revisitLengthCap = 6

// huntNonSimple is the bounded-multiplicity complement of the main
// lasso hunt, fixing the quotient's blind spot for raw starvation
// cycles whose canonical projection revisits a state (two orbit-mates
// on one loop — the PR 3 follow-up): the simple-cycle DFS will not
// traverse a quotient state twice, so such loops were only caught
// deeper in the table tree, after more branching. A projected loop can
// only be non-simple when some edge on it renamed its target (a
// non-identity isometry), so the hunt is gated behind a profile check:
// only components carrying an in-component non-identity-isometry edge
// are hunted, from every member (the non-restoring visit marks make a
// single hunt incomplete, and restricting heads to the renaming edge's
// endpoints measurably loses catches), with the per-candidate lift
// validation reserved for projections that actually revisit a state.
// The pass is free with quotienting off and on asymmetric frontiers.
// skip optionally suppresses heads the incremental path has proven
// unchanged (same guard as the main hunt).
func (w *searcher) huntNonSimple(skip func(id int32) bool) (bool, error) {
	// Mark the components carrying an in-component non-identity-isometry
	// edge; only their members can head a non-simple projected loop (the
	// revisited state's two frames must differ, so some loop edge
	// renames). Every member hunts, not just the renaming edge's
	// endpoints: the non-restoring visit marks below make each single
	// hunt incomplete, and the known blind-spot loops are reliably found
	// only when all loop members get a turn — restricting heads to edge
	// endpoints measurably loses catches.
	nc := len(w.compSize)
	w.compIso = growBool(w.compIso, nc)
	for c := 0; c < nc; c++ {
		w.compIso[c] = false
	}
	any := false
	for id := int32(0); int(id) < len(w.states); id++ {
		c := w.scc[id]
		if c < 0 || w.compIso[c] {
			continue
		}
		ni := &w.info[id]
		for x := int32(0); x < ni.edgeLen; x++ {
			e := &w.edges[ni.edgeOff+x]
			if !e.stay && e.iso != isoIdentity && w.scc[e.to] == c {
				w.compIso[c] = true
				any = true
				break
			}
		}
	}
	if !any {
		return false, nil
	}
	capLen := w.ts.maxCycleLen
	if capLen > revisitLengthCap {
		capLen = revisitLengthCap
	}
	for id := int32(0); int(id) < len(w.states); id++ {
		if w.scc[id] < 0 || !w.compIso[w.scc[id]] {
			continue
		}
		if skip != nil && skip(id) {
			continue
		}
		bad, err := w.findBadCycleRevisit(id, capLen)
		if err != nil || bad {
			return bad, err
		}
	}
	return false, nil
}

// findBadCycleRevisit is findBadCycle with one revisit allowed per
// quotient state: each state may be entered up to twice per hunt (the
// head excluded — a loop closing at the head with a non-identity net
// isometry is already lifted by cycleIsFairAndBad's multi-pass check).
// Like the simple hunt, visit marks are not restored on backtrack, so
// the cost stays linear-ish in the component (at most twice the simple
// hunt) rather than enumerating paths.
//
// The epoch advances by two and stamps visitEpoch−1 (one visit) and
// visitEpoch (two visits). Stamping *at most* the new epoch value
// matters: the visited array and epoch counter are shared with
// findBadCycle and recomputeCont, whose single-increment epochs test
// equality — a mark above the counter would alias into the next
// pass's fresh epoch and make it skip never-visited states.
func (w *searcher) findBadCycleRevisit(head int32, lengthCap int) (bool, error) {
	w.visited = growU64(w.visited, len(w.states))
	w.visitEpoch += 2
	w.visited[head] = w.visitEpoch // both visits used: never re-entered
	w.path = w.path[:0]
	return w.dfsCycleRevisit(head, head, w.scc[head], lengthCap)
}

func (w *searcher) dfsCycleRevisit(cur, target, comp int32, lengthCap int) (bool, error) {
	if len(w.path) >= lengthCap {
		return false, nil
	}
	ni := &w.info[cur]
	// Two passes over the window: edges whose isometry renames first
	// (pass 0), identity edges second — the renaming path must be
	// marked before the plain one, or the non-restoring visit marks can
	// wall off the non-simple loop this hunt exists to find.
	for pass := 0; pass < 2; pass++ {
		for x := int32(0); x < ni.edgeLen; x++ {
			e := w.edges[ni.edgeOff+x]
			if e.stay || (e.iso != isoIdentity) == (pass == 1) {
				continue
			}
			if err := w.checkAbort(); err != nil {
				return false, err
			}
			if e.to == target {
				// Validate only candidates whose projection actually
				// revisits a state: simple loops through this head are
				// the main hunt's job (it ran first, at a cap at least
				// this deep), and re-lifting them here roughly doubled
				// the cost of small solves for zero extra catches.
				if !w.pathRevisits(target) {
					continue
				}
				w.cycle = append(w.cycle[:0], w.path...)
				w.cycle = append(w.cycle, e)
				bad, err := w.cycleIsFairAndBad(target)
				if err != nil {
					return false, err
				}
				if bad {
					return true, nil
				}
				continue
			}
			v := w.visited[e.to]
			if w.scc[e.to] != comp || v >= w.visitEpoch {
				continue // out of component, or both visits used
			}
			if v == w.visitEpoch-1 {
				w.visited[e.to] = w.visitEpoch
			} else {
				w.visited[e.to] = w.visitEpoch - 1
			}
			w.path = append(w.path, e)
			found, err := w.dfsCycleRevisit(e.to, target, comp, lengthCap)
			w.path = w.path[:len(w.path)-1]
			if err != nil || found {
				return found, err
			}
		}
	}
	return false, nil
}

// findBadCycle searches for a loop through the head state that is fair
// and never clears the ring, starting from the stem contamination. The
// search is confined to the head's strongly connected component and
// bounded by lengthCap.
func (w *searcher) findBadCycle(head int32, lengthCap int) (bool, error) {
	w.visited = growU64(w.visited, len(w.states))
	w.visitEpoch++
	w.visited[head] = w.visitEpoch
	w.path = w.path[:0]
	return w.dfsCycle(head, head, w.scc[head], lengthCap)
}

func (w *searcher) dfsCycle(cur, target, comp int32, lengthCap int) (bool, error) {
	if len(w.path) >= lengthCap {
		return false, nil
	}
	ni := &w.info[cur]
	for x := int32(0); x < ni.edgeLen; x++ {
		e := w.edges[ni.edgeOff+x]
		if e.stay {
			continue
		}
		if err := w.checkAbort(); err != nil {
			return false, err
		}
		if e.to == target {
			w.cycle = append(w.cycle[:0], w.path...)
			w.cycle = append(w.cycle, e)
			bad, err := w.cycleIsFairAndBad(target)
			if err != nil {
				return false, err
			}
			if bad {
				return true, nil
			}
			continue
		}
		if w.scc[e.to] != comp || w.visited[e.to] == w.visitEpoch {
			continue
		}
		w.visited[e.to] = w.visitEpoch
		w.path = append(w.path, e)
		found, err := w.dfsCycle(e.to, target, comp, lengthCap)
		w.path = w.path[:len(w.path)-1]
		if err != nil || found {
			return found, err
		}
	}
	return false, nil
}

// cycleIsFairAndBad checks the winning conditions on the candidate loop
// in w.cycle anchored at head, with contamination entering the loop as
// in the head's stem. Under the symmetry quotient a loop of canonical
// states is a real execution only after lifting: composing the edges'
// isometries yields the net relabeling ψ one pass applies, and the true
// cycle closes after order(ψ) passes. The checks below run on that lift
// — with quotienting off every isometry is the identity, ψ = id, and
// they reduce to the plain single-pass checks. Each fairness and
// contamination pass is charged to the shared expansion budget: the
// passes dominate the cost of deep lasso hunts, and leaving them free
// let pathological loops exceed the budget's intent (PR 2 follow-up).
func (w *searcher) cycleIsFairAndBad(head int32) (bool, error) {
	// Net isometry of one pass: each edge maps its source frame onto its
	// target's canonical frame, so walking the loop in the head's (lift)
	// frame composes the inverses.
	psi := isoIdentity
	for i := range w.cycle {
		psi = psi.compose(w.cycle[i].iso.inverse(w.n), w.n)
	}

	// --- Fairness over the lifted cycle (order(ψ) quotient passes) ---
	st := w.states[head]
	acted := uint64(0)
	stationary := st.occupied
	w.visits = append(w.visits[:0], cycleVisit{id: head, v: isoIdentity})
	v := isoIdentity
	for pass := psi.order(w.n); pass > 0; pass-- {
		if err := w.checkAbort(); err != nil {
			return false, err
		}
		for i := range w.cycle {
			e := &w.cycle[i]
			acted |= v.nodeMask(e.acts, w.n)
			v = v.compose(e.iso.inverse(w.n), w.n)
			stationary &= v.nodeMask(w.states[e.to].occupied, w.n)
			w.visits = append(w.visits, cycleVisit{id: e.to, v: v})
		}
	}
	for rest := stationary &^ acted; rest != 0; rest &= rest - 1 {
		u := bits.TrailingZeros64(rest)
		if _, hasPending := st.pendingAt(u); hasPending {
			// A pending move held forever violates the model's
			// finite-cycle requirement: unfair.
			return false, nil
		}
		canStay := false
		for _, vis := range w.visits {
			sv := w.states[vis.id]
			// u lives in the lift frame; the visited state's data is in
			// its canonical frame.
			uc := vis.v.inverse(w.n).node(u, w.n)
			if _, p := sv.pendingAt(uc); p {
				continue
			}
			if w.info[vis.id].stayable&(1<<uint(uc)) != 0 {
				canStay = true
				break
			}
		}
		if !canStay {
			return false, nil
		}
	}

	// --- Badness: iterate the lifted loop from the stem contamination
	// until the (contamination, relabeling) pair at the loop head
	// repeats; if no pass in the repeating regime touches all-clear, the
	// adversary wins. ---
	full := uint64(1)<<uint(w.n) - 1
	cm := w.cont[head]
	v = isoIdentity
	w.maskSeen = w.maskSeen[:0]
	w.isoSeen = w.isoSeen[:0]
	w.passClear = w.passClear[:0]
	const maxPasses = 1 << 16 // defensive; the head pair repeats almost immediately
	for iter := 0; iter < maxPasses; iter++ {
		if err := w.checkAbort(); err != nil {
			return false, err
		}
		for first, m := range w.maskSeen {
			if m != cm || w.isoSeen[first] != v {
				continue
			}
			// Passes first..iter−1 repeat forever.
			for i := first; i < iter; i++ {
				if w.passClear[i] {
					return false, nil
				}
			}
			return true, nil
		}
		w.maskSeen = append(w.maskSeen, cm)
		w.isoSeen = append(w.isoSeen, v)
		clearThisPass := cm == full
		for i := range w.cycle {
			e := &w.cycle[i]
			if e.movesCW|e.movesCCW == 0 {
				v = v.compose(e.iso.inverse(w.n), w.n)
				continue
			}
			mcw, mccw := v.moveMasks(e.movesCW, e.movesCCW, w.n)
			v = v.compose(e.iso.inverse(w.n), w.n)
			cm = contApply(cm, mcw, mccw, v.nodeMask(w.states[e.to].occupied, w.n), w.n)
			if cm == full {
				clearThisPass = true
			}
		}
		w.passClear = append(w.passClear, clearThisPass)
	}
	return false, nil // defensive: pass budget exhausted without repetition
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// pathRevisits reports whether the candidate loop w.path (closing back
// at target) visits any state twice — the only candidates worth
// validating in the bounded-multiplicity hunt. Paths are at most
// revisitLengthCap long, so the quadratic scan is a handful of word
// compares.
func (w *searcher) pathRevisits(target int32) bool {
	for i := range w.path {
		if w.path[i].to == target {
			return true
		}
		for j := i + 1; j < len(w.path); j++ {
			if w.path[j].to == w.path[i].to {
				return true
			}
		}
	}
	return false
}
