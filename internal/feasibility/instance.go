package feasibility

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Instance is the canonical identity of a solve: every parameter that
// determines the verdict, and nothing that doesn't. Workers and
// MaxExpansions are deliberately absent — they change wall time and
// where a drain suspends, never the verdict — so a verdict computed
// under one budget or worker count is valid for every other. A
// content-addressed verdict store (internal/service) keys on
// Instance.Key, which also folds in SolverVersion: a semantics bump
// silently retires every stored verdict and checkpoint instead of
// serving stale answers.
type Instance struct {
	N, K          int
	MaxCycleLen   int
	PendingTiers  []int
	NoQuotient    bool
	NoIncremental bool
	NoPrune       bool
}

// InstanceOf captures the solver's verdict-determining parameters in
// normalized form (defaults filled in, tier ladder copied).
func (s *Solver) InstanceOf() Instance {
	return Instance{
		N:             s.N,
		K:             s.K,
		MaxCycleLen:   s.MaxCycleLen,
		PendingTiers:  append([]int(nil), s.PendingTiers...),
		NoQuotient:    s.NoQuotient,
		NoIncremental: s.NoIncremental,
		NoPrune:       s.NoPrune,
	}.Normalized()
}

// Normalized fills the solver defaults (MaxCycleLen 24, tier ladder
// {0, 2}) so that equal games get equal keys regardless of whether the
// caller spelled the defaults out.
func (inst Instance) Normalized() Instance {
	if inst.MaxCycleLen == 0 {
		inst.MaxCycleLen = 24
	}
	if len(inst.PendingTiers) == 0 {
		inst.PendingTiers = []int{0, 2}
	} else {
		inst.PendingTiers = append([]int(nil), inst.PendingTiers...)
	}
	return inst
}

// Validate reports every problem with the instance at once (one
// aggregated error, errors.Join), not just the first — the fail-fast
// contract service request validation and the CLIs rely on.
func (inst Instance) Validate() error {
	inst = inst.Normalized()
	var errs []error
	if inst.N < 3 || inst.N > maxRingSize {
		errs = append(errs, fmt.Errorf("ring size n=%d out of range [3, %d]", inst.N, maxRingSize))
	}
	if inst.K < 1 || inst.K >= inst.N {
		errs = append(errs, fmt.Errorf("robot count k=%d out of range [1, n-1] for n=%d", inst.K, inst.N))
	}
	if inst.MaxCycleLen < 2 {
		errs = append(errs, fmt.Errorf("MaxCycleLen %d below minimum 2", inst.MaxCycleLen))
	}
	for i, t := range inst.PendingTiers {
		if t < 0 {
			errs = append(errs, fmt.Errorf("pending tier %d is negative (%d)", i, t))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("feasibility: invalid instance: %w", errors.Join(errs...))
	}
	return nil
}

// Solver builds a solver for the instance with the package defaults
// for everything outside the instance identity (budget, worker count).
func (inst Instance) Solver() *Solver {
	inst = inst.Normalized()
	s := NewSolver(inst.N, inst.K)
	s.MaxCycleLen = inst.MaxCycleLen
	s.PendingTiers = append([]int(nil), inst.PendingTiers...)
	s.NoQuotient = inst.NoQuotient
	s.NoIncremental = inst.NoIncremental
	s.NoPrune = inst.NoPrune
	return s
}

// appendCanonical emits the deterministic byte encoding Key hashes:
// solver version, ring parameters, mode flags, tier ladder.
func (inst Instance) appendCanonical(b []byte) []byte {
	inst = inst.Normalized()
	b = binary.AppendUvarint(b, uint64(len(SolverVersion)))
	b = append(b, SolverVersion...)
	b = binary.AppendUvarint(b, uint64(inst.N))
	b = binary.AppendUvarint(b, uint64(inst.K))
	b = binary.AppendUvarint(b, uint64(inst.MaxCycleLen))
	var flags byte
	if inst.NoQuotient {
		flags |= 1
	}
	if inst.NoIncremental {
		flags |= 2
	}
	if inst.NoPrune {
		flags |= 4
	}
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(len(inst.PendingTiers)))
	for _, t := range inst.PendingTiers {
		b = binary.AppendUvarint(b, uint64(t))
	}
	return b
}

// Key returns the 32-byte content address of the instance (as a raw
// string usable as a map key): SHA-256 over the canonical encoding.
// Two solvers share a key exactly when their verdicts are
// interchangeable and their checkpoints mutually resumable.
func (inst Instance) Key() string {
	sum := sha256.Sum256(inst.appendCanonical(nil))
	return string(sum[:])
}

// String renders the instance for logs and error messages.
func (inst Instance) String() string {
	inst = inst.Normalized()
	return fmt.Sprintf("(k=%d,n=%d,cyc=%d,tiers=%v,q=%t,i=%t,p=%t)",
		inst.K, inst.N, inst.MaxCycleLen, inst.PendingTiers,
		!inst.NoQuotient, !inst.NoIncremental, !inst.NoPrune)
}

// Matches reports whether the checkpoint was written by a drain of
// exactly this instance under the current SolverVersion — the
// precondition for Resume to accept it. The verdict store keys
// checkpoints by Instance.Key, which covers the same fields, so a
// mismatch indicates store corruption rather than a routine condition.
func (ck *Checkpoint) Matches(inst Instance) bool {
	if ck == nil {
		return false
	}
	inst = inst.Normalized()
	if ck.version != SolverVersion || ck.n != inst.N || ck.k != inst.K || ck.maxCycleLen != inst.MaxCycleLen {
		return false
	}
	if ck.noQuotient != inst.NoQuotient || ck.noIncremental != inst.NoIncremental || ck.noPrune != inst.NoPrune {
		return false
	}
	if len(ck.pendingTiers) != len(inst.PendingTiers) {
		return false
	}
	for i, t := range inst.PendingTiers {
		if ck.pendingTiers[i] != t {
			return false
		}
	}
	return true
}
