package feasibility

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// drainToVerdict runs a fresh solver from mk under its (deliberately
// starved) budget, then chains Resume calls — marshaling and
// unmarshaling the checkpoint at every hop, since the journaled path is
// the one that must work — until the drain reaches a verdict. It
// returns the final result and the number of resumes taken.
func drainToVerdict(t *testing.T, mk func() *Solver) (Result, int) {
	t.Helper()
	s := mk()
	res, cp, err := s.SolveContext(context.Background())
	resumes := 0
	for err != nil {
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("resume %d: unexpected error: %v", resumes, err)
		}
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("resume %d: budget abort not wrapped in *BudgetError: %v", resumes, err)
		}
		if be.Units <= 0 {
			t.Fatalf("resume %d: BudgetError reports %d units spent", resumes, be.Units)
		}
		if cp == nil {
			t.Fatalf("resume %d: budget abort returned no checkpoint", resumes)
		}
		raw, merr := cp.MarshalBinary()
		if merr != nil {
			t.Fatalf("resume %d: marshal: %v", resumes, merr)
		}
		restored, uerr := UnmarshalCheckpoint(raw)
		if uerr != nil {
			t.Fatalf("resume %d: unmarshal: %v", resumes, uerr)
		}
		if resumes++; resumes > 500 {
			t.Fatalf("drain did not converge after %d resumes (budget below the cost of a single branch?)", resumes)
		}
		s = mk()
		res, cp, err = s.Resume(context.Background(), restored)
	}
	if cp != nil {
		t.Fatalf("verdict run still returned a checkpoint")
	}
	return res, resumes
}

func checkSameOutcome(t *testing.T, n, k int, label string, got, want Result) {
	t.Helper()
	if got.Impossible != want.Impossible || got.Tier != want.Tier {
		t.Errorf("(k=%d,n=%d) %s: verdict/tier (%v, %d) != uninterrupted (%v, %d)",
			k, n, label, got.Impossible, got.Tier, want.Impossible, want.Tier)
	}
	if got.TablesExplored != want.TablesExplored {
		t.Errorf("(k=%d,n=%d) %s: TablesExplored %d != uninterrupted %d",
			k, n, label, got.TablesExplored, want.TablesExplored)
	}
	if (got.SurvivorTable == nil) != (want.SurvivorTable == nil) {
		t.Errorf("(k=%d,n=%d) %s: survivor existence differs from uninterrupted run", k, n, label)
	}
	if got.SurvivorTable != nil && !survivorHolds(NewSolver(n, k), got.Tier, got.SurvivorTable) {
		t.Errorf("(k=%d,n=%d) %s: reported survivor does not survive re-analysis", k, n, label)
	}
}

// TestResumeAfterBudgetMatchesUninterrupted is the core crash-
// equivalence contract: a single-worker drain suspended by budget
// exhaustion and resumed (through serialized checkpoints) any number of
// times reaches the same verdict, tier, TablesExplored and a valid
// survivor, exactly as one uninterrupted run. Covers both impossibility
// verdicts and tier-escalating survivor cases.
func TestResumeAfterBudgetMatchesUninterrupted(t *testing.T) {
	cases := []struct {
		n, k    int
		budget  int
		noPrune bool
	}{
		// Budgets are a small fraction of each drain's total expansion
		// units, so every case suspends and resumes several times. The
		// NoPrune variant drains a much larger tree through the same
		// machinery (and exercises checkpoints without pruning state).
		{7, 3, 100, false}, {7, 4, 100, false}, {8, 5, 300, false},
		{7, 4, 300, true},
	}
	for _, tc := range cases {
		mk := func() *Solver {
			s := NewSolver(tc.n, tc.k)
			s.Workers = 1
			s.MaxExpansions = tc.budget
			s.NoPrune = tc.noPrune
			return s
		}
		full := mk()
		full.MaxExpansions = NewSolver(tc.n, tc.k).MaxExpansions
		straight, err := full.Solve()
		if err != nil {
			t.Fatalf("(k=%d,n=%d) uninterrupted: %v", tc.k, tc.n, err)
		}
		res, resumes := drainToVerdict(t, mk)
		checkSameOutcome(t, tc.n, tc.k, "budget-resume", res, straight)
		if resumes == 0 {
			t.Errorf("(k=%d,n=%d): budget %d never suspended the drain", tc.k, tc.n, tc.budget)
		}
		if res.ExpansionUnits <= 0 {
			t.Errorf("(k=%d,n=%d): cumulative ExpansionUnits not populated: %d", tc.k, tc.n, res.ExpansionUnits)
		}
		t.Logf("(k=%d,n=%d,noPrune=%v): %d resumes, %d tables, %d cumulative units",
			tc.k, tc.n, tc.noPrune, resumes, res.TablesExplored, res.ExpansionUnits)
	}
}

// TestResumeParallelWorkersVerdict pins the weaker multi-worker
// contract: a drain suspended under one worker count and resumed under
// another still reaches the same verdict and tier with a valid
// survivor (TablesExplored is schedule-dependent in parallel mode).
func TestResumeParallelWorkersVerdict(t *testing.T) {
	cases := []struct {
		n, k   int
		budget int
	}{{7, 3, 150}, {8, 5, 400}}
	for _, tc := range cases {
		straight := solveWorkers(t, tc.n, tc.k, 1)
		workers := 1
		res, _ := drainToVerdict(t, func() *Solver {
			s := NewSolver(tc.n, tc.k)
			s.Workers = workers
			s.MaxExpansions = tc.budget
			workers = 5 - workers // alternate 1 and 4 workers across resumes
			return s
		})
		if res.Impossible != straight.Impossible || res.Tier != straight.Tier {
			t.Errorf("(k=%d,n=%d) alternating workers: verdict/tier (%v, %d) != uninterrupted (%v, %d)",
				tc.k, tc.n, res.Impossible, res.Tier, straight.Impossible, straight.Tier)
		}
		if (res.SurvivorTable == nil) != (straight.SurvivorTable == nil) {
			t.Errorf("(k=%d,n=%d) alternating workers: survivor existence differs", tc.k, tc.n)
		}
		if res.SurvivorTable != nil && !survivorHolds(NewSolver(tc.n, tc.k), res.Tier, res.SurvivorTable) {
			t.Errorf("(k=%d,n=%d) alternating workers: survivor does not survive re-analysis", tc.k, tc.n)
		}
	}
}

// TestPeriodicCheckpointResume simulates a crash at every periodic
// checkpoint: a single-worker solve journals a checkpoint every few
// branches; resuming from each saved checkpoint must reach the same
// verdict, tier and TablesExplored as the uninterrupted run — the
// resume-from-kill-9 guarantee, minus the subprocess (fault_test.go
// adds the real SIGKILL).
func TestPeriodicCheckpointResume(t *testing.T) {
	cases := []struct{ n, k int }{{7, 3}, {7, 4}, {8, 5}}
	for _, tc := range cases {
		straight := solveWorkers(t, tc.n, tc.k, 1)
		var saved [][]byte
		s := NewSolver(tc.n, tc.k)
		s.Workers = 1
		s.CheckpointEvery = 3
		s.OnCheckpoint = func(cp *Checkpoint) error {
			raw, err := cp.MarshalBinary()
			if err != nil {
				return err
			}
			saved = append(saved, raw)
			return nil
		}
		res, cp, err := s.SolveContext(context.Background())
		if err != nil || cp != nil {
			t.Fatalf("(k=%d,n=%d): checkpointing solve failed: %v (cp=%v)", tc.k, tc.n, err, cp != nil)
		}
		// Periodic quiescing must not perturb the search itself.
		checkSameOutcome(t, tc.n, tc.k, "with-checkpointing", res, straight)
		if len(saved) == 0 {
			t.Fatalf("(k=%d,n=%d): no periodic checkpoints taken", tc.k, tc.n)
		}
		// Resume from several crash points: the first checkpoint, a
		// middle one, and the last.
		for _, idx := range []int{0, len(saved) / 2, len(saved) - 1} {
			ck, uerr := UnmarshalCheckpoint(saved[idx])
			if uerr != nil {
				t.Fatalf("(k=%d,n=%d) checkpoint %d: unmarshal: %v", tc.k, tc.n, idx, uerr)
			}
			s2 := NewSolver(tc.n, tc.k)
			s2.Workers = 1
			res2, cp2, err2 := s2.Resume(context.Background(), ck)
			if err2 != nil || cp2 != nil {
				t.Fatalf("(k=%d,n=%d) checkpoint %d: resume failed: %v", tc.k, tc.n, idx, err2)
			}
			checkSameOutcome(t, tc.n, tc.k, "crash-resume", res2, straight)
		}
		t.Logf("(k=%d,n=%d): %d periodic checkpoints", tc.k, tc.n, len(saved))
	}
}

// TestOnCheckpointErrorAborts pins the callback contract: an error from
// OnCheckpoint aborts the solve with that error (no checkpoint
// returned — the callback already holds the latest one).
func TestOnCheckpointErrorAborts(t *testing.T) {
	sentinel := errors.New("journal full")
	s := NewSolver(7, 4)
	s.Workers = 1
	s.CheckpointEvery = 2
	calls := 0
	s.OnCheckpoint = func(*Checkpoint) error {
		if calls++; calls == 3 {
			return sentinel
		}
		return nil
	}
	_, cp, err := s.SolveContext(context.Background())
	if !errors.Is(err, sentinel) {
		t.Fatalf("solve returned %v, want the OnCheckpoint error", err)
	}
	if cp != nil {
		t.Fatalf("OnCheckpoint abort returned a checkpoint")
	}
	if calls != 3 {
		t.Fatalf("OnCheckpoint called %d times after erroring on call 3", calls)
	}
}

// TestContextCancelSuspends checks clean suspension on cancellation: a
// cancelled solve returns ctx.Err() plus a resumable checkpoint, and
// the resumed drain reaches the uninterrupted verdict and tier.
func TestContextCancelSuspends(t *testing.T) {
	straight := solveWorkers(t, 7, 3, 1)
	ctx, cancel := context.WithCancel(context.Background())
	s := NewSolver(7, 3)
	s.Workers = 1
	s.BranchHook = func(done int64) {
		if done == 20 {
			cancel()
			// The context watcher lands the abort asynchronously; hold
			// the worker here until it has, so the suspension point is
			// deterministic for the assertions below.
			<-ctx.Done()
			time.Sleep(50 * time.Millisecond)
		}
	}
	res, cp, err := s.SolveContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled solve returned %v", err)
	}
	if cp == nil {
		t.Fatalf("cancelled solve returned no checkpoint")
	}
	if res.TablesExplored >= straight.TablesExplored {
		t.Fatalf("cancelled solve explored %d tables, full run %d", res.TablesExplored, straight.TablesExplored)
	}
	s2 := NewSolver(7, 3)
	s2.Workers = 1
	res2, cp2, err2 := s2.Resume(context.Background(), cp)
	if err2 != nil || cp2 != nil {
		t.Fatalf("resume after cancel failed: %v", err2)
	}
	// Cancellation can interrupt a refutation-closure cascade partway,
	// so only verdict-level equivalence is promised (the checkpoint
	// docs spell this out); TablesExplored equality is asserted only
	// for budget and periodic-checkpoint suspensions above.
	if res2.Impossible != straight.Impossible || res2.Tier != straight.Tier {
		t.Errorf("resume after cancel: verdict/tier (%v, %d) != uninterrupted (%v, %d)",
			res2.Impossible, res2.Tier, straight.Impossible, straight.Tier)
	}
	if res2.SurvivorTable != nil && !survivorHolds(NewSolver(7, 3), res2.Tier, res2.SurvivorTable) {
		t.Errorf("resume after cancel: survivor does not survive re-analysis")
	}
}

// TestCheckpointMarshalDeterministic pins the encoding: marshaling the
// same checkpoint twice, and re-marshaling after an unmarshal round
// trip, must produce identical bytes (the fault suite diffs journal
// records across runs).
func TestCheckpointMarshalDeterministic(t *testing.T) {
	s := NewSolver(7, 3)
	s.Workers = 1
	s.MaxExpansions = 400
	_, cp, err := s.SolveContext(context.Background())
	if !errors.Is(err, ErrBudget) || cp == nil {
		t.Fatalf("expected a budget suspension with checkpoint, got err=%v cp=%v", err, cp != nil)
	}
	a, err := cp.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	b, err := cp.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("two marshals of one checkpoint differ")
	}
	rt, err := UnmarshalCheckpoint(a)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	c, err := rt.MarshalBinary()
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(a, c) {
		t.Fatalf("marshal/unmarshal/marshal round trip is not byte-identical")
	}
	st := cp.Stats()
	if st.Version != SolverVersion || st.N != 7 || st.K != 3 || st.FrontierNodes == 0 {
		t.Fatalf("implausible checkpoint stats: %+v", st)
	}
	if st.FrontierDepthMin < 0 || st.FrontierDepthMax < st.FrontierDepthMin {
		t.Fatalf("implausible frontier depths: %+v", st)
	}
}

// TestResumeValidation pins validateFor: checkpoints from a different
// solver version, ring, mode set or tier ladder — and structurally
// empty or corrupt ones — must be refused, never silently resumed.
func TestResumeValidation(t *testing.T) {
	s := NewSolver(7, 3)
	s.Workers = 1
	s.MaxExpansions = 400
	_, cp, err := s.SolveContext(context.Background())
	if !errors.Is(err, ErrBudget) || cp == nil {
		t.Fatalf("expected a budget suspension with checkpoint, got err=%v", err)
	}
	ctx := context.Background()
	reject := func(label string, target *Solver, ck *Checkpoint) {
		t.Helper()
		if _, _, rerr := target.Resume(ctx, ck); rerr == nil {
			t.Errorf("%s: Resume accepted an incompatible checkpoint", label)
		}
	}
	reject("wrong n", NewSolver(8, 3), cp)
	reject("wrong k", NewSolver(7, 4), cp)
	oracle := NewSolver(7, 3)
	oracle.NoQuotient = true
	reject("mode mismatch", oracle, cp)
	ladder := NewSolver(7, 3)
	ladder.PendingTiers = []int{0}
	reject("tier ladder mismatch", ladder, cp)
	shortCycles := NewSolver(7, 3)
	shortCycles.MaxCycleLen = 5
	reject("MaxCycleLen mismatch", shortCycles, cp)

	stale := *cp
	stale.version = "ringrobots-solver-0"
	reject("stale version", NewSolver(7, 3), &stale)
	empty := *cp
	empty.frontier = nil
	reject("empty frontier", NewSolver(7, 3), &empty)

	raw, _ := cp.MarshalBinary()
	if _, uerr := UnmarshalCheckpoint(raw[:len(raw)/2]); uerr == nil {
		t.Errorf("truncated checkpoint decoded without error")
	}
	if _, uerr := UnmarshalCheckpoint(append(append([]byte(nil), raw...), 0)); uerr == nil {
		t.Errorf("trailing garbage decoded without error")
	}
	if _, uerr := UnmarshalCheckpoint([]byte("XXCP")); uerr == nil {
		t.Errorf("bad magic decoded without error")
	}
}
