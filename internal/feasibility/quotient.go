package feasibility

import (
	"math/bits"

	"ringrobots/internal/config"
)

// This file implements the symmetry quotient of the searcher's state
// graph. The game of §4.2 is played on an anonymous, unoriented ring,
// so every reachable position is equivalent to its 2n dihedral images:
// observations, legal-decision masks and win conditions are all
// invariant under rotating or reflecting the node labels. The searcher
// therefore canonicalizes every 192-bit state under the dihedral group
// before interning (config's bitmask Booth kernel on the occupied word,
// pending register as tie-break), shrinking the per-branch graph by up
// to 2n× — the frontier-compression follow-up of PR 2.
//
// The price is bookkeeping: an edge's activation and move bitmasks
// live in its *source's* canonical frame, and its target was renamed by
// the isometry that canonicalized it. Every edge therefore records that
// isometry, and the lasso checks (cycleIsFairAndBad) compose the
// records to lift a quotient cycle back to a genuine execution of the
// unquotiented game — see searcher.go.

// isom is a packed ring isometry: bits 0..4 the rotation r, bit 5 the
// reflection flag. It acts on node labels as u ↦ (u+r) mod n without
// the flag and u ↦ (r−u) mod n with it (reflect through node 0, then
// rotate by r). The zero value is the identity.
type isom uint8

const isoIdentity isom = 0

const isoReflectBit = 1 << 5

func isoOf(rot int, refl bool) isom {
	g := isom(rot)
	if refl {
		g |= isoReflectBit
	}
	return g
}

func (g isom) rot() int   { return int(g &^ isoReflectBit) }
func (g isom) refl() bool { return g&isoReflectBit != 0 }

// compose returns g∘h: apply h, then g.
func (g isom) compose(h isom, n int) isom {
	r := g.rot()
	if g.refl() {
		r -= h.rot()
	} else {
		r += h.rot()
	}
	r %= n
	if r < 0 {
		r += n
	}
	return isoOf(r, g.refl() != h.refl())
}

// inverse returns the isometry undoing g. Reflections are involutions;
// a rotation inverts to its complement.
func (g isom) inverse(n int) isom {
	if g.refl() {
		return g
	}
	return isoOf((n-g.rot())%n, false)
}

// node applies g to a node label.
func (g isom) node(u, n int) int {
	if g.refl() {
		v := (g.rot() - u) % n
		if v < 0 {
			v += n
		}
		return v
	}
	return (u + g.rot()) % n
}

// nodeMask applies g to a node bitmask.
func (g isom) nodeMask(m uint64, n int) uint64 {
	if g.refl() {
		return config.MaskRotate(config.MaskReflect(m, n), g.rot(), n)
	}
	return config.MaskRotate(m, g.rot(), n)
}

// edgeMask applies g to an edge bitmask. Edge e joins nodes e and e+1,
// so a rotation shifts edges like nodes, while the reflection u ↦ r−u
// sends edge e = {e, e+1} to {r−e−1, r−e} = edge (r−1−e) mod n.
func (g isom) edgeMask(m uint64, n int) uint64 {
	if g.refl() {
		return config.MaskRotate(config.MaskReflect(m, n), (g.rot()+n-1)%n, n)
	}
	return config.MaskRotate(m, g.rot(), n)
}

// moveMasks applies g to a (CW origins, CCW origins) traversal pair.
// Reflections reverse the ring's orientation, so the directions swap.
func (g isom) moveMasks(mcw, mccw uint64, n int) (uint64, uint64) {
	if g.refl() {
		return g.nodeMask(mccw, n), g.nodeMask(mcw, n)
	}
	return g.nodeMask(mcw, n), g.nodeMask(mccw, n)
}

// order returns the smallest m ≥ 1 with g^m = identity: 2 for every
// reflection, n/gcd(n,r) for a rotation by r.
func (g isom) order(n int) int {
	if g.refl() {
		return 2
	}
	r := g.rot()
	if r == 0 {
		return 1
	}
	return n / gcd(n, r)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// apply maps a whole game state through g: the occupied mask directly,
// the pending register pair by pair (directions flip under reflection).
func (g isom) apply(s state, n int) state {
	out := state{occupied: g.nodeMask(s.occupied, n)}
	for p := s.pending[0]; p != 0; {
		b := bits.TrailingZeros64(p)
		u := b >> 1
		code := (s.pending[0] >> uint(2*u)) & 3
		p &^= 3 << uint(2*u)
		if g.refl() {
			code ^= 3 // 1 (cw) ↔ 2 (ccw)
		}
		out.pending[0] |= code << uint(2*g.node(u, n))
	}
	return out
}

// pendingLess orders pending registers (for the canonical tie-break).
func pendingLess(a, b [2]uint64) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// occCanon is the memoizable part of a state's canonicalization: the
// canonical image of the occupied mask, the Booth representatives per
// orientation, which orientations realize the image, and the mask's
// rotational period (which generates the remaining realizers). One
// occCanon serves every pending register over the same occupancy.
type occCanon struct {
	canon    uint64
	rF, rR   uint8
	fwd, rev bool
	period   uint8
}

// computeOccCanon runs the bitmask Booth kernel on an occupied mask.
func computeOccCanon(occ uint64, n int) occCanon {
	sF := config.MaskLeastRotationStart(occ, n)
	rF := (n - sF) % n
	imgF := config.MaskRotate(occ, rF, n)
	rv := config.MaskReflect(occ, n)
	sR := config.MaskLeastRotationStart(rv, n)
	rR := (n - sR) % n
	imgR := config.MaskRotate(rv, rR, n)
	oc := occCanon{
		rF:     uint8(rF),
		rR:     uint8(rR),
		fwd:    !config.MaskLexLess(imgR, imgF),
		rev:    !config.MaskLexLess(imgF, imgR),
		period: uint8(config.MaskPeriod(occ, n)),
	}
	oc.canon = imgF
	if !oc.fwd {
		oc.canon = imgR
	}
	return oc
}

// canonicalize maps a state over this occupancy onto the class
// representative. Among the isometries realizing the canonical occupied
// image (several only for symmetric or periodic occupancies) the
// minimal transformed pending register breaks the tie, so equal-class
// states collapse to one representative even mid-Look.
func (oc *occCanon) canonicalize(s state, n int) (state, isom) {
	if !s.anyPending() {
		// The state is its occupied mask; any realizing isometry works
		// and the deterministic preference is unreflected first.
		if oc.fwd {
			return state{occupied: oc.canon}, isoOf(int(oc.rF), false)
		}
		return state{occupied: oc.canon}, isoOf(int(oc.rR), true)
	}
	p := int(oc.period)
	var best state
	var bestIso isom
	first := true
	try := func(g isom) {
		cand := g.apply(s, n)
		if first || pendingLess(cand.pending, best.pending) {
			best, bestIso, first = cand, g, false
		}
	}
	if oc.fwd {
		for r := int(oc.rF) % p; r < n; r += p {
			try(isoOf(r, false))
		}
	}
	if oc.rev {
		for r := int(oc.rR) % p; r < n; r += p {
			try(isoOf(r, true))
		}
	}
	return best, bestIso
}

// canonState returns the canonical representative of s under the 2n
// ring isometries and the isometry g with g(s) = canonical. The
// searcher's hot path goes through its per-worker cache instead
// (searcher.canonState); this entry point serves start-state
// canonicalization and the tests.
func canonState(s state, n int) (state, isom) {
	oc := computeOccCanon(s.occupied, n)
	return oc.canonicalize(s, n)
}
