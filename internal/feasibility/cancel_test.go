package feasibility

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestCancelAtRandomizedPoints sweeps context cancellation across the
// search: the hook cancels after a randomized number of branches, and
// each trial asserts the suspension contract end to end — the solve
// returns promptly (within one branch of the cancel point, not after
// finishing the tree), the checkpoint round-trips bit-stably through
// encode/decode, and resuming it reaches the uninterrupted verdict.
// This is the mid-solve counterpart of TestContextCancelSuspends, which
// pins one cancel point; here the point moves so early (frontier nearly
// empty), middle, and late (refutation cascade in flight) suspensions
// all get crossed.
func TestCancelAtRandomizedPoints(t *testing.T) {
	const n, k = 7, 3
	straight := solveWorkers(t, n, k, 1)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 6; trial++ {
		cancelAt := int64(1 + rng.Intn(25))
		ctx, cancel := context.WithCancel(context.Background())
		s := NewSolver(n, k)
		s.Workers = 1
		s.BranchHook = func(done int64) {
			if done == cancelAt {
				cancel()
				// As in TestContextCancelSuspends: the context watcher
				// lands the abort asynchronously, so hold this branch
				// until it has — the suspension point is then exact.
				<-ctx.Done()
				time.Sleep(50 * time.Millisecond)
			}
		}
		res, cp, err := s.SolveContext(ctx)
		cancel()
		if err == nil {
			// The tree drained before the cancel landed (possible only
			// when cancelAt is at the very end): a full verdict, which
			// must match the uninterrupted run.
			if cp != nil {
				t.Fatalf("trial %d: verdict run returned a checkpoint", trial)
			}
			checkSameOutcome(t, n, k, "late cancel", res, straight)
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d (cancel at %d): returned %v, want context.Canceled", trial, cancelAt, err)
		}
		if cp == nil {
			t.Fatalf("trial %d (cancel at %d): cancelled solve returned no checkpoint", trial, cancelAt)
		}
		// Promptness: the solver must stop within one branch of the
		// cancel, not run the remaining tree before noticing.
		if res.TablesExplored > int(cancelAt)+1 {
			t.Errorf("trial %d: cancel at branch %d but %d tables explored before returning",
				trial, cancelAt, res.TablesExplored)
		}
		// The returned checkpoint round-trips bit-stably.
		raw, merr := cp.MarshalBinary()
		if merr != nil {
			t.Fatalf("trial %d: marshal checkpoint: %v", trial, merr)
		}
		restored, uerr := UnmarshalCheckpoint(raw)
		if uerr != nil {
			t.Fatalf("trial %d: unmarshal checkpoint: %v", trial, uerr)
		}
		raw2, merr := restored.MarshalBinary()
		if merr != nil {
			t.Fatalf("trial %d: re-marshal checkpoint: %v", trial, merr)
		}
		if !bytes.Equal(raw, raw2) {
			t.Fatalf("trial %d: checkpoint encode/decode/encode is not bit-stable", trial)
		}
		// Resuming the decoded checkpoint completes to the uninterrupted
		// verdict. TablesExplored is deliberately not compared:
		// cancellation may interrupt a refutation-closure cascade
		// partway (see TestContextCancelSuspends), unlike budget
		// suspensions which stop at clean branch boundaries.
		s2 := NewSolver(n, k)
		s2.Workers = 1
		res2, cp2, err2 := s2.Resume(context.Background(), restored)
		if err2 != nil || cp2 != nil {
			t.Fatalf("trial %d: resume after cancel: err=%v cp=%v", trial, err2, cp2)
		}
		if res2.Impossible != straight.Impossible || res2.Tier != straight.Tier {
			t.Errorf("trial %d (cancel at %d): resumed verdict/tier (%v, %d) != uninterrupted (%v, %d)",
				trial, cancelAt, res2.Impossible, res2.Tier, straight.Impossible, straight.Tier)
		}
		if res2.SurvivorTable != nil && !survivorHolds(NewSolver(n, k), res2.Tier, res2.SurvivorTable) {
			t.Errorf("trial %d: resumed survivor does not survive re-analysis", trial)
		}
	}
}
