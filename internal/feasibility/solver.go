// Package feasibility mechanizes the paper's impossibility results
// (§4.2): a strategy-synthesis game solver proving that no min-CORDA
// algorithm solves exclusive perpetual graph searching for given (k, n),
// and a configuration-transition generator regenerating Figures 4–9.
//
// # The game
//
// An oblivious, anonymous, uniform algorithm is exactly a decision table
// from observations (the unordered pair of directional views a robot
// perceives) to decisions (stay / move along the smaller view / move
// along the larger view / adversary-resolved move when the views
// coincide). The solver plays the following game:
//
//   - The algorithm player commits table entries lazily, the first time
//     the adversary activates a robot whose observation is not yet in the
//     table (entries are global: once fixed, every later activation with
//     the same observation reuses them — obliviousness).
//   - The adversary picks the initial configuration, interleaves the
//     Look+Compute and Move halves of robot cycles arbitrarily (full
//     asynchrony: a computed move can be held pending while other robots
//     act — Theorem 5's (5,9) case needs exactly this), and resolves the
//     directions of robots whose two views coincide.
//
// The adversary wins if it forces a collision (a move onto an occupied
// node), or an infinite fair execution in which the ring is completely
// clear at most finitely often: concretely, a reachable lasso whose loop
// can be scheduled fairly (every robot completes Look-Compute-Move cycles
// infinitely often) and whose contamination evolution — simulated
// faithfully from the fully-contaminated initial ring through the lasso's
// stem — never passes the all-edges-clear state once looping. If the
// adversary wins against every completion of the table, no oblivious
// algorithm solves exclusive perpetual graph searching for that (k, n).
//
// # Architecture
//
// The state space is (occupied node set, pending moves), packed into a
// 192-bit comparable value supporting rings up to n = 32. The branches
// of the decision-table search are independent subproblems: Solve
// dispatches them to a bounded worker pool over a shared LIFO queue,
// with copy-on-write table chains (siblings share their prefix) and
// fail-fast cancellation the moment any worker finds a surviving table.
// Per-configuration observations are memoized in a sharded concurrent
// cache keyed by occupied mask, shared by all branches and tiers. Each
// worker owns a state-interning search engine (state → dense id,
// slice-backed adjacency, bitmask edges and contamination) whose buffers
// are reused across all branches the worker processes — see searcher.go.
//
// The ring is anonymous and unoriented, so the game is invariant under
// its 2n dihedral isometries: by default every state is canonicalized
// (bitmask Booth kernel from internal/config, pending register as
// tie-break) before interning, compressing each branch's graph by up to
// 2n× and keying the observation cache by canonical masks only. Edges
// record the isometry that renamed their target; the starvation-lasso
// checks compose those records to lift quotient cycles back to genuine
// executions — see quotient.go. Solver.NoQuotient retains the verbatim
// searcher as the differential oracle. For the paper's finite cases
// (n ≤ 9) the per-branch graphs are small enough for exhaustive search.
//
// Sibling branches differ from their parent by exactly one table entry,
// so by default a branching analysis is published as a snapshot and
// each child re-expands only the frontier its new entry unlocks,
// replaying stem contaminations canonically and re-hunting starvation
// lassos only in components the entry could have changed — see
// incremental.go. Solver.NoIncremental retains full re-analysis as the
// second differential oracle. The state interner behind both modes is
// an epoch-stamped open-addressing table (interntable.go) whose branch
// reset is O(1) and whose image snapshots by memcpy.
//
// Above the per-branch engines sits a tree-level pruning layer
// (prune.go): branching observations are chosen by a refutation-guided
// score (most waiting states plus learned refutation credits) instead
// of blind fan-out order, child branches whose new binding hands the
// adversary an immediate win are refuted before they are enqueued, and
// refuted subtables are memoized as nogoods that refute any later
// superset table across workers and tiers. Solver.NoPrune retains the
// unpruned search as the third differential oracle.
package feasibility

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"ringrobots/internal/config"
	"ringrobots/internal/ring"
)

// Decision is an algorithm table entry.
type Decision int

const (
	// DStay keeps the robot idle.
	DStay Decision = iota
	// DTowardLo moves along the direction whose view is lexicographically
	// smaller.
	DTowardLo
	// DTowardHi moves along the other direction.
	DTowardHi
	// DEither moves in an adversary-chosen direction (the only moving
	// decision available to a robot whose two views coincide).
	DEither
)

func (d Decision) String() string {
	switch d {
	case DStay:
		return "stay"
	case DTowardLo:
		return "toward-lo"
	case DTowardHi:
		return "toward-hi"
	case DEither:
		return "either"
	}
	return fmt.Sprintf("Decision(%d)", int(d))
}

// ObsKey identifies an observation: the unordered pair of directional
// views a robot perceives, as compact comparable keys. It replaces the
// former "(lo)|(hi)" string keys: hashing two words is far cheaper than
// building and hashing a formatted string in every table lookup.
type ObsKey struct {
	Lo, Hi config.CanonKey
}

// Less orders observations deterministically (for reproducible
// branching order in the table search).
func (o ObsKey) Less(p ObsKey) bool {
	if o.Lo != p.Lo {
		return o.Lo.Less(p.Lo)
	}
	return o.Hi.Less(p.Hi)
}

func (o ObsKey) String() string {
	return o.Lo.String() + "|" + o.Hi.String()
}

// Table is a partial oblivious algorithm: observation → decision. The
// search never clones tables: branches are copy-on-write tableNode
// chains, materialized into a per-worker scratch map once per analyze.
type Table map[ObsKey]Decision

// obsOf builds the observation of the robot at node u: the unordered
// pair of its directional views, the direction realizing the smaller
// view, and the bitmask of the algorithm player's legal decisions for
// it (computed here, while the actual views are at hand, so that no
// later stage ever needs to parse a key back into views).
func obsOf(c config.Config, u int) (ObsKey, ring.Direction, uint8) {
	cw := c.ViewFrom(u, ring.CW)
	ccw := c.ViewFrom(u, ring.CCW)
	lo, hi, loDir := cw, ccw, ring.CW
	if ccw.Less(cw) {
		lo, hi, loDir = ccw, cw, ring.CCW
	}
	// Moves onto occupied nodes are omitted: executing one is an
	// immediate collision, so they are strictly dominated.
	mask := uint8(1) << uint(DStay)
	if lo.Equal(hi) {
		if lo[0] > 0 {
			mask |= 1 << uint(DEither)
		}
	} else {
		if lo[0] > 0 {
			mask |= 1 << uint(DTowardLo)
		}
		if hi[0] > 0 {
			mask |= 1 << uint(DTowardHi)
		}
	}
	return ObsKey{Lo: config.KeyOf(lo), Hi: config.KeyOf(hi)}, loDir, mask
}

// decisionsFromMask expands a legal-decision bitmask in the fixed
// enumeration order (Stay, TowardLo, TowardHi, Either). The solver's hot
// branch path iterates masks inline; this helper serves diagnostics and
// tests.
func decisionsFromMask(mask uint8) []Decision {
	out := make([]Decision, 0, bits.OnesCount8(mask))
	for d := DStay; d <= DEither; d++ {
		if mask&(1<<uint(d)) != 0 {
			out = append(out, d)
		}
	}
	return out
}

// obsInfo is one robot's cached observation in a configuration.
type obsInfo struct {
	node  int
	obs   ObsKey
	loDir ring.Direction
	legal uint8 // bitmask of legal decisions for this observation
}

// ErrBudget is the sentinel for an exhausted search budget (no
// verdict). Errors returned by Solve wrap it in a *BudgetError carrying
// the aborted tier and the expansion units spent there; match with
// errors.Is(err, ErrBudget), never by identity.
var ErrBudget = errors.New("feasibility: search budget exhausted")

// BudgetError is the wrapped form of ErrBudget the solver returns: it
// records which pending tier ran out and how many expansion units that
// tier had charged when the budget tripped (this run only — cumulative
// units across checkpointed resumes live in Result.ExpansionUnits).
type BudgetError struct {
	Tier  int
	Units int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("feasibility: search budget exhausted at tier %d after %d expansion units", e.Tier, e.Units)
}

func (e *BudgetError) Unwrap() error { return ErrBudget }

// SolverVersion tags checkpoints with the search semantics that
// produced them. Resume is only bit-deterministic against the exact
// search that wrote the checkpoint, so Resume refuses checkpoints
// carrying another version string. Bump it whenever branching order,
// pruning, quotienting, per-branch analysis, or the checkpoint
// encoding changes.
const SolverVersion = "ringrobots-solver-6"

// Solver searches for an adversary win against every algorithm table.
//
// Solve escalates through adversary tiers. Tier 0 uses fused atomic
// activations (Look+Compute+Move in one step) of single robots and of
// groups of robots sharing one observation — the semi-synchronous
// adversary that most of the paper's proofs use. Tier 1 additionally
// lets the adversary hold up to PendingLimit computed moves while other
// robots act — the fully asynchronous trick of Theorem 5's (5,9) case.
// Every tier is a restriction of the real asynchronous adversary, so an
// impossibility verdict at any tier is sound; a survivor escalates.
type Solver struct {
	N, K int
	// MaxExpansions bounds graph work per tier (cumulative across table
	// branches and workers); exceeding it aborts with ErrBudget rather
	// than returning a wrong verdict.
	MaxExpansions int
	// MaxCycleLen bounds the length of candidate starvation loops.
	MaxCycleLen int
	// PendingTiers lists the pending-move allowances tried in order;
	// defaults to {0, 2}.
	PendingTiers []int
	// Workers is the size of the table-search worker pool; 0 or negative
	// means GOMAXPROCS. The verdict and tier are identical for any worker
	// count (the decision tree is explored exhaustively unless a survivor
	// cancels it); only wall time and the identity of the surviving table
	// may differ.
	Workers int
	// NoQuotient disables the dihedral symmetry quotient: states are
	// interned verbatim instead of canonically under the ring's 2n
	// isometries. The game is invariant under those isometries, so the
	// quotiented search (the default) reaches the same verdicts with up
	// to 2n× fewer interned states per branch; the unquotiented searcher
	// is retained as the differential oracle (quotient_test.go).
	NoQuotient bool
	// NoIncremental disables incremental sibling-branch re-analysis:
	// every branch rebuilds its reachable graph from scratch instead of
	// adopting the parent branch's snapshot and re-expanding only the
	// frontier its one new table entry unlocks (incremental.go). A
	// branch's analysis outputs are identical in both modes — the
	// full-reanalysis path is the differential oracle pinning verdict,
	// tier and survivor agreement (incremental_test.go), exactly as
	// NoQuotient does for the symmetry quotient. Orthogonal to
	// NoQuotient: all four mode combinations are valid.
	NoIncremental bool
	// NoPrune disables the tree-level pruning layer (prune.go): the
	// refutation-guided branching order falls back to the historical
	// fewest-legal-decisions choice, and no child branch is refuted
	// without analysis by the dominance probe or the subtable nogood
	// memo. Every prune is a branch the unpruned search provably
	// refutes, so the two modes agree on verdict, tier and survivor
	// validity — prune_test.go pins that contract, making this the
	// third differential oracle alongside NoQuotient and NoIncremental.
	// With pruning on, the explored tree is (often drastically)
	// smaller, so TablesExplored and the work counters differ by
	// design.
	NoPrune bool
	// noCollisionOrder disables the collision-likelihood ordering of
	// dirty-state re-expansion (incremental.go), falling back to pure
	// discovery order. Test hook: the per-branch outputs are identical
	// either way, which incremental_test.go pins.
	noCollisionOrder bool

	// CheckpointEvery, when positive (and OnCheckpoint set), quiesces
	// the table search every that many processed branches and hands a
	// checkpoint of the live drain to OnCheckpoint. With one worker the
	// quiesce points — and therefore the checkpoints — are
	// deterministic.
	CheckpointEvery int
	// OnCheckpoint receives each periodic checkpoint (checkpoint.go),
	// typically to append it to a journal. It runs on a worker
	// goroutine while the search is quiesced; returning an error aborts
	// the solve with that error.
	OnCheckpoint func(*Checkpoint) error
	// BranchHook, when non-nil, is called by workers after every
	// processed branch with the cumulative count of branches this tier.
	// It is the crashpoint hook of the fault-injection suite (and of
	// cmd/drain's crash modes); production solves leave it nil.
	BranchHook func(int64)
	// StopAfterTier makes Solve/Resume return at the end of the first
	// tier it runs instead of escalating the ladder on a survivor. A
	// sharded drain (partition.go) needs this: each shard settles only
	// its own subtree at the checkpoint's tier, and the coordinator's
	// merge step — which alone sees every shard — decides escalation.
	StopAfterTier bool

	// obsCache memoizes per-configuration observations across all table
	// branches, tiers and workers, sharded by occupied mask.
	obsCache *obsCache

	// lastPrune retains the most recent solve's pruning state so
	// PruneExport (partition.go) can ship learned nogoods and credits
	// from a finished shard back to the drain-pool coordinator.
	lastPrune *pruneState
}

// NewSolver returns a solver with defaults suitable for n ≤ 9: the
// budget covers even the deepest Theorem 5 cases, (4,9) and (5,9), which
// the interned engine finishes in seconds.
func NewSolver(n, k int) *Solver {
	return &Solver{N: n, K: k, MaxExpansions: 250_000_000, MaxCycleLen: 24, PendingTiers: []int{0, 2}}
}

// Result reports a Solve outcome.
type Result struct {
	// Impossible is true when the adversary beats every table.
	Impossible bool
	// Tier is the pending-move allowance at which the verdict was reached.
	Tier int
	// SurvivorTable holds a table the adversary failed to beat (when
	// Impossible is false) — a candidate algorithm that survived the
	// strongest tier tried, not a proof of solvability. Under a parallel
	// search any of the surviving tables may be reported.
	SurvivorTable Table
	// TablesExplored counts decision-table branches examined (cumulative
	// over tiers; schedule-dependent under a parallel search, since the
	// first survivor cancels the remaining branches).
	TablesExplored int
	// StatesInterned sums the interned state-graph sizes over all
	// branches and tiers — the measure of the symmetry quotient's
	// frontier compression (schedule-dependent under a parallel search,
	// like TablesExplored). A branch's graph is the same whether built
	// fresh or inherited, so the metric is mode-independent.
	StatesInterned int64
	// StatesReexpanded counts expand() calls actually performed — in
	// incremental mode only dirty states and the unlocked frontier, with
	// full re-analysis every interned state — so the incremental reuse
	// compression is StatesReexpanded(NoIncremental) / StatesReexpanded.
	StatesReexpanded int64
	// BranchesReused counts table branches analyzed incrementally from
	// their parent's snapshot (all non-root branches unless
	// NoIncremental is set or a snapshot was dropped by cancellation).
	BranchesReused int64
	// TablesMemoHit counts child branches refuted without analysis by
	// the subtable nogood memo: their table contained an already-refuted
	// subtable (recorded at the same or a lower pending tier). Such
	// branches are never enqueued and do not reach TablesExplored.
	TablesMemoHit int64
	// BranchesDominated counts child branches refuted without analysis
	// by the dominance probe: their newly-bound decision handed the
	// adversary an immediate win (a colliding same-observation group
	// activation, or a Stay binding completing an all-stay deadlock on a
	// contaminated ring) at a state waiting on the observation. Never
	// enqueued, not part of TablesExplored.
	BranchesDominated int64
	// ExpansionUnits sums the expansion units charged against the
	// per-tier budgets, cumulative over tiers and — when the solve was
	// restored from a checkpoint — over every run of the drain. Each run
	// gets a fresh MaxExpansions allowance per tier; this counter is the
	// total the whole (possibly interrupted and resumed) drain spent.
	ExpansionUnits int64
}

// Solve decides whether exclusive perpetual graph searching with K robots
// on an N-node ring is impossible for every oblivious algorithm.
func (s *Solver) Solve() (Result, error) {
	res, _, err := s.solve(context.Background(), nil)
	return res, err
}

// SolveContext is Solve with cooperative suspension: cancelling ctx (or
// exhausting a tier's budget) stops the drain cleanly and, when the
// tier still has open branches, returns a Checkpoint capturing them —
// resumable later with Resume. The checkpoint is nil when the solve ran
// to a verdict or failed on a non-suspendable error.
func (s *Solver) SolveContext(ctx context.Context) (Result, *Checkpoint, error) {
	return s.solve(ctx, nil)
}

// Resume continues a suspended drain from a checkpoint, picking up the
// saved tier with the saved open frontier, pruning state and cumulative
// counters. The receiving solver must match the checkpoint's ring
// parameters, search-mode flags and SolverVersion (validateFor); the
// tier gets a fresh MaxExpansions allowance, which is how a journaled
// drain accumulates budget across runs. In single-worker mode a chain
// of budget suspensions and resumes reaches the same verdict, tier,
// survivor and TablesExplored as one uninterrupted run.
func (s *Solver) Resume(ctx context.Context, ck *Checkpoint) (Result, *Checkpoint, error) {
	if err := ck.validateFor(s); err != nil {
		return Result{}, nil, err
	}
	return s.solve(ctx, ck)
}

// suspendableErr reports whether an abort leaves a resumable frontier:
// budget exhaustion and context cancellation suspend; anything else
// (including an OnCheckpoint error — the callback already has the
// latest checkpoint) is terminal.
func suspendableErr(err error) bool {
	return errors.Is(err, ErrBudget) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// addCounters returns base plus the tier's counters so far. All fields
// are atomics, so the sum is exact whenever the pool is quiesced (the
// checkpoint barrier) or exited (tier end).
func addCounters(base Result, ts *tierSearch) Result {
	base.TablesExplored += int(ts.tables.Load())
	base.StatesInterned += ts.statesInterned.Load()
	base.StatesReexpanded += ts.statesReexpanded.Load()
	base.BranchesReused += ts.branchesReused.Load()
	base.TablesMemoHit += ts.memoHits.Load()
	base.BranchesDominated += ts.dominated.Load()
	base.ExpansionUnits += ts.expansions.Load()
	return base
}

func (s *Solver) solve(ctx context.Context, ck *Checkpoint) (Result, *Checkpoint, error) {
	if s.K < 1 || s.K >= s.N || s.N < 3 || s.N > maxRingSize {
		return Result{}, nil, fmt.Errorf("feasibility: solver supports 3 <= n <= %d, 1 <= k < n; got n=%d k=%d", maxRingSize, s.N, s.K)
	}
	tiers := s.PendingTiers
	if len(tiers) == 0 {
		tiers = []int{0, 2}
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if s.obsCache == nil || s.obsCache.n != s.N {
		s.obsCache = newObsCache(s.N)
	}
	starts := s.initialStates()
	// The pruning state spans the whole solve: refutation credits
	// learned at one tier order the next tier's branching, and nogoods
	// recorded at a lower pending limit remain valid at higher ones
	// (each record carries its limit, so a non-ascending PendingTiers
	// ladder stays sound too).
	var prune *pruneState
	if !s.NoPrune {
		prune = newPruneState()
	}
	s.lastPrune = prune

	res := Result{}
	startTier := 0
	// survivor tracks the latest tier's surviving table across the
	// ladder (and across suspensions): a checkpoint taken at tier i
	// must preserve the survivor that escalated tiers 0..i-1, or a
	// resumed drain whose final tier also survives would report the
	// wrong table — and a resumed drain that never re-runs the earlier
	// tiers would report none at all.
	var survivor Table
	if ck != nil {
		startTier = ck.tierIndex
		res = ck.counters
		survivor = ck.priorSurvivor()
		if prune != nil {
			prune.importState(ck.credits, ck.nogoods)
		}
	}
	for ti := startTier; ti < len(tiers); ti++ {
		limit := tiers[ti]
		resuming := ck != nil && ti == startTier
		if prune != nil && ti > 0 && !resuming {
			// Refutation credits are per-tier statistics: a different
			// pending allowance is a different game, and carrying tier-0
			// credits into tier 2 measurably poisons its branching order
			// ((5,9) explores 16–37× more tables with cross-tier credits).
			// The nogood memo, by contrast, stays — its records are
			// tagged with the limit they were refuted under and remain
			// sound at stronger tiers. When resuming, the imported
			// credits are the suspended tier's own statistics and must
			// survive.
			prune.resetCredits()
		}
		res.Tier = limit
		res.SurvivorTable = nil
		base := res
		ts := &tierSearch{
			n:              s.N,
			k:              s.K,
			pendingLimit:   limit,
			maxExpansions:  int64(s.MaxExpansions), // budget per tier (fresh per run)
			maxCycleLen:    s.MaxCycleLen,
			quotient:       !s.NoQuotient,
			incremental:    !s.NoIncremental,
			collisionOrder: !s.noCollisionOrder,
			prune:          prune,
			recordNogoods:  ti < len(tiers)-1,
			starts:         starts,
			obs:            s.obsCache,
			queue:          newWorkQueue(),
			ckptEvery:      int64(s.CheckpointEvery),
			branchHook:     s.BranchHook,
		}
		if resuming {
			// Restore the suspended frontier in its stored (bottom to
			// top) order, re-establishing the LIFO stack the suspension
			// drained. The nodes carry no snapshots, so each runs a full
			// analysis; per-branch outputs are identical either way (the
			// incremental differential contract), so the tree below them
			// — and TablesExplored — matches the uninterrupted run.
			frontier, err := ck.rebuildFrontier()
			if err != nil {
				return res, nil, err
			}
			for _, nd := range frontier {
				ts.queue.push(nd)
			}
		} else {
			ts.queue.push(&tableNode{}) // root: the empty table
		}
		ts.queue.workers = workers
		if s.CheckpointEvery > 0 && s.OnCheckpoint != nil {
			ts.queue.barrier = func(frontier []*tableNode) bool {
				cp := s.captureCheckpoint(tiers, ti, addCounters(base, ts), survivor, frontier, prune)
				if err := s.OnCheckpoint(cp); err != nil {
					ts.failQuiesced(err)
					return false
				}
				return true
			}
		}
		watchDone := make(chan struct{})
		if ctx.Done() != nil {
			go func() {
				select {
				case <-ctx.Done():
					ts.fail(ctx.Err())
				case <-watchDone:
				}
			}()
		}
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := newSearcher(ts)
				for {
					nd := ts.queue.pop()
					if nd == nil {
						return
					}
					w.process(nd)
					w.flush()
					ts.queue.finish()
					done := ts.done.Add(1)
					if ts.branchHook != nil {
						ts.branchHook(done)
					}
					if ts.ckptEvery > 0 && done%ts.ckptEvery == 0 {
						ts.queue.requestPause()
					}
				}
			}()
		}
		wg.Wait()
		close(watchDone)
		res = addCounters(base, ts)
		// A survivor settles the tier even if a racing worker exhausted
		// the budget on a branch the survivor made irrelevant: one table
		// the adversary cannot beat refutes impossibility regardless of
		// the unexplored remainder, so the verdict stays identical for
		// every worker count. An impossibility verdict, by contrast,
		// needs the whole tree drained, so any error voids it.
		if ts.survivor != nil {
			survivor = ts.survivor
			res.SurvivorTable = survivor
			if s.StopAfterTier {
				return res, nil, nil
			}
			continue // a survivor escalates to the next tier
		}
		if ts.err != nil {
			res.SurvivorTable = survivor // prior tiers' survivor, telemetry only
			err := ts.err
			if !suspendableErr(err) {
				return res, nil, err
			}
			// Suspension: the open frontier is the queue's remaining
			// stack plus any branches workers had popped but abandoned
			// mid-process (stacked on top — with one worker that is the
			// exact LIFO position the abort took them from).
			frontier := append(append([]*tableNode(nil), ts.queue.drainRemaining()...), ts.abandonedNodes()...)
			if len(frontier) == 0 {
				// The abort flag tripped at the final branch boundary —
				// after every branch had already completed and none were
				// abandoned (any branch interrupted mid-analysis lands in
				// the abandoned list). The tree is fully drained, so the
				// impossibility verdict is sound despite the late error;
				// without this, a drain whose budget trips exactly at
				// exhaustion could never converge across resumes.
				res.Impossible = true
				res.SurvivorTable = nil
				return res, nil, nil
			}
			cp := s.captureCheckpoint(tiers, ti, res, survivor, frontier, prune)
			if errors.Is(err, ErrBudget) {
				err = &BudgetError{Tier: limit, Units: ts.expansions.Load()}
			}
			return res, cp, err
		}
		res.Impossible = true
		res.SurvivorTable = nil
		return res, nil, nil
	}
	res.SurvivorTable = survivor
	return res, nil, nil
}

// initialStates returns one representative per equivalence class of
// exclusive configurations (the adversary picks the worst start).
func (s *Solver) initialStates() []state {
	seen := make(map[config.CanonKey]bool)
	var out []state
	nodes := make([]int, s.K)
	var rec func(idx, next int)
	rec = func(idx, next int) {
		if idx == s.K {
			c := config.MustNew(s.N, nodes...)
			key := c.CanonKey()
			if seen[key] {
				return
			}
			seen[key] = true
			var occ uint64
			for _, u := range nodes {
				occ |= 1 << uint(u)
			}
			out = append(out, state{occupied: occ})
			return
		}
		for u := next; u <= s.N-(s.K-idx); u++ {
			nodes[idx] = u
			rec(idx+1, u+1)
		}
	}
	nodes[0] = 0
	rec(1, 1)
	return out
}
