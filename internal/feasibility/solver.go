// Package feasibility mechanizes the paper's impossibility results
// (§4.2): a strategy-synthesis game solver proving that no min-CORDA
// algorithm solves exclusive perpetual graph searching for given (k, n),
// and a configuration-transition generator regenerating Figures 4–9.
//
// # The game
//
// An oblivious, anonymous, uniform algorithm is exactly a decision table
// from observations (the unordered pair of directional views a robot
// perceives) to decisions (stay / move along the smaller view / move
// along the larger view / adversary-resolved move when the views
// coincide). The solver plays the following game:
//
//   - The algorithm player commits table entries lazily, the first time
//     the adversary activates a robot whose observation is not yet in the
//     table (entries are global: once fixed, every later activation with
//     the same observation reuses them — obliviousness).
//   - The adversary picks the initial configuration, interleaves the
//     Look+Compute and Move halves of robot cycles arbitrarily (full
//     asynchrony: a computed move can be held pending while other robots
//     act — Theorem 5's (5,9) case needs exactly this), and resolves the
//     directions of robots whose two views coincide.
//
// The adversary wins if it forces a collision (a move onto an occupied
// node), or an infinite fair execution in which the ring is completely
// clear at most finitely often: concretely, a reachable lasso whose loop
// can be scheduled fairly (every robot completes Look-Compute-Move cycles
// infinitely often) and whose contamination evolution — simulated
// faithfully from the fully-contaminated initial ring through the lasso's
// stem — never passes the all-edges-clear state once looping. If the
// adversary wins against every completion of the table, no oblivious
// algorithm solves exclusive perpetual graph searching for that (k, n).
//
// The state space is (occupied node set, pending moves); for the paper's
// finite cases (n ≤ 9) it is small enough for exhaustive search.
package feasibility

import (
	"fmt"
	"math/bits"

	"ringrobots/internal/config"
	"ringrobots/internal/ring"
)

// Decision is an algorithm table entry.
type Decision int

const (
	// DStay keeps the robot idle.
	DStay Decision = iota
	// DTowardLo moves along the direction whose view is lexicographically
	// smaller.
	DTowardLo
	// DTowardHi moves along the other direction.
	DTowardHi
	// DEither moves in an adversary-chosen direction (the only moving
	// decision available to a robot whose two views coincide).
	DEither
)

func (d Decision) String() string {
	switch d {
	case DStay:
		return "stay"
	case DTowardLo:
		return "toward-lo"
	case DTowardHi:
		return "toward-hi"
	case DEither:
		return "either"
	}
	return fmt.Sprintf("Decision(%d)", int(d))
}

// ObsKey identifies an observation: the unordered pair of directional
// views a robot perceives, as compact comparable keys. It replaces the
// former "(lo)|(hi)" string keys: hashing two words is far cheaper than
// building and hashing a formatted string in every table lookup.
type ObsKey struct {
	Lo, Hi config.CanonKey
}

// Less orders observations deterministically (for reproducible
// branching order in the table search).
func (o ObsKey) Less(p ObsKey) bool {
	if o.Lo != p.Lo {
		return o.Lo.Less(p.Lo)
	}
	return o.Hi.Less(p.Hi)
}

func (o ObsKey) String() string {
	return o.Lo.String() + "|" + o.Hi.String()
}

// Table is a partial oblivious algorithm: observation → decision.
type Table map[ObsKey]Decision

// Clone copies the table.
func (t Table) Clone() Table {
	out := make(Table, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

// state is a game position: which nodes are occupied and which of them
// hold robots with a computed-but-unexecuted move.
type state struct {
	n        int
	occupied uint32 // bitmask over nodes
	pending  uint64 // 2 bits per node: 0 none, 1 cw, 2 ccw
}

func (s state) key() uint64 {
	return uint64(s.occupied) | s.pending<<32
}

func (s state) occupiedAt(u int) bool { return s.occupied&(1<<uint(u)) != 0 }

func (s state) pendingAt(u int) (ring.Direction, bool) {
	bits := (s.pending >> (2 * uint(u))) & 3
	switch bits {
	case 1:
		return ring.CW, true
	case 2:
		return ring.CCW, true
	}
	return 0, false
}

func (s state) withPending(u int, d ring.Direction) state {
	bits := uint64(1)
	if d == ring.CCW {
		bits = 2
	}
	s.pending |= bits << (2 * uint(u))
	return s
}

func (s state) clearPending(u int) state {
	s.pending &^= 3 << (2 * uint(u))
	return s
}

func (s state) config() config.Config {
	var nodes []int
	for u := 0; u < s.n; u++ {
		if s.occupiedAt(u) {
			nodes = append(nodes, u)
		}
	}
	return config.MustNew(s.n, nodes...)
}

// obsOf builds the observation of the robot at node u: the unordered
// pair of its directional views, the direction realizing the smaller
// view, and the bitmask of the algorithm player's legal decisions for
// it (computed here, while the actual views are at hand, so that no
// later stage ever needs to parse a key back into views).
func obsOf(c config.Config, u int) (ObsKey, ring.Direction, uint8) {
	cw := c.ViewFrom(u, ring.CW)
	ccw := c.ViewFrom(u, ring.CCW)
	lo, hi, loDir := cw, ccw, ring.CW
	if ccw.Less(cw) {
		lo, hi, loDir = ccw, cw, ring.CCW
	}
	// Moves onto occupied nodes are omitted: executing one is an
	// immediate collision, so they are strictly dominated.
	mask := uint8(1) << uint(DStay)
	if lo.Equal(hi) {
		if lo[0] > 0 {
			mask |= 1 << uint(DEither)
		}
	} else {
		if lo[0] > 0 {
			mask |= 1 << uint(DTowardLo)
		}
		if hi[0] > 0 {
			mask |= 1 << uint(DTowardHi)
		}
	}
	return ObsKey{Lo: config.KeyOf(lo), Hi: config.KeyOf(hi)}, loDir, mask
}

// decisionsFromMask expands a legal-decision bitmask in the fixed
// enumeration order (Stay, TowardLo, TowardHi, Either).
func decisionsFromMask(mask uint8) []Decision {
	out := make([]Decision, 0, bits.OnesCount8(mask))
	for d := DStay; d <= DEither; d++ {
		if mask&(1<<uint(d)) != 0 {
			out = append(out, d)
		}
	}
	return out
}

// movePair records one executed traversal.
type movePair struct{ from, to int }

// edge is one adversary scheduling step in the state graph: a single
// robot's Look (creating a pending move or completing a Stay cycle), a
// pending execution, a fused Look+Move, or the simultaneous fused
// activation of a group of robots sharing one observation.
type edge struct {
	to state
	// acts lists the nodes whose robots were activated or moved.
	acts []int
	// moves lists the traversals executed by this step (empty for pure
	// Looks and Stays).
	moves []movePair
	// stay marks a Look that resulted in a Stay decision (a complete
	// robot cycle without movement). Stay edges are self-loops; they are
	// excluded from cycle search and re-inserted by the fairness check.
	stay bool
}

// Solver searches for an adversary win against every algorithm table.
//
// Solve escalates through adversary tiers. Tier 0 uses fused atomic
// activations (Look+Compute+Move in one step) of single robots and of
// groups of robots sharing one observation — the semi-synchronous
// adversary that most of the paper's proofs use. Tier 1 additionally
// lets the adversary hold up to PendingLimit computed moves while other
// robots act — the fully asynchronous trick of Theorem 5's (5,9) case.
// Every tier is a restriction of the real asynchronous adversary, so an
// impossibility verdict at any tier is sound; a survivor escalates.
type Solver struct {
	N, K int
	// MaxExpansions bounds graph work per table branch; exceeding it
	// aborts with ErrBudget rather than returning a wrong verdict.
	MaxExpansions int
	// MaxCycleLen bounds the length of candidate starvation loops.
	MaxCycleLen int
	// PendingTiers lists the pending-move allowances tried in order;
	// defaults to {0, 2}.
	PendingTiers []int

	pendingLimit int
	expansions   int
	// obsCache memoizes per-configuration observations across all table
	// branches: occupied mask → per-node observation and Lo direction.
	obsCache map[uint32][]obsInfo
}

type obsInfo struct {
	node  int
	obs   ObsKey
	loDir ring.Direction
	legal uint8 // bitmask of legal decisions for this observation
}

// observations returns the cached observation list of a configuration.
func (s *Solver) observations(st state) []obsInfo {
	if s.obsCache == nil {
		s.obsCache = make(map[uint32][]obsInfo)
	}
	if cached, ok := s.obsCache[st.occupied]; ok {
		return cached
	}
	c := st.config()
	var out []obsInfo
	for u := 0; u < s.N; u++ {
		if !st.occupiedAt(u) {
			continue
		}
		obs, loDir, legal := obsOf(c, u)
		out = append(out, obsInfo{node: u, obs: obs, loDir: loDir, legal: legal})
	}
	s.obsCache[st.occupied] = out
	return out
}

// ErrBudget reports an exhausted search budget (no verdict).
var ErrBudget = fmt.Errorf("feasibility: search budget exhausted")

// NewSolver returns a solver with defaults suitable for n ≤ 9.
func NewSolver(n, k int) *Solver {
	return &Solver{N: n, K: k, MaxExpansions: 30_000_000, MaxCycleLen: 24, PendingTiers: []int{0, 2}}
}

// Result reports a Solve outcome.
type Result struct {
	// Impossible is true when the adversary beats every table.
	Impossible bool
	// Tier is the pending-move allowance at which the verdict was reached.
	Tier int
	// SurvivorTable holds a table the adversary failed to beat (when
	// Impossible is false) — a candidate algorithm that survived the
	// strongest tier tried, not a proof of solvability.
	SurvivorTable Table
	// TablesExplored counts decision-table branches examined (cumulative
	// over tiers).
	TablesExplored int
}

// Solve decides whether exclusive perpetual graph searching with K robots
// on an N-node ring is impossible for every oblivious algorithm.
func (s *Solver) Solve() (Result, error) {
	if s.K < 1 || s.K >= s.N || s.N < 3 || s.N > 16 {
		return Result{}, fmt.Errorf("feasibility: solver supports 3 <= n <= 16, 1 <= k < n; got n=%d k=%d", s.N, s.K)
	}
	tiers := s.PendingTiers
	if len(tiers) == 0 {
		tiers = []int{0, 2}
	}
	res := Result{}
	for _, limit := range tiers {
		s.pendingLimit = limit
		s.expansions = 0 // cumulative budget per tier
		res.Tier = limit
		res.SurvivorTable = nil
		table := make(Table)
		impossible, err := s.forAllTables(table, &res)
		if err != nil {
			return res, err
		}
		if impossible {
			res.Impossible = true
			return res, nil
		}
	}
	return res, nil
}

// forAllTables reports whether the adversary wins against every
// completion of the partial table.
func (s *Solver) forAllTables(table Table, res *Result) (bool, error) {
	res.TablesExplored++
	win, needed, legal, err := s.analyze(table)
	if err != nil {
		return false, err
	}
	if win {
		return true, nil
	}
	if legal == 0 {
		// Table fully determines all reachable behavior and the adversary
		// found no win: a surviving candidate algorithm.
		if res.SurvivorTable == nil {
			res.SurvivorTable = table.Clone()
		}
		return false, nil
	}
	for _, d := range decisionsFromMask(legal) {
		table[needed] = d
		ok, err := s.forAllTables(table, res)
		delete(table, needed)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// nodeInfo caches per-state expansion results.
type nodeInfo struct {
	edges []edge
	// stayable[u] is true when the robot at node u has a known Stay
	// decision in this state (used by the fairness check).
	stayable map[int]bool
	// unknown lists observations in this state missing from the table,
	// with their legal-decision masks.
	unknown []obsInfo
	// allStayDeadlock marks states where no robot has a pending move and
	// every robot's (known) decision is Stay with no unknowns.
	allStayDeadlock bool
}

// analyze explores the adversary-reachable state graph under a partial
// table. It returns win=true when a collision or a fair starvation lasso
// is forced using only defined entries; otherwise it reports an
// undefined observation (legal != 0) for the table search to branch on,
// or legal == 0 when the table already determines all behavior.
func (s *Solver) analyze(table Table) (win bool, needed ObsKey, legal uint8, err error) {
	starts := s.initialStates()
	seen := make(map[uint64]*contaminationSim) // stem contamination at discovery
	info := make(map[uint64]*nodeInfo)
	var order []state
	queue := make([]state, 0, len(starts))
	for _, st := range starts {
		if _, ok := seen[st.key()]; !ok {
			seen[st.key()] = newContaminationSim(s.N, st)
			queue = append(queue, st)
		}
	}
	neededSet := make(map[ObsKey]uint8)
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		order = append(order, st)
		s.expansions++
		if s.expansions > s.MaxExpansions {
			return false, ObsKey{}, 0, ErrBudget
		}
		ni, collision := s.expand(st, table)
		if collision {
			return true, ObsKey{}, 0, nil
		}
		for _, oi := range ni.unknown {
			neededSet[oi.obs] = oi.legal
		}
		info[st.key()] = ni
		if ni.allStayDeadlock && !seen[st.key()].allClear() {
			// Nothing ever moves again and the ring is not clear: a fair
			// (all robots cycle with Stay) starvation of the task.
			return true, ObsKey{}, 0, nil
		}
		for _, e := range ni.edges {
			if e.stay {
				continue
			}
			if _, ok := seen[e.to.key()]; !ok {
				cont := seen[st.key()].clone()
				cont.applyMoves(e.moves, e.to)
				seen[e.to.key()] = cont
				queue = append(queue, e.to)
			}
		}
	}
	// No collision, no deadlock win. Hunt for a fair starvation loop,
	// restricted to non-trivial strongly connected components of the
	// non-stay edge graph (only they can carry cycles) and with
	// iteratively deepened length caps (adversary wins are usually short).
	sccOf := s.sccs(order, info)
	for _, lengthCap := range []int{6, 12, s.MaxCycleLen} {
		for _, st := range order {
			if sccOf[st.key()] < 0 {
				continue // trivial component: no cycle through here
			}
			bad, err := s.findBadCycle(st, seen[st.key()], info, sccOf, lengthCap)
			if err != nil {
				return false, ObsKey{}, 0, err
			}
			if bad {
				return true, ObsKey{}, 0, nil
			}
		}
	}
	// Branch on the unresolved observation with the fewest legal
	// decisions: smallest fan-out first keeps the table tree narrow.
	var best ObsKey
	var bestMask uint8
	bestOptions := 1 << 30
	for obs, mask := range neededSet {
		opts := bits.OnesCount8(mask)
		if opts < bestOptions || (opts == bestOptions && obs.Less(best)) {
			best = obs
			bestMask = mask
			bestOptions = opts
		}
	}
	return false, best, bestMask, nil
}

// sccs labels every state with its strongly-connected-component id over
// non-stay edges, using -1 for states in trivial (single, non-cyclic)
// components. Iterative Tarjan.
func (s *Solver) sccs(order []state, info map[uint64]*nodeInfo) map[uint64]int {
	index := make(map[uint64]int, len(order))
	lowlink := make(map[uint64]int, len(order))
	onStack := make(map[uint64]bool, len(order))
	comp := make(map[uint64]int, len(order))
	compSize := make(map[int]int)
	var stack []uint64
	next := 0
	nComp := 0

	type frame struct {
		key  uint64
		st   state
		edge int
	}
	for _, root := range order {
		if _, ok := index[root.key()]; ok {
			continue
		}
		frames := []frame{{key: root.key(), st: root}}
		index[root.key()] = next
		lowlink[root.key()] = next
		next++
		stack = append(stack, root.key())
		onStack[root.key()] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			ni := info[f.key]
			advanced := false
			for f.edge < len(ni.edges) {
				e := ni.edges[f.edge]
				f.edge++
				if e.stay {
					continue
				}
				tk := e.to.key()
				if _, ok := index[tk]; !ok {
					index[tk] = next
					lowlink[tk] = next
					next++
					stack = append(stack, tk)
					onStack[tk] = true
					frames = append(frames, frame{key: tk, st: e.to})
					advanced = true
					break
				}
				if onStack[tk] && index[tk] < lowlink[f.key] {
					lowlink[f.key] = index[tk]
				}
				if lowlink[tk] < lowlink[f.key] && onStack[tk] {
					lowlink[f.key] = lowlink[tk]
				}
			}
			if advanced {
				continue
			}
			// Pop the frame.
			if len(frames) > 1 {
				pk := frames[len(frames)-2].key
				if lowlink[f.key] < lowlink[pk] {
					lowlink[pk] = lowlink[f.key]
				}
			}
			if lowlink[f.key] == index[f.key] {
				size := 0
				for {
					k := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[k] = false
					comp[k] = nComp
					size++
					if k == f.key {
						break
					}
				}
				compSize[nComp] = size
				nComp++
			}
			frames = frames[:len(frames)-1]
		}
	}
	out := make(map[uint64]int, len(order))
	for _, st := range order {
		c := comp[st.key()]
		if compSize[c] >= 2 {
			out[st.key()] = c
		} else {
			out[st.key()] = -1
		}
	}
	return out
}

// initialStates returns one representative per equivalence class of
// exclusive configurations (the adversary picks the worst start).
func (s *Solver) initialStates() []state {
	seen := make(map[config.CanonKey]bool)
	var out []state
	nodes := make([]int, s.K)
	var rec func(idx, next int)
	rec = func(idx, next int) {
		if idx == s.K {
			c := config.MustNew(s.N, nodes...)
			key := c.CanonKey()
			if seen[key] {
				return
			}
			seen[key] = true
			var occ uint32
			for _, u := range nodes {
				occ |= 1 << uint(u)
			}
			out = append(out, state{n: s.N, occupied: occ})
			return
		}
		for u := next; u <= s.N-(s.K-idx); u++ {
			nodes[idx] = u
			rec(idx+1, u+1)
		}
	}
	nodes[0] = 0
	rec(1, 1)
	return out
}

// expand lists the adversary's options at a state.
func (s *Solver) expand(st state, table Table) (ni *nodeInfo, collision bool) {
	r := ring.New(s.N)
	ni = &nodeInfo{stayable: make(map[int]bool)}
	unknowns := false
	movers := false
	pendingCount := 0

	// Pending executions (no table lookups needed).
	for u := 0; u < s.N; u++ {
		if !st.occupiedAt(u) {
			continue
		}
		dir, ok := st.pendingAt(u)
		if !ok {
			continue
		}
		pendingCount++
		movers = true
		to := r.Step(u, dir)
		if st.occupiedAt(to) {
			return nil, true
		}
		next := st.clearPending(u)
		next.occupied &^= 1 << uint(u)
		next.occupied |= 1 << uint(to)
		ni.edges = append(ni.edges, edge{to: next, acts: []int{u}, moves: []movePair{{u, to}}})
	}

	// Fused and pending Look+Compute actions, plus grouping by
	// observation for simultaneous activation of identical robots.
	groups := make(map[ObsKey][]obsInfo)
	for _, oi := range s.observations(st) {
		if _, hasPending := st.pendingAt(oi.node); hasPending {
			continue
		}
		d, known := table[oi.obs]
		if !known {
			unknowns = true
			ni.unknown = append(ni.unknown, oi)
			continue
		}
		if d == DStay {
			ni.stayable[oi.node] = true
			ni.edges = append(ni.edges, edge{to: st, acts: []int{oi.node}, stay: true})
			continue
		}
		movers = true
		groups[oi.obs] = append(groups[oi.obs], oi)
		// Fused single activation: Look+Compute+Move atomically.
		for _, dir := range s.decisionDirs(d, oi.loDir) {
			if e, coll := s.applyGroupMove(st, []obsInfo{oi}, []ring.Direction{dir}, r); coll {
				return nil, true
			} else if e != nil {
				ni.edges = append(ni.edges, *e)
			}
		}
		// Split Look (pending created, move later) when the tier allows.
		if pendingCount < s.pendingLimit {
			for _, dir := range s.decisionDirs(d, oi.loDir) {
				ni.edges = append(ni.edges, edge{to: st.withPending(oi.node, dir), acts: []int{oi.node}})
			}
		}
	}

	// Simultaneous fused activation of whole same-observation groups:
	// the adversary's classic symmetry exploit (Lemma 7, Theorem 4, the
	// B8 rotation of case (4,8)).
	for _, group := range groups {
		if len(group) < 2 {
			continue
		}
		d := table[group[0].obs]
		s.forEachDirCombo(d, group, nil, func(dirs []ring.Direction) bool {
			e, coll := s.applyGroupMove(st, group, dirs, r)
			if coll {
				collision = true
				return false
			}
			if e != nil {
				ni.edges = append(ni.edges, *e)
			}
			return true
		})
		if collision {
			return nil, true
		}
	}

	ni.allStayDeadlock = !unknowns && !movers
	return ni, false
}

// decisionDirs resolves a moving decision into candidate directions.
func (s *Solver) decisionDirs(d Decision, loDir ring.Direction) []ring.Direction {
	switch d {
	case DTowardLo:
		return []ring.Direction{loDir}
	case DTowardHi:
		return []ring.Direction{loDir.Opposite()}
	case DEither:
		return []ring.Direction{ring.CW, ring.CCW}
	}
	return nil
}

// forEachDirCombo enumerates the adversary's direction resolutions for a
// group of same-observation robots. Deterministic decisions contribute a
// single direction per robot; Either branches.
func (s *Solver) forEachDirCombo(d Decision, group []obsInfo, prefix []ring.Direction, f func([]ring.Direction) bool) bool {
	if len(prefix) == len(group) {
		return f(prefix)
	}
	for _, dir := range s.decisionDirs(d, group[len(prefix)].loDir) {
		if !s.forEachDirCombo(d, group, append(prefix, dir), f) {
			return false
		}
	}
	return true
}

// applyGroupMove executes the simultaneous moves of a set of robots.
// It reports a collision when two robots end on one node (including a
// mover landing on a non-mover). A simultaneous swap of adjacent robots
// is conservatively treated as legal (configuration unchanged), keeping
// the modeled adversary no stronger than the paper's.
func (s *Solver) applyGroupMove(st state, group []obsInfo, dirs []ring.Direction, r ring.Ring) (*edge, bool) {
	next := st
	var moves []movePair
	var acts []int
	targets := uint32(0)
	for i, oi := range group {
		to := r.Step(oi.node, dirs[i])
		if targets&(1<<uint(to)) != 0 {
			return nil, true // two movers on one node
		}
		targets |= 1 << uint(to)
		moves = append(moves, movePair{oi.node, to})
		acts = append(acts, oi.node)
	}
	// Remove origins, then add targets; overlap with a standing robot is
	// a collision.
	for _, m := range moves {
		next.occupied &^= 1 << uint(m.from)
	}
	for _, m := range moves {
		if next.occupied&(1<<uint(m.to)) != 0 {
			return nil, true // mover landed on a robot that did not move
		}
		next.occupied |= 1 << uint(m.to)
	}
	return &edge{to: next, acts: acts, moves: moves}, false
}

// findBadCycle searches for a loop through st that is fair and never
// clears the ring, starting from the stem contamination. The search is
// confined to st's strongly connected component and bounded by lengthCap.
func (s *Solver) findBadCycle(st state, stemCont *contaminationSim, info map[uint64]*nodeInfo, sccOf map[uint64]int, lengthCap int) (bool, error) {
	target := st.key()
	scc := sccOf[target]
	var dfs func(cur state, path []edge, visited map[uint64]bool) (bool, error)
	dfs = func(cur state, path []edge, visited map[uint64]bool) (bool, error) {
		if len(path) >= lengthCap {
			return false, nil
		}
		ni := info[cur.key()]
		if ni == nil {
			return false, nil
		}
		for _, e := range ni.edges {
			if e.stay {
				continue
			}
			s.expansions++
			if s.expansions > s.MaxExpansions {
				return false, ErrBudget
			}
			tk := e.to.key()
			if tk == target {
				cycle := append(append([]edge{}, path...), e)
				if s.cycleIsFairAndBad(st, cycle, stemCont, info) {
					return true, nil
				}
				continue
			}
			if sccOf[tk] != scc || visited[tk] {
				continue
			}
			visited[tk] = true
			found, err := dfs(e.to, append(path, e), visited)
			if err != nil {
				return false, err
			}
			if found {
				return true, nil
			}
		}
		return false, nil
	}
	visited := map[uint64]bool{target: true}
	return dfs(st, nil, visited)
}

// cycleIsFairAndBad checks the winning conditions on a candidate loop
// anchored at st, with contamination entering the loop as in stemCont.
func (s *Solver) cycleIsFairAndBad(st state, cycle []edge, stemCont *contaminationSim, info map[uint64]*nodeInfo) bool {
	// --- Fairness ---
	acted := make(map[int]bool)
	states := []state{st}
	cur := st
	for _, e := range cycle {
		for _, a := range e.acts {
			acted[a] = true
		}
		cur = e.to
		states = append(states, cur)
	}
	for u := 0; u < s.N; u++ {
		stationary := true
		for _, sv := range states {
			if !sv.occupiedAt(u) {
				stationary = false
				break
			}
		}
		if !stationary || acted[u] {
			continue
		}
		if _, hasPending := st.pendingAt(u); hasPending {
			// A pending move held forever violates the model's
			// finite-cycle requirement: unfair.
			return false
		}
		canStay := false
		for _, sv := range states {
			if _, p := sv.pendingAt(u); p {
				continue
			}
			if ni := info[sv.key()]; ni != nil && ni.stayable[u] {
				canStay = true
				break
			}
		}
		if !canStay {
			return false
		}
	}

	// --- Badness: iterate the loop from the stem contamination until the
	// contamination state at the loop head repeats; if no pass in the
	// repeating regime touches all-clear, the adversary wins. ---
	cont := stemCont.clone()
	seenMasks := make(map[uint32]int)
	var passClear []bool
	for iter := 0; iter <= 1<<uint(s.N); iter++ {
		maskKey := cont.maskBits()
		if first, ok := seenMasks[maskKey]; ok {
			// Passes first..iter−1 repeat forever.
			for i := first; i < iter; i++ {
				if passClear[i] {
					return false
				}
			}
			return true
		}
		seenMasks[maskKey] = iter
		clearThisPass := cont.allClear()
		for _, e := range cycle {
			if len(e.moves) > 0 {
				cont.applyMoves(e.moves, e.to)
				if cont.allClear() {
					clearThisPass = true
				}
			}
		}
		passClear = append(passClear, clearThisPass)
	}
	return false // defensive: mask space exhausted without repetition
}

// contaminationSim mirrors the mixed-search rules of §4.1 on bitmask
// states (kept local to avoid an import cycle; semantics identical to
// package search's Contamination).
type contaminationSim struct {
	n     int
	r     ring.Ring
	clear []bool
	occ   state
}

func newContaminationSim(n int, st state) *contaminationSim {
	c := &contaminationSim{n: n, r: ring.New(n), clear: make([]bool, n), occ: st}
	c.refresh(-1)
	return c
}

func (c *contaminationSim) clone() *contaminationSim {
	cl := make([]bool, len(c.clear))
	copy(cl, c.clear)
	return &contaminationSim{n: c.n, r: c.r, clear: cl, occ: c.occ}
}

// applyMoves records the simultaneous traversals of one step and
// re-evaluates edge states against the post-move occupancy.
func (c *contaminationSim) applyMoves(moves []movePair, after state) {
	if len(moves) == 0 {
		return
	}
	c.occ = after
	for _, m := range moves {
		c.clear[c.r.EdgeBetween(m.from, m.to)] = true
	}
	c.refresh(-1)
}

func (c *contaminationSim) refresh(traversed int) {
	if traversed >= 0 {
		c.clear[traversed] = true
	}
	for e := 0; e < c.n; e++ {
		u, v := c.r.EdgeEnds(ring.Edge(e))
		if c.occ.occupiedAt(u) && c.occ.occupiedAt(v) {
			c.clear[e] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for e := 0; e < c.n; e++ {
			if c.clear[e] {
				continue
			}
			u, v := c.r.EdgeEnds(ring.Edge(e))
			for _, z := range []int{u, v} {
				if c.occ.occupiedAt(z) {
					continue
				}
				a, b := c.r.IncidentEdges(z)
				for _, f := range []ring.Edge{a, b} {
					if c.clear[f] {
						c.clear[f] = false
						changed = true
					}
				}
			}
		}
	}
}

func (c *contaminationSim) allClear() bool {
	for _, cl := range c.clear {
		if !cl {
			return false
		}
	}
	return true
}

// maskBits packs the per-edge clear flags into a bitmask (n ≤ 16, so a
// uint32 always suffices).
func (c *contaminationSim) maskBits() uint32 {
	var m uint32
	for e, cl := range c.clear {
		if cl {
			m |= 1 << uint(e)
		}
	}
	return m
}
