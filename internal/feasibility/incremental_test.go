package feasibility

import (
	"errors"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"
)

// solveIncMode runs a fresh single-worker solver with incremental
// re-analysis on or off (and optional extra tuning).
func solveIncMode(t *testing.T, n, k int, noIncremental bool, tune func(*Solver)) Result {
	t.Helper()
	s := NewSolver(n, k)
	s.Workers = 1
	s.NoIncremental = noIncremental
	if tune != nil {
		tune(s)
	}
	res, err := s.Solve()
	if err != nil {
		t.Fatalf("(k=%d,n=%d) noIncremental=%v: %v", k, n, noIncremental, err)
	}
	return res
}

// checkIncrementalAgrees enforces the differential contract between the
// incremental searcher and the full-reanalysis oracle. Incremental
// re-analysis is designed to reproduce every branch's outputs exactly,
// so with one worker the contract is much stronger than the quotient's:
// besides verdict, tier and survivor validity, the explored tree shape
// (TablesExplored) and the per-branch graph sizes (StatesInterned) must
// be identical, while the expansion work actually performed
// (StatesReexpanded) must not exceed the oracle's.
func checkIncrementalAgrees(t *testing.T, n, k int, tune func(*Solver)) (inc, oracle Result) {
	t.Helper()
	inc = solveIncMode(t, n, k, false, tune)
	oracle = solveIncMode(t, n, k, true, tune)
	if inc.Impossible != oracle.Impossible {
		t.Errorf("(k=%d,n=%d): verdict differs: incremental %v, full %v", k, n, inc.Impossible, oracle.Impossible)
	}
	if inc.Tier != oracle.Tier {
		t.Errorf("(k=%d,n=%d): tier differs: incremental %d, full %d", k, n, inc.Tier, oracle.Tier)
	}
	if inc.TablesExplored != oracle.TablesExplored {
		t.Errorf("(k=%d,n=%d): tree shape differs: incremental explored %d tables, full %d",
			k, n, inc.TablesExplored, oracle.TablesExplored)
	}
	// StatesInterned counts each branch's graph at the moment analysis
	// concludes. On branches won by a collision or deadlock found
	// mid-expansion the full BFS stops with a partial graph, while an
	// incremental branch starts from the parent's complete one — so the
	// totals agree only up to those truncated win branches. A 2×
	// envelope still catches structural divergence (leaked or lost
	// frontier states) without tripping on the accounting difference.
	if inc.StatesInterned > 2*oracle.StatesInterned || oracle.StatesInterned > 2*inc.StatesInterned {
		t.Errorf("(k=%d,n=%d): per-branch graphs diverge: incremental interned %d states, full %d",
			k, n, inc.StatesInterned, oracle.StatesInterned)
	}
	if inc.StatesReexpanded > oracle.StatesReexpanded {
		t.Errorf("(k=%d,n=%d): incremental re-expanded more states (%d) than full re-analysis (%d)",
			k, n, inc.StatesReexpanded, oracle.StatesReexpanded)
	}
	if oracle.BranchesReused != 0 {
		t.Errorf("(k=%d,n=%d): full mode reports %d reused branches", k, n, oracle.BranchesReused)
	}
	// Every branch except each tier's root must have been reused (the
	// tier ladders in this suite have at most two rungs).
	if inc.BranchesReused < int64(inc.TablesExplored)-2 || inc.BranchesReused >= int64(inc.TablesExplored) {
		t.Errorf("(k=%d,n=%d): expected every non-root branch reused, got %d of %d tables",
			k, n, inc.BranchesReused, inc.TablesExplored)
	}
	if (inc.SurvivorTable == nil) != (oracle.SurvivorTable == nil) {
		t.Errorf("(k=%d,n=%d): survivor existence differs between modes", k, n)
	}
	for _, res := range []Result{inc, oracle} {
		if res.SurvivorTable == nil {
			continue
		}
		for _, noInc := range []bool{false, true} {
			mk := NewSolver(n, k)
			if tune != nil {
				tune(mk)
			}
			mk.NoIncremental = noInc
			if !survivorHoldsMode(mk, res.Tier, res.SurvivorTable) {
				t.Errorf("(k=%d,n=%d): survivor table fails re-analysis with noIncremental=%v", k, n, noInc)
			}
		}
	}
	return inc, oracle
}

// TestIncrementalMatchesFullSmall runs the differential contract on
// every small paper-adjacent case, covering impossibility and
// bounded-adversary-survivor outcomes at both tiers.
func TestIncrementalMatchesFullSmall(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{3, 1}, {4, 1}, {5, 1}, {3, 2}, {4, 2}, {5, 2}, {6, 2},
		{5, 3}, {6, 3}, {7, 3}, {5, 4}, {6, 4}, {6, 5}, {7, 4},
		{7, 5}, {7, 6}, {8, 4}, {8, 5}, {9, 6},
	} {
		checkIncrementalAgrees(t, tc.n, tc.k, nil)
	}
}

// TestIncrementalMatchesFullRandomized fuzzes the contract over random
// (k, n) instances with randomized adversary strength and both quotient
// modes, so incremental reuse is exercised on quotiented and verbatim
// graphs, crippled adversaries and odd tier ladders alike.
func TestIncrementalMatchesFullRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		n := 3 + rng.Intn(6) // 3..8
		k := 1 + rng.Intn(n-1)
		cycleLen := []int{1, 6, 12, 24}[rng.Intn(4)]
		tiers := [][]int{{0}, {0, 1}, {0, 2}}[rng.Intn(3)]
		noQuotient := rng.Intn(2) == 1
		checkIncrementalAgrees(t, n, k, func(s *Solver) {
			s.MaxCycleLen = cycleLen
			s.PendingTiers = tiers
			s.NoQuotient = noQuotient
		})
	}
}

// TestIncrementalMatchesFullTheorem5 is the acceptance check of
// incremental re-analysis: the exact differential contract on all six
// Theorem 5 figures, plus reuse-compression floors. Measured on the
// reference container: (4,9) re-expands 9.7× fewer states than full
// re-analysis, (5,9) 5.7×, (5,8) 4.3× — the floors below leave noise
// margin. (5,8) sits lower because its per-branch graphs are tiny
// (≈ 4 states on average, most branches die on an early collision), so
// the irreducible dirty-state work dominates; the headline acceptance
// case is the (3,20) impossibility drain, which used to exhaust the
// default 250M-expansion budget and now completes with a verdict (see
// TestLongRunWideRingIncremental).
func TestIncrementalMatchesFullTheorem5(t *testing.T) {
	if testing.Short() {
		t.Skip("deep differential game searches skipped in -short mode")
	}
	for _, f := range PaperFigures() {
		t0 := time.Now()
		inc, oracle := checkIncrementalAgrees(t, f.N, f.K, nil)
		t.Logf("Figure %d (k=%d,n=%d): impossible=%v tier=%d; reexpanded incremental=%d full=%d (%.1fx) in %v",
			f.Figure, f.K, f.N, inc.Impossible, inc.Tier,
			inc.StatesReexpanded, oracle.StatesReexpanded,
			float64(oracle.StatesReexpanded)/float64(inc.StatesReexpanded),
			time.Since(t0).Round(time.Millisecond))
		floor := int64(0)
		switch {
		case f.K == 4 && f.N == 9:
			floor = 5
		case f.K == 5 && f.N == 8:
			floor = 3
		}
		if floor > 0 && inc.StatesReexpanded*floor > oracle.StatesReexpanded {
			t.Errorf("(%d,%d): reuse compression below %dx: incremental re-expanded %d, full %d",
				f.K, f.N, floor, inc.StatesReexpanded, oracle.StatesReexpanded)
		}
	}
}

// TestLongRunWideRingIncremental is the opt-in probe of the wide k = 3
// drains — the cases where k = 3 on a wide ring multiplies table
// branches, not state orbits. Incremental sibling-branch reuse (PR 4)
// cut the charged budget to ≈ 4.8 units/branch; the tree-level pruning
// layer (prune.go) attacks the branch count itself, so the probe now
// reports the memo/dominance counters alongside the reuse ones — the
// evidence for how much of a drain's tree pruning removes at a given
// budget. (3,19)/(3,20) remain wall-clock-bound under default budgets;
// (3,18) and (3,21) complete immediately. The probe reports whatever it
// reaches and fails only on unexpected errors.
//
// The (3,20) row runs a bounded 10M-unit probe so the test fits go
// test's default 10-minute timeout; a full-budget drain needs
// -timeout 0 and the patience for a multi-hour wall-clock run. The
// scheduled CI probe (.github/workflows/wideprobe.yml) sets T5BUDGET to
// cap every row's budget (and adds the (3,19) row), so the weekly
// artifact records counter trajectories at a fixed, affordable cost.
//
//	T5LONG=1 go test ./internal/feasibility -run TestLongRunWideRingIncremental -v
//	T5LONG=1 T5BUDGET=2000000 go test ./internal/feasibility -run TestLongRunWideRingIncremental -v
func TestLongRunWideRingIncremental(t *testing.T) {
	if os.Getenv("T5LONG") == "" {
		t.Skip("set T5LONG=1 to run the wide-ring k=3 drains with timing")
	}
	override := 0
	if v := os.Getenv("T5BUDGET"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
			override = parsed
		}
	}
	cases := []struct{ n, budget int }{{18, 0}, {21, 0}, {20, 10_000_000}}
	if override > 0 {
		cases = append(cases, struct{ n, budget int }{19, 0})
	}
	for _, tc := range cases {
		t0 := time.Now()
		s := NewSolver(tc.n, 3)
		if tc.budget > 0 {
			s.MaxExpansions = tc.budget
		}
		if override > 0 {
			s.MaxExpansions = override
		}
		res, err := s.Solve()
		t.Logf("(3,%d): impossible=%v tier=%d tables=%d reused=%d reexpanded=%d memoHits=%d dominated=%d err=%v elapsed=%v",
			tc.n, res.Impossible, res.Tier, res.TablesExplored, res.BranchesReused,
			res.StatesReexpanded, res.TablesMemoHit, res.BranchesDominated,
			err, time.Since(t0).Round(time.Millisecond))
		if err != nil && !errors.Is(err, ErrBudget) {
			t.Fatalf("(3,%d): unexpected error: %v", tc.n, err)
		}
	}
}

// TestCollisionOrderOutputEquality pins the collision-likelihood
// re-expansion order (pending executions first) to the exact same
// outputs as the discovery-order fallback: a win is a win whichever
// dirty state trips it, and on non-winning branches every dirty state
// is re-expanded regardless of order, so verdict, tier, the explored
// tree and survivor existence must all be identical — only
// StatesReexpanded may differ (the point of the heuristic is stopping
// win-by-collision branches sooner). Covers the pending tiers, where
// the ordering actually reorders something (at tier 0 no state holds a
// pending move and the heuristic is a provable no-op).
func TestCollisionOrderOutputEquality(t *testing.T) {
	cases := []struct{ n, k int }{{7, 4}, {8, 5}, {7, 3}, {6, 4}}
	if !testing.Short() {
		cases = append(cases, struct{ n, k int }{9, 5})
	}
	for _, tc := range cases {
		ordered := solveIncMode(t, tc.n, tc.k, false, nil)
		discovery := solveIncMode(t, tc.n, tc.k, false, func(s *Solver) { s.noCollisionOrder = true })
		if ordered.Impossible != discovery.Impossible || ordered.Tier != discovery.Tier {
			t.Errorf("(k=%d,n=%d): verdict/tier differs between re-expansion orders", tc.k, tc.n)
		}
		if ordered.TablesExplored != discovery.TablesExplored {
			t.Errorf("(k=%d,n=%d): tree shape differs: collision-order explored %d tables, discovery-order %d",
				tc.k, tc.n, ordered.TablesExplored, discovery.TablesExplored)
		}
		if (ordered.SurvivorTable == nil) != (discovery.SurvivorTable == nil) {
			t.Errorf("(k=%d,n=%d): survivor existence differs between re-expansion orders", tc.k, tc.n)
		}
		if tc.k == 5 && tc.n == 9 {
			t.Logf("(5,9): reexpanded collision-order=%d discovery-order=%d",
				ordered.StatesReexpanded, discovery.StatesReexpanded)
		}
	}
}

// --- intern table -------------------------------------------------------------

// TestInternTableMatchesMap drives random interleaved inserts, lookups
// and epoch resets against a map oracle.
func TestInternTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tab internTable
	oracle := map[state]int32{}
	next := int32(0)
	for step := 0; step < 200_000; step++ {
		switch rng.Intn(20) {
		case 0: // branch reset
			tab.reset()
			clear(oracle)
			next = 0
		default:
			s := randomState(rng, 3+rng.Intn(30), 1+rng.Intn(3))
			if rng.Intn(2) == 0 {
				id, ok := tab.lookup(s)
				oid, ook := oracle[s]
				if ok != ook || (ok && id != oid) {
					t.Fatalf("step %d: lookup(%+v) = (%d,%v), oracle (%d,%v)", step, s, id, ok, oid, ook)
				}
			} else {
				id, existed := tab.getOrPut(s, next)
				oid, oexisted := oracle[s]
				if !oexisted {
					oracle[s] = next
					oid = next
					next++
				}
				if existed != oexisted || id != oid {
					t.Fatalf("step %d: getOrPut(%+v) = (%d,%v), oracle (%d,%v)", step, s, id, existed, oid, oexisted)
				}
			}
		}
	}
}

// TestInternTableAdopt checks that an adopted image answers exactly like
// its source and then diverges independently.
func TestInternTableAdopt(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var src internTable
	states := make([]state, 0, 5000)
	for i := 0; i < 5000; i++ {
		s := randomState(rng, 32, 1+rng.Intn(4))
		if _, existed := src.getOrPut(s, int32(len(states))); !existed {
			states = append(states, s)
		}
	}
	var dst internTable
	dst.adoptFrom(&src)
	for id, s := range states {
		got, ok := dst.lookup(s)
		if !ok || got != int32(id) {
			t.Fatalf("adopted table lost state %d: got (%d,%v)", id, got, ok)
		}
	}
	// Divergence: inserts into the copy must not touch the source.
	extra := randomState(rng, 31, 5)
	if _, existed := dst.getOrPut(extra, int32(len(states))); existed {
		t.Skip("random extra state collided with the fixture; seed needs changing")
	}
	if _, ok := src.lookup(extra); ok {
		t.Fatal("insert into adopted copy leaked into the source")
	}
	dst.reset()
	if _, ok := dst.lookup(states[0]); ok {
		t.Fatal("epoch reset did not invalidate adopted entries")
	}
	if _, ok := src.lookup(states[0]); !ok {
		t.Fatal("resetting the copy invalidated the source")
	}
}

// TestInternTableResetIsConstantTime pins the PR's O(1)-reset claim
// behaviorally: a large-capacity table must absorb a hundred thousand
// reset+insert cycles in wall-clock time that a capacity-proportional
// clear (the former clear(map), ~10^11 slot writes here) could not
// reach even on generous hardware. The bound is ~1000× above the
// epoch-stamped cost, so the test is timing-robust.
func TestInternTableResetIsConstantTime(t *testing.T) {
	var tab internTable
	rng := rand.New(rand.NewSource(44))
	for i := 0; int32(i) < 3*int32(internTableMinSize); i++ { // force growth well past the minimum
		tab.getOrPut(randomState(rng, 32, 8), int32(i))
	}
	for len(tab.keys) < 1<<20 {
		tab.grow()
	}
	probe := randomState(rng, 30, 3)
	t0 := time.Now()
	const resets = 100_000
	for i := 0; i < resets; i++ {
		tab.reset()
		if id, _ := tab.getOrPut(probe, 0); id != 0 {
			t.Fatalf("reset %d: probe state survived the epoch bump with id %d", i, id)
		}
	}
	if elapsed := time.Since(t0); elapsed > 20*time.Second {
		t.Errorf("%d resets of a %d-slot table took %v: reset cost appears to scale with capacity",
			resets, len(tab.keys), elapsed)
	}
}
