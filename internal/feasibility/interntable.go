package feasibility

// internTable is the searcher's state → dense-id interner: an
// epoch-stamped open-addressing hash table replacing the former
// map[state]int32. Two properties matter to the table search:
//
//   - reset is O(1): a slot is live only while its mark equals the
//     table's current epoch, so starting a fresh branch is one counter
//     increment instead of the clear(map) full-capacity wipe that cost
//     25–30 % of a small-case solve (PR 3 follow-up);
//   - the backing arrays are a plain value snapshot: publishing a
//     branch snapshot hands them off wholesale and adopting one is a
//     memcpy, so sibling branches share the parent's interning work
//     (see incremental.go).
//
// Slots use linear probing and are never deleted within an epoch, so a
// stale (old-epoch) slot is equivalent to an empty one: inserts claim
// the first stale-or-empty slot on the probe path and lookups stop
// there.
type internTable struct {
	keys  []state
	ids   []int32
	marks []uint64
	// epoch stamps live slots. 64-bit for the same reason as the
	// searcher's visit epoch: one table survives a whole tier and a
	// wrapped counter would alias stale slots into fresh branches.
	epoch uint64
	mask  uint32
	count int32
}

// internTableMinSize is deliberately small: wide-ring tier-0 graphs
// intern a few dozen canonical states, and incremental adoption copies
// (or rebuilds) the whole image per branch — a large floor would make
// that copy the per-branch bottleneck on branch-heavy drains like
// (3,20). Deep cases grow past it in a handful of doublings.
const internTableMinSize = 1 << 8

// reset starts a fresh branch: every slot becomes stale at once.
func (t *internTable) reset() {
	t.epoch++
	t.count = 0
}

// getOrPut returns the id interned for s, or claims a slot binding s to
// id and reports existed=false. id must be the caller's next dense id.
func (t *internTable) getOrPut(s state, id int32) (int32, bool) {
	if t.count >= int32(len(t.keys))-int32(len(t.keys))>>2 {
		t.grow()
	}
	h := uint32(hashState(s))
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		if t.marks[i] != t.epoch {
			t.marks[i] = t.epoch
			t.keys[i] = s
			t.ids[i] = id
			t.count++
			return id, false
		}
		if t.keys[i] == s {
			return t.ids[i], true
		}
	}
}

// lookup reports the id interned for s, if any.
func (t *internTable) lookup(s state) (int32, bool) {
	if len(t.keys) == 0 {
		return 0, false
	}
	h := uint32(hashState(s))
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		if t.marks[i] != t.epoch {
			return 0, false
		}
		if t.keys[i] == s {
			return t.ids[i], true
		}
	}
}

// grow doubles the capacity (or allocates the initial table) and
// re-inserts the live slots. Stale slots are dropped for free: only
// current-epoch entries are rehashed.
func (t *internTable) grow() {
	size := 2 * len(t.keys)
	if size < internTableMinSize {
		size = internTableMinSize
	}
	oldKeys, oldIds, oldMarks, oldEpoch := t.keys, t.ids, t.marks, t.epoch
	t.keys = make([]state, size)
	t.ids = make([]int32, size)
	t.marks = make([]uint64, size)
	t.mask = uint32(size - 1)
	// A fresh marks array is all zero, so restart the epoch above zero.
	t.epoch = 1
	for i, m := range oldMarks {
		if m != oldEpoch {
			continue
		}
		s := oldKeys[i]
		h := uint32(hashState(s))
		for j := h & t.mask; ; j = (j + 1) & t.mask {
			if t.marks[j] != t.epoch {
				t.marks[j] = t.epoch
				t.keys[j] = s
				t.ids[j] = oldIds[i]
				break
			}
		}
	}
}

// adoptFrom makes t an independent copy of src's live image (a branch
// snapshot): same capacity window, same epoch, same slots. Subsequent
// inserts and resets touch only t's backing.
func (t *internTable) adoptFrom(src *internTable) {
	n := len(src.keys)
	if cap(t.keys) < n {
		t.keys = make([]state, n)
		t.ids = make([]int32, n)
		t.marks = make([]uint64, n)
	} else {
		t.keys = t.keys[:n]
		t.ids = t.ids[:n]
		t.marks = t.marks[:n]
	}
	copy(t.keys, src.keys)
	copy(t.ids, src.ids)
	copy(t.marks, src.marks)
	t.mask = src.mask
	t.epoch = src.epoch
	t.count = src.count
}
