package feasibility

import (
	"math/rand"
	"runtime"
	"testing"

	"ringrobots/internal/ring"
)

// survivorHolds re-analyzes a claimed survivor table under the given
// pending tier and reports whether the adversary indeed has no win
// against it with no observation left undefined. This makes survivor
// checks independent of which branch (and therefore which
// TablesExplored count) produced the table.
func survivorHolds(s *Solver, tier int, tab Table) bool {
	ts := &tierSearch{
		n:             s.N,
		k:             s.K,
		pendingLimit:  tier,
		maxExpansions: int64(s.MaxExpansions),
		maxCycleLen:   s.MaxCycleLen,
		starts:        s.initialStates(),
		obs:           newObsCache(s.N),
		queue:         newWorkQueue(),
	}
	w := newSearcher(ts)
	w.table = tab
	win, _, legal, err := w.analyze()
	return err == nil && !win && legal == 0
}

func solveWorkers(t *testing.T, n, k, workers int) Result {
	t.Helper()
	return solveWorkersMode(t, n, k, workers, false)
}

func solveWorkersMode(t *testing.T, n, k, workers int, noQuotient bool) Result {
	t.Helper()
	s := NewSolver(n, k)
	s.Workers = workers
	s.NoQuotient = noQuotient
	res, err := s.Solve()
	if err != nil {
		t.Fatalf("(k=%d,n=%d) workers=%d noQuotient=%v: %v", k, n, workers, noQuotient, err)
	}
	return res
}

// TestSolveDeterministicAcrossWorkers checks that Solve returns
// identical verdicts and tiers for every paper case regardless of the
// worker count, that the single-worker search is bit-reproducible
// (identical TablesExplored), and that any reported survivor table
// independently survives re-analysis — survivor behavior must not
// depend on how many branches a particular schedule happened to explore
// before fail-fast cancellation. The default mode is the
// symmetry-quotiented searcher; TestSolveDeterministicOracleMode covers
// the unquotiented oracle.
func TestSolveDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct{ n, k int }{
		{3, 1}, {5, 1}, {4, 2}, {6, 2}, {5, 3}, {6, 3}, {7, 3},
		{5, 4}, {6, 5}, {7, 6}, {6, 4}, {7, 5},
		{7, 4}, {8, 4}, {8, 5}, {9, 6},
	}
	if !testing.Short() {
		// The deep Theorem 5 cases, including the (5,9) pending-move case
		// whose tier-1 survivor exercises the split Look/Move machinery.
		cases = append(cases, struct{ n, k int }{9, 4}, struct{ n, k int }{9, 5})
	}
	parallel := 4
	if p := runtime.GOMAXPROCS(0); p > parallel {
		parallel = p
	}
	for _, tc := range cases {
		seq := solveWorkers(t, tc.n, tc.k, 1)
		seq2 := solveWorkers(t, tc.n, tc.k, 1)
		par := solveWorkers(t, tc.n, tc.k, parallel)
		if seq.Impossible != seq2.Impossible || seq.Tier != seq2.Tier ||
			seq.TablesExplored != seq2.TablesExplored {
			t.Errorf("(k=%d,n=%d): sequential runs disagree: %+v vs %+v", tc.k, tc.n, seq, seq2)
		}
		if par.Impossible != seq.Impossible {
			t.Errorf("(k=%d,n=%d): verdict differs: workers=1 %v, workers=%d %v",
				tc.k, tc.n, seq.Impossible, parallel, par.Impossible)
		}
		if par.Tier != seq.Tier {
			t.Errorf("(k=%d,n=%d): tier differs: workers=1 %d, workers=%d %d",
				tc.k, tc.n, seq.Tier, parallel, par.Tier)
		}
		if (seq.SurvivorTable == nil) != (par.SurvivorTable == nil) {
			t.Errorf("(k=%d,n=%d): survivor existence differs across worker counts", tc.k, tc.n)
		}
		for _, res := range []Result{seq, par} {
			if res.SurvivorTable != nil && !survivorHolds(NewSolver(tc.n, tc.k), res.Tier, res.SurvivorTable) {
				t.Errorf("(k=%d,n=%d): reported survivor table does not survive re-analysis", tc.k, tc.n)
			}
		}
	}
}

// TestSolveDeterministicOracleMode pins the unquotiented oracle to the
// same worker-count determinism contract as the default mode: the
// differential tests in quotient_test.go are only meaningful if both
// sides are individually schedule-independent.
func TestSolveDeterministicOracleMode(t *testing.T) {
	cases := []struct{ n, k int }{{5, 1}, {6, 2}, {7, 3}, {6, 4}, {7, 4}, {8, 5}}
	parallel := 4
	if p := runtime.GOMAXPROCS(0); p > parallel {
		parallel = p
	}
	for _, tc := range cases {
		seq := solveWorkersMode(t, tc.n, tc.k, 1, true)
		seq2 := solveWorkersMode(t, tc.n, tc.k, 1, true)
		par := solveWorkersMode(t, tc.n, tc.k, parallel, true)
		if seq.Impossible != seq2.Impossible || seq.Tier != seq2.Tier ||
			seq.TablesExplored != seq2.TablesExplored {
			t.Errorf("(k=%d,n=%d) oracle: sequential runs disagree: %+v vs %+v", tc.k, tc.n, seq, seq2)
		}
		if par.Impossible != seq.Impossible || par.Tier != seq.Tier {
			t.Errorf("(k=%d,n=%d) oracle: verdict/tier differs across worker counts", tc.k, tc.n)
		}
	}
}

// TestSurvivorIndependentOfSchedule weakens the adversary (no long
// starvation loops) so that survivor tables exist even for (4,7), then
// checks that every worker count agrees a survivor exists and that each
// reported survivor holds under re-analysis with the same weakening.
func TestSurvivorIndependentOfSchedule(t *testing.T) {
	mk := func(workers int) *Solver {
		s := NewSolver(7, 4)
		s.MaxCycleLen = 1 // too short to catch any starvation loop
		s.PendingTiers = []int{0}
		s.Workers = workers
		return s
	}
	for _, workers := range []int{1, 2, 8} {
		s := mk(workers)
		res, err := s.Solve()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Impossible {
			t.Fatalf("workers=%d: crippled adversary should not win (4,7)", workers)
		}
		if res.SurvivorTable == nil {
			t.Fatalf("workers=%d: no survivor reported", workers)
		}
		if !survivorHolds(mk(1), 0, res.SurvivorTable) {
			t.Errorf("workers=%d: survivor does not survive re-analysis", workers)
		}
	}
}

// --- contamination oracle ----------------------------------------------------

// oracleCont is the seed's boolean-slice contamination simulator
// (mixed-search rules of §4.1), retained as a differential oracle for
// the bitmask implementation in state.go.
type oracleCont struct {
	n     int
	r     ring.Ring
	clear []bool
	occ   uint64
}

func newOracleCont(n int, occ uint64) *oracleCont {
	c := &oracleCont{n: n, r: ring.New(n), clear: make([]bool, n), occ: occ}
	c.refresh()
	return c
}

func (c *oracleCont) occupiedAt(u int) bool { return c.occ&(1<<uint(u)) != 0 }

func (c *oracleCont) refresh() {
	for e := 0; e < c.n; e++ {
		u, v := c.r.EdgeEnds(ring.Edge(e))
		if c.occupiedAt(u) && c.occupiedAt(v) {
			c.clear[e] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for e := 0; e < c.n; e++ {
			if c.clear[e] {
				continue
			}
			u, v := c.r.EdgeEnds(ring.Edge(e))
			for _, z := range []int{u, v} {
				if c.occupiedAt(z) {
					continue
				}
				a, b := c.r.IncidentEdges(z)
				for _, f := range []ring.Edge{a, b} {
					if c.clear[f] {
						c.clear[f] = false
						changed = true
					}
				}
			}
		}
	}
}

func (c *oracleCont) applyMoves(movesCW, movesCCW uint64, occAfter uint64) {
	c.occ = occAfter
	for u := 0; u < c.n; u++ {
		if movesCW&(1<<uint(u)) != 0 {
			c.clear[c.r.EdgeBetween(u, c.r.Step(u, ring.CW))] = true
		}
		if movesCCW&(1<<uint(u)) != 0 {
			c.clear[c.r.EdgeBetween(u, c.r.Step(u, ring.CCW))] = true
		}
	}
	c.refresh()
}

func (c *oracleCont) mask() uint64 {
	var m uint64
	for e, cl := range c.clear {
		if cl {
			m |= 1 << uint(e)
		}
	}
	return m
}

// TestContaminationMaskMatchesOracle drives random move sequences on
// random occupancies for every ring size the solver supports and checks
// the bitmask contamination fixpoint against the boolean-slice oracle.
func TestContaminationMaskMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 3; n <= maxRingSize; n++ {
		for trial := 0; trial < 40; trial++ {
			k := 1 + rng.Intn(n-1)
			var occ uint64
			for bitsSet := 0; bitsSet < k; {
				u := rng.Intn(n)
				if occ&(1<<uint(u)) == 0 {
					occ |= 1 << uint(u)
					bitsSet++
				}
			}
			oracle := newOracleCont(n, occ)
			cm := contRefresh(0, occ, n)
			if cm != oracle.mask() {
				t.Fatalf("n=%d occ=%b: initial clear mask %b != oracle %b", n, occ, cm, oracle.mask())
			}
			// Random single-robot moves (the solver only clears edges it
			// actually traverses; occupancy evolves accordingly).
			for step := 0; step < 12; step++ {
				occupied := make([]int, 0, n)
				for u := 0; u < n; u++ {
					if occ&(1<<uint(u)) != 0 {
						occupied = append(occupied, u)
					}
				}
				u := occupied[rng.Intn(len(occupied))]
				dir := ring.CW
				if rng.Intn(2) == 0 {
					dir = ring.CCW
				}
				to := ring.New(n).Step(u, dir)
				if occ&(1<<uint(to)) != 0 {
					continue // blocked; solver never executes these
				}
				var mcw, mccw uint64
				if dir == ring.CW {
					mcw = 1 << uint(u)
				} else {
					mccw = 1 << uint(u)
				}
				occ = occ&^(1<<uint(u)) | 1<<uint(to)
				oracle.applyMoves(mcw, mccw, occ)
				cm = contApply(cm, mcw, mccw, occ, n)
				if cm != oracle.mask() {
					t.Fatalf("n=%d step %d: clear mask %b != oracle %b", n, step, cm, oracle.mask())
				}
			}
		}
	}
}
