package feasibility

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// This file implements the distributed-drain primitives on top of the
// checkpoint layer: Partition cuts a suspended checkpoint's open
// frontier into independent subtree shards, each a complete checkpoint
// a separate process resumes with Solver.Resume; Merge recombines the
// shard outcomes — idempotently per shard id, since the drain-pool
// coordinator (internal/drainpool) runs shards at-least-once — into
// either a final verdict or the next checkpoint of the drain.
//
// Soundness of the cut rests on two properties of the checkpoint
// encoding. First, a checkpoint's node list is exactly the ancestor
// closure of its frontier with parents before children, so any subset
// of frontier entries plus its ancestor closure is again a well-formed
// checkpoint. Second, openKids counts are copied VERBATIM into each
// shard: a shared ancestor keeps counting children that were assigned
// to other shards, so a shard's refutation closure (prune.go) stalls
// at the shard boundary instead of refuting a node whose foreign
// children are still open — recording such a nogood early would be
// unsound, and a wrong verdict could follow. The price is that
// interior refutations spanning shards are not learned as nogoods
// during the sharded tier (a heuristic loss only); Merge restores the
// true open counts structurally when it recombines frontiers.

// RootCheckpoint captures the solver's initial state — the empty-table
// root as the sole open branch of the first tier — without running any
// search. Resume(RootCheckpoint(s)) is equivalent to SolveContext, so
// a coordinator can treat fresh drains and resumed drains uniformly.
func RootCheckpoint(s *Solver) (*Checkpoint, error) {
	if err := s.InstanceOf().Validate(); err != nil {
		return nil, err
	}
	tiers := s.PendingTiers
	if len(tiers) == 0 {
		tiers = []int{0, 2}
	}
	return s.captureCheckpoint(tiers, 0, Result{Tier: tiers[0]}, nil, []*tableNode{{}}, nil), nil
}

// NewSolver rebuilds a solver matching the checkpoint's identity: ring
// parameters, tier ladder and search-mode flags, with package defaults
// for everything outside it (budget, workers). A worker process needs
// only the checkpoint bytes to run its shard.
func (ck *Checkpoint) NewSolver() (*Solver, error) {
	if ck == nil {
		return nil, errors.New("feasibility: nil checkpoint")
	}
	if ck.version != SolverVersion {
		return nil, fmt.Errorf("feasibility: checkpoint from solver version %q, this solver is %q", ck.version, SolverVersion)
	}
	s := NewSolver(ck.n, ck.k)
	s.MaxCycleLen = ck.maxCycleLen
	s.PendingTiers = append([]int(nil), ck.pendingTiers...)
	s.NoQuotient = ck.noQuotient
	s.NoIncremental = ck.noIncremental
	s.NoPrune = ck.noPrune
	return s, nil
}

// Partition splits the checkpoint into at most k shard checkpoints,
// cutting the frontier into contiguous chunks (preserving the LIFO
// queue order within each shard) and carrying each chunk's ancestor
// closure. Shard counters are zeroed — a shard reports deltas, and
// Merge adds them onto this checkpoint's cumulative counters — while
// the header, tier position, prior survivor, credits and nogoods are
// replicated so every shard resumes under the full learned state.
// Fewer than k shards are returned when the frontier is smaller than k.
func (ck *Checkpoint) Partition(k int) ([]*Checkpoint, error) {
	if ck == nil {
		return nil, errors.New("feasibility: nil checkpoint")
	}
	if k < 1 {
		return nil, fmt.Errorf("feasibility: Partition needs k >= 1, got %d", k)
	}
	f := len(ck.frontier)
	if f == 0 {
		return nil, errors.New("feasibility: cannot partition an empty frontier")
	}
	m := k
	if m > f {
		m = f
	}
	shards := make([]*Checkpoint, m)
	for si := 0; si < m; si++ {
		lo, hi := si*f/m, (si+1)*f/m
		inShard := make([]bool, len(ck.nodes))
		for _, id := range ck.frontier[lo:hi] {
			for cur := id; cur >= 0 && !inShard[cur]; cur = ck.nodes[cur].parent {
				inShard[cur] = true
			}
		}
		sh := &Checkpoint{
			version:       ck.version,
			n:             ck.n,
			k:             ck.k,
			maxCycleLen:   ck.maxCycleLen,
			noQuotient:    ck.noQuotient,
			noIncremental: ck.noIncremental,
			noPrune:       ck.noPrune,
			pendingTiers:  append([]int(nil), ck.pendingTiers...),
			tierIndex:     ck.tierIndex,
			counters:      Result{Tier: ck.counters.Tier},
			hasPrior:      ck.hasPrior,
			prior:         append([]pruneEntry(nil), ck.prior...),
			credits:       append([]ckptCredit(nil), ck.credits...),
		}
		for _, ng := range ck.nogoods {
			sh.nogoods = append(sh.nogoods, ckptNogood{
				limit:   ng.limit,
				entries: append([]pruneEntry(nil), ng.entries...),
			})
		}
		// Filter the node list in place-order: parents precede children
		// in ck.nodes, and the closure contains every parent, so the
		// remapped ids stay parents-first.
		remap := make([]int32, len(ck.nodes))
		for i := range remap {
			remap[i] = -1
		}
		for i, nd := range ck.nodes {
			if !inShard[i] {
				continue
			}
			p := int32(-1)
			if nd.parent >= 0 {
				p = remap[nd.parent]
			}
			remap[i] = int32(len(sh.nodes))
			sh.nodes = append(sh.nodes, ckptNode{parent: p, obs: nd.obs, d: nd.d, openKids: nd.openKids})
		}
		for _, id := range ck.frontier[lo:hi] {
			sh.frontier = append(sh.frontier, remap[id])
		}
		shards[si] = sh
	}
	return shards, nil
}

// ShardResult is one shard's report back to the coordinator: exactly
// one of Refuted, Survivor, Suspended is set, plus the shard-local
// counter deltas and (for terminal outcomes) the pruning state the
// shard solver ended with.
type ShardResult struct {
	Shard int
	// Refuted: the shard's whole subtree was drained with no survivor.
	Refuted bool
	// Survivor: a table in the shard's subtree the adversary failed to
	// beat at the checkpoint's tier.
	Survivor Table
	// Suspended: the shard ran out of budget (or was stopped) and
	// checkpointed its remaining frontier.
	Suspended *Checkpoint
	// Counters holds this shard run's counter deltas (the shard started
	// from zeroed counters; Impossible/Tier/SurvivorTable are ignored by
	// Merge, which derives the verdict itself).
	Counters Result
	// Prune carries the shard solver's exported credits and nogoods for
	// terminal outcomes (a suspended shard's travel inside Suspended
	// instead); nil under NoPrune.
	Prune *PruneExport
}

// PruneExport is a solver's exported pruning state — refutation
// credits and the nogood store — detached from any checkpoint, so a
// shard with a terminal outcome (which has no checkpoint) can still
// ship what it learned back to the coordinator.
type PruneExport struct {
	credits []ckptCredit
	nogoods []ckptNogood
}

// PruneExport snapshots the pruning state of the solver's most recent
// solve (nil before any solve or under NoPrune).
func (s *Solver) PruneExport() *PruneExport {
	if s.lastPrune == nil {
		return nil
	}
	credits, nogoods := s.lastPrune.exportState()
	return &PruneExport{credits: credits, nogoods: nogoods}
}

// shardKind tags the ShardResult encoding.
const (
	shardRefuted   = 1
	shardSurvivor  = 2
	shardSuspended = 3
)

func appendResultCounters(b []byte, c *Result) []byte {
	b = binary.AppendUvarint(b, uint64(c.Tier))
	b = binary.AppendUvarint(b, uint64(c.TablesExplored))
	b = binary.AppendVarint(b, c.StatesInterned)
	b = binary.AppendVarint(b, c.StatesReexpanded)
	b = binary.AppendVarint(b, c.BranchesReused)
	b = binary.AppendVarint(b, c.TablesMemoHit)
	b = binary.AppendVarint(b, c.BranchesDominated)
	b = binary.AppendVarint(b, c.ExpansionUnits)
	return b
}

func (d *ckptDecoder) resultCounters(c *Result) {
	c.Tier = int(d.uvarint())
	c.TablesExplored = int(d.uvarint())
	c.StatesInterned = d.varint()
	c.StatesReexpanded = d.varint()
	c.BranchesReused = d.varint()
	c.TablesMemoHit = d.varint()
	c.BranchesDominated = d.varint()
	c.ExpansionUnits = d.varint()
}

func appendPruneExport(b []byte, pe *PruneExport) []byte {
	if pe == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = binary.AppendUvarint(b, uint64(len(pe.credits)))
	for _, cr := range pe.credits {
		b = binary.LittleEndian.AppendUint64(b, cr.hash)
		b = binary.AppendVarint(b, cr.credit)
	}
	b = binary.AppendUvarint(b, uint64(len(pe.nogoods)))
	for _, ng := range pe.nogoods {
		b = binary.AppendUvarint(b, uint64(ng.limit))
		b = binary.AppendUvarint(b, uint64(len(ng.entries)))
		for _, e := range ng.entries {
			b = appendEntry(b, e)
		}
	}
	return b
}

func (d *ckptDecoder) pruneExport() *PruneExport {
	if d.byte() == 0 || d.err != nil {
		return nil
	}
	pe := &PruneExport{}
	nCred := d.count(9)
	for i := 0; i < nCred; i++ {
		raw := d.bytes(8)
		var h uint64
		if d.err == nil {
			h = binary.LittleEndian.Uint64(raw)
		}
		pe.credits = append(pe.credits, ckptCredit{hash: h, credit: d.varint()})
	}
	nNg := d.count(2)
	for i := 0; i < nNg; i++ {
		limit := d.uvarint()
		nEnt := d.count(3)
		entries := make([]pruneEntry, 0, nEnt)
		for j := 0; j < nEnt; j++ {
			obs := d.obsKey()
			entries = append(entries, pruneEntry{obs: obs, d: d.decision()})
		}
		pe.nogoods = append(pe.nogoods, ckptNogood{limit: int32(limit), entries: entries})
	}
	return pe
}

// shardResultMagic versions the ShardResult wire encoding.
const shardResultMagic = "RRSR"

// MarshalBinary encodes the shard result for the worker's journal.
func (r *ShardResult) MarshalBinary() ([]byte, error) {
	set := 0
	if r.Refuted {
		set++
	}
	if r.Survivor != nil {
		set++
	}
	if r.Suspended != nil {
		set++
	}
	if set != 1 {
		return nil, fmt.Errorf("feasibility: shard result must have exactly one outcome, has %d", set)
	}
	b := []byte(shardResultMagic)
	b = binary.AppendUvarint(b, uint64(r.Shard))
	switch {
	case r.Refuted:
		b = append(b, shardRefuted)
	case r.Survivor != nil:
		b = append(b, shardSurvivor)
		entries := tableEntries(r.Survivor)
		b = binary.AppendUvarint(b, uint64(len(entries)))
		for _, e := range entries {
			b = appendEntry(b, e)
		}
	default:
		b = append(b, shardSuspended)
		enc, err := r.Suspended.MarshalBinary()
		if err != nil {
			return nil, err
		}
		b = binary.AppendUvarint(b, uint64(len(enc)))
		b = append(b, enc...)
	}
	b = appendResultCounters(b, &r.Counters)
	b = appendPruneExport(b, r.Prune)
	return b, nil
}

// UnmarshalShardResult decodes a ShardResult from MarshalBinary form.
func UnmarshalShardResult(data []byte) (*ShardResult, error) {
	if len(data) < len(shardResultMagic) || string(data[:len(shardResultMagic)]) != shardResultMagic {
		return nil, errors.New("feasibility: not a shard result (bad magic)")
	}
	d := &ckptDecoder{b: data[len(shardResultMagic):]}
	r := &ShardResult{Shard: int(d.uvarint())}
	switch kind := d.byte(); kind {
	case shardRefuted:
		r.Refuted = true
	case shardSurvivor:
		n := d.count(3)
		t := make(Table, n)
		for i := 0; i < n; i++ {
			obs := d.obsKey()
			t[obs] = d.decision()
		}
		r.Survivor = t
	case shardSuspended:
		enc := d.bytes(int(d.uvarint()))
		if d.err == nil {
			ck, err := UnmarshalCheckpoint(enc)
			if err != nil {
				return nil, err
			}
			r.Suspended = ck
		}
	default:
		if d.err == nil {
			return nil, fmt.Errorf("feasibility: unknown shard result kind %d", kind)
		}
	}
	d.resultCounters(&r.Counters)
	r.Prune = d.pruneExport()
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("feasibility: %d trailing bytes after shard result", len(d.b))
	}
	return r, nil
}

// resultMagic versions the final-verdict wire encoding (the drain
// pool's journaled verdict record).
const resultMagic = "RRVR"

// MarshalResult encodes a final Result (verdict, tier, counters,
// survivor) for journaling.
func MarshalResult(res Result) ([]byte, error) {
	b := []byte(resultMagic)
	var flag byte
	if res.Impossible {
		flag |= 1
	}
	if res.SurvivorTable != nil {
		flag |= 2
	}
	b = append(b, flag)
	b = appendResultCounters(b, &res)
	if res.SurvivorTable != nil {
		entries := tableEntries(res.SurvivorTable)
		b = binary.AppendUvarint(b, uint64(len(entries)))
		for _, e := range entries {
			b = appendEntry(b, e)
		}
	}
	return b, nil
}

// UnmarshalResult decodes a MarshalResult encoding.
func UnmarshalResult(data []byte) (Result, error) {
	var res Result
	if len(data) < len(resultMagic) || string(data[:len(resultMagic)]) != resultMagic {
		return res, errors.New("feasibility: not a result (bad magic)")
	}
	d := &ckptDecoder{b: data[len(resultMagic):]}
	flag := d.byte()
	res.Impossible = flag&1 != 0
	d.resultCounters(&res)
	if flag&2 != 0 {
		n := d.count(3)
		t := make(Table, n)
		for i := 0; i < n; i++ {
			obs := d.obsKey()
			t[obs] = d.decision()
		}
		res.SurvivorTable = t
	}
	if d.err != nil {
		return res, d.err
	}
	if len(d.b) != 0 {
		return res, fmt.Errorf("feasibility: %d trailing bytes after result", len(d.b))
	}
	return res, nil
}

// addResultDelta folds a shard's counter deltas into dst. Verdict
// fields (Impossible, Tier, SurvivorTable) are deliberately excluded —
// Merge derives those from the shard outcomes, never from counters.
func addResultDelta(dst *Result, d Result) {
	dst.TablesExplored += d.TablesExplored
	dst.StatesInterned += d.StatesInterned
	dst.StatesReexpanded += d.StatesReexpanded
	dst.BranchesReused += d.BranchesReused
	dst.TablesMemoHit += d.TablesMemoHit
	dst.BranchesDominated += d.BranchesDominated
	dst.ExpansionUnits += d.ExpansionUnits
}

// sameShardHeader checks a suspended shard checkpoint still belongs to
// this base checkpoint: same identity, same tier position, same prior
// survivor. A mismatch means the coordinator mixed generations.
func (ck *Checkpoint) sameShardHeader(sh *Checkpoint) error {
	if sh.version != ck.version || sh.n != ck.n || sh.k != ck.k || sh.maxCycleLen != ck.maxCycleLen ||
		sh.noQuotient != ck.noQuotient || sh.noIncremental != ck.noIncremental || sh.noPrune != ck.noPrune {
		return errors.New("feasibility: suspended shard checkpoint does not match the partitioned checkpoint's identity")
	}
	if len(sh.pendingTiers) != len(ck.pendingTiers) {
		return errors.New("feasibility: suspended shard checkpoint has a different tier ladder")
	}
	for i, t := range ck.pendingTiers {
		if sh.pendingTiers[i] != t {
			return errors.New("feasibility: suspended shard checkpoint has a different tier ladder")
		}
	}
	if sh.tierIndex != ck.tierIndex {
		return fmt.Errorf("feasibility: suspended shard checkpoint is at tier index %d, base is at %d", sh.tierIndex, ck.tierIndex)
	}
	if sh.hasPrior != ck.hasPrior || len(sh.prior) != len(ck.prior) {
		return errors.New("feasibility: suspended shard checkpoint has a different prior survivor")
	}
	for i, e := range ck.prior {
		if sh.prior[i] != e {
			return errors.New("feasibility: suspended shard checkpoint has a different prior survivor")
		}
	}
	return nil
}

// nogoodKey is the dedup key of a nogood record: its limit plus the
// entry encoding.
func nogoodKey(ng ckptNogood) string {
	b := binary.AppendUvarint(nil, uint64(ng.limit))
	for _, e := range ng.entries {
		b = appendEntry(b, e)
	}
	return string(b)
}

// Merge recombines shard outcomes for a checkpoint partitioned into
// `shards` shards. It is idempotent per shard id — results is allowed
// to contain duplicates from at-least-once shard execution; the first
// report per id wins and the rest are ignored — but every shard id in
// [0, shards) must be covered, or the merge fails (no shard may be
// silently lost). The outcome is exactly one of:
//
//   - a final Result: some shard found a survivor and this was the
//     ladder's last tier (feasible), or every shard refuted its subtree
//     (the tier — and therefore the drain — is impossible);
//   - the next Checkpoint: a survivor at a non-final tier escalates the
//     ladder (fresh root frontier, survivor becomes the prior), or, with
//     no survivor and at least one suspended shard, the suspended
//     frontiers recombine into a same-tier checkpoint.
//
// Counters are this checkpoint's cumulative counters plus the deduped
// shard deltas. Credits merge additively per observation hash; nogood
// stores union with first-occurrence order. Open-kid counts of the
// recombined frontier are recomputed structurally (the shard copies
// kept counting foreign children by design; see the file comment) —
// for a partition merged back unchanged this reproduces the original
// checkpoint byte-for-byte.
func (ck *Checkpoint) Merge(shards int, results []ShardResult) (*Result, *Checkpoint, error) {
	if shards < 1 {
		return nil, nil, fmt.Errorf("feasibility: Merge needs shards >= 1, got %d", shards)
	}
	byShard := make([]*ShardResult, shards)
	for i := range results {
		r := &results[i]
		if r.Shard < 0 || r.Shard >= shards {
			return nil, nil, fmt.Errorf("feasibility: shard result id %d out of range [0, %d)", r.Shard, shards)
		}
		if byShard[r.Shard] == nil {
			byShard[r.Shard] = r
		}
	}
	var surv *ShardResult
	anySuspended := false
	for i, r := range byShard {
		if r == nil {
			return nil, nil, fmt.Errorf("feasibility: no result for shard %d of %d", i, shards)
		}
		set := 0
		if r.Refuted {
			set++
		}
		if r.Survivor != nil {
			set++
		}
		if r.Suspended != nil {
			set++
		}
		if set != 1 {
			return nil, nil, fmt.Errorf("feasibility: shard %d result must have exactly one outcome, has %d", i, set)
		}
		if r.Suspended != nil {
			if err := ck.sameShardHeader(r.Suspended); err != nil {
				return nil, nil, fmt.Errorf("shard %d: %w", i, err)
			}
			anySuspended = true
		}
		if r.Survivor != nil && surv == nil {
			surv = r // lowest shard id wins: deterministic across report orders
		}
	}
	counters := ck.counters
	for _, r := range byShard {
		addResultDelta(&counters, r.Counters)
	}
	limit := ck.pendingTiers[ck.tierIndex]
	counters.Tier = limit

	if surv != nil {
		// One table the adversary cannot beat settles the tier no matter
		// what the other shards did (exactly the single-process rule: a
		// survivor cancels the remaining branches).
		if ck.tierIndex == len(ck.pendingTiers)-1 {
			final := counters
			final.Impossible = false
			final.SurvivorTable = surv.Survivor
			return &final, nil, nil
		}
		next, err := ck.advanceTier(surv.Survivor, counters, ck.mergeNogoods(byShard))
		if err != nil {
			return nil, nil, err
		}
		return nil, next, nil
	}
	if !anySuspended {
		// Every shard drained its subtree with no survivor: the tier is
		// impossible, and an impossibility verdict at any tier is final
		// (each tier under-approximates the true asynchronous adversary).
		final := counters
		final.Impossible = true
		final.SurvivorTable = nil
		return &final, nil, nil
	}

	// Recombine the suspended frontiers into a same-tier checkpoint.
	merged := &Checkpoint{
		version:       ck.version,
		n:             ck.n,
		k:             ck.k,
		maxCycleLen:   ck.maxCycleLen,
		noQuotient:    ck.noQuotient,
		noIncremental: ck.noIncremental,
		noPrune:       ck.noPrune,
		pendingTiers:  append([]int(nil), ck.pendingTiers...),
		tierIndex:     ck.tierIndex,
		counters:      counters,
		hasPrior:      ck.hasPrior,
		prior:         append([]pruneEntry(nil), ck.prior...),
	}
	merged.counters.SurvivorTable = nil
	type nodeKey struct {
		parent int32
		obs    ObsKey
		d      Decision
	}
	index := make(map[nodeKey]int32)
	frontierSeen := make(map[int32]bool)
	for si, r := range byShard {
		sh := r.Suspended
		if sh == nil {
			continue
		}
		remap := make([]int32, len(sh.nodes))
		for i, nd := range sh.nodes {
			p := int32(-1)
			if nd.parent >= 0 {
				p = remap[nd.parent]
			}
			key := nodeKey{parent: p, obs: nd.obs, d: nd.d}
			id, ok := index[key]
			if !ok {
				id = int32(len(merged.nodes))
				merged.nodes = append(merged.nodes, ckptNode{parent: p, obs: nd.obs, d: nd.d, openKids: nd.openKids})
				index[key] = id
			}
			remap[i] = id
		}
		for _, fid := range sh.frontier {
			mid := remap[fid]
			if frontierSeen[mid] {
				return nil, nil, fmt.Errorf("feasibility: shard %d re-opens a frontier branch another shard already holds", si)
			}
			frontierSeen[mid] = true
			merged.frontier = append(merged.frontier, mid)
		}
	}
	if !merged.noPrune {
		// Restore true open counts: in the merged closure every still-open
		// child of a node is present (it has an open descendant on some
		// shard's frontier), and every refuted child is absent, so the
		// structural child count is the live openKids value. The verbatim
		// shard copies intentionally over-count across the boundary.
		for i := range merged.nodes {
			merged.nodes[i].openKids = 0
		}
		for _, nd := range merged.nodes {
			if nd.parent >= 0 {
				merged.nodes[nd.parent].openKids++
			}
		}
	} else {
		// Without pruning openKids is written at expansion but never
		// consumed; the first-occurrence copies (base values) are kept
		// as-is so a partition merged back unchanged round-trips exactly.
	}
	merged.credits = ck.mergeCredits(byShard)
	merged.nogoods = ck.mergeNogoods(byShard)
	return nil, merged, nil
}

// mergeCredits folds the shards' credit stores additively against the
// base: merged[h] = base[h] + Σ_s (shard_s[h] − base[h]). A shard that
// never touched a hash contributes zero; concurrent learning on
// distinct subtrees accumulates. Zero totals are dropped (matching
// exportState) and the result is hash-sorted (matching the encoding's
// determinism contract).
func (ck *Checkpoint) mergeCredits(byShard []*ShardResult) []ckptCredit {
	base := make(map[uint64]int64, len(ck.credits))
	for _, c := range ck.credits {
		base[c.hash] = c.credit
	}
	total := make(map[uint64]int64, len(ck.credits))
	for h, v := range base {
		total[h] = v
	}
	for _, r := range byShard {
		var credits []ckptCredit
		switch {
		case r.Suspended != nil:
			credits = r.Suspended.credits
		case r.Prune != nil:
			credits = r.Prune.credits
		default:
			continue
		}
		seen := make(map[uint64]bool, len(credits))
		for _, c := range credits {
			total[c.hash] += c.credit - base[c.hash]
			seen[c.hash] = true
		}
		// A base hash absent from the shard's export went to zero there.
		for h, v := range base {
			if !seen[h] {
				total[h] -= v
			}
		}
	}
	merged := make([]ckptCredit, 0, len(total))
	for h, v := range total {
		if v != 0 {
			merged = append(merged, ckptCredit{hash: h, credit: v})
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].hash < merged[j].hash })
	return merged
}

// mergeNogoods unions the base nogood store with every shard's, in
// first-occurrence order (base first, then shards by id), dropping
// duplicates. Every record is sound wherever it was learned — nogoods
// depend only on the game, not on the shard cut.
func (ck *Checkpoint) mergeNogoods(byShard []*ShardResult) []ckptNogood {
	seen := make(map[string]bool)
	var merged []ckptNogood
	add := func(ngs []ckptNogood) {
		for _, ng := range ngs {
			key := nogoodKey(ng)
			if seen[key] {
				continue
			}
			seen[key] = true
			merged = append(merged, ckptNogood{
				limit:   ng.limit,
				entries: append([]pruneEntry(nil), ng.entries...),
			})
		}
	}
	add(ck.nogoods)
	for _, r := range byShard {
		switch {
		case r.Suspended != nil:
			add(r.Suspended.nogoods)
		case r.Prune != nil:
			add(r.Prune.nogoods)
		}
	}
	return merged
}

// AdvanceTier builds the checkpoint of the ladder's next tier after
// this checkpoint's tier produced a survivor: a fresh root frontier at
// tierIndex+1, the survivor as the prior, cumulative counters carried
// forward, and the solver's exported nogoods (credits reset — they are
// per-tier statistics, exactly as an uninterrupted solve resets them
// at escalation). The drain-pool coordinator uses this when its
// in-process frontier expansion finishes a tier.
func (ck *Checkpoint) AdvanceTier(survivor Table, counters Result, prune *PruneExport) (*Checkpoint, error) {
	var nogoods []ckptNogood
	if prune != nil {
		nogoods = prune.nogoods
	}
	return ck.advanceTier(survivor, counters, nogoods)
}

func (ck *Checkpoint) advanceTier(survivor Table, counters Result, nogoods []ckptNogood) (*Checkpoint, error) {
	if survivor == nil {
		return nil, errors.New("feasibility: advancing a tier requires a survivor")
	}
	if ck.tierIndex+1 >= len(ck.pendingTiers) {
		return nil, errors.New("feasibility: no tier to advance to")
	}
	counters.SurvivorTable = nil
	next := &Checkpoint{
		version:       ck.version,
		n:             ck.n,
		k:             ck.k,
		maxCycleLen:   ck.maxCycleLen,
		noQuotient:    ck.noQuotient,
		noIncremental: ck.noIncremental,
		noPrune:       ck.noPrune,
		pendingTiers:  append([]int(nil), ck.pendingTiers...),
		tierIndex:     ck.tierIndex + 1,
		counters:      counters,
		hasPrior:      true,
		prior:         tableEntries(survivor),
		nodes:         []ckptNode{{parent: -1}},
		frontier:      []int32{0},
	}
	for _, ng := range nogoods {
		next.nogoods = append(next.nogoods, ckptNogood{
			limit:   ng.limit,
			entries: append([]pruneEntry(nil), ng.entries...),
		})
	}
	return next, nil
}
