package feasibility

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// collectSuspendedCheckpoints drains mk()'s instance with a seeded,
// randomly varying budget, collecting the (serialized-and-restored)
// checkpoint of every suspension along the way — the randomized corpus
// the partition/merge round-trip properties quantify over.
func collectSuspendedCheckpoints(t *testing.T, mk func() *Solver, rng *rand.Rand, budgetLo, budgetHi int) []*Checkpoint {
	t.Helper()
	var out []*Checkpoint
	s := mk()
	s.MaxExpansions = budgetLo + rng.Intn(budgetHi-budgetLo)
	res, cp, err := s.SolveContext(context.Background())
	for err != nil {
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("unexpected suspension error: %v", err)
		}
		raw, merr := cp.MarshalBinary()
		if merr != nil {
			t.Fatal(merr)
		}
		restored, uerr := UnmarshalCheckpoint(raw)
		if uerr != nil {
			t.Fatal(uerr)
		}
		out = append(out, restored)
		if len(out) > 500 {
			t.Fatal("drain did not converge")
		}
		s = mk()
		s.MaxExpansions = budgetLo + rng.Intn(budgetHi-budgetLo)
		res, cp, err = s.Resume(context.Background(), restored)
	}
	_ = res
	return out
}

// TestPartitionMergeRoundTrip pins Merge(Partition(cp, k)) ≡ cp: for
// k ∈ {1, 2, 8} over randomized suspended checkpoints (varied budgets,
// both survivor-escalating and impossibility-bound instances, with and
// without pruning state), partitioning and immediately merging the
// untouched shards reproduces the original checkpoint byte-for-byte —
// frontier, node order, openKids, counters, credits and nogoods.
func TestPartitionMergeRoundTrip(t *testing.T) {
	cases := []struct {
		n, k    int
		noPrune bool
	}{
		{7, 3, false}, {7, 4, false}, {8, 5, false}, {7, 4, true},
	}
	rng := rand.New(rand.NewSource(41))
	for _, tc := range cases {
		mk := func() *Solver {
			s := NewSolver(tc.n, tc.k)
			s.Workers = 1
			s.NoPrune = tc.noPrune
			return s
		}
		cps := collectSuspendedCheckpoints(t, mk, rng, 50, 400)
		if len(cps) == 0 {
			t.Fatalf("(k=%d,n=%d): budget never suspended the drain", tc.k, tc.n)
		}
		for ci, cp := range cps {
			want, err := cp.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			for _, parts := range []int{1, 2, 8} {
				shards, err := cp.Partition(parts)
				if err != nil {
					t.Fatalf("(k=%d,n=%d) cp %d: Partition(%d): %v", tc.k, tc.n, ci, parts, err)
				}
				results := make([]ShardResult, len(shards))
				for i, sh := range shards {
					// Shard checkpoints must survive the journaled path too.
					raw, err := (&ShardResult{Shard: i, Suspended: sh}).MarshalBinary()
					if err != nil {
						t.Fatal(err)
					}
					restored, err := UnmarshalShardResult(raw)
					if err != nil {
						t.Fatal(err)
					}
					results[i] = *restored
				}
				res, merged, err := cp.Merge(len(shards), results)
				if err != nil {
					t.Fatalf("(k=%d,n=%d) cp %d: Merge: %v", tc.k, tc.n, ci, err)
				}
				if res != nil || merged == nil {
					t.Fatalf("(k=%d,n=%d) cp %d: untouched merge produced a verdict", tc.k, tc.n, ci)
				}
				got, err := merged.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("(k=%d,n=%d) cp %d parts=%d: Merge(Partition(cp)) != cp (%d vs %d bytes)",
						tc.k, tc.n, ci, parts, len(got), len(want))
				}
			}
		}
		t.Logf("(k=%d,n=%d,noPrune=%v): %d randomized checkpoints round-tripped at k=1,2,8",
			tc.k, tc.n, tc.noPrune, len(cps))
	}
}

// runShardForTest resumes one shard checkpoint to its outcome under a
// single worker, classifying the result exactly as a drain-pool worker
// does (internal/drainpool).
func runShardForTest(t *testing.T, shard int, sh *Checkpoint, budget int) ShardResult {
	t.Helper()
	s, err := sh.NewSolver()
	if err != nil {
		t.Fatal(err)
	}
	s.Workers = 1
	s.StopAfterTier = true
	if budget > 0 {
		s.MaxExpansions = budget
	}
	res, cp, err := s.Resume(context.Background(), sh)
	r := ShardResult{Shard: shard, Counters: res}
	r.Counters.SurvivorTable = nil
	switch {
	case err == nil && res.Impossible:
		r.Refuted = true
		r.Prune = s.PruneExport()
	case err == nil && res.SurvivorTable != nil:
		r.Survivor = res.SurvivorTable
		r.Prune = s.PruneExport()
	case err != nil && cp != nil:
		r.Suspended = cp
	default:
		t.Fatalf("shard %d: unclassifiable outcome (err=%v, cp=%v)", shard, err, cp != nil)
	}
	return r
}

// shardedDrainForTest is an in-process mini-coordinator: partition,
// run every shard, merge — with the shard results duplicated and
// shuffled before each merge (at-least-once delivery in arbitrary
// order) — until the drain reaches a verdict.
func shardedDrainForTest(t *testing.T, ck *Checkpoint, shards, budget int, rng *rand.Rand) Result {
	t.Helper()
	for gen := 0; ; gen++ {
		if gen > 500 {
			t.Fatal("sharded drain did not converge")
		}
		parts, err := ck.Partition(shards)
		if err != nil {
			t.Fatal(err)
		}
		results := make([]ShardResult, len(parts))
		for i, sh := range parts {
			results[i] = runShardForTest(t, i, sh, budget)
		}
		// At-least-once: redeliver a random shard's result, then shuffle.
		results = append(results, results[rng.Intn(len(results))])
		rng.Shuffle(len(results), func(i, j int) { results[i], results[j] = results[j], results[i] })
		res, next, err := ck.Merge(len(parts), results)
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			return *res
		}
		ck = next
	}
}

// TestShardedDrainMatchesSingleProcess is the sharded equivalence
// contract: partition/run/merge generations — shards executed
// at-least-once, results merged in random permutations — reach the
// identical verdict and tier as an uninterrupted single-process solve,
// with a survivor (when one exists) that survives re-analysis.
// TablesExplored is NOT asserted across the shard cut: cross-shard
// nogood timing and survivor cancellation make it schedule-dependent,
// the same caveat multi-worker resumes already carry.
func TestShardedDrainMatchesSingleProcess(t *testing.T) {
	cases := []struct {
		n, k   int
		budget int
	}{
		{7, 3, 200}, {7, 4, 150}, {8, 5, 400}, {6, 3, 0 /* unlimited: whole shards settle in one leg */},
	}
	rng := rand.New(rand.NewSource(1729))
	for _, tc := range cases {
		straight, err := NewSolver(tc.n, tc.k).Solve()
		if err != nil {
			t.Fatalf("(k=%d,n=%d) uninterrupted: %v", tc.k, tc.n, err)
		}
		root, err := RootCheckpoint(NewSolver(tc.n, tc.k))
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 4} {
			res := shardedDrainForTest(t, root, shards, tc.budget, rng)
			if res.Impossible != straight.Impossible || res.Tier != straight.Tier {
				t.Errorf("(k=%d,n=%d) shards=%d: verdict/tier (%v, %d) != uninterrupted (%v, %d)",
					tc.k, tc.n, shards, res.Impossible, res.Tier, straight.Impossible, straight.Tier)
			}
			if (res.SurvivorTable == nil) != (straight.SurvivorTable == nil) {
				t.Errorf("(k=%d,n=%d) shards=%d: survivor existence differs", tc.k, tc.n, shards)
			}
			if res.SurvivorTable != nil && !survivorHolds(NewSolver(tc.n, tc.k), res.Tier, res.SurvivorTable) {
				t.Errorf("(k=%d,n=%d) shards=%d: merged survivor does not survive re-analysis", tc.k, tc.n, shards)
			}
			if res.ExpansionUnits <= 0 {
				t.Errorf("(k=%d,n=%d) shards=%d: merged counters not accumulated", tc.k, tc.n, shards)
			}
		}
	}
}

// TestMergePermutationDeterministic pins that the merged continuation
// is a function of the result SET, not the delivery order: any
// permutation (with duplicates) of the same shard results merges to
// byte-identical next checkpoints.
func TestMergePermutationDeterministic(t *testing.T) {
	s := NewSolver(7, 3)
	s.Workers = 1
	root, err := RootCheckpoint(s)
	if err != nil {
		t.Fatal(err)
	}
	// One generation deep enough to have a multi-branch frontier.
	r0 := runShardForTest(t, 0, root, 150)
	if r0.Suspended == nil {
		t.Fatal("seed leg did not suspend; lower the budget")
	}
	parts, err := r0.Suspended.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]ShardResult, len(parts))
	for i, sh := range parts {
		results[i] = runShardForTest(t, i, sh, 120)
	}
	rng := rand.New(rand.NewSource(7))
	var want []byte
	for trial := 0; trial < 6; trial++ {
		perm := append([]ShardResult(nil), results...)
		perm = append(perm, perm[rng.Intn(len(perm))]) // duplicate delivery
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		res, next, err := r0.Suspended.Merge(len(parts), perm)
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		if next != nil {
			if got, err = next.MarshalBinary(); err != nil {
				t.Fatal(err)
			}
		} else if got, err = MarshalResult(*res); err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: merge outcome differs under permutation", trial)
		}
	}
}

// TestMergeRefusesLostShard: at-least-once tolerates duplicates but a
// missing shard must fail loudly — a silently dropped shard would turn
// an undrained subtree into a bogus impossibility verdict.
func TestMergeRefusesLostShard(t *testing.T) {
	s := NewSolver(7, 3)
	s.Workers = 1
	root, err := RootCheckpoint(s)
	if err != nil {
		t.Fatal(err)
	}
	r0 := runShardForTest(t, 0, root, 150)
	if r0.Suspended == nil {
		t.Fatal("seed leg did not suspend")
	}
	parts, err := r0.Suspended.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) < 2 {
		t.Fatalf("frontier too small to partition: %d shards", len(parts))
	}
	var results []ShardResult
	for i, sh := range parts {
		if i == 1 {
			continue // shard 1 lost
		}
		results = append(results, runShardForTest(t, i, sh, 120))
	}
	_, _, err = r0.Suspended.Merge(len(parts), results)
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("merge with a lost shard: err = %v, want a shard-1 error", err)
	}
}

// TestRootCheckpointEquivalentToSolve: resuming the synthetic root
// checkpoint is the same drain as starting fresh — verdict, tier and
// (single-worker) TablesExplored all match, so a coordinator can treat
// fresh and resumed drains uniformly.
func TestRootCheckpointEquivalentToSolve(t *testing.T) {
	for _, c := range []struct{ n, k int }{{7, 3}, {6, 3}} {
		mk := func() *Solver {
			s := NewSolver(c.n, c.k)
			s.Workers = 1
			return s
		}
		straight, err := mk().Solve()
		if err != nil {
			t.Fatal(err)
		}
		root, err := RootCheckpoint(mk())
		if err != nil {
			t.Fatal(err)
		}
		raw, err := root.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		restored, err := UnmarshalCheckpoint(raw)
		if err != nil {
			t.Fatal(err)
		}
		res, cp, err := mk().Resume(context.Background(), restored)
		if err != nil || cp != nil {
			t.Fatalf("(k=%d,n=%d) root resume: err=%v cp=%v", c.k, c.n, err, cp != nil)
		}
		checkSameOutcome(t, c.n, c.k, "root-checkpoint", res, straight)
		if st := restored.Stats(); st.TierCount == 0 || st.FrontierNodes != 1 {
			t.Errorf("root checkpoint stats: %+v", st)
		}
	}
}
