package feasibility

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// TestLongRunTheorem5Deep continues the game search for the two deepest
// Theorem 5 cases, (4,9) and (5,9), with a ~2G-expansion budget. They are
// far beyond the default CI budget, so the test is opt-in:
//
//	T5LONG=1 go test ./internal/feasibility -run TestLongRunTheorem5Deep -timeout 120m -v
//
// Measured outcomes (recorded in EXPERIMENTS.md):
//   - (4,9): impossibility CONFIRMED at tier 0 — 969,756 table branches,
//     ≈ 6m45s.
//   - (5,9): the bounded adversary (pending ≤ 2, starvation loops ≤ 24
//     steps, pruned loop search) exhausts its table tree in ≈ 5m30s but
//     one table survives it. A survivor under a *restricted* adversary is
//     not a solvability proof and does not contradict Theorem 5 — (5,9)
//     is exactly the case whose paper proof needs the most intricate
//     asynchronous scheduling. The test reports this outcome instead of
//     failing.
func TestLongRunTheorem5Deep(t *testing.T) {
	if os.Getenv("T5LONG") == "" {
		t.Skip("set T5LONG=1 to run the deep (4,9)/(5,9) game searches")
	}
	for _, tc := range []struct{ n, k int }{{9, 4}, {9, 5}} {
		s := NewSolver(tc.n, tc.k)
		s.MaxExpansions = 2_000_000_000
		t0 := time.Now()
		res, err := s.Solve()
		fmt.Printf("(%d,%d) deep: impossible=%v tier=%d tables=%d err=%v elapsed=%v\n",
			tc.k, tc.n, res.Impossible, res.Tier, res.TablesExplored, err, time.Since(t0))
		if err == nil && !res.Impossible {
			t.Logf("(%d,%d): one table survived the bounded adversary (tier %d); "+
				"inconclusive — a stronger adversary model is needed to finish this case",
				tc.k, tc.n, res.Tier)
		}
	}
}
