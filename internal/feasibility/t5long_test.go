package feasibility

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// TestLongRunTheorem5Deep runs the two deepest Theorem 5 cases, (4,9)
// and (5,9), with an extended ~2G-expansion budget and timing output.
// The interned parallel engine finishes both within the default budget
// in seconds (they are covered by TestTheorem5Figures), so this test now
// serves as an opt-in timing harness for the deep cases:
//
//	T5LONG=1 go test ./internal/feasibility -run TestLongRunTheorem5Deep -v
//
// Measured outcomes:
//   - (4,9): impossibility CONFIRMED at tier 0. Seed engine: 969,756
//     table branches in ≈ 6m45s; interned engine (PR 2): ≈ 6s
//     single-threaded over 177,738 branches; symmetry-quotiented engine
//     (PR 3): ≈ 3s over 145,986 branches with 5.3× fewer interned
//     states (7.72M → 1.46M); incremental branch reuse (PR 4, the
//     default): ≈ 0.6s over the same tree with 9.7× fewer state
//     expansions (1.41M → 146k — essentially one dirty re-expansion
//     per branch).
//   - (5,9): the bounded adversary (pending ≤ 2, starvation loops ≤ 24
//     steps, pruned loop search) exhausts its table tree but one table
//     survives it (seed: ≈ 5m30s; interned: ≈ 3.8s; quotiented: ≈ 2.7s;
//     incremental: ≈ 0.4s, 5.7× fewer expansions).
//     A survivor under a *restricted* adversary is not a solvability
//     proof and does not contradict Theorem 5 — (5,9) is exactly the
//     case whose paper proof needs the most intricate asynchronous
//     scheduling.
func TestLongRunTheorem5Deep(t *testing.T) {
	if os.Getenv("T5LONG") == "" {
		t.Skip("set T5LONG=1 to run the deep (4,9)/(5,9) game searches with timing")
	}
	for _, tc := range []struct{ n, k int }{{9, 4}, {9, 5}} {
		s := NewSolver(tc.n, tc.k)
		s.MaxExpansions = 2_000_000_000
		t0 := time.Now()
		res, err := s.Solve()
		fmt.Printf("(%d,%d) deep: impossible=%v tier=%d tables=%d err=%v elapsed=%v\n",
			tc.k, tc.n, res.Impossible, res.Tier, res.TablesExplored, err, time.Since(t0))
		if err == nil && !res.Impossible {
			t.Logf("(%d,%d): one table survived the bounded adversary (tier %d); "+
				"inconclusive — a stronger adversary model is needed to finish this case",
				tc.k, tc.n, res.Tier)
		}
	}
}
