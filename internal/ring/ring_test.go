package ring

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsOnTinyRing(t *testing.T) {
	for _, n := range []int{-1, 0, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestNorm(t *testing.T) {
	r := New(5)
	cases := []struct{ in, want int }{
		{0, 0}, {4, 4}, {5, 0}, {6, 1}, {-1, 4}, {-5, 0}, {-6, 4}, {13, 3},
	}
	for _, c := range cases {
		if got := r.Norm(c.in); got != c.want {
			t.Errorf("Norm(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestStepAndAdd(t *testing.T) {
	r := New(6)
	if got := r.Step(5, CW); got != 0 {
		t.Errorf("Step(5, CW) = %d, want 0", got)
	}
	if got := r.Step(0, CCW); got != 5 {
		t.Errorf("Step(0, CCW) = %d, want 5", got)
	}
	if got := r.Add(2, 10, CW); got != 0 {
		t.Errorf("Add(2, 10, CW) = %d, want 0", got)
	}
	if got := r.Add(2, 3, CCW); got != 5 {
		t.Errorf("Add(2, 3, CCW) = %d, want 5", got)
	}
}

func TestDirectionOpposite(t *testing.T) {
	if CW.Opposite() != CCW || CCW.Opposite() != CW {
		t.Fatal("Opposite is not an involution on {CW, CCW}")
	}
	if CW.String() != "cw" || CCW.String() != "ccw" {
		t.Errorf("unexpected direction strings %q %q", CW.String(), CCW.String())
	}
}

func TestDistSymmetric(t *testing.T) {
	for n := 3; n <= 12; n++ {
		r := New(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if r.Dist(u, v) != r.Dist(v, u) {
					t.Fatalf("n=%d: Dist(%d,%d) != Dist(%d,%d)", n, u, v, v, u)
				}
				if d := r.Dist(u, v); d > n/2 {
					t.Fatalf("n=%d: Dist(%d,%d)=%d exceeds n/2", n, u, v, d)
				}
			}
		}
	}
}

func TestDistCWPlusReverseIsN(t *testing.T) {
	r := New(9)
	for u := 0; u < 9; u++ {
		for v := 0; v < 9; v++ {
			if u == v {
				continue
			}
			if r.DistCW(u, v)+r.DistCW(v, u) != 9 {
				t.Fatalf("DistCW(%d,%d)+DistCW(%d,%d) != n", u, v, v, u)
			}
		}
	}
}

func TestAdjacent(t *testing.T) {
	r := New(4)
	if !r.Adjacent(3, 0) || !r.Adjacent(0, 3) {
		t.Error("wraparound neighbors not adjacent")
	}
	if r.Adjacent(0, 2) {
		t.Error("diametral nodes reported adjacent on a 4-ring")
	}
	if r.Adjacent(1, 1) {
		t.Error("node adjacent to itself")
	}
}

func TestDiametralEven(t *testing.T) {
	r := New(8)
	if !r.Diametral(0, 4) {
		t.Error("0 and 4 should be diametral on an 8-ring")
	}
	if r.Diametral(0, 3) {
		t.Error("0 and 3 are not diametral on an 8-ring")
	}
	if r.Diametral(2, 2) {
		t.Error("a node is not diametral with itself")
	}
}

func TestDiametralOdd(t *testing.T) {
	r := New(7)
	// On a 7-ring, u and v are diametral iff distances are 3 and 4.
	for v := 1; v < 7; v++ {
		want := v == 3 || v == 4
		if got := r.Diametral(0, v); got != want {
			t.Errorf("Diametral(0,%d) = %v, want %v", v, got, want)
		}
	}
}

func TestEdgeBetween(t *testing.T) {
	r := New(5)
	if e := r.EdgeBetween(0, 1); e != Edge(0) {
		t.Errorf("EdgeBetween(0,1) = %d, want 0", e)
	}
	if e := r.EdgeBetween(1, 0); e != Edge(0) {
		t.Errorf("EdgeBetween(1,0) = %d, want 0", e)
	}
	if e := r.EdgeBetween(4, 0); e != Edge(4) {
		t.Errorf("EdgeBetween(4,0) = %d, want 4", e)
	}
	defer func() {
		if recover() == nil {
			t.Error("EdgeBetween on non-adjacent nodes did not panic")
		}
	}()
	r.EdgeBetween(0, 2)
}

func TestEdgeEndsAndIncidence(t *testing.T) {
	r := New(6)
	for e := 0; e < r.Edges(); e++ {
		u, v := r.EdgeEnds(Edge(e))
		if !r.Adjacent(u, v) {
			t.Fatalf("edge %d ends %d,%d not adjacent", e, u, v)
		}
		if r.EdgeBetween(u, v) != Edge(e) {
			t.Fatalf("EdgeBetween(EdgeEnds(%d)) != %d", e, e)
		}
	}
	for u := 0; u < 6; u++ {
		a, b := r.IncidentEdges(u)
		ua, va := r.EdgeEnds(a)
		ub, vb := r.EdgeEnds(b)
		if (ua != u && va != u) || (ub != u && vb != u) {
			t.Fatalf("IncidentEdges(%d) returned non-incident edges", u)
		}
		if a == b {
			t.Fatalf("IncidentEdges(%d) returned the same edge twice", u)
		}
	}
}

func TestStepInverse(t *testing.T) {
	// Property: stepping CW then CCW returns to the start, for any ring.
	f := func(nRaw, uRaw uint8) bool {
		n := int(nRaw%30) + 3
		r := New(n)
		u := r.Norm(int(uRaw))
		return r.Step(r.Step(u, CW), CCW) == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistTriangleInequality(t *testing.T) {
	f := func(nRaw, aRaw, bRaw, cRaw uint8) bool {
		n := int(nRaw%30) + 3
		r := New(n)
		a, b, c := r.Norm(int(aRaw)), r.Norm(int(bRaw)), r.Norm(int(cRaw))
		return r.Dist(a, c) <= r.Dist(a, b)+r.Dist(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
