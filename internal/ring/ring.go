// Package ring provides arithmetic on an anonymous n-node ring.
//
// Nodes are labeled 0..n-1 for the simulator's internal bookkeeping only;
// the labels carry no meaning in the robot model (the ring is anonymous and
// unoriented). Directions +1 and -1 are likewise simulator-internal: they
// give the engine a consistent way to apply moves, but algorithms never
// observe them.
package ring

import "fmt"

// Direction is a simulator-internal orientation of the ring.
// Robots have no compass; a Direction only labels which neighbor a move
// targets from the engine's point of view.
type Direction int

const (
	// CW is the direction of increasing node labels.
	CW Direction = 1
	// CCW is the direction of decreasing node labels.
	CCW Direction = -1
)

// Opposite returns the reverse direction.
func (d Direction) Opposite() Direction { return -d }

func (d Direction) String() string {
	switch d {
	case CW:
		return "cw"
	case CCW:
		return "ccw"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// Ring is an n-node cycle. The zero value is invalid; use New.
type Ring struct {
	n int
}

// New returns a ring with n nodes. It panics if n < 3, matching the paper's
// model (§2 assumes n ≥ 3).
func New(n int) Ring {
	if n < 3 {
		panic(fmt.Sprintf("ring: need n >= 3 nodes, got %d", n))
	}
	return Ring{n: n}
}

// N returns the number of nodes.
func (r Ring) N() int { return r.n }

// Norm maps any integer to its node label in [0, n).
func (r Ring) Norm(v int) int {
	v %= r.n
	if v < 0 {
		v += r.n
	}
	return v
}

// Step returns the neighbor of node u in direction d.
func (r Ring) Step(u int, d Direction) int {
	return r.Norm(u + int(d))
}

// Add returns the node reached from u by walking k steps in direction d.
func (r Ring) Add(u, k int, d Direction) int {
	return r.Norm(u + k*int(d))
}

// DistCW returns the number of edges on the clockwise walk from u to v.
func (r Ring) DistCW(u, v int) int {
	return r.Norm(v - u)
}

// Dist returns the length of a shortest path between u and v.
func (r Ring) Dist(u, v int) int {
	d := r.DistCW(u, v)
	return min(d, r.n-d)
}

// Adjacent reports whether u and v share an edge.
func (r Ring) Adjacent(u, v int) bool {
	return r.Dist(u, v) == 1
}

// Diametral reports whether u and v are diametral in the paper's sense
// (§4.2, Theorem 2): for even n the two u–v paths have equal length; for
// odd n their lengths differ by exactly one.
func (r Ring) Diametral(u, v int) bool {
	d := r.DistCW(u, v)
	other := r.n - d
	if u == v {
		return false
	}
	diff := d - other
	if diff < 0 {
		diff = -diff
	}
	if r.n%2 == 0 {
		return diff == 0
	}
	return diff == 1
}

// Edge identifies the undirected edge between node U and its clockwise
// neighbor. Edge i connects nodes i and i+1 (mod n).
type Edge int

// Edges returns the number of edges (= n).
func (r Ring) Edges() int { return r.n }

// EdgeBetween returns the edge connecting adjacent nodes u and v.
// It panics if they are not adjacent.
func (r Ring) EdgeBetween(u, v int) Edge {
	switch {
	case r.Norm(u+1) == v:
		return Edge(u)
	case r.Norm(v+1) == u:
		return Edge(v)
	}
	panic(fmt.Sprintf("ring: nodes %d and %d are not adjacent in an %d-ring", u, v, r.n))
}

// EdgeEnds returns the two endpoints of edge e.
func (r Ring) EdgeEnds(e Edge) (int, int) {
	u := r.Norm(int(e))
	return u, r.Norm(u + 1)
}

// IncidentEdges returns the two edges incident to node u.
func (r Ring) IncidentEdges(u int) (Edge, Edge) {
	return Edge(r.Norm(u - 1)), Edge(u)
}
