package mcsim

// Mask contamination: the mixed graph-searching rules of §4.1 evaluated
// on single-word edge bitmasks, the n ≤ 64 generalization of the
// feasibility solver's n ≤ 32 kernel (internal/feasibility/state.go).
// Edge e joins nodes e and e+1 (mod n); bit e of a mask is edge e's
// state. Semantics are exactly package search's Contamination tracker —
// guarded edges (both endpoints occupied) are clear, a traversed edge
// becomes clear, and contamination spreads from a contaminated edge
// through an unoccupied endpoint to the adjacent edges, iterated to
// fixpoint. TestMaskContaminationMatchesOracle pins the equivalence.

// fullMask returns the n low bits set (valid for n ≤ 64: a shift count
// of 64 yields 0, so 0−1 wraps to all-ones).
func fullMask(n int) uint64 { return uint64(1)<<uint(n) - 1 }

// rotUp1 rotates an n-bit mask up by one: bit u of the result is bit
// u−1 (mod n) of m.
func rotUp1(m uint64, n int) uint64 {
	return (m<<1 | m>>(uint(n)-1)) & fullMask(n)
}

// rotDown1 rotates an n-bit mask down by one: bit u of the result is
// bit u+1 (mod n) of m.
func rotDown1(m uint64, n int) uint64 {
	return (m>>1 | m<<(uint(n)-1)) & fullMask(n)
}

// contRefresh returns the stable clear-edge mask reached from clear
// under occupancy occ: guarded edges become clear, then recontamination
// spreads to fixpoint.
func contRefresh(clear, occ uint64, n int) uint64 {
	full := fullMask(n)
	clear |= occ & rotDown1(occ, n)
	dirty := full &^ clear
	for {
		// Unoccupied endpoints of contaminated edges (edge e has ends e
		// and e+1, so node u is an end of edges u−1 and u)…
		nodes := (dirty | rotUp1(dirty, n)) &^ occ
		// …recontaminate both of their incident edges.
		next := dirty | nodes | rotDown1(nodes, n)
		if next == dirty {
			return full &^ dirty
		}
		dirty = next
	}
}

// contInit returns the initial clear mask for occupancy occ: every edge
// contaminated, then the guarded-edge rule applied (the state
// search.NewContamination starts from).
func contInit(occ uint64, n int) uint64 { return contRefresh(0, occ, n) }

// clearReset is the adversarial probe applied after every all-clear
// event, mirroring search.Contamination.Reset: all edges recontaminated,
// then the guarded-edge rule for the current occupancy. Without it the
// all-clear state would be absorbing (no contaminated edge is left to
// spread), so "clearing again" — the recurrence defining perpetual
// searching — could never be observed. The degenerate k = n occupancy
// (every edge guarded, the probe is immediately all-clear again) zeroes
// the mask instead, avoiding an event per move.
func clearReset(occ uint64, n int) uint64 {
	c := contInit(occ, n)
	if c == fullMask(n) {
		return 0
	}
	return c
}

// contMove returns the clear mask after a robot moved from node `from`
// to adjacent node `to` under post-move occupancy occ: the traversed
// edge becomes clear, then the guarded/recontamination fixpoint runs.
func contMove(clear, occ uint64, n, from, to int) uint64 {
	var traversed uint64
	if (from+1)%n == to {
		traversed = 1 << uint(from)
	} else {
		traversed = 1 << uint(to)
	}
	return contRefresh(clear|traversed, occ, n)
}
