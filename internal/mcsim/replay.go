package mcsim

import (
	"fmt"

	"ringrobots/internal/corda"
	"ringrobots/internal/ring"
)

// Trajectory is one lane's complete realized history: the adversary
// schedule (action sequence plus the Either resolutions, one per moving
// Look-Compute), every executed move, and how the lane ended. Because
// lanes are pure functions of (spec, lane), the batch engine records
// nothing during bulk runs — a Trajectory is reconstructed on demand by
// re-running the lane with recording enabled.
type Trajectory struct {
	Lane    int
	Actions []corda.Action
	// Either holds the adversary's direction choices in resolution
	// order: exactly one per moving Look-Compute (AsyncRunner evaluates
	// ResolveEither eagerly on every non-Stay decision).
	Either  []ring.Direction
	Moves   []corda.MoveEvent
	Outcome corda.LaneOutcome
	Ticks   int
}

// Script converts the trajectory's schedule into a corda.Script, the
// fixed adversary the proof engines accept.
func (t Trajectory) Script() *corda.Script {
	return &corda.Script{
		Actions: append([]corda.Action(nil), t.Actions...),
		Either:  append([]ring.Direction(nil), t.Either...),
	}
}

// ReplayLane re-runs one lane deterministically with recording enabled
// and returns its trajectory.
func (e *Engine) ReplayLane(lane int) (Trajectory, error) {
	if lane < 0 || lane >= e.spec.Samples {
		return Trajectory{}, fmt.Errorf("mcsim: lane %d out of range [0, %d)", lane, e.spec.Samples)
	}
	rec := Trajectory{Lane: lane}
	e.runLane(e.ws[0], lane, &rec)
	rec.Outcome = corda.LaneOutcome(e.outcome[lane])
	rec.Ticks = int(e.ticks[lane])
	return rec, nil
}

// VerifyLane replays the lane's recorded schedule through a fresh
// corda.AsyncRunner and checks the resulting move sequence is identical
// move-for-move (robot, from, to, and step index) — the differential
// contract between the batch engine and the reference semantics. It
// returns the trajectory so callers can report on it.
func (e *Engine) VerifyLane(lane int) (Trajectory, error) {
	t, err := e.ReplayLane(lane)
	if err != nil {
		return Trajectory{}, err
	}
	spec := e.spec
	w := corda.FromConfig(spec.Start, spec.Exclusive)
	if spec.Multiplicity {
		w.EnableMultiplicityDetection()
	}
	r := corda.NewAsyncRunner(w, spec.Algorithm, t.Script())
	var got []corda.MoveEvent
	rec := recorder{moves: &got}
	r.Observe(rec)
	for step := 0; step < len(t.Actions); step++ {
		if _, serr := r.Step(); serr != nil {
			if IsCollision(serr) && t.Outcome == corda.LaneCollision && step == len(t.Actions)-1 {
				break // both engines end the lane on this collision
			}
			return t, fmt.Errorf("mcsim: lane %d replay failed at step %d: %w", lane, step, serr)
		}
	}
	if len(got) != len(t.Moves) {
		return t, fmt.Errorf("mcsim: lane %d replay produced %d moves, batch recorded %d", lane, len(got), len(t.Moves))
	}
	for i := range got {
		if got[i] != t.Moves[i] {
			return t, fmt.Errorf("mcsim: lane %d move %d diverged: replay %+v, batch %+v", lane, i, got[i], t.Moves[i])
		}
	}
	return t, nil
}

type recorder struct{ moves *[]corda.MoveEvent }

func (r recorder) ObserveMove(ev corda.MoveEvent, w *corda.World) {
	*r.moves = append(*r.moves, ev)
}
