package mcsim

import "time"

// Monotonic-clock helpers for the throughput test, kept out of the
// library (the engine itself never reads the clock).
func nowMono() time.Time            { return time.Now() }
func sinceMono(t time.Time) float64 { return time.Since(t).Seconds() }
