package mcsim

import (
	"ringrobots/internal/config"
	"ringrobots/internal/core"
	"ringrobots/internal/corda"
)

// SpecFor assembles the SimSpec matching a task's capability model —
// the same pairing core.NewWorld makes for the proof engines: exclusive
// worlds for the two perpetual tasks (with contamination tracking for
// searching), a multiplicity-detecting non-exclusive world stopping on
// gathering for the gathering task. The algorithm is the paper's
// (core.New), so the start must lie in the proven-solvable range.
func SpecFor(task core.Task, start config.Config, samples, maxSteps int, seed uint64) (corda.SimSpec, error) {
	alg, err := core.New(task, start.N(), start.K())
	if err != nil {
		return corda.SimSpec{}, err
	}
	spec := corda.SimSpec{
		Start:     start,
		Algorithm: alg,
		Samples:   samples,
		MaxSteps:  maxSteps,
		Seed:      seed,
	}
	switch task {
	case core.Gathering:
		spec.Multiplicity = true
		spec.StopOnGathered = true
	case core.Searching:
		spec.Exclusive = true
		spec.TrackClearing = true
	default: // Exploration: coverage statistics come for free
		spec.Exclusive = true
	}
	if err := spec.Validate(); err != nil {
		return corda.SimSpec{}, err
	}
	return spec, nil
}
