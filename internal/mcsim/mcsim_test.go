package mcsim

import (
	"testing"

	"ringrobots/internal/config"
	"ringrobots/internal/corda"
	"ringrobots/internal/core"
	"ringrobots/internal/ring"
	"ringrobots/internal/search"
)

// rigidStart returns a deterministic rigid exclusive configuration:
// a block of k−1 adjacent robots plus one straggler, pushed out until
// the configuration is rigid.
func rigidStart(t testing.TB, n, k int) config.Config {
	t.Helper()
	nodes := make([]int, k)
	for i := 0; i < k-1; i++ {
		nodes[i] = i
	}
	for j := k - 1; j < n; j++ {
		nodes[k-1] = j
		c, err := config.New(n, nodes...)
		if err == nil && c.IsRigid() {
			return c
		}
	}
	t.Fatalf("no rigid start found for n=%d k=%d", n, k)
	return config.Config{}
}

func specFor(t testing.TB, task core.Task, n, k, samples, maxSteps int, seed uint64) corda.SimSpec {
	t.Helper()
	spec, err := SpecFor(task, rigidStart(t, n, k), samples, maxSteps, seed)
	if err != nil {
		t.Fatalf("SpecFor(%v, n=%d, k=%d): %v", task, n, k, err)
	}
	return spec
}

func simulate(t testing.TB, b corda.Backend) corda.SimReport {
	t.Helper()
	rep, err := b.Simulate()
	if err != nil {
		t.Fatalf("%s backend: %v", b.Name(), err)
	}
	return rep
}

// workloads covers all three algorithms: Align+Contraction gathering,
// Ring Clearing, and NminusThree.
func workloads(t testing.TB, samples, maxSteps int, seed uint64) map[string]corda.SimSpec {
	return map[string]corda.SimSpec{
		"gathering-12-5":  specFor(t, core.Gathering, 12, 5, samples, maxSteps, seed),
		"searching-12-6":  specFor(t, core.Searching, 12, 6, samples, maxSteps, seed),
		"searching-13-10": specFor(t, core.Searching, 13, 10, samples, maxSteps, seed),
	}
}

// TestBatchMatchesProofBackend is the tentpole differential: the batch
// engine and the AsyncRunner-driven proof backend must produce
// bit-identical reports on the same spec, for every algorithm family
// and at several worker counts.
func TestBatchMatchesProofBackend(t *testing.T) {
	for name, spec := range workloads(t, 48, 2000, 0xC0FFEE) {
		t.Run(name, func(t *testing.T) {
			proof, err := NewProof(spec)
			if err != nil {
				t.Fatal(err)
			}
			want := simulate(t, proof)
			for _, workers := range []int{1, 3} {
				e, err := New(spec, workers)
				if err != nil {
					t.Fatal(err)
				}
				if got := simulate(t, e); got != want {
					t.Errorf("workers=%d: batch report differs from proof backend\nbatch: %+v\nproof: %+v", workers, got, want)
				}
			}
		})
	}
}

// TestLaneReplayDifferential replays sampled batch lanes move-for-move
// through corda.AsyncRunner under their recorded schedules.
func TestLaneReplayDifferential(t *testing.T) {
	for name, spec := range workloads(t, 24, 1500, 0xFEED) {
		t.Run(name, func(t *testing.T) {
			e, err := New(spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.Simulate(); err != nil {
				t.Fatal(err)
			}
			for lane := 0; lane < spec.Samples; lane++ {
				if _, err := e.VerifyLane(lane); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestWorkerCountDeterminism pins the contract that the report is a
// pure function of the spec: identical at workers = 1, 2 and 8.
func TestWorkerCountDeterminism(t *testing.T) {
	for name, spec := range workloads(t, 256, 4000, 0xDEADBEEF) {
		t.Run(name, func(t *testing.T) {
			var want corda.SimReport
			for i, workers := range []int{1, 2, 8} {
				e, err := New(spec, workers)
				if err != nil {
					t.Fatal(err)
				}
				got := simulate(t, e)
				if i == 0 {
					want = got
					continue
				}
				if got != want {
					t.Errorf("workers=%d report differs from workers=1\ngot:  %+v\nwant: %+v", workers, got, want)
				}
			}
		})
	}
}

// TestGoldenSummary pins the aggregate report for one (n, k, seed)
// triple, so any accidental change to the rng stream, the scheduler
// semantics, or the aggregation is caught as a diff, not a silent
// statistics shift.
func TestGoldenSummary(t *testing.T) {
	spec := specFor(t, core.Gathering, 12, 5, 200, 20000, 12345)
	e, err := New(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := simulate(t, e)
	want := goldenGathering12x5Seed12345
	if got != want {
		t.Errorf("golden summary changed\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestMaskContaminationMatchesOracle drives random non-exclusive walks
// and compares the single-word contamination kernel against package
// search's Contamination tracker edge-for-edge after every move.
func TestMaskContaminationMatchesOracle(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{5, 2}, {9, 4}, {12, 6}, {17, 3}} {
		// Rigidity is irrelevant here: any block-plus-straggler start do.
		nodes := make([]int, tc.k)
		for i := 0; i < tc.k-1; i++ {
			nodes[i] = i
		}
		nodes[tc.k-1] = tc.k + 1
		start, err := config.New(tc.n, nodes...)
		if err != nil {
			t.Fatal(err)
		}
		w := corda.FromConfig(start, false)
		oracle := search.NewContamination(w)
		occ, err := start.OccupancyMask()
		if err != nil {
			t.Fatal(err)
		}
		clear := contInit(occ, tc.n)
		cnt := make([]int, tc.n)
		for _, u := range start.Nodes() {
			cnt[u]++
		}
		check := func(move int) {
			var want uint64
			for e := 0; e < tc.n; e++ {
				if oracle.EdgeClear(ring.Edge(e)) {
					want |= 1 << uint(e)
				}
			}
			if clear != want {
				t.Fatalf("n=%d k=%d move %d: mask kernel %012b, oracle %012b", tc.n, tc.k, move, clear, want)
			}
		}
		check(-1)
		rng := laneSeed(0xABCD, tc.n*64+tc.k)
		for move := 0; move < 400; move++ {
			id := randIndex(nextRand(&rng), tc.k)
			dir := ring.CW
			if nextRand(&rng)&1 == 1 {
				dir = ring.CCW
			}
			ev, err := w.MoveRobot(id, dir)
			if err != nil {
				t.Fatal(err)
			}
			oracle.ObserveMove(ev, w)
			cnt[ev.From]--
			if cnt[ev.From] == 0 {
				occ &^= 1 << uint(ev.From)
			}
			if cnt[ev.To] == 0 {
				occ |= 1 << uint(ev.To)
			}
			cnt[ev.To]++
			clear = contMove(clear, occ, tc.n, ev.From, ev.To)
			check(move)
		}
	}
}

// TestCrossValidationFeasible checks the empirical side of the paper's
// characterization on solvable instances: gathering lanes all reach the
// goal within budget, and searching lanes keep re-entering the
// all-edges-clear state (perpetual clearing).
func TestCrossValidationFeasible(t *testing.T) {
	samples := 200
	if testing.Short() {
		samples = 40
	}
	t.Run("gathering-12-5", func(t *testing.T) {
		spec := specFor(t, core.Gathering, 12, 5, samples, 100000, 2026)
		e, err := New(spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		rep := simulate(t, e)
		if rep.Gathered() != rep.Samples {
			t.Errorf("gathered %d of %d lanes (outcomes %v)", rep.Gathered(), rep.Samples, rep.Outcomes)
		}
		if rep.Outcomes[corda.LaneCollision] != 0 {
			t.Errorf("algorithm caused %d collisions", rep.Outcomes[corda.LaneCollision])
		}
	})
	t.Run("searching-12-6", func(t *testing.T) {
		spec := specFor(t, core.Searching, 12, 6, samples, 20000, 2026)
		e, err := New(spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		rep := simulate(t, e)
		if rep.RecurrentClearLanes != rep.Samples {
			t.Errorf("recurrent clearing in %d of %d lanes (all-clear events %d)", rep.RecurrentClearLanes, rep.Samples, rep.AllClearEvents)
		}
		if rep.Outcomes[corda.LaneCollision] != 0 {
			t.Errorf("algorithm caused %d collisions", rep.Outcomes[corda.LaneCollision])
		}
	})
}

// TestCrossValidationImpossible samples the paper's flagship impossible
// instance — searching with k = 4 on n = 9 (Theorem 5, the verdict the
// feasibility solver certifies) — under many random schedules, running
// Ring Clearing outside its validated range. No sampled schedule may
// exhibit perpetual clearing; empirically not even one transient
// all-clear state occurs. (Gathering's k = 2 impossibility is
// adversarial and is NOT visible under random schedules — two robots
// happily meet by luck — which is exactly why the searching instance is
// the meaningful empirical cross-check.)
func TestCrossValidationImpossible(t *testing.T) {
	samples := 100000
	if testing.Short() {
		samples = 5000
	}
	spec := corda.SimSpec{
		Start:         rigidStart(t, 9, 4),
		Algorithm:     search.RingClearing{},
		Exclusive:     true,
		TrackClearing: true,
		Samples:       samples,
		MaxSteps:      300,
		Seed:          0x94,
	}
	e, err := New(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := simulate(t, e)
	if rep.RecurrentClearLanes != 0 {
		t.Errorf("impossible instance (9,4) showed recurrent clearing in %d of %d lanes", rep.RecurrentClearLanes, rep.Samples)
	}
	if rep.AllClearLanes != 0 {
		t.Errorf("impossible instance (9,4) reached all-clear in %d of %d lanes", rep.AllClearLanes, rep.Samples)
	}
}

// TestSteadyStateZeroAllocs pins the perf contract: once the decision
// cache is warm, re-running a single-worker engine allocates nothing.
func TestSteadyStateZeroAllocs(t *testing.T) {
	for name, spec := range workloads(t, 32, 1500, 7) {
		t.Run(name, func(t *testing.T) {
			e, err := New(spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			simulate(t, e) // warm the decision cache
			allocs := testing.AllocsPerRun(3, func() {
				if _, err := e.Simulate(); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state Simulate allocated %.1f times per run, want 0", allocs)
			}
		})
	}
}

// goldenGathering12x5Seed12345 is the pinned aggregate for the
// (n=12, k=5, seed=12345) gathering batch — recalibrate only on an
// intentional semantics change.
var goldenGathering12x5Seed12345 = func() corda.SimReport {
	r := corda.SimReport{
		Samples:     200,
		Steps:       12234,
		Moves:       1600,
		GatherSum:   12234,
		CoverageSum: 1200,
	}
	r.Outcomes[corda.LaneGathered] = 200
	r.GatherHist.Buckets[6] = 120 // gather times in [32, 64)
	r.GatherHist.Buckets[7] = 80  // gather times in [64, 128)
	return r
}()

// TestThroughputFloor pins the perf acceptance criteria: the
// single-worker batch engine sustains at least one million scheduler
// ticks per second, and outruns the goroutine-per-robot corda.Engine on
// (n=12, k=5) gathering by at least 50× per completed sample. Skipped
// under -short (the race-detector smoke job slows both sides
// asymmetrically).
func TestThroughputFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput floor not meaningful under -short / -race")
	}
	spec := specFor(t, core.Gathering, 12, 5, 4096, 100000, 99)
	e, err := New(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	simulate(t, e) // warm the decision cache
	start := nowMono()
	rep := simulate(t, e)
	batchSec := sinceMono(start)
	stepsPerSec := float64(rep.Steps) / batchSec
	if stepsPerSec < 1e6 {
		t.Errorf("batch engine sustained %.0f steps/sec single-worker, want >= 1e6", stepsPerSec)
	}
	if rep.Gathered() != rep.Samples {
		t.Fatalf("gathered %d of %d lanes", rep.Gathered(), rep.Samples)
	}
	batchPerSample := batchSec / float64(rep.Samples)

	// Goroutine-per-robot baseline on the same workload.
	const engineRuns = 20
	start = nowMono()
	for i := 0; i < engineRuns; i++ {
		w := corda.FromConfig(spec.Start, false)
		w.EnableMultiplicityDetection()
		ge := &corda.Engine{
			World:     w,
			Algorithm: spec.Algorithm,
			Budget:    2_000_000,
			Seed:      int64(i + 1),
			Stop:      (*corda.World).Gathered,
		}
		if _, _, err := ge.Run(); err != nil {
			t.Fatal(err)
		}
		if !w.Gathered() {
			t.Fatal("goroutine engine budget exhausted before gathering")
		}
	}
	enginePerSample := sinceMono(start) / engineRuns
	if ratio := enginePerSample / batchPerSample; ratio < 50 {
		t.Errorf("batch engine only %.1fx faster per gathered sample than the goroutine engine (batch %.3gs, engine %.3gs), want >= 50x",
			ratio, batchPerSample, enginePerSample)
	} else {
		t.Logf("throughput: %.2fM steps/sec single-worker; %.0fx vs goroutine engine (batch %.3gs/sample, engine %.3gs/sample)",
			stepsPerSec/1e6, ratio, batchPerSample, enginePerSample)
	}
}
