package mcsim

import (
	"ringrobots/internal/corda"
	"ringrobots/internal/ring"
)

// ProofBackend runs the same Monte Carlo workload as the batch Engine,
// but one world at a time through corda.AsyncRunner — the repo's
// reference asynchronous semantics. Its laneScheduler consumes the
// per-lane randomness stream on exactly the schedule rng.go documents,
// so every lane evolves bit-identically to the batch engine's and the
// two backends' SimReports compare equal with ==. It exists to be slow
// and obviously right: the standing differential oracle for the batch
// engine, and the throughput baseline the speedup criterion is measured
// against.
type ProofBackend struct {
	spec corda.SimSpec
}

// NewProof builds the AsyncRunner-driven reference backend.
func NewProof(spec corda.SimSpec) (*ProofBackend, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &ProofBackend{spec: spec}, nil
}

// Name implements corda.Backend.
func (p *ProofBackend) Name() string { return "proof" }

// Simulate implements corda.Backend.
func (p *ProofBackend) Simulate() (corda.SimReport, error) {
	rep := corda.SimReport{Samples: p.spec.Samples}
	for lane := 0; lane < p.spec.Samples; lane++ {
		if err := p.runLane(lane, &rep); err != nil {
			return corda.SimReport{}, err
		}
	}
	return rep, nil
}

// runLane drives one lane through a fresh AsyncRunner and folds it into
// the report with the same accumulate the batch engine uses.
func (p *ProofBackend) runLane(lane int, rep *corda.SimReport) error {
	spec := p.spec
	n := spec.Start.N()
	w := corda.FromConfig(spec.Start, spec.Exclusive)
	if spec.Multiplicity {
		w.EnableMultiplicityDetection()
	}
	occ0, err := spec.Start.OccupancyMask()
	if err != nil {
		return err
	}
	sched := &laneScheduler{state: laneSeed(spec.Seed, lane), k: spec.Start.K()}
	r := corda.NewAsyncRunner(w, spec.Algorithm, sched)
	tr := newLaneTracker(n, occ0, spec.TrackClearing)
	r.Observe(tr)

	maxT := spec.MaxSteps
	outcome := corda.LaneBudget
	ticks := 0
	for {
		if spec.StopOnGathered && w.Gathered() && r.PendingCount() == 0 {
			outcome = corda.LaneGathered
			break
		}
		if ticks >= maxT {
			break
		}
		_, serr := r.Step()
		ticks++
		if serr != nil {
			if !IsCollision(serr) {
				return serr
			}
			outcome = corda.LaneCollision
			break
		}
	}
	accumulate(rep, n, spec.TrackClearing, outcome, uint32(ticks), tr.moves,
		tr.visited, tr.clear, tr.allClearEvents)
	return nil
}

// laneScheduler adapts one lane's splittable randomness stream to the
// AsyncScheduler interface, drawing on the contract's schedule: one draw
// per tick to pick the robot (a pending robot moves, an idle one looks),
// one draw per ResolveEither. AsyncRunner evaluates ResolveEither
// eagerly on every moving decision, so the Either draw lands exactly
// where the batch engine burns its.
type laneScheduler struct {
	state uint64
	k     int
}

func (s *laneScheduler) NextAction(w *corda.World, pending []bool, step int) corda.Action {
	i := randIndex(nextRand(&s.state), s.k)
	if pending[i] {
		return corda.Action{Kind: corda.ActMove, Robot: i}
	}
	return corda.Action{Kind: corda.ActLookCompute, Robot: i}
}

func (s *laneScheduler) ResolveEither(w *corda.World, id, step int) ring.Direction {
	if nextRand(&s.state)&1 == 1 {
		return ring.CCW
	}
	return ring.CW
}

// laneTracker observes one lane's moves and maintains the same derived
// state the batch engine carries inline: occupancy and multiplicity
// counts, the visited-node mask, and (optionally) the contamination
// state with its all-clear event bookkeeping.
type laneTracker struct {
	n          int
	trackClear bool

	cnt     []int
	occ     uint64
	visited uint64
	moves   uint32

	clear          uint64
	allClearEvents uint32
}

func newLaneTracker(n int, occ0 uint64, trackClear bool) *laneTracker {
	t := &laneTracker{n: n, trackClear: trackClear, cnt: make([]int, n), occ: occ0, visited: occ0}
	for u := 0; u < n; u++ {
		if occ0&(1<<uint(u)) != 0 {
			t.cnt[u] = 1
		}
	}
	if trackClear {
		t.clear = contInit(occ0, n)
		if t.clear == fullMask(n) {
			t.allClearEvents = 1
			t.clear = clearReset(occ0, n)
		}
	}
	return t
}

func (t *laneTracker) ObserveMove(ev corda.MoveEvent, w *corda.World) {
	t.cnt[ev.From]--
	if t.cnt[ev.From] == 0 {
		t.occ &^= 1 << uint(ev.From)
	}
	if t.cnt[ev.To] == 0 {
		t.occ |= 1 << uint(ev.To)
	}
	t.cnt[ev.To]++
	t.visited |= 1 << uint(ev.To)
	t.moves++
	if t.trackClear {
		t.clear = contMove(t.clear, t.occ, t.n, ev.From, ev.To)
		if t.clear == fullMask(t.n) {
			t.allClearEvents++
			t.clear = clearReset(t.occ, t.n)
		}
	}
}
