package mcsim

// decisionCache memoizes resolved Compute outcomes per perception
// class. Algorithms are pure functions of their Snapshot, and a
// Snapshot is fully determined by the occupancy mask rotated so the
// observer sits at node 0 plus the observer's multiplicity bit — so one
// open-addressing probe replaces view construction, Config
// reconstruction and the algorithm's classification logic on every
// steady-state Look. Misses (the only allocating path) fall back to
// corda.SnapshotFromMask + Algorithm.Compute and insert; after warmup
// the step loop never allocates.
//
// Keys: the observer-rotated mask always has bit 0 set (the observer's
// own node), so it is stored shifted right by one, freeing bit 63 for
// the multiplicity flag — full n ≤ 64 support in a single word.

// Resolved decision classes. Unlike corda.Decision these are already
// mapped to simulator directions via the Lo-direction of the perception
// class, so the step loop needs no view comparison.
const (
	decStay   = 0 // no move this cycle
	decCW     = 1 // move clockwise
	decCCW    = 2 // move counter-clockwise
	decEither = 3 // adversary-resolved (symmetric perception or Either)

	decEmpty = 0xFF // open-addressing empty slot marker
)

type decisionCache struct {
	keys []uint64
	vals []uint8
	used int
}

func newDecisionCache() *decisionCache {
	c := &decisionCache{}
	c.grow(1 << 10)
	return c
}

func (c *decisionCache) grow(capacity int) {
	oldKeys, oldVals := c.keys, c.vals
	c.keys = make([]uint64, capacity)
	c.vals = make([]uint8, capacity)
	for i := range c.vals {
		c.vals[i] = decEmpty
	}
	c.used = 0
	for i, v := range oldVals {
		if v != decEmpty {
			c.put(oldKeys[i], v)
		}
	}
}

// get probes for key; ok is false on a miss.
func (c *decisionCache) get(key uint64) (uint8, bool) {
	mask := uint64(len(c.keys) - 1)
	i := mix64(key) & mask
	for {
		v := c.vals[i]
		if v == decEmpty {
			return 0, false
		}
		if c.keys[i] == key {
			return v, true
		}
		i = (i + 1) & mask
	}
}

// put inserts key → val, growing at 3/4 load.
func (c *decisionCache) put(key uint64, val uint8) {
	if 4*(c.used+1) > 3*len(c.keys) {
		c.grow(2 * len(c.keys))
	}
	mask := uint64(len(c.keys) - 1)
	i := mix64(key) & mask
	for c.vals[i] != decEmpty {
		if c.keys[i] == key {
			c.vals[i] = val
			return
		}
		i = (i + 1) & mask
	}
	c.keys[i] = key
	c.vals[i] = val
	c.used++
}
