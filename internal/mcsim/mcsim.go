// Package mcsim is the throughput-oriented Monte Carlo simulation
// backend for the min-CORDA ring model: thousands of independent worlds
// held in struct-of-arrays layout and stepped in a tight,
// allocation-free loop — no goroutine per robot, no channels — at
// millions of Look-Compute-Move half-cycles per second.
//
// Each lane is one independent fair-schedule sample: per-lane
// randomness comes from a splittable seeded stream (rng.go), every
// scheduler tick activates a uniformly chosen robot (executing its
// pending move if it holds one, serving a Look-Compute otherwise), and
// Compute outcomes are memoized per perception class (cache.go), so the
// steady-state step loop touches a few words of lane state and one
// cache line of the decision table per tick.
//
// Lane state mirrors the feasibility solver's packed representation
// lifted from n ≤ 32 to n ≤ 64: a 64-bit occupancy mask plus two 64-bit
// pending words (pending-move flag and direction per robot), with
// per-lane robot positions and node multiplicities in flat arrays.
//
// The package provides two corda.Backend implementations sharing one
// aggregation path: Engine (the batch engine) and ProofBackend
// (identical workload driven one world at a time through
// corda.AsyncRunner). Both consume per-lane randomness on the same
// schedule, so their SimReports are bit-identical — the standing
// differential oracle — and any single batch lane can be replayed
// move-for-move through the proof engine under its recorded schedule
// (replay.go).
package mcsim

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"ringrobots/internal/config"
	"ringrobots/internal/corda"
	"ringrobots/internal/ring"
)

// Engine is the batched struct-of-arrays backend. Create with New; an
// Engine's buffers are sized once and reused across Simulate calls, so
// repeated runs of a warm engine allocate nothing.
type Engine struct {
	spec    corda.SimSpec
	workers int

	n, k int
	// start state shared by every lane
	startPos   []uint8
	startOcc   uint64
	startClear uint64

	// struct-of-arrays lane state
	pos      []uint8  // pos[lane*k+i] = node of robot i
	cnt      []uint8  // cnt[lane*n+u] = robots on node u
	occ      []uint64 // occupancy mask per lane
	pendMask []uint64 // bit i: robot i holds a computed-but-unexecuted move
	pendDir  []uint64 // bit i: that move is counter-clockwise

	// per-lane outputs, aggregated in lane order after the run
	outcome   []uint8
	ticks     []uint32
	laneMoves []uint32
	visited   []uint64
	clearEnd  []uint64
	allClearN []uint32

	ws []*workerState
}

// workerState is one worker's private scratch: the decision cache and
// the view buffers behind cache misses. Workers never share mutable
// state, which is what keeps the lane loop lock- and allocation-free.
type workerState struct {
	cache        *decisionCache
	bufLo, bufHi config.View
}

// New builds a batch engine for the spec with the given worker count
// (0 means GOMAXPROCS). Lane buffers are allocated here, once.
func New(spec corda.SimSpec, workers int) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.MaxSteps > 1<<31-1 {
		return nil, fmt.Errorf("mcsim: MaxSteps %d exceeds the per-lane tick limit", spec.MaxSteps)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Samples {
		workers = spec.Samples
	}
	n, k := spec.Start.N(), spec.Start.K()
	occ0, err := spec.Start.OccupancyMask()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		spec:     spec,
		workers:  workers,
		n:        n,
		k:        k,
		startOcc: occ0,
	}
	for _, u := range spec.Start.Nodes() {
		e.startPos = append(e.startPos, uint8(u))
	}
	if spec.TrackClearing {
		e.startClear = contInit(occ0, n)
	}
	lanes := spec.Samples
	e.pos = make([]uint8, lanes*k)
	e.cnt = make([]uint8, lanes*n)
	e.occ = make([]uint64, lanes)
	e.pendMask = make([]uint64, lanes)
	e.pendDir = make([]uint64, lanes)
	e.outcome = make([]uint8, lanes)
	e.ticks = make([]uint32, lanes)
	e.laneMoves = make([]uint32, lanes)
	e.visited = make([]uint64, lanes)
	e.clearEnd = make([]uint64, lanes)
	e.allClearN = make([]uint32, lanes)
	e.ws = make([]*workerState, workers)
	for i := range e.ws {
		e.ws[i] = &workerState{cache: newDecisionCache()}
	}
	return e, nil
}

// Name implements corda.Backend.
func (e *Engine) Name() string { return "batch" }

// Workers returns the resolved worker count.
func (e *Engine) Workers() int { return e.workers }

// Simulate implements corda.Backend: it runs every lane and aggregates
// in lane order. The report is a pure function of the spec — identical
// at any worker count.
func (e *Engine) Simulate() (corda.SimReport, error) {
	lanes := e.spec.Samples
	if e.workers == 1 {
		ws := e.ws[0]
		for lane := 0; lane < lanes; lane++ {
			e.runLane(ws, lane, nil)
		}
	} else {
		chunk := (lanes + e.workers - 1) / e.workers
		var wg sync.WaitGroup
		for w := 0; w < e.workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > lanes {
				hi = lanes
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(ws *workerState, lo, hi int) {
				defer wg.Done()
				for lane := lo; lane < hi; lane++ {
					e.runLane(ws, lane, nil)
				}
			}(e.ws[w], lo, hi)
		}
		wg.Wait()
	}
	rep := corda.SimReport{Samples: lanes}
	for lane := 0; lane < lanes; lane++ {
		accumulate(&rep, e.n, e.spec.TrackClearing,
			corda.LaneOutcome(e.outcome[lane]), e.ticks[lane], e.laneMoves[lane],
			e.visited[lane], e.clearEnd[lane], e.allClearN[lane])
	}
	return rep, nil
}

// rotToObserver rotates an n-bit occupancy mask so the observer's node
// u lands at bit 0: bit j of the result is node (u+j) mod n.
func rotToObserver(occ uint64, u, n int) uint64 {
	if u == 0 {
		return occ
	}
	return (occ>>uint(u) | occ<<uint(n-u)) & fullMask(n)
}

// runLane executes one lane from the start configuration to its
// outcome. With rec non-nil the full schedule and move trace are
// recorded for replay through the proof engine; the control flow is
// identical either way. This is the engine's hot loop: on the
// steady-state path (decision cache warm) it performs no allocation,
// no channel operation and no lock.
func (e *Engine) runLane(ws *workerState, lane int, rec *Trajectory) {
	n, k := e.n, e.k
	pos := e.pos[lane*k : (lane+1)*k]
	cnt := e.cnt[lane*n : (lane+1)*n]
	copy(pos, e.startPos)
	for i := range cnt {
		cnt[i] = 0
	}
	for _, u := range pos {
		cnt[u]++
	}
	occ := e.startOcc
	full := fullMask(n)
	var pendMask, pendDir uint64
	visited := occ
	clear := e.startClear
	trackClear := e.spec.TrackClearing
	var allClearEvents uint32
	if trackClear && clear == full {
		allClearEvents = 1
		clear = clearReset(occ, n)
	}
	rng := laneSeed(e.spec.Seed, lane)
	stopGather := e.spec.StopOnGathered
	exclusive := e.spec.Exclusive
	mult := e.spec.Multiplicity
	maxT := uint32(e.spec.MaxSteps)
	outcome := corda.LaneBudget
	var ticks, moves uint32

	for {
		if stopGather && pendMask == 0 && occ&(occ-1) == 0 {
			outcome = corda.LaneGathered
			break
		}
		if ticks >= maxT {
			break
		}
		r := nextRand(&rng)
		i := randIndex(r, k)
		bit := uint64(1) << uint(i)
		if pendMask&bit != 0 {
			// Execute robot i's pending move.
			if rec != nil {
				rec.Actions = append(rec.Actions, corda.Action{Kind: corda.ActMove, Robot: i})
			}
			pendMask &^= bit
			from := int(pos[i])
			to := from + 1
			if pendDir&bit != 0 {
				to = from - 1
				if to < 0 {
					to = n - 1
				}
			} else if to == n {
				to = 0
			}
			ticks++
			if exclusive && cnt[to] > 0 {
				outcome = corda.LaneCollision
				break
			}
			cnt[from]--
			if cnt[from] == 0 {
				occ &^= 1 << uint(from)
			}
			if cnt[to] == 0 {
				occ |= 1 << uint(to)
			}
			cnt[to]++
			pos[i] = uint8(to)
			moves++
			visited |= 1 << uint(to)
			if trackClear {
				clear = contMove(clear, occ, n, from, to)
				if clear == full {
					allClearEvents++
					clear = clearReset(occ, n)
				}
			}
			if rec != nil {
				rec.Moves = append(rec.Moves, corda.MoveEvent{Robot: i, From: from, To: to, Step: int(ticks) - 1})
			}
		} else {
			// Serve robot i's Look-Compute.
			if rec != nil {
				rec.Actions = append(rec.Actions, corda.Action{Kind: corda.ActLookCompute, Robot: i})
			}
			u := int(pos[i])
			key := rotToObserver(occ, u, n) >> 1
			isMult := mult && cnt[u] > 1
			if isMult {
				key |= 1 << 63
			}
			d, ok := ws.cache.get(key)
			if !ok {
				d = e.computeDecision(ws, occ, u, isMult)
				ws.cache.put(key, d)
			}
			ticks++
			if d != decStay {
				// The adversary's Either draw is consumed on every
				// moving decision, mirroring AsyncRunner's eager
				// ResolveEither evaluation (see rng.go).
				adv := ring.CW
				if nextRand(&rng)&1 == 1 {
					adv = ring.CCW
				}
				dir := adv
				switch d {
				case decCW:
					dir = ring.CW
				case decCCW:
					dir = ring.CCW
				}
				pendMask |= bit
				if dir == ring.CCW {
					pendDir |= bit
				} else {
					pendDir &^= bit
				}
				if rec != nil {
					rec.Either = append(rec.Either, adv)
				}
			}
		}
	}

	e.occ[lane] = occ
	e.pendMask[lane] = pendMask
	e.pendDir[lane] = pendDir
	e.outcome[lane] = uint8(outcome)
	e.ticks[lane] = ticks
	e.laneMoves[lane] = moves
	e.visited[lane] = visited
	e.clearEnd[lane] = clear
	e.allClearN[lane] = allClearEvents
}

// computeDecision is the cache-miss path: materialize the perception
// into the worker's view buffers, run the algorithm, and resolve the
// decision against the Lo direction of this perception class. The
// resolution mirrors AsyncRunner exactly: Stay short-circuits,
// symmetric perceptions force Either, Either is adversary-resolved.
func (e *Engine) computeDecision(ws *workerState, occ uint64, u int, mult bool) uint8 {
	snap, loDir, bufLo, bufHi := corda.SnapshotFromMask(occ, e.n, u, mult, ws.bufLo, ws.bufHi)
	ws.bufLo, ws.bufHi = bufLo, bufHi
	d := e.spec.Algorithm.Compute(snap)
	if d == corda.Stay {
		return decStay
	}
	if snap.Symmetric() || d == corda.Either {
		return decEither
	}
	dir := loDir
	if d == corda.TowardHi {
		dir = dir.Opposite()
	}
	if dir == ring.CW {
		return decCW
	}
	return decCCW
}

// accumulate folds one lane into the report. Both backends run it in
// lane order, which is what makes their reports comparable with ==.
func accumulate(rep *corda.SimReport, n int, trackClear bool, outcome corda.LaneOutcome, ticks, moves uint32, visited, clearEnd uint64, allClearN uint32) {
	rep.Steps += uint64(ticks)
	rep.Moves += uint64(moves)
	rep.Outcomes[outcome]++
	if outcome == corda.LaneGathered {
		rep.GatherHist.Add(uint64(ticks))
		rep.GatherSum += uint64(ticks)
	}
	cov := bits.OnesCount64(visited)
	rep.CoverageSum += uint64(cov)
	if cov == n {
		rep.CoveredLanes++
	}
	if trackClear {
		rep.AllClearEvents += uint64(allClearN)
		if allClearN >= 1 {
			rep.AllClearLanes++
		}
		if allClearN >= 2 {
			rep.RecurrentClearLanes++
		}
		rep.ClearSum += uint64(bits.OnesCount64(clearEnd))
	}
}

// IsCollision reports whether err (possibly wrapped) is a corda
// collision — the proof backend's lane-ending condition.
func IsCollision(err error) bool {
	var ce *corda.CollisionError
	return errors.As(err, &ce)
}
