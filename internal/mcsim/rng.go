package mcsim

import "math/bits"

// Per-lane schedule randomness: a splittable seeded stream per lane.
// laneSeed splits the root seed into statistically independent per-lane
// states (SplitMix64's golden-gamma jump plus its finalizer, the
// standard split construction), and nextRand advances one lane's
// stream. Every backend honoring the corda.SimSpec determinism contract
// must consume draws identically:
//
//	one draw per scheduler tick (robot selection via randIndex), and
//	one draw per moving Look-Compute (the adversary's Either choice,
//	consumed whether or not the decision needs it — mirroring
//	AsyncRunner's eager ResolveEither evaluation).
//
// That fixed consumption schedule is what makes the batch engine and
// the AsyncRunner-based proof backend bit-identical per lane.

const splitMixGamma = 0x9E3779B97F4A7C15

// mix64 is SplitMix64's output finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// laneSeed derives lane i's independent stream state from the root seed.
func laneSeed(root uint64, lane int) uint64 {
	return mix64(root + splitMixGamma*uint64(lane+1))
}

// nextRand advances the stream and returns the next 64-bit draw.
func nextRand(state *uint64) uint64 {
	*state += splitMixGamma
	return mix64(*state)
}

// randIndex maps a draw to [0, k) by the multiply-shift reduction
// (bias ≤ k/2^64, irrelevant here; what matters is that it is a fixed
// deterministic function shared by every backend).
func randIndex(r uint64, k int) int {
	hi, _ := bits.Mul64(r, uint64(k))
	return int(hi)
}
