// Package faultfs is the storage fault seam under internal/journal: a
// minimal file-operations interface (FS, File) satisfied by a
// passthrough real implementation (OS), plus a deterministic seeded
// fault injector (injector.go) that fails the Nth operation of a kind
// with ENOSPC or EIO, performs short writes, flips bits in flight, and
// drops unsynced data to present a crash-consistent view — so every
// storage failure mode real fleets see (full disks, dying media,
// lying fsyncs, latent corruption, power loss) is a reproducible test
// case rather than a production surprise.
package faultfs

import (
	"io"
	"os"
)

// File is the subset of *os.File the journal layer needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Seek(offset int64, whence int) (int64, error)
	Truncate(size int64) error
	Sync() error
	Name() string
}

// FS is the file-operations seam. Every durable byte the journal (and
// therefore the verdict store, drain checkpoints and pool leases)
// writes goes through one of these methods.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (os.FileInfo, error)
}

// OS is the passthrough implementation over the real filesystem.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) ReadFile(name string) ([]byte, error)      { return os.ReadFile(name) }
func (OS) Rename(oldpath, newpath string) error      { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                  { return os.Remove(name) }
func (OS) Stat(name string) (os.FileInfo, error)     { return os.Stat(name) }
