package faultfs

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"syscall"
)

// Op identifies a kind of file operation for fault scheduling. Write
// and Sync are counted per-injector (across all files), so "fail the
// 3rd sync" means the 3rd sync anywhere under this injector.
type Op int

const (
	OpOpen Op = iota
	OpRead
	OpWrite
	OpSync
	OpTruncate
	OpRename
	OpRemove
	opMax
)

var opNames = [...]string{"open", "read", "write", "sync", "truncate", "rename", "remove"}

func (o Op) String() string {
	if o >= 0 && int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Kind is the flavor of an injected fault.
type Kind int

const (
	// FaultErr: the operation fails with Err and has no effect.
	FaultErr Kind = iota
	// FaultShortWrite: only the first half of the buffer (at least one
	// byte) reaches the file, then the write reports Err — the torn
	// write every journal must roll back from.
	FaultShortWrite
	// FaultBitFlip: the operation "succeeds" but one bit of the buffer
	// is flipped on its way to the file — latent corruption that only
	// CRC validation or scavenge will ever notice.
	FaultBitFlip
)

// Fault describes one scheduled injection.
type Fault struct {
	Kind Kind
	Err  error
}

// ENOSPC returns a disk-full write error fault.
func ENOSPC() Fault { return Fault{Kind: FaultErr, Err: syscall.ENOSPC} }

// EIO returns a generic I/O error fault.
func EIO() Fault { return Fault{Kind: FaultErr, Err: syscall.EIO} }

// ShortWrite returns a fault that tears the write in half before
// failing with ENOSPC.
func ShortWrite() Fault { return Fault{Kind: FaultShortWrite, Err: syscall.ENOSPC} }

// BitFlip returns a fault that silently corrupts one bit of the
// written buffer. Which bit is chosen by the injector's seeded RNG,
// so runs are reproducible given the same seed and op sequence.
func BitFlip() Fault { return Fault{Kind: FaultBitFlip} }

// Injector wraps an FS and fails scheduled operations
// deterministically. The zero schedule passes everything through.
// All methods are safe for concurrent use.
type Injector struct {
	fs FS

	mu     sync.Mutex
	rng    *rand.Rand
	counts [opMax]int
	sched  map[Op]map[int]Fault // op -> 1-based op index -> fault

	// synced[path] is the file size as of the last successful Sync
	// (or the size at Open, for pre-existing data assumed durable).
	// CrashUnsynced truncates every tracked file back to it.
	synced map[string]int64
}

// NewInjector wraps fs with a deterministic injector seeded with seed.
func NewInjector(fs FS, seed int64) *Injector {
	return &Injector{
		fs:     fs,
		rng:    rand.New(rand.NewSource(seed)),
		sched:  make(map[Op]map[int]Fault),
		synced: make(map[string]int64),
	}
}

// FailNth schedules fault for the nth (1-based) operation of kind op
// counted from the injector's creation. Scheduling is one-shot: the
// fault fires once and is consumed.
func (in *Injector) FailNth(op Op, n int, f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	m := in.sched[op]
	if m == nil {
		m = make(map[int]Fault)
		in.sched[op] = m
	}
	m[n] = f
}

// Count reports how many operations of kind op have been issued so
// far (including failed ones).
func (in *Injector) Count(op Op) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[op]
}

// next bumps the op counter and returns the fault to apply, if any.
func (in *Injector) next(op Op) (Fault, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts[op]++
	f, ok := in.sched[op][in.counts[op]]
	if ok {
		delete(in.sched[op], in.counts[op])
	}
	return f, ok
}

// CrashUnsynced presents the crash-consistent view: every file this
// injector has opened or created is truncated back to its size at the
// last successful Sync, discarding writes the OS never promised were
// durable. The model is append-only (matching the journal): a crash
// loses the unsynced tail, it does not resurrect overwritten bytes.
func (in *Injector) CrashUnsynced() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	for path, size := range in.synced {
		if err := os.Truncate(path, size); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return fmt.Errorf("faultfs: crash truncate %s: %w", path, err)
		}
	}
	return nil
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if f, ok := in.next(OpOpen); ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: f.Err}
	}
	file, err := in.fs.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	in.track(file)
	return &injFile{in: in, f: file}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if f, ok := in.next(OpOpen); ok {
		return nil, &os.PathError{Op: "open", Path: pattern, Err: f.Err}
	}
	file, err := in.fs.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	in.track(file)
	return &injFile{in: in, f: file}, nil
}

// track baselines the synced size of a newly opened file: whatever is
// on disk at open time is assumed durable.
func (in *Injector) track(file File) {
	size := int64(0)
	if fi, err := in.fs.Stat(file.Name()); err == nil {
		size = fi.Size()
	}
	in.mu.Lock()
	if _, ok := in.synced[file.Name()]; !ok {
		in.synced[file.Name()] = size
	}
	in.mu.Unlock()
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	if f, ok := in.next(OpRead); ok {
		return nil, &os.PathError{Op: "read", Path: name, Err: f.Err}
	}
	return in.fs.ReadFile(name)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if f, ok := in.next(OpRename); ok {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: f.Err}
	}
	if err := in.fs.Rename(oldpath, newpath); err != nil {
		return err
	}
	in.mu.Lock()
	if size, ok := in.synced[oldpath]; ok {
		in.synced[newpath] = size
		delete(in.synced, oldpath)
	}
	in.mu.Unlock()
	return nil
}

func (in *Injector) Remove(name string) error {
	if f, ok := in.next(OpRemove); ok {
		return &os.PathError{Op: "remove", Path: name, Err: f.Err}
	}
	if err := in.fs.Remove(name); err != nil {
		return err
	}
	in.mu.Lock()
	delete(in.synced, name)
	in.mu.Unlock()
	return nil
}

func (in *Injector) Stat(name string) (os.FileInfo, error) { return in.fs.Stat(name) }

// injFile intercepts the per-file operations.
type injFile struct {
	in *Injector
	f  File
}

func (jf *injFile) Name() string { return jf.f.Name() }

func (jf *injFile) Read(p []byte) (int, error) {
	if f, ok := jf.in.next(OpRead); ok {
		return 0, &os.PathError{Op: "read", Path: jf.f.Name(), Err: f.Err}
	}
	return jf.f.Read(p)
}

func (jf *injFile) Write(p []byte) (int, error) {
	f, ok := jf.in.next(OpWrite)
	if !ok {
		return jf.f.Write(p)
	}
	switch f.Kind {
	case FaultShortWrite:
		n := len(p) / 2
		if n == 0 && len(p) > 0 {
			n = 1
		}
		wrote, err := jf.f.Write(p[:n])
		if err != nil {
			return wrote, err
		}
		return wrote, &os.PathError{Op: "write", Path: jf.f.Name(), Err: f.Err}
	case FaultBitFlip:
		if len(p) == 0 {
			return jf.f.Write(p)
		}
		corrupt := make([]byte, len(p))
		copy(corrupt, p)
		jf.in.mu.Lock()
		bit := jf.in.rng.Intn(len(p) * 8)
		jf.in.mu.Unlock()
		corrupt[bit/8] ^= 1 << (bit % 8)
		n, err := jf.f.Write(corrupt)
		if n > len(p) {
			n = len(p)
		}
		return n, err
	default:
		return 0, &os.PathError{Op: "write", Path: jf.f.Name(), Err: f.Err}
	}
}

func (jf *injFile) Seek(offset int64, whence int) (int64, error) {
	return jf.f.Seek(offset, whence)
}

func (jf *injFile) Truncate(size int64) error {
	if f, ok := jf.in.next(OpTruncate); ok {
		return &os.PathError{Op: "truncate", Path: jf.f.Name(), Err: f.Err}
	}
	return jf.f.Truncate(size)
}

func (jf *injFile) Sync() error {
	if f, ok := jf.in.next(OpSync); ok {
		return &os.PathError{Op: "sync", Path: jf.f.Name(), Err: f.Err}
	}
	if err := jf.f.Sync(); err != nil {
		return err
	}
	// A successful sync makes the current on-disk size durable.
	if fi, err := jf.in.fs.Stat(jf.f.Name()); err == nil {
		jf.in.mu.Lock()
		jf.in.synced[jf.f.Name()] = fi.Size()
		jf.in.mu.Unlock()
	}
	return nil
}

func (jf *injFile) Close() error { return jf.f.Close() }
