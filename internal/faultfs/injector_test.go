package faultfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func writeAll(t *testing.T, f File, p []byte) error {
	t.Helper()
	_, err := f.Write(p)
	return err
}

func TestFailNthWrite(t *testing.T) {
	in := NewInjector(OS{}, 1)
	in.FailNth(OpWrite, 2, ENOSPC())
	f, err := in.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := writeAll(t, f, []byte("one")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	err = writeAll(t, f, []byte("two"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write 2 = %v, want ENOSPC", err)
	}
	if err := writeAll(t, f, []byte("three")); err != nil {
		t.Fatalf("write 3 (fault is one-shot): %v", err)
	}
	if got := in.Count(OpWrite); got != 3 {
		t.Fatalf("Count(OpWrite) = %d, want 3", got)
	}
	// The failed write had no effect on the file.
	buf, _ := os.ReadFile(f.Name())
	if string(buf) != "onethree" {
		t.Fatalf("file = %q, want onethree", buf)
	}
}

func TestShortWriteTears(t *testing.T) {
	in := NewInjector(OS{}, 1)
	in.FailNth(OpWrite, 1, ShortWrite())
	f, err := in.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if n != 5 {
		t.Fatalf("n = %d, want 5 (half)", n)
	}
	buf, _ := os.ReadFile(f.Name())
	if string(buf) != "01234" {
		t.Fatalf("file = %q, want torn half", buf)
	}
}

func TestBitFlipCorruptsSilently(t *testing.T) {
	in := NewInjector(OS{}, 42)
	in.FailNth(OpWrite, 1, BitFlip())
	f, err := in.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	payload := bytes.Repeat([]byte{0x00}, 64)
	n, err := f.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("bit-flip write must report success, got n=%d err=%v", n, err)
	}
	buf, _ := os.ReadFile(f.Name())
	diff := 0
	for i := range buf {
		if buf[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1 (one flipped bit)", diff)
	}
	// Same seed, same op sequence: same bit.
	in2 := NewInjector(OS{}, 42)
	in2.FailNth(OpWrite, 1, BitFlip())
	f2, _ := in2.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_RDWR|os.O_CREATE, 0o644)
	defer f2.Close()
	f2.Write(payload)
	buf2, _ := os.ReadFile(f2.Name())
	if !bytes.Equal(buf, buf2) {
		t.Fatal("same seed flipped a different bit")
	}
}

func TestCrashUnsyncedDropsTail(t *testing.T) {
	in := NewInjector(OS{}, 1)
	path := filepath.Join(t.TempDir(), "f")
	f, err := in.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("-volatile"))
	if err := in.CrashUnsynced(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	buf, _ := os.ReadFile(path)
	if string(buf) != "durable" {
		t.Fatalf("after crash: %q, want only the synced prefix", buf)
	}
}

func TestCrashUnsyncedFollowsRename(t *testing.T) {
	in := NewInjector(OS{}, 1)
	dir := t.TempDir()
	tmp := filepath.Join(dir, "tmp")
	final := filepath.Join(dir, "final")
	f, err := in.OpenFile(tmp, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("snapshot"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := in.Rename(tmp, final); err != nil {
		t.Fatal(err)
	}
	if err := in.CrashUnsynced(); err != nil {
		t.Fatal(err)
	}
	buf, _ := os.ReadFile(final)
	if string(buf) != "snapshot" {
		t.Fatalf("renamed file after crash: %q", buf)
	}
}

func TestFailNthSyncAndOpen(t *testing.T) {
	in := NewInjector(OS{}, 1)
	in.FailNth(OpSync, 1, EIO())
	in.FailNth(OpOpen, 2, ENOSPC())
	f, err := in.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync = %v, want EIO", err)
	}
	if _, err := in.OpenFile(filepath.Join(t.TempDir(), "g"), os.O_RDWR|os.O_CREATE, 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("open 2 = %v, want ENOSPC", err)
	}
}
