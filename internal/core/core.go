// Package core exposes the paper's unified approach as a single API:
// given a task (perpetual exploration, perpetual graph searching, or
// gathering) and the ring parameters, it returns the min-CORDA algorithm
// that solves it from any rigid exclusive starting configuration, plus
// the feasibility characterization of §1/§6.
package core

import (
	"fmt"

	"ringrobots/internal/config"
	"ringrobots/internal/corda"
	"ringrobots/internal/gather"
	"ringrobots/internal/search"
)

// Task enumerates the three problems unified by the paper.
type Task int

const (
	// Exploration is exclusive perpetual exploration: every robot visits
	// every node infinitely often (§4.1).
	Exploration Task = iota
	// Searching is exclusive perpetual graph searching: the robots clear
	// all edges of the recontaminating ring infinitely often (§4.1).
	Searching
	// Gathering moves all robots onto one node, forever (§5).
	Gathering
)

func (t Task) String() string {
	switch t {
	case Exploration:
		return "exploration"
	case Searching:
		return "searching"
	case Gathering:
		return "gathering"
	}
	return fmt.Sprintf("Task(%d)", int(t))
}

// New returns the paper's algorithm for the task on an n-node ring with k
// robots, or an error when the parameters fall outside the ranges the
// paper proves solvable.
//
// Exploration and Searching share their algorithms (Theorems 6 and 7):
// Ring Clearing for 5 ≤ k < n−3 (n ≥ 10, except (5,10)) and NminusThree
// for k = n−3 (n ≥ 10). Gathering uses Align + Contraction (Theorem 8)
// for 2 < k < n−2.
func New(task Task, n, k int) (corda.Algorithm, error) {
	switch task {
	case Exploration, Searching:
		if k == n-3 {
			alg := search.NminusThree{}
			if err := alg.Validate(n, k); err != nil {
				return nil, err
			}
			return alg, nil
		}
		alg := search.RingClearing{}
		if err := alg.Validate(n, k); err != nil {
			return nil, err
		}
		return alg, nil
	case Gathering:
		if err := gather.Validate(n, k); err != nil {
			return nil, err
		}
		return gather.Gathering{}, nil
	}
	return nil, fmt.Errorf("core: unknown task %v", task)
}

// NewWorld builds the world matching the task's capability model from a
// rigid exclusive starting configuration: exclusive worlds for the two
// perpetual tasks, a multiplicity-detecting non-exclusive world for
// gathering.
func NewWorld(task Task, c config.Config) (*corda.World, error) {
	if !c.IsRigid() {
		return nil, fmt.Errorf("core: starting configuration %v is not rigid; the paper's algorithms require rigid starts", c)
	}
	if _, err := New(task, c.N(), c.K()); err != nil {
		return nil, err
	}
	if task == Gathering {
		return gather.NewWorld(c)
	}
	return corda.FromConfig(c, true), nil
}

// Verdict classifies a parameter pair for a task.
type Verdict int

const (
	// Solvable: the paper gives an algorithm.
	Solvable Verdict = iota
	// Impossible: the paper proves no algorithm exists.
	Impossible
	// Open: explicitly left open by the paper.
	Open
	// NoRigidStart: no rigid exclusive starting configuration exists, so
	// the paper's setting (rigid starts) is empty.
	NoRigidStart
	// Degenerate: outside the model (k > n for exclusive tasks, k = n
	// with no possible move, or rings below the n ≥ 3 minimum).
	Degenerate
)

func (v Verdict) String() string {
	switch v {
	case Solvable:
		return "solvable"
	case Impossible:
		return "impossible"
	case Open:
		return "open"
	case NoRigidStart:
		return "no-rigid-start"
	case Degenerate:
		return "degenerate"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// CharacterizeSearching reproduces the paper's almost-complete
// characterization of exclusive perpetual graph searching on rings
// (Contribution, §4): for which (n, k) an algorithm exists, with the
// theorem or reason backing each verdict.
func CharacterizeSearching(n, k int) (Verdict, string) {
	switch {
	case n < 3 || k < 1 || k > n:
		return Degenerate, "outside the model (need n ≥ 3, 1 ≤ k ≤ n)"
	case k == n:
		return Degenerate, "all nodes occupied: no robot can ever move (not addressed by the paper)"
	case k <= 2:
		return Impossible, "Theorem 2: one or two robots can never perpetually clear a ring"
	case k == 3:
		return Impossible, "Theorem 3: three robots can never perpetually clear a ring (n > 3)"
	case n <= 9:
		return Impossible, "Theorem 5: no algorithm for 2 < n ≤ 9 and k < n"
	case k == n-1:
		return Impossible, "Lemma 6: the two robots at the hole collide or never move"
	case k == n-2:
		return Impossible, "Theorem 4: all configurations with two holes are symmetric"
	case k == 4:
		return Open, "left open by the paper (k = 4, n > 9)"
	case k == 5 && n == 10:
		return Open, "left open by the paper (k = 5, n = 10)"
	case k == n-3:
		return Solvable, "Theorem 7: Algorithm NminusThree"
	case k >= 5 && k < n-3:
		return Solvable, "Theorem 6: Algorithm Ring Clearing"
	}
	return Degenerate, "unreachable"
}

// CharacterizeGathering reproduces Theorem 8's range for gathering from
// rigid configurations with local multiplicity detection.
func CharacterizeGathering(n, k int) (Verdict, string) {
	switch {
	case n < 3 || k < 1 || k > n:
		return Degenerate, "outside the model"
	case k == 1:
		return Solvable, "trivial: a single robot is always gathered"
	case k == 2:
		return Impossible, "two robots cannot gather on a ring (symmetry cannot be broken)"
	case k >= n-2:
		return NoRigidStart, "every configuration with k ≥ n−2 is symmetric or periodic (§5)"
	default:
		return Solvable, "Theorem 8: Align + Contraction with local multiplicity detection"
	}
}
