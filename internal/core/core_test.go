package core

import (
	"testing"

	"ringrobots/internal/config"
	"ringrobots/internal/corda"
	"ringrobots/internal/enumerate"
	"ringrobots/internal/search"
)

func TestNewDispatch(t *testing.T) {
	alg, err := New(Searching, 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	if alg.Name() != "ring-clearing" {
		t.Errorf("searching (6,12) dispatched to %s", alg.Name())
	}
	alg, err = New(Exploration, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	if alg.Name() != "n-minus-three" {
		t.Errorf("exploration k=n-3 dispatched to %s", alg.Name())
	}
	alg, err = New(Gathering, 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	if alg.Name() != "gathering" {
		t.Errorf("gathering dispatched to %s", alg.Name())
	}
}

func TestNewRejectsOutOfRange(t *testing.T) {
	cases := []struct {
		task Task
		n, k int
	}{
		{Searching, 9, 5},   // n ≤ 9 impossible
		{Searching, 12, 4},  // k=4 open
		{Searching, 10, 5},  // (5,10) open
		{Searching, 12, 10}, // k=n-2 impossible
		{Exploration, 12, 3},
		{Gathering, 12, 2},
		{Gathering, 7, 5}, // n = k+2
	}
	for _, tc := range cases {
		if _, err := New(tc.task, tc.n, tc.k); err == nil {
			t.Errorf("New(%v, n=%d, k=%d) accepted out-of-range parameters", tc.task, tc.n, tc.k)
		}
	}
}

func TestNewWorldCapabilities(t *testing.T) {
	c, _ := config.CStar(12, 6)
	w, err := NewWorld(Searching, c)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Exclusive() {
		t.Error("searching world must be exclusive")
	}
	wg, err := NewWorld(Gathering, c)
	if err != nil {
		t.Fatal(err)
	}
	if wg.Exclusive() {
		t.Error("gathering world must allow multiplicities")
	}
	sym := config.MustNew(12, 0, 1, 3, 9, 11)
	if !sym.IsSymmetric() {
		t.Fatal("fixture not symmetric")
	}
	if _, err := NewWorld(Searching, sym); err == nil {
		t.Error("accepted symmetric start")
	}
}

func TestEndToEndSearchingFromRigidStarts(t *testing.T) {
	// The unified two-phase flow: arbitrary rigid start → Align → phase 2
	// cycle, certified by the perpetual verifier. A sample of rigid
	// classes for (6,12) and (8,11) [k = n−3].
	for _, tc := range []struct{ n, k int }{{12, 6}, {11, 8}} {
		classes, err := enumerate.RigidClasses(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		alg, err := New(Searching, tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		step := len(classes)/6 + 1
		for i := 0; i < len(classes); i += step {
			rep, err := search.Verify(classes[i], alg, 2000*tc.n*tc.k)
			if err != nil {
				t.Fatalf("(%d,%d) from %v: %v", tc.n, tc.k, classes[i], err)
			}
			if rep.Probes == 0 || !rep.Explored {
				t.Fatalf("(%d,%d) from %v: weak report %+v", tc.n, tc.k, classes[i], rep)
			}
		}
	}
}

func TestEndToEndGathering(t *testing.T) {
	classes, err := enumerate.RigidClasses(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := New(Gathering, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range classes {
		w, err := NewWorld(Gathering, c)
		if err != nil {
			t.Fatal(err)
		}
		r := corda.NewRunner(w, alg)
		reason, err := r.RunUntil((*corda.World).Gathered, 50000)
		if err != nil {
			t.Fatalf("from %v: %v", c, err)
		}
		if reason != corda.StopCondition {
			t.Fatalf("from %v: %v", c, reason)
		}
	}
}

func TestCharacterizeSearchingMatchesPaper(t *testing.T) {
	cases := []struct {
		n, k int
		want Verdict
	}{
		{7, 4, Impossible},   // Theorem 5
		{8, 4, Impossible},   // Theorem 5
		{9, 6, Impossible},   // Theorem 5
		{12, 1, Impossible},  // trivial
		{12, 2, Impossible},  // Theorem 2
		{12, 3, Impossible},  // Theorem 3
		{12, 4, Open},        // open
		{10, 5, Open},        // open
		{11, 5, Solvable},    // Theorem 6
		{12, 8, Solvable},    // Theorem 6
		{12, 9, Solvable},    // Theorem 7 (k=n-3)
		{12, 10, Impossible}, // Theorem 4 (k=n-2)
		{12, 11, Impossible}, // Lemma 6 (k=n-1)
		{12, 12, Degenerate},
		{2, 1, Degenerate},
	}
	for _, tc := range cases {
		got, reason := CharacterizeSearching(tc.n, tc.k)
		if got != tc.want {
			t.Errorf("CharacterizeSearching(n=%d, k=%d) = %v (%s), want %v", tc.n, tc.k, got, reason, tc.want)
		}
		if reason == "" {
			t.Errorf("empty reason for (n=%d, k=%d)", tc.n, tc.k)
		}
	}
}

func TestCharacterizeSearchingTotal(t *testing.T) {
	// Every (n, k) in a grid gets a verdict, and verdicts are consistent
	// with New()'s acceptance.
	for n := 3; n <= 20; n++ {
		for k := 1; k <= n; k++ {
			v, _ := CharacterizeSearching(n, k)
			_, err := New(Searching, n, k)
			if v == Solvable && err != nil {
				t.Errorf("(n=%d,k=%d) characterized solvable but New fails: %v", n, k, err)
			}
			if v != Solvable && err == nil {
				t.Errorf("(n=%d,k=%d) characterized %v but New accepts", n, k, v)
			}
		}
	}
}

func TestCharacterizeGathering(t *testing.T) {
	cases := []struct {
		n, k int
		want Verdict
	}{
		{10, 1, Solvable},
		{10, 2, Impossible},
		{10, 5, Solvable},
		{10, 7, Solvable},
		{10, 8, NoRigidStart},
		{10, 9, NoRigidStart},
		{10, 10, NoRigidStart},
		{2, 1, Degenerate},
	}
	for _, tc := range cases {
		got, _ := CharacterizeGathering(tc.n, tc.k)
		if got != tc.want {
			t.Errorf("CharacterizeGathering(n=%d, k=%d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestCharacterizeGatheringAgainstEnumeration(t *testing.T) {
	// NoRigidStart verdicts must match the actual absence of rigid
	// configurations (exhaustive for n ≤ 11).
	for n := 5; n <= 11; n++ {
		for k := 3; k <= n; k++ {
			v, _ := CharacterizeGathering(n, k)
			has, err := enumerate.HasRigid(n, k)
			if err != nil {
				t.Fatal(err)
			}
			if v == NoRigidStart && has {
				t.Errorf("(n=%d,k=%d): verdict no-rigid-start but rigid configurations exist", n, k)
			}
			if v == Solvable && !has {
				t.Errorf("(n=%d,k=%d): verdict solvable but no rigid start exists", n, k)
			}
		}
	}
}

func TestTaskAndVerdictStrings(t *testing.T) {
	if Exploration.String() != "exploration" || Searching.String() != "searching" || Gathering.String() != "gathering" {
		t.Error("task strings wrong")
	}
	for v, want := range map[Verdict]string{
		Solvable: "solvable", Impossible: "impossible", Open: "open",
		NoRigidStart: "no-rigid-start", Degenerate: "degenerate",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q", int(v), v.String())
		}
	}
}
