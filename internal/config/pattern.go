package config

import (
	"fmt"
	"strings"
)

// The paper (§3.2) describes families of views with a small pattern
// language over integer symbols:
//
//	x      — the literal interval x
//	x*     — x repeated zero or more times
//	x+     — x repeated one or more times
//	x{m}   — x repeated exactly m times
//
// A configuration belongs to a pattern if one of its 2k views matches.
// Patterns are used by Lemmas 4 and 5 (e.g. (0,1,1⁺,2) and
// (0^{ℓ1},1,{0^{ℓ1−1},1}⁺,0^{ℓ1−2},1)) and reproduced here so the lemma
// statements can be verified mechanically.

// PatternItem is one element of a Pattern.
type PatternItem struct {
	// Seq is the unit being repeated: one or more interval lengths.
	Seq []int
	// Min and Max bound how many times Seq repeats; Max < 0 means
	// unbounded.
	Min, Max int
}

// Pattern is a sequence of pattern items matched against whole views.
type Pattern []PatternItem

// Lit returns a pattern item matching exactly the literal sequence q.
func Lit(q ...int) PatternItem { return PatternItem{Seq: q, Min: 1, Max: 1} }

// Star returns an item matching zero or more repetitions of seq.
func Star(seq ...int) PatternItem { return PatternItem{Seq: seq, Min: 0, Max: -1} }

// Plus returns an item matching one or more repetitions of seq.
func Plus(seq ...int) PatternItem { return PatternItem{Seq: seq, Min: 1, Max: -1} }

// Rep returns an item matching exactly m repetitions of seq.
func Rep(m int, seq ...int) PatternItem { return PatternItem{Seq: seq, Min: m, Max: m} }

// MatchView reports whether view v matches the pattern exactly
// (anchored at both ends). It compiles the pattern to its position NFA
// (patterncompile.go) and simulates; callers matching one pattern
// against many views or configurations should Compile once and reuse.
func (p Pattern) MatchView(v View) bool {
	return p.Compile().MatchView(v)
}

// matchFrom is the original backtracking matcher, kept as the
// differential oracle for the compiled automaton (it is exponential on
// adversarial patterns, so it is no longer on any public path).
func matchFrom(p Pattern, v View, pos int) bool {
	if len(p) == 0 {
		return pos == len(v)
	}
	it := p[0]
	// Try every admissible repetition count, shortest first.
	count := 0
	for {
		if count >= it.Min {
			if matchFrom(p[1:], v, pos) {
				return true
			}
		}
		if it.Max >= 0 && count == it.Max {
			return false
		}
		// Consume one more repetition of it.Seq.
		if pos+len(it.Seq) > len(v) {
			return false
		}
		for i, q := range it.Seq {
			if v[pos+i] != q {
				return false
			}
		}
		pos += len(it.Seq)
		count++
	}
}

// Matches reports whether any view of configuration c matches p —
// the paper's "C belongs to pattern P". The pattern is compiled once
// and reused across all 2k views.
func (c Config) Matches(p Pattern) bool {
	return p.Compile().Matches(c)
}

// String renders the pattern roughly in the paper's notation.
func (p Pattern) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, it := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		unit := strings.Trim(strings.Join(strings.Fields(fmt.Sprint(it.Seq)), ","), "[]")
		switch {
		case it.Min == 1 && it.Max == 1:
			b.WriteString(unit)
		case it.Min == 0 && it.Max < 0:
			fmt.Fprintf(&b, "{%s}*", unit)
		case it.Min == 1 && it.Max < 0:
			fmt.Fprintf(&b, "{%s}+", unit)
		case it.Min == it.Max:
			fmt.Fprintf(&b, "{%s}{%d}", unit, it.Min)
		default:
			fmt.Fprintf(&b, "{%s}{%d,%d}", unit, it.Min, it.Max)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Lemma4Pattern5 is pattern (5) of Lemma 4: (0, 1, 1⁺, 2).
func Lemma4Pattern5() Pattern {
	return Pattern{Lit(0), Lit(1), Plus(1), Lit(2)}
}

// Lemma4Pattern6 is pattern (6) of Lemma 4, parameterized by ℓ1 ≥ 2:
// (0^{ℓ1}, 1, {0^{ℓ1−1},1}⁺, 0^{ℓ1−2}, 1).
func Lemma4Pattern6(l1 int) (Pattern, error) {
	if l1 < 2 {
		return nil, fmt.Errorf("config: Lemma 4 pattern (6) needs ℓ1 >= 2, got %d", l1)
	}
	unit := make([]int, l1) // 0^{ℓ1−1} followed by 1
	unit[l1-1] = 1
	return Pattern{Rep(l1, 0), Lit(1), PatternItem{Seq: unit, Min: 1, Max: -1}, Rep(l1-2, 0), Lit(1)}, nil
}

// Lemma5Pattern1 is the first family of Lemma 5: (0, 1, 1, 1⁺, 2).
func Lemma5Pattern1() Pattern {
	return Pattern{Lit(0), Lit(1), Lit(1), Plus(1), Lit(2)}
}
