package config

import (
	"fmt"
	"sort"

	"ringrobots/internal/ring"
)

// Config is a configuration in the paper's sense (§2): the set of occupied
// nodes of an n-node ring. It says nothing about how many robots share a
// node; multiplicities belong to the simulator's world state.
//
// A Config is immutable once built; all mutating operations return copies.
// Derived data (interval cycle, supermin view, anchors, symmetry class,
// canonical key) is computed lazily in O(k) and memoized, so repeated
// queries are free; see canon.go.
type Config struct {
	r     ring.Ring
	nodes []int // occupied nodes, strictly increasing, in [0, n)
	cc    *canonCell
}

// New builds a configuration from the given occupied nodes on an n-node
// ring. Duplicate or out-of-range nodes are an error; an empty node set is
// an error (every task in the paper has k ≥ 1).
func New(n int, occupied ...int) (Config, error) {
	if n < 3 {
		return Config{}, fmt.Errorf("config: ring size n=%d out of range (need n >= 3)", n)
	}
	if len(occupied) == 0 {
		return Config{}, fmt.Errorf("config: no occupied nodes")
	}
	if len(occupied) > n {
		return Config{}, fmt.Errorf("config: %d occupied nodes exceed ring size %d", len(occupied), n)
	}
	nodes := make([]int, len(occupied))
	copy(nodes, occupied)
	sort.Ints(nodes)
	for i, u := range nodes {
		if u < 0 || u >= n {
			return Config{}, fmt.Errorf("config: node %d out of range [0,%d)", u, n)
		}
		if i > 0 && nodes[i-1] == u {
			return Config{}, fmt.Errorf("config: node %d occupied twice; a configuration is a set of nodes", u)
		}
	}
	return Config{r: ring.New(n), nodes: nodes, cc: &canonCell{}}, nil
}

// MustNew is New, panicking on error. Intended for tests and literals.
func MustNew(n int, occupied ...int) Config {
	c, err := New(n, occupied...)
	if err != nil {
		panic(err)
	}
	return c
}

// FromIntervals builds the configuration whose interval cycle, read
// clockwise from a robot placed at node `start`, is exactly v. The ring
// size is len(v)+v.Sum().
func FromIntervals(start int, v View) (Config, error) {
	k := len(v)
	if k == 0 {
		return Config{}, fmt.Errorf("config: empty interval view")
	}
	for _, q := range v {
		if q < 0 {
			return Config{}, fmt.Errorf("config: negative interval in %v", v)
		}
	}
	n := k + v.Sum()
	if n < 3 {
		return Config{}, fmt.Errorf("config: view %v describes a ring with %d < 3 nodes", v, n)
	}
	r := ring.New(n)
	nodes := make([]int, 0, k)
	u := r.Norm(start)
	for i := 0; i < k; i++ {
		nodes = append(nodes, u)
		u = r.Norm(u + v[i] + 1)
	}
	return New(n, nodes...)
}

// N returns the ring size.
func (c Config) N() int { return c.r.N() }

// K returns the number of occupied nodes.
func (c Config) K() int { return len(c.nodes) }

// Ring returns the underlying ring.
func (c Config) Ring() ring.Ring { return c.r }

// Nodes returns the occupied nodes in increasing order (a fresh slice).
func (c Config) Nodes() []int {
	out := make([]int, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// Occupied reports whether node u hosts at least one robot.
func (c Config) Occupied(u int) bool {
	u = c.r.Norm(u)
	i := sort.SearchInts(c.nodes, u)
	return i < len(c.nodes) && c.nodes[i] == u
}

// nodeIndex returns the index of u in the sorted node list, or -1.
func (c Config) nodeIndex(u int) int {
	u = c.r.Norm(u)
	i := sort.SearchInts(c.nodes, u)
	if i < len(c.nodes) && c.nodes[i] == u {
		return i
	}
	return -1
}

// IndexOf returns the index of occupied node u in the increasing node
// order (the same order as Nodes()), or -1 if u is empty.
func (c Config) IndexOf(u int) int { return c.nodeIndex(u) }

// NodeByIndex returns the i-th occupied node in increasing order,
// without allocating (Nodes() returns a fresh slice; this does not).
func (c Config) NodeByIndex(i int) int { return c.nodes[i] }

// Intervals returns the interval cycle g where g[i] is the number of empty
// nodes strictly between occupied node i and occupied node i+1 (clockwise,
// indices into Nodes(), cyclically). The returned slice is fresh.
func (c Config) Intervals() View {
	return c.canon().g.Clone()
}

// intervals returns the memoized interval cycle. Callers must not modify.
func (c Config) intervals() View { return c.canon().g }

// ViewFrom returns the view of the occupied node u read in direction d.
// It panics if u is not occupied.
func (c Config) ViewFrom(u int, d ring.Direction) View {
	return c.ViewFromInto(u, d, nil)
}

// ViewFromInto is ViewFrom writing into buf, which is grown as needed;
// the returned view aliases buf's backing array when its capacity
// suffices. It lets per-robot Look paths reuse one buffer per cycle
// instead of allocating a fresh view every time.
func (c Config) ViewFromInto(u int, d ring.Direction, buf View) View {
	i := c.nodeIndex(u)
	if i < 0 {
		return panicUnoccupied(u)
	}
	g := c.intervals()
	k := len(g)
	var v View
	if cap(buf) >= k {
		v = buf[:k]
	} else {
		v = make(View, k)
	}
	if d == ring.CW {
		for j := 0; j < k; j++ {
			v[j] = g[(i+j)%k]
		}
	} else {
		for j := 0; j < k; j++ {
			v[j] = g[((i-1-j)%k+k)%k]
		}
	}
	return v
}

func panicUnoccupied(u int) View {
	panic(fmt.Sprintf("config: node %d is not occupied", u))
}

// MinViewFrom returns the lexicographically smaller of the two directional
// views at occupied node u — the paper's default W(r) — plus the direction
// realizing it (ties report CW).
func (c Config) MinViewFrom(u int) (View, ring.Direction) {
	cw := c.ViewFrom(u, ring.CW)
	ccw := c.ViewFrom(u, ring.CCW)
	if ccw.Less(cw) {
		return ccw, ring.CCW
	}
	return cw, ring.CW
}

// Views returns the set W(C): every directional view of every occupied
// node (2k views, possibly with repetitions).
func (c Config) Views() []View {
	out := make([]View, 0, 2*len(c.nodes))
	for _, u := range c.nodes {
		out = append(out, c.ViewFrom(u, ring.CW), c.ViewFrom(u, ring.CCW))
	}
	return out
}

// Anchor identifies one reading of the configuration: start at occupied
// node Node and read in direction Dir.
type Anchor struct {
	Node int
	Dir  ring.Direction
}

// Supermin returns the supermin configuration view W^C_min (§2): the
// lexicographically minimal view over all anchors, together with every
// anchor realizing it. Computed once per Config via Booth's least-
// rotation algorithm (O(k)) and memoized; the returned slices are shared
// and must not be modified.
func (c Config) Supermin() (View, []Anchor) {
	d := c.canon()
	return d.supermin, d.anchors
}

// SuperminView returns just the supermin view (shared; do not modify).
func (c Config) SuperminView() View {
	return c.canon().supermin
}

// SuperminIntervals returns the paper's set I_C: the interval positions at
// which some minimal reading starts. Each element identifies an interval by
// the pair of occupied-node indices it lies between; we return the index i
// of the interval g[i] (between Nodes()[i] and Nodes()[i+1]).
//
// Lemma 1 classifies configurations by |I_C|:
//
//	|I_C| = 1 ⇔ rigid, or a unique axis through the supermin;
//	|I_C| = 2 ⇔ aperiodic+symmetric with axis off every supermin, or periodic with period n/2;
//	|I_C| > 2 ⇔ periodic with period ≤ n/3.
func (c Config) SuperminIntervals() []int {
	_, anchors := c.Supermin()
	k := len(c.nodes)
	out := make([]int, 0, len(anchors))
	for _, a := range anchors {
		i := c.nodeIndex(a.Node)
		// Reading CW from node i starts with interval i; reading CCW
		// starts with interval i−1.
		gi := i
		if a.Dir == ring.CCW {
			gi = ((i-1)%k + k) % k
		}
		out = append(out, gi)
	}
	sort.Ints(out)
	// Deduplicate in place (sorted).
	w := 0
	for i, gi := range out {
		if i == 0 || gi != out[w-1] {
			out[w] = gi
			w++
		}
	}
	return out[:w]
}

// IsPeriodic reports whether the configuration is invariant under a
// non-trivial rotation (§2). Equivalent, via Property 1(i), to the interval
// cycle equaling one of its non-trivial rotations — detected in O(k) by a
// KMP search of the cycle inside its doubling, memoized.
func (c Config) IsPeriodic() bool {
	d := c.canon()
	return d.period < len(c.nodes)
}

// IsSymmetric reports whether the ring admits a geometric axis of symmetry
// mapping the configuration to itself (§2). Via Property 1(ii) this holds
// iff the reversed interval cycle is a rotation of the interval cycle —
// equivalently, iff the minimal CW and CCW readings coincide, which the
// memoized Booth pass establishes for free.
func (c Config) IsSymmetric() bool {
	return c.canon().symmetric
}

// IsRigid reports whether the configuration is aperiodic and asymmetric.
func (c Config) IsRigid() bool {
	return !c.IsPeriodic() && !c.IsSymmetric()
}

// IsExclusiveRepresentable reports whether k < n (there is at least one
// empty node), which every exclusive task requires.
func (c Config) IsExclusiveRepresentable() bool { return c.K() < c.N() }

// Move returns the configuration obtained by vacating node from and
// occupying node to. It is the *configuration-level* move: callers must
// separately enforce exclusivity or multiplicity semantics. from must be
// occupied and adjacent to to; to must be empty (otherwise the set view of
// the move would silently merge nodes — use MoveMerge for gathering).
func (c Config) Move(from, to int) (Config, error) {
	from, to = c.r.Norm(from), c.r.Norm(to)
	if !c.r.Adjacent(from, to) {
		return Config{}, fmt.Errorf("config: nodes %d and %d are not adjacent", from, to)
	}
	if !c.Occupied(from) {
		return Config{}, fmt.Errorf("config: source node %d is empty", from)
	}
	if c.Occupied(to) {
		return Config{}, fmt.Errorf("config: destination node %d is occupied", to)
	}
	return c.rebuildWithout(from, to), nil
}

// rebuildWithout returns the configuration with node from vacated and
// node to occupied (to must not already be occupied unless it equals an
// existing node being kept, which callers rule out). It builds the new
// sorted node set in one pass, skipping New's validation and re-sort.
func (c Config) rebuildWithout(from, to int) Config {
	nodes := make([]int, 0, len(c.nodes))
	inserted := false
	for _, u := range c.nodes {
		if !inserted && to < u {
			nodes = append(nodes, to)
			inserted = true
		}
		if u != from {
			nodes = append(nodes, u)
		}
	}
	if !inserted {
		nodes = append(nodes, to)
	}
	return Config{r: c.r, nodes: nodes, cc: &canonCell{}}
}

// MoveMerge is Move but allows the destination to be occupied, in which
// case the two nodes merge (the configuration loses one occupied node).
// This is the configuration-level effect of creating a multiplicity.
func (c Config) MoveMerge(from, to int) (Config, error) {
	from, to = c.r.Norm(from), c.r.Norm(to)
	if !c.r.Adjacent(from, to) {
		return Config{}, fmt.Errorf("config: nodes %d and %d are not adjacent", from, to)
	}
	if !c.Occupied(from) {
		return Config{}, fmt.Errorf("config: source node %d is empty", from)
	}
	if c.Occupied(to) {
		// Merge: the source node simply disappears from the set.
		nodes := make([]int, 0, len(c.nodes)-1)
		for _, u := range c.nodes {
			if u != from {
				nodes = append(nodes, u)
			}
		}
		return Config{r: c.r, nodes: nodes, cc: &canonCell{}}, nil
	}
	return c.rebuildWithout(from, to), nil
}

// Canonical returns a canonical key identifying the configuration up to
// rotation and reflection of the ring: the supermin view. Two
// configurations are equivalent (indistinguishable in the anonymous,
// unoriented model) iff their canonical keys are equal.
//
// Deprecated-ish: prefer CanonKey, which is comparable, allocation-free
// after the first touch, and much cheaper to hash. Canonical remains for
// human-readable output.
func (c Config) Canonical() string {
	return c.SuperminView().Key()
}

// Equal reports whether two configurations occupy the same node sets of
// equal-size rings (label-sensitive equality, not canonical equivalence).
func (c Config) Equal(o Config) bool {
	if c.N() != o.N() || c.K() != o.K() {
		return false
	}
	for i := range c.nodes {
		if c.nodes[i] != o.nodes[i] {
			return false
		}
	}
	return true
}

// String renders the configuration as its occupancy word plus supermin,
// e.g. "n=8 {0,1,2,5} supermin=(0,0,2,2)".
func (c Config) String() string {
	return fmt.Sprintf("n=%d %v supermin=%s", c.N(), c.nodes, c.SuperminView())
}
