package config

import (
	"math/rand"
	"testing"

	"ringrobots/internal/ring"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(2, 0); err == nil {
		t.Error("accepted ring with n=2")
	}
	if _, err := New(5); err == nil {
		t.Error("accepted empty configuration")
	}
	if _, err := New(5, 0, 0); err == nil {
		t.Error("accepted duplicate node")
	}
	if _, err := New(5, 5); err == nil {
		t.Error("accepted out-of-range node")
	}
	if _, err := New(5, -1); err == nil {
		t.Error("accepted negative node")
	}
	if _, err := New(4, 0, 1, 2, 3, 0); err == nil {
		t.Error("accepted more nodes than ring size")
	}
	c, err := New(6, 3, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	got := c.Nodes()
	want := []int{0, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", got, want)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with invalid input did not panic")
		}
	}()
	MustNew(3, 7)
}

func TestIntervals(t *testing.T) {
	// n=8, occupied {0,1,2,5}: gaps 0 (0→1), 0 (1→2), 2 (2→5), 2 (5→0).
	c := MustNew(8, 0, 1, 2, 5)
	got := c.Intervals()
	want := View{0, 0, 2, 2}
	if !got.Equal(want) {
		t.Fatalf("Intervals = %v, want %v", got, want)
	}
	if got.Sum()+c.K() != c.N() {
		t.Fatal("intervals plus robots do not cover the ring")
	}
}

func TestIntervalsSingleRobot(t *testing.T) {
	c := MustNew(7, 3)
	got := c.Intervals()
	if len(got) != 1 || got[0] != 6 {
		t.Fatalf("Intervals = %v, want (6)", got)
	}
}

func TestViewFromBothDirections(t *testing.T) {
	// Worked example from §3.1 ff: C* with k=5, n=10 at {0,1,2,3,5}.
	c := MustNew(10, 0, 1, 2, 3, 5)
	cw := c.ViewFrom(0, ring.CW)
	if !cw.Equal(View{0, 0, 0, 1, 4}) {
		t.Errorf("ViewFrom(0, CW) = %v", cw)
	}
	ccw := c.ViewFrom(0, ring.CCW)
	if !ccw.Equal(View{4, 1, 0, 0, 0}) {
		t.Errorf("ViewFrom(0, CCW) = %v", ccw)
	}
	cw3 := c.ViewFrom(3, ring.CW)
	if !cw3.Equal(View{1, 4, 0, 0, 0}) {
		t.Errorf("ViewFrom(3, CW) = %v", cw3)
	}
	ccw3 := c.ViewFrom(3, ring.CCW)
	if !ccw3.Equal(View{0, 0, 0, 4, 1}) {
		t.Errorf("ViewFrom(3, CCW) = %v", ccw3)
	}
}

func TestViewFromPanicsOnEmptyNode(t *testing.T) {
	c := MustNew(10, 0, 1)
	defer func() {
		if recover() == nil {
			t.Error("ViewFrom on empty node did not panic")
		}
	}()
	c.ViewFrom(5, ring.CW)
}

func TestViewSumInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(20)
		k := 1 + rng.Intn(n)
		c := MustNew(n, rng.Perm(n)[:k]...)
		for _, u := range c.Nodes() {
			for _, d := range []ring.Direction{ring.CW, ring.CCW} {
				v := c.ViewFrom(u, d)
				if len(v) != k {
					t.Fatalf("view length %d, want k=%d", len(v), k)
				}
				if v.Sum() != n-k {
					t.Fatalf("view sum %d, want n-k=%d", v.Sum(), n-k)
				}
			}
		}
	}
}

func TestOppositeViewsAreReversals(t *testing.T) {
	// ViewFrom(u, CCW) must equal the paper's W̄ of ViewFrom(u, CW)...
	// not exactly: W̄ keeps q0 first. Reading the other direction starts
	// with the interval behind u, which is the last interval of the CW
	// view. Verify the exact relationship: ccw = reverse(cw) as a plain
	// sequence.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(15)
		k := 1 + rng.Intn(n)
		c := MustNew(n, rng.Perm(n)[:k]...)
		for _, u := range c.Nodes() {
			cw := c.ViewFrom(u, ring.CW)
			ccw := c.ViewFrom(u, ring.CCW)
			for i := range cw {
				if cw[i] != ccw[len(ccw)-1-i] {
					t.Fatalf("n=%d %v: ccw view is not the plain reversal of cw view: %v vs %v", n, c.Nodes(), cw, ccw)
				}
			}
		}
	}
}

func TestFromIntervalsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		n := 4 + rng.Intn(16)
		k := 1 + rng.Intn(n-1)
		c := MustNew(n, rng.Perm(n)[:k]...)
		for _, u := range c.Nodes() {
			v := c.ViewFrom(u, ring.CW)
			rebuilt, err := FromIntervals(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if !rebuilt.Equal(c) {
				t.Fatalf("round trip failed: %v -> %v -> %v", c, v, rebuilt)
			}
		}
	}
}

func TestFromIntervalsValidation(t *testing.T) {
	if _, err := FromIntervals(0, View{}); err == nil {
		t.Error("accepted empty view")
	}
	if _, err := FromIntervals(0, View{-1, 3}); err == nil {
		t.Error("accepted negative interval")
	}
	if _, err := FromIntervals(0, View{0}); err == nil {
		t.Error("accepted a 1-node ring")
	}
}

func TestSuperminPaperExamples(t *testing.T) {
	// W^{C*}_min = (0^{k−2}, 1, n−k−1) — §2.
	c := MustNew(10, 0, 1, 2, 3, 5)
	v := c.SuperminView()
	if !v.Equal(View{0, 0, 0, 1, 4}) {
		t.Errorf("supermin of C*(10,5) = %v", v)
	}
	// Cs: W_min = (0,1,1,2) — §3.1. Build from intervals and verify.
	cs, err := FromIntervals(0, View{0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !cs.SuperminView().Equal(View{0, 1, 1, 2}) {
		t.Errorf("supermin of Cs = %v", cs.SuperminView())
	}
}

func TestSuperminIsMinimalOverAllViews(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		n := 4 + rng.Intn(14)
		k := 1 + rng.Intn(n-1)
		c := MustNew(n, rng.Perm(n)[:k]...)
		smin, anchors := c.Supermin()
		if len(anchors) == 0 {
			t.Fatal("no anchors")
		}
		for _, v := range c.Views() {
			if v.Less(smin) {
				t.Fatalf("view %v smaller than supermin %v in %v", v, smin, c)
			}
		}
		for _, a := range anchors {
			if !c.ViewFrom(a.Node, a.Dir).Equal(smin) {
				t.Fatalf("anchor %v does not realize supermin in %v", a, c)
			}
		}
	}
}

func TestSuperminFirstIntervalMinimal(t *testing.T) {
	// §2: in W_min no interval is strictly smaller than q0, and if k < n
	// the last interval is positive.
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		n := 4 + rng.Intn(14)
		k := 1 + rng.Intn(n-1)
		c := MustNew(n, rng.Perm(n)[:k]...)
		v := c.SuperminView()
		for _, q := range v {
			if q < v[0] {
				t.Fatalf("supermin %v has interval smaller than q0", v)
			}
		}
		if k < n && v[len(v)-1] == 0 {
			t.Fatalf("supermin %v of non-full ring ends with 0 (config %v)", v, c)
		}
	}
}

func TestPeriodicSymmetricRigidClassification(t *testing.T) {
	cases := []struct {
		name      string
		c         Config
		periodic  bool
		symmetric bool
	}{
		{"C*(10,5)", MustNew(10, 0, 1, 2, 3, 5), false, false},
		{"antipodal pair", MustNew(8, 0, 4), true, true}, // invariant under rotation by n/2
		{"adjacent pair", MustNew(8, 0, 1), false, true},
		{"square on 8-ring", MustNew(8, 0, 2, 4, 6), true, true},
		{"period n/2", MustNew(8, 0, 1, 4, 5), true, true},
		{"single robot", MustNew(5, 2), false, true},
		{"full ring", MustNew(5, 0, 1, 2, 3, 4), true, true},
		{"post-Cs (0,0,2,2)", MustNew(8, 0, 1, 2, 5), false, true},
		{"Cs (0,1,1,2)", MustNew(8, 0, 2, 4, 7), false, false},
		{"rigid 3 robots", MustNew(7, 0, 1, 3), false, false},
		{"symmetric 3 robots", MustNew(7, 0, 1, 2), false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.c.IsPeriodic(); got != tc.periodic {
				t.Errorf("IsPeriodic = %v, want %v", got, tc.periodic)
			}
			if got := tc.c.IsSymmetric(); got != tc.symmetric {
				t.Errorf("IsSymmetric = %v, want %v", got, tc.symmetric)
			}
			wantRigid := !tc.periodic && !tc.symmetric
			if got := tc.c.IsRigid(); got != wantRigid {
				t.Errorf("IsRigid = %v, want %v", got, wantRigid)
			}
		})
	}
}

// bruteForceSymmetric checks symmetry by trying all 2n candidate
// reflections of the ring directly on the occupancy set.
func bruteForceSymmetric(c Config) bool {
	n := c.N()
	occ := make([]bool, n)
	for _, u := range c.Nodes() {
		occ[u] = true
	}
	// A reflection of Z_n is u ↦ (a − u) mod n for a = 0..2n−1 halved:
	// all maps u ↦ (a−u) mod n for a in 0..n−1 cover every axis.
	for a := 0; a < n; a++ {
		ok := true
		for u := 0; u < n; u++ {
			v := ((a-u)%n + n) % n
			if occ[u] != occ[v] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// bruteForcePeriodic checks rotation invariance directly.
func bruteForcePeriodic(c Config) bool {
	n := c.N()
	occ := make([]bool, n)
	for _, u := range c.Nodes() {
		occ[u] = true
	}
	for s := 1; s < n; s++ {
		ok := true
		for u := 0; u < n; u++ {
			if occ[u] != occ[(u+s)%n] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestSymmetryPeriodicityAgainstBruteForce(t *testing.T) {
	// Exhaustive cross-validation of the view-based detection (Property 1)
	// against direct geometric checks, for every configuration on rings up
	// to 11 nodes.
	for n := 3; n <= 11; n++ {
		for mask := 1; mask < 1<<n; mask++ {
			var nodes []int
			for u := 0; u < n; u++ {
				if mask&(1<<u) != 0 {
					nodes = append(nodes, u)
				}
			}
			c := MustNew(n, nodes...)
			if got, want := c.IsSymmetric(), bruteForceSymmetric(c); got != want {
				t.Fatalf("n=%d nodes=%v: IsSymmetric=%v, brute force=%v", n, nodes, got, want)
			}
			if got, want := c.IsPeriodic(), bruteForcePeriodic(c); got != want {
				t.Fatalf("n=%d nodes=%v: IsPeriodic=%v, brute force=%v", n, nodes, got, want)
			}
		}
	}
}

func TestProperty1RigidUniqueViews(t *testing.T) {
	// §2: if a configuration is rigid, each occupied node has a view
	// different from any other occupied node (for each direction pairing).
	rng := rand.New(rand.NewSource(23))
	found := 0
	for trial := 0; trial < 500 && found < 100; trial++ {
		n := 5 + rng.Intn(12)
		k := 2 + rng.Intn(n-3)
		c := MustNew(n, rng.Perm(n)[:k]...)
		if !c.IsRigid() {
			continue
		}
		found++
		seen := make(map[string]int)
		for _, u := range c.Nodes() {
			v, _ := c.MinViewFrom(u)
			if prev, dup := seen[v.Key()]; dup {
				t.Fatalf("rigid %v: nodes %d and %d share min view %v", c, prev, u, v)
			}
			seen[v.Key()] = u
		}
	}
	if found == 0 {
		t.Fatal("no rigid configurations sampled")
	}
}

func TestLemma1SuperminCardinality(t *testing.T) {
	// Lemma 1: |I_C| = 1 iff rigid or unique axis through the supermin;
	// |I_C| = 2 iff aperiodic symmetric with axis off superminsor periodic
	// with period n/2; |I_C| > 2 iff periodic with period ≤ n/3.
	// We verify the contrapositive-friendly parts exhaustively:
	// rigid ⇒ |I_C| = 1, |I_C| > 2 ⇒ periodic, |I_C| = 2 ⇒ not rigid.
	for n := 4; n <= 11; n++ {
		for mask := 1; mask < 1<<n; mask++ {
			var nodes []int
			for u := 0; u < n; u++ {
				if mask&(1<<u) != 0 {
					nodes = append(nodes, u)
				}
			}
			c := MustNew(n, nodes...)
			ic := c.SuperminIntervals()
			switch {
			case c.IsRigid() && len(ic) != 1:
				t.Fatalf("rigid %v has |I_C|=%d", c, len(ic))
			case len(ic) == 2 && c.IsRigid():
				t.Fatalf("|I_C|=2 but %v is rigid", c)
			case len(ic) > 2 && !c.IsPeriodic():
				t.Fatalf("|I_C|=%d but %v is aperiodic", len(ic), c)
			}
		}
	}
}

func TestMoveValid(t *testing.T) {
	c := MustNew(8, 0, 1, 2, 5)
	moved, err := c.Move(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !moved.Equal(MustNew(8, 0, 1, 2, 4)) {
		t.Fatalf("Move result %v", moved)
	}
	// Original untouched (immutability).
	if !c.Equal(MustNew(8, 0, 1, 2, 5)) {
		t.Fatal("Move mutated the receiver")
	}
}

func TestMoveErrors(t *testing.T) {
	c := MustNew(8, 0, 1, 2, 5)
	if _, err := c.Move(5, 3); err == nil {
		t.Error("accepted non-adjacent move")
	}
	if _, err := c.Move(4, 3); err == nil {
		t.Error("accepted move from empty node")
	}
	if _, err := c.Move(1, 2); err == nil {
		t.Error("accepted move onto occupied node")
	}
}

func TestMoveMerge(t *testing.T) {
	c := MustNew(8, 0, 1, 2, 5)
	merged, err := c.MoveMerge(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if merged.K() != 3 || !merged.Occupied(2) || merged.Occupied(1) {
		t.Fatalf("MoveMerge result %v", merged)
	}
	// MoveMerge onto an empty node behaves like Move.
	m2, err := c.MoveMerge(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m2.K() != 4 || !m2.Occupied(4) {
		t.Fatalf("MoveMerge to empty node: %v", m2)
	}
	if _, err := c.MoveMerge(5, 3); err == nil {
		t.Error("accepted non-adjacent merge")
	}
	if _, err := c.MoveMerge(3, 2); err == nil {
		t.Error("accepted merge from empty node")
	}
}

func TestCanonicalInvariantUnderRotationReflection(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 200; trial++ {
		n := 4 + rng.Intn(12)
		k := 1 + rng.Intn(n-1)
		nodes := rng.Perm(n)[:k]
		c := MustNew(n, nodes...)
		shift := rng.Intn(n)
		rot := make([]int, k)
		ref := make([]int, k)
		for i, u := range nodes {
			rot[i] = (u + shift) % n
			ref[i] = ((n - u) + shift) % n
		}
		if MustNew(n, rot...).Canonical() != c.Canonical() {
			t.Fatalf("canonical changed under rotation: %v", c)
		}
		if MustNew(n, ref...).Canonical() != c.Canonical() {
			t.Fatalf("canonical changed under reflection: %v", c)
		}
	}
}

func TestOccupied(t *testing.T) {
	c := MustNew(6, 0, 3)
	if !c.Occupied(0) || !c.Occupied(3) || !c.Occupied(6) { // 6 ≡ 0
		t.Error("Occupied misses occupied nodes")
	}
	if c.Occupied(1) || c.Occupied(-1) { // -1 ≡ 5
		t.Error("Occupied reports empty nodes as occupied")
	}
}

func TestStringer(t *testing.T) {
	c := MustNew(8, 0, 1, 2, 5)
	want := "n=8 [0 1 2 5] supermin=(0,0,2,2)"
	if got := c.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
