package config

import "testing"

func TestPatternLiteral(t *testing.T) {
	p := Pattern{Lit(0), Lit(1), Lit(1), Lit(2)}
	if !p.MatchView(View{0, 1, 1, 2}) {
		t.Error("literal pattern rejected exact match")
	}
	if p.MatchView(View{0, 1, 1, 2, 0}) {
		t.Error("pattern not anchored at end")
	}
	if p.MatchView(View{1, 1, 2}) {
		t.Error("pattern not anchored at start")
	}
}

func TestPatternStarPlus(t *testing.T) {
	// The paper's example: (0,0,0,1,...,1,2,2,...,2) ∈ (0{3}, 1*, 2+).
	p := Pattern{Rep(3, 0), Star(1), Plus(2)}
	if !p.MatchView(View{0, 0, 0, 1, 1, 1, 2, 2, 2}) {
		t.Error("rejected paper example")
	}
	if !p.MatchView(View{0, 0, 0, 2}) {
		t.Error("star should match zero repetitions")
	}
	if p.MatchView(View{0, 0, 0, 1, 1}) {
		t.Error("plus matched zero repetitions")
	}
	if p.MatchView(View{0, 0, 1, 2}) {
		t.Error("rep{3} matched only two zeros")
	}
}

func TestPatternMultiElementUnit(t *testing.T) {
	// {0,1}+ matches (0,1), (0,1,0,1), ...
	p := Pattern{PatternItem{Seq: []int{0, 1}, Min: 1, Max: -1}}
	if !p.MatchView(View{0, 1}) || !p.MatchView(View{0, 1, 0, 1, 0, 1}) {
		t.Error("rejected repeated unit")
	}
	if p.MatchView(View{0, 1, 0}) {
		t.Error("matched partial unit")
	}
}

func TestPatternOnConfig(t *testing.T) {
	// Cs = (0,1,1,2) belongs to Lemma 4's pattern (5): (0,1,1+,2).
	cs, err := FromIntervals(0, View{0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Matches(Lemma4Pattern5()) {
		t.Error("Cs does not match pattern (0,1,1+,2)")
	}
	// (0,1,1,1,2) on n=9, k=5 also belongs.
	c2, err := FromIntervals(0, View{0, 1, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Matches(Lemma4Pattern5()) {
		t.Error("(0,1,1,1,2) does not match pattern (0,1,1+,2)")
	}
	// C* does not belong.
	cstar, _ := CStar(10, 5)
	if cstar.Matches(Lemma4Pattern5()) {
		t.Error("C* matches pattern (0,1,1+,2)")
	}
}

func TestPatternMatchesAnyView(t *testing.T) {
	// Matches must try all 2k views: a configuration whose supermin does
	// not match but whose other reading does.
	c, err := FromIntervals(0, View{0, 1, 1, 2}) // supermin (0,1,1,2)
	if err != nil {
		t.Fatal(err)
	}
	// (2,1,1,0) is a rotation read from a different anchor.
	p := Pattern{Lit(2), Lit(1), Lit(1), Lit(0)}
	if !c.Matches(p) {
		t.Error("Matches did not consider non-supermin views")
	}
}

func TestLemma4Pattern6Construction(t *testing.T) {
	p, err := Lemma4Pattern6(2)
	if err != nil {
		t.Fatal(err)
	}
	// ℓ1=2: (0,0,1,{0,1}+,0{0},1) = (0,0,1,{0,1}+,1)
	if !p.MatchView(View{0, 0, 1, 0, 1, 1}) {
		t.Error("rejected minimal member for ℓ1=2")
	}
	if !p.MatchView(View{0, 0, 1, 0, 1, 0, 1, 1}) {
		t.Error("rejected two-repetition member for ℓ1=2")
	}
	if p.MatchView(View{0, 0, 1, 1}) {
		t.Error("matched with zero repetitions of the plus unit")
	}
	p3, err := Lemma4Pattern6(3)
	if err != nil {
		t.Fatal(err)
	}
	// ℓ1=3: (0,0,0,1,{0,0,1}+,0,1)
	if !p3.MatchView(View{0, 0, 0, 1, 0, 0, 1, 0, 1}) {
		t.Error("rejected minimal member for ℓ1=3")
	}
	if _, err := Lemma4Pattern6(1); err == nil {
		t.Error("accepted ℓ1 < 2")
	}
}

func TestLemma5Pattern1(t *testing.T) {
	p := Lemma5Pattern1()
	if !p.MatchView(View{0, 1, 1, 1, 2}) {
		t.Error("rejected minimal member (0,1,1,1,2)")
	}
	if p.MatchView(View{0, 1, 1, 2}) {
		t.Error("matched (0,1,1,2), which needs only pattern (5)")
	}
}

func TestPatternString(t *testing.T) {
	p := Pattern{Lit(0), Rep(3, 0), Plus(1), Star(2)}
	got := p.String()
	want := "(0,{0}{3},{1}+,{2}*)"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestPatternEmpty(t *testing.T) {
	var p Pattern
	if !p.MatchView(View{}) {
		t.Error("empty pattern should match empty view")
	}
	if p.MatchView(View{0}) {
		t.Error("empty pattern matched non-empty view")
	}
}
