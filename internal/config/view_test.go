package config

import (
	"testing"
	"testing/quick"
)

func TestViewCmp(t *testing.T) {
	cases := []struct {
		a, b View
		want int
	}{
		{View{0, 0, 1, 3}, View{0, 1, 1, 2}, -1},
		{View{0, 1, 1, 2}, View{0, 0, 1, 3}, 1},
		{View{1, 2, 3}, View{1, 2, 3}, 0},
		{View{}, View{}, 0},
		{View{1}, View{1, 0}, -1},
		{View{2}, View{1, 5}, 1},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("%v.Cmp(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestViewLessEqualConsistency(t *testing.T) {
	f := func(a, b []uint8) bool {
		va := make(View, len(a))
		vb := make(View, len(b))
		for i, x := range a {
			va[i] = int(x % 7)
		}
		for i, x := range b {
			vb[i] = int(x % 7)
		}
		cmp := va.Cmp(vb)
		return (cmp < 0) == va.Less(vb) && (cmp == 0) == va.Equal(vb) && cmp == -vb.Cmp(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestViewRotated(t *testing.T) {
	v := View{1, 2, 3, 4}
	if got := v.Rotated(0); !got.Equal(v) {
		t.Errorf("Rotated(0) = %v", got)
	}
	if got := v.Rotated(1); !got.Equal(View{2, 3, 4, 1}) {
		t.Errorf("Rotated(1) = %v", got)
	}
	if got := v.Rotated(3); !got.Equal(View{4, 1, 2, 3}) {
		t.Errorf("Rotated(3) = %v", got)
	}
}

func TestViewReversed(t *testing.T) {
	// The paper's W̄ keeps the first interval and reverses the rest:
	// W = (q0,q1,...,qj) ⇒ W̄ = (q0,qj,qj−1,...,q1).
	v := View{7, 1, 2, 3}
	want := View{7, 3, 2, 1}
	if got := v.Reversed(); !got.Equal(want) {
		t.Errorf("Reversed(%v) = %v, want %v", v, got, want)
	}
	if got := v.Reversed().Reversed(); !got.Equal(v) {
		t.Errorf("double reversal changed the view: %v", got)
	}
}

func TestViewReversedSingleton(t *testing.T) {
	v := View{5}
	if got := v.Reversed(); !got.Equal(v) {
		t.Errorf("Reversed singleton = %v", got)
	}
	empty := View{}
	if got := empty.Reversed(); len(got) != 0 {
		t.Errorf("Reversed empty = %v", got)
	}
}

func TestViewRotationReversalGroup(t *testing.T) {
	// Rotations and the reversal generate a dihedral action; check the
	// defining relation r·rot(i) has order 2 in effect on small samples.
	f := func(raw []uint8, shift uint8) bool {
		if len(raw) == 0 {
			return true
		}
		v := make(View, len(raw))
		for i, x := range raw {
			v[i] = int(x % 5)
		}
		i := int(shift) % len(v)
		// Rotating then rotating back is the identity.
		back := (len(v) - i) % len(v)
		return v.Rotated(i).Rotated(back).Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestViewSumCloneString(t *testing.T) {
	v := View{0, 0, 1, 3}
	if v.Sum() != 4 {
		t.Errorf("Sum = %d, want 4", v.Sum())
	}
	c := v.Clone()
	c[0] = 9
	if v[0] != 0 {
		t.Error("Clone aliases the original")
	}
	if v.String() != "(0,0,1,3)" {
		t.Errorf("String = %q", v.String())
	}
	if v.Key() != v.String() {
		t.Error("Key differs from String")
	}
}
