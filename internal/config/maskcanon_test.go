package config

import (
	"math/rand"
	"testing"
)

// bruteMaskCanon recomputes the canonical dihedral image by trying all
// 2n isometries explicitly.
func bruteMaskCanon(m uint64, n int) uint64 {
	best := m
	for _, base := range []uint64{m, MaskReflect(m, n)} {
		for r := 0; r < n; r++ {
			img := MaskRotate(base, r, n)
			if MaskLexLess(img, best) {
				best = img
			}
		}
	}
	return best
}

func randomMasks(rng *rand.Rand, n, count int) []uint64 {
	full := uint64(1)<<uint(n) - 1
	ms := []uint64{0, 1, full, full >> 1}
	for len(ms) < count {
		ms = append(ms, rng.Uint64()&full)
	}
	return ms
}

func TestMaskReflectInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for n := 2; n <= 64; n++ {
		for _, m := range randomMasks(rng, n, 24) {
			if got := MaskReflect(MaskReflect(m, n), n); got != m {
				t.Fatalf("n=%d m=%b: reflect twice = %b", n, m, got)
			}
			// Reflection maps node u to (n−u) mod n.
			want := uint64(0)
			for u := 0; u < n; u++ {
				if m&(1<<uint(u)) != 0 {
					want |= 1 << uint((n-u)%n)
				}
			}
			if got := MaskReflect(m, n); got != want {
				t.Fatalf("n=%d m=%b: reflect = %b, want %b", n, m, got, want)
			}
		}
	}
}

func TestMaskLeastRotationAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for n := 1; n <= 64; n++ {
		for _, m := range randomMasks(rng, n, 24) {
			s := MaskLeastRotationStart(m, n)
			img := MaskRotate(m, (n-s)%n, n)
			for r := 0; r < n; r++ {
				if other := MaskRotate(m, r, n); MaskLexLess(other, img) {
					t.Fatalf("n=%d m=%b: start %d image %b beaten by rotation %d = %b",
						n, m, s, img, r, other)
				}
			}
		}
	}
}

func TestMaskCanonAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for n := 2; n <= 64; n++ {
		for _, m := range randomMasks(rng, n, 24) {
			canon, r, refl := MaskCanon(m, n)
			if want := bruteMaskCanon(m, n); canon != want {
				t.Fatalf("n=%d m=%b: canon %b, brute %b", n, m, canon, want)
			}
			base := m
			if refl {
				base = MaskReflect(m, n)
			}
			if got := MaskRotate(base, r, n); got != canon {
				t.Fatalf("n=%d m=%b: reported isometry (r=%d refl=%v) gives %b, canon %b",
					n, m, r, refl, got, canon)
			}
		}
	}
}

func TestMaskCanonInvariantOnOrbit(t *testing.T) {
	// Every dihedral image of a mask must canonicalize to the same word.
	rng := rand.New(rand.NewSource(24))
	for n := 2; n <= 33; n++ {
		for _, m := range randomMasks(rng, n, 12) {
			canon, _, _ := MaskCanon(m, n)
			for _, base := range []uint64{m, MaskReflect(m, n)} {
				for r := 0; r < n; r++ {
					img := MaskRotate(base, r, n)
					c2, _, _ := MaskCanon(img, n)
					if c2 != canon {
						t.Fatalf("n=%d m=%b image %b: canon %b != orbit canon %b", n, m, img, c2, canon)
					}
				}
			}
		}
	}
}

func TestMaskPeriodDividesAndFixes(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for n := 1; n <= 64; n++ {
		for _, m := range randomMasks(rng, n, 16) {
			p := MaskPeriod(m, n)
			if p < 1 || n%p != 0 {
				t.Fatalf("n=%d m=%b: period %d does not divide n", n, m, p)
			}
			if MaskRotate(m, p%n, n) != m && p != n {
				t.Fatalf("n=%d m=%b: rotation by period %d moves the mask", n, m, p)
			}
			for d := 1; d < p; d++ {
				if MaskRotate(m, d, n) == m {
					t.Fatalf("n=%d m=%b: rotation %d < period %d fixes the mask", n, m, d, p)
				}
			}
		}
	}
}

// TestMaskCanonMatchesConfigCanonKey ties the bitmask kernel to the
// interval-cycle canonicalization: two occupied masks are dihedral
// images of one another iff their configurations share a CanonKey, and
// that must coincide with MaskCanon equality.
func TestMaskCanonMatchesConfigCanonKey(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	toConfig := func(m uint64, n int) Config {
		nodes := make([]int, 0, n)
		for u := 0; u < n; u++ {
			if m&(1<<uint(u)) != 0 {
				nodes = append(nodes, u)
			}
		}
		return MustNew(n, nodes...)
	}
	for n := 3; n <= 16; n++ {
		masks := make([]uint64, 0, 40)
		for len(masks) < 40 {
			m := rng.Uint64() & (uint64(1)<<uint(n) - 1)
			if m != 0 && m != uint64(1)<<uint(n)-1 {
				masks = append(masks, m)
			}
		}
		for i, a := range masks {
			ca, _, _ := MaskCanon(a, n)
			for _, b := range masks[i:] {
				cb, _, _ := MaskCanon(b, n)
				sameMask := ca == cb
				sameKey := toConfig(a, n).CanonKey() == toConfig(b, n).CanonKey()
				if sameMask != sameKey {
					t.Fatalf("n=%d a=%b b=%b: MaskCanon equal=%v, CanonKey equal=%v",
						n, a, b, sameMask, sameKey)
				}
			}
		}
	}
}
