package config

import (
	"fmt"
	"math/bits"

	"ringrobots/internal/ring"
)

// Lane views: directional interval views built straight from a packed
// occupancy bitmask, without materializing a Config. This is the
// ViewFromInto pattern one level lower — the batched Monte Carlo engine
// (internal/mcsim) holds thousands of worlds as single-word occupancy
// masks and must be able to hand an Algorithm its perception without
// allocating or touching the memoized canonical machinery.
//
// Bit u of a mask reports occupancy of node u on an n-node ring, n ≤ 64.
// The views produced here are exactly Config.ViewFromInto's for the
// configuration {u : bit u set} (differentially tested).

// MaxMaskRing is the widest ring representable as a single-word
// occupancy mask, the limit of the mask-view helpers and of the batch
// simulation backend built on them.
const MaxMaskRing = 64

// OccupancyMask packs the configuration into an occupancy bitmask.
// It errors when the ring exceeds MaxMaskRing nodes.
func (c Config) OccupancyMask() (uint64, error) {
	if c.N() > MaxMaskRing {
		return 0, fmt.Errorf("config: ring size %d exceeds the %d-node mask limit", c.N(), MaxMaskRing)
	}
	var m uint64
	for _, u := range c.nodes {
		m |= 1 << uint(u)
	}
	return m, nil
}

// ViewFromMaskInto returns the view of occupied node u of the occupancy
// mask occ (n-node ring, n ≤ 64) read in direction d, writing into buf
// like ViewFromInto. It panics if u is not occupied, mirroring ViewFrom.
func ViewFromMaskInto(occ uint64, n, u int, d ring.Direction, buf View) View {
	if occ&(1<<uint(u)) == 0 {
		return panicUnoccupied(u)
	}
	k := bits.OnesCount64(occ)
	var v View
	if cap(buf) >= k {
		v = buf[:k]
	} else {
		v = make(View, k)
	}
	if d == ring.CW {
		// v[j] is the gap after the j-th occupied node met walking up
		// from u — the interval cycle read clockwise from u's interval.
		cur := u
		for j := 0; j < k; j++ {
			gap := 0
			w := cur + 1
			if w == n {
				w = 0
			}
			for occ&(1<<uint(w)) == 0 {
				gap++
				w++
				if w == n {
					w = 0
				}
			}
			v[j] = gap
			cur = w
		}
	} else {
		// Counter-clockwise: v[j] is the gap below the j-th occupied
		// node met walking down from u (starting with u itself).
		cur := u
		for j := 0; j < k; j++ {
			gap := 0
			w := cur - 1
			if w < 0 {
				w = n - 1
			}
			for occ&(1<<uint(w)) == 0 {
				gap++
				w--
				if w < 0 {
					w = n - 1
				}
			}
			v[j] = gap
			cur = w
		}
	}
	return v
}
