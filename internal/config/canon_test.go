package config

import (
	"math/rand"
	"testing"

	"ringrobots/internal/ring"
)

// randomConfig draws a uniformly random exclusive configuration with
// 1 ≤ k ≤ n−1 occupied nodes on an n-node ring.
func randomConfig(rng *rand.Rand, n int) Config {
	k := 1 + rng.Intn(n-1)
	nodes := rng.Perm(n)[:k]
	return MustNew(n, nodes...)
}

// TestBoothSuperminMatchesNaive cross-checks the Booth-based supermin
// and anchor set against the quadratic all-views oracle on thousands of
// random configurations up to n = 256.
func TestBoothSuperminMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 0
	for _, n := range []int{3, 4, 5, 6, 7, 8, 9, 12, 16, 31, 32, 64, 100, 255, 256} {
		per := 400
		if n > 64 {
			per = 60
		}
		for i := 0; i < per; i++ {
			c := randomConfig(rng, n)
			gotV, gotA := c.Supermin()
			wantV, wantA := c.superminNaive()
			if !gotV.Equal(wantV) {
				t.Fatalf("n=%d %v: supermin %v, naive %v", n, c.Nodes(), gotV, wantV)
			}
			if len(gotA) != len(wantA) {
				t.Fatalf("n=%d %v: anchors %v, naive %v", n, c.Nodes(), gotA, wantA)
			}
			for j := range gotA {
				if gotA[j] != wantA[j] {
					t.Fatalf("n=%d %v: anchors %v, naive %v", n, c.Nodes(), gotA, wantA)
				}
			}
			trials++
		}
	}
	t.Logf("checked %d random configurations", trials)
}

// TestKMPClassificationMatchesNaive cross-checks periodicity and
// symmetry against the rotation-loop oracles.
func TestKMPClassificationMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 24, 48, 128, 256} {
		per := 400
		if n > 64 {
			per = 60
		}
		for i := 0; i < per; i++ {
			c := randomConfig(rng, n)
			if got, want := c.IsPeriodic(), c.isPeriodicNaive(); got != want {
				t.Fatalf("n=%d %v: IsPeriodic=%v, naive=%v", n, c.Nodes(), got, want)
			}
			if got, want := c.IsSymmetric(), c.isSymmetricNaive(); got != want {
				t.Fatalf("n=%d %v: IsSymmetric=%v, naive=%v", n, c.Nodes(), got, want)
			}
		}
	}
}

// TestClassificationExhaustiveSmall compares kernels with oracles on
// every exclusive configuration of every ring up to n = 11 — complete
// coverage of the small cases the solver and Figures 4–9 rely on.
func TestClassificationExhaustiveSmall(t *testing.T) {
	for n := 3; n <= 11; n++ {
		for mask := 1; mask < 1<<uint(n); mask++ {
			var nodes []int
			for u := 0; u < n; u++ {
				if mask&(1<<uint(u)) != 0 {
					nodes = append(nodes, u)
				}
			}
			c := MustNew(n, nodes...)
			gotV, gotA := c.Supermin()
			wantV, wantA := c.superminNaive()
			if !gotV.Equal(wantV) {
				t.Fatalf("n=%d %v: supermin %v, naive %v", n, nodes, gotV, wantV)
			}
			if len(gotA) != len(wantA) {
				t.Fatalf("n=%d %v: anchors %v, naive %v", n, nodes, gotA, wantA)
			}
			for j := range gotA {
				if gotA[j] != wantA[j] {
					t.Fatalf("n=%d %v: anchors %v, naive %v", n, nodes, gotA, wantA)
				}
			}
			if got, want := c.IsPeriodic(), c.isPeriodicNaive(); got != want {
				t.Fatalf("n=%d %v: IsPeriodic=%v, naive=%v", n, nodes, got, want)
			}
			if got, want := c.IsSymmetric(), c.isSymmetricNaive(); got != want {
				t.Fatalf("n=%d %v: IsSymmetric=%v, naive=%v", n, nodes, got, want)
			}
		}
	}
}

// TestCanonKeyMatchesCanonicalString verifies that the compact key
// induces exactly the same equivalence classes as the legacy string key:
// two configurations share a CanonKey iff they share Canonical().
func TestCanonKeyMatchesCanonicalString(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	byKey := make(map[CanonKey]string)
	byStr := make(map[string]CanonKey)
	for _, n := range []int{3, 5, 8, 12, 16, 33, 64, 200, 256} {
		per := 300
		if n > 64 {
			per = 50
		}
		for i := 0; i < per; i++ {
			c := randomConfig(rng, n)
			key, str := c.CanonKey(), c.Canonical()
			if prev, ok := byKey[key]; ok && prev != str {
				t.Fatalf("CanonKey collision: %v for both %q and %q", key, prev, str)
			}
			if prev, ok := byStr[str]; ok && prev != key {
				t.Fatalf("canonical string %q mapped to two keys %v and %v", str, prev, key)
			}
			byKey[key] = str
			byStr[str] = key
		}
	}
	t.Logf("%d distinct classes cross-checked", len(byKey))
}

// TestCanonKeyRoundTrip decodes keys back into views, covering both the
// packed-word and byte-string representations.
func TestCanonKeyRoundTrip(t *testing.T) {
	views := []View{
		{0},
		{5},
		{0, 0, 1, 3},
		{2, 2, 2},
		make(View, 60), // forces the byte-string fallback (k ≥ 53 at 1 bit)
	}
	big := make(View, 30)
	for i := range big {
		big[i] = 1000 + i // large values force the fallback too
	}
	views = append(views, big)
	for _, v := range views {
		ck := KeyOf(v)
		back := ck.View()
		if !back.Equal(v) {
			t.Fatalf("round trip %v -> %v -> %v", v, ck, back)
		}
	}
	if !(CanonKey{}).IsZero() {
		t.Fatal("zero CanonKey not IsZero")
	}
	if KeyOf(View{0}).IsZero() {
		t.Fatal("KeyOf((0)) is zero-valued; packed encoding must disambiguate")
	}
}

// TestCanonKeyInjectiveOnViews feeds many distinct raw views (not just
// supermins) through KeyOf and requires pairwise-distinct keys.
func TestCanonKeyInjectiveOnViews(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	seen := make(map[CanonKey]string)
	add := func(v View) {
		ck := KeyOf(v)
		s := v.String()
		if prev, ok := seen[ck]; ok && prev != s {
			t.Fatalf("KeyOf collision: %v for %q and %q", ck, prev, s)
		}
		seen[ck] = s
	}
	// Systematic near-collision shapes: same multiset, different order;
	// same digits, different lengths; boundary sizes around the packed
	// capacity.
	add(View{1, 2})
	add(View{2, 1})
	add(View{1, 2, 0})
	add(View{0, 1, 2})
	add(View{12})
	add(View{1, 2})
	for k := 50; k <= 56; k++ {
		v := make(View, k)
		v[k-1] = 1
		add(v)
	}
	for i := 0; i < 4000; i++ {
		k := 1 + rng.Intn(40)
		v := make(View, k)
		for j := range v {
			v[j] = rng.Intn(1 << uint(rng.Intn(12)))
		}
		add(v)
	}
	t.Logf("%d distinct views keyed", len(seen))
}

// TestSuperminMinimalityProperty is a property check independent of
// the oracle implementation: the supermin must be ≤ every directional
// view, and every anchor's reading must equal it.
func TestSuperminMinimalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for i := 0; i < 1500; i++ {
		n := 3 + rng.Intn(60)
		c := randomConfig(rng, n)
		sm, anchors := c.Supermin()
		for _, u := range c.Nodes() {
			for _, d := range []ring.Direction{ring.CW, ring.CCW} {
				if c.ViewFrom(u, d).Less(sm) {
					t.Fatalf("%v: view from %d %v beats supermin %v", c, u, d, sm)
				}
			}
		}
		if len(anchors) == 0 {
			t.Fatalf("%v: no anchors", c)
		}
		for _, a := range anchors {
			if !c.ViewFrom(a.Node, a.Dir).Equal(sm) {
				t.Fatalf("%v: anchor %v does not realize supermin %v", c, a, sm)
			}
		}
	}
}

// TestCachedClassificationStableAcrossCopies ensures by-value copies
// share the memoized data and agree on every derived quantity.
func TestCachedClassificationStableAcrossCopies(t *testing.T) {
	c := MustNew(12, 0, 2, 3, 7, 9)
	c2 := c
	v1, a1 := c.Supermin()
	v2, a2 := c2.Supermin()
	if &v1[0] != &v2[0] || &a1[0] != &a2[0] {
		t.Error("copies recomputed canonical data instead of sharing the cache")
	}
	if c.CanonKey() != c2.CanonKey() {
		t.Error("copies disagree on CanonKey")
	}
}
