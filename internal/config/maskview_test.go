package config

import (
	"math/rand"
	"testing"

	"ringrobots/internal/ring"
)

// TestViewFromMaskMatchesConfig checks that views built straight from
// an occupancy bitmask agree with Config.ViewFromInto for every
// observer and direction, across random configurations up to the
// 64-node mask limit.
func TestViewFromMaskMatchesConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(MaxMaskRing-2)
		k := 1 + rng.Intn(n)
		nodes := rng.Perm(n)[:k]
		c, err := New(n, nodes...)
		if err != nil {
			t.Fatal(err)
		}
		occ, err := c.OccupancyMask()
		if err != nil {
			t.Fatal(err)
		}
		var buf View
		for _, u := range c.Nodes() {
			for _, d := range []ring.Direction{ring.CW, ring.CCW} {
				want := c.ViewFromInto(u, d, nil)
				buf = ViewFromMaskInto(occ, n, u, d, buf)
				if !viewsEqual(buf, want) {
					t.Fatalf("n=%d nodes=%v u=%d dir=%v: mask view %v, config view %v", n, nodes, u, d, buf, want)
				}
			}
		}
	}
}

func viewsEqual(a, b View) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOccupancyMaskRoundTrip pins the bit layout: bit u set iff node u
// is occupied, and the n > 64 guard.
func TestOccupancyMaskRoundTrip(t *testing.T) {
	c := MustNew(10, 0, 3, 7)
	occ, err := c.OccupancyMask()
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(1)<<0 | 1<<3 | 1<<7; occ != want {
		t.Fatalf("mask %b, want %b", occ, want)
	}
	big, err := New(MaxMaskRing+1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := big.OccupancyMask(); err == nil {
		t.Fatal("expected an error for n > MaxMaskRing")
	}
}

// TestViewFromMaskPanicsUnoccupied pins the same contract ViewFromInto
// has: an unoccupied observer is a caller bug.
func TestViewFromMaskPanicsUnoccupied(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic for an unoccupied observer")
		}
	}()
	ViewFromMaskInto(0b101, 5, 1, ring.CW, nil)
}
