package config

import "math/bits"

// This file extends the Booth least-rotation kernel of canon.go to
// packed node bitmasks: a configuration's occupied set (and, in the
// feasibility solver, every 192-bit game state built on it) fits one
// uint64 for n ≤ 64, so the dihedral canonicalization that classifies
// interval cycles can run directly on the word — no interval-cycle
// materialization, no scratch slices. The feasibility searcher uses
// these kernels to quotient its interned frontier by the 2n ring
// isometries (see internal/feasibility/quotient.go).
//
// Conventions: bit u of a mask is node u of the ring; rotating a mask
// up by r applies the isometry u ↦ (u+r) mod n; reflecting applies
// u ↦ (n−u) mod n. A mask is compared to another bit-lexicographically
// — bit 0 first, 0 < 1 — matching the element order Booth's algorithm
// uses on the underlying bit string.

// MaskRotate rotates an n-bit mask up by r (bit u of the result is bit
// (u−r) mod n of m): the image of m under the rotation u ↦ u+r. m must
// have no bits at or above position n, and 0 ≤ r < n.
func MaskRotate(m uint64, r, n int) uint64 {
	if r == 0 {
		return m
	}
	return (m<<uint(r) | m>>(uint(n)-uint(r))) & (uint64(1)<<uint(n) - 1)
}

// MaskReflect returns the image of an n-bit mask under the reflection
// u ↦ (n−u) mod n (the axis through node 0).
func MaskReflect(m uint64, n int) uint64 {
	// Bit 0 is fixed; bits 1..n−1 reverse among themselves.
	rest := m >> 1 // bit u ≥ 1 at position u−1
	rev := bits.Reverse64(rest) >> (64 - uint(n-1))
	return m&1 | rev<<1
}

// MaskLeastRotationStart returns the start index s minimizing the
// bit-string rotation (b_s, b_{s+1}, …, b_{s+n−1}) of the n-bit mask m
// lexicographically — Booth's algorithm specialized to bits, reading
// the word directly instead of an []int cycle. The canonical rotation
// image is then MaskRotate(m, (n−s) mod n, n), which carries that least
// reading in bits 0..n−1.
func MaskLeastRotationStart(m uint64, n int) int {
	if n <= 1 || m == 0 || m == uint64(1)<<uint(n)-1 {
		return 0
	}
	bit := func(i int) uint64 {
		return (m >> uint(i%n)) & 1
	}
	// Failure buffer over the doubled string: 2n ≤ 128 entries on the
	// stack (no allocation), int16 since values < 2n can exceed int8 for
	// the full n ≤ 64 mask range.
	var f [128]int16
	for i := 0; i < 2*n; i++ {
		f[i] = -1
	}
	k := 0
	for j := 1; j < 2*n; j++ {
		sj := bit(j)
		i := f[j-k-1]
		for i != -1 && sj != bit(k+int(i)+1) {
			if sj < bit(k+int(i)+1) {
				k = j - int(i) - 1
			}
			i = f[i]
		}
		if i == -1 && sj != bit(k) {
			if sj < bit(k) {
				k = j
			}
			f[j-k] = -1
		} else {
			f[j-k] = i + 1
		}
	}
	if k >= n {
		k -= n
	}
	return k
}

// MaskPeriod returns the smallest d ≥ 1 with MaskRotate(m, d, n) == m.
// It always divides n; d == n means only the trivial full rotation
// fixes the mask. The rotations mapping m onto its canonical image are
// exactly the canonical one shifted by multiples of the period — the
// bitmask analogue of canonData.anchors.
func MaskPeriod(m uint64, n int) int {
	for d := 1; d < n; d++ {
		if n%d == 0 && MaskRotate(m, d, n) == m {
			return d
		}
	}
	return n
}

// MaskLexLess orders n-bit masks by their bit strings read from bit 0
// (0 < 1) — the order under which each Booth image is minimal over its
// rotation class. Distinct from numeric uint64 order, which reads the
// highest bit first.
func MaskLexLess(a, b uint64) bool {
	diff := a ^ b
	if diff == 0 {
		return false
	}
	return a&(diff&-diff) == 0
}

// MaskCanon returns the canonical dihedral image of an n-bit mask — the
// bit-lexicographically least mask among the 2n rotation and reflection
// images — together with one isometry (rotation r, reflect first or
// not) realizing it: canon == MaskRotate(refl ? MaskReflect(m,n) : m,
// r, n). When several isometries realize the image (symmetric or
// periodic masks), the unreflected orientation is preferred and the
// reported rotation is Booth's deterministic representative; the full
// set is the reported rotation shifted by multiples of MaskPeriod, in
// both orientations when the two orientation images coincide.
func MaskCanon(m uint64, n int) (canon uint64, r int, refl bool) {
	sF := MaskLeastRotationStart(m, n)
	rF := (n - sF) % n
	imgF := MaskRotate(m, rF, n)
	rv := MaskReflect(m, n)
	sR := MaskLeastRotationStart(rv, n)
	rR := (n - sR) % n
	imgR := MaskRotate(rv, rR, n)
	if MaskLexLess(imgR, imgF) {
		return imgR, rR, true
	}
	return imgF, rF, false
}
