package config

import (
	"math/rand"
	"testing"

	"ringrobots/internal/ring"
)

// TestSymmetricAfterMoveExhaustive checks the delta probe against the
// materializing oracle (Move + IsSymmetric) for every configuration and
// every adjacent move on small rings.
func TestSymmetricAfterMoveExhaustive(t *testing.T) {
	for n := 3; n <= 9; n++ {
		for occ := 1; occ < 1<<uint(n); occ++ {
			nodes := make([]int, 0, n)
			for u := 0; u < n; u++ {
				if occ&(1<<uint(u)) != 0 {
					nodes = append(nodes, u)
				}
			}
			c := MustNew(n, nodes...)
			for _, from := range nodes {
				for _, d := range []ring.Direction{ring.CW, ring.CCW} {
					to := c.Ring().Step(from, d)
					sym, ok := c.SymmetricAfterMove(from, to)
					next, err := c.Move(from, to)
					if ok != (err == nil) {
						t.Fatalf("n=%d %v move %d->%d: probe ok=%v, Move err=%v", n, nodes, from, to, ok, err)
					}
					if ok && sym != next.IsSymmetric() {
						t.Fatalf("n=%d %v move %d->%d: probe symmetric=%v, oracle %v",
							n, nodes, from, to, sym, next.IsSymmetric())
					}
				}
			}
		}
	}
}

// TestSymmetricAfterMoveRandom fuzzes the probe on wide rings.
func TestSymmetricAfterMoveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 3000; trial++ {
		n := 3 + rng.Intn(120)
		k := 1 + rng.Intn(n)
		perm := rng.Perm(n)
		nodes := append([]int(nil), perm[:k]...)
		c := MustNew(n, nodes...)
		from := nodes[rng.Intn(k)]
		d := ring.CW
		if rng.Intn(2) == 0 {
			d = ring.CCW
		}
		to := c.Ring().Step(from, d)
		sym, ok := c.SymmetricAfterMove(from, to)
		next, err := c.Move(from, to)
		if ok != (err == nil) {
			t.Fatalf("n=%d k=%d move %d->%d: probe ok=%v, Move err=%v", n, k, from, to, ok, err)
		}
		if ok && sym != next.IsSymmetric() {
			t.Fatalf("n=%d k=%d %v move %d->%d: probe symmetric=%v, oracle %v", n, k, nodes, from, to, sym, next.IsSymmetric())
		}
	}
}

// TestSymmetricAfterMoveAllocFree pins the probe's zero-allocation
// steady state (the point of the delta: Align's planner probes up to
// three successors per step and used to build a Config per probe).
func TestSymmetricAfterMoveAllocFree(t *testing.T) {
	c := MustNew(24, 0, 1, 3, 6, 10, 15, 21)
	to := c.Ring().Step(0, ring.CCW)
	if avg := testing.AllocsPerRun(200, func() {
		if _, ok := c.SymmetricAfterMove(0, to); !ok {
			t.Fatal("probe not applicable")
		}
	}); avg > 0 {
		t.Errorf("SymmetricAfterMove allocates %.1f objects per probe; want 0", avg)
	}
}
