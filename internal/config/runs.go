package config

import "sort"

// Run is a maximal block of consecutive occupied nodes.
type Run struct {
	// Start is the first node of the block walking clockwise.
	Start int
	// Len is the number of occupied nodes in the block (≥ 1).
	Len int
	// GapAfter is the number of empty nodes between this block and the
	// next block clockwise (≥ 1, since blocks are maximal).
	GapAfter int
}

// Runs returns the maximal blocks of consecutive occupied nodes in
// clockwise order, starting from the block containing the smallest
// occupied node label. For a full ring (k = n) it returns a single run
// with GapAfter 0.
func (c Config) Runs() []Run {
	n := c.N()
	if c.K() == n {
		return []Run{{Start: 0, Len: n, GapAfter: 0}}
	}
	occ := make([]bool, n)
	for _, u := range c.nodes {
		occ[u] = true
	}
	var runs []Run
	seen := make([]bool, n)
	for _, u := range c.nodes {
		if seen[u] {
			continue
		}
		// Walk back to the block start.
		start := u
		for occ[c.r.Norm(start-1)] {
			start = c.r.Norm(start - 1)
		}
		length := 0
		for v := start; occ[v]; v = c.r.Norm(v + 1) {
			seen[v] = true
			length++
		}
		gap := 0
		for v := c.r.Norm(start + length); !occ[v]; v = c.r.Norm(v + 1) {
			gap++
		}
		runs = append(runs, Run{Start: start, Len: length, GapAfter: gap})
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].Start < runs[j].Start })
	// Rotate so that consecutive entries are clockwise-consecutive blocks
	// (they already are: sorting by start node preserves cyclic order).
	return runs
}

// RunLens returns just the block lengths in clockwise order.
func (c Config) RunLens() []int {
	runs := c.Runs()
	out := make([]int, len(runs))
	for i, r := range runs {
		out[i] = r.Len
	}
	return out
}
