package config

import "fmt"

// CStarView returns W^{C*}_min for k robots on an n-node ring:
// (0^{k−2}, 1, n−k−1). The paper defines C* for 2 ≤ k < n−2 as k−1
// consecutive occupied nodes, one empty node, one occupied node, and the
// remaining ≥ 2 consecutive empty nodes (§2).
func CStarView(n, k int) (View, error) {
	if k < 2 || k >= n-2 {
		return nil, fmt.Errorf("config: C* undefined for n=%d, k=%d (need 2 <= k < n-2)", n, k)
	}
	v := make(View, k)
	v[k-2] = 1
	v[k-1] = n - k - 1
	return v, nil
}

// CStar returns a concrete C* configuration on an n-node ring with k
// robots, occupying nodes 0..k−2 and k.
func CStar(n, k int) (Config, error) {
	v, err := CStarView(n, k)
	if err != nil {
		return Config{}, err
	}
	return FromIntervals(0, v)
}

// IsCStar reports whether c is (equivalent to) the configuration C* for
// its own n and k.
func (c Config) IsCStar() bool {
	return c.isCStarShape(c.K())
}

// isCStarShape checks supermin == (0^{j−2}, 1, n−j−1) without
// materializing the target view (this test runs once per planning step
// in every task loop, so it must not allocate).
func (c Config) isCStarShape(j int) bool {
	n := c.N()
	if j < 2 || j >= n-2 || j != c.K() {
		return false
	}
	sm := c.SuperminView()
	for i := 0; i < j-2; i++ {
		if sm[i] != 0 {
			return false
		}
	}
	return sm[j-2] == 1 && sm[j-1] == n-j-1
}

// IsCStarType reports whether c is a C*-type configuration in the sense of
// §5: an ordered sequence of j−2 intervals of length 0, one interval of
// length 1 and one interval of length n−j−1, where j = K() is the number
// of occupied nodes, 3 ≤ j. (For j = K = k this is exactly C*.) The second
// return value is j.
func (c Config) IsCStarType() (bool, int) {
	j := c.K()
	if j < 3 {
		return false, j
	}
	return c.isCStarShape(j), j
}

// CStarTypeAnchor returns, for a C*-type configuration, the node playing
// the role of the "first node of the sequence" (§5: the node from which the
// supermin reading (0^{j−2},1,n−j−1) starts) and the node following it in
// that reading (the contraction target). ok is false if c is not C*-type.
func (c Config) CStarTypeAnchor() (first, second int, ok bool) {
	isType, _ := c.IsCStarType()
	if !isType {
		return 0, 0, false
	}
	_, anchors := c.Supermin()
	// C*-type configurations with n−j−1 ≥ 2 are rigid, so the anchor is
	// unique; defensively take the first.
	a := anchors[0]
	first = a.Node
	second = c.r.Step(first, a.Dir)
	if !c.Occupied(second) {
		// The first interval of the supermin of a C*-type configuration is
		// 0 (j ≥ 3), so the next node in reading direction is occupied.
		panic("config: C*-type anchor invariant violated")
	}
	return first, second, true
}

// CsView is the supermin view of the special configuration Cs of §3
// (k=4, n=8): the unique rigid configuration from which every reduction
// creates symmetry.
func CsView() View { return View{0, 1, 1, 2} }

// IsCs reports whether c is (equivalent to) configuration Cs.
func (c Config) IsCs() bool {
	if c.K() != 4 || c.N() != 8 {
		return false
	}
	sm := c.SuperminView()
	return sm[0] == 0 && sm[1] == 1 && sm[2] == 1 && sm[3] == 2
}

// PostCsView is the supermin view (0,0,2,2) of the symmetric configuration
// C reached from Cs by reduction_1; a second reduction_1 performed by the
// unique robot on the symmetry axis then reaches C* (§3.1).
func PostCsView() View { return View{0, 0, 2, 2} }

// IsPostCs reports whether c is the symmetric intermediate (0,0,2,2).
func (c Config) IsPostCs() bool {
	if c.K() != 4 || c.N() != 8 {
		return false
	}
	sm := c.SuperminView()
	return sm[0] == 0 && sm[1] == 0 && sm[2] == 2 && sm[3] == 2
}
