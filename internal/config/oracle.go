package config

import "ringrobots/internal/ring"

// Naive reference implementations of the configuration algebra, kept as
// oracles for the differential tests of the Booth/KMP kernels in
// canon.go. They deliberately mirror the paper's definitions literally:
// supermin as the minimum over all 2k directional views (O(k²)),
// periodicity and symmetry as rotation-loop scans. Production code must
// never call these; see canon.go for the O(k) versions.

// intervalsNaive recomputes the interval cycle without the cache.
func (c Config) intervalsNaive() View {
	k := len(c.nodes)
	g := make(View, k)
	for i := 0; i < k; i++ {
		next := c.nodes[(i+1)%k]
		g[i] = c.r.Norm(next-c.nodes[i]) - 1
		if k == 1 {
			g[i] = c.r.N() - 1
		}
	}
	return g
}

// viewFromNaive reads the view at occupied-node index i in direction d,
// from a freshly computed interval cycle.
func (c Config) viewFromNaive(i int, d ring.Direction) View {
	g := c.intervalsNaive()
	k := len(g)
	v := make(View, k)
	if d == ring.CW {
		for j := 0; j < k; j++ {
			v[j] = g[(i+j)%k]
		}
	} else {
		for j := 0; j < k; j++ {
			v[j] = g[((i-1-j)%k+k)%k]
		}
	}
	return v
}

// superminNaive is the original quadratic supermin: compare all 2k views.
func (c Config) superminNaive() (View, []Anchor) {
	var best View
	var anchors []Anchor
	for i, u := range c.nodes {
		for _, d := range []ring.Direction{ring.CW, ring.CCW} {
			v := c.viewFromNaive(i, d)
			switch {
			case best == nil || v.Less(best):
				best = v
				anchors = anchors[:0]
				anchors = append(anchors, Anchor{Node: u, Dir: d})
			case v.Equal(best):
				anchors = append(anchors, Anchor{Node: u, Dir: d})
			}
		}
	}
	return best, anchors
}

// isPeriodicNaive checks invariance under non-trivial rotation by
// comparing the interval cycle with each of its rotations.
func (c Config) isPeriodicNaive() bool {
	g := c.intervalsNaive()
	k := len(g)
	if k <= 1 {
		return false
	}
	for s := 1; s < k; s++ {
		if g.Rotated(s).Equal(g) {
			return true
		}
	}
	return false
}

// isSymmetricNaive checks for an axis of symmetry by testing whether the
// reversed interval cycle is any rotation of the interval cycle.
func (c Config) isSymmetricNaive() bool {
	g := c.intervalsNaive()
	k := len(g)
	if k == 1 {
		return true
	}
	rev := g.Reversed()
	for s := 0; s < k; s++ {
		if rev.Rotated(s).Equal(g) {
			return true
		}
	}
	return false
}
