package config

import (
	"testing"
)

func TestCStarView(t *testing.T) {
	v, err := CStarView(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(View{0, 0, 0, 1, 4}) {
		t.Errorf("CStarView(10,5) = %v", v)
	}
	v, err = CStarView(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(View{0, 0, 1, 3}) {
		t.Errorf("CStarView(8,4) = %v", v)
	}
	if _, err := CStarView(8, 6); err == nil {
		t.Error("CStarView accepted k >= n-2")
	}
	if _, err := CStarView(8, 1); err == nil {
		t.Error("CStarView accepted k < 2")
	}
}

func TestCStarProperties(t *testing.T) {
	// §2: C* has k−2 intervals of length 0, one of length 1 and one of
	// length n−k−1 > 1; |I_{C*}| = 1; C* is rigid for k ≥ 3.
	for n := 6; n <= 16; n++ {
		for k := 3; k < n-2; k++ {
			c, err := CStar(n, k)
			if err != nil {
				t.Fatal(err)
			}
			if !c.IsCStar() {
				t.Fatalf("CStar(%d,%d) does not satisfy IsCStar", n, k)
			}
			if !c.IsRigid() {
				t.Fatalf("CStar(%d,%d) is not rigid", n, k)
			}
			if ic := c.SuperminIntervals(); len(ic) != 1 {
				t.Fatalf("CStar(%d,%d): |I_C| = %d, want 1", n, k, len(ic))
			}
			zero, one, big := 0, 0, 0
			for _, q := range c.Intervals() {
				switch {
				case q == 0:
					zero++
				case q == 1:
					one++
				default:
					big++
				}
			}
			if zero != k-2 || one != 1 || big != 1 {
				t.Fatalf("CStar(%d,%d) interval histogram: %d zeros, %d ones, %d big", n, k, zero, one, big)
			}
		}
	}
}

func TestIsCStarRejectsOthers(t *testing.T) {
	c := MustNew(10, 0, 1, 2, 3, 6) // (0,0,0,2,3): not C*
	if c.IsCStar() {
		t.Error("non-C* configuration accepted")
	}
	if ok, _ := c.IsCStarType(); ok {
		t.Error("non-C*-type configuration accepted")
	}
}

func TestIsCStarTypeWithFewerOccupiedNodes(t *testing.T) {
	// C*-type with j occupied nodes on an n-ring: (0^{j−2}, 1, n−j−1).
	// This is what gathering produces as multiplicities grow (§5).
	c := MustNew(10, 0, 1, 3) // j=3: (0,1,6) ✓
	ok, j := c.IsCStarType()
	if !ok || j != 3 {
		t.Fatalf("IsCStarType = (%v,%d), want (true,3)", ok, j)
	}
	c2 := MustNew(10, 0, 1, 4) // (0,2,5): not C*-type
	if ok, _ := c2.IsCStarType(); ok {
		t.Error("accepted (0,2,5)")
	}
	// Two occupied nodes are never C*-type (j ≥ 3 required).
	c3 := MustNew(10, 0, 2)
	if ok, _ := c3.IsCStarType(); ok {
		t.Error("accepted j=2")
	}
}

func TestCStarTypeAnchor(t *testing.T) {
	// For {0,1,2,3,5} on a 10-ring the supermin reading (0,0,0,1,4)
	// starts at node 0 toward node 1.
	c := MustNew(10, 0, 1, 2, 3, 5)
	first, second, ok := c.CStarTypeAnchor()
	if !ok {
		t.Fatal("C* not recognized as C*-type")
	}
	if first != 0 || second != 1 {
		t.Fatalf("anchor = (%d,%d), want (0,1)", first, second)
	}
	// The same configuration shifted: {2,3,4,5,7} — anchor shifts with it.
	cShift := MustNew(10, 2, 3, 4, 5, 7)
	f2, s2, ok := cShift.CStarTypeAnchor()
	if !ok || f2 != 2 || s2 != 3 {
		t.Fatalf("shifted anchor = (%d,%d,%v), want (2,3,true)", f2, s2, ok)
	}
	// Mirrored: {0,9,8,7,5} on 10-ring: reading goes CCW.
	cMirror := MustNew(10, 0, 9, 8, 7, 5)
	f3, s3, ok := cMirror.CStarTypeAnchor()
	if !ok || f3 != 0 || s3 != 9 {
		t.Fatalf("mirrored anchor = (%d,%d,%v), want (0,9,true)", f3, s3, ok)
	}
	if _, _, ok := MustNew(10, 0, 1, 4).CStarTypeAnchor(); ok {
		t.Error("anchor reported for non-C*-type configuration")
	}
}

func TestCsRecognition(t *testing.T) {
	cs, err := FromIntervals(0, CsView())
	if err != nil {
		t.Fatal(err)
	}
	if !cs.IsCs() {
		t.Error("Cs not recognized")
	}
	if cs.N() != 8 || cs.K() != 4 {
		t.Errorf("Cs has n=%d k=%d", cs.N(), cs.K())
	}
	if !cs.IsRigid() {
		t.Error("Cs should be rigid")
	}
	post, err := FromIntervals(0, PostCsView())
	if err != nil {
		t.Fatal(err)
	}
	if !post.IsPostCs() {
		t.Error("post-Cs not recognized")
	}
	if post.IsRigid() {
		t.Error("post-Cs (0,0,2,2) should be symmetric, not rigid")
	}
	if !post.IsSymmetric() || post.IsPeriodic() {
		t.Error("post-Cs should be symmetric and aperiodic")
	}
	if cs.IsPostCs() || post.IsCs() {
		t.Error("Cs and post-Cs confused with each other")
	}
	// A non-(8,4) configuration with a similar view must not match.
	other := MustNew(9, 0, 2, 4, 7)
	if other.IsCs() || other.IsPostCs() {
		t.Error("Cs recognition ignores ring size")
	}
}

func TestCsIsOnlyRigidNonCStarFor84(t *testing.T) {
	// §3.2 (proof of Theorem 1): Cs is the only rigid configuration with
	// k=4 and n=8 other than C*. Verify by exhaustion.
	seen := make(map[string]bool)
	var rigidClasses []string
	for mask := 0; mask < 1<<8; mask++ {
		var nodes []int
		for u := 0; u < 8; u++ {
			if mask&(1<<u) != 0 {
				nodes = append(nodes, u)
			}
		}
		if len(nodes) != 4 {
			continue
		}
		c := MustNew(8, nodes...)
		if !c.IsRigid() {
			continue
		}
		key := c.Canonical()
		if !seen[key] {
			seen[key] = true
			rigidClasses = append(rigidClasses, key)
		}
	}
	if len(rigidClasses) != 2 {
		t.Fatalf("found %d rigid classes for (k,n)=(4,8): %v, want exactly {C*, Cs}", len(rigidClasses), rigidClasses)
	}
	want := map[string]bool{CsView().Key(): true, View{0, 0, 1, 3}.Key(): true}
	for _, key := range rigidClasses {
		if !want[key] {
			t.Fatalf("unexpected rigid class %s for (4,8)", key)
		}
	}
}
