package config

import (
	"sync"

	"ringrobots/internal/ring"
)

// probeScratch pools the integer scratch of SymmetricAfterMove (delta'd
// cycle, its reversal, and the Booth failure buffer), so steady-state
// probes allocate nothing.
var probePool = sync.Pool{New: func() any { return new([]int) }}

// SymmetricAfterMove reports whether the configuration reached by
// moving the robot at node from onto the adjacent empty node to would
// be symmetric (Property 1(ii)), without materializing that
// configuration. A single-robot move changes exactly two adjacent
// entries of the interval cycle — the interval ahead of the mover
// shrinks by one, the interval behind grows by one — and symmetry is a
// rotation-class property of that cycle, so the probe applies the
// two-entry delta to the memoized cycle in pooled scratch and re-runs
// the Booth CW-vs-CCW comparison there: O(k) integer work, no Config
// construction, no allocation after warmup. This is the hot probe of
// align.ComputePlan, which tests up to three candidate reductions per
// step for symmetry of their successors.
//
// ok reports whether the move is applicable (from occupied, to empty,
// nodes adjacent — the same conditions under which Config.Move
// succeeds); symmetric is meaningful only when ok is true.
func (c Config) SymmetricAfterMove(from, to int) (symmetric, ok bool) {
	from, to = c.r.Norm(from), c.r.Norm(to)
	if !c.r.Adjacent(from, to) || c.Occupied(to) {
		return false, false
	}
	i := c.nodeIndex(from)
	if i < 0 {
		return false, false
	}
	g := c.intervals()
	k := len(g)
	// Moving clockwise shrinks the interval ahead (g[i]) and grows the
	// one behind (g[i-1]); counterclockwise is the mirror image. With
	// k = 1 both indices coincide and the cycle is unchanged — correct,
	// since a lone robot's configuration is rotation-equivalent to any
	// of its moves.
	shrink, grow := i, (i-1+k)%k
	if to != c.r.Step(from, ring.CW) {
		shrink, grow = grow, shrink
	}

	bufp := probePool.Get().(*[]int)
	buf := *bufp
	if cap(buf) < 4*k {
		buf = make([]int, 4*k)
	}
	buf = buf[:4*k]
	gp := buf[:k]
	copy(gp, g)
	gp[shrink]--
	gp[grow]++
	rev := buf[k : 2*k]
	for t := 0; t < k; t++ {
		rev[t] = gp[k-1-t]
	}
	booth := buf[2*k : 4*k]
	sCW := leastRotation(gp, booth)
	sCCW := leastRotation(rev, booth)
	symmetric = true
	for j := 0; j < k; j++ {
		if gp[(sCW+j)%k] != rev[(sCCW+j)%k] {
			symmetric = false
			break
		}
	}
	*bufp = buf
	probePool.Put(bufp)
	return symmetric, true
}
