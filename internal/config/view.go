// Package config implements the configuration algebra of D'Angelo et al.
// (§2): exclusive configurations on anonymous rings, interval views,
// the lexicographic supermin view, and the symmetry/periodicity/rigidity
// classification used by every algorithm in the paper.
package config

import (
	"fmt"
	"strings"
)

// View is a sequence of interval lengths read around the ring in one
// direction starting from an occupied node (§2). For an exclusive
// configuration with k robots on n nodes a view has k entries summing to
// n−k. Views compare lexicographically.
type View []int

// Clone returns an independent copy of v.
func (v View) Clone() View {
	w := make(View, len(v))
	copy(w, v)
	return w
}

// Cmp compares two views lexicographically, returning -1, 0 or +1.
// A shorter view that is a prefix of a longer one compares smaller;
// in practice the algorithms only compare equal-length views.
func (v View) Cmp(w View) int {
	for i := 0; i < len(v) && i < len(w); i++ {
		switch {
		case v[i] < w[i]:
			return -1
		case v[i] > w[i]:
			return 1
		}
	}
	switch {
	case len(v) < len(w):
		return -1
	case len(v) > len(w):
		return 1
	}
	return 0
}

// Less reports whether v is lexicographically smaller than w.
func (v View) Less(w View) bool { return v.Cmp(w) < 0 }

// Equal reports whether v and w are identical sequences.
func (v View) Equal(w View) bool { return v.Cmp(w) == 0 }

// Rotated returns the view W_i of the paper: v read starting from entry i,
// i.e. (q_i, q_{i+1 mod k}, …, q_{i+k−1 mod k}).
func (v View) Rotated(i int) View {
	k := len(v)
	w := make(View, k)
	for j := 0; j < k; j++ {
		w[j] = v[(i+j)%k]
	}
	return w
}

// Reversed returns the view W̄ of the paper: the same anchor read in the
// opposite direction, (q_0, q_{k−1}, q_{k−2}, …, q_1).
func (v View) Reversed() View {
	k := len(v)
	w := make(View, k)
	if k == 0 {
		return w
	}
	w[0] = v[0]
	for j := 1; j < k; j++ {
		w[j] = v[k-j]
	}
	return w
}

// Sum returns the total number of empty nodes described by v.
func (v View) Sum() int {
	s := 0
	for _, q := range v {
		s += q
	}
	return s
}

// String renders the view in the paper's tuple notation, e.g. "(0,0,1,3)".
func (v View) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, q := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", q)
	}
	b.WriteByte(')')
	return b.String()
}

// Key returns a compact string usable as a map key.
func (v View) Key() string { return v.String() }
