package config

import (
	"math/rand"
	"testing"
)

// randPattern builds a random pattern over a small symbol alphabet:
// the shapes the constructors can produce (literals, stars, pluses,
// bounded repetitions, multi-symbol units).
func randPattern(rng *rand.Rand) Pattern {
	p := make(Pattern, 1+rng.Intn(4))
	for i := range p {
		seq := make([]int, 1+rng.Intn(3))
		for j := range seq {
			seq[j] = rng.Intn(3)
		}
		switch rng.Intn(4) {
		case 0:
			p[i] = Lit(seq...)
		case 1:
			p[i] = Star(seq...)
		case 2:
			p[i] = Plus(seq...)
		default:
			p[i] = Rep(rng.Intn(3), seq...)
		}
	}
	return p
}

// TestCompiledPatternMatchesOracle fuzzes the position-NFA matcher
// against the original backtracking matcher on random pattern/view
// pairs.
func TestCompiledPatternMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5000; trial++ {
		p := randPattern(rng)
		cp := p.Compile()
		for vi := 0; vi < 20; vi++ {
			v := make(View, rng.Intn(10))
			for j := range v {
				v[j] = rng.Intn(3)
			}
			want := matchFrom(p, v, 0)
			if got := cp.MatchView(v); got != want {
				t.Fatalf("pattern %v view %v: compiled %v, oracle %v", p, v, got, want)
			}
		}
	}
}

// TestCompiledPatternLemmaFamilies pins the compiled matcher on the
// paper's actual pattern families, across exhaustive small views.
func TestCompiledPatternLemmaFamilies(t *testing.T) {
	pats := []Pattern{Lemma4Pattern5(), Lemma5Pattern1()}
	for _, l1 := range []int{2, 3, 4} {
		p, err := Lemma4Pattern6(l1)
		if err != nil {
			t.Fatal(err)
		}
		pats = append(pats, p)
	}
	// Exhaustive views over {0,1,2} up to length 8.
	var views []View
	var gen func(v View)
	gen = func(v View) {
		views = append(views, append(View(nil), v...))
		if len(v) == 8 {
			return
		}
		for s := 0; s <= 2; s++ {
			gen(append(v, s))
		}
	}
	gen(View{})
	for _, p := range pats {
		cp := p.Compile()
		for _, v := range views {
			if got, want := cp.MatchView(v), matchFrom(p, v, 0); got != want {
				t.Fatalf("pattern %v view %v: compiled %v, oracle %v", p, v, got, want)
			}
		}
	}
}

// TestCompiledPatternWide exercises the multiword path (> 64 NFA nodes)
// with a Lemma 4(6)-shaped pattern large enough to spill words.
func TestCompiledPatternWide(t *testing.T) {
	p, err := Lemma4Pattern6(40) // expands to > 120 nodes
	if err != nil {
		t.Fatal(err)
	}
	cp := p.Compile()
	if cp.words < 2 {
		t.Fatalf("expected a multiword automaton, got %d words", cp.words)
	}
	// Build the canonical member: 0^40 1 (0^39 1)^2 0^38 1.
	var v View
	push := func(zeros int) {
		for i := 0; i < zeros; i++ {
			v = append(v, 0)
		}
		v = append(v, 1)
	}
	push(40)
	push(39)
	push(39)
	push(38)
	if !cp.MatchView(v) {
		t.Fatal("canonical Lemma 4(6) member rejected")
	}
	if got, want := cp.MatchView(v[:len(v)-1]), matchFrom(p, v[:len(v)-1], 0); got != want {
		t.Fatalf("truncated member: compiled %v, oracle %v", got, want)
	}
	v[3] = 1 // corrupt the first block
	if cp.MatchView(v) {
		t.Fatal("corrupted view accepted")
	}
}
