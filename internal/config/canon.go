package config

import (
	"encoding/binary"
	"errors"
	"math/bits"
	"strings"
	"sync/atomic"

	"ringrobots/internal/ring"
)

// This file holds the linear-time kernels of the configuration algebra:
// Booth's least-cyclic-rotation algorithm (supermin and its anchors in
// O(k) instead of the naive O(k²) scan over all 2k views), a KMP
// doubled-string periodicity check, and the compact comparable CanonKey
// replacing string map keys in the enumeration, transition and solver
// layers. Results are computed once per Config and memoized; the naive
// reference implementations are retained in oracle.go and cross-checked
// by differential tests.

// canonData is everything the algebra derives from the interval cycle.
// It is computed in one pass on first touch and shared by all copies of
// the owning Config (Config is immutable, so the data never invalidates).
type canonData struct {
	// g is the interval cycle (g[i] = empty nodes between occupied node i
	// and occupied node i+1, clockwise). Shared: callers must not modify.
	g View
	// supermin is the lexicographically minimal view over all 2k anchors.
	// Shared: callers must not modify.
	supermin View
	// anchors lists every (node, direction) reading realizing supermin,
	// ordered by node then CW before CCW. Shared: callers must not modify.
	anchors []Anchor
	// period is the smallest d in [1, k] such that rotating the interval
	// cycle by d leaves it unchanged; period == k iff aperiodic (d = k is
	// the trivial full rotation). It always divides k.
	period int
	// symmetric reports a geometric axis of symmetry (Property 1(ii)).
	symmetric bool
	// key is the canonical identity of the configuration class.
	key CanonKey
}

// canonCell carries the lazily-filled canonData pointer. It lives behind
// a pointer so that by-value copies of a Config share one cache slot.
// Concurrent fillers may race benignly: each computes identical data and
// the atomic store keeps readers safe.
type canonCell struct {
	p atomic.Pointer[canonData]
}

var emptyCanon = canonData{}

// canon returns the memoized derived data, computing it on first use.
func (c Config) canon() *canonData {
	if c.cc == nil {
		// Zero-value Config: compute without caching (defensive; real
		// Configs are built by New and always carry a cell).
		return computeCanon(c)
	}
	if d := c.cc.p.Load(); d != nil {
		return d
	}
	d := computeCanon(c)
	c.cc.p.Store(d)
	return d
}

// computeCanon derives the interval cycle, supermin view, anchors,
// periodicity, symmetry and canonical key in O(k) time and a constant
// number of allocations.
func computeCanon(c Config) *canonData {
	k := len(c.nodes)
	if k == 0 {
		return &emptyCanon
	}
	n := c.r.N()
	g := make(View, k)
	if k == 1 {
		g[0] = n - 1
	} else {
		for i := 0; i < k-1; i++ {
			g[i] = c.nodes[i+1] - c.nodes[i] - 1
		}
		g[k-1] = n - c.nodes[k-1] + c.nodes[0] - 1
	}

	// One scratch block for the Booth failure buffer (2k), the reversed
	// cycle (k) and the KMP failure function (k).
	scratch := make([]int, 4*k)
	boothBuf := scratch[:2*k]
	rev := scratch[2*k : 3*k]
	for t := 0; t < k; t++ {
		rev[t] = g[k-1-t]
	}

	sCW := leastRotation(g, boothBuf)
	sCCW := leastRotation(rev, boothBuf)

	// Compare the minimal CW reading with the minimal CCW reading.
	cmp := 0
	for j := 0; j < k; j++ {
		a, b := g[(sCW+j)%k], rev[(sCCW+j)%k]
		if a != b {
			if a < b {
				cmp = -1
			} else {
				cmp = 1
			}
			break
		}
	}

	sm := make(View, k)
	if cmp <= 0 {
		for j := range sm {
			sm[j] = g[(sCW+j)%k]
		}
	} else {
		for j := range sm {
			sm[j] = rev[(sCCW+j)%k]
		}
	}

	p := cyclicPeriod(g, scratch[3*k:])

	// Rotations equal to the minimal one start exactly at the minimal
	// start shifted by multiples of the cyclic period (which divides k),
	// for the cycle and its reversal alike.
	nAnchors := 0
	if cmp <= 0 {
		nAnchors += k / p
	}
	if cmp >= 0 {
		nAnchors += k / p
	}
	anchors := make([]Anchor, 0, nAnchors)
	if cmp <= 0 {
		for s := sCW % p; s < k; s += p {
			anchors = append(anchors, Anchor{Node: c.nodes[s], Dir: ring.CW})
		}
	}
	if cmp >= 0 {
		// The CCW reading from occupied-node index i is the rotation of
		// the reversed cycle starting at t = (k - i) mod k.
		for t := sCCW % p; t < k; t += p {
			anchors = append(anchors, Anchor{Node: c.nodes[(k-t)%k], Dir: ring.CCW})
		}
	}
	sortAnchors(anchors)

	return &canonData{
		g:         g,
		supermin:  sm,
		anchors:   anchors,
		period:    p,
		symmetric: cmp == 0,
		key:       KeyOf(sm),
	}
}

// sortAnchors orders anchors by node, CW before CCW — the discovery
// order of the naive double scan, preserved for compatibility.
func sortAnchors(a []Anchor) {
	// Insertion sort: anchor lists are tiny (usually 1 or 2 entries).
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && anchorLess(a[j], a[j-1]); j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func anchorLess(x, y Anchor) bool {
	if x.Node != y.Node {
		return x.Node < y.Node
	}
	return x.Dir == ring.CW && y.Dir == ring.CCW
}

// leastRotation returns the start index of the lexicographically least
// rotation of s using Booth's algorithm: O(len(s)) time, no allocation
// beyond the caller-provided failure buffer f (len ≥ 2·len(s)).
func leastRotation(s []int, f []int) int {
	n := len(s)
	if n <= 1 {
		return 0
	}
	f = f[:2*n]
	for i := range f {
		f[i] = -1
	}
	k := 0
	for j := 1; j < 2*n; j++ {
		sj := s[j%n]
		i := f[j-k-1]
		for i != -1 && sj != s[(k+i+1)%n] {
			if sj < s[(k+i+1)%n] {
				k = j - i - 1
			}
			i = f[i]
		}
		if i == -1 && sj != s[k%n] {
			if sj < s[k%n] {
				k = j
			}
			f[j-k] = -1
		} else {
			f[j-k] = i + 1
		}
	}
	return k % n
}

// cyclicPeriod returns the smallest d ≥ 1 with g equal to its rotation
// by d, or len(g) when only the trivial full rotation fixes g. It always
// divides len(g). Implemented as a KMP search for g inside its doubling,
// using the caller-provided failure buffer (len ≥ len(g)).
func cyclicPeriod(g View, fail []int) int {
	k := len(g)
	if k <= 1 {
		return k
	}
	fail = fail[:k]
	fail[0] = 0
	for i := 1; i < k; i++ {
		j := fail[i-1]
		for j > 0 && g[i] != g[j] {
			j = fail[j-1]
		}
		if g[i] == g[j] {
			j++
		}
		fail[i] = j
	}
	j := 0
	for i := 1; i < 2*k; i++ {
		ch := g[i%k]
		for j > 0 && ch != g[j] {
			j = fail[j-1]
		}
		if ch == g[j] {
			j++
		}
		if j == k {
			if d := i - k + 1; d < k {
				return d
			}
			return k
		}
	}
	return k
}

// CanonKey is a compact comparable identity of an interval sequence.
// Keys of supermin views identify configuration classes: two exclusive
// configurations are equivalent up to rotation and reflection iff their
// Config.CanonKey values are equal. Small sequences pack into a single
// machine word; larger ones fall back to a compact byte string. The zero
// CanonKey is the key of no valid view.
type CanonKey struct {
	word uint64
	str  string
}

// Packed word layout: [ k : 6 bits | bitsPer : 6 bits | payload : ≤52 bits ]
// with entry i occupying bits [i·bitsPer, (i+1)·bitsPer). The layout is
// injective: equal words imply equal (k, bitsPer) and therefore equal
// entry sequences.
const (
	keyKShift    = 58
	keyBitsShift = 52
	keyPayload   = 52
)

// KeyOf returns the canonical key of view v (any interval sequence; for
// configuration identity use Config.CanonKey, which keys the supermin).
func KeyOf(v View) CanonKey {
	k := len(v)
	maxq := 0
	for _, q := range v {
		if q > maxq {
			maxq = q
		}
	}
	b := bits.Len(uint(maxq))
	if b == 0 {
		b = 1
	}
	if k < 64 && k*b <= keyPayload {
		w := uint64(k)<<keyKShift | uint64(b)<<keyBitsShift
		for i, q := range v {
			w |= uint64(q) << (uint(i) * uint(b))
		}
		return CanonKey{word: w}
	}
	buf := make([]byte, 0, 2*k+2)
	buf = binary.AppendUvarint(buf, uint64(k))
	for _, q := range v {
		buf = binary.AppendUvarint(buf, uint64(q))
	}
	return CanonKey{str: string(buf)}
}

// IsZero reports whether the key is the zero value (no view).
func (ck CanonKey) IsZero() bool { return ck.word == 0 && ck.str == "" }

// Less orders keys totally (an arbitrary but deterministic order, used
// for reproducible tie-breaking in searches).
func (ck CanonKey) Less(o CanonKey) bool {
	if ck.word != o.word {
		return ck.word < o.word
	}
	return ck.str < o.str
}

// Hash mixes the key into a 64-bit value for sharding and open
// addressing (splitmix-style finalizer over the packed word, folding in
// the fallback string when present). Not a cryptographic hash; equal
// keys hash equal, distinct keys collide only by chance.
func (ck CanonKey) Hash() uint64 {
	h := ck.word
	if ck.str != "" {
		for i := 0; i < len(ck.str); i++ {
			h = (h ^ uint64(ck.str[i])) * 0x100000001b3
		}
	}
	h = (h ^ h>>30) * 0xbf58476d1ce4e5b9
	h = (h ^ h>>27) * 0x94d049bb133111eb
	return h ^ h>>31
}

// View decodes the key back into the interval sequence it encodes.
func (ck CanonKey) View() View {
	if ck.str != "" {
		r := strings.NewReader(ck.str)
		k64, err := binary.ReadUvarint(r)
		if err != nil {
			return nil
		}
		v := make(View, k64)
		for i := range v {
			q, err := binary.ReadUvarint(r)
			if err != nil {
				return nil
			}
			v[i] = int(q)
		}
		return v
	}
	if ck.word == 0 {
		return nil
	}
	k := int(ck.word >> keyKShift)
	b := uint(ck.word>>keyBitsShift) & 63
	mask := uint64(1)<<b - 1
	v := make(View, k)
	for i := 0; i < k; i++ {
		v[i] = int((ck.word >> (uint(i) * b)) & mask)
	}
	return v
}

// String renders the decoded view in tuple notation (for diagnostics).
func (ck CanonKey) String() string {
	if ck.IsZero() {
		return "(-)"
	}
	return ck.View().String()
}

// CanonKey returns the compact canonical identity of the configuration
// class (the key of the supermin view), memoized with the rest of the
// canonical data.
func (c Config) CanonKey() CanonKey {
	return c.canon().key
}

// AppendBinary appends a self-delimiting encoding of the key to b and
// returns the extended slice. The encoding round-trips exactly through
// DecodeCanonKey (word-packed and string-fallback keys alike), which is
// what the solver's checkpoint serialization relies on.
func (ck CanonKey) AppendBinary(b []byte) []byte {
	b = binary.AppendUvarint(b, ck.word)
	b = binary.AppendUvarint(b, uint64(len(ck.str)))
	return append(b, ck.str...)
}

// DecodeCanonKey decodes a key written by AppendBinary, returning the
// key and the number of bytes consumed.
func DecodeCanonKey(b []byte) (CanonKey, int, error) {
	word, n := binary.Uvarint(b)
	if n <= 0 {
		return CanonKey{}, 0, errBadKey
	}
	off := n
	slen, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return CanonKey{}, 0, errBadKey
	}
	off += n
	if slen > uint64(len(b)-off) {
		return CanonKey{}, 0, errBadKey
	}
	ck := CanonKey{word: word, str: string(b[off : off+int(slen)])}
	return ck, off + int(slen), nil
}

var errBadKey = errors.New("config: truncated CanonKey encoding")
