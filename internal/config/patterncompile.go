package config

import "math/bits"

// Compiled pattern matching: a Pattern is translated once into a
// position NFA (Glushkov-style — one node per expanded symbol
// occurrence, epsilons eliminated at compile time) and matched by
// bitset simulation. The naive backtracking matcher this replaces
// (matchFrom, kept as the differential oracle) is exponential on
// patterns with several unbounded items over self-overlapping units;
// the automaton is O(len(view) × nodes/64 words) with no backtracking
// and, on the ≤ 64-node fast path every paper pattern hits, allocation
// free after compilation.
//
// Construction: item {Seq, Min, Max} expands to Min mandatory copies of
// Seq, then — for unbounded Max — one optional self-looping copy
// (realizing ≥ Min repetitions), or Max − Min optional copies for
// finite Max. Fragments concatenate with the standard nullable-aware
// entry/exit bookkeeping.

// nfaFrag is a fragment under construction: which nodes can begin it,
// which can end it, and whether it matches the empty string.
type nfaFrag struct {
	entry, exit []uint64
	nullable    bool
}

// CompiledPattern is a Pattern compiled to a position NFA.
type CompiledPattern struct {
	words int // bitset words: (nodes + 63) / 64

	syms   []int      // syms[i]: the symbol node i consumes
	follow [][]uint64 // follow[i]: nodes that may consume next after i

	entry    []uint64 // nodes that may consume the first symbol
	exit     []uint64 // nodes that may consume the last symbol
	nullable bool     // whether the empty view matches
}

// Compile translates the pattern into its position NFA.
func (p Pattern) Compile() *CompiledPattern {
	cp := &CompiledPattern{}
	nodes := 0
	for _, it := range p {
		copies := it.Min
		if it.Max < 0 {
			copies++ // the self-looping optional copy
		} else if it.Max > it.Min {
			copies += it.Max - it.Min
		}
		nodes += copies * len(it.Seq)
	}
	cp.words = (nodes + 63) / 64
	if cp.words == 0 {
		cp.words = 1
	}
	cp.syms = make([]int, 0, nodes)
	cp.follow = make([][]uint64, 0, nodes)

	// base appends one linear copy of seq and returns its fragment.
	base := func(seq []int) nfaFrag {
		first := len(cp.syms)
		for _, q := range seq {
			cp.syms = append(cp.syms, q)
			cp.follow = append(cp.follow, make([]uint64, cp.words))
		}
		for i := first; i < len(cp.syms)-1; i++ {
			setBit(cp.follow[i], i+1)
		}
		f := nfaFrag{entry: make([]uint64, cp.words), exit: make([]uint64, cp.words)}
		setBit(f.entry, first)
		setBit(f.exit, len(cp.syms)-1)
		return f
	}
	// concat chains g after f: every exit of f may be followed by every
	// entry of g; nullability lets entries/exits bleed through.
	concat := func(f, g nfaFrag) nfaFrag {
		forEachBit(f.exit, func(i int) { orInto(cp.follow[i], g.entry) })
		out := nfaFrag{
			entry:    append([]uint64(nil), f.entry...),
			exit:     append([]uint64(nil), g.exit...),
			nullable: f.nullable && g.nullable,
		}
		if f.nullable {
			orInto(out.entry, g.entry)
		}
		if g.nullable {
			orInto(out.exit, f.exit)
		}
		return out
	}

	whole := nfaFrag{entry: make([]uint64, cp.words), exit: make([]uint64, cp.words), nullable: true}
	for _, it := range p {
		if len(it.Seq) == 0 {
			continue // an empty unit consumes nothing at any count
		}
		for c := 0; c < it.Min; c++ {
			whole = concat(whole, base(it.Seq))
		}
		if it.Max < 0 {
			g := base(it.Seq)
			forEachBit(g.exit, func(i int) { orInto(cp.follow[i], g.entry) })
			g.nullable = true
			whole = concat(whole, g)
		} else {
			for c := it.Min; c < it.Max; c++ {
				g := base(it.Seq)
				g.nullable = true
				whole = concat(whole, g)
			}
		}
	}
	cp.entry, cp.exit, cp.nullable = whole.entry, whole.exit, whole.nullable
	return cp
}

// MatchView reports whether view v matches the compiled pattern exactly
// (anchored at both ends). Patterns expanding to at most 64 nodes — all
// of the paper's — run on a two-register scalar path.
func (cp *CompiledPattern) MatchView(v View) bool {
	if len(v) == 0 {
		return cp.nullable
	}
	if cp.words == 1 {
		return cp.matchSmall(v)
	}
	return cp.matchWide(v)
}

// matchSmall is the single-word fast path.
func (cp *CompiledPattern) matchSmall(v View) bool {
	cur := cp.entry[0]
	var last uint64
	for _, x := range v {
		var m, next uint64
		rest := cur
		for rest != 0 {
			i := trailingZeros(rest)
			rest &= rest - 1
			if cp.syms[i] == x {
				m |= 1 << uint(i)
				next |= cp.follow[i][0]
			}
		}
		if m == 0 {
			return false
		}
		cur, last = next, m
	}
	return last&cp.exit[0] != 0
}

// matchWide is the multiword general path: it tracks the set of nodes
// that consumed each symbol; acceptance is whether a final-symbol
// consumer is an exit node.
func (cp *CompiledPattern) matchWide(v View) bool {
	cur := append([]uint64(nil), cp.entry...)
	next := make([]uint64, cp.words)
	last := make([]uint64, cp.words)
	for _, x := range v {
		for w := range next {
			next[w] = 0
			last[w] = 0
		}
		any := false
		forEachBit(cur, func(i int) {
			if cp.syms[i] == x {
				any = true
				setBit(last, i)
				orInto(next, cp.follow[i])
			}
		})
		if !any {
			return false
		}
		cur, next = next, cur
	}
	for w := range last {
		if last[w]&cp.exit[w] != 0 {
			return true
		}
	}
	return false
}

// Matches reports whether any view of configuration c matches — the
// compiled form of Config.Matches for reuse across configurations.
func (cp *CompiledPattern) Matches(c Config) bool {
	for _, v := range c.Views() {
		if cp.MatchView(v) {
			return true
		}
	}
	return false
}

func setBit(b []uint64, i int) { b[i>>6] |= 1 << uint(i&63) }

func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }
func orInto(dst, src []uint64) {
	for w := range dst {
		dst[w] |= src[w]
	}
}

func forEachBit(b []uint64, fn func(i int)) {
	for w, word := range b {
		for word != 0 {
			i := trailingZeros(word)
			word &= word - 1
			fn(w<<6 | i)
		}
	}
}
