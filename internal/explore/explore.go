// Package explore implements the exclusive perpetual exploration task
// (§4.1): every robot must visit every node of the ring infinitely often.
// It provides a per-robot visit tracker and coverage verdicts; the
// algorithms that achieve perpetual exploration are Ring Clearing and
// NminusThree (package search), per Theorems 6 and 7.
package explore

import (
	"fmt"

	"ringrobots/internal/corda"
)

// Tracker counts, for every robot identity and node, how many times the
// robot has visited the node (starting positions count as one visit).
// It implements corda.MoveObserver.
type Tracker struct {
	n      int
	k      int
	visits [][]int // visits[robot][node]
	moves  int
}

// NewTracker initializes tracking for the world's robots, crediting their
// starting positions.
func NewTracker(w *corda.World) *Tracker {
	t := &Tracker{n: w.N(), k: w.K()}
	t.visits = make([][]int, t.k)
	for id := 0; id < t.k; id++ {
		t.visits[id] = make([]int, t.n)
		t.visits[id][w.Position(id)]++
	}
	return t
}

// ObserveMove implements corda.MoveObserver.
func (t *Tracker) ObserveMove(ev corda.MoveEvent, w *corda.World) {
	t.visits[ev.Robot][ev.To]++
	t.moves++
}

// Visits returns how many times robot id has visited node u.
func (t *Tracker) Visits(id, u int) int { return t.visits[id][u] }

// Moves returns the number of observed moves.
func (t *Tracker) Moves() int { return t.moves }

// MinVisits returns the minimum visit count over all (robot, node) pairs —
// the exploration task's progress measure: it must grow without bound.
func (t *Tracker) MinVisits() int {
	m := t.visits[0][0]
	for _, row := range t.visits {
		for _, v := range row {
			if v < m {
				m = v
			}
		}
	}
	return m
}

// FullyExplored reports whether every robot has visited every node at
// least `times` times.
func (t *Tracker) FullyExplored(times int) bool {
	for _, row := range t.visits {
		for _, v := range row {
			if v < times {
				return false
			}
		}
	}
	return true
}

// CoverageByRobot returns, per robot, how many distinct nodes it has
// visited so far.
func (t *Tracker) CoverageByRobot() []int {
	out := make([]int, t.k)
	for id, row := range t.visits {
		for _, v := range row {
			if v > 0 {
				out[id]++
			}
		}
	}
	return out
}

func (t *Tracker) String() string {
	return fmt.Sprintf("explore{robots=%d, nodes=%d, min-visits=%d, moves=%d}", t.k, t.n, t.MinVisits(), t.moves)
}
