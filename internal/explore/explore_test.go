package explore

import (
	"testing"

	"ringrobots/internal/config"
	"ringrobots/internal/corda"
	"ringrobots/internal/ring"
)

func TestTrackerInitialCredit(t *testing.T) {
	w := corda.FromConfig(config.MustNew(6, 0, 3), true)
	tr := NewTracker(w)
	if tr.Visits(0, 0) != 1 || tr.Visits(1, 3) != 1 {
		t.Error("starting positions not credited")
	}
	if tr.Visits(0, 3) != 0 || tr.Visits(1, 0) != 0 {
		t.Error("phantom visits")
	}
	if tr.MinVisits() != 0 {
		t.Errorf("MinVisits = %d, want 0", tr.MinVisits())
	}
	cov := tr.CoverageByRobot()
	if cov[0] != 1 || cov[1] != 1 {
		t.Errorf("coverage = %v", cov)
	}
}

func TestTrackerObservesMoves(t *testing.T) {
	w := corda.FromConfig(config.MustNew(6, 0, 3), true)
	tr := NewTracker(w)
	ev, err := w.MoveRobot(0, ring.CW)
	if err != nil {
		t.Fatal(err)
	}
	tr.ObserveMove(ev, w)
	if tr.Visits(0, 1) != 1 {
		t.Error("move not credited")
	}
	if tr.Moves() != 1 {
		t.Errorf("Moves = %d", tr.Moves())
	}
}

func TestFullyExplored(t *testing.T) {
	// Non-exclusive world so the walking robots can pass through each
	// other's nodes.
	w := corda.FromConfig(config.MustNew(4, 0, 2), false)
	tr := NewTracker(w)
	if tr.FullyExplored(1) {
		t.Error("fresh tracker fully explored")
	}
	// Walk robot 0 around the ring twice; robot 1 once.
	for lap := 0; lap < 2; lap++ {
		for i := 0; i < 4; i++ {
			ev, err := w.MoveRobot(0, ring.CW)
			if err != nil {
				t.Fatal(err)
			}
			tr.ObserveMove(ev, w)
		}
	}
	if tr.FullyExplored(1) {
		t.Error("fully explored although robot 1 never moved")
	}
	for i := 0; i < 4; i++ {
		ev, err := w.MoveRobot(1, ring.CCW)
		if err != nil {
			t.Fatal(err)
		}
		tr.ObserveMove(ev, w)
	}
	if !tr.FullyExplored(1) {
		t.Error("not fully explored after both robots lapped the ring")
	}
	if tr.FullyExplored(3) {
		t.Error("FullyExplored(3) should fail after ~2 laps")
	}
	if tr.MinVisits() < 1 {
		t.Errorf("MinVisits = %d", tr.MinVisits())
	}
	if tr.String() == "" {
		t.Error("empty String()")
	}
}

func TestExclusivityPreventsCollisionDuringWalk(t *testing.T) {
	// Sanity: the exploration substrate leaves exclusivity enforcement to
	// the world; walking into an occupied node errors.
	w := corda.FromConfig(config.MustNew(4, 0, 1), true)
	if _, err := w.MoveRobot(0, ring.CW); err == nil {
		t.Error("collision not detected")
	}
}
