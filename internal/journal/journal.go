// Package journal implements the append-only record log that backs
// checkpointable solver drains: length-prefixed, CRC-checksummed
// records, torn-tail truncation on open, an fsync policy flag, and
// atomic snapshot compaction via temp-file + rename.
//
// On-disk format: a log is a concatenation of records, each
//
//	[4-byte LE payload length][4-byte LE CRC32 (IEEE) of payload][payload]
//
// with no file header. Recovery is prefix-based: Open scans from the
// start and truncates the file at the first record that is incomplete
// (torn tail), declares an implausible length, or fails its checksum.
// Everything before that point is intact by construction, so a crash
// mid-append loses at most the record being written.
//
// Failure semantics (see scavenge.go for repair):
//
//   - A failed or short Append write is rolled back — the file is
//     truncated to the pre-append size — so one failed append never
//     poisons later successful appends under prefix recovery. The log
//     stays usable; only a failed rollback makes it sticky-failed.
//   - A failed Sync makes the log sticky-failed: after fsync reports
//     an error the page-cache state is unknown and retrying fsync on
//     the same fd can report success without making the data durable,
//     so every later operation returns ErrFailed and the caller must
//     reopen (which re-validates against what actually hit disk).
//   - Open distinguishes a torn tail (no valid records past the
//     damage: truncated silently, as before) from mid-file corruption
//     (valid records recoverable past the damage: Open refuses with a
//     CorruptError instead of silently discarding them — run Repair /
//     `drain -fsck -repair` to scavenge and quarantine).
//
// All file I/O goes through a faultfs.FS seam (OpenFS), so every one
// of these paths is exercised by deterministic fault injection; the
// advisory flock sidecar intentionally stays on the real OS.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"syscall"

	"ringrobots/internal/faultfs"
)

// ErrLocked is the sentinel wrapped by LockedError: another process
// holds the journal's advisory writer lock. Match it with errors.Is.
var ErrLocked = errors.New("journal: locked by another process")

// ErrFailed is the sticky failure sentinel: a Sync error (or a failed
// append rollback) has left the log in an unknown durable state, and
// every subsequent Append/Sync/Compact returns an error matching this
// until the log is reopened. Match it with errors.Is.
var ErrFailed = errors.New("journal: log failed, reopen required")

// ErrCorrupt is the sentinel wrapped by CorruptError: the journal has
// valid records AFTER a damaged region, so prefix recovery would
// silently discard live data. Match it with errors.Is.
var ErrCorrupt = errors.New("journal: mid-file corruption")

// CorruptError reports mid-file corruption found by Open: the valid
// prefix ends at ValidBytes, but Recoverable more records are intact
// beyond the damage. Open refuses to truncate them away; run Repair
// (or `drain -fsck -repair`) to scavenge them and quarantine the
// damaged span.
type CorruptError struct {
	Path        string
	ValidBytes  int64 // length of the clean prefix
	Recoverable int   // valid records found beyond the damage
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("journal: %s: mid-file corruption after byte %d with %d recoverable record(s) beyond it; run repair (drain -fsck -repair) instead of truncating",
		e.Path, e.ValidBytes, e.Recoverable)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// LockedError reports a failed lock acquisition, with the pid the
// current holder recorded in the sidecar (0 when unreadable).
type LockedError struct {
	Path      string
	HolderPID int
}

func (e *LockedError) Error() string {
	if e.HolderPID != 0 {
		return fmt.Sprintf("journal: %s is locked by pid %d", e.Path, e.HolderPID)
	}
	return fmt.Sprintf("journal: %s is locked by another process", e.Path)
}

func (e *LockedError) Unwrap() error { return ErrLocked }

// lockPath is the sidecar file carrying the journal's advisory flock.
// It sits next to the journal so Compact's rename of the journal file
// itself never disturbs the lock.
func lockPath(path string) string { return path + ".lock" }

const (
	headerSize = 8
	// MaxRecordLen bounds a record's declared payload length. A torn or
	// bit-flipped header can declare any 32-bit length; without a cap, a
	// giant declared length could only be rejected after comparing
	// against the file size, and a reader streaming the log would try to
	// allocate it. Checkpoints are far below this.
	MaxRecordLen = 1 << 30
)

// SyncPolicy selects how eagerly appends reach stable storage.
type SyncPolicy int

const (
	// SyncNone leaves flushing to the OS (fast; a crash may lose the
	// most recent appends, which recovery truncates away).
	SyncNone SyncPolicy = iota
	// SyncAlways fsyncs after every append: once Append returns, the
	// record survives a crash.
	SyncAlways
)

// Log is an open journal file positioned for appending.
type Log struct {
	path   string
	fsys   faultfs.FS
	f      faultfs.File
	lock   *os.File // sidecar holding the advisory flock, nil on non-unix
	policy SyncPolicy
	n      int
	size   int64
	last   []byte // copy of the latest record's payload, nil when empty
	failed error  // sticky failure; non-nil wraps ErrFailed
}

// AppendRecord appends the encoded form of one record (header +
// payload) to dst. It is the single definition of the record encoding,
// shared by Append, Compact and the decoder tests.
func AppendRecord(dst, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// recordAt decodes the record starting at off in buf. It returns the
// payload (aliasing buf), the record's total encoded size, and whether
// a fully-valid record starts there. It is the single decoder shared
// by Scan and ScavengeBytes.
func recordAt(buf []byte, off int) (payload []byte, size int, ok bool) {
	if len(buf)-off < headerSize {
		return nil, 0, false
	}
	length := binary.LittleEndian.Uint32(buf[off:])
	if length > MaxRecordLen || int(length) > len(buf)-off-headerSize {
		return nil, 0, false
	}
	sum := binary.LittleEndian.Uint32(buf[off+4:])
	payload = buf[off+headerSize : off+headerSize+int(length)]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, false
	}
	return payload, headerSize + int(length), true
}

// Scan parses buf as a record log: it returns the payloads of the
// leading fully-valid records and the byte length of that valid prefix.
// The returned slices alias buf. Scan never fails — a corrupt or torn
// suffix simply ends the valid prefix — and recovery is idempotent:
// Scan(buf[:valid]) returns the same records and the same length.
func Scan(buf []byte) (recs [][]byte, valid int) {
	off := 0
	for {
		payload, size, ok := recordAt(buf, off)
		if !ok {
			return recs, off
		}
		recs = append(recs, payload)
		off += size
	}
}

// Open opens the journal at path over the real filesystem; see OpenFS.
func Open(path string, policy SyncPolicy) (*Log, error) {
	return OpenFS(faultfs.OS{}, path, policy)
}

// OpenFS opens (creating if absent) the journal at path through fsys,
// recovers its valid prefix, truncates any torn tail, and positions
// the log for appending. When valid records survive BEYOND a damaged
// region — mid-file corruption, where truncation would silently
// discard live data — OpenFS refuses with a CorruptError (matching
// ErrCorrupt) instead; run Repair to scavenge. OpenFS takes the
// journal's advisory writer lock (an flock on the path+".lock"
// sidecar, always on the real OS); when another live process holds
// it, OpenFS fails with a LockedError matching ErrLocked, naming the
// holder's pid. The lock dies with the process, so a crashed writer
// never needs manual cleanup. Lock-free readers (Scan over
// os.ReadFile) are unaffected.
func OpenFS(fsys faultfs.FS, path string, policy SyncPolicy) (*Log, error) {
	lock, err := acquireLock(path)
	if err != nil {
		return nil, err
	}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		releaseLock(lock)
		return nil, err
	}
	fail := func(err error) (*Log, error) {
		f.Close()
		releaseLock(lock)
		return nil, err
	}
	buf, err := io.ReadAll(f)
	if err != nil {
		return fail(fmt.Errorf("journal: reading %s: %w", path, err))
	}
	recs, valid := Scan(buf)
	if valid < len(buf) {
		// Damage. Torn tail (nothing valid beyond it) is the normal
		// crash signature and is truncated away; recoverable records
		// beyond the damage mean truncation would lose live data.
		if sc := ScavengeBytes(buf); len(sc.Records) > len(recs) {
			return fail(&CorruptError{
				Path:        path,
				ValidBytes:  int64(valid),
				Recoverable: len(sc.Records) - len(recs),
			})
		}
		if err := f.Truncate(int64(valid)); err != nil {
			return fail(fmt.Errorf("journal: truncating torn tail of %s: %w", path, err))
		}
		if policy == SyncAlways {
			if err := f.Sync(); err != nil {
				return fail(err)
			}
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		return fail(err)
	}
	l := &Log{path: path, fsys: fsys, f: f, lock: lock, policy: policy, n: len(recs), size: int64(valid)}
	if len(recs) > 0 {
		l.last = append([]byte(nil), recs[len(recs)-1]...)
	}
	return l, nil
}

// Path returns the journal's file path.
func (l *Log) Path() string { return l.path }

// Len returns the number of valid records in the log.
func (l *Log) Len() int { return l.n }

// Size returns the byte length of the log's valid prefix.
func (l *Log) Size() int64 { return l.size }

// Failed returns the sticky failure error (nil while the log is
// healthy). Once non-nil, every mutation returns it until reopen.
func (l *Log) Failed() error { return l.failed }

// fail marks the log sticky-failed with cause and returns the wrapped
// error callers see.
func (l *Log) fail(cause error) error {
	l.failed = fmt.Errorf("%w: %s: %w", ErrFailed, l.path, cause)
	return l.failed
}

// Last returns a copy-safe view of the most recent record's payload
// (nil, false when the log is empty). The returned slice must not be
// modified.
func (l *Log) Last() ([]byte, bool) {
	if l.last == nil {
		return nil, false
	}
	return l.last, true
}

// Append writes one record. Under SyncAlways the record is on stable
// storage when Append returns; under SyncNone a crash may lose it (and
// recovery will truncate any torn half-write).
//
// On a write error Append rolls the file back to the pre-append size,
// so a failed append leaves no torn bytes to poison later appends: the
// log remains usable and the error is transient (retryable). Only when
// the rollback itself fails, or when Sync fails, does the log become
// sticky-failed (ErrFailed).
func (l *Log) Append(payload []byte) error {
	if l.failed != nil {
		return l.failed
	}
	rec := AppendRecord(make([]byte, 0, headerSize+len(payload)), payload)
	n, err := l.f.Write(rec)
	if err == nil && n < len(rec) {
		err = io.ErrShortWrite
	}
	if err != nil {
		if n > 0 {
			// Remove the torn bytes and reposition the write offset to
			// the rollback point (truncate alone does not move the
			// offset; a later write past EOF would leave a NUL hole).
			if terr := l.f.Truncate(l.size); terr != nil {
				return l.fail(fmt.Errorf("append failed (%v) and rollback truncate failed: %w", err, terr))
			}
			if _, serr := l.f.Seek(l.size, io.SeekStart); serr != nil {
				return l.fail(fmt.Errorf("append failed (%v) and rollback seek failed: %w", err, serr))
			}
		}
		return fmt.Errorf("journal: appending to %s (rolled back): %w", l.path, err)
	}
	if l.policy == SyncAlways {
		if err := l.f.Sync(); err != nil {
			// fsyncgate: after a failed fsync the kernel may have
			// dropped the dirty pages and a retry can "succeed" without
			// persisting anything. Never retry on this fd.
			return l.fail(fmt.Errorf("fsync after append: %w", err))
		}
	}
	l.n++
	l.size += int64(len(rec))
	l.last = append(l.last[:0], payload...)
	return nil
}

// Sync flushes pending appends to stable storage regardless of policy.
// A Sync failure is sticky (see Append): the log refuses further use
// until reopened.
func (l *Log) Sync() error {
	if l.failed != nil {
		return l.failed
	}
	if err := l.f.Sync(); err != nil {
		return l.fail(fmt.Errorf("fsync: %w", err))
	}
	return nil
}

// ForEach replays every valid record from the start of the log in
// order. The payload slice passed to fn is only valid for the call.
func (l *Log) ForEach(fn func(payload []byte) error) error {
	buf, err := l.fsys.ReadFile(l.path)
	if err != nil {
		return err
	}
	if int64(len(buf)) > l.size {
		buf = buf[:l.size]
	}
	recs, _ := Scan(buf)
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// syncDir fsyncs the directory holding path so a just-completed rename
// is durable. Platforms and filesystems that do not support fsync on
// directories report EINVAL/ENOTSUP/ENOTTY, which is not a failure —
// there is nothing stronger available there. Real I/O errors are
// returned.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) || errors.Is(err, syscall.ENOTTY) {
			return nil
		}
		return err
	}
	return nil
}

// Compact atomically replaces the log's contents with the given
// records (typically just the latest snapshot): the new log is written
// to a temp file in the same directory, fsynced, and renamed over the
// old one, so a crash at any point leaves either the old log or the
// new one — never a mix. A directory-fsync failure after the rename is
// surfaced (the rename may not be durable) and sticky-fails the log,
// but the in-memory handle is swapped to the renamed file first so no
// appends could land on the unlinked inode.
func (l *Log) Compact(keep [][]byte) error {
	if l.failed != nil {
		return l.failed
	}
	dir := filepath.Dir(l.path)
	tmp, err := l.fsys.CreateTemp(dir, filepath.Base(l.path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		l.fsys.Remove(tmpName)
		return err
	}
	var buf []byte
	for _, rec := range keep {
		buf = AppendRecord(buf[:0], rec)
		if _, err := tmp.Write(buf); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := l.fsys.Rename(tmpName, l.path); err != nil {
		l.fsys.Remove(tmpName)
		return err
	}
	dirErr := syncDir(l.path)
	// Swap the handle to the new file and reposition for appending.
	// This happens even when the directory fsync failed: the old fd
	// points at an unlinked inode, and appends there would be silently
	// lost — the sticky failure below stops them either way, but the
	// handle must match the visible file for the reopen path.
	f, err := l.fsys.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return err
	}
	l.f.Close()
	l.f = f
	l.n = len(keep)
	l.size = size
	if len(keep) > 0 {
		l.last = append(l.last[:0], keep[len(keep)-1]...)
	} else {
		l.last = nil
	}
	if dirErr != nil {
		return l.fail(fmt.Errorf("fsync of %s after compaction rename: %w", dir, dirErr))
	}
	return nil
}

// Close releases the file handle and the advisory writer lock. The
// log must not be used afterwards.
func (l *Log) Close() error {
	err := l.f.Close()
	if lerr := releaseLock(l.lock); err == nil {
		err = lerr
	}
	l.lock = nil
	return err
}
