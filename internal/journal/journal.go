// Package journal implements the append-only record log that backs
// checkpointable solver drains: length-prefixed, CRC-checksummed
// records, torn-tail truncation on open, an fsync policy flag, and
// atomic snapshot compaction via temp-file + rename.
//
// On-disk format: a log is a concatenation of records, each
//
//	[4-byte LE payload length][4-byte LE CRC32 (IEEE) of payload][payload]
//
// with no file header. Recovery is prefix-based: Open scans from the
// start and truncates the file at the first record that is incomplete
// (torn tail), declares an implausible length, or fails its checksum.
// Everything before that point is intact by construction, so a crash
// mid-append loses at most the record being written.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// ErrLocked is the sentinel wrapped by LockedError: another process
// holds the journal's advisory writer lock. Match it with errors.Is.
var ErrLocked = errors.New("journal: locked by another process")

// LockedError reports a failed lock acquisition, with the pid the
// current holder recorded in the sidecar (0 when unreadable).
type LockedError struct {
	Path      string
	HolderPID int
}

func (e *LockedError) Error() string {
	if e.HolderPID != 0 {
		return fmt.Sprintf("journal: %s is locked by pid %d", e.Path, e.HolderPID)
	}
	return fmt.Sprintf("journal: %s is locked by another process", e.Path)
}

func (e *LockedError) Unwrap() error { return ErrLocked }

// lockPath is the sidecar file carrying the journal's advisory flock.
// It sits next to the journal so Compact's rename of the journal file
// itself never disturbs the lock.
func lockPath(path string) string { return path + ".lock" }

const (
	headerSize = 8
	// MaxRecordLen bounds a record's declared payload length. A torn or
	// bit-flipped header can declare any 32-bit length; without a cap, a
	// giant declared length could only be rejected after comparing
	// against the file size, and a reader streaming the log would try to
	// allocate it. Checkpoints are far below this.
	MaxRecordLen = 1 << 30
)

// SyncPolicy selects how eagerly appends reach stable storage.
type SyncPolicy int

const (
	// SyncNone leaves flushing to the OS (fast; a crash may lose the
	// most recent appends, which recovery truncates away).
	SyncNone SyncPolicy = iota
	// SyncAlways fsyncs after every append: once Append returns, the
	// record survives a crash.
	SyncAlways
)

// Log is an open journal file positioned for appending.
type Log struct {
	path   string
	f      *os.File
	lock   *os.File // sidecar holding the advisory flock, nil on non-unix
	policy SyncPolicy
	n      int
	size   int64
	last   []byte // copy of the latest record's payload, nil when empty
}

// AppendRecord appends the encoded form of one record (header +
// payload) to dst. It is the single definition of the record encoding,
// shared by Append, Compact and the decoder tests.
func AppendRecord(dst, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Scan parses buf as a record log: it returns the payloads of the
// leading fully-valid records and the byte length of that valid prefix.
// The returned slices alias buf. Scan never fails — a corrupt or torn
// suffix simply ends the valid prefix — and recovery is idempotent:
// Scan(buf[:valid]) returns the same records and the same length.
func Scan(buf []byte) (recs [][]byte, valid int) {
	off := 0
	for {
		if len(buf)-off < headerSize {
			return recs, off
		}
		length := binary.LittleEndian.Uint32(buf[off:])
		if length > MaxRecordLen || int(length) > len(buf)-off-headerSize {
			return recs, off
		}
		sum := binary.LittleEndian.Uint32(buf[off+4:])
		payload := buf[off+headerSize : off+headerSize+int(length)]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off
		}
		recs = append(recs, payload)
		off += headerSize + int(length)
	}
}

// Open opens (creating if absent) the journal at path, recovers its
// valid prefix, truncates any torn or corrupt tail, and positions the
// log for appending. Open takes the journal's advisory writer lock
// (an flock on the path+".lock" sidecar); when another live process
// holds it, Open fails with a LockedError matching ErrLocked, naming
// the holder's pid. The lock dies with the process, so a crashed
// writer never needs manual cleanup. Lock-free readers (Scan over
// os.ReadFile) are unaffected.
func Open(path string, policy SyncPolicy) (*Log, error) {
	lock, err := acquireLock(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		releaseLock(lock)
		return nil, err
	}
	fail := func(err error) (*Log, error) {
		f.Close()
		releaseLock(lock)
		return nil, err
	}
	buf, err := io.ReadAll(f)
	if err != nil {
		return fail(fmt.Errorf("journal: reading %s: %w", path, err))
	}
	recs, valid := Scan(buf)
	if valid < len(buf) {
		if err := f.Truncate(int64(valid)); err != nil {
			return fail(fmt.Errorf("journal: truncating torn tail of %s: %w", path, err))
		}
		if policy == SyncAlways {
			if err := f.Sync(); err != nil {
				return fail(err)
			}
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		return fail(err)
	}
	l := &Log{path: path, f: f, lock: lock, policy: policy, n: len(recs), size: int64(valid)}
	if len(recs) > 0 {
		l.last = append([]byte(nil), recs[len(recs)-1]...)
	}
	return l, nil
}

// Path returns the journal's file path.
func (l *Log) Path() string { return l.path }

// Len returns the number of valid records in the log.
func (l *Log) Len() int { return l.n }

// Size returns the byte length of the log's valid prefix.
func (l *Log) Size() int64 { return l.size }

// Last returns a copy-safe view of the most recent record's payload
// (nil, false when the log is empty). The returned slice must not be
// modified.
func (l *Log) Last() ([]byte, bool) {
	if l.last == nil {
		return nil, false
	}
	return l.last, true
}

// Append writes one record. Under SyncAlways the record is on stable
// storage when Append returns; under SyncNone a crash may lose it (and
// recovery will truncate any torn half-write).
func (l *Log) Append(payload []byte) error {
	rec := AppendRecord(make([]byte, 0, headerSize+len(payload)), payload)
	if _, err := l.f.Write(rec); err != nil {
		return fmt.Errorf("journal: appending to %s: %w", l.path, err)
	}
	if l.policy == SyncAlways {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	l.n++
	l.size += int64(len(rec))
	l.last = append(l.last[:0], payload...)
	return nil
}

// Sync flushes pending appends to stable storage regardless of policy.
func (l *Log) Sync() error { return l.f.Sync() }

// ForEach replays every valid record from the start of the log in
// order. The payload slice passed to fn is only valid for the call.
func (l *Log) ForEach(fn func(payload []byte) error) error {
	buf, err := os.ReadFile(l.path)
	if err != nil {
		return err
	}
	if int64(len(buf)) > l.size {
		buf = buf[:l.size]
	}
	recs, _ := Scan(buf)
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Compact atomically replaces the log's contents with the given
// records (typically just the latest snapshot): the new log is written
// to a temp file in the same directory, fsynced, and renamed over the
// old one, so a crash at any point leaves either the old log or the
// new one — never a mix.
func (l *Log) Compact(keep [][]byte) error {
	dir := filepath.Dir(l.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(l.path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	var buf []byte
	for _, rec := range keep {
		buf = AppendRecord(buf[:0], rec)
		if _, err := tmp.Write(buf); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpName, l.path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Make the rename durable (best-effort: not all platforms support
	// fsync on directories).
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	// Swap the handle to the new file and reposition for appending.
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return err
	}
	l.f.Close()
	l.f = f
	l.n = len(keep)
	l.size = size
	if len(keep) > 0 {
		l.last = append(l.last[:0], keep[len(keep)-1]...)
	} else {
		l.last = nil
	}
	return nil
}

// Close releases the file handle and the advisory writer lock. The
// log must not be used afterwards.
func (l *Log) Close() error {
	err := l.f.Close()
	if lerr := releaseLock(l.lock); err == nil {
		err = lerr
	}
	l.lock = nil
	return err
}
