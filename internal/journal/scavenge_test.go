package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ringrobots/internal/faultfs"
)

// TestScavengeCleanMatchesScan is the acceptance criterion spelled
// out: on an uncorrupted journal, scavenge recovery is byte-identical
// to prefix recovery.
func TestScavengeCleanMatchesScan(t *testing.T) {
	var buf []byte
	payloads := [][]byte{[]byte("a"), {}, []byte("ccc"), bytes.Repeat([]byte{7}, 300), {}}
	for _, p := range payloads {
		buf = AppendRecord(buf, p)
	}
	sc := ScavengeBytes(buf)
	recs, valid := Scan(buf)
	if !sc.Clean() {
		t.Fatalf("clean journal reported spans: %+v", sc.Spans)
	}
	if valid != len(buf) || len(sc.Records) != len(recs) {
		t.Fatalf("scavenge %d records vs scan %d / %d bytes", len(sc.Records), len(recs), valid)
	}
	var reenc []byte
	for _, r := range sc.Records {
		reenc = AppendRecord(reenc, r)
	}
	if !bytes.Equal(reenc, buf) {
		t.Fatal("scavenged records do not re-encode byte-identically")
	}
}

func TestScavengeRecoversPastDamage(t *testing.T) {
	var buf []byte
	for _, p := range []string{"zero", "one-damaged", "two", "three"} {
		buf = AppendRecord(buf, []byte(p))
	}
	// Flip a payload byte in record 1.
	off1 := headerSize + len("zero")
	buf[off1+headerSize+3] ^= 0x80
	sc := ScavengeBytes(buf)
	var got []string
	for _, r := range sc.Records {
		got = append(got, string(r))
	}
	want := []string{"zero", "two", "three"}
	if len(got) != len(want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered %v, want %v", got, want)
		}
	}
	if len(sc.Spans) != 1 {
		t.Fatalf("spans = %+v, want exactly one", sc.Spans)
	}
	sp := sc.Spans[0]
	if sp.Off != off1 || sp.End != off1+headerSize+len("one-damaged") {
		t.Fatalf("span = %+v, want exactly the damaged record", sp)
	}
}

// TestScavengeZeroRunDoesNotAnchor: a zeroed region decodes as valid
// empty records (length 0, CRC32("") = 0). Those phantom records must
// not serve as resync anchors — otherwise any zeroed damage would
// "recover" as a train of empties and the span report would lie.
func TestScavengeZeroRunDoesNotAnchor(t *testing.T) {
	buf := AppendRecord(nil, []byte("head"))
	damage := len(buf)
	// 3 bytes of junk (breaks parsing), then 16 zero bytes (two phantom
	// empty records), then a real record.
	buf = append(buf, 0xde, 0xad, 0xbe)
	buf = append(buf, make([]byte, 16)...)
	tail := AppendRecord(nil, []byte("tail"))
	anchor := len(buf)
	buf = append(buf, tail...)

	sc := ScavengeBytes(buf)
	if len(sc.Records) != 2 || string(sc.Records[0]) != "head" || string(sc.Records[1]) != "tail" {
		t.Fatalf("records = %q, want [head tail] only (no phantom empties)", sc.Records)
	}
	if len(sc.Spans) != 1 || sc.Spans[0].Off != damage || sc.Spans[0].End != anchor {
		t.Fatalf("spans = %+v, want [{%d %d}]", sc.Spans, damage, anchor)
	}
}

func TestFsckReportsLost(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.log")
	var buf []byte
	for _, p := range []string{"a", "b", "c", "d"} {
		buf = AppendRecord(buf, []byte(p))
	}
	// Corrupt record 1's header.
	buf[(headerSize+1)+2] ^= 1
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(faultfs.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("Fsck reported clean on a corrupted journal")
	}
	if rep.PrefixValid != 1 || rep.Records != 3 || rep.Lost() != 2 {
		t.Fatalf("report = %+v, want prefix 1 / records 3 / lost 2", rep)
	}
}

func TestRepairCleanIsNoop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.log")
	buf := AppendRecord(nil, []byte("only"))
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Repair(faultfs.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SpansQuarantined) != 0 || rep.RecordsKept != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if _, err := os.Stat(path + ".quarantine"); !os.IsNotExist(err) {
		t.Fatal("no-op repair created a quarantine sidecar")
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(after, buf) {
		t.Fatal("no-op repair modified the journal")
	}
}

func TestRepairRefusedWhileLocked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	l := openT(t, path, SyncNone)
	if err := l.Append([]byte("live")); err != nil {
		t.Fatal(err)
	}
	if _, err := Repair(faultfs.OS{}, path); !errors.Is(err, ErrLocked) {
		t.Fatalf("Repair under a live writer = %v, want ErrLocked", err)
	}
}

// TestRepairAccumulatesQuarantine: two successive corruption episodes
// append to the same sidecar — earlier quarantined spans are never
// overwritten.
func TestRepairAccumulatesQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.log")

	corruptAndRepair := func(marker string) {
		var buf []byte
		prev, _ := os.ReadFile(path)
		buf = append(buf, prev...)
		start := len(buf)
		buf = AppendRecord(buf, []byte(marker))
		buf = AppendRecord(buf, []byte("keep-"+marker))
		buf[start+headerSize] ^= 0xff // damage the marker record
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Repair(faultfs.OS{}, path); err != nil {
			t.Fatal(err)
		}
	}
	corruptAndRepair("ep1")
	corruptAndRepair("ep2")

	qbuf, err := os.ReadFile(path + ".quarantine")
	if err != nil {
		t.Fatal(err)
	}
	qrecs, _ := Scan(qbuf)
	if len(qrecs) != 2 {
		t.Fatalf("quarantine has %d records, want 2 (one per episode)", len(qrecs))
	}
	l := openT(t, path, SyncNone)
	if l.Len() != 2 {
		t.Fatalf("journal has %d records after two repairs, want 2 keeps", l.Len())
	}
}
