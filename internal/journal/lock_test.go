//go:build unix

package journal

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// Two opens of the same journal from one process contend on the flock
// exactly like two processes do (flock is per open file description):
// the second Open must fail with ErrLocked naming this process.
func TestOpenSecondWriterLockedSameProcess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	l := openT(t, path, SyncNone)

	_, err := Open(path, SyncNone)
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open error = %v, want ErrLocked", err)
	}
	var le *LockedError
	if !errors.As(err, &le) || le.HolderPID != os.Getpid() {
		t.Fatalf("LockedError = %+v, want holder pid %d", le, os.Getpid())
	}
	if pid, locked := LockHolder(path); !locked || pid != os.Getpid() {
		t.Fatalf("LockHolder = (%d, %v), want (%d, true)", pid, locked, os.Getpid())
	}

	// Releasing the lock frees the journal for the next writer.
	l.Close()
	if _, locked := LockHolder(path); locked {
		t.Fatal("LockHolder still reports locked after Close")
	}
	l2, err := Open(path, SyncNone)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	l2.Close()
}

// TestLockHelperProcess is not a test: re-execed by
// TestTwoProcessContention with RINGROBOTS_LOCK_HELPER=1, it tries to
// open the journal named by RINGROBOTS_LOCK_PATH. On success it prints
// HELD and exits 0; when the journal is locked it prints the holder's
// pid and exits with code 3.
func TestLockHelperProcess(t *testing.T) {
	if os.Getenv("RINGROBOTS_LOCK_HELPER") != "1" {
		t.Skip("helper process only")
	}
	l, err := Open(os.Getenv("RINGROBOTS_LOCK_PATH"), SyncNone)
	if err != nil {
		var le *LockedError
		if errors.As(err, &le) {
			fmt.Printf("LOCKED %d\n", le.HolderPID)
			os.Exit(3)
		}
		fmt.Println(err)
		os.Exit(1)
	}
	if err := l.Append([]byte("helper")); err != nil {
		fmt.Println(err)
		os.Exit(1)
	}
	l.Close()
	fmt.Println("HELD")
	os.Exit(0)
}

// TestTwoProcessContention re-execs the test binary as a second
// journal writer: while this process holds the lock the child must be
// refused with this pid, and after Close the child must win the lock
// and append.
func TestTwoProcessContention(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "contended.log")
	l := openT(t, path, SyncNone)

	run := func() (string, int) {
		t.Helper()
		cmd := exec.Command(os.Args[0], "-test.run", "^TestLockHelperProcess$", "-test.v")
		cmd.Env = append(os.Environ(),
			"RINGROBOTS_LOCK_HELPER=1",
			"RINGROBOTS_LOCK_PATH="+path,
		)
		out, err := cmd.Output()
		code := 0
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("helper: %v", err)
		}
		return string(out), code
	}

	out, code := run()
	if code != 3 || !strings.Contains(out, fmt.Sprintf("LOCKED %d", os.Getpid())) {
		t.Fatalf("contended run: exit %d, output:\n%s", code, out)
	}

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		out, code = run()
		if code == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("helper never acquired freed lock: exit %d, output:\n%s", code, out)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !strings.Contains(out, "HELD") {
		t.Fatalf("freed run output:\n%s", out)
	}
	// The helper's append landed.
	reopened := openT(t, path, SyncNone)
	if last, _ := reopened.Last(); string(last) != "helper" {
		t.Fatalf("Last after helper append = %q", last)
	}
}
