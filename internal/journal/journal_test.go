package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ringrobots/internal/faultfs"
)

func openT(t *testing.T, path string, policy SyncPolicy) *Log {
	t.Helper()
	l, err := Open(path, policy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	recs := [][]byte{[]byte("alpha"), {}, []byte("gamma-longer-record"), {0, 1, 2, 255}}
	l := openT(t, path, SyncAlways)
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(recs))
	}
	if last, ok := l.Last(); !ok || !bytes.Equal(last, recs[len(recs)-1]) {
		t.Fatalf("Last = %q, %v", last, ok)
	}
	l.Close()

	l2 := openT(t, path, SyncNone)
	if l2.Len() != len(recs) {
		t.Fatalf("reopened Len = %d, want %d", l2.Len(), len(recs))
	}
	var got [][]byte
	if err := l2.ForEach(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Errorf("record %d: got %q want %q", i, got[i], recs[i])
		}
	}
	// Appending after reopen continues the log.
	if err := l2.Append([]byte("post-reopen")); err != nil {
		t.Fatal(err)
	}
	if last, _ := l2.Last(); string(last) != "post-reopen" {
		t.Errorf("Last after reopen-append = %q", last)
	}
}

// TestTornTailTruncation crashes the writer at every possible byte
// offset of the final record and checks that recovery lands exactly on
// the previous record with no data loss before it.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	full := AppendRecord(nil, []byte("first"))
	sizeAfterFirst := len(full)
	full = AppendRecord(full, []byte("second-record"))

	for cut := sizeAfterFirst; cut < len(full); cut++ {
		path := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(path, SyncNone)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if l.Len() != 1 {
			t.Fatalf("cut=%d: Len = %d, want 1", cut, l.Len())
		}
		if last, _ := l.Last(); string(last) != "first" {
			t.Fatalf("cut=%d: Last = %q", cut, last)
		}
		if l.Size() != int64(sizeAfterFirst) {
			t.Fatalf("cut=%d: Size = %d, want %d", cut, l.Size(), sizeAfterFirst)
		}
		l.Close()
		// The file itself was truncated to the valid prefix.
		if fi, err := os.Stat(path); err != nil || fi.Size() != int64(sizeAfterFirst) {
			t.Fatalf("cut=%d: on-disk size %v err=%v", cut, fi.Size(), err)
		}
	}
}

// TestCorruptMidFileRefusesOpen flips one payload byte of the first
// record while the second stays intact: mid-file corruption. Open must
// refuse with a CorruptError (truncating would silently discard the
// intact record), and Repair must recover the intact record and
// quarantine the damaged span byte-exact, after which Open succeeds.
func TestCorruptMidFileRefusesOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flip.log")
	buf := AppendRecord(nil, []byte("victim"))
	victimLen := len(buf)
	buf = AppendRecord(buf, []byte("intact"))
	buf[headerSize] ^= 0x40 // first payload byte of record 0
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path, SyncNone)
	var ce *CorruptError
	if !errors.As(err, &ce) || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want CorruptError", err)
	}
	if ce.ValidBytes != 0 || ce.Recoverable != 1 {
		t.Fatalf("CorruptError = %+v, want ValidBytes=0 Recoverable=1", ce)
	}

	rep, err := Repair(faultfs.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecordsKept != 1 || len(rep.SpansQuarantined) != 1 || rep.BytesQuarantined != victimLen {
		t.Fatalf("RepairReport = %+v, want 1 record kept, 1 span of %d bytes", rep, victimLen)
	}
	// The quarantine sidecar holds the damaged span byte-exact, tagged
	// with its original offset.
	qbuf, err := os.ReadFile(path + ".quarantine")
	if err != nil {
		t.Fatal(err)
	}
	qrecs, _ := Scan(qbuf)
	if len(qrecs) != 1 {
		t.Fatalf("quarantine records = %d, want 1", len(qrecs))
	}
	if off := binary.LittleEndian.Uint64(qrecs[0]); off != 0 {
		t.Fatalf("quarantined span offset = %d, want 0", off)
	}
	if !bytes.Equal(qrecs[0][8:], buf[:victimLen]) {
		t.Fatalf("quarantined bytes differ from damaged span")
	}

	l := openT(t, path, SyncNone)
	if l.Len() != 1 {
		t.Fatalf("repaired Len = %d, want 1", l.Len())
	}
	if last, _ := l.Last(); string(last) != "intact" {
		t.Fatalf("repaired record = %q, want intact", last)
	}
}

func TestGiantDeclaredLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "giant.log")
	buf := AppendRecord(nil, []byte("ok"))
	good := len(buf)
	// Header declaring a payload far beyond the file (and beyond
	// MaxRecordLen): must not be believed or allocated.
	buf = append(buf, 0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	l := openT(t, path, SyncNone)
	if l.Len() != 1 || l.Size() != int64(good) {
		t.Fatalf("Len=%d Size=%d, want 1 record / %d bytes", l.Len(), l.Size(), good)
	}
}

func TestCompactKeepsLatestAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.log")
	l := openT(t, path, SyncAlways)
	for i := 0; i < 10; i++ {
		if err := l.Append(bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Size()
	keep := bytes.Repeat([]byte{9}, 100)
	if err := l.Compact([][]byte{keep}); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 || l.Size() >= before {
		t.Fatalf("after compact: Len=%d Size=%d (before %d)", l.Len(), l.Size(), before)
	}
	if last, _ := l.Last(); !bytes.Equal(last, keep) {
		t.Fatalf("Last after compact = %v", last[:4])
	}
	// The compacted log appends and reopens normally.
	if err := l.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2 := openT(t, path, SyncNone)
	if l2.Len() != 2 {
		t.Fatalf("reopened compacted log Len = %d, want 2", l2.Len())
	}
	if last, _ := l2.Last(); string(last) != "tail" {
		t.Fatalf("Last = %q", last)
	}
	// No temp files left behind.
	matches, _ := filepath.Glob(filepath.Join(filepath.Dir(path), "*.tmp*"))
	if len(matches) != 0 {
		t.Errorf("leftover temp files: %v", matches)
	}
}
