package journal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"ringrobots/internal/faultfs"
)

// Span is a half-open byte range [Off, End) of damaged (unparseable)
// journal bytes.
type Span struct {
	Off int
	End int
}

// ScavengeResult is the outcome of a resynchronizing scan: every
// record-boundary-aligned valid record in the buffer — including
// records AFTER damaged regions, which prefix recovery would discard —
// plus the exact damaged spans between them. Records[i] starts at
// Offsets[i]; Records and Spans tile the input exactly (re-encoding
// each record at its offset and splicing the raw span bytes back in
// reconstructs the buffer byte for byte), which is what lets Repair
// quarantine damage byte-exact with zero silent loss.
type ScavengeResult struct {
	Records [][]byte // payloads, aliasing the scanned buffer
	Offsets []int    // start offset of each record's header
	Spans   []Span   // damaged ranges, in order, non-adjacent to each other
}

// Clean reports whether the buffer parsed end-to-end with no damage —
// in which case Records is byte-identical to what Scan returns.
func (r ScavengeResult) Clean() bool { return len(r.Spans) == 0 }

// ScavengeBytes scans buf for valid records, resynchronizing after
// damage instead of stopping at it. Up to the first damage it is
// exactly Scan, so its records are always a superset of prefix
// recovery at the same offsets. After damage it probes forward one
// byte at a time for the next offset where a fully-valid, non-empty
// record begins and resumes there; the skipped bytes become a Span.
// The non-empty requirement only applies to the resync anchor: an
// all-zero run decodes as an endless train of empty records (length 0,
// CRC32("") = 0), which would make any zeroed damage "parse" — inside
// a contiguous valid run, empty records remain valid, matching Scan.
func ScavengeBytes(buf []byte) ScavengeResult {
	var res ScavengeResult
	off := 0
	for off < len(buf) {
		payload, size, ok := recordAt(buf, off)
		if ok {
			res.Records = append(res.Records, payload)
			res.Offsets = append(res.Offsets, off)
			off += size
			continue
		}
		// Damage at off: probe for the next resync anchor.
		anchor := -1
		for p := off + 1; p <= len(buf)-headerSize; p++ {
			if pay, _, ok := recordAt(buf, p); ok && len(pay) > 0 {
				anchor = p
				break
			}
		}
		if anchor < 0 {
			res.Spans = append(res.Spans, Span{Off: off, End: len(buf)})
			return res
		}
		res.Spans = append(res.Spans, Span{Off: off, End: anchor})
		off = anchor
	}
	return res
}

// FsckReport summarizes an offline journal check.
type FsckReport struct {
	Path        string
	SizeBytes   int64
	Records     int    // records scavenge recovers
	PrefixValid int    // records prefix recovery (Open/Scan) would keep
	Spans       []Span // damaged byte ranges
}

// Clean reports whether the journal parsed with no damage.
func (r FsckReport) Clean() bool { return len(r.Spans) == 0 }

// Lost reports how many recovered records lie beyond the first damage
// — the records prefix recovery would silently discard.
func (r FsckReport) Lost() int { return r.Records - r.PrefixValid }

// Fsck verifies the journal at path without locking or modifying it:
// safe to run against a live journal (the report may lag in-flight
// appends) or a dead one.
func Fsck(fsys faultfs.FS, path string) (FsckReport, error) {
	buf, err := fsys.ReadFile(path)
	if err != nil {
		return FsckReport{}, err
	}
	sc := ScavengeBytes(buf)
	_, valid := Scan(buf)
	prefix := 0
	for _, off := range sc.Offsets {
		if off < valid {
			prefix++
		}
	}
	return FsckReport{
		Path:        path,
		SizeBytes:   int64(len(buf)),
		Records:     len(sc.Records),
		PrefixValid: prefix,
		Spans:       sc.Spans,
	}, nil
}

// RepairReport summarizes what Repair did.
type RepairReport struct {
	Path             string
	RecordsKept      int
	SpansQuarantined []Span
	BytesQuarantined int
	QuarantinePath   string
}

// Repair scavenges the journal at path and rewrites it to contain
// exactly the recovered records, quarantining every damaged span —
// byte-exact, with its original offset — to the path+".quarantine"
// sidecar before anything is discarded. The rewrite is atomic
// (temp + fsync + rename + dir fsync), and the quarantine sidecar is
// synced before the rename, so a crash at any point leaves either the
// original journal or the repaired one, never a state where damaged
// bytes are gone without a quarantine copy. Repair takes the
// journal's advisory writer lock; it fails with ErrLocked while a
// live writer holds the journal.
//
// Quarantine sidecar format: itself a journal, one record per span,
// payload = [8-byte LE original byte offset][raw damaged bytes].
// Repair on an already-clean journal is a no-op (no rewrite, no
// sidecar append).
func Repair(fsys faultfs.FS, path string) (RepairReport, error) {
	lock, err := acquireLock(path)
	if err != nil {
		return RepairReport{}, err
	}
	defer releaseLock(lock)

	buf, err := fsys.ReadFile(path)
	if err != nil {
		return RepairReport{}, err
	}
	sc := ScavengeBytes(buf)
	rep := RepairReport{
		Path:             path,
		RecordsKept:      len(sc.Records),
		SpansQuarantined: sc.Spans,
		QuarantinePath:   path + ".quarantine",
	}
	if sc.Clean() {
		return rep, nil
	}

	// Quarantine first: the damaged bytes must be durable in the
	// sidecar before the rewrite can make them unreachable.
	q, err := fsys.OpenFile(rep.QuarantinePath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return rep, fmt.Errorf("journal: opening quarantine sidecar: %w", err)
	}
	var qrec []byte
	for _, sp := range sc.Spans {
		payload := make([]byte, 8+sp.End-sp.Off)
		binary.LittleEndian.PutUint64(payload, uint64(sp.Off))
		copy(payload[8:], buf[sp.Off:sp.End])
		qrec = AppendRecord(qrec[:0], payload)
		if _, err := q.Write(qrec); err != nil {
			q.Close()
			return rep, fmt.Errorf("journal: quarantining span [%d,%d): %w", sp.Off, sp.End, err)
		}
		rep.BytesQuarantined += sp.End - sp.Off
	}
	if err := q.Sync(); err != nil {
		q.Close()
		return rep, fmt.Errorf("journal: syncing quarantine sidecar: %w", err)
	}
	if err := q.Close(); err != nil {
		return rep, fmt.Errorf("journal: closing quarantine sidecar: %w", err)
	}

	// Atomic rewrite with exactly the recovered records.
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".repair*")
	if err != nil {
		return rep, err
	}
	tmpName := tmp.Name()
	bail := func(err error) (RepairReport, error) {
		tmp.Close()
		fsys.Remove(tmpName)
		return rep, err
	}
	var rec []byte
	for _, payload := range sc.Records {
		rec = AppendRecord(rec[:0], payload)
		if _, err := tmp.Write(rec); err != nil {
			return bail(fmt.Errorf("journal: writing repaired log: %w", err))
		}
	}
	if err := tmp.Sync(); err != nil {
		return bail(err)
	}
	if err := tmp.Close(); err != nil {
		return bail(err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		fsys.Remove(tmpName)
		return rep, err
	}
	if err := syncDir(path); err != nil {
		return rep, fmt.Errorf("journal: fsync of %s after repair rename: %w", dir, err)
	}
	return rep, nil
}
