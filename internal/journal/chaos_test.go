package journal

// The fault-matrix suite: every injected storage fault (ENOSPC, EIO,
// short write, sync failure, mid-file bit flip) crossed with the
// record shapes of every journal consumer (verdict store, drain
// checkpoints, pool lease records). The invariant under test is the
// acceptance criterion: the journal either stays usable (transient,
// rolled-back write errors), refuses further use loudly (sticky sync
// failure), or repairs via scavenge with the damage quarantined — it
// never silently loses a record that Append acknowledged as durable.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ringrobots/internal/faultfs"
)

// consumerShapes mimics what each journal consumer actually appends,
// so header/payload boundaries land where they land in production.
var consumerShapes = []struct {
	name string
	rec  func(i int) []byte
}{
	{"store-verdict", func(i int) []byte {
		// internal/service: 'V' + 32-byte instance key + verdict body.
		key := bytes.Repeat([]byte{byte(i)}, 32)
		return append(append([]byte{'V'}, key...), 0x01, byte(i), 0x09, 0x7b)
	}},
	{"drain-checkpoint", func(i int) []byte {
		// internal/feasibility checkpoints: multi-KB opaque blobs.
		b := bytes.Repeat([]byte{0xc0 | byte(i)}, 2048+137*i)
		b[0] = 'C'
		return b
	}},
	{"pool-lease", func(i int) []byte {
		// internal/drainpool: small typed records.
		return []byte{'L', byte(i), byte(i >> 8), 0, 1}
	}},
}

func openInjected(t *testing.T, seed int64) (*faultfs.Injector, *Log, string) {
	t.Helper()
	in := faultfs.NewInjector(faultfs.OS{}, seed)
	path := filepath.Join(t.TempDir(), "chaos.log")
	l, err := OpenFS(in, path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return in, l, path
}

func mustReopenRecords(t *testing.T, path string) [][]byte {
	t.Helper()
	l, err := Open(path, SyncNone)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	var recs [][]byte
	if err := l.ForEach(func(p []byte) error {
		recs = append(recs, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestFaultMatrixTransientWriteErrors: ENOSPC, EIO and short writes on
// the append path roll back cleanly — the failed append reports an
// error, the log stays usable (not sticky), a retry of the same record
// succeeds, and reopen sees every acknowledged record.
func TestFaultMatrixTransientWriteErrors(t *testing.T) {
	faults := []struct {
		name string
		f    faultfs.Fault
	}{
		{"enospc", faultfs.ENOSPC()},
		{"eio", faultfs.EIO()},
		{"short-write", faultfs.ShortWrite()},
	}
	for _, shape := range consumerShapes {
		for _, fault := range faults {
			t.Run(shape.name+"/"+fault.name, func(t *testing.T) {
				in, l, path := openInjected(t, 7)
				var acked [][]byte
				for i := 0; i < 3; i++ {
					r := shape.rec(i)
					if err := l.Append(r); err != nil {
						t.Fatal(err)
					}
					acked = append(acked, r)
				}
				in.FailNth(faultfs.OpWrite, in.Count(faultfs.OpWrite)+1, fault.f)
				victim := shape.rec(3)
				err := l.Append(victim)
				if err == nil {
					t.Fatal("faulted append reported success")
				}
				if errors.Is(err, ErrFailed) || l.Failed() != nil {
					t.Fatalf("transient write error must not be sticky: %v / %v", err, l.Failed())
				}
				// Retry the exact same record: the rollback must have
				// left the file on the last durable boundary.
				if err := l.Append(victim); err != nil {
					t.Fatalf("retry after rollback: %v", err)
				}
				acked = append(acked, victim)
				if err := l.Append(shape.rec(4)); err != nil {
					t.Fatal(err)
				}
				acked = append(acked, shape.rec(4))
				l.Close()
				got := mustReopenRecords(t, path)
				if len(got) != len(acked) {
					t.Fatalf("reopen sees %d records, want %d", len(got), len(acked))
				}
				for i := range acked {
					if !bytes.Equal(got[i], acked[i]) {
						t.Fatalf("record %d differs after reopen", i)
					}
				}
			})
		}
	}
}

// TestFaultMatrixSyncFailureIsSticky: a failed fsync leaves the log
// sticky-failed — every later Append/Sync/Compact returns ErrFailed
// and, critically, never issues another fsync on the poisoned fd
// (verified by the injector's op counter). Acked records survive a
// crash-consistent view; the unacked one does not reappear as durable.
func TestFaultMatrixSyncFailureIsSticky(t *testing.T) {
	for _, shape := range consumerShapes {
		t.Run(shape.name, func(t *testing.T) {
			in, l, path := openInjected(t, 7)
			var acked [][]byte
			for i := 0; i < 3; i++ {
				r := shape.rec(i)
				if err := l.Append(r); err != nil {
					t.Fatal(err)
				}
				acked = append(acked, r)
			}
			in.FailNth(faultfs.OpSync, in.Count(faultfs.OpSync)+1, faultfs.EIO())
			if err := l.Append(shape.rec(3)); !errors.Is(err, ErrFailed) {
				t.Fatalf("append with failing fsync = %v, want ErrFailed", err)
			}
			syncsAfter := in.Count(faultfs.OpSync)
			if err := l.Append(shape.rec(4)); !errors.Is(err, ErrFailed) {
				t.Fatalf("append on sticky log = %v, want ErrFailed", err)
			}
			if err := l.Sync(); !errors.Is(err, ErrFailed) {
				t.Fatalf("sync on sticky log = %v, want ErrFailed", err)
			}
			if err := l.Compact(nil); !errors.Is(err, ErrFailed) {
				t.Fatalf("compact on sticky log = %v, want ErrFailed", err)
			}
			if got := in.Count(faultfs.OpSync); got != syncsAfter {
				t.Fatalf("sticky log issued %d more fsyncs on the poisoned fd", got-syncsAfter)
			}
			// Crash now: only what fsync acknowledged is durable.
			l.Close()
			if err := in.CrashUnsynced(); err != nil {
				t.Fatal(err)
			}
			got := mustReopenRecords(t, path)
			if len(got) != len(acked) {
				t.Fatalf("crash-consistent reopen sees %d records, want the %d acked", len(got), len(acked))
			}
			for i := range acked {
				if !bytes.Equal(got[i], acked[i]) {
					t.Fatalf("acked record %d lost or corrupted", i)
				}
			}
		})
	}
}

// TestFaultMatrixBitFlipRepairs: a silently corrupted record with live
// records after it makes reopen refuse (ErrCorrupt) rather than
// truncate, and Repair recovers everything else with the damaged bytes
// quarantined byte-exact.
func TestFaultMatrixBitFlipRepairs(t *testing.T) {
	for _, shape := range consumerShapes {
		t.Run(shape.name, func(t *testing.T) {
			in, l, path := openInjected(t, 99)
			for i := 0; i < 3; i++ {
				if err := l.Append(shape.rec(i)); err != nil {
					t.Fatal(err)
				}
			}
			in.FailNth(faultfs.OpWrite, in.Count(faultfs.OpWrite)+1, faultfs.BitFlip())
			if err := l.Append(shape.rec(3)); err != nil {
				t.Fatalf("bit-flip append must look successful, got %v", err)
			}
			if err := l.Append(shape.rec(4)); err != nil {
				t.Fatal(err)
			}
			l.Close()

			_, err := Open(path, SyncNone)
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("reopen over latent corruption = %v, want CorruptError", err)
			}
			raw, _ := os.ReadFile(path)
			rep, err := Repair(faultfs.OS{}, path)
			if err != nil {
				t.Fatal(err)
			}
			if rep.RecordsKept != 4 || len(rep.SpansQuarantined) != 1 {
				t.Fatalf("repair = %+v, want 4 kept / 1 span", rep)
			}
			// Quarantine is byte-exact: the sidecar record reproduces
			// the damaged span at its reported offset.
			qbuf, err := os.ReadFile(rep.QuarantinePath)
			if err != nil {
				t.Fatal(err)
			}
			qrecs, _ := Scan(qbuf)
			if len(qrecs) != 1 {
				t.Fatalf("quarantine records = %d", len(qrecs))
			}
			off := int(binary.LittleEndian.Uint64(qrecs[0]))
			if off != rep.SpansQuarantined[0].Off || !bytes.Equal(qrecs[0][8:], raw[off:rep.SpansQuarantined[0].End]) {
				t.Fatal("quarantined bytes are not byte-exact")
			}
			got := mustReopenRecords(t, path)
			want := [][]byte{shape.rec(0), shape.rec(1), shape.rec(2), shape.rec(4)}
			if len(got) != len(want) {
				t.Fatalf("repaired journal has %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("repaired record %d differs", i)
				}
			}
		})
	}
}

// TestEnospcSweepNeverLosesAckedRecords injects ENOSPC at every write
// index in turn and, with one retry allowed per append, asserts the
// final reopen contains exactly the acknowledged records — the
// rollback invariant holds wherever the fault lands.
func TestEnospcSweepNeverLosesAckedRecords(t *testing.T) {
	const appends = 6
	for nth := 1; nth <= appends; nth++ {
		t.Run(fmt.Sprintf("fail-write-%d", nth), func(t *testing.T) {
			in, l, path := openInjected(t, int64(nth))
			in.FailNth(faultfs.OpWrite, nth, faultfs.ENOSPC())
			var acked [][]byte
			for i := 0; i < appends; i++ {
				r := []byte(fmt.Sprintf("record-%d-%s", i, bytes.Repeat([]byte{'x'}, i*17)))
				err := l.Append(r)
				if err != nil && !errors.Is(err, ErrFailed) {
					err = l.Append(r) // one retry, as a real caller would
				}
				if err == nil {
					acked = append(acked, r)
				}
			}
			l.Close()
			got := mustReopenRecords(t, path)
			if len(got) != len(acked) {
				t.Fatalf("reopen: %d records, want %d acked", len(got), len(acked))
			}
			for i := range acked {
				if !bytes.Equal(got[i], acked[i]) {
					t.Fatalf("acked record %d differs", i)
				}
			}
		})
	}
}

// TestCrashConsistentViewSyncNone: under SyncNone, a crash keeps the
// explicitly-synced prefix and drops the unsynced tail; recovery then
// truncates cleanly with no phantom records.
func TestCrashConsistentViewSyncNone(t *testing.T) {
	in := faultfs.NewInjector(faultfs.OS{}, 3)
	path := filepath.Join(t.TempDir(), "crash.log")
	l, err := OpenFS(in, path, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 5; i++ {
		if err := l.Append([]byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: the unsynced tail evaporates. (Close first only to release
	// the flock for the reopen — close is not a sync, and the injector's
	// durable watermark moved only at the explicit Sync above.)
	l.Close()
	if err := in.CrashUnsynced(); err != nil {
		t.Fatal(err)
	}
	got := mustReopenRecords(t, path)
	if len(got) != 3 {
		t.Fatalf("after crash: %d records, want the 3 synced", len(got))
	}
	for i, r := range got {
		if len(r) != 1 || r[0] != byte('a'+i) {
			t.Fatalf("record %d = %q", i, r)
		}
	}
}

// TestCompactTempSyncFailureIsRetryable: a failed fsync on the
// compaction TEMP file aborts the compact before the rename, leaving
// the live journal untouched and healthy (the poisoned fd is the temp
// file's, discarded with it — unlike a journal-fd fsync failure, a
// retry opens a fresh temp file and is safe). The old log must be
// byte-intact, the log not sticky, the retry must succeed, and no temp
// litter may remain.
func TestCompactTempSyncFailureIsRetryable(t *testing.T) {
	in, l, path := openInjected(t, 11)
	for i := 0; i < 4; i++ {
		if err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	in.FailNth(faultfs.OpSync, in.Count(faultfs.OpSync)+1, faultfs.EIO())
	if err := l.Compact([][]byte{{9}}); err == nil {
		t.Fatal("compact with failing temp fsync reported success")
	}
	if l.Failed() != nil {
		t.Fatalf("temp-file fsync failure must not poison the journal fd: %v", l.Failed())
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(before, after) {
		t.Fatal("aborted compact modified the live journal")
	}
	if err := l.Compact([][]byte{{9}}); err != nil {
		t.Fatalf("compact retry: %v", err)
	}
	if last, _ := l.Last(); !bytes.Equal(last, []byte{9}) {
		t.Fatalf("Last after retried compact = %v", last)
	}
	if matches, _ := filepath.Glob(filepath.Join(filepath.Dir(path), "*.tmp*")); len(matches) != 0 {
		t.Fatalf("leftover temp files: %v", matches)
	}
}
