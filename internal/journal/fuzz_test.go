package journal

import (
	"bytes"
	"testing"
)

// FuzzScan drives the record decoder with arbitrary bytes — torn
// tails, bit flips, zero-length records, giant declared lengths — and
// asserts the recovery contract: Scan never panics, the valid prefix it
// reports re-encodes byte-identically to the input's prefix (so
// truncating there loses nothing before the last complete record), and
// recovery is idempotent (rescanning the valid prefix yields the same
// records and consumes all of it).
func FuzzScan(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, []byte("seed")))
	f.Add(AppendRecord(AppendRecord(nil, nil), []byte("two")))
	// Torn tail: a record and a half.
	two := AppendRecord(AppendRecord(nil, []byte("whole")), []byte("torn-off-tail"))
	f.Add(two[:len(two)-5])
	// Giant declared length.
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 1, 2, 3})
	// Bit flip in a valid record's payload.
	flip := AppendRecord(nil, []byte("flip-me"))
	flip[headerSize+2] ^= 1
	f.Add(flip)
	// Verdict-store shaped payloads (internal/service): a one-byte
	// record type, a 32-byte instance key, then a typed body. Built
	// inline (the journal is payload-agnostic) so the fuzzer explores
	// the shapes the store actually journals.
	key := bytes.Repeat([]byte{0xa5}, 32)
	verdictRec := append(append([]byte{'V'}, key...), 0x01, 0x02, 0x09, 0x7b)
	f.Add(AppendRecord(nil, verdictRec))
	ckptRec := append(append([]byte{'C'}, key...), []byte("checkpoint-body")...)
	f.Add(AppendRecord(AppendRecord(nil, verdictRec), ckptRec))
	// Torn tail mid-way through a checkpoint record.
	tornStore := AppendRecord(AppendRecord(nil, verdictRec), ckptRec)
	f.Add(tornStore[:len(tornStore)-7])
	// A store record whose key is truncated by a bit flip in the length.
	shortKey := AppendRecord(nil, append([]byte{'V'}, key[:13]...))
	f.Add(shortKey)
	// Mid-buffer corruption with live records beyond it — the scavenge
	// cases: a flip in the FIRST record's payload with two intact after
	// it, a flip in a middle record's header, and a zeroed hole
	// (decodes as empty records, which must not anchor a resync).
	three := AppendRecord(nil, []byte("first-record"))
	three = AppendRecord(three, []byte("middle"))
	midOff := len(three)
	three = AppendRecord(three, []byte("last-one-standing"))
	earlyFlip := append([]byte(nil), three...)
	earlyFlip[headerSize+3] ^= 0x10
	f.Add(earlyFlip)
	hdrFlip := append([]byte(nil), three...)
	hdrFlip[midOff+1] ^= 0x04
	f.Add(hdrFlip)
	// 21 zero bytes: the first 16 decode as phantom empty records
	// (length 0, CRC32("") = 0 — Scan-valid), the trailing 5 break the
	// next header, forcing a genuine resync probe to after-hole.
	hole := AppendRecord(nil, []byte("before-hole"))
	hole = append(hole, make([]byte, 21)...)
	hole = AppendRecord(hole, []byte("after-hole"))
	f.Add(hole)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := Scan(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d out of range [0, %d]", valid, len(data))
		}
		// Re-encoding the recovered records must reproduce the valid
		// prefix exactly: recovery lands on a record boundary and loses
		// nothing before it.
		var enc []byte
		for _, r := range recs {
			enc = AppendRecord(enc, r)
		}
		if !bytes.Equal(enc, data[:valid]) {
			t.Fatalf("recovered records re-encode to %d bytes != valid prefix %d", len(enc), valid)
		}
		// Idempotence: scanning the valid prefix consumes all of it and
		// yields the same record count.
		recs2, valid2 := Scan(data[:valid])
		if valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("rescan of valid prefix: %d records / %d bytes, want %d / %d",
				len(recs2), valid2, len(recs), valid)
		}

		// Scavenge contract, against the same arbitrary bytes.
		sc := ScavengeBytes(data)
		// Superset: everything prefix recovery keeps, scavenge keeps
		// too, at the same offsets — damage never costs records before
		// it.
		if len(sc.Records) < len(recs) {
			t.Fatalf("scavenge recovered %d records < prefix's %d", len(sc.Records), len(recs))
		}
		off := 0
		for i, r := range recs {
			if sc.Offsets[i] != off || !bytes.Equal(sc.Records[i], r) {
				t.Fatalf("scavenged record %d at %d differs from prefix record at %d", i, sc.Offsets[i], off)
			}
			off += headerSize + len(r)
		}
		// Clean input parses identically: no spans, same record count.
		if valid == len(data) && (!sc.Clean() || len(sc.Records) != len(recs)) {
			t.Fatalf("clean input: scavenge found %d spans / %d records, want 0 / %d",
				len(sc.Spans), len(sc.Records), len(recs))
		}
		// Tiling: re-encoded records at their offsets plus the raw span
		// bytes reconstruct the input byte-exact — the corrupt spans are
		// quarantined byte-exact, nothing is silently dropped.
		var out []byte
		ri, si := 0, 0
		for pos := 0; pos < len(data); {
			switch {
			case ri < len(sc.Offsets) && sc.Offsets[ri] == pos:
				out = AppendRecord(out, sc.Records[ri])
				pos += headerSize + len(sc.Records[ri])
				ri++
			case si < len(sc.Spans) && sc.Spans[si].Off == pos:
				if sc.Spans[si].End <= pos || sc.Spans[si].End > len(data) {
					t.Fatalf("span %d = %+v out of range", si, sc.Spans[si])
				}
				out = append(out, data[pos:sc.Spans[si].End]...)
				pos = sc.Spans[si].End
				si++
			default:
				t.Fatalf("byte %d covered by neither a record nor a span", pos)
			}
		}
		if ri != len(sc.Offsets) || si != len(sc.Spans) || !bytes.Equal(out, data) {
			t.Fatalf("records+spans do not tile the input (used %d/%d records, %d/%d spans)",
				ri, len(sc.Offsets), si, len(sc.Spans))
		}
	})
}
