package journal

import (
	"bytes"
	"testing"
)

// FuzzScan drives the record decoder with arbitrary bytes — torn
// tails, bit flips, zero-length records, giant declared lengths — and
// asserts the recovery contract: Scan never panics, the valid prefix it
// reports re-encodes byte-identically to the input's prefix (so
// truncating there loses nothing before the last complete record), and
// recovery is idempotent (rescanning the valid prefix yields the same
// records and consumes all of it).
func FuzzScan(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, []byte("seed")))
	f.Add(AppendRecord(AppendRecord(nil, nil), []byte("two")))
	// Torn tail: a record and a half.
	two := AppendRecord(AppendRecord(nil, []byte("whole")), []byte("torn-off-tail"))
	f.Add(two[:len(two)-5])
	// Giant declared length.
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 1, 2, 3})
	// Bit flip in a valid record's payload.
	flip := AppendRecord(nil, []byte("flip-me"))
	flip[headerSize+2] ^= 1
	f.Add(flip)
	// Verdict-store shaped payloads (internal/service): a one-byte
	// record type, a 32-byte instance key, then a typed body. Built
	// inline (the journal is payload-agnostic) so the fuzzer explores
	// the shapes the store actually journals.
	key := bytes.Repeat([]byte{0xa5}, 32)
	verdictRec := append(append([]byte{'V'}, key...), 0x01, 0x02, 0x09, 0x7b)
	f.Add(AppendRecord(nil, verdictRec))
	ckptRec := append(append([]byte{'C'}, key...), []byte("checkpoint-body")...)
	f.Add(AppendRecord(AppendRecord(nil, verdictRec), ckptRec))
	// Torn tail mid-way through a checkpoint record.
	tornStore := AppendRecord(AppendRecord(nil, verdictRec), ckptRec)
	f.Add(tornStore[:len(tornStore)-7])
	// A store record whose key is truncated by a bit flip in the length.
	shortKey := AppendRecord(nil, append([]byte{'V'}, key[:13]...))
	f.Add(shortKey)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := Scan(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d out of range [0, %d]", valid, len(data))
		}
		// Re-encoding the recovered records must reproduce the valid
		// prefix exactly: recovery lands on a record boundary and loses
		// nothing before it.
		var enc []byte
		for _, r := range recs {
			enc = AppendRecord(enc, r)
		}
		if !bytes.Equal(enc, data[:valid]) {
			t.Fatalf("recovered records re-encode to %d bytes != valid prefix %d", len(enc), valid)
		}
		// Idempotence: scanning the valid prefix consumes all of it and
		// yields the same record count.
		recs2, valid2 := Scan(data[:valid])
		if valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("rescan of valid prefix: %d records / %d bytes, want %d / %d",
				len(recs2), valid2, len(recs), valid)
		}
	})
}
