//go:build unix

package journal

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"
)

// acquireLock takes the advisory writer lock for the journal at path:
// an exclusive non-blocking flock on the sidecar file path+".lock",
// with the holder's pid written into it for diagnostics. The sidecar is
// never removed (removing it would race a concurrent acquirer onto a
// different inode, silently splitting the lock); the flock itself is
// the truth, the pid content is advisory. The kernel releases the lock
// when the holding process exits, however it exits — a kill -9'd
// writer never wedges the journal.
func acquireLock(path string) (*os.File, error) {
	lf, err := os.OpenFile(lockPath(path), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: opening lock sidecar for %s: %w", path, err)
	}
	if err := syscall.Flock(int(lf.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		pid := readLockPid(lf)
		lf.Close()
		return nil, &LockedError{Path: path, HolderPID: pid}
	}
	// Record the holder for LockHolder and error messages.
	if err := lf.Truncate(0); err == nil {
		lf.Seek(0, 0)
		fmt.Fprintf(lf, "%d\n", os.Getpid())
	}
	return lf, nil
}

func releaseLock(lf *os.File) error {
	if lf == nil {
		return nil
	}
	// Closing the descriptor drops the flock.
	return lf.Close()
}

func readLockPid(lf *os.File) int {
	var buf [32]byte
	n, err := lf.ReadAt(buf[:], 0)
	if n == 0 && err != nil {
		return 0
	}
	pid, err := strconv.Atoi(strings.TrimSpace(string(buf[:n])))
	if err != nil {
		return 0
	}
	return pid
}

// LockHolder probes the advisory lock of the journal at path without
// opening the journal: it reports the recorded holder pid when another
// process holds the lock, and (0, false) when the lock is free. The
// probe briefly acquires and releases the free lock, so it can
// spuriously fail a racing Open — use it for observation (liveness
// checks), not for synchronization.
func LockHolder(path string) (pid int, locked bool) {
	lf, err := os.OpenFile(lockPath(path), os.O_RDWR, 0o644)
	if err != nil {
		return 0, false // no sidecar: nobody ever locked it
	}
	defer lf.Close()
	if err := syscall.Flock(int(lf.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return readLockPid(lf), true
	}
	syscall.Flock(int(lf.Fd()), syscall.LOCK_UN)
	return 0, false
}
