//go:build !unix

package journal

import "os"

// Non-unix platforms get no advisory locking: Open succeeds and the
// single-writer discipline is the operator's responsibility, exactly
// the pre-lock behavior. All supported deployments (CI, the drain
// pool) are linux.
func acquireLock(path string) (*os.File, error) { return nil, nil }

func releaseLock(lf *os.File) error { return nil }

// LockHolder always reports the lock free on platforms without flock.
func LockHolder(path string) (pid int, locked bool) { return 0, false }
