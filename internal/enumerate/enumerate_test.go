package enumerate

import (
	"math/rand"
	"testing"

	"ringrobots/internal/config"
)

func TestCountMatchesPaperFigures(t *testing.T) {
	// The paper's impossibility proofs enumerate the distinct exclusive
	// configurations up to rotation and reflection (Theorem 5):
	//   Fig 4: (k,n)=(4,7) → 4      Fig 5: (4,8) → 8
	//   Fig 6: (5,8) → 5            Fig 7: (6,9) → 7
	//   Fig 8: (4,9) → 10           Fig 9: (5,9) → 10
	cases := []struct{ k, n, want int }{
		{4, 7, 4},
		{4, 8, 8},
		{5, 8, 5},
		{6, 9, 7},
		{4, 9, 10},
		{5, 9, 10},
	}
	for _, c := range cases {
		got, err := Count(c.n, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Count(n=%d, k=%d) = %d, want %d (paper figure)", c.n, c.k, got, c.want)
		}
	}
}

func TestClassesAreCanonicalAndDistinct(t *testing.T) {
	for n := 3; n <= 12; n++ {
		for k := 1; k <= n; k++ {
			cls, err := Classes(n, k)
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[string]bool)
			for _, c := range cls {
				if c.N() != n || c.K() != k {
					t.Fatalf("class with wrong size: %v", c)
				}
				key := c.Canonical()
				if seen[key] {
					t.Fatalf("duplicate class %s for n=%d k=%d", key, n, k)
				}
				seen[key] = true
				// Representative is anchored: rebuilding from its supermin
				// view at node 0 is the identity.
				rebuilt, err := config.FromIntervals(0, c.SuperminView())
				if err != nil {
					t.Fatal(err)
				}
				if !rebuilt.Equal(c) {
					t.Fatalf("representative %v is not canonical", c)
				}
			}
		}
	}
}

func TestClassesOrdered(t *testing.T) {
	cls, err := Classes(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(cls); i++ {
		if cls[i].SuperminView().Less(cls[i-1].SuperminView()) {
			t.Fatal("classes not ordered by supermin view")
		}
	}
}

func TestClassesCoverEverySubset(t *testing.T) {
	// Every k-subset of Z_n must canonicalize to one of the returned
	// classes.
	n, k := 9, 4
	cls, err := Classes(n, k)
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[string]bool, len(cls))
	for _, c := range cls {
		keys[c.Canonical()] = true
	}
	for mask := 0; mask < 1<<n; mask++ {
		var nodes []int
		for u := 0; u < n; u++ {
			if mask&(1<<u) != 0 {
				nodes = append(nodes, u)
			}
		}
		if len(nodes) != k {
			continue
		}
		c := config.MustNew(n, nodes...)
		if !keys[c.Canonical()] {
			t.Fatalf("subset %v canonical key %s missing from classes", nodes, c.Canonical())
		}
	}
}

func TestCountEdgeCases(t *testing.T) {
	if _, err := Count(5, 0); err == nil {
		t.Error("Count accepted k=0")
	}
	if _, err := Count(5, 6); err == nil {
		t.Error("Count accepted k>n")
	}
	got, err := Count(5, 5)
	if err != nil || got != 1 {
		t.Errorf("Count(5,5) = %d,%v; want 1", got, err)
	}
	got, err = Count(7, 1)
	if err != nil || got != 1 {
		t.Errorf("Count(7,1) = %d,%v; want 1", got, err)
	}
	// k=2 on an n-ring: classes are determined by the distance 1..⌊n/2⌋.
	got, err = Count(8, 2)
	if err != nil || got != 4 {
		t.Errorf("Count(8,2) = %d,%v; want 4", got, err)
	}
	got, err = Count(9, 2)
	if err != nil || got != 4 {
		t.Errorf("Count(9,2) = %d,%v; want 4", got, err)
	}
}

func TestRigidClasses(t *testing.T) {
	// (k,n)=(4,8): exactly two rigid classes, C* and Cs (§3.2).
	rigid, err := RigidClasses(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rigid) != 2 {
		t.Fatalf("RigidClasses(8,4) = %d classes, want 2", len(rigid))
	}
	for _, c := range rigid {
		if !c.IsRigid() {
			t.Fatalf("non-rigid class %v returned", c)
		}
	}
	// No rigid configurations exist for k = n−1 or k = n−2 or n ≤ 4 (§5).
	for _, tc := range []struct{ n, k int }{{8, 7}, {8, 6}, {4, 2}, {4, 3}} {
		rigid, err := RigidClasses(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if len(rigid) != 0 {
			t.Errorf("RigidClasses(%d,%d) = %d classes, want 0", tc.n, tc.k, len(rigid))
		}
	}
}

func TestHasRigid(t *testing.T) {
	ok, err := HasRigid(8, 4)
	if err != nil || !ok {
		t.Errorf("HasRigid(8,4) = %v,%v", ok, err)
	}
	ok, err = HasRigid(8, 6)
	if err != nil || ok {
		t.Errorf("HasRigid(8,6) = %v,%v; want false (k=n-2)", ok, err)
	}
}

func TestRandomRigid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(40)
		k := 3 + rng.Intn(n-6)
		c, err := RandomRigid(rng, n, k, 1000)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", n, k, err)
		}
		if !c.IsRigid() || c.N() != n || c.K() != k {
			t.Fatalf("RandomRigid returned %v", c)
		}
	}
}

func TestRandomRigidFailsWhenNoneExists(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomRigid(rng, 8, 7, 200); err == nil {
		t.Error("RandomRigid found a rigid configuration with k=n-1")
	}
	if _, err := RandomRigid(rng, 8, 8, 10); err == nil {
		t.Error("RandomRigid accepted k=n")
	}
	if _, err := RandomRigid(rng, 8, 0, 10); err == nil {
		t.Error("RandomRigid accepted k=0")
	}
}

func TestClassCountAgainstBurnside(t *testing.T) {
	// Independent count via Burnside's lemma on the dihedral group D_n
	// acting on k-subsets of Z_n.
	for n := 3; n <= 12; n++ {
		for k := 1; k <= n; k++ {
			got, err := Count(n, k)
			if err != nil {
				t.Fatal(err)
			}
			if want := burnsideCount(n, k); got != want {
				t.Errorf("Count(%d,%d) = %d, Burnside = %d", n, k, got, want)
			}
		}
	}
}

// burnsideCount counts orbits of k-subsets of Z_n under the dihedral group
// by direct fixed-point counting (n is small).
func burnsideCount(n, k int) int {
	total := 0
	// Rotations.
	for s := 0; s < n; s++ {
		total += fixedSubsets(n, k, func(u int) int { return (u + s) % n })
	}
	// Reflections u ↦ (a−u) mod n.
	for a := 0; a < n; a++ {
		total += fixedSubsets(n, k, func(u int) int { return ((a-u)%n + n) % n })
	}
	return total / (2 * n)
}

func fixedSubsets(n, k int, perm func(int) int) int {
	// Count k-subsets fixed by perm: choose whole cycles of the
	// permutation. Enumerate cycle lengths then do a subset-sum count.
	seen := make([]bool, n)
	var cycles []int
	for u := 0; u < n; u++ {
		if seen[u] {
			continue
		}
		length := 0
		for v := u; !seen[v]; v = perm(v) {
			seen[v] = true
			length++
		}
		cycles = append(cycles, length)
	}
	// dp[j] = number of ways to pick cycles totaling j elements.
	dp := make([]int, k+1)
	dp[0] = 1
	for _, c := range cycles {
		for j := k; j >= c; j-- {
			dp[j] += dp[j-c]
		}
	}
	return dp[k]
}
