// Package enumerate generates configuration spaces: every exclusive
// configuration of k robots on an n-node ring up to rotation and
// reflection (the distinct configurations of the anonymous unoriented
// model), plus filtered and randomized variants.
//
// These spaces drive the exhaustive theorem verifications (E1, E5–E7 in
// DESIGN.md) and regenerate the configuration counts of the paper's
// Figures 4–9.
package enumerate

import (
	"fmt"
	"math/rand"

	"ringrobots/internal/config"
)

// Classes returns one representative per equivalence class (rotation +
// reflection) of exclusive configurations with k occupied nodes on an
// n-node ring. Representatives are canonical: each is rebuilt from its
// supermin view anchored at node 0, so equal classes yield equal configs.
// The slice is ordered by supermin view (lexicographically increasing).
func Classes(n, k int) ([]config.Config, error) {
	if k < 1 || k > n {
		return nil, fmt.Errorf("enumerate: k=%d out of range for n=%d", k, n)
	}
	seen := make(map[config.CanonKey]bool)
	var out []config.Config
	nodes := make([]int, k)
	// Fix node 0 occupied: every class has a representative containing
	// node 0, cutting the subset enumeration by a factor of n/k.
	var rec func(idx, next int)
	rec = func(idx, next int) {
		if idx == k {
			c := config.MustNew(n, nodes...)
			key := c.CanonKey()
			if !seen[key] {
				seen[key] = true
				canon, err := config.FromIntervals(0, c.SuperminView())
				if err != nil {
					panic(err)
				}
				out = append(out, canon)
			}
			return
		}
		for u := next; u <= n-(k-idx); u++ {
			nodes[idx] = u
			rec(idx+1, u+1)
		}
	}
	nodes[0] = 0
	rec(1, 1)
	sortByView(out)
	return out, nil
}

// RigidClasses returns the rigid members of Classes(n, k).
func RigidClasses(n, k int) ([]config.Config, error) {
	all, err := Classes(n, k)
	if err != nil {
		return nil, err
	}
	out := all[:0]
	for _, c := range all {
		if c.IsRigid() {
			out = append(out, c)
		}
	}
	return out, nil
}

// Count returns the number of equivalence classes (distinct configurations
// in the anonymous unoriented model) — the quantity shown by the paper's
// Figures 4–9 (e.g. 4 classes for k=4, n=7).
func Count(n, k int) (int, error) {
	cls, err := Classes(n, k)
	if err != nil {
		return 0, err
	}
	return len(cls), nil
}

// RandomRigid returns a uniformly random exclusive configuration of k
// robots on n nodes that is rigid, drawn with the given source. It errors
// after maxTries failures (some (n,k) have no rigid configurations, e.g.
// k ≥ n−2 or tiny rings).
func RandomRigid(rng *rand.Rand, n, k int, maxTries int) (config.Config, error) {
	if k < 1 || k >= n {
		return config.Config{}, fmt.Errorf("enumerate: no exclusive configuration for n=%d, k=%d", n, k)
	}
	for try := 0; try < maxTries; try++ {
		nodes := rng.Perm(n)[:k]
		c := config.MustNew(n, nodes...)
		if c.IsRigid() {
			return c, nil
		}
	}
	return config.Config{}, fmt.Errorf("enumerate: no rigid configuration found for n=%d, k=%d after %d tries", n, k, maxTries)
}

// HasRigid reports whether any rigid exclusive configuration of k robots
// on n nodes exists (computed exhaustively; intended for small n).
func HasRigid(n, k int) (bool, error) {
	cls, err := RigidClasses(n, k)
	if err != nil {
		return false, err
	}
	return len(cls) > 0, nil
}

func sortByView(cs []config.Config) {
	// Insertion sort by supermin view; class counts are small.
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].SuperminView().Less(cs[j-1].SuperminView()); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
