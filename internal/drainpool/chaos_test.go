package drainpool

// Storage-fault suite for the worker: a shard worker whose journal
// starts failing must surrender its lease (close the journal,
// releasing the flock other processes watch) and return an error —
// never wedge holding a lease it can no longer heartbeat, which on a
// multi-machine pool the coordinator could not even pid-kill away.

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ringrobots/internal/faultfs"
	"ringrobots/internal/feasibility"
	"ringrobots/internal/journal"
)

// seedShardJournal writes the meta + root-checkpoint records a
// coordinator would, for a wide ring whose drain runs long enough for
// faults to land mid-solve.
func seedShardJournal(t *testing.T, path string, n, k int) {
	t.Helper()
	s := feasibility.NewSolver(n, k)
	root, err := feasibility.RootCheckpoint(s)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := root.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	log, err := journal.Open(path, journal.SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Append(encShardMeta(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := log.Append(encShardCkpt(raw)); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerSurrendersLeaseOnHeartbeatFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard-g001-s000.journal")
	// (3, 19): a wide-ring drain that runs far longer than the test —
	// only surrender can end it early.
	seedShardJournal(t, path, 19, 3)

	in := faultfs.NewInjector(faultfs.OS{}, 5)
	// The journal is opened SyncAlways: seeding already happened on the
	// real FS, so the first injected syncs come from worker appends
	// (heartbeats, checkpoints). Fail the first one.
	in.FailNth(faultfs.OpSync, 1, faultfs.EIO())

	start := time.Now()
	err := RunShard(context.Background(), path, WorkerOptions{
		Heartbeat: 20 * time.Millisecond,
		FS:        in,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("worker with failing journal reported success")
	}
	if !strings.Contains(err.Error(), "surrendering lease") {
		t.Fatalf("err = %v, want a lease surrender", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("surrender took %v — the worker wedged on its lease", elapsed)
	}
	// The flock is released: another worker can take the shard over
	// immediately (here on healthy storage, resuming the checkpoint).
	if holder, locked := journal.LockHolder(path); locked {
		t.Fatalf("shard journal still flocked by pid %d after surrender", holder)
	}
	err = RunShard(context.Background(), path, WorkerOptions{
		Budget:    200,
		Heartbeat: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("takeover worker on healthy storage: %v", err)
	}
}

// TestWorkerSurrendersOnCheckpointWriteFailure: same invariant via the
// checkpoint path — an ENOSPC on a periodic checkpoint append cancels
// the solve and surrenders rather than drain on without journaling
// progress.
func TestWorkerSurrendersOnCheckpointWriteFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard-g001-s000.journal")
	seedShardJournal(t, path, 19, 3)

	in := faultfs.NewInjector(faultfs.OS{}, 5)
	// First worker append (heartbeat set long; CheckpointEvery=2 means
	// the first write is a checkpoint record).
	in.FailNth(faultfs.OpWrite, 1, faultfs.ENOSPC())

	err := RunShard(context.Background(), path, WorkerOptions{
		CheckpointEvery: 2,
		Heartbeat:       time.Hour,
		FS:              in,
	})
	if err == nil || !strings.Contains(err.Error(), "surrendering lease") {
		t.Fatalf("err = %v, want a lease surrender", err)
	}
	if _, locked := journal.LockHolder(path); locked {
		t.Fatal("shard journal still flocked after surrender")
	}
}

// TestWorkerResultNotLostToTransientError: a transient write error on
// the TERMINAL result append is retried (the journal rolled the failed
// write back), so a one-off ENOSPC does not cost the whole shard leg.
func TestWorkerResultNotLostToTransientError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard-g001-s000.journal")
	// (7, 3): small enough to refute quickly.
	seedShardJournal(t, path, 7, 3)

	in := faultfs.NewInjector(faultfs.OS{}, 5)
	run := func() error {
		return RunShard(context.Background(), path, WorkerOptions{
			Heartbeat: time.Hour, // keep beats out of the op sequence
			FS:        in,
		})
	}
	// Dry-run once on a scratch copy to learn which write is terminal:
	// with no checkpoints and no beats, it is the worker's only write.
	in.FailNth(faultfs.OpWrite, 1, faultfs.ENOSPC())
	if err := run(); err != nil {
		t.Fatalf("worker with transient terminal-write fault: %v", err)
	}
	// The result was journaled: a re-run is a no-op success.
	if err := run(); err != nil {
		t.Fatalf("re-run over journaled result: %v", err)
	}
	// And the journal replays cleanly with a done record.
	log, err := journal.Open(path, journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	sawDone := false
	if err := log.ForEach(func(p []byte) error {
		if len(p) > 0 && p[0] == recShardDone {
			sawDone = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawDone {
		t.Fatal("no ShardDone record after retried append")
	}
}
