package drainpool

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Journal record encodings for the drain pool. Two journals exist:
//
// The POOL journal (pool.journal, written only by the coordinator,
// whose flock doubles as the single-coordinator guard) holds the
// coordinator's recoverable state: a partition record ('P') opening
// each generation with the full base checkpoint, lease grants ('L'),
// observed-progress heartbeats ('H'), shard completions ('D',
// embedding the shard result so recovery never depends on retired
// shard journals), and the final verdict ('V'). The journal is
// compacted down to the newest 'P' when a generation opens — every
// older record is then derivable or obsolete — so replaying it is:
// take the last 'P', honor the 'L'/'D' records after it.
//
// Each SHARD journal (shard-g<gen>-s<shard>.journal, written by the
// worker holding its flock) holds the shard's identity ('S', seeded by
// the coordinator together with the initial checkpoint), periodic
// checkpoints ('C'), worker heartbeats ('H'), and the terminal shard
// result ('R'). The coordinator reads shard journals lock-free
// (journal.Scan over a plain read), which is what makes journal growth
// an honest liveness signal.
const (
	recPartition = 'P'
	recLease     = 'L'
	recHeartbeat = 'H'
	recDone      = 'D'
	recVerdict   = 'V'

	recShardMeta = 'S'
	recShardCkpt = 'C'
	recShardBeat = 'H'
	recShardDone = 'R'
)

var errTruncatedRec = errors.New("drainpool: truncated journal record")

// encHeader starts a record: tag byte plus the given uvarint fields.
func encHeader(tag byte, fields ...uint64) []byte {
	b := []byte{tag}
	for _, f := range fields {
		b = binary.AppendUvarint(b, f)
	}
	return b
}

// decFields consumes n uvarint fields after the tag byte, returning
// them and the remaining payload.
func decFields(rec []byte, n int) ([]uint64, []byte, error) {
	if len(rec) < 1 {
		return nil, nil, errTruncatedRec
	}
	b := rec[1:]
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		v, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, nil, errTruncatedRec
		}
		out[i] = v
		b = b[sz:]
	}
	return out, b, nil
}

func encPartition(gen, shards int, ckpt []byte) []byte {
	return append(encHeader(recPartition, uint64(gen), uint64(shards)), ckpt...)
}

func decPartition(rec []byte) (gen, shards int, ckpt []byte, err error) {
	f, rest, err := decFields(rec, 2)
	if err != nil {
		return 0, 0, nil, err
	}
	if len(rest) == 0 {
		return 0, 0, nil, fmt.Errorf("drainpool: partition record for generation %d has no checkpoint", f[0])
	}
	return int(f[0]), int(f[1]), rest, nil
}

func encLease(gen, shard, attempt int, expiryUnixNano int64) []byte {
	return encHeader(recLease, uint64(gen), uint64(shard), uint64(attempt), uint64(expiryUnixNano))
}

func decLease(rec []byte) (gen, shard, attempt int, expiryUnixNano int64, err error) {
	f, _, err := decFields(rec, 4)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return int(f[0]), int(f[1]), int(f[2]), int64(f[3]), nil
}

func encPoolHeartbeat(gen, shard int, size int64) []byte {
	return encHeader(recHeartbeat, uint64(gen), uint64(shard), uint64(size))
}

func encDone(gen, shard int, result []byte) []byte {
	return append(encHeader(recDone, uint64(gen), uint64(shard)), result...)
}

func decDone(rec []byte) (gen, shard int, result []byte, err error) {
	f, rest, err := decFields(rec, 2)
	if err != nil {
		return 0, 0, nil, err
	}
	return int(f[0]), int(f[1]), rest, nil
}

func encVerdict(result []byte) []byte {
	return append([]byte{recVerdict}, result...)
}

func encShardMeta(gen, shard int) []byte {
	return encHeader(recShardMeta, uint64(gen), uint64(shard))
}

func decShardMeta(rec []byte) (gen, shard int, err error) {
	f, _, err := decFields(rec, 2)
	if err != nil {
		return 0, 0, err
	}
	return int(f[0]), int(f[1]), nil
}

func encShardCkpt(ckpt []byte) []byte {
	return append([]byte{recShardCkpt}, ckpt...)
}

func encShardDone(result []byte) []byte {
	return append([]byte{recShardDone}, result...)
}
