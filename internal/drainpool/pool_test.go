package drainpool

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ringrobots/internal/feasibility"
	"ringrobots/internal/journal"
)

// The fault suite re-execs this test binary as worker (and coordinator)
// processes, env-gated like the checkpoint fault tests. Every worker is
// a real OS process so kill -9 is a real kill -9.
const (
	envWorker     = "RINGROBOTS_POOL_WORKER"
	envCoord      = "RINGROBOTS_POOL_COORD"
	envJournal    = "RINGROBOTS_POOL_JOURNAL"
	envDir        = "RINGROBOTS_POOL_DIR"
	envBudget     = "RINGROBOTS_POOL_BUDGET"
	envCkptEvery  = "RINGROBOTS_POOL_CKPT_EVERY"
	envCrashAfter = "RINGROBOTS_POOL_CRASH_AFTER"
	envWedge      = "RINGROBOTS_POOL_WEDGE"
)

func atoiEnv(key string) int {
	n, _ := strconv.Atoi(os.Getenv(key))
	return n
}

// TestPoolWorkerHelper is the worker subprocess body, not a test.
func TestPoolWorkerHelper(t *testing.T) {
	if os.Getenv(envWorker) != "1" {
		t.Skip("subprocess helper")
	}
	path := os.Getenv(envJournal)
	if os.Getenv(envWedge) == "1" {
		// Hold the shard journal's flock without ever appending: a live
		// but wedged worker. Journal growth is the liveness signal, so
		// the coordinator must expire this lease and reassign.
		log, err := journal.Open(path, journal.SyncAlways)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer log.Close()
		time.Sleep(time.Hour)
		os.Exit(0)
	}
	opt := WorkerOptions{
		Budget:             atoiEnv(envBudget),
		CheckpointEvery:    atoiEnv(envCkptEvery),
		Heartbeat:          50 * time.Millisecond,
		CrashAfterBranches: int64(atoiEnv(envCrashAfter)),
	}
	if err := RunShard(context.Background(), path, opt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// launchPlan builds worker commands for the coordinator, with optional
// fault injection decided per spec (so e.g. only first attempts crash).
type launchPlan struct {
	mu         sync.Mutex
	crashAfter func(WorkerSpec) int64
	wedge      func(WorkerSpec) bool
}

func (p *launchPlan) launch(spec WorkerSpec) *exec.Cmd {
	p.mu.Lock()
	defer p.mu.Unlock()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestPoolWorkerHelper$")
	env := append(os.Environ(),
		envWorker+"=1",
		envJournal+"="+spec.JournalPath,
		fmt.Sprintf("%s=%d", envBudget, spec.Budget),
		fmt.Sprintf("%s=%d", envCkptEvery, spec.CheckpointEvery),
	)
	if p.crashAfter != nil {
		if n := p.crashAfter(spec); n > 0 {
			env = append(env, fmt.Sprintf("%s=%d", envCrashAfter, n))
		}
	}
	if p.wedge != nil && p.wedge(spec) {
		env = append(env, envWedge+"=1")
	}
	cmd.Env = env
	return cmd
}

func oracleVerdict(t *testing.T, inst feasibility.Instance) feasibility.Result {
	t.Helper()
	s := inst.Solver()
	s.Workers = 1
	res, err := s.Solve()
	if err != nil {
		t.Fatalf("oracle solve (%d,%d): %v", inst.N, inst.K, err)
	}
	return res
}

// checkAgainstOracle asserts the sharded drain settled the same
// question the same way: verdict, tier, and survivor existence.
// Counters like TablesExplored are deliberately NOT compared — shard
// boundaries and reassignment change how often tables are re-examined
// without changing what was decided.
func checkAgainstOracle(t *testing.T, got, want feasibility.Result) {
	t.Helper()
	if got.Impossible != want.Impossible {
		t.Fatalf("verdict mismatch: pool impossible=%v, oracle impossible=%v", got.Impossible, want.Impossible)
	}
	if got.Tier != want.Tier {
		t.Fatalf("tier mismatch: pool settled at tier %d, oracle at tier %d", got.Tier, want.Tier)
	}
	if (got.SurvivorTable != nil) != (want.SurvivorTable != nil) {
		t.Fatalf("survivor mismatch: pool survivor=%v, oracle survivor=%v",
			got.SurvivorTable != nil, want.SurvivorTable != nil)
	}
	if got.ExpansionUnits <= 0 {
		t.Fatalf("pool result reports no work: %+v", got)
	}
}

func testConfig(dir string, inst feasibility.Instance, plan *launchPlan) Config {
	return Config{
		Dir:             dir,
		Instance:        inst,
		Shards:          3,
		Lease:           10 * time.Second,
		Poll:            20 * time.Millisecond,
		CheckpointEvery: 4,
		BackoffBase:     time.Millisecond,
		BackoffCap:      20 * time.Millisecond,
		MaxAttempts:     6,
		Launch:          plan.launch,
	}
}

func TestPoolMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess drain pool in -short mode")
	}
	// (7,3) and (8,5) fan out to real worker subprocesses; (7,4)'s
	// frontier never reaches the shard width, covering the drain that
	// finishes entirely inside the coordinator's expansion phase.
	for _, inst := range []feasibility.Instance{{N: 7, K: 3}, {N: 7, K: 4}, {N: 8, K: 5}} {
		inst := inst
		t.Run(fmt.Sprintf("n%dk%d", inst.N, inst.K), func(t *testing.T) {
			want := oracleVerdict(t, inst)
			plan := &launchPlan{}
			cfg := testConfig(t.TempDir(), inst, plan)
			got, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("pool run: %v", err)
			}
			checkAgainstOracle(t, got, want)
			// A second Run over the same directory must replay the
			// journaled verdict without doing any work.
			again, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("idempotent rerun: %v", err)
			}
			if again.Impossible != got.Impossible || again.Tier != got.Tier {
				t.Fatalf("replayed verdict differs: first %+v, replay %+v", got, again)
			}
		})
	}
}

// TestPoolRandomWorkerCrashes kill -9s the first attempt of every shard
// at a pseudo-random branch count. Reassigned attempts resume from the
// crashed attempt's journaled checkpoints; the verdict must match the
// uninterrupted single-process run.
func TestPoolRandomWorkerCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess drain pool in -short mode")
	}
	inst := feasibility.Instance{N: 9, K: 4}
	want := oracleVerdict(t, inst)
	seed := time.Now().UnixNano()
	t.Logf("crash schedule seed: %d", seed)
	next := seed
	plan := &launchPlan{}
	plan.crashAfter = func(spec WorkerSpec) int64 {
		if spec.Attempt > 1 {
			return 0 // retries run clean, guaranteeing forward progress
		}
		next = next*6364136223846793005 + 1442695040888963407 // LCG; launch() holds plan.mu
		return 1 + (next>>33)%23
	}
	cfg := testConfig(t.TempDir(), inst, plan)
	cfg.WorkerBudget = 120 // several generations, so crashes hit many phases
	got, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("pool run with crashing workers: %v", err)
	}
	checkAgainstOracle(t, got, want)
}

// TestPoolLeaseExpiryReassignment wedges shard 0's first worker: the
// process stays alive and holds the journal flock but never appends.
// The coordinator must expire the lease, kill the holder, and complete
// the shard on a fresh attempt — no shard is silently lost.
func TestPoolLeaseExpiryReassignment(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess drain pool in -short mode")
	}
	inst := feasibility.Instance{N: 7, K: 3}
	want := oracleVerdict(t, inst)
	plan := &launchPlan{}
	plan.wedge = func(spec WorkerSpec) bool { return spec.Shard == 0 && spec.Attempt == 1 && spec.Gen == 1 }
	cfg := testConfig(t.TempDir(), inst, plan)
	cfg.Lease = 1200 * time.Millisecond
	var mu sync.Mutex
	var lines []string
	cfg.Logf = func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	got, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("pool run with wedged worker: %v", err)
	}
	checkAgainstOracle(t, got, want)
	mu.Lock()
	defer mu.Unlock()
	expired := false
	for _, l := range lines {
		if strings.Contains(l, "lease expired") {
			expired = true
		}
	}
	if !expired {
		t.Fatalf("wedged worker's lease never expired; log:\n%s", strings.Join(lines, "\n"))
	}
}

// TestPoolSuspendResume stops the drain resumable after one generation
// (MaxGenerations) and finishes it with a second Run over the same
// journal directory.
func TestPoolSuspendResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess drain pool in -short mode")
	}
	inst := feasibility.Instance{N: 7, K: 3}
	want := oracleVerdict(t, inst)
	plan := &launchPlan{}
	cfg := testConfig(t.TempDir(), inst, plan)
	cfg.WorkerBudget = 150
	cfg.MaxGenerations = 1
	if _, err := Run(context.Background(), cfg); !errors.Is(err, ErrSuspended) {
		t.Fatalf("one-generation run: want ErrSuspended, got %v", err)
	}
	cfg.MaxGenerations = 0
	got, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	checkAgainstOracle(t, got, want)
}

// TestPoolCoordinatorHelper is the coordinator subprocess body for the
// kill -9 recovery test, not a test.
func TestPoolCoordinatorHelper(t *testing.T) {
	if os.Getenv(envCoord) != "1" {
		t.Skip("subprocess helper")
	}
	plan := &launchPlan{}
	cfg := testConfig(os.Getenv(envDir), feasibility.Instance{N: 10, K: 7}, plan)
	cfg.WorkerBudget = atoiEnv(envBudget)
	cfg.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, "coord: "+format+"\n", args...) }
	res, err := Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("impossible=%v tier=%d\n", res.Impossible, res.Tier)
	os.Exit(0)
}

// TestPoolCoordinatorKillRecovery kill -9s a live coordinator mid-drain
// and resumes in-process over the same directory. The replacement must
// recover the generation from the pool journal, adopt or reassign the
// orphaned workers, and land on the single-process verdict.
func TestPoolCoordinatorKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess drain pool in -short mode")
	}
	inst := feasibility.Instance{N: 10, K: 7}
	want := oracleVerdict(t, inst)
	dir := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run", "^TestPoolCoordinatorHelper$")
	cmd.Env = append(os.Environ(), envCoord+"=1", envDir+"="+dir, fmt.Sprintf("%s=%d", envBudget, 60))
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting coordinator subprocess: %v", err)
	}

	// Wait for real drain activity — at least one seeded shard journal —
	// then kill the coordinator without any warning.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("coordinator subprocess never seeded a shard journal")
		}
		matches, _ := filepath.Glob(filepath.Join(dir, "shard-g*.journal"))
		if len(matches) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // let workers spawn so orphans exist
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill -9 coordinator: %v", err)
	}
	cmd.Wait()

	// The dead coordinator's flock is released by the kernel; wait for
	// the pool journal to become claimable.
	for {
		if _, locked := journal.LockHolder(poolJournalPath(dir)); !locked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool journal still locked after coordinator death")
		}
		time.Sleep(10 * time.Millisecond)
	}

	plan := &launchPlan{}
	cfg := testConfig(dir, inst, plan)
	cfg.WorkerBudget = 60
	got, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("recovery run: %v", err)
	}
	checkAgainstOracle(t, got, want)
}
