package drainpool

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"syscall"
	"time"

	"ringrobots/internal/faultfs"
	"ringrobots/internal/feasibility"
	"ringrobots/internal/journal"
)

// WorkerOptions tunes one shard run. The shard's identity — instance,
// tier, frontier — comes entirely from the shard journal, so a worker
// needs nothing but the journal path (which is what makes multi-machine
// operation a shared journal directory away).
type WorkerOptions struct {
	// Budget bounds expansion units for this leg (0: solver default).
	Budget int
	// CheckpointEvery journals a checkpoint every that many branches
	// (0: only the terminal result is journaled).
	CheckpointEvery int
	// SolverWorkers sizes the in-process search pool (0: one worker,
	// keeping shard legs deterministic).
	SolverWorkers int
	// Heartbeat is the cadence of liveness appends (0: 1s). It must be
	// comfortably below the coordinator's lease.
	Heartbeat time.Duration
	// CrashAfterBranches, when positive, SIGKILLs the worker's own
	// process after that many branches — the fault suite's crashpoint.
	CrashAfterBranches int64
	// Logf receives progress lines (nil: silent).
	Logf func(format string, args ...any)
	// FS is the filesystem seam the shard journal goes through; nil
	// means the real OS. Testing and storage fault injection only.
	FS faultfs.FS
}

// RunShard executes one leased shard: open the shard journal (taking
// its flock — the lease-holding token other processes can observe),
// resume the latest journaled checkpoint under StopAfterTier, and
// append the terminal ShardResult. Execution is at-least-once safe:
// if a previous attempt already journaled a result, RunShard returns
// immediately without recomputing, and a crashed attempt's periodic
// checkpoints let the next attempt resume mid-shard instead of
// restarting.
//
// Storage failure surrenders the lease instead of wedging: if a
// heartbeat or checkpoint append fails, the solve is cancelled, the
// journal closed (releasing the flock — the cross-machine-visible
// lease token, which a coordinator pid-kill could never reclaim from
// another host), and RunShard returns the error; the coordinator's
// normal liveness expiry then reassigns the shard. The terminal
// result append is retried a few times with backoff (transient
// ENOSPC-style errors are rolled back by the journal and safe to
// retry), except after a sticky fsync failure, where no append on
// this handle can succeed.
func RunShard(ctx context.Context, journalPath string, opt WorkerOptions) error {
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	fsys := opt.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	log, err := journal.OpenFS(fsys, journalPath, journal.SyncAlways)
	if err != nil {
		return err
	}
	defer log.Close()

	shard := -1
	var ckptRaw []byte
	done := false
	err = log.ForEach(func(p []byte) error {
		if len(p) == 0 {
			return errors.New("drainpool: empty shard journal record")
		}
		switch p[0] {
		case recShardMeta:
			_, s, err := decShardMeta(p)
			if err != nil {
				return err
			}
			shard = s
		case recShardCkpt:
			ckptRaw = append(ckptRaw[:0], p[1:]...)
		case recShardDone:
			done = true
		}
		return nil
	})
	if err != nil {
		return err
	}
	if shard < 0 {
		return fmt.Errorf("drainpool: %s has no shard meta record (not seeded by a coordinator?)", journalPath)
	}
	if done {
		logf("shard %d: result already journaled, nothing to do", shard)
		return nil
	}
	if ckptRaw == nil {
		return fmt.Errorf("drainpool: %s has no checkpoint to resume", journalPath)
	}
	ck, err := feasibility.UnmarshalCheckpoint(ckptRaw)
	if err != nil {
		return err
	}
	s, err := ck.NewSolver()
	if err != nil {
		return err
	}
	s.StopAfterTier = true // the coordinator's merge decides escalation
	s.Workers = 1
	if opt.SolverWorkers > 0 {
		s.Workers = opt.SolverWorkers
	}
	if opt.Budget > 0 {
		s.MaxExpansions = opt.Budget
	}

	// journal.Log is single-goroutine; the heartbeat ticker and the
	// checkpoint callback both append, so serialize them.
	var mu sync.Mutex
	appendRec := func(p []byte) error {
		mu.Lock()
		defer mu.Unlock()
		return log.Append(p)
	}
	// Storage-failure surrender: the first failed append cancels the
	// solve so the worker gives the lease back promptly instead of
	// burning it on a solve whose progress can no longer be journaled.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	var failMu sync.Mutex
	var storageErr error
	noteStorageFailure := func(err error) {
		failMu.Lock()
		if storageErr == nil {
			storageErr = err
		}
		failMu.Unlock()
		cancelRun()
	}
	if opt.CheckpointEvery > 0 {
		s.CheckpointEvery = opt.CheckpointEvery
		s.OnCheckpoint = func(cp *feasibility.Checkpoint) error {
			raw, err := cp.MarshalBinary()
			if err != nil {
				return err
			}
			if err := appendRec(encShardCkpt(raw)); err != nil {
				noteStorageFailure(err)
				return err
			}
			return nil
		}
	}
	if opt.CrashAfterBranches > 0 {
		s.BranchHook = func(done int64) {
			if done >= opt.CrashAfterBranches {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}
	hb := opt.Heartbeat
	if hb <= 0 {
		hb = time.Second
	}
	stop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				// The append itself is the liveness signal: the
				// coordinator's lease extends only on journal growth, so a
				// wedged process that merely stays alive still loses its
				// lease. A failed beat means this worker can no longer
				// prove liveness OR journal progress — surrender.
				if err := appendRec([]byte{recShardBeat}); err != nil {
					logf("shard heartbeat append failed, surrendering lease: %v", err)
					noteStorageFailure(err)
					return
				}
			}
		}
	}()

	res, cp, err := s.Resume(runCtx, ck)
	close(stop)
	hbWG.Wait()

	failMu.Lock()
	serr := storageErr
	failMu.Unlock()
	if serr != nil {
		// The defer closes the journal, releasing the flock: the lease
		// is surrendered and the coordinator's liveness expiry will
		// reassign this shard (resuming from the last good checkpoint).
		return fmt.Errorf("drainpool: shard %d surrendering lease: journal append failed: %w", shard, serr)
	}

	r := feasibility.ShardResult{Shard: shard, Counters: res}
	r.Counters.SurvivorTable = nil
	switch {
	case err == nil && res.Impossible:
		r.Refuted = true
		r.Prune = s.PruneExport()
	case err == nil && res.SurvivorTable != nil:
		r.Survivor = res.SurvivorTable
		r.Prune = s.PruneExport()
	case err != nil && cp != nil:
		// Budget or cancellation: report the remaining frontier; the
		// coordinator re-suspends it into the merged checkpoint.
		r.Suspended = cp
	case err != nil:
		return fmt.Errorf("drainpool: shard %d failed: %w", shard, err)
	default:
		return fmt.Errorf("drainpool: shard %d ended without a classifiable outcome", shard)
	}
	raw, err := r.MarshalBinary()
	if err != nil {
		return err
	}
	// The terminal record is worth a few retries: journal write errors
	// are rolled back (no torn bytes), so re-appending is safe — but a
	// sticky fsync failure (journal.ErrFailed) can never succeed on
	// this handle, so surrender immediately there.
	doneRec := encShardDone(raw)
	var aerr error
	for attempt := 0; attempt < 3; attempt++ {
		if aerr = appendRec(doneRec); aerr == nil {
			break
		}
		if errors.Is(aerr, journal.ErrFailed) {
			break
		}
		time.Sleep(time.Duration(attempt+1) * 50 * time.Millisecond)
	}
	if aerr != nil {
		return fmt.Errorf("drainpool: shard %d surrendering lease: journal append failed: %w", shard, aerr)
	}
	switch {
	case r.Refuted:
		logf("shard %d: subtree refuted (%d tables)", shard, res.TablesExplored)
	case r.Survivor != nil:
		logf("shard %d: survivor found (%d entries)", shard, len(r.Survivor))
	default:
		logf("shard %d: suspended (%d open branches)", shard, r.Suspended.Stats().FrontierNodes)
	}
	return nil
}
