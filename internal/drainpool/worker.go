package drainpool

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"syscall"
	"time"

	"ringrobots/internal/feasibility"
	"ringrobots/internal/journal"
)

// WorkerOptions tunes one shard run. The shard's identity — instance,
// tier, frontier — comes entirely from the shard journal, so a worker
// needs nothing but the journal path (which is what makes multi-machine
// operation a shared journal directory away).
type WorkerOptions struct {
	// Budget bounds expansion units for this leg (0: solver default).
	Budget int
	// CheckpointEvery journals a checkpoint every that many branches
	// (0: only the terminal result is journaled).
	CheckpointEvery int
	// SolverWorkers sizes the in-process search pool (0: one worker,
	// keeping shard legs deterministic).
	SolverWorkers int
	// Heartbeat is the cadence of liveness appends (0: 1s). It must be
	// comfortably below the coordinator's lease.
	Heartbeat time.Duration
	// CrashAfterBranches, when positive, SIGKILLs the worker's own
	// process after that many branches — the fault suite's crashpoint.
	CrashAfterBranches int64
	// Logf receives progress lines (nil: silent).
	Logf func(format string, args ...any)
}

// RunShard executes one leased shard: open the shard journal (taking
// its flock — the lease-holding token other processes can observe),
// resume the latest journaled checkpoint under StopAfterTier, and
// append the terminal ShardResult. Execution is at-least-once safe:
// if a previous attempt already journaled a result, RunShard returns
// immediately without recomputing, and a crashed attempt's periodic
// checkpoints let the next attempt resume mid-shard instead of
// restarting.
func RunShard(ctx context.Context, journalPath string, opt WorkerOptions) error {
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	log, err := journal.Open(journalPath, journal.SyncAlways)
	if err != nil {
		return err
	}
	defer log.Close()

	shard := -1
	var ckptRaw []byte
	done := false
	err = log.ForEach(func(p []byte) error {
		if len(p) == 0 {
			return errors.New("drainpool: empty shard journal record")
		}
		switch p[0] {
		case recShardMeta:
			_, s, err := decShardMeta(p)
			if err != nil {
				return err
			}
			shard = s
		case recShardCkpt:
			ckptRaw = append(ckptRaw[:0], p[1:]...)
		case recShardDone:
			done = true
		}
		return nil
	})
	if err != nil {
		return err
	}
	if shard < 0 {
		return fmt.Errorf("drainpool: %s has no shard meta record (not seeded by a coordinator?)", journalPath)
	}
	if done {
		logf("shard %d: result already journaled, nothing to do", shard)
		return nil
	}
	if ckptRaw == nil {
		return fmt.Errorf("drainpool: %s has no checkpoint to resume", journalPath)
	}
	ck, err := feasibility.UnmarshalCheckpoint(ckptRaw)
	if err != nil {
		return err
	}
	s, err := ck.NewSolver()
	if err != nil {
		return err
	}
	s.StopAfterTier = true // the coordinator's merge decides escalation
	s.Workers = 1
	if opt.SolverWorkers > 0 {
		s.Workers = opt.SolverWorkers
	}
	if opt.Budget > 0 {
		s.MaxExpansions = opt.Budget
	}

	// journal.Log is single-goroutine; the heartbeat ticker and the
	// checkpoint callback both append, so serialize them.
	var mu sync.Mutex
	appendRec := func(p []byte) error {
		mu.Lock()
		defer mu.Unlock()
		return log.Append(p)
	}
	if opt.CheckpointEvery > 0 {
		s.CheckpointEvery = opt.CheckpointEvery
		s.OnCheckpoint = func(cp *feasibility.Checkpoint) error {
			raw, err := cp.MarshalBinary()
			if err != nil {
				return err
			}
			return appendRec(encShardCkpt(raw))
		}
	}
	if opt.CrashAfterBranches > 0 {
		s.BranchHook = func(done int64) {
			if done >= opt.CrashAfterBranches {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}
	hb := opt.Heartbeat
	if hb <= 0 {
		hb = time.Second
	}
	stop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				// The append itself is the liveness signal: the
				// coordinator's lease extends only on journal growth, so a
				// wedged process that merely stays alive still loses its
				// lease.
				appendRec([]byte{recShardBeat})
			}
		}
	}()

	res, cp, err := s.Resume(ctx, ck)
	close(stop)
	hbWG.Wait()

	r := feasibility.ShardResult{Shard: shard, Counters: res}
	r.Counters.SurvivorTable = nil
	switch {
	case err == nil && res.Impossible:
		r.Refuted = true
		r.Prune = s.PruneExport()
	case err == nil && res.SurvivorTable != nil:
		r.Survivor = res.SurvivorTable
		r.Prune = s.PruneExport()
	case err != nil && cp != nil:
		// Budget or cancellation: report the remaining frontier; the
		// coordinator re-suspends it into the merged checkpoint.
		r.Suspended = cp
	case err != nil:
		return fmt.Errorf("drainpool: shard %d failed: %w", shard, err)
	default:
		return fmt.Errorf("drainpool: shard %d ended without a classifiable outcome", shard)
	}
	raw, err := r.MarshalBinary()
	if err != nil {
		return err
	}
	if err := appendRec(encShardDone(raw)); err != nil {
		return err
	}
	switch {
	case r.Refuted:
		logf("shard %d: subtree refuted (%d tables)", shard, res.TablesExplored)
	case r.Survivor != nil:
		logf("shard %d: survivor found (%d entries)", shard, len(r.Survivor))
	default:
		logf("shard %d: suspended (%d open branches)", shard, r.Suspended.Stats().FrontierNodes)
	}
	return nil
}
