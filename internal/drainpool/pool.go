// Package drainpool coordinates a fault-tolerant distributed drain of
// one table-search instance: a coordinator partitions a suspended
// checkpoint's open frontier into independent subtree shards
// (feasibility.Partition), hands each shard to a worker process under
// a time-boxed lease, and merges the shard outcomes
// (feasibility.Merge) into the next generation's checkpoint or the
// final verdict.
//
// Fault model: everything may crash. Workers run at-least-once — a
// crashed, wedged or lease-expired worker is reassigned with capped
// exponential backoff, and the merge step dedupes per shard id, so a
// slow twin finishing late is harmless. The coordinator journals its
// state (partition, leases, shard completions, verdict) through
// internal/journal; a coordinator killed -9 recovers the lease table
// on reopen, adopts workers that are still alive (their shard-journal
// flocks make them observable), and re-derives everything else
// deterministically from the partition record. The pool journal's own
// flock guarantees a single live coordinator per directory.
package drainpool

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"ringrobots/internal/feasibility"
	"ringrobots/internal/journal"
)

// ErrSuspended reports a drain stopped resumable: the pool journal
// holds a partition record (plus any shard completions) from which the
// next Run continues.
var ErrSuspended = errors.New("drainpool: drain suspended (resumable)")

// errWideEnough aborts the in-process frontier expansion once the
// frontier can feed every shard. It travels through the solver's
// OnCheckpoint error path, which is terminal by design — the expansion
// keeps the captured checkpoint itself.
var errWideEnough = errors.New("drainpool: frontier wide enough")

// WorkerSpec is everything a launcher needs to start one worker
// process for one shard attempt.
type WorkerSpec struct {
	Gen, Shard, Attempt int
	JournalPath         string
	Budget              int
	CheckpointEvery     int
	SolverWorkers       int
	Heartbeat           time.Duration
}

// Config parameterizes a coordinator run.
type Config struct {
	// Dir is the journal directory: pool.journal plus one journal per
	// (generation, shard). Sharing it — a mount, for multi-machine —
	// is the entire distribution mechanism.
	Dir string
	// Instance identifies the drain when the directory holds no prior
	// state and Seed is nil: the drain starts from the instance's root.
	Instance feasibility.Instance
	// Seed optionally starts the drain from an existing checkpoint
	// (e.g. one produced by a single-process cmd/drain journal).
	// Ignored when the pool journal already has a partition record.
	Seed *feasibility.Checkpoint
	// Shards is the partition width per generation.
	Shards int
	// MaxProcs caps concurrently running workers (0: Shards).
	MaxProcs int
	// Lease is how long a worker may go without journal growth before
	// its lease expires and the shard is reassigned (0: 30s).
	Lease time.Duration
	// Poll is the coordinator's monitoring cadence (0: 150ms).
	Poll time.Duration
	// WorkerBudget bounds each worker leg's expansion units (0:
	// unlimited — shards run to their outcome).
	WorkerBudget int
	// CheckpointEvery is the workers' checkpoint cadence in branches
	// (0: 64).
	CheckpointEvery int
	// SolverWorkers sizes each worker's in-process search pool (0: 1).
	SolverWorkers int
	// Heartbeat is the workers' liveness-append cadence (0: Lease/4,
	// capped at 1s).
	Heartbeat time.Duration
	// MaxAttempts bounds attempts per shard per generation (0: 8).
	MaxAttempts int
	// BackoffBase and BackoffCap shape the reassignment backoff
	// (0: 100ms base, 5s cap). Attempt n waits base·2ⁿ⁻¹ plus jitter,
	// capped.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// MaxGenerations stops the run resumable after that many
	// partition/run/merge cycles (0: run to the verdict).
	MaxGenerations int
	// Launch builds the worker process for a spec. Required: the
	// coordinator never guesses its own binary. cmd/drain passes a
	// self-exec launcher; tests re-exec the test binary.
	Launch func(WorkerSpec) *exec.Cmd
	// Logf receives progress lines (nil: silent).
	Logf func(format string, args ...any)
}

func (cfg Config) withDefaults() Config {
	if cfg.MaxProcs <= 0 {
		cfg.MaxProcs = cfg.Shards
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 30 * time.Second
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 150 * time.Millisecond
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 64
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = cfg.Lease / 4
		if cfg.Heartbeat > time.Second {
			cfg.Heartbeat = time.Second
		}
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return cfg
}

// Validate reports every configuration problem at once (errors.Join),
// the same fail-fast contract the service and CLIs use.
func (cfg Config) Validate() error {
	var errs []error
	if cfg.Dir == "" {
		errs = append(errs, errors.New("journal directory (Dir) is required"))
	}
	if cfg.Shards < 1 {
		errs = append(errs, fmt.Errorf("Shards must be >= 1, got %d", cfg.Shards))
	}
	if cfg.Launch == nil {
		errs = append(errs, errors.New("a worker Launch function is required"))
	}
	if cfg.Seed == nil {
		if err := cfg.Instance.Validate(); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("drainpool: invalid config: %w", errors.Join(errs...))
	}
	return nil
}

func poolJournalPath(dir string) string { return filepath.Join(dir, "pool.journal") }

func shardJournalPath(dir string, gen, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-g%03d-s%03d.journal", gen, shard))
}

// Run drives the drain to its verdict (or to a resumable suspension:
// ErrSuspended on context cancellation or MaxGenerations). Calling Run
// again over the same directory resumes exactly where the last
// coordinator — dead or alive when it stopped — left off; a journaled
// verdict is returned idempotently without any work.
func Run(ctx context.Context, cfg Config) (feasibility.Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return feasibility.Result{}, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return feasibility.Result{}, err
	}
	plog, err := journal.Open(poolJournalPath(cfg.Dir), journal.SyncAlways)
	if err != nil {
		var le *journal.LockedError
		if errors.As(err, &le) {
			return feasibility.Result{}, fmt.Errorf("drainpool: another coordinator (pid %d) owns %s: %w", le.HolderPID, cfg.Dir, err)
		}
		return feasibility.Result{}, err
	}
	defer plog.Close()

	c := &coordinator{cfg: cfg, plog: plog}
	return c.run(ctx)
}

type coordinator struct {
	cfg  Config
	plog *journal.Log

	gen      int
	shards   int // partition width of the current generation
	base     *feasibility.Checkpoint
	done     map[int]feasibility.ShardResult
	attempts map[int]int
}

// recover replays the pool journal. It returns the journaled verdict
// if one exists; otherwise c.base/gen/shards/done/attempts reflect the
// newest partition record (base stays nil for a fresh directory).
func (c *coordinator) recover() (*feasibility.Result, error) {
	var verdict *feasibility.Result
	c.done = map[int]feasibility.ShardResult{}
	c.attempts = map[int]int{}
	err := c.plog.ForEach(func(p []byte) error {
		if len(p) == 0 {
			return errors.New("drainpool: empty pool journal record")
		}
		switch p[0] {
		case recPartition:
			gen, shards, raw, err := decPartition(p)
			if err != nil {
				return err
			}
			ck, err := feasibility.UnmarshalCheckpoint(raw)
			if err != nil {
				return err
			}
			c.gen, c.shards, c.base = gen, shards, ck
			c.done = map[int]feasibility.ShardResult{}
			c.attempts = map[int]int{}
		case recLease:
			gen, shard, attempt, _, err := decLease(p)
			if err != nil {
				return err
			}
			if gen == c.gen && attempt > c.attempts[shard] {
				c.attempts[shard] = attempt
			}
		case recDone:
			gen, shard, raw, err := decDone(p)
			if err != nil {
				return err
			}
			if gen != c.gen {
				return nil
			}
			r, err := feasibility.UnmarshalShardResult(raw)
			if err != nil {
				return err
			}
			if _, ok := c.done[shard]; !ok { // first report wins: idempotent merge input
				c.done[shard] = *r
			}
		case recVerdict:
			res, err := feasibility.UnmarshalResult(p[1:])
			if err != nil {
				return err
			}
			verdict = &res
		case recHeartbeat:
			// informational only
		default:
			return fmt.Errorf("drainpool: unknown pool journal record tag %q", p[0])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return verdict, nil
}

func (c *coordinator) run(ctx context.Context) (feasibility.Result, error) {
	verdict, err := c.recover()
	if err != nil {
		return feasibility.Result{}, err
	}
	if verdict != nil {
		c.cfg.Logf("verdict already journaled: impossible=%v tier=%d", verdict.Impossible, verdict.Tier)
		return *verdict, nil
	}
	recovered := c.base != nil
	if recovered {
		c.cfg.Logf("recovered generation %d: %d shards, %d already done", c.gen, c.shards, len(c.done))
	} else {
		c.shards = c.cfg.Shards // valid even if we suspend before the first partition
		if c.cfg.Seed != nil {
			c.base = c.cfg.Seed
		} else {
			root, err := feasibility.RootCheckpoint(c.cfg.Instance.Solver())
			if err != nil {
				return feasibility.Result{}, err
			}
			c.base = root
		}
	}

	for cycle := 0; ; cycle++ {
		if c.cfg.MaxGenerations > 0 && cycle >= c.cfg.MaxGenerations {
			if err := c.persistBase(); err != nil {
				return feasibility.Result{}, err
			}
			c.cfg.Logf("generation budget (%d) reached; suspending", c.cfg.MaxGenerations)
			return feasibility.Result{}, ErrSuspended
		}
		if !recovered {
			// Widen the frontier until every shard gets a subtree, then
			// open the generation with a fresh partition record. Compacting
			// to that single record also retires the previous generation's
			// lease/done history, which the new base fully subsumes.
			final, err := c.expand(ctx)
			if err != nil {
				if errors.Is(err, ErrSuspended) {
					if perr := c.persistBase(); perr != nil {
						return feasibility.Result{}, perr
					}
				}
				return feasibility.Result{}, err
			}
			if final != nil {
				return c.finish(*final)
			}
			c.gen++
			c.shards = c.cfg.Shards
			c.done = map[int]feasibility.ShardResult{}
			c.attempts = map[int]int{}
			if err := c.persistBase(); err != nil {
				return feasibility.Result{}, err
			}
		}
		recovered = false

		parts, err := c.base.Partition(c.shards)
		if err != nil {
			return feasibility.Result{}, err
		}
		st := c.base.Stats()
		c.cfg.Logf("generation %d: tier %d (%d/%d), %d open branches across %d shards, %d done",
			c.gen, st.Tier, st.TierIndex+1, st.TierCount, st.FrontierNodes, len(parts), len(c.done))
		if err := c.runGeneration(ctx, parts); err != nil {
			return feasibility.Result{}, err
		}
		results := make([]feasibility.ShardResult, 0, len(parts))
		for shard := 0; shard < len(parts); shard++ {
			r, ok := c.done[shard]
			if !ok {
				return feasibility.Result{}, fmt.Errorf("drainpool: generation %d finished without a result for shard %d", c.gen, shard)
			}
			results = append(results, r)
		}
		res, next, err := c.base.Merge(len(parts), results)
		if err != nil {
			return feasibility.Result{}, err
		}
		c.cleanupGeneration(len(parts))
		if res != nil {
			return c.finish(*res)
		}
		c.base = next
	}
}

// finish journals the verdict and returns it. The verdict record lands
// after the current partition record, so recovery prefers it.
func (c *coordinator) finish(res feasibility.Result) (feasibility.Result, error) {
	raw, err := feasibility.MarshalResult(res)
	if err != nil {
		return feasibility.Result{}, err
	}
	if err := c.plog.Append(encVerdict(raw)); err != nil {
		return feasibility.Result{}, err
	}
	c.cfg.Logf("verdict: impossible=%v tier=%d tables=%d units=%d",
		res.Impossible, res.Tier, res.TablesExplored, res.ExpansionUnits)
	return res, nil
}

// persistBase makes c.base the journal's sole partition record
// (atomic compaction), from which everything else is re-derivable.
func (c *coordinator) persistBase() error {
	raw, err := c.base.MarshalBinary()
	if err != nil {
		return err
	}
	return c.plog.Compact([][]byte{encPartition(c.gen, c.shards, raw)})
}

// expand runs the drain in-process (single worker, deterministic)
// until the frontier is at least Shards wide, the tier escalates, or
// the drain finishes. Non-nil final means the drain reached its
// verdict during expansion.
func (c *coordinator) expand(ctx context.Context) (final *feasibility.Result, err error) {
	for {
		if c.base.Stats().FrontierNodes >= c.cfg.Shards {
			return nil, nil
		}
		s, err := c.base.NewSolver()
		if err != nil {
			return nil, err
		}
		s.Workers = 1
		s.StopAfterTier = true
		s.CheckpointEvery = 1
		var captured *feasibility.Checkpoint
		s.OnCheckpoint = func(cp *feasibility.Checkpoint) error {
			if cp.Stats().FrontierNodes >= c.cfg.Shards {
				captured = cp
				return errWideEnough
			}
			return nil
		}
		res, cp, err := s.Resume(ctx, c.base)
		switch {
		case errors.Is(err, errWideEnough) && captured != nil:
			c.base = captured
		case err == nil && res.Impossible:
			return &res, nil
		case err == nil && res.SurvivorTable != nil:
			st := c.base.Stats()
			if st.TierIndex == st.TierCount-1 {
				return &res, nil
			}
			next, aerr := c.base.AdvanceTier(res.SurvivorTable, res, s.PruneExport())
			if aerr != nil {
				return nil, aerr
			}
			c.cfg.Logf("expansion: tier %d survived, escalating", st.Tier)
			c.base = next
		case err != nil && cp != nil:
			// Context cancellation mid-expansion: keep the progress.
			c.base = cp
			return nil, fmt.Errorf("%w: %w", ErrSuspended, err)
		default:
			return nil, err
		}
	}
}

// worker tracks one running shard attempt: either a subprocess this
// coordinator launched, or an adopted orphan — a live worker from a
// previous coordinator, observable only through its shard-journal
// flock and growth.
type worker struct {
	shard    int
	attempt  int
	cmd      *exec.Cmd
	exitCh   chan error
	exited   bool
	adopted  bool
	pid      int
	lastSize int64
	deadline time.Time
}

func (c *coordinator) runGeneration(ctx context.Context, parts []*feasibility.Checkpoint) error {
	pending := map[int]bool{}
	for shard := range parts {
		if _, ok := c.done[shard]; !ok {
			pending[shard] = true
		}
	}
	running := map[int]*worker{}
	backoffUntil := map[int]time.Time{}
	defer func() {
		for _, w := range running {
			c.killWorker(w)
		}
	}()
	for len(c.done) < len(parts) {
		if ctx.Err() != nil {
			c.cfg.Logf("context canceled; suspending generation %d (%d/%d shards done)", c.gen, len(c.done), len(parts))
			return fmt.Errorf("%w: %w", ErrSuspended, ctx.Err())
		}
		// Launch (or adopt) work for pending shards, lowest id first.
		ids := make([]int, 0, len(pending))
		for shard := range pending {
			ids = append(ids, shard)
		}
		sort.Ints(ids)
		now := time.Now()
		for _, shard := range ids {
			if len(running) >= c.cfg.MaxProcs {
				break
			}
			if now.Before(backoffUntil[shard]) {
				continue
			}
			w, err := c.startShard(parts, shard)
			if err != nil {
				return err
			}
			if w == nil { // launch failed; backoff like a crash
				c.noteCrash(shard, backoffUntil)
				if c.attempts[shard] >= c.cfg.MaxAttempts {
					return fmt.Errorf("drainpool: shard %d failed to launch after %d attempts", shard, c.attempts[shard])
				}
				continue
			}
			running[shard] = w
			delete(pending, shard)
		}
		// Monitor running workers.
		for shard, w := range running {
			path := shardJournalPath(c.cfg.Dir, c.gen, shard)
			if !w.adopted && !w.exited {
				select {
				case <-w.exitCh:
					w.exited = true
				default:
				}
			}
			res, size := c.scanShardResult(path)
			if res != nil {
				raw, err := res.MarshalBinary()
				if err != nil {
					return err
				}
				if err := c.plog.Append(encDone(c.gen, shard, raw)); err != nil {
					return err
				}
				c.done[shard] = *res
				delete(running, shard)
				if !w.adopted && !w.exited {
					// Result journaled but the process is still flushing;
					// it owes nothing more.
					go func(w *worker) { <-w.exitCh }(w)
				}
				c.cfg.Logf("generation %d: shard %d done (%d/%d)", c.gen, shard, len(c.done), len(parts))
				continue
			}
			if size > w.lastSize {
				// Journal growth is the liveness signal: extend the lease.
				w.lastSize = size
				w.deadline = time.Now().Add(c.cfg.Lease)
				if err := c.plog.Append(encPoolHeartbeat(c.gen, shard, size)); err != nil {
					return err
				}
				continue
			}
			crashed := false
			if w.adopted {
				if _, locked := journal.LockHolder(path); !locked {
					crashed = true // the orphan died without a result
				}
			} else if w.exited {
				crashed = true
			}
			if !crashed && time.Now().After(w.deadline) {
				c.cfg.Logf("generation %d: shard %d lease expired (no journal growth for %v); killing holder", c.gen, shard, c.cfg.Lease)
				c.killWorker(w)
				crashed = true
			}
			if crashed {
				delete(running, shard)
				pending[shard] = true
				c.noteCrash(shard, backoffUntil)
				if c.attempts[shard] >= c.cfg.MaxAttempts {
					return fmt.Errorf("drainpool: shard %d of generation %d failed %d attempts; giving up (no shard is silently lost)",
						shard, c.gen, c.attempts[shard])
				}
				c.cfg.Logf("generation %d: shard %d worker lost (attempt %d); reassigning after backoff", c.gen, shard, c.attempts[shard])
			}
		}
		time.Sleep(c.cfg.Poll)
	}
	return nil
}

// startShard seeds the shard journal (idempotently) and launches a
// worker for it — or adopts a live orphan already holding the journal.
// A nil worker with nil error means the launch failed softly.
func (c *coordinator) startShard(parts []*feasibility.Checkpoint, shard int) (*worker, error) {
	path := shardJournalPath(c.cfg.Dir, c.gen, shard)
	if pid, locked := journal.LockHolder(path); locked {
		// A previous coordinator's worker is still on the shard: adopt it
		// under a fresh lease instead of double-running it immediately.
		c.cfg.Logf("generation %d: shard %d adopted (live worker pid %d)", c.gen, shard, pid)
		w := &worker{shard: shard, attempt: c.attempts[shard], adopted: true, pid: pid, deadline: time.Now().Add(c.cfg.Lease)}
		if fi, err := os.Stat(path); err == nil {
			w.lastSize = fi.Size()
		}
		if err := c.plog.Append(encLease(c.gen, shard, w.attempt, w.deadline.UnixNano())); err != nil {
			return nil, err
		}
		return w, nil
	}
	if err := c.seedShardJournal(path, parts[shard], shard); err != nil {
		return nil, err
	}
	c.attempts[shard]++
	attempt := c.attempts[shard]
	spec := WorkerSpec{
		Gen:             c.gen,
		Shard:           shard,
		Attempt:         attempt,
		JournalPath:     path,
		Budget:          c.cfg.WorkerBudget,
		CheckpointEvery: c.cfg.CheckpointEvery,
		SolverWorkers:   c.cfg.SolverWorkers,
		Heartbeat:       c.cfg.Heartbeat,
	}
	deadline := time.Now().Add(c.cfg.Lease)
	if err := c.plog.Append(encLease(c.gen, shard, attempt, deadline.UnixNano())); err != nil {
		return nil, err
	}
	cmd := c.cfg.Launch(spec)
	if cmd == nil {
		return nil, errors.New("drainpool: Launch returned no command")
	}
	if err := cmd.Start(); err != nil {
		c.cfg.Logf("generation %d: shard %d attempt %d failed to start: %v", c.gen, shard, attempt, err)
		return nil, nil
	}
	w := &worker{shard: shard, attempt: attempt, cmd: cmd, exitCh: make(chan error, 1), deadline: deadline}
	if fi, err := os.Stat(path); err == nil {
		w.lastSize = fi.Size()
	}
	go func() { w.exitCh <- cmd.Wait() }()
	return w, nil
}

// seedShardJournal writes the shard's meta and initial checkpoint
// records. Seeding is idempotent per record, not per file: a
// coordinator killed between the two appends leaves a journal with
// meta but no checkpoint, and the recovering coordinator must repair
// it rather than hand workers an unrunnable shard. Progress a previous
// attempt journaled (later checkpoints, even a result) is preserved.
func (c *coordinator) seedShardJournal(path string, ck *feasibility.Checkpoint, shard int) error {
	log, err := journal.Open(path, journal.SyncAlways)
	if err != nil {
		if errors.Is(err, journal.ErrLocked) {
			return nil // a live worker owns it; it is necessarily seeded
		}
		return err
	}
	defer log.Close()
	hasMeta, hasCkpt := false, false
	if err := log.ForEach(func(p []byte) error {
		if len(p) == 0 {
			return nil
		}
		switch p[0] {
		case recShardMeta:
			hasMeta = true
		case recShardCkpt:
			hasCkpt = true
		}
		return nil
	}); err != nil {
		return err
	}
	if !hasMeta {
		if err := log.Append(encShardMeta(c.gen, shard)); err != nil {
			return err
		}
	}
	if hasCkpt {
		return nil
	}
	raw, err := ck.MarshalBinary()
	if err != nil {
		return err
	}
	return log.Append(encShardCkpt(raw))
}

// scanShardResult reads the shard journal lock-free and returns its
// terminal result, if any, plus the current valid size (the liveness
// measure).
func (c *coordinator) scanShardResult(path string) (*feasibility.ShardResult, int64) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0
	}
	recs, valid := journal.Scan(buf)
	for i := len(recs) - 1; i >= 0; i-- {
		if len(recs[i]) > 0 && recs[i][0] == recShardDone {
			r, err := feasibility.UnmarshalShardResult(recs[i][1:])
			if err == nil {
				return r, int64(valid)
			}
			c.cfg.Logf("warning: %s has an undecodable result record: %v", path, err)
		}
	}
	return nil, int64(valid)
}

// noteCrash arms the capped exponential backoff (with jitter) before
// the shard may relaunch. Attempts are counted at launch (startShard),
// so the current count is the number of attempts that have now failed.
func (c *coordinator) noteCrash(shard int, backoffUntil map[int]time.Time) {
	n := c.attempts[shard]
	if n < 1 {
		n = 1
	}
	d := c.cfg.BackoffBase << uint(min(n-1, 16))
	if d > c.cfg.BackoffCap {
		d = c.cfg.BackoffCap
	}
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	backoffUntil[shard] = time.Now().Add(d)
}

func (c *coordinator) killWorker(w *worker) {
	if w.adopted {
		if w.pid > 0 {
			syscall.Kill(w.pid, syscall.SIGKILL)
		}
		return
	}
	if w.exited || w.cmd == nil || w.cmd.Process == nil {
		return
	}
	w.cmd.Process.Kill()
	select {
	case <-w.exitCh:
	case <-time.After(2 * time.Second):
	}
	w.exited = true
}

// cleanupGeneration removes the merged generation's shard journals
// (and their lock sidecars): every result is embedded in the pool
// journal's done records, and generation-stamped paths are never
// reused, so nothing can reopen them.
func (c *coordinator) cleanupGeneration(shards int) {
	for shard := 0; shard < shards; shard++ {
		path := shardJournalPath(c.cfg.Dir, c.gen, shard)
		if pid, locked := journal.LockHolder(path); locked {
			// A duplicate attempt is still running past the merge; its
			// result is already superseded. Stop it before unlinking.
			syscall.Kill(pid, syscall.SIGKILL)
		}
		os.Remove(path)
		os.Remove(path + ".lock")
	}
}
