package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"ringrobots/internal/faultfs"
	"ringrobots/internal/feasibility"
	"ringrobots/internal/journal"
)

// Status classifies a Solve outcome for the caller (the HTTP layer
// maps these onto status codes).
type Status int

const (
	// StatusVerdict: a final verdict is attached (freshly solved or
	// served from the store).
	StatusVerdict Status = iota
	// StatusSuspended: the solve ran out of budget or deadline (or the
	// service began draining mid-solve); its progress is journaled and
	// a retry of the same request resumes the drain where it stopped.
	StatusSuspended
	// StatusOverloaded: refused at admission (queue full of cheaper
	// work, or evicted by a cheaper arrival). Retry after RetryAfter.
	StatusOverloaded
	// StatusDraining: the service is shutting down and accepted no new
	// work. Retry against the restarted service.
	StatusDraining
	// StatusInvalid: the request itself is malformed (Err lists every
	// problem).
	StatusInvalid
	// StatusError: an internal failure (client gone, solver bug).
	StatusError
	// StatusDegraded: the store's journal failed (ENOSPC, EIO, failed
	// fsync) and the service is in sticky read-only mode — cached
	// verdicts are still served, anything needing a durable write is
	// refused with Retry-After until an operator repairs the storage
	// and restarts.
	StatusDegraded
)

func (st Status) String() string {
	switch st {
	case StatusVerdict:
		return "verdict"
	case StatusSuspended:
		return "suspended"
	case StatusOverloaded:
		return "overloaded"
	case StatusDraining:
		return "draining"
	case StatusInvalid:
		return "invalid"
	case StatusError:
		return "error"
	case StatusDegraded:
		return "degraded"
	}
	return fmt.Sprintf("Status(%d)", int(st))
}

// Request is one verdict query.
type Request struct {
	Instance feasibility.Instance
	// Budget is this run's expansion allowance (0 = Config.DefaultBudget,
	// capped at Config.MaxBudget). Exhaustion suspends, never discards.
	Budget int
	// Timeout bounds this run's wall time (0 = none); expiry suspends
	// the solve to a checkpoint exactly like budget exhaustion.
	Timeout time.Duration
}

// Response is the outcome delivered to every requester of a flight.
type Response struct {
	Status  Status
	Verdict *Verdict
	// Cached: served from the verdict store without any solve.
	Cached bool
	// Resumed: this run continued a journaled checkpoint rather than
	// starting from the empty table.
	Resumed    bool
	RetryAfter time.Duration
	Err        error
}

// Service is the verdict service core, independent of HTTP (handlers.go
// adds that). One Service owns one Store and one worker pool.
type Service struct {
	cfg     Config
	log     *slog.Logger
	store   *Store
	metrics *Metrics
	queue   *admitQueue

	mu       sync.Mutex
	flights  map[string]*flight
	draining bool

	// degraded flips once, on the first storage failure, and stays set
	// until restart: serving a verdict the store cannot persist risks a
	// crash silently retracting it, so writes are refused while cached
	// reads keep flowing.
	degraded atomic.Pointer[degradedInfo]

	solveCtx     context.Context
	cancelSolves context.CancelFunc
	wg           sync.WaitGroup
}

// degradedInfo records why and when the service went read-only.
type degradedInfo struct {
	reason string
	since  time.Time
}

// errStorage tags solver-path errors that originated in the verdict
// store's journal (as opposed to the solve itself), so runFlight can
// classify an aborted solve as a storage degradation.
var errStorage = errors.New("service: storage failure")

// degrade enters sticky read-only mode (first cause wins; later calls
// are no-ops so the reported reason is the root failure).
func (s *Service) degrade(cause error) {
	info := &degradedInfo{reason: cause.Error(), since: time.Now()}
	if s.degraded.CompareAndSwap(nil, info) {
		s.log.Error("storage failure: entering degraded read-only mode "+
			"(cached verdicts still served; repair storage and restart)", "cause", cause)
	}
}

// Degraded reports whether the service is in read-only degraded mode
// and why.
func (s *Service) Degraded() (reason string, ok bool) {
	if info := s.degraded.Load(); info != nil {
		return info.reason, true
	}
	return "", false
}

// New validates the config, opens (and replays) the verdict store, and
// starts the worker pool.
func New(cfg Config) (*Service, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	policy := journal.SyncNone
	if cfg.Sync {
		policy = journal.SyncAlways
	}
	fsys := cfg.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	store, err := OpenStoreFS(fsys, cfg.StorePath, policy)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:          cfg,
		log:          logger,
		store:        store,
		metrics:      newMetrics(),
		queue:        newAdmitQueue(cfg.QueueCap),
		flights:      make(map[string]*flight),
		solveCtx:     ctx,
		cancelSolves: cancel,
	}
	verdicts, checkpoints, records, bytes := store.Counts()
	logger.Info("store opened", "path", cfg.StorePath,
		"verdicts", verdicts, "checkpoints", checkpoints, "records", records, "bytes", bytes)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				f := s.queue.pop()
				if f == nil {
					return
				}
				s.runFlight(f)
			}
		}()
	}
	return s, nil
}

// Metrics exposes the counter set (handlers and tests).
func (s *Service) Metrics() *Metrics { return s.metrics }

// MetricsSnapshot captures the full /metricz view.
func (s *Service) MetricsSnapshot() Snapshot {
	snap := s.metrics.snapshot(s.queue.depth(), s.store)
	if info := s.degraded.Load(); info != nil {
		snap.Degraded = true
		snap.DegradedReason = info.reason
		snap.DegradedSec = time.Since(info.since).Seconds()
	}
	return snap
}

// retryAfter estimates how long a refused or suspended requester
// should back off: the queue's expected drain time under the current
// mean solve latency, floored at one second.
func (s *Service) retryAfter() time.Duration {
	mean := s.metrics.meanLatency()
	if mean <= 0 {
		mean = retryAfterFloor
	}
	wait := time.Duration(s.queue.depth()+1) * mean / time.Duration(s.cfg.Workers)
	if wait < retryAfterFloor {
		wait = retryAfterFloor
	}
	return wait
}

// Solve answers one verdict query, blocking until the verdict (or a
// degraded outcome) is available. Identical concurrent requests share
// one solve; ctx cancels this caller's wait, never the shared solve.
func (s *Service) Solve(ctx context.Context, req Request) Response {
	inst := req.Instance.Normalized()
	var errs []error
	if err := inst.Validate(); err != nil {
		errs = append(errs, err)
	}
	if req.Budget < 0 {
		errs = append(errs, fmt.Errorf("budget %d is negative", req.Budget))
	}
	if req.Timeout < 0 {
		errs = append(errs, fmt.Errorf("timeout %v is negative", req.Timeout))
	}
	if len(errs) > 0 {
		return Response{Status: StatusInvalid, Err: errors.Join(errs...)}
	}
	budget := req.Budget
	if budget == 0 {
		budget = s.cfg.DefaultBudget
	}
	if budget > s.cfg.MaxBudget {
		budget = s.cfg.MaxBudget
	}
	key := inst.Key()
	if v, ok := s.store.Verdict(key); ok {
		s.metrics.cacheHits.Add(1)
		return Response{Status: StatusVerdict, Verdict: &v, Cached: true}
	}
	s.metrics.cacheMisses.Add(1)

	// Degraded read-only mode: the cache-hit path above still serves,
	// but a miss means a solve whose verdict or checkpoints the store
	// could not persist — refuse it up front instead of wasting the
	// solve and failing at the write.
	if info := s.degraded.Load(); info != nil {
		s.metrics.degradedRejects.Add(1)
		return Response{Status: StatusDegraded, RetryAfter: degradedRetryAfter,
			Err: fmt.Errorf("service: degraded (read-only) since storage failure: %s", info.reason)}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.metrics.drained.Add(1)
		return Response{Status: StatusDraining, RetryAfter: retryAfterFloor, Err: errors.New("service: draining")}
	}
	f, inFlight := s.flights[key]
	if !inFlight {
		f = &flight{
			key:     key,
			inst:    inst,
			budget:  budget,
			timeout: req.Timeout,
			cost:    solveCost(inst),
			done:    make(chan struct{}),
		}
		evicted, ok := s.queue.push(f)
		if !ok {
			draining := s.draining
			s.mu.Unlock()
			if draining {
				s.metrics.drained.Add(1)
				return Response{Status: StatusDraining, RetryAfter: retryAfterFloor, Err: errors.New("service: draining")}
			}
			s.metrics.rejected.Add(1)
			return Response{Status: StatusOverloaded, RetryAfter: s.retryAfter(),
				Err: fmt.Errorf("service: admission queue full (%d)", s.cfg.QueueCap)}
		}
		s.flights[key] = f
		if evicted != nil {
			delete(s.flights, evicted.key)
		}
		s.mu.Unlock()
		if evicted != nil {
			s.metrics.shed.Add(1)
			evicted.deliver(Response{Status: StatusOverloaded, RetryAfter: s.retryAfter(),
				Err: errors.New("service: shed by cheaper work under overload")})
		}
	} else {
		s.mu.Unlock()
		s.metrics.deduped.Add(1)
	}

	select {
	case <-f.done:
		return f.resp
	case <-ctx.Done():
		// Only this caller gives up; the flight runs on for its other
		// waiters and the store.
		return Response{Status: StatusError, Err: ctx.Err()}
	}
}

// runFlight executes one solve on a pool worker and delivers the
// outcome to every waiter.
func (s *Service) runFlight(f *flight) {
	start := time.Now()
	s.metrics.solvesStarted.Add(1)
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)

	ctx := s.solveCtx
	if f.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.timeout)
		defer cancel()
	}
	sol := f.inst.Solver()
	sol.Workers = s.cfg.SolveWorkers
	sol.MaxExpansions = f.budget
	sol.BranchHook = s.cfg.BranchHook
	if s.cfg.CheckpointEvery > 0 {
		sol.CheckpointEvery = s.cfg.CheckpointEvery
		sol.OnCheckpoint = func(cp *feasibility.Checkpoint) error {
			raw, err := cp.MarshalBinary()
			if err != nil {
				return err
			}
			if err := s.store.PutCheckpoint(f.key, raw); err != nil {
				// Degrade immediately and abort the solve through the
				// solver's error path, tagged so runFlight classifies
				// the abort as storage (not a solver failure).
				s.degrade(err)
				return fmt.Errorf("%w: journaling checkpoint: %w", errStorage, err)
			}
			s.metrics.checkpoints.Add(1)
			s.compact()
			return nil
		}
	}

	var res feasibility.Result
	var cp *feasibility.Checkpoint
	var err error
	resumed := false
	if raw, ok := s.store.Checkpoint(f.key); ok {
		if ck, derr := feasibility.UnmarshalCheckpoint(raw); derr != nil {
			s.log.Warn("stored checkpoint undecodable; starting fresh", "inst", f.inst.String(), "err", derr)
		} else if !ck.Matches(f.inst) {
			s.log.Warn("stored checkpoint does not match instance; starting fresh", "inst", f.inst.String())
		} else {
			resumed = true
			s.metrics.resumedDrains.Add(1)
			res, cp, err = sol.Resume(ctx, ck)
		}
	}
	if !resumed {
		res, cp, err = sol.SolveContext(ctx)
	}
	elapsed := time.Since(start)
	s.metrics.recordLatency(elapsed)

	switch {
	case err == nil:
		v := Verdict{
			Impossible:     res.Impossible,
			Tier:           res.Tier,
			TablesExplored: res.TablesExplored,
			ExpansionUnits: res.ExpansionUnits,
			Survivor:       res.SurvivorTable,
		}
		if perr := s.store.PutVerdict(f.key, v); perr != nil {
			// The answer is right but not durable: fail the request
			// rather than serve a verdict a crash could silently
			// retract, and flip read-only so later misses are refused
			// up front.
			s.degrade(perr)
			s.log.Error("journaling verdict failed", "inst", f.inst.String(), "err", perr)
			s.finishFlight(f, Response{Status: StatusDegraded, RetryAfter: degradedRetryAfter,
				Err: fmt.Errorf("service: journaling verdict: %w", perr)})
			return
		}
		s.compact()
		s.metrics.solvesCompleted.Add(1)
		s.log.Info("solve finished", "inst", f.inst.String(), "impossible", res.Impossible,
			"tier", res.Tier, "tables", res.TablesExplored, "units", res.ExpansionUnits,
			"resumed", resumed, "ms", ms(elapsed))
		s.finishFlight(f, Response{Status: StatusVerdict, Verdict: &v, Resumed: resumed})
	case cp != nil:
		// Suspended with a live frontier: journal it so a retry — or a
		// restart after SIGTERM — resumes instead of restarting.
		if errors.Is(err, feasibility.ErrBudget) {
			s.metrics.budgetAborts.Add(1)
		}
		s.metrics.suspended.Add(1)
		raw, merr := cp.MarshalBinary()
		if merr != nil {
			// Encoding failure: a software bug, not storage.
			s.log.Error("marshaling suspension checkpoint failed", "inst", f.inst.String(), "err", merr)
			s.finishFlight(f, Response{Status: StatusError, Err: fmt.Errorf("service: marshaling checkpoint: %w", merr)})
			return
		}
		if perr := s.store.PutCheckpoint(f.key, raw); perr != nil {
			s.degrade(perr)
			s.log.Error("journaling suspension checkpoint failed", "inst", f.inst.String(), "err", perr)
			s.finishFlight(f, Response{Status: StatusDegraded, RetryAfter: degradedRetryAfter,
				Err: fmt.Errorf("service: journaling checkpoint: %w", perr)})
			return
		}
		s.metrics.checkpoints.Add(1)
		s.compact()
		s.log.Info("solve suspended", "inst", f.inst.String(), "resumed", resumed,
			"units", res.ExpansionUnits, "ms", ms(elapsed), "cause", err)
		s.finishFlight(f, Response{Status: StatusSuspended, Resumed: resumed, RetryAfter: s.retryAfter(), Err: err})
	default:
		if errors.Is(err, errStorage) {
			// The solve itself was fine; its periodic checkpoint write
			// failed (OnCheckpoint already degraded the service).
			s.finishFlight(f, Response{Status: StatusDegraded, RetryAfter: degradedRetryAfter, Err: err})
			return
		}
		s.log.Error("solve failed", "inst", f.inst.String(), "err", err)
		s.finishFlight(f, Response{Status: StatusError, Err: err})
	}
}

// finishFlight detaches the flight (so later requests consult the
// store or start a resume) and then wakes its waiters.
func (s *Service) finishFlight(f *flight, r Response) {
	s.mu.Lock()
	delete(s.flights, f.key)
	s.mu.Unlock()
	f.deliver(r)
}

// compact applies the journal-growth bound, logging (not failing) on
// error: compaction is an optimization, the append-only log is already
// correct. The exception is a sticky journal failure (failed fsync):
// the log will refuse every future write, so the service degrades.
func (s *Service) compact() {
	if err := s.store.CompactIfAbove(s.cfg.CompactAbove); err != nil {
		s.log.Error("store compaction failed", "err", err)
		if errors.Is(err, journal.ErrFailed) {
			s.degrade(err)
		}
	}
}

// Shutdown drains the service: new requests are refused, queued
// flights are answered with StatusDraining, and in-flight solves are
// suspended through the checkpoint path — their waiters get
// StatusSuspended and their progress is journaled, so a restart
// resumes every one of them. Blocks until the drain completes or ctx
// expires (then the error reports what was still running; journaled
// periodic checkpoints still bound the loss).
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("service: already draining")
	}
	s.draining = true
	s.mu.Unlock()

	// Refuse queued-but-unstarted flights (they hold no partial work).
	for _, f := range s.queue.close() {
		s.mu.Lock()
		delete(s.flights, f.key)
		s.mu.Unlock()
		s.metrics.drained.Add(1)
		f.deliver(Response{Status: StatusDraining, RetryAfter: retryAfterFloor,
			Err: errors.New("service: draining")})
	}
	// Suspend in-flight solves; each journals its checkpoint and
	// answers its waiters before the worker exits.
	s.cancelSolves()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("service: drain deadline exceeded with %d solves in flight: %w",
			s.metrics.inflight.Load(), ctx.Err())
	}
	if err := s.store.Close(); err != nil {
		return fmt.Errorf("service: closing store: %w", err)
	}
	s.log.Info("drained cleanly")
	return nil
}
