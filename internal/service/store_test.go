package service

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"ringrobots/internal/feasibility"
	"ringrobots/internal/journal"
)

// solveDirect runs the solver for an instance with package defaults —
// the differential oracle every store and service test compares
// against.
func solveDirect(t *testing.T, inst feasibility.Instance) feasibility.Result {
	t.Helper()
	s := inst.Solver()
	s.Workers = 1
	res, err := s.Solve()
	if err != nil {
		t.Fatalf("direct solve %s: %v", inst, err)
	}
	return res
}

func verdictOf(res feasibility.Result) Verdict {
	return Verdict{
		Impossible:     res.Impossible,
		Tier:           res.Tier,
		TablesExplored: res.TablesExplored,
		ExpansionUnits: res.ExpansionUnits,
		Survivor:       res.SurvivorTable,
	}
}

func TestVerdictEncodeDecodeRoundTrip(t *testing.T) {
	// A survivor-bearing verdict from a crippled-adversary solve and an
	// impossibility verdict exercise both encoding branches.
	surv := feasibility.Instance{N: 5, K: 3, MaxCycleLen: 2, PendingTiers: []int{0}}
	imp := feasibility.Instance{N: 7, K: 3}
	for i, inst := range []feasibility.Instance{surv, imp} {
		want := verdictOf(solveDirect(t, inst))
		if wantSurvivor := i == 0; (want.Survivor != nil) != wantSurvivor {
			t.Fatalf("%s: survivor presence %v, case expects %v", inst, want.Survivor != nil, wantSurvivor)
		}
		enc := EncodeVerdict(want)
		if !bytes.Equal(enc, EncodeVerdict(want)) {
			t.Fatalf("%s: encoding is not deterministic", inst)
		}
		got, err := DecodeVerdict(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", inst, err)
		}
		if !bytes.Equal(EncodeVerdict(got), enc) {
			t.Fatalf("%s: round trip changed the verdict", inst)
		}
		if got.Impossible != want.Impossible || got.Tier != want.Tier ||
			got.TablesExplored != want.TablesExplored || got.ExpansionUnits != want.ExpansionUnits {
			t.Fatalf("%s: round trip: got %+v want %+v", inst, got, want)
		}
		if len(got.Survivor) != len(want.Survivor) {
			t.Fatalf("%s: survivor size %d != %d", inst, len(got.Survivor), len(want.Survivor))
		}
		for obs, d := range want.Survivor {
			if got.Survivor[obs] != d {
				t.Fatalf("%s: survivor entry mismatch at %v", inst, obs)
			}
		}
		// Corruption must be detected, not absorbed.
		if _, err := DecodeVerdict(enc[:len(enc)-1]); err == nil {
			t.Errorf("%s: truncated verdict decoded without error", inst)
		}
		if _, err := DecodeVerdict(append(append([]byte(nil), enc...), 7)); err == nil {
			t.Errorf("%s: trailing garbage decoded without error", inst)
		}
	}
}

func TestStorePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	instA := feasibility.Instance{N: 7, K: 3}.Normalized()
	instB := feasibility.Instance{N: 7, K: 4}.Normalized()
	vA := verdictOf(solveDirect(t, instA))

	st, err := OpenStore(path, journal.SyncAlways)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := st.PutVerdict(instA.Key(), vA); err != nil {
		t.Fatalf("put verdict: %v", err)
	}
	// A suspended drain's checkpoint for instB.
	sB := instB.Solver()
	sB.Workers = 1
	sB.MaxExpansions = 150
	_, cp, err := sB.SolveContext(context.Background())
	if cp == nil {
		t.Fatalf("expected a budget suspension, got err=%v", err)
	}
	raw, err := cp.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal checkpoint: %v", err)
	}
	if err := st.PutCheckpoint(instB.Key(), raw); err != nil {
		t.Fatalf("put checkpoint: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2, err := OpenStore(path, journal.SyncAlways)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	got, ok := st2.Verdict(instA.Key())
	if !ok || !bytes.Equal(EncodeVerdict(got), EncodeVerdict(vA)) {
		t.Fatalf("verdict for %s lost or changed across reopen", instA)
	}
	gotCp, ok := st2.Checkpoint(instB.Key())
	if !ok || !bytes.Equal(gotCp, raw) {
		t.Fatalf("checkpoint for %s lost or changed across reopen", instB)
	}
	if _, ok := st2.Checkpoint(instA.Key()); ok {
		t.Fatalf("instance with a verdict still reports a checkpoint")
	}
}

func TestStoreCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	st, err := OpenStore(path, journal.SyncNone)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	inst := feasibility.Instance{N: 7, K: 3}.Normalized()
	v := verdictOf(solveDirect(t, inst))
	if err := st.PutVerdict(inst.Key(), v); err != nil {
		t.Fatalf("put verdict: %v", err)
	}
	// Pile up superseded checkpoints for one unfinished instance.
	instB := feasibility.Instance{N: 8, K: 5}.Normalized()
	sB := instB.Solver()
	sB.Workers = 1
	sB.MaxExpansions = 200
	_, cp, _ := sB.SolveContext(context.Background())
	if cp == nil {
		t.Fatal("expected a budget suspension")
	}
	raw, _ := cp.MarshalBinary()
	for i := 0; i < 20; i++ {
		if err := st.PutCheckpoint(instB.Key(), raw); err != nil {
			t.Fatalf("put checkpoint %d: %v", i, err)
		}
	}
	_, _, records, _ := st.Counts()
	if records != 21 {
		t.Fatalf("journal holds %d records before compaction, want 21", records)
	}
	if err := st.CompactIfAbove(5); err != nil {
		t.Fatalf("compact: %v", err)
	}
	_, _, records, _ = st.Counts()
	if records != 2 {
		t.Fatalf("journal holds %d records after compaction, want 2 (verdict + latest checkpoint)", records)
	}
	// Under the limit: a no-op.
	if err := st.CompactIfAbove(5); err != nil {
		t.Fatalf("idempotent compact: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st2, err := OpenStore(path, journal.SyncNone)
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer st2.Close()
	if got, ok := st2.Verdict(inst.Key()); !ok || !bytes.Equal(EncodeVerdict(got), EncodeVerdict(v)) {
		t.Fatalf("verdict lost by compaction")
	}
	if gotCp, ok := st2.Checkpoint(instB.Key()); !ok || !bytes.Equal(gotCp, raw) {
		t.Fatalf("latest checkpoint lost by compaction")
	}
}

// FuzzStoreRecord drives the store record decoders with arbitrary
// bytes: header splitting and verdict decoding must never panic, and
// any verdict that decodes must survive a canonical re-encode/decode
// round trip (arbitrary input may use non-minimal varints, so byte
// equality with the input is not promised — semantic stability is).
func FuzzStoreRecord(f *testing.F) {
	inst := feasibility.Instance{N: 7, K: 3}.Normalized()
	key := inst.Key()
	f.Add(encodeRecord(recVerdict, key, EncodeVerdict(Verdict{Impossible: true, Tier: 2, TablesExplored: 9, ExpansionUnits: 123})))
	surv := feasibility.Table{feasibility.ObsKey{}: feasibility.DStay}
	f.Add(encodeRecord(recVerdict, key, EncodeVerdict(Verdict{Tier: 1, Survivor: surv})))
	f.Add(encodeRecord(recCheckpoint, key, []byte("not-a-real-checkpoint")))
	f.Add([]byte{recVerdict})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, rec []byte) {
		typ, key, body, err := decodeRecordHeader(rec)
		if err != nil {
			return
		}
		if len(key) != instanceKeyLen {
			t.Fatalf("decoded key of %d bytes", len(key))
		}
		if typ == recVerdict {
			v, err := DecodeVerdict(body)
			if err != nil {
				return
			}
			canon := EncodeVerdict(v)
			v2, err := DecodeVerdict(canon)
			if err != nil {
				t.Fatalf("canonical re-encode does not decode: %v", err)
			}
			if !bytes.Equal(EncodeVerdict(v2), canon) {
				t.Fatalf("canonical encoding is not a fixed point")
			}
		}
	})
}
