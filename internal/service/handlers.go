package service

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ringrobots/internal/feasibility"
)

// The HTTP/JSON surface:
//
//	GET /solve?n=9&k=5[&budget=U][&timeout=30s][&tiers=0,2][&cycle=24]
//	            [&noquotient=1][&noincremental=1][&noprune=1]
//	GET /metricz
//	GET /healthz
//
// /solve returns 200 with the verdict, 202 when the solve suspended to
// a journaled checkpoint (retry the same request to resume — the
// Retry-After header suggests when), 429 when load-shed, 503 while
// draining or degraded (read-only after a storage failure; cached
// verdicts still return 200), 400 on invalid parameters (the body
// lists every problem at once). Identical concurrent requests are
// answered by one solve. /healthz reports 200 "ok" when healthy and
// 503 "degraded: <reason>" in read-only mode.

// SolveBody is the JSON body of a /solve response.
type SolveBody struct {
	Key    string `json:"key"` // hex instance key (content address)
	N      int    `json:"n"`
	K      int    `json:"k"`
	Status string `json:"status"`
	// Verdict fields, present when status == "verdict".
	Impossible     *bool  `json:"impossible,omitempty"`
	Tier           *int   `json:"tier,omitempty"`
	TablesExplored int    `json:"tables_explored,omitempty"`
	ExpansionUnits int64  `json:"expansion_units,omitempty"`
	Survivor       bool   `json:"survivor,omitempty"`
	SurvivorSize   int    `json:"survivor_size,omitempty"`
	Cached         bool   `json:"cached,omitempty"`
	Resumed        bool   `json:"resumed,omitempty"`
	RetryAfterSec  int    `json:"retry_after_sec,omitempty"`
	Error          string `json:"error,omitempty"`
}

var statusCodes = map[Status]int{
	StatusVerdict:    http.StatusOK,
	StatusSuspended:  http.StatusAccepted,
	StatusOverloaded: http.StatusTooManyRequests,
	StatusDraining:   http.StatusServiceUnavailable,
	StatusInvalid:    http.StatusBadRequest,
	StatusError:      http.StatusInternalServerError,
	StatusDegraded:   http.StatusServiceUnavailable,
}

// Handler returns the service's HTTP mux with request-id logging.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/metricz", s.handleMetricz)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		if reason, degraded := s.Degraded(); degraded {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "degraded: %s\n", reason)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return s.withRequestID(mux)
}

var reqCounter atomic.Int64

// withRequestID tags every request with a monotone id and logs
// method, path, status and latency through the structured logger.
func (s *Service) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := reqCounter.Add(1)
		start := time.Now()
		rw := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rw, r)
		s.log.Info("request", "reqid", id, "method", r.Method, "path", r.URL.Path,
			"query", r.URL.RawQuery, "code", rw.code, "ms", ms(time.Since(start)))
	})
}

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// parseSolveRequest builds a Request from query parameters, collecting
// every malformed parameter into one aggregated error.
func parseSolveRequest(q map[string][]string) (Request, error) {
	get := func(name string) string {
		if vs := q[name]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	var errs []error
	intParam := func(name string, required bool) int {
		raw := get(name)
		if raw == "" {
			if required {
				errs = append(errs, fmt.Errorf("missing required parameter %q", name))
			}
			return 0
		}
		v, err := strconv.Atoi(raw)
		if err != nil {
			errs = append(errs, fmt.Errorf("parameter %q: %q is not an integer", name, raw))
		}
		return v
	}
	boolParam := func(name string) bool {
		raw := get(name)
		if raw == "" {
			return false
		}
		v, err := strconv.ParseBool(raw)
		if err != nil {
			errs = append(errs, fmt.Errorf("parameter %q: %q is not a boolean", name, raw))
		}
		return v
	}
	var req Request
	req.Instance.N = intParam("n", true)
	req.Instance.K = intParam("k", true)
	req.Instance.MaxCycleLen = intParam("cycle", false)
	req.Instance.NoQuotient = boolParam("noquotient")
	req.Instance.NoIncremental = boolParam("noincremental")
	req.Instance.NoPrune = boolParam("noprune")
	if raw := get("tiers"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				errs = append(errs, fmt.Errorf("parameter %q: %q is not an integer tier", "tiers", part))
				continue
			}
			req.Instance.PendingTiers = append(req.Instance.PendingTiers, v)
		}
	}
	req.Budget = intParam("budget", false)
	if raw := get("timeout"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil {
			errs = append(errs, fmt.Errorf("parameter %q: %q is not a duration", "timeout", raw))
		}
		req.Timeout = d
	}
	if len(errs) > 0 {
		return Request{}, errors.Join(errs...)
	}
	return req, nil
}

func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) {
	req, err := parseSolveRequest(r.URL.Query())
	var resp Response
	if err != nil {
		resp = Response{Status: StatusInvalid, Err: err}
	} else {
		resp = s.Solve(r.Context(), req)
	}
	body := SolveBody{
		N:      req.Instance.N,
		K:      req.Instance.K,
		Status: resp.Status.String(),
	}
	if err == nil {
		body.Key = hex.EncodeToString([]byte(req.Instance.Key()))
	}
	if resp.Verdict != nil {
		imp, tier := resp.Verdict.Impossible, resp.Verdict.Tier
		body.Impossible = &imp
		body.Tier = &tier
		body.TablesExplored = resp.Verdict.TablesExplored
		body.ExpansionUnits = resp.Verdict.ExpansionUnits
		body.Survivor = resp.Verdict.Survivor != nil
		body.SurvivorSize = len(resp.Verdict.Survivor)
	}
	body.Cached = resp.Cached
	body.Resumed = resp.Resumed
	if resp.Err != nil {
		body.Error = resp.Err.Error()
	}
	if resp.RetryAfter > 0 {
		sec := int(resp.RetryAfter.Round(time.Second) / time.Second)
		if sec < 1 {
			sec = 1
		}
		body.RetryAfterSec = sec
		w.Header().Set("Retry-After", strconv.Itoa(sec))
	}
	writeJSON(w, statusCodes[resp.Status], body)
}

func (s *Service) handleMetricz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// instanceKeyHex is a test helper mirror of the key encoding used in
// responses.
func instanceKeyHex(inst feasibility.Instance) string {
	return hex.EncodeToString([]byte(inst.Key()))
}
