package service

// Degraded-mode fault suite: inject storage failures under the verdict
// store and assert the service flips to sticky read-only — refusing
// writes with 503 + Retry-After, still serving cached verdicts,
// reporting the degradation on /healthz and /metricz — and that no
// verdict acknowledged before the failure is lost when the store is
// reopened on healthy storage.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ringrobots/internal/faultfs"
	"ringrobots/internal/feasibility"
	"ringrobots/internal/journal"
)

// degradedConfig makes sync targeting deterministic: Sync=false means
// the journal itself never fsyncs on append, and CheckpointEvery=0
// disables periodic checkpoints — so the ONLY fsyncs are PutVerdict's
// explicit one, exactly one per verdict.
func degradedConfig(t *testing.T, in *faultfs.Injector) Config {
	t.Helper()
	cfg := testConfig(t)
	cfg.Sync = false
	cfg.CheckpointEvery = 0
	cfg.FS = in
	return cfg
}

func solveInst(svc *Service, n, k int) Response {
	return svc.Solve(context.Background(), Request{Instance: feasibility.Instance{N: n, K: k}})
}

func TestVerdictSyncFailureDegradesService(t *testing.T) {
	in := faultfs.NewInjector(faultfs.OS{}, 1)
	cfg := degradedConfig(t, in)
	svc := mustNew(t, cfg)
	defer drainService(t, svc)

	// A healthy solve: verdict journaled and fsynced.
	if resp := solveInst(svc, 7, 3); resp.Status != StatusVerdict {
		t.Fatalf("healthy solve = %v (%v)", resp.Status, resp.Err)
	}

	// The next verdict's fsync fails: the solve finishes but cannot be
	// made durable, so the requester gets 503-shaped degradation.
	in.FailNth(faultfs.OpSync, in.Count(faultfs.OpSync)+1, faultfs.EIO())
	resp := solveInst(svc, 7, 4)
	if resp.Status != StatusDegraded {
		t.Fatalf("solve with failing verdict fsync = %v (%v), want degraded", resp.Status, resp.Err)
	}
	if resp.RetryAfter != degradedRetryAfter {
		t.Fatalf("RetryAfter = %v, want %v", resp.RetryAfter, degradedRetryAfter)
	}

	// Cached verdicts still serve.
	if resp := solveInst(svc, 7, 3); resp.Status != StatusVerdict || !resp.Cached {
		t.Fatalf("cached read while degraded = %v cached=%v, want verdict from cache", resp.Status, resp.Cached)
	}
	// New work is refused up front, without burning a solve.
	started := svc.Metrics().solvesStarted.Load()
	if resp := solveInst(svc, 8, 5); resp.Status != StatusDegraded {
		t.Fatalf("new solve while degraded = %v, want degraded", resp.Status)
	}
	if got := svc.Metrics().solvesStarted.Load(); got != started {
		t.Fatalf("degraded reject still started a solve (%d -> %d)", started, got)
	}

	// /healthz reports the degradation with its reason; /metricz counts.
	h := svc.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "degraded:") {
		t.Fatalf("healthz = %d %q, want 503 degraded", rec.Code, rec.Body.String())
	}
	snap := svc.MetricsSnapshot()
	if !snap.Degraded || snap.DegradedReason == "" || snap.DegradedRejects < 1 {
		t.Fatalf("snapshot = degraded=%v reason=%q rejects=%d", snap.Degraded, snap.DegradedReason, snap.DegradedRejects)
	}

	// A /solve over HTTP while degraded: 503 with Retry-After.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/solve?n=9&k=4", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("solve while degraded = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("degraded 503 missing Retry-After")
	}
}

// TestNoAckedVerdictLostAcrossDegradation: after the service degrades,
// every verdict acknowledged BEFORE the storage failure is still in
// the store when it reopens on healthy storage — degradation never
// retracts served answers.
func TestNoAckedVerdictLostAcrossDegradation(t *testing.T) {
	in := faultfs.NewInjector(faultfs.OS{}, 1)
	cfg := degradedConfig(t, in)
	path := cfg.StorePath
	svc := mustNew(t, cfg)

	acked := feasibility.Instance{N: 7, K: 3}.Normalized()
	if resp := solveInst(svc, 7, 3); resp.Status != StatusVerdict {
		t.Fatalf("healthy solve = %v", resp.Status)
	}
	in.FailNth(faultfs.OpSync, in.Count(faultfs.OpSync)+1, faultfs.EIO())
	if resp := solveInst(svc, 7, 4); resp.Status != StatusDegraded {
		t.Fatalf("faulted solve = %v, want degraded", resp.Status)
	}
	drainService(t, svc)
	// Crash-consistent view: only fsync-acknowledged data survives.
	if err := in.CrashUnsynced(); err != nil {
		t.Fatal(err)
	}

	st, err := OpenStore(path, journal.SyncNone)
	if err != nil {
		t.Fatalf("reopening store on healthy storage: %v", err)
	}
	defer st.Close()
	if _, ok := st.Verdict(acked.Key()); !ok {
		t.Fatal("verdict acknowledged before the storage failure is gone after reopen")
	}
	unacked := feasibility.Instance{N: 7, K: 4}.Normalized()
	if _, ok := st.Verdict(unacked.Key()); ok {
		t.Fatal("verdict whose fsync failed was served as durable after a crash")
	}
}

// TestCheckpointWriteFaultDegradesMidSolve: an ENOSPC on a periodic
// checkpoint append aborts the solve through the solver's error path
// and degrades the service — classified as storage failure, not a
// solver error.
func TestCheckpointWriteFaultDegradesMidSolve(t *testing.T) {
	in := faultfs.NewInjector(faultfs.OS{}, 1)
	cfg := testConfig(t)
	cfg.Sync = false
	cfg.CheckpointEvery = 4 // checkpoint often so the fault lands mid-solve
	cfg.FS = in
	svc := mustNew(t, cfg)
	defer drainService(t, svc)

	// First store write will be a checkpoint append (CheckpointEvery=4
	// fires long before the (8,5) solve finishes).
	in.FailNth(faultfs.OpWrite, 1, faultfs.ENOSPC())
	resp := solveInst(svc, 8, 5)
	if resp.Status != StatusDegraded {
		t.Fatalf("solve with failing checkpoint write = %v (%v), want degraded", resp.Status, resp.Err)
	}
	if _, degraded := svc.Degraded(); !degraded {
		t.Fatal("service not degraded after checkpoint write failure")
	}
	if reason, _ := svc.Degraded(); reason == "" {
		t.Fatal("degraded reason is empty")
	}
}

// TestDegradedIsSticky: once degraded, the flag survives later
// successful-looking I/O — only a restart clears it.
func TestDegradedIsSticky(t *testing.T) {
	in := faultfs.NewInjector(faultfs.OS{}, 1)
	cfg := degradedConfig(t, in)
	svc := mustNew(t, cfg)

	in.FailNth(faultfs.OpSync, 1, faultfs.EIO())
	if resp := solveInst(svc, 7, 3); resp.Status != StatusDegraded {
		t.Fatalf("first solve = %v, want degraded", resp.Status)
	}
	for i := 0; i < 3; i++ {
		if resp := solveInst(svc, 7, 4); resp.Status != StatusDegraded {
			t.Fatalf("retry %d = %v, want degraded to stick", i, resp.Status)
		}
	}
	// Reset: a fresh service over the same injector (no scheduled
	// faults left) starts healthy.
	drainService(t, svc)
	cfg2 := degradedConfig(t, in)
	cfg2.StorePath = cfg.StorePath
	svc2 := mustNew(t, cfg2)
	defer drainService(t, svc2)
	if _, degraded := svc2.Degraded(); degraded {
		t.Fatal("restarted service inherited the degraded flag")
	}
	if resp := solveInst(svc2, 7, 4); resp.Status != StatusVerdict {
		t.Fatalf("solve after restart = %v (%v), want verdict", resp.Status, resp.Err)
	}
}
