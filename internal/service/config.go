// Package service is the long-running verdict service: an HTTP/JSON
// front end over the impossibility solver that answers feasibility
// queries for arbitrary (k, n), backed by a persistent
// content-addressed verdict store (store.go, journal-backed so it
// survives kill -9), single-flight deduplication so concurrent
// identical queries cost one solve (flight.go), a bounded worker pool
// with cheapest-first admission and load shedding (admission.go), and
// graceful degradation: overload, per-request budgets, deadlines and
// SIGTERM all suspend in-flight solves through the solver's checkpoint
// path, the checkpoint is journaled under the same instance key, and a
// later request for the same instance resumes the drain instead of
// restarting it — partial work is never lost.
package service

import (
	"errors"
	"fmt"
	"log/slog"
	"time"

	"ringrobots/internal/faultfs"
)

// Config configures a Service. The zero value is invalid; Default
// returns a runnable starting point.
type Config struct {
	// StorePath is the verdict-store journal file (required). Verdict
	// and checkpoint records for every instance share this one log.
	StorePath string
	// Workers is the number of solves run concurrently (≥ 1). Each
	// solve internally uses SolveWorkers solver goroutines.
	Workers int
	// QueueCap bounds the admission queue of solves admitted but not
	// yet started (≥ 1). When it is full the service load-sheds
	// cheapest-first: a cheaper arrival evicts the most expensive
	// queued solve (both get 429 + Retry-After semantics, the evicted
	// one keeps its journaled progress).
	QueueCap int
	// SolveWorkers is the solver's internal worker-pool size per solve.
	// 1 (the default) makes suspend/resume chains bit-deterministic:
	// the served verdict, tier, survivor and TablesExplored are
	// identical to an uninterrupted run no matter how often the drain
	// was suspended.
	SolveWorkers int
	// DefaultBudget is the per-request expansion budget applied when a
	// request does not set one; MaxBudget caps what a request may ask
	// for. Budget exhaustion suspends the solve to a journaled
	// checkpoint (202, retryable) rather than failing it.
	DefaultBudget int
	MaxBudget     int
	// CheckpointEvery journals a periodic checkpoint every that many
	// processed branches (0 disables; then only suspension checkpoints
	// are journaled and kill -9 mid-solve loses the partial work).
	CheckpointEvery int
	// CompactAbove compacts the store journal down to its live records
	// (all verdicts + the latest checkpoint per unfinished instance)
	// when it holds more than this many records (0 disables).
	CompactAbove int
	// Sync selects fsync-per-append for the store journal. Verdict
	// records are always synced before being served; this flag extends
	// the guarantee to periodic checkpoints.
	Sync bool
	// Logger receives structured request and lifecycle logs; nil means
	// slog.Default().
	Logger *slog.Logger

	// BranchHook is the fault-injection crashpoint hook threaded to
	// every solver (Solver.BranchHook). Testing only; production
	// configs leave it nil.
	BranchHook func(int64)

	// FS is the filesystem seam the verdict store journals through; nil
	// means the real OS. Testing and storage fault injection only
	// (faultfs.Injector); production configs leave it nil.
	FS faultfs.FS
}

// Default returns a production-shaped config for the given store path.
func Default(storePath string) Config {
	return Config{
		StorePath:       storePath,
		Workers:         2,
		QueueCap:        64,
		SolveWorkers:    1,
		DefaultBudget:   50_000_000,
		MaxBudget:       500_000_000,
		CheckpointEvery: 64,
		CompactAbove:    256,
		Sync:            true,
	}
}

// Validate reports every config problem at once as one aggregated
// error (fail-fast at startup, not first-error-wins), or nil.
func (c *Config) Validate() error {
	var errs []error
	if c.StorePath == "" {
		errs = append(errs, errors.New("StorePath is required"))
	}
	if c.Workers < 1 {
		errs = append(errs, fmt.Errorf("Workers %d below minimum 1", c.Workers))
	}
	if c.QueueCap < 1 {
		errs = append(errs, fmt.Errorf("QueueCap %d below minimum 1", c.QueueCap))
	}
	if c.SolveWorkers < 1 {
		errs = append(errs, fmt.Errorf("SolveWorkers %d below minimum 1", c.SolveWorkers))
	}
	if c.DefaultBudget < 1 {
		errs = append(errs, fmt.Errorf("DefaultBudget %d below minimum 1", c.DefaultBudget))
	}
	if c.MaxBudget < 1 {
		errs = append(errs, fmt.Errorf("MaxBudget %d below minimum 1", c.MaxBudget))
	}
	if c.MaxBudget >= 1 && c.DefaultBudget > c.MaxBudget {
		errs = append(errs, fmt.Errorf("DefaultBudget %d exceeds MaxBudget %d", c.DefaultBudget, c.MaxBudget))
	}
	if c.CheckpointEvery < 0 {
		errs = append(errs, fmt.Errorf("CheckpointEvery %d is negative", c.CheckpointEvery))
	}
	if c.CompactAbove < 0 {
		errs = append(errs, fmt.Errorf("CompactAbove %d is negative", c.CompactAbove))
	}
	if len(errs) > 0 {
		return fmt.Errorf("service: invalid config: %w", errors.Join(errs...))
	}
	return nil
}

// retryAfterFloor is the minimum Retry-After hint handed to shed or
// suspended requests.
const retryAfterFloor = time.Second

// degradedRetryAfter is the Retry-After hint handed to writes refused
// in degraded read-only mode: recovery needs an operator (repair +
// restart), so the hint is much longer than queue-drain backoff.
const degradedRetryAfter = 30 * time.Second
