package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"ringrobots/internal/config"
	"ringrobots/internal/faultfs"
	"ringrobots/internal/feasibility"
	"ringrobots/internal/journal"
)

// The verdict store: a content-addressed map from instance key
// (feasibility.Instance.Key — canonical instance + solver version +
// mode flags) to either a final verdict or the latest checkpoint of an
// unfinished drain, persisted as typed records in one append-only
// journal (internal/journal), so the whole map survives kill -9 with
// torn-tail recovery. Records are append-only during operation;
// Compact rewrites the log down to its live content (every verdict +
// the newest checkpoint per unfinished instance) atomically.

// Store record types (first payload byte).
const (
	recVerdict    = 'V'
	recCheckpoint = 'C'
)

// instanceKeyLen is the length of feasibility.Instance.Key (SHA-256).
const instanceKeyLen = 32

// Verdict is a finished solve as the store persists and the service
// serves it.
type Verdict struct {
	Impossible     bool
	Tier           int
	TablesExplored int
	ExpansionUnits int64
	// Survivor is the surviving table when Impossible is false (may
	// still be nil if the final tier aborted after earlier tiers
	// survived — the service never stores those).
	Survivor feasibility.Table
}

// survivorEntry is one (observation, decision) pair in canonical
// (sorted) order for the deterministic encoding.
type survivorEntry struct {
	obs feasibility.ObsKey
	d   feasibility.Decision
}

func sortedSurvivor(t feasibility.Table) []survivorEntry {
	entries := make([]survivorEntry, 0, len(t))
	for o, d := range t {
		entries = append(entries, survivorEntry{obs: o, d: d})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].obs.Less(entries[j].obs) })
	return entries
}

// EncodeVerdict emits the deterministic binary body of a verdict
// (survivor entries sorted by observation): encoding the same verdict
// twice yields identical bytes, so fault tests can diff stored
// verdicts across crash-riddled runs.
func EncodeVerdict(v Verdict) []byte {
	b := make([]byte, 0, 32+16*len(v.Survivor))
	var flags byte
	if v.Impossible {
		flags |= 1
	}
	if v.Survivor != nil {
		flags |= 2
	}
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(v.Tier))
	b = binary.AppendUvarint(b, uint64(v.TablesExplored))
	b = binary.AppendVarint(b, v.ExpansionUnits)
	if v.Survivor != nil {
		b = binary.AppendUvarint(b, uint64(len(v.Survivor)))
		for _, e := range sortedSurvivor(v.Survivor) {
			b = e.obs.Lo.AppendBinary(b)
			b = e.obs.Hi.AppendBinary(b)
			b = binary.AppendUvarint(b, uint64(e.d))
		}
	}
	return b
}

// storeDecoder is a sticky-error cursor over a record payload.
type storeDecoder struct {
	b   []byte
	err error
}

var errTruncatedRecord = errors.New("service: truncated store record")

func (d *storeDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = errTruncatedRecord
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *storeDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.err = errTruncatedRecord
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *storeDecoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b) {
		d.err = errTruncatedRecord
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *storeDecoder) canonKey() config.CanonKey {
	if d.err != nil {
		return config.CanonKey{}
	}
	k, n, err := config.DecodeCanonKey(d.b)
	if err != nil {
		d.err = err
		return config.CanonKey{}
	}
	d.b = d.b[n:]
	return k
}

// DecodeVerdict parses a body written by EncodeVerdict.
func DecodeVerdict(b []byte) (Verdict, error) {
	d := &storeDecoder{b: b}
	flagBytes := d.bytes(1)
	var flags byte
	if d.err == nil {
		flags = flagBytes[0]
	}
	v := Verdict{Impossible: flags&1 != 0}
	v.Tier = int(d.uvarint())
	v.TablesExplored = int(d.uvarint())
	v.ExpansionUnits = d.varint()
	if flags&2 != 0 {
		n := d.uvarint()
		if d.err == nil && n > uint64(len(d.b)) {
			return Verdict{}, errTruncatedRecord
		}
		v.Survivor = make(feasibility.Table, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			obs := feasibility.ObsKey{Lo: d.canonKey(), Hi: d.canonKey()}
			dec := d.uvarint()
			if d.err == nil && dec > uint64(feasibility.DEither) {
				return Verdict{}, fmt.Errorf("service: verdict decision %d out of range", dec)
			}
			v.Survivor[obs] = feasibility.Decision(dec)
		}
	}
	if d.err != nil {
		return Verdict{}, d.err
	}
	if len(d.b) != 0 {
		return Verdict{}, fmt.Errorf("service: %d trailing bytes after verdict", len(d.b))
	}
	return v, nil
}

// encodeRecord frames a store record: type byte, 32-byte instance key,
// body.
func encodeRecord(typ byte, key string, body []byte) []byte {
	rec := make([]byte, 0, 1+instanceKeyLen+len(body))
	rec = append(rec, typ)
	rec = append(rec, key...)
	return append(rec, body...)
}

// decodeRecordHeader splits a store record into type, key and body.
func decodeRecordHeader(rec []byte) (typ byte, key string, body []byte, err error) {
	if len(rec) < 1+instanceKeyLen {
		return 0, "", nil, fmt.Errorf("service: store record of %d bytes is shorter than its header", len(rec))
	}
	typ = rec[0]
	if typ != recVerdict && typ != recCheckpoint {
		return 0, "", nil, fmt.Errorf("service: unknown store record type %q", typ)
	}
	return typ, string(rec[1 : 1+instanceKeyLen]), rec[1+instanceKeyLen:], nil
}

// Store is the journal-backed verdict store. All methods are safe for
// concurrent use.
type Store struct {
	mu  sync.Mutex
	log *journal.Log
	// verdicts holds final answers; checkpoints the latest journaled
	// checkpoint per unfinished instance (dropped once a verdict
	// lands). Both are keyed by feasibility.Instance.Key.
	verdicts    map[string]Verdict
	checkpoints map[string][]byte
}

// OpenStore opens the store over the real filesystem; see OpenStoreFS.
func OpenStore(path string, policy journal.SyncPolicy) (*Store, error) {
	return OpenStoreFS(faultfs.OS{}, path, policy)
}

// OpenStoreFS opens (creating if absent) the store journal through
// fsys and replays it: torn tails are truncated by the journal layer
// (mid-file corruption makes the open fail with journal.ErrCorrupt —
// run `drain -fsck -repair` rather than losing served verdicts); a
// record that passed its checksum but fails semantic decode means a
// software bug or external corruption, and Open fails rather than
// serving from a store it cannot fully read.
func OpenStoreFS(fsys faultfs.FS, path string, policy journal.SyncPolicy) (*Store, error) {
	log, err := journal.OpenFS(fsys, path, policy)
	if err != nil {
		return nil, err
	}
	st := &Store{
		log:         log,
		verdicts:    make(map[string]Verdict),
		checkpoints: make(map[string][]byte),
	}
	i := 0
	err = log.ForEach(func(payload []byte) error {
		i++
		typ, key, body, err := decodeRecordHeader(payload)
		if err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
		switch typ {
		case recVerdict:
			v, err := DecodeVerdict(body)
			if err != nil {
				return fmt.Errorf("record %d: %w", i, err)
			}
			st.verdicts[key] = v
			delete(st.checkpoints, key)
		case recCheckpoint:
			// Later records supersede earlier ones; a checkpoint after a
			// verdict would be a writer bug, but replay tolerates it by
			// preferring the verdict (checked on read).
			st.checkpoints[key] = append([]byte(nil), body...)
		}
		return nil
	})
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("service: replaying store %s: %w", path, err)
	}
	return st, nil
}

// Verdict returns the stored verdict for an instance key.
func (st *Store) Verdict(key string) (Verdict, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	v, ok := st.verdicts[key]
	return v, ok
}

// Checkpoint returns the latest journaled checkpoint for an instance
// key (absent once a verdict is stored).
func (st *Store) Checkpoint(key string) ([]byte, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, done := st.verdicts[key]; done {
		return nil, false
	}
	raw, ok := st.checkpoints[key]
	return raw, ok
}

// PutVerdict journals a verdict (fsynced regardless of the store's
// append policy — a verdict handed to a client must survive a crash)
// and publishes it; the instance's checkpoint becomes irrelevant.
func (st *Store) PutVerdict(key string, v Verdict) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.log.Append(encodeRecord(recVerdict, key, EncodeVerdict(v))); err != nil {
		return err
	}
	if err := st.log.Sync(); err != nil {
		return err
	}
	st.verdicts[key] = v
	delete(st.checkpoints, key)
	return nil
}

// PutCheckpoint journals a checkpoint for an unfinished instance.
func (st *Store) PutCheckpoint(key string, raw []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.log.Append(encodeRecord(recCheckpoint, key, raw)); err != nil {
		return err
	}
	st.checkpoints[key] = append([]byte(nil), raw...)
	return nil
}

// Counts reports stored verdicts and live checkpoints plus journal
// size (for /metricz and the compaction policy).
func (st *Store) Counts() (verdicts, checkpoints, records int, bytes int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.verdicts), len(st.checkpoints), st.log.Len(), st.log.Size()
}

// CompactIfAbove compacts the journal down to its live records (all
// verdicts, then the latest checkpoint of each unfinished instance, in
// sorted key order for determinism) when it holds more than limit
// records. The rewrite is atomic (temp + rename): a crash leaves the
// old log or the new one, never a mix.
func (st *Store) CompactIfAbove(limit int) error {
	if limit <= 0 {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.log.Len() <= limit {
		return nil
	}
	keys := make([]string, 0, len(st.verdicts)+len(st.checkpoints))
	for k := range st.verdicts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	keep := make([][]byte, 0, len(keys)+len(st.checkpoints))
	for _, k := range keys {
		keep = append(keep, encodeRecord(recVerdict, k, EncodeVerdict(st.verdicts[k])))
	}
	keys = keys[:0]
	for k := range st.checkpoints {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		keep = append(keep, encodeRecord(recCheckpoint, k, st.checkpoints[k]))
	}
	return st.log.Compact(keep)
}

// Close releases the journal handle.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.log.Close()
}
