package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ringrobots/internal/feasibility"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// testConfig is a small, fast config over a per-test store.
func testConfig(t *testing.T) Config {
	t.Helper()
	cfg := Default(filepath.Join(t.TempDir(), "store.log"))
	cfg.Workers = 1
	cfg.QueueCap = 8
	cfg.CheckpointEvery = 4
	cfg.CompactAbove = 64
	cfg.Logger = quietLogger()
	return cfg
}

func mustNew(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return svc
}

func drainService(t *testing.T, svc *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestConfigValidateAggregatesAllErrors(t *testing.T) {
	bad := Config{Workers: 0, QueueCap: -1, SolveWorkers: 0, DefaultBudget: 0, MaxBudget: 0, CheckpointEvery: -2, CompactAbove: -3}
	err := bad.Validate()
	if err == nil {
		t.Fatal("invalid config validated")
	}
	for _, want := range []string{"StorePath", "Workers", "QueueCap", "SolveWorkers", "DefaultBudget", "MaxBudget", "CheckpointEvery", "CompactAbove"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error does not mention %s: %v", want, err)
		}
	}
	good := Default(filepath.Join(t.TempDir(), "s.log"))
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestInvalidRequestAggregatesAllErrors(t *testing.T) {
	svc := mustNew(t, testConfig(t))
	defer drainService(t, svc)
	resp := svc.Solve(context.Background(), Request{
		Instance: feasibility.Instance{N: 99, K: 0, PendingTiers: []int{-1}},
		Budget:   -5,
		Timeout:  -time.Second,
	})
	if resp.Status != StatusInvalid || resp.Err == nil {
		t.Fatalf("invalid request got %v (err=%v)", resp.Status, resp.Err)
	}
	for _, want := range []string{"ring size", "robot count", "tier", "budget", "timeout"} {
		if !strings.Contains(resp.Err.Error(), want) {
			t.Errorf("aggregated request error does not mention %q: %v", want, resp.Err)
		}
	}
}

// TestSingleFlightDedup is the million-identical-queries contract in
// miniature: 16 concurrent identical requests cost exactly one solve,
// and every requester receives the identical verdict.
func TestSingleFlightDedup(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 2
	// Slow each branch slightly so the requests genuinely overlap one
	// in-flight solve rather than racing a cache hit.
	cfg.BranchHook = func(int64) { time.Sleep(time.Millisecond) }
	svc := mustNew(t, cfg)
	inst := feasibility.Instance{N: 7, K: 3}
	const clients = 16
	resps := make([]Response, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i] = svc.Solve(context.Background(), Request{Instance: inst})
		}(i)
	}
	wg.Wait()
	want := verdictOf(solveDirect(t, inst))
	for i, r := range resps {
		if r.Status != StatusVerdict || r.Verdict == nil {
			t.Fatalf("client %d: %v (err=%v)", i, r.Status, r.Err)
		}
		if !bytes.Equal(EncodeVerdict(*r.Verdict), EncodeVerdict(want)) {
			t.Fatalf("client %d: verdict differs from the direct solve", i)
		}
	}
	m := svc.MetricsSnapshot()
	if m.SolvesStarted != 1 {
		t.Errorf("%d solves started for %d identical queries, want exactly 1", m.SolvesStarted, clients)
	}
	if m.Deduped+m.CacheHits != clients-1 {
		t.Errorf("deduped %d + cache hits %d != %d", m.Deduped, m.CacheHits, clients-1)
	}
	// A later identical request is a pure cache hit.
	r := svc.Solve(context.Background(), Request{Instance: inst})
	if r.Status != StatusVerdict || !r.Cached {
		t.Errorf("post-solve request not served from cache: %+v", r)
	}
	drainService(t, svc)
}

// TestBudgetSuspendAndResume: a starved request suspends with its
// progress journaled; retries resume the drain (never restart) and the
// eventual verdict is bit-identical to an uninterrupted solve,
// including TablesExplored (single-worker determinism).
func TestBudgetSuspendAndResume(t *testing.T) {
	cfg := testConfig(t)
	svc := mustNew(t, cfg)
	inst := feasibility.Instance{N: 7, K: 3}
	req := Request{Instance: inst, Budget: 200}
	resp := svc.Solve(context.Background(), req)
	if resp.Status != StatusSuspended {
		t.Fatalf("starved solve returned %v (err=%v), want suspended", resp.Status, resp.Err)
	}
	if resp.RetryAfter <= 0 {
		t.Errorf("suspended response carries no Retry-After hint")
	}
	if _, ok := svc.store.Checkpoint(inst.Key()); !ok {
		t.Fatalf("suspension left no checkpoint in the store")
	}
	legs := 1
	for resp.Status == StatusSuspended {
		if legs++; legs > 500 {
			t.Fatal("drain did not converge in 500 legs")
		}
		resp = svc.Solve(context.Background(), req)
		if resp.Status == StatusSuspended || resp.Status == StatusVerdict {
			if !resp.Resumed {
				t.Fatalf("leg %d did not resume the journaled drain", legs)
			}
		}
	}
	if resp.Status != StatusVerdict {
		t.Fatalf("drain ended with %v (err=%v)", resp.Status, resp.Err)
	}
	straight := solveDirect(t, inst)
	if resp.Verdict.Impossible != straight.Impossible || resp.Verdict.Tier != straight.Tier ||
		resp.Verdict.TablesExplored != straight.TablesExplored {
		t.Errorf("resumed drain verdict (%v, tier %d, %d tables) != uninterrupted (%v, %d, %d)",
			resp.Verdict.Impossible, resp.Verdict.Tier, resp.Verdict.TablesExplored,
			straight.Impossible, straight.Tier, straight.TablesExplored)
	}
	m := svc.MetricsSnapshot()
	if m.BudgetAborts == 0 || m.ResumedDrains == 0 {
		t.Errorf("metrics did not record the drain: budget_aborts=%d resumed_drains=%d", m.BudgetAborts, m.ResumedDrains)
	}
	if m.Suspended != m.BudgetAborts {
		t.Errorf("suspended %d != budget aborts %d for a budget-only drain", m.Suspended, m.BudgetAborts)
	}
	drainService(t, svc)
}

// TestShutdownSuspendsInFlight: Shutdown answers queued requests with
// a retryable refusal, suspends the in-flight solve to a journaled
// checkpoint, and a fresh service over the same store resumes it.
func TestShutdownSuspendsInFlight(t *testing.T) {
	cfg := testConfig(t)
	started := make(chan struct{})
	var once sync.Once
	// Slow branches keep the solve in flight while Shutdown lands; the
	// hook never blocks, so the drain cannot deadlock.
	cfg.BranchHook = func(done int64) {
		if done >= 3 {
			once.Do(func() { close(started) })
		}
		time.Sleep(10 * time.Millisecond)
	}
	svc := mustNew(t, cfg)
	inst := feasibility.Instance{N: 7, K: 4}
	inFlight := make(chan Response, 1)
	go func() { inFlight <- svc.Solve(context.Background(), Request{Instance: inst}) }()
	<-started
	// A second, different instance queues behind the busy worker.
	queued := make(chan Response, 1)
	go func() { queued <- svc.Solve(context.Background(), Request{Instance: feasibility.Instance{N: 8, K: 5}}) }()
	for i := 0; svc.MetricsSnapshot().QueueDepth == 0 && i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-inFlight
	if r.Status != StatusSuspended {
		t.Fatalf("in-flight solve answered %v (err=%v), want suspended", r.Status, r.Err)
	}
	q := <-queued
	if q.Status != StatusDraining {
		t.Fatalf("queued solve answered %v (err=%v), want draining", q.Status, q.Err)
	}

	// Restart over the same store: the drain resumes where it stopped.
	cfg2 := testConfig(t)
	cfg2.StorePath = cfg.StorePath
	svc2 := mustNew(t, cfg2)
	defer drainService(t, svc2)
	resp := svc2.Solve(context.Background(), Request{Instance: inst})
	if resp.Status != StatusVerdict || !resp.Resumed {
		t.Fatalf("restarted service returned %v (resumed=%v, err=%v), want a resumed verdict",
			resp.Status, resp.Resumed, resp.Err)
	}
	if svc2.MetricsSnapshot().ResumedDrains != 1 {
		t.Errorf("restarted service resumed %d drains, want 1", svc2.MetricsSnapshot().ResumedDrains)
	}
	straight := solveDirect(t, inst)
	if resp.Verdict.Impossible != straight.Impossible || resp.Verdict.Tier != straight.Tier ||
		resp.Verdict.TablesExplored != straight.TablesExplored {
		t.Errorf("shutdown-interrupted drain verdict (%v, tier %d, %d tables) != uninterrupted (%v, %d, %d)",
			resp.Verdict.Impossible, resp.Verdict.Tier, resp.Verdict.TablesExplored,
			straight.Impossible, straight.Tier, straight.TablesExplored)
	}
}

// TestAdmissionOverload: a full queue sheds cheapest-first — a cheaper
// arrival evicts the most expensive queued solve, an expensive arrival
// is refused outright, both with Retry-After hints.
func TestAdmissionOverload(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueCap = 1
	blocked := make(chan struct{})
	var once sync.Once
	cfg.BranchHook = func(int64) {
		once.Do(func() { close(blocked) })
		time.Sleep(5 * time.Millisecond)
	}
	svc := mustNew(t, cfg)
	bg := make(chan Response, 3)
	// Occupy the only worker.
	go func() { bg <- svc.Solve(context.Background(), Request{Instance: feasibility.Instance{N: 7, K: 3}}) }()
	<-blocked
	// Fill the queue with an expensive instance.
	go func() { bg <- svc.Solve(context.Background(), Request{Instance: feasibility.Instance{N: 8, K: 5}}) }()
	for i := 0; svc.MetricsSnapshot().QueueDepth == 0 && i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	// A cheaper arrival evicts it...
	cheap := make(chan Response, 1)
	go func() { cheap <- svc.Solve(context.Background(), Request{Instance: feasibility.Instance{N: 7, K: 4}}) }()
	var shedResp Response
	select {
	case shedResp = <-bg:
	case <-time.After(10 * time.Second):
		t.Fatal("expensive queued solve was not shed")
	}
	if shedResp.Status != StatusOverloaded || shedResp.RetryAfter <= 0 {
		t.Fatalf("shed solve answered %+v, want overloaded with Retry-After", shedResp)
	}
	// ...and an expensive arrival is refused outright.
	r := svc.Solve(context.Background(), Request{Instance: feasibility.Instance{N: 8, K: 5}})
	if r.Status != StatusOverloaded || r.RetryAfter <= 0 {
		t.Fatalf("expensive arrival answered %+v, want overloaded with Retry-After", r)
	}
	m := svc.MetricsSnapshot()
	if m.Shed != 1 || m.Rejected != 1 {
		t.Errorf("shed=%d rejected=%d, want 1 and 1", m.Shed, m.Rejected)
	}
	drainService(t, svc)
}

func TestHTTPHandlers(t *testing.T) {
	cfg := testConfig(t)
	svc := mustNew(t, cfg)
	defer drainService(t, svc)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	get := func(path string) (int, SolveBody, http.Header) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var body SolveBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
		return resp.StatusCode, body, resp.Header
	}

	code, body, _ := get("/solve?n=7&k=3")
	if code != http.StatusOK || body.Status != "verdict" || body.Impossible == nil || !*body.Impossible {
		t.Fatalf("GET /solve?n=7&k=3 = %d %+v, want 200 impossible verdict", code, body)
	}
	if body.Key == "" {
		t.Errorf("verdict body carries no content-address key")
	}
	code, body, _ = get("/solve?n=7&k=3")
	if code != http.StatusOK || !body.Cached {
		t.Fatalf("repeat query = %d cached=%v, want a cache hit", code, body.Cached)
	}

	// A survivor case over HTTP (crippled adversary finishes fast).
	code, body, _ = get("/solve?n=5&k=3&cycle=2&tiers=0")
	if code != http.StatusOK || !body.Survivor || body.SurvivorSize == 0 {
		t.Fatalf("survivor query = %d %+v, want a survivor verdict", code, body)
	}

	// Bad parameters: one 400 listing every problem.
	code, body, _ = get("/solve?n=nope&budget=x")
	if code != http.StatusBadRequest {
		t.Fatalf("malformed query returned %d, want 400", code)
	}
	for _, want := range []string{`"n"`, `"k"`, `"budget"`} {
		if !strings.Contains(body.Error, want) {
			t.Errorf("400 body does not mention %s: %q", want, body.Error)
		}
	}

	// A starved solve suspends: 202 + Retry-After.
	code, body, hdr := get("/solve?n=8&k=5&budget=200")
	if code != http.StatusAccepted || body.Status != "suspended" {
		t.Fatalf("starved query = %d %+v, want 202 suspended", code, body)
	}
	if hdr.Get("Retry-After") == "" || body.RetryAfterSec < 1 {
		t.Errorf("202 lacks Retry-After (hdr=%q body=%d)", hdr.Get("Retry-After"), body.RetryAfterSec)
	}

	// Metrics reflect the traffic.
	resp, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatalf("GET /metricz: %v", err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode metricz: %v", err)
	}
	if snap.SolvesStarted != 3 || snap.CacheHits != 1 || snap.BudgetAborts != 1 || snap.StoredVerdicts != 2 {
		t.Errorf("metricz %+v: want solves_started=3 cache_hits=1 budget_aborts=1 stored_verdicts=2", snap)
	}
	if snap.SolveSamples == 0 || snap.SolveLatencyMsP90 < snap.SolveLatencyMsP50 {
		t.Errorf("implausible latency stats: %+v", snap)
	}

	// Health.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, hresp)
	}
	hresp.Body.Close()
}
