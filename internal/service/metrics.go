package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the service's operational counter set, exposed as JSON by
// the /metricz handler. Counters are atomics; the latency reservoir is
// a mutex-guarded ring of the most recent solve latencies, from which
// percentiles are computed on demand.
type Metrics struct {
	cacheHits       atomic.Int64 // served from the verdict store
	cacheMisses     atomic.Int64 // required a solve (or attach to one)
	deduped         atomic.Int64 // requests attached to an in-flight solve
	solvesStarted   atomic.Int64 // solver runs launched
	solvesCompleted atomic.Int64 // runs that reached a verdict
	suspended       atomic.Int64 // runs suspended to a checkpoint
	budgetAborts    atomic.Int64 // suspensions caused by budget exhaustion
	resumedDrains   atomic.Int64 // runs that resumed a stored checkpoint
	checkpoints     atomic.Int64 // checkpoint records journaled
	rejected        atomic.Int64 // requests refused at admission (queue full)
	shed            atomic.Int64 // queued solves evicted by cheaper arrivals
	drained         atomic.Int64 // requests refused because the service is draining
	degradedRejects atomic.Int64 // writes refused in degraded read-only mode
	inflight        atomic.Int64 // solver runs currently executing

	latMu    sync.Mutex
	lats     []time.Duration // ring buffer of recent solve latencies
	latNext  int
	latTotal int64
	latSum   time.Duration
}

const latencyReservoir = 1024

func newMetrics() *Metrics {
	return &Metrics{lats: make([]time.Duration, 0, latencyReservoir)}
}

func (m *Metrics) recordLatency(d time.Duration) {
	m.latMu.Lock()
	if len(m.lats) < latencyReservoir {
		m.lats = append(m.lats, d)
	} else {
		m.lats[m.latNext] = d
		m.latNext = (m.latNext + 1) % latencyReservoir
	}
	m.latTotal++
	m.latSum += d
	m.latMu.Unlock()
}

// meanLatency is the mean over every recorded solve (not just the
// reservoir) — the admission layer's Retry-After estimate.
func (m *Metrics) meanLatency() time.Duration {
	m.latMu.Lock()
	defer m.latMu.Unlock()
	if m.latTotal == 0 {
		return 0
	}
	return m.latSum / time.Duration(m.latTotal)
}

// percentiles returns the given quantiles (0..1) over the reservoir.
func (m *Metrics) percentiles(qs ...float64) []time.Duration {
	m.latMu.Lock()
	sample := append([]time.Duration(nil), m.lats...)
	m.latMu.Unlock()
	out := make([]time.Duration, len(qs))
	if len(sample) == 0 {
		return out
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	for i, q := range qs {
		idx := int(q * float64(len(sample)-1))
		out[i] = sample[idx]
	}
	return out
}

// Snapshot is the JSON shape of /metricz.
type Snapshot struct {
	CacheHits       int64 `json:"cache_hits"`
	CacheMisses     int64 `json:"cache_misses"`
	Deduped         int64 `json:"singleflight_deduped"`
	SolvesStarted   int64 `json:"solves_started"`
	SolvesCompleted int64 `json:"solves_completed"`
	Suspended       int64 `json:"suspended"`
	BudgetAborts    int64 `json:"budget_aborts"`
	ResumedDrains   int64 `json:"resumed_drains"`
	Checkpoints     int64 `json:"checkpoints_journaled"`
	Rejected        int64 `json:"rejected_overload"`
	Shed            int64 `json:"shed_overload"`
	Drained         int64 `json:"rejected_draining"`
	DegradedRejects int64 `json:"rejected_degraded"`
	InFlight        int64 `json:"inflight_solves"`
	QueueDepth      int   `json:"queue_depth"`

	// Degraded read-only mode (sticky after a storage failure).
	Degraded       bool    `json:"degraded"`
	DegradedReason string  `json:"degraded_reason,omitempty"`
	DegradedSec    float64 `json:"degraded_sec,omitempty"`

	StoredVerdicts    int   `json:"stored_verdicts"`
	StoredCheckpoints int   `json:"stored_checkpoints"`
	JournalRecords    int   `json:"journal_records"`
	JournalBytes      int64 `json:"journal_bytes"`

	SolveLatencyMsP50  float64 `json:"solve_latency_ms_p50"`
	SolveLatencyMsP90  float64 `json:"solve_latency_ms_p90"`
	SolveLatencyMsP99  float64 `json:"solve_latency_ms_p99"`
	SolveLatencyMsMean float64 `json:"solve_latency_ms_mean"`
	SolveSamples       int64   `json:"solve_latency_samples"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (m *Metrics) snapshot(queueDepth int, st *Store) Snapshot {
	ps := m.percentiles(0.50, 0.90, 0.99)
	m.latMu.Lock()
	samples := m.latTotal
	m.latMu.Unlock()
	s := Snapshot{
		CacheHits:       m.cacheHits.Load(),
		CacheMisses:     m.cacheMisses.Load(),
		Deduped:         m.deduped.Load(),
		SolvesStarted:   m.solvesStarted.Load(),
		SolvesCompleted: m.solvesCompleted.Load(),
		Suspended:       m.suspended.Load(),
		BudgetAborts:    m.budgetAborts.Load(),
		ResumedDrains:   m.resumedDrains.Load(),
		Checkpoints:     m.checkpoints.Load(),
		Rejected:        m.rejected.Load(),
		Shed:            m.shed.Load(),
		Drained:         m.drained.Load(),
		DegradedRejects: m.degradedRejects.Load(),
		InFlight:        m.inflight.Load(),
		QueueDepth:      queueDepth,

		SolveLatencyMsP50:  ms(ps[0]),
		SolveLatencyMsP90:  ms(ps[1]),
		SolveLatencyMsP99:  ms(ps[2]),
		SolveLatencyMsMean: ms(m.meanLatency()),
		SolveSamples:       samples,
	}
	if st != nil {
		s.StoredVerdicts, s.StoredCheckpoints, s.JournalRecords, s.JournalBytes = st.Counts()
	}
	return s
}
