package service

import (
	"sync"
	"time"

	"ringrobots/internal/feasibility"
)

// Single-flight and admission control. A flight is one in-progress (or
// queued) solve; every concurrent request for the same instance key
// attaches to the one flight instead of spawning its own solve, so a
// million identical in-flight queries cost one solve. Admission is a
// bounded cost-ordered queue: workers pop cheapest-first, and when the
// queue is full a cheaper arrival evicts the most expensive queued
// flight (load-shedding that favors the requests most likely to clear
// the backlog) — the evicted flight's waiters get an overload response
// and lose nothing, since any progress their solve had previously
// journaled stays in the store.

// flight is one solve shared by all requests for its instance key.
type flight struct {
	key     string
	inst    feasibility.Instance
	budget  int
	timeout time.Duration
	cost    int64

	done chan struct{} // closed once resp is set
	resp Response
}

func (f *flight) deliver(r Response) {
	f.resp = r
	close(f.done)
}

// solveCost ranks instances by expected work for admission ordering.
// It only needs to be monotone-ish in instance size: the state space
// grows like n·2^n and branching with k, so k·2^n orders the paper
// grid correctly and keeps wide rings at the expensive end.
func solveCost(inst feasibility.Instance) int64 {
	inst = inst.Normalized()
	n := inst.N
	if n > 48 {
		n = 48
	}
	return int64(inst.K+1) << uint(n)
}

// admitQueue is the bounded cost-ordered admission queue. items stays
// sorted by ascending cost (ties keep arrival order): pop takes the
// cheapest, shedding evicts the most expensive.
type admitQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*flight
	cap    int
	closed bool
}

func newAdmitQueue(cap int) *admitQueue {
	q := &admitQueue{cap: cap}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits a flight. It returns the flight evicted to make room (if
// any), and ok=false when the flight was refused (queue full of
// cheaper-or-equal work, or the queue is closed).
func (q *admitQueue) push(f *flight) (evicted *flight, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, false
	}
	if len(q.items) >= q.cap {
		last := q.items[len(q.items)-1]
		if f.cost >= last.cost {
			return nil, false
		}
		evicted = last
		q.items = q.items[:len(q.items)-1]
	}
	// Insert keeping ascending cost order; equal costs go after
	// existing entries (FIFO among peers).
	i := len(q.items)
	for i > 0 && q.items[i-1].cost > f.cost {
		i--
	}
	q.items = append(q.items, nil)
	copy(q.items[i+1:], q.items[i:])
	q.items[i] = f
	q.cond.Signal()
	return evicted, true
}

// pop blocks for the cheapest queued flight; nil once the queue is
// closed and empty.
func (q *admitQueue) pop() *flight {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil
	}
	f := q.items[0]
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return f
}

func (q *admitQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// close stops admission and wakes blocked workers; it returns the
// flights still queued (never started) so the caller can respond to
// their waiters.
func (q *admitQueue) close() []*flight {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	rest := q.items
	q.items = nil
	q.cond.Broadcast()
	return rest
}
