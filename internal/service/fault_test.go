package service

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"ringrobots/internal/feasibility"
)

// The service fault-injection suite, mirroring the solver-level one in
// internal/feasibility/fault_test.go: a subprocess runs the full
// verdict service over a real store journal and SIGKILLs itself after a
// randomized number of processed branches. The parent respawns the
// service against the same store until a verdict lands, then checks the
// crash-riddled sequence served exactly the uninterrupted verdict —
// bit-identical under EncodeVerdict, including TablesExplored (single
// solve worker). This crosses every durability layer at once: periodic
// checkpoints through Service.runFlight, fsync'd store appends,
// torn-tail recovery in OpenStore, compaction racing the crashes
// (CompactAbove is set low on purpose), and the resume-on-retry path.

const serviceFaultEnv = "RINGROBOTS_SERVICE_FAULT"

// TestServiceFaultHelper is the subprocess body: one service leg that
// solves (or resumes) the configured instance, reporting the outcome on
// stdout as "RESULT resumed=<bool> verdict=<hex>".
func TestServiceFaultHelper(t *testing.T) {
	if os.Getenv(serviceFaultEnv) != "1" {
		t.Skip("not a service fault-helper invocation")
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "service fault helper: "+format+"\n", args...)
		os.Exit(2)
	}
	atoi := func(name string) int {
		v, err := strconv.Atoi(os.Getenv(name))
		if err != nil {
			fail("bad %s=%q: %v", name, os.Getenv(name), err)
		}
		return v
	}
	cfg := Default(os.Getenv("RINGROBOTS_SERVICE_STORE"))
	cfg.Workers = 1
	cfg.CheckpointEvery = 2
	cfg.CompactAbove = atoi("RINGROBOTS_SERVICE_COMPACT")
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	if crashAfter := int64(atoi("RINGROBOTS_SERVICE_CRASH_AFTER")); crashAfter > 0 {
		cfg.BranchHook = func(done int64) {
			if done >= crashAfter {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}
	svc, err := New(cfg)
	if err != nil {
		fail("New: %v", err)
	}
	inst := feasibility.Instance{N: atoi("RINGROBOTS_SERVICE_RING"), K: atoi("RINGROBOTS_SERVICE_ROBOTS")}
	resp := svc.Solve(context.Background(), Request{Instance: inst})
	if resp.Status != StatusVerdict || resp.Verdict == nil {
		fail("solve: status %v err %v", resp.Status, resp.Err)
	}
	fmt.Printf("RESULT resumed=%v verdict=%s\n", resp.Resumed, hex.EncodeToString(EncodeVerdict(*resp.Verdict)))
	if err := svc.Shutdown(context.Background()); err != nil {
		fail("shutdown: %v", err)
	}
	os.Exit(0)
}

// TestServiceCrashResumeEquivalence drives the helper with kill -9 at
// randomized branch counts until the service serves a verdict, then
// compares it byte-for-byte with the uninterrupted solve.
func TestServiceCrashResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess fault suite skipped under -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	const n, k = 7, 3
	inst := feasibility.Instance{N: n, K: k}
	// ExpansionUnits is effort accounting, not verdict content: a crash
	// re-does the work since the last checkpoint, so cumulative units
	// legitimately exceed the uninterrupted run. Everything else —
	// verdict, tier, survivor, TablesExplored — must be bit-identical.
	canon := func(v Verdict) string {
		v.ExpansionUnits = 0
		return hex.EncodeToString(EncodeVerdict(v))
	}
	canonHex := func(h string) string {
		raw, err := hex.DecodeString(h)
		if err != nil {
			t.Fatalf("bad verdict hex %q: %v", h, err)
		}
		v, err := DecodeVerdict(raw)
		if err != nil {
			t.Fatalf("helper verdict does not decode: %v", err)
		}
		return canon(v)
	}
	want := canon(verdictOf(solveDirect(t, inst)))
	storePath := filepath.Join(t.TempDir(), "store.log")
	rng := rand.New(rand.NewSource(11))
	kills := 0
	var out []byte
	for spawns := 0; ; spawns++ {
		if spawns > 300 {
			t.Fatalf("service drain did not converge after %d spawns", spawns)
		}
		crashAfter := 3 + rng.Intn(7)
		cmd := exec.Command(exe, "-test.run", "^TestServiceFaultHelper$", "-test.v")
		cmd.Env = append(os.Environ(),
			serviceFaultEnv+"=1",
			"RINGROBOTS_SERVICE_STORE="+storePath,
			"RINGROBOTS_SERVICE_RING="+strconv.Itoa(n),
			"RINGROBOTS_SERVICE_ROBOTS="+strconv.Itoa(k),
			"RINGROBOTS_SERVICE_COMPACT=8", // compact aggressively so crashes land mid-rewrite too
			"RINGROBOTS_SERVICE_CRASH_AFTER="+strconv.Itoa(crashAfter),
		)
		out, err = cmd.CombinedOutput()
		if err == nil {
			break
		}
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL {
				kills++
				continue // crashed as injected; respawn to resume
			}
		}
		t.Fatalf("helper spawn %d failed: %v\n%s", spawns, err, out)
	}
	if kills == 0 {
		t.Errorf("no SIGKILL landed across the drain")
	}
	var result string
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "RESULT ") {
			result = line
			break
		}
	}
	if result == "" {
		t.Fatalf("helper produced no RESULT line:\n%s", out)
	}
	if !strings.Contains(result, "resumed=true") {
		t.Errorf("final leg did not resume the journaled drain: %s", result)
	}
	verdictHex := canonHex(result[strings.Index(result, "verdict=")+len("verdict="):])
	if verdictHex != want {
		t.Errorf("crash-riddled verdict differs from uninterrupted solve:\n got %s\nwant %s", verdictHex, want)
	}
	// The verdict is durable: a fresh service over the same store serves
	// it from cache without any solve.
	cfg := testConfig(t)
	cfg.StorePath = storePath
	svc := mustNew(t, cfg)
	defer drainService(t, svc)
	resp := svc.Solve(context.Background(), Request{Instance: inst})
	if resp.Status != StatusVerdict || !resp.Cached {
		t.Fatalf("restarted service did not serve the verdict from the store: %+v", resp)
	}
	if got := canon(*resp.Verdict); got != want {
		t.Errorf("stored verdict differs from uninterrupted solve:\n got %s\nwant %s", got, want)
	}
	t.Logf("%d kills before verdict", kills)
}
