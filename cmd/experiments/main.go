// Command experiments reruns the reproduction experiments E1–E9 of
// DESIGN.md and prints paper-claim-vs-measured rows — the data behind
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments                 # everything except the slow game solver
//	experiments -solver         # include the Theorem 5 game-solver cases
//	experiments -e E1,E3        # a subset
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"ringrobots"
	"ringrobots/internal/align"
	"ringrobots/internal/config"
	"ringrobots/internal/corda"
	"ringrobots/internal/enumerate"
	"ringrobots/internal/feasibility"
	"ringrobots/internal/gather"
	"ringrobots/internal/search"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		withSolver = flag.Bool("solver", false, "run the exhaustive Theorem 5 game solver (minutes)")
		only       = flag.String("e", "", "comma-separated experiment ids (default: all fast ones)")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id != "" {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	run := func(id string) bool { return len(want) == 0 || want[id] }

	if run("E1") {
		e1AlignTheorem1()
	}
	if run("E3") {
		e3Figures()
	}
	if run("E4") {
		e4Impossibility(*withSolver)
	}
	if run("E5") {
		e5RingClearing()
	}
	if run("E6") {
		e6NminusThree()
	}
	if run("E7") {
		e7Gathering()
	}
	if run("E8") {
		e8Characterization()
	}
	if run("E9") {
		e9Engines()
	}
}

func header(id, claim string) {
	fmt.Printf("\n== %s ==\npaper: %s\n", id, claim)
}

func e1AlignTheorem1() {
	header("E1 (Theorem 1)", "Align reaches C* from every rigid configuration, 3 <= k < n-2")
	fmt.Println("   n   k  rigid-classes  max-moves  all-reached")
	for n := 6; n <= 13; n++ {
		for k := 3; k < n-2; k++ {
			classes, err := enumerate.RigidClasses(n, k)
			if err != nil {
				log.Fatal(err)
			}
			maxMoves := 0
			for _, c := range classes {
				moves := 0
				cur := c
				for !cur.IsCStar() {
					p, err := align.ComputePlan(cur)
					if err != nil {
						log.Fatalf("n=%d k=%d: %v", n, k, err)
					}
					cur, err = align.Apply(cur, p)
					if err != nil {
						log.Fatal(err)
					}
					moves++
					if moves > 4*n*n {
						log.Fatalf("n=%d k=%d: no convergence from %v", n, k, c)
					}
				}
				if moves > maxMoves {
					maxMoves = moves
				}
			}
			fmt.Printf("  %2d  %2d  %13d  %9d  %v\n", n, k, len(classes), maxMoves, true)
		}
	}
}

func e3Figures() {
	header("E3 (Figures 4-9)", "distinct configurations: (4,7)=4 (4,8)=8 (5,8)=5 (6,9)=7 (4,9)=10 (5,9)=10")
	fmt.Println("  figure  (k,n)   paper  measured  match")
	for _, f := range feasibility.PaperFigures() {
		g, err := ringrobots.TransitionGraph(f.N, f.K)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Fig %d   (%d,%d)  %5d  %8d  %v\n", f.Figure, f.K, f.N, f.Classes, len(g.Classes), len(g.Classes) == f.Classes)
	}
}

func e4Impossibility(full bool) {
	header("E4 (Theorems 2-5, Lemma 6)", "perpetual searching impossible for k<=3, k in {n-2,n-1}, and all 2<n<=9")
	type e4case struct {
		n, k  int
		claim string
		// budget caps MaxExpansions below the solver default (0 keeps
		// it): the wide open-region sweeps are bounded probes, not
		// exhaustive drains.
		budget int
	}
	cases := []e4case{
		{n: 4, k: 1, claim: "Thm 2"}, {n: 6, k: 1, claim: "Thm 2"},
		{n: 5, k: 2, claim: "Thm 2"}, {n: 7, k: 2, claim: "Thm 2"},
		{n: 5, k: 3, claim: "Thm 3/4"}, {n: 6, k: 3, claim: "Thm 3"}, {n: 7, k: 3, claim: "Thm 3"},
		{n: 5, k: 4, claim: "Lem 6"}, {n: 6, k: 5, claim: "Lem 6"}, {n: 7, k: 6, claim: "Lem 6"},
		{n: 6, k: 4, claim: "Thm 4"}, {n: 7, k: 5, claim: "Thm 4"},
		// Wide rings, past the former n ≤ 16 packed-state limit: the
		// 192-bit state supports n ≤ 32 end to end, and the symmetry
		// quotient keeps the interned graphs 2n× smaller. Incremental
		// branch reuse (PR 4) cuts the charged budget on the k = 3
		// drains to ≈ 4.8 units/branch (vs ≈ 34), a ~7× deeper drain per
		// budget — but the (3,19)/(3,20) table trees still exceed 52M
		// branches, so those two stay out of the sweep (wall-clock-bound
		// now; see ROADMAP.md). Where 3 | n the drain collapses to a
		// handful of tables, hence the (3,21) row.
		{n: 18, k: 1, claim: "Thm 2 (wide)"}, {n: 20, k: 2, claim: "Thm 2 (wide)"},
		{n: 24, k: 2, claim: "Thm 2 (wide)"}, {n: 32, k: 2, claim: "Thm 2 (wide)"},
		{n: 18, k: 3, claim: "Thm 3 (wide)"}, {n: 21, k: 3, claim: "Thm 3 (wide)"},
	}
	if full {
		for _, f := range feasibility.PaperFigures() {
			cases = append(cases, e4case{n: f.N, k: f.K, claim: fmt.Sprintf("Thm 5 (Fig %d)", f.Figure)})
		}
		// The k ≥ 4, n ≥ 20 sweep the symmetry quotient opened. Careful
		// with the semantics: the solver's adversary picks ANY exclusive
		// start, while the paper's possibility results (Theorem 6 and
		// the open k = 4 band) assume rigid starts. With k dividing n
		// the adversary can start perfectly periodic — every robot sees
		// one symmetric observation and short symmetric lassos beat any
		// table — so "impossible" below means "from every start
		// (symmetric included)" and does not contradict the paper
		// (rows marked *). The quotiented and unquotiented searchers
		// agree on these verdicts; the quotient just reaches them with
		// n-fold smaller graphs (a symmetric lasso collapses to a
		// near-self-loop on canonical states). Bounded-adversary
		// survivors stay labeled inconclusive, as in the (5,9) paper
		// case.
		cases = append(cases,
			e4case{n: 20, k: 4, claim: "open*", budget: 50_000_000},
			e4case{n: 20, k: 5, claim: "Thm 6*", budget: 50_000_000},
			e4case{n: 24, k: 4, claim: "open*", budget: 50_000_000},
		)
	}
	// branches-reused counts tables analyzed incrementally from their
	// parent's snapshot; states-reexpanded is the expansion work
	// actually performed, so tables-explored × graph size vs
	// states-reexpanded shows the compression incremental reuse buys.
	// memo-hit and dominated count child branches the tree-level
	// pruning layer refuted without analysis (they never reach
	// tables-explored): the subtable nogood memo and the one-step
	// dominance probe respectively.
	fmt.Println("  (k,n)   paper-claims  solver-verdict  tables-explored  branches-reused  states-reexpanded  memo-hit  dominated  time")
	for _, tc := range cases {
		t0 := time.Now()
		s := feasibility.NewSolver(tc.n, tc.k)
		if tc.budget > 0 {
			s.MaxExpansions = tc.budget
		}
		res, err := s.Solve()
		verdict := "impossible"
		switch {
		case errors.Is(err, feasibility.ErrBudget):
			verdict = "budget exhausted (inconclusive)"
		case err != nil:
			verdict = "error: " + err.Error()
		case !res.Impossible:
			// A survivor of the solver's bounded adversary is inconclusive,
			// not a contradiction: among the paper cases only (5,9) ends
			// this way — the case whose proof needs the most intricate
			// asynchronous scheduling — and the open-region rows are
			// expected to end this way.
			verdict = "survivor (bounded adversary; inconclusive)"
		}
		fmt.Printf("  (%d,%d)  %-12s  %-38s  %15d  %15d  %17d  %8d  %9d  %v\n",
			tc.k, tc.n, tc.claim, verdict, res.TablesExplored, res.BranchesReused, res.StatesReexpanded,
			res.TablesMemoHit, res.BranchesDominated,
			time.Since(t0).Round(time.Millisecond))
	}
	if !full {
		fmt.Println("  (run with -solver for the six exhaustive Theorem 5 cases and the k>=4 wide open-region sweep)")
	}
}

func e5RingClearing() {
	header("E5 (Theorem 6)", "Ring Clearing perpetually searches+explores for n>=10, 5<=k<n-3, except (5,10)")
	fmt.Println("   n   k  cycle-activations  moves/cycle  probes  max-recovery  explored")
	for _, tc := range []struct{ n, k int }{{11, 5}, {12, 6}, {13, 7}, {14, 8}, {15, 9}, {16, 5}} {
		c, err := config.CStar(tc.n, tc.k)
		if err != nil {
			log.Fatal(err)
		}
		alg, err := ringrobots.NewAlgorithm(ringrobots.Searching, tc.n, tc.k)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := search.Verify(c, alg, 3000*tc.n*tc.k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d  %2d  %17d  %11d  %6d  %12d  %v\n", tc.n, tc.k, rep.CycleLen, rep.MovesPerCycle, rep.Probes, rep.MaxRecoverySteps, rep.Explored)
	}
}

func e6NminusThree() {
	header("E6 (Theorem 7)", "NminusThree perpetually searches+explores for k=n-3, n>=10")
	fmt.Println("   n   k  cycle-activations  moves/cycle  probes  max-recovery  explored")
	for n := 10; n <= 15; n++ {
		k := n - 3
		c, err := config.CStar(n, k)
		if err != nil {
			log.Fatal(err)
		}
		// C* is rigid and valid for k = n-3 only while k < n-2: always.
		alg, err := ringrobots.NewAlgorithm(ringrobots.Searching, n, k)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := search.Verify(c, alg, 4000*n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d  %2d  %17d  %11d  %6d  %12d  %v\n", n, k, rep.CycleLen, rep.MovesPerCycle, rep.Probes, rep.MaxRecoverySteps, rep.Explored)
	}
}

func e7Gathering() {
	header("E7 (Theorem 8)", "gathering with local multiplicity detection, 2 < k < n-2")
	fmt.Println("   n   k  starts  max-moves  all-gathered")
	for n := 6; n <= 12; n++ {
		for k := 3; k < n-2; k += 2 {
			classes, err := enumerate.RigidClasses(n, k)
			if err != nil {
				log.Fatal(err)
			}
			maxMoves := 0
			for _, c := range classes {
				w, err := gather.NewWorld(c)
				if err != nil {
					log.Fatal(err)
				}
				moves, err := gather.Run(w, 200*n*n)
				if err != nil {
					log.Fatalf("n=%d k=%d: %v", n, k, err)
				}
				if moves > maxMoves {
					maxMoves = moves
				}
			}
			fmt.Printf("  %2d  %2d  %6d  %9d  %v\n", n, k, len(classes), maxMoves, true)
		}
	}
}

func e8Characterization() {
	header("E8 (contribution table)", "almost-full characterization of perpetual graph searching")
	counts := map[ringrobots.Verdict]int{}
	for n := 3; n <= 20; n++ {
		for k := 1; k <= n; k++ {
			v, _ := ringrobots.CharacterizeSearching(n, k)
			counts[v]++
		}
	}
	fmt.Printf("  verdict counts over 3<=n<=20: solvable=%d impossible=%d open=%d degenerate=%d\n",
		counts[ringrobots.Solvable], counts[ringrobots.Impossible], counts[ringrobots.Open], counts[ringrobots.Degenerate])
	fmt.Println("  (full matrix: cmd/characterize)")
}

func e9Engines() {
	header("E9 (model equivalence)", "sequential, async and goroutine executions agree for the paper's algorithms")
	rng := rand.New(rand.NewSource(9))
	n, k := 12, 5
	c, err := enumerate.RandomRigid(rng, n, k, 10000)
	if err != nil {
		log.Fatal(err)
	}
	// Sequential.
	ws, _ := gather.NewWorld(c)
	seqMoves, err := gather.Run(ws, 100000)
	if err != nil {
		log.Fatal(err)
	}
	// Async.
	wa, _ := gather.NewWorld(c)
	as := corda.NewAsyncRunner(wa, gather.Gathering{}, corda.NewRandomAsync(3, 0.4))
	if _, err := as.RunUntil((*corda.World).Gathered, 1_000_000); err != nil {
		log.Fatal(err)
	}
	// Goroutine engine.
	we, _ := gather.NewWorld(c)
	eng := &corda.Engine{World: we, Algorithm: gather.Gathering{}, Budget: 2_000_000, Seed: 4, Stop: (*corda.World).Gathered}
	_, engMoves, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  start %v\n", c)
	fmt.Printf("  sequential: gathered=%v moves=%d\n", ws.Gathered(), seqMoves)
	fmt.Printf("  async:      gathered=%v moves=%d\n", wa.Gathered(), as.Moves())
	fmt.Printf("  goroutines: gathered=%v moves=%d\n", we.Gathered(), engMoves)
}
