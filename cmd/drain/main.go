// Command drain runs an impossibility solve as a crash-safe,
// resumable "drain": the solver's periodic checkpoints are appended to
// a journal (internal/journal), SIGINT/SIGTERM suspend the search
// cleanly, budget exhaustion suspends it with the budget spent, and
// re-running the same command resumes from the journal's last
// checkpoint — surviving kill -9 between appends. The verdict, once
// reached, is journaled too, so a finished drain is idempotent.
//
// Usage:
//
//	go run ./cmd/drain -n 9 -k 5 -journal drain95.log -budget 5000000
//	# ...interrupted (signal, crash, budget); same command resumes:
//	go run ./cmd/drain -n 9 -k 5 -journal drain95.log -budget 5000000
//
// With -workers 1 (the default) a chain of suspended runs is
// bit-deterministic: it reaches the same verdict, tier and
// TablesExplored as one uninterrupted run.
//
// Distributed drains (-shards / -worker, internal/drainpool):
//
//	# coordinator: partition the frontier into 4 leased subtree shards,
//	# run worker subprocesses, merge, repeat until the verdict
//	go run ./cmd/drain -n 9 -k 5 -shards 4 -journal-dir drain95/
//
//	# a worker for one shard journal (the coordinator launches these
//	# itself; run them by hand on other machines sharing the directory)
//	go run ./cmd/drain -worker -journal drain95/shard-g001-s002.journal
//
// The coordinator journals partitions, leases and shard completions in
// <dir>/pool.journal: kill -9 it and the same command recovers the
// drain, adopting workers that are still alive. Crashed or wedged
// workers lose their lease and are reassigned with capped backoff.
//
// Offline verification and repair (-fsck):
//
//	# read-only check: parse the journal, report damaged spans and the
//	# records a resynchronizing scan recovers beyond them (exit 4 if damaged)
//	go run ./cmd/drain -fsck -journal drain95.log
//
//	# rewrite the journal to the recovered records; damaged bytes go to
//	# drain95.log.quarantine byte-exact before anything is discarded
//	go run ./cmd/drain -fsck -repair -journal drain95.log
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ringrobots/internal/drainpool"
	"ringrobots/internal/faultfs"
	"ringrobots/internal/feasibility"
	"ringrobots/internal/journal"
)

// Journal records carry a one-byte type tag.
const (
	recCheckpoint = 'C'
	recVerdict    = 'V'
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "drain: "+format+"\n", args...)
	os.Exit(1)
}

func parseTiers(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-tiers %q: %q is not an integer", s, part)
		}
		out = append(out, v)
	}
	return out, nil
}

// runWorker executes one leased shard: resume the shard journal's
// latest checkpoint, journal the terminal shard result. Everything
// identifying the shard lives in the journal, so a worker on another
// machine needs only the shared journal directory.
func runWorker(path string, budget, every, workers int, crashAfter int64) {
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	err := drainpool.RunShard(ctx, path, drainpool.WorkerOptions{
		Budget:             budget,
		CheckpointEvery:    every,
		SolverWorkers:      workers,
		CrashAfterBranches: crashAfter,
		Logf:               func(f string, a ...any) { fmt.Printf("worker: "+f+"\n", a...) },
	})
	if err != nil {
		fatalf("%v", err)
	}
}

// runFsck verifies a journal offline (any journal: a drain log, a
// shard journal, a pool journal, the serve verdict store). Without
// -repair it is read-only and lock-free — safe against a live writer,
// exiting 4 when damage is found. With -repair it takes the journal's
// writer lock, quarantines every damaged span byte-exact to the
// .quarantine sidecar, and atomically rewrites the journal to exactly
// the recovered records.
func runFsck(path string, repair bool) {
	rep, err := journal.Fsck(faultfs.OS{}, path)
	if err != nil {
		fatalf("fsck %s: %v", path, err)
	}
	fmt.Printf("fsck %s: %d bytes, %d records recoverable (%d in the valid prefix), %d damaged spans\n",
		rep.Path, rep.SizeBytes, rep.Records, rep.PrefixValid, len(rep.Spans))
	for _, sp := range rep.Spans {
		fmt.Printf("  damaged span [%d, %d): %d bytes\n", sp.Off, sp.End, sp.End-sp.Off)
	}
	if rep.Clean() {
		fmt.Println("clean")
		return
	}
	if !repair {
		fmt.Printf("damaged: %d recoverable records lie beyond the valid prefix; rerun with -repair to rewrite the journal and quarantine the damage\n", rep.Lost())
		os.Exit(4)
	}
	rr, err := journal.Repair(faultfs.OS{}, path)
	if err != nil {
		if errors.Is(err, journal.ErrLocked) {
			fatalf("repair %s: %v (a live writer holds the journal; stop it first)", path, err)
		}
		fatalf("repair %s: %v", path, err)
	}
	fmt.Printf("repaired: kept %d records, quarantined %d spans (%d bytes) to %s\n",
		rr.RecordsKept, len(rr.SpansQuarantined), rr.BytesQuarantined, rr.QuarantinePath)
}

// runCoordinator drives a sharded drain, launching this same binary in
// -worker mode for each shard lease.
func runCoordinator(inst feasibility.Instance, dir string, shards, poolProcs int, lease time.Duration, budget, every, workers, generations int, crashWorkerAfter int64) {
	exe, err := os.Executable()
	if err != nil {
		fatalf("locating own binary for worker launches: %v", err)
	}
	cfg := drainpool.Config{
		Dir:             dir,
		Instance:        inst,
		Shards:          shards,
		MaxProcs:        poolProcs,
		Lease:           lease,
		WorkerBudget:    budget,
		CheckpointEvery: every,
		SolverWorkers:   workers,
		MaxGenerations:  generations,
		Launch: func(spec drainpool.WorkerSpec) *exec.Cmd {
			args := []string{
				"-worker", "-journal", spec.JournalPath,
				"-budget", strconv.Itoa(spec.Budget),
				"-checkpoint-every", strconv.Itoa(spec.CheckpointEvery),
				"-workers", strconv.Itoa(spec.SolverWorkers),
			}
			if crashWorkerAfter > 0 && spec.Attempt == 1 {
				args = append(args, "-crash-after-branches", strconv.FormatInt(crashWorkerAfter, 10))
			}
			cmd := exec.Command(exe, args...)
			cmd.Stderr = os.Stderr
			return cmd
		},
		Logf: func(f string, a ...any) { fmt.Printf("pool: "+f+"\n", a...) },
	}
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	res, err := drainpool.Run(ctx, cfg)
	switch {
	case err == nil:
		fmt.Printf("verdict: n=%d k=%d impossible=%v tier=%d tables=%d units=%d survivor=%v\n",
			inst.N, inst.K, res.Impossible, res.Tier, res.TablesExplored, res.ExpansionUnits, res.SurvivorTable != nil)
	case errors.Is(err, drainpool.ErrSuspended):
		fmt.Printf("suspended (%v); rerun the same command to continue\n", err)
		os.Exit(3)
	default:
		fatalf("%v", err)
	}
}

func printStats(prefix string, st feasibility.CheckpointStats) {
	fmt.Printf("%s: tier=%d (index %d) frontier=%d branches depth=[%d..%d] tables=%d units=%d credits=%d nogoods=%d survivor=%v\n",
		prefix, st.Tier, st.TierIndex, st.FrontierNodes, st.FrontierDepthMin, st.FrontierDepthMax,
		st.TablesExplored, st.ExpansionUnits, st.Credits, st.Nogoods, st.HasPriorSurvivor)
}

func main() {
	n := flag.Int("n", 9, "ring size")
	k := flag.Int("k", 5, "robot count")
	journalPath := flag.String("journal", "", "journal path (required): checkpoints and the verdict are appended here")
	budget := flag.Int("budget", 0, "per-tier expansion budget for this run (0 = solver default); exhaustion suspends, resuming grants a fresh allowance")
	workers := flag.Int("workers", 1, "worker pool size (1 = bit-deterministic resume chain)")
	every := flag.Int("checkpoint-every", 64, "journal a checkpoint every this many processed branches (0 disables periodic checkpoints)")
	compactAbove := flag.Int("compact-above", 64, "compact the journal down to its latest record when it holds more than this many (0 disables)")
	sync := flag.Bool("sync", true, "fsync the journal after every append (survives power loss, not just kill -9)")
	tiers := flag.String("tiers", "", "comma-separated pending-move tier ladder (default: solver's 0,2)")
	cycleCap := flag.Int("cycle-cap", 0, "max starvation-loop length (0 = solver default)")
	crashAfter := flag.Int64("crash-after-branches", 0, "TESTING: SIGKILL this process after that many processed branches")
	fsck := flag.Bool("fsck", false, "verify the journal offline (-journal) and report damage; exits 4 if damaged and not repaired")
	repair := flag.Bool("repair", false, "with -fsck: quarantine damaged spans to <journal>.quarantine and rewrite the journal to the recovered records")
	worker := flag.Bool("worker", false, "run as a drain-pool worker for one shard journal (-journal); shard identity comes from the journal")
	shards := flag.Int("shards", 0, "run as a drain-pool coordinator partitioning the frontier into this many leased shards (requires -journal-dir)")
	journalDir := flag.String("journal-dir", "", "coordinator journal directory (pool.journal plus per-shard journals); share it to distribute workers")
	lease := flag.Duration("lease", 30*time.Second, "coordinator: reassign a shard whose journal stops growing for this long")
	poolProcs := flag.Int("pool-procs", 0, "coordinator: max concurrently running workers (0 = one per shard)")
	generations := flag.Int("generations", 0, "coordinator: suspend resumable after this many partition/merge cycles (0 = run to the verdict)")
	crashWorkerAfter := flag.Int64("crash-worker-after", 0, "TESTING: coordinator launches each shard's first attempt with -crash-after-branches set to this")
	flag.Parse()

	// Fail fast with every flag problem at once, not first-error-wins.
	var errs []error
	switch {
	case *fsck:
		if *worker || *shards > 0 {
			errs = append(errs, errors.New("-fsck conflicts with -worker and -shards: it verifies one journal offline"))
		}
		if *journalPath == "" {
			errs = append(errs, errors.New("-fsck requires -journal (the journal to verify)"))
		}
	case *repair:
		errs = append(errs, errors.New("-repair requires -fsck"))
	case *worker && *shards > 0:
		errs = append(errs, errors.New("-worker and -shards are mutually exclusive"))
	case *worker:
		if *journalPath == "" {
			errs = append(errs, errors.New("-worker requires -journal (the shard journal seeded by a coordinator)"))
		}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "n", "k", "tiers", "cycle-cap":
				errs = append(errs, fmt.Errorf("-%s conflicts with -worker: the shard journal defines the instance", f.Name))
			}
		})
	case *shards > 0:
		if *journalDir == "" {
			errs = append(errs, errors.New("-shards requires -journal-dir"))
		}
		if *journalPath != "" {
			errs = append(errs, errors.New("-journal conflicts with -shards; the coordinator owns <journal-dir>/pool.journal"))
		}
	default:
		if *journalPath == "" {
			errs = append(errs, errors.New("-journal is required"))
		}
		if *journalDir != "" {
			errs = append(errs, errors.New("-journal-dir requires -shards (coordinator mode)"))
		}
	}
	tierList, terr := parseTiers(*tiers)
	if terr != nil {
		errs = append(errs, terr)
	}
	inst := feasibility.Instance{N: *n, K: *k, MaxCycleLen: *cycleCap, PendingTiers: tierList}
	if !*worker { // a worker's instance comes from the shard journal
		if err := inst.Validate(); err != nil {
			errs = append(errs, err)
		}
	}
	if *budget < 0 {
		errs = append(errs, fmt.Errorf("-budget %d is negative", *budget))
	}
	if *workers < 1 {
		errs = append(errs, fmt.Errorf("-workers %d below minimum 1", *workers))
	}
	if *every < 0 {
		errs = append(errs, fmt.Errorf("-checkpoint-every %d is negative", *every))
	}
	if *compactAbove < 0 {
		errs = append(errs, fmt.Errorf("-compact-above %d is negative", *compactAbove))
	}
	if *crashAfter < 0 {
		errs = append(errs, fmt.Errorf("-crash-after-branches %d is negative", *crashAfter))
	}
	if *crashAfter > 0 && *every <= 0 {
		errs = append(errs, errors.New("-crash-after-branches requires -checkpoint-every > 0 (a crash without periodic checkpoints loses the whole drain)"))
	}
	if len(errs) > 0 {
		fatalf("invalid flags:\n%v", errors.Join(errs...))
	}

	if *fsck {
		runFsck(*journalPath, *repair)
		return
	}
	if *worker {
		runWorker(*journalPath, *budget, *every, *workers, *crashAfter)
		return
	}
	if *shards > 0 {
		runCoordinator(inst, *journalDir, *shards, *poolProcs, *lease, *budget, *every, *workers, *generations, *crashWorkerAfter)
		return
	}

	policy := journal.SyncNone
	if *sync {
		policy = journal.SyncAlways
	}
	log, err := journal.Open(*journalPath, policy)
	if err != nil {
		if errors.Is(err, journal.ErrCorrupt) {
			fatalf("open journal: %v\nrun `drain -fsck -journal %s` to inspect, `-fsck -repair` to quarantine the damage and recover the records beyond it", err, *journalPath)
		}
		fatalf("open journal: %v", err)
	}
	defer log.Close()

	s := feasibility.NewSolver(*n, *k)
	s.Workers = *workers
	if *budget > 0 {
		s.MaxExpansions = *budget
	}
	if *cycleCap > 0 {
		s.MaxCycleLen = *cycleCap
	}
	if tierList != nil {
		s.PendingTiers = tierList
	}

	// A finished drain is idempotent: the verdict record ends the
	// journal, so re-running just reprints it.
	var resumeFrom *feasibility.Checkpoint
	if last, ok := log.Last(); ok {
		switch last[0] {
		case recVerdict:
			fmt.Printf("drain already finished: %s\n", string(last[1:]))
			return
		case recCheckpoint:
			ck, err := feasibility.UnmarshalCheckpoint(last[1:])
			if err != nil {
				fatalf("journal %s: corrupt checkpoint record: %v", *journalPath, err)
			}
			resumeFrom = ck
			printStats("resuming", ck.Stats())
		default:
			fatalf("journal %s: unknown record type %q", *journalPath, last[0])
		}
	}

	saved := 0
	s.CheckpointEvery = *every
	if *every > 0 {
		s.OnCheckpoint = func(cp *feasibility.Checkpoint) error {
			raw, err := cp.MarshalBinary()
			if err != nil {
				return err
			}
			if err := log.Append(append([]byte{recCheckpoint}, raw...)); err != nil {
				return err
			}
			saved++
			if *compactAbove > 0 && log.Len() > *compactAbove {
				if last, ok := log.Last(); ok {
					if err := log.Compact([][]byte{last}); err != nil {
						return err
					}
				}
			}
			return nil
		}
	}
	if *crashAfter > 0 {
		s.BranchHook = func(done int64) {
			if done >= *crashAfter {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	var res feasibility.Result
	var cp *feasibility.Checkpoint
	if resumeFrom != nil {
		res, cp, err = s.Resume(ctx, resumeFrom)
	} else {
		res, cp, err = s.SolveContext(ctx)
	}

	switch {
	case err == nil:
		verdict := fmt.Sprintf("n=%d k=%d impossible=%v tier=%d tables=%d units=%d survivor=%v",
			*n, *k, res.Impossible, res.Tier, res.TablesExplored, res.ExpansionUnits, res.SurvivorTable != nil)
		if err := log.Append(append([]byte{recVerdict}, verdict...)); err != nil {
			fatalf("journal verdict: %v", err)
		}
		fmt.Printf("verdict: %s\n", verdict)
	case cp != nil:
		// Suspended (budget or signal) with a live frontier: journal the
		// final checkpoint so the next run resumes from the exact
		// suspension point, not the last periodic one.
		raw, merr := cp.MarshalBinary()
		if merr != nil {
			fatalf("marshal suspension checkpoint: %v", merr)
		}
		if aerr := log.Append(append([]byte{recCheckpoint}, raw...)); aerr != nil {
			fatalf("journal suspension checkpoint: %v", aerr)
		}
		printStats("suspended", cp.Stats())
		var be *feasibility.BudgetError
		switch {
		case errors.As(err, &be):
			fmt.Printf("budget exhausted at tier %d after %d units this run (%d periodic checkpoints); rerun to continue\n",
				be.Tier, be.Units, saved)
		default:
			fmt.Printf("suspended (%v) after %d periodic checkpoints; rerun to continue\n", err, saved)
		}
		os.Exit(3) // distinct exit: suspended, resumable
	default:
		fatalf("%v", err)
	}
}
