package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ringrobots/internal/service"
)

func TestRetryDelayHonorsRetryAfter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if d := retryDelay("2", 1, rng); d != 2*time.Second {
		t.Fatalf("Retry-After 2 -> %v, want 2s", d)
	}
	if d := retryDelay("3600", 1, rng); d != retryBackoffCap {
		t.Fatalf("huge Retry-After must cap at %v, got %v", retryBackoffCap, d)
	}
	// No (or junk) header: capped exponential backoff with jitter.
	for attempt := 1; attempt <= 12; attempt++ {
		d := retryDelay("", attempt, rng)
		lo := retryBackoffBase << uint(attempt-1)
		if lo > retryBackoffCap {
			lo = retryBackoffCap
		}
		if d < lo || d > lo+lo/2 {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, lo, lo+lo/2)
		}
	}
	if d := retryDelay("soon", 1, rng); d < retryBackoffBase {
		t.Fatalf("junk Retry-After must fall back to backoff, got %v", d)
	}
}

// TestLoadgenRetriesShedRequests stands up a fake verdict service that
// 429s every first attempt: the load generator must come back after
// Retry-After instead of counting those requests lost.
func TestLoadgenRetriesShedRequests(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen[r.URL.RawQuery]++
		n := seen[r.URL.RawQuery]
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(service.SolveBody{Status: "shed", RetryAfterSec: 0})
			return
		}
		imp, tier := true, 0
		json.NewEncoder(w).Encode(service.SolveBody{Status: "verdict", Impossible: &imp, Tier: &tier})
	})
	mux.HandleFunc("/metricz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.Snapshot{})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	if err := runLoadgen(srv.URL, 1, 8, 2, 0); err != nil {
		t.Fatalf("loadgen against 429-then-200 server: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for q, n := range seen {
		if n < 2 {
			t.Fatalf("query %q was never retried after its 429", q)
		}
	}
}
