package main

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ringrobots/internal/service"
)

func TestRetryDelayHonorsRetryAfter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if d := retryDelay("2", 1, rng); d != 2*time.Second {
		t.Fatalf("Retry-After 2 -> %v, want 2s", d)
	}
	if d := retryDelay("3600", 1, rng); d != retryBackoffCap {
		t.Fatalf("huge Retry-After must cap at %v, got %v", retryBackoffCap, d)
	}
	// No (or junk) header: capped exponential backoff with jitter.
	for attempt := 1; attempt <= 12; attempt++ {
		d := retryDelay("", attempt, rng)
		lo := retryBackoffBase << uint(attempt-1)
		if lo > retryBackoffCap {
			lo = retryBackoffCap
		}
		if d < lo || d > lo+lo/2 {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, lo, lo+lo/2)
		}
	}
	if d := retryDelay("soon", 1, rng); d < retryBackoffBase {
		t.Fatalf("junk Retry-After must fall back to backoff, got %v", d)
	}
}

// TestLoadgenRetriesShedRequests stands up a fake verdict service that
// 429s every first attempt: the load generator must come back after
// Retry-After instead of counting those requests lost.
func TestLoadgenRetriesShedRequests(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen[r.URL.RawQuery]++
		n := seen[r.URL.RawQuery]
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(service.SolveBody{Status: "shed", RetryAfterSec: 0})
			return
		}
		imp, tier := true, 0
		json.NewEncoder(w).Encode(service.SolveBody{Status: "verdict", Impossible: &imp, Tier: &tier})
	})
	mux.HandleFunc("/metricz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.Snapshot{})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	if err := runLoadgen(context.Background(), srv.URL, 1, 8, 2, 0); err != nil {
		t.Fatalf("loadgen against 429-then-200 server: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for q, n := range seen {
		if n < 2 {
			t.Fatalf("query %q was never retried after its 429", q)
		}
	}
}

// TestRetryBudgetCapsWallClock pins the pure retry policy: attempts
// are capped, and so is the total wall-clock a request may burn in
// retry sleeps — however generous the server's Retry-After hints.
func TestRetryBudgetCapsWallClock(t *testing.T) {
	if shouldRetry429(max429Attempts, 0, time.Millisecond) {
		t.Fatal("retry allowed past the attempt cap")
	}
	if !shouldRetry429(1, 0, time.Second) {
		t.Fatal("first cheap retry refused")
	}
	if shouldRetry429(2, retryWallClockCap, time.Millisecond) {
		t.Fatal("retry allowed after the wall-clock budget is spent")
	}
	// The budget counts the upcoming sleep too: a 5s Retry-After with
	// 26s already elapsed would land past the cap.
	if shouldRetry429(2, retryWallClockCap-4*time.Second, 5*time.Second) {
		t.Fatal("retry allowed when the next sleep overshoots the budget")
	}
	if !shouldRetry429(2, retryWallClockCap-6*time.Second, 5*time.Second) {
		t.Fatal("retry refused with budget left for the next sleep")
	}
}

// TestLoadgenCancellationInterruptsRetries stands up a server that
// ALWAYS 429s with a long Retry-After, cancels mid-run, and requires a
// prompt return: retry sleeps, in-flight requests, and undispatched
// queries must all observe the cancellation instead of serving out
// their backoff.
func TestLoadgenCancellationInterruptsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(service.SolveBody{Status: "shed", RetryAfterSec: 2})
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := runLoadgen(ctx, srv.URL, 1, 32, 2, 0)
	elapsed := time.Since(start)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled loadgen returned %v, want context.Canceled", err)
	}
	// Well under one 2s Retry-After sleep, let alone 32 requests' worth.
	if elapsed > time.Second {
		t.Fatalf("canceled loadgen took %v to return — retries outlived the context", elapsed)
	}
}
