package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ringrobots/internal/service"
)

// Load-generator mode (-target): replay a deterministic sampled (k, n)
// query mix against a running verdict service (cmd/serve) and report
// per-status counts and end-to-end latency percentiles, plus the
// server's own /metricz view. The mix follows the paper's band — rings
// 3..9 with a uniformly random robot count — with a ~10% tail of wide
// rings (n 12..16, k=3). The wide tail carries a small explicit budget:
// those trees cost tens of millions of expansion units (minutes of
// CPU), so an unbudgeted query would occupy a worker for the whole run;
// budgeted, each suspends to a journaled checkpoint in well under a
// second and exercises the 202/resume path instead. The same seed
// produces the same request sequence, so runs are comparable.

type loadQuery struct {
	n, k   int
	budget int // 0 = server default
}

// A load-shed 429 is the server asking for patience, not a lost
// request: honor its Retry-After hint (or fall back to capped
// exponential backoff with jitter) and retry a few times before
// giving the request up. Retries surface as their own "retry-429"
// status bucket so shedding stays visible in the report.
const (
	max429Attempts   = 5
	retryBackoffBase = 100 * time.Millisecond
	retryBackoffCap  = 5 * time.Second
	// retryWallClockCap bounds the TOTAL time one request may spend
	// waiting between 429 retries, on top of the attempt cap: a server
	// advertising long Retry-After values could otherwise pin a worker
	// on a single query for max429Attempts × Retry-After.
	retryWallClockCap = 30 * time.Second
)

// shouldRetry429 decides whether to wait d and re-send after the
// attempt-th try of one request, given the wall-clock already elapsed
// since that request's first send. Pure, so the retry-budget policy is
// testable without a server.
func shouldRetry429(attempt int, elapsed, d time.Duration) bool {
	return attempt < max429Attempts && elapsed+d <= retryWallClockCap
}

// sleepCtx waits d unless ctx is canceled first, reporting whether the
// full wait happened — retry sleeps must not outlive an interrupt.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// retryDelay picks the wait before attempt+1: the server's Retry-After
// seconds when given, else base·2^(attempt-1) plus up to 50% jitter,
// both capped.
func retryDelay(retryAfter string, attempt int, rng *rand.Rand) time.Duration {
	if sec, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && sec >= 0 {
		d := time.Duration(sec) * time.Second
		if d > retryBackoffCap {
			d = retryBackoffCap
		}
		return d
	}
	shift := attempt - 1
	if shift > 16 {
		shift = 16
	}
	d := retryBackoffBase << uint(shift)
	if d > retryBackoffCap {
		d = retryBackoffCap
	}
	return d + time.Duration(rng.Int63n(int64(d)/2+1))
}

// wideRingBudget suspends a wide-ring solve after roughly a quarter
// second of expansion work.
const wideRingBudget = 100_000

// sampleQueryMix draws the deterministic request list for a seed.
func sampleQueryMix(seed int64, requests int) []loadQuery {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]loadQuery, requests)
	for i := range qs {
		if rng.Intn(10) == 0 {
			qs[i] = loadQuery{n: 12 + rng.Intn(5), k: 3, budget: wideRingBudget}
		} else {
			n := 3 + rng.Intn(7)
			qs[i] = loadQuery{n: n, k: 1 + rng.Intn(n-1)}
		}
	}
	return qs
}

func runLoadgen(ctx context.Context, target string, seed int64, requests, concurrency, budget int) error {
	qs := sampleQueryMix(seed, requests)
	client := &http.Client{Timeout: 2 * time.Minute}

	type outcome struct {
		status  string
		code    int
		latency time.Duration
		retries int
		err     error
	}
	outcomes := make([]outcome, requests)
	idx := make(chan int)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w))) // jitter only; the query mix is fixed
			for i := range idx {
				url := fmt.Sprintf("%s/solve?n=%d&k=%d", target, qs[i].n, qs[i].k)
				if b := qs[i].budget; budget > 0 {
					url += fmt.Sprintf("&budget=%d", budget) // explicit flag overrides the mix
				} else if b > 0 {
					url += fmt.Sprintf("&budget=%d", b)
				}
				var o outcome
				first := time.Now()
				for attempt := 1; ; attempt++ {
					req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
					if err != nil {
						o.status, o.err = "transport-error", err
						break
					}
					start := time.Now()
					resp, err := client.Do(req)
					lat := time.Since(start)
					if err != nil {
						// An interrupt mid-request is cancellation, not a
						// server failure — don't fail the run over it.
						if ctx.Err() != nil {
							o.status, o.latency = "canceled", lat
						} else {
							o.status, o.latency, o.err = "transport-error", lat, err
						}
						break
					}
					if resp.StatusCode == http.StatusTooManyRequests {
						d := retryDelay(resp.Header.Get("Retry-After"), attempt, rng)
						if shouldRetry429(attempt, time.Since(first), d) {
							io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
							o.retries++
							if !sleepCtx(ctx, d) {
								o.status, o.latency = "canceled", lat
								break
							}
							continue
						}
						// Attempt or retry-wall-clock budget exhausted:
						// fall through and record the 429 body as final.
					}
					var body service.SolveBody
					decErr := json.NewDecoder(resp.Body).Decode(&body)
					resp.Body.Close()
					if decErr != nil {
						o.status, o.code, o.latency, o.err = "bad-body", resp.StatusCode, lat, decErr
						break
					}
					o.status, o.code, o.latency = body.Status, resp.StatusCode, lat
					break
				}
				outcomes[i] = o
			}
		}(w)
	}
	sent := len(qs)
dispatch:
	for i := range qs {
		select {
		case idx <- i:
		case <-ctx.Done():
			sent = i
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	elapsed := time.Since(t0)
	// Requests an interrupt kept from ever being dispatched.
	for i := sent; i < len(qs); i++ {
		outcomes[i] = outcome{status: "canceled"}
	}

	counts := map[string]int{}
	lats := make([]time.Duration, 0, requests)
	var worstErr error
	retries := 0
	for _, o := range outcomes {
		counts[o.status]++
		retries += o.retries
		if o.latency > 0 { // never-sent canceled requests carry no latency
			lats = append(lats, o.latency)
		}
		if o.err != nil && worstErr == nil {
			worstErr = o.err
		}
	}
	if retries > 0 {
		counts["retry-429"] = retries
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(q*float64(len(lats)-1))]
	}
	fmt.Printf("target=%s requests=%d concurrency=%d seed=%d\n", target, requests, concurrency, seed)
	fmt.Printf("done in %.3gs (%.1f req/sec)\n", elapsed.Seconds(), float64(requests)/elapsed.Seconds())
	statuses := make([]string, 0, len(counts))
	for s := range counts {
		statuses = append(statuses, s)
	}
	sort.Strings(statuses)
	for _, s := range statuses {
		fmt.Printf("  %-16s %d\n", s, counts[s])
	}
	if len(lats) > 0 {
		fmt.Printf("latency: p50=%v p90=%v p99=%v max=%v\n",
			pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	}
	if ctx.Err() != nil {
		// Interrupted: the per-request counts above are the report;
		// don't block exit on a /metricz round-trip.
		fmt.Println("interrupted; skipping /metricz")
		return ctx.Err()
	}

	// The server's own accounting closes the loop: how many of those
	// requests one solve answered, and what was suspended or shed.
	resp, err := client.Get(target + "/metricz")
	if err != nil {
		return fmt.Errorf("fetch /metricz: %w", err)
	}
	defer resp.Body.Close()
	var snap service.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("decode /metricz: %w", err)
	}
	fmt.Printf("server: solves=%d cache_hits=%d deduped=%d suspended=%d shed=%d rejected=%d resumed=%d\n",
		snap.SolvesStarted, snap.CacheHits, snap.Deduped, snap.Suspended,
		snap.Shed, snap.Rejected, snap.ResumedDrains)
	fmt.Printf("server latency: p50=%.3gms p90=%.3gms p99=%.3gms over %d solves\n",
		snap.SolveLatencyMsP50, snap.SolveLatencyMsP90, snap.SolveLatencyMsP99, snap.SolveSamples)
	if worstErr != nil {
		return fmt.Errorf("%d requests failed in transport (first: %w)",
			counts["transport-error"]+counts["bad-body"], worstErr)
	}
	return nil
}
