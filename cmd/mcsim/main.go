// Command mcsim runs batched Monte Carlo simulation of the paper's
// tasks: thousands to millions of independent fair-schedule samples
// through the struct-of-arrays batch engine, reporting empirical
// gathering times, coverage, and clearing recurrence.
//
// Usage:
//
//	mcsim -task gathering -n 12 -k 5 -samples 100000 -seed 7
//	mcsim -task searching -n 12 -k 6 -samples 10000 -steps 20000
//	mcsim -task gathering -n 12 -k 5 -samples 1000 -backend both   # differential
//	mcsim -task gathering -n 12 -k 5 -samples 1000 -verify 16      # lane replay
//	mcsim -target http://localhost:8080 -requests 200 -concurrency 8
//
// With -target the simulator becomes a load generator for the verdict
// service (cmd/serve): it replays a seeded (k, n) query mix against the
// service and reports per-status counts and latency percentiles (see
// loadgen.go). Simulation flags (-task, -backend, -verify, ...) do not
// apply in that mode.
//
// The starting configuration is the same seeded random rigid one
// cmd/ringsim would draw, so a batch run and a trace run are directly
// comparable. The report is a pure function of the flags: any worker
// count, and either backend, produces bit-identical statistics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ringrobots"
	"ringrobots/internal/corda"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcsim: ")
	var (
		taskName = flag.String("task", "gathering", "task: exploration | searching | gathering")
		n        = flag.Int("n", 12, "ring size (max 64)")
		k        = flag.Int("k", 5, "number of robots")
		seed     = flag.Int64("seed", 1, "root seed (initial configuration and every lane's schedule)")
		samples  = flag.Int("samples", 100000, "number of independent schedule samples (lanes)")
		steps    = flag.Int("steps", 0, "per-lane scheduler-tick budget (0: task-dependent default)")
		workers  = flag.Int("workers", 0, "worker goroutines (0: GOMAXPROCS)")
		backend  = flag.String("backend", "batch", "backend: batch | proof | both (both cross-checks bit-identity)")
		verify   = flag.Int("verify", 0, "replay this many lanes move-for-move through the reference engine")

		target      = flag.String("target", "", "verdict-service base URL: run as a load generator instead of a simulator")
		requests    = flag.Int("requests", 200, "load generator: total /solve requests to fire")
		concurrency = flag.Int("concurrency", 8, "load generator: concurrent client connections")
		budget      = flag.Int("budget", 0, "load generator: per-request expansion budget passed to the service (0 = server default)")
	)
	flag.Parse()

	// Fail fast with every flag problem at once, not first-error-wins.
	var errs []error
	var task ringrobots.Task
	switch *taskName {
	case "exploration":
		task = ringrobots.Exploration
	case "searching":
		task = ringrobots.Searching
	case "gathering":
		task = ringrobots.Gathering
	default:
		errs = append(errs, fmt.Errorf("unknown -task %q (want exploration | searching | gathering)", *taskName))
	}
	switch *backend {
	case "batch", "proof", "both":
	default:
		errs = append(errs, fmt.Errorf("unknown -backend %q (want batch | proof | both)", *backend))
	}
	if *n < 3 || *n > 64 {
		errs = append(errs, fmt.Errorf("-n %d out of range [3, 64]", *n))
	} else if *k < 1 || *k >= *n {
		errs = append(errs, fmt.Errorf("-k %d out of range [1, n-1] for n=%d", *k, *n))
	}
	if *samples < 1 {
		errs = append(errs, fmt.Errorf("-samples %d below minimum 1", *samples))
	}
	if *steps < 0 {
		errs = append(errs, fmt.Errorf("-steps %d is negative", *steps))
	}
	if *workers < 0 {
		errs = append(errs, fmt.Errorf("-workers %d is negative", *workers))
	}
	if *verify < 0 {
		errs = append(errs, fmt.Errorf("-verify %d is negative", *verify))
	}
	if *target != "" {
		// Load-generator mode: the simulation-only flags conflict.
		if *backend != "batch" {
			errs = append(errs, fmt.Errorf("-target conflicts with -backend %q (no simulation runs in load-generator mode)", *backend))
		}
		if *verify > 0 {
			errs = append(errs, fmt.Errorf("-target conflicts with -verify %d (no lanes to replay in load-generator mode)", *verify))
		}
		if *requests < 1 {
			errs = append(errs, fmt.Errorf("-requests %d below minimum 1", *requests))
		}
		if *concurrency < 1 {
			errs = append(errs, fmt.Errorf("-concurrency %d below minimum 1", *concurrency))
		}
		if *budget < 0 {
			errs = append(errs, fmt.Errorf("-budget %d is negative", *budget))
		}
	}
	if len(errs) > 0 {
		log.Fatalf("invalid flags:\n%v", errors.Join(errs...))
	}

	if *target != "" {
		// SIGINT/SIGTERM cancel the load run promptly: in-flight requests
		// and retry sleeps are interrupted, pending ones never sent.
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		if err := runLoadgen(ctx, *target, *seed, *requests, *concurrency, *budget); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *steps == 0 {
		if task == ringrobots.Gathering {
			*steps = 1000 * *n * *n // generous: random schedules gather in O(n·k) ticks
		} else {
			*steps = 20000
		}
	}

	start, err := ringrobots.RandomRigidConfig(rand.New(rand.NewSource(*seed)), *n, *k)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := ringrobots.MonteCarloSpec(task, start, *samples, *steps, uint64(*seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task=%s algorithm=%s n=%d k=%d samples=%d steps=%d seed=%d\n",
		task, spec.Algorithm.Name(), *n, *k, *samples, *steps, *seed)
	fmt.Printf("start: %v\n", start)

	batch, err := ringrobots.NewBatchBackend(spec, *workers)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	rep, err := batch.Simulate()
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)
	if *backend == "proof" || *backend == "both" {
		proof, err := ringrobots.NewProofBackend(spec)
		if err != nil {
			log.Fatal(err)
		}
		t1 := time.Now()
		prep, err := proof.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("proof backend: %.3gs (batch %.3gs, %.0fx)\n",
			time.Since(t1).Seconds(), elapsed.Seconds(), time.Since(t1).Seconds()/elapsed.Seconds())
		if *backend == "both" {
			if prep != rep {
				log.Fatalf("DIFFERENTIAL FAILURE: proof report differs from batch\nbatch: %+v\nproof: %+v", rep, prep)
			}
			fmt.Println("differential: proof report bit-identical to batch")
		}
		if *backend == "proof" {
			rep = prep
		}
	}

	printReport(task, *n, rep, elapsed)

	for lane := 0; lane < *verify && lane < *samples; lane++ {
		if _, err := batch.VerifyLane(lane); err != nil {
			log.Fatal(err)
		}
	}
	if *verify > 0 {
		fmt.Printf("verified %d lanes move-for-move against the reference engine\n", min(*verify, *samples))
	}

	if task == ringrobots.Gathering && rep.Gathered() != rep.Samples {
		fmt.Printf("warning: %d lanes exhausted the budget before gathering\n", rep.Samples-rep.Gathered())
		os.Exit(1)
	}
}

func printReport(task ringrobots.Task, n int, rep ringrobots.SimReport, elapsed time.Duration) {
	fmt.Printf("lanes: %d in %.3gs (%.2fM steps/sec, %.3g samples/sec)\n",
		rep.Samples, elapsed.Seconds(),
		float64(rep.Steps)/elapsed.Seconds()/1e6, float64(rep.Samples)/elapsed.Seconds())
	fmt.Printf("steps: %d total, %d moves\n", rep.Steps, rep.Moves)
	fmt.Printf("outcomes: gathered=%d budget=%d collision=%d\n",
		rep.Outcomes[corda.LaneGathered], rep.Outcomes[corda.LaneBudget], rep.Outcomes[corda.LaneCollision])
	if task == ringrobots.Gathering {
		fmt.Printf("gathering: rate=%.4f mean=%.1f ticks, histogram %v\n",
			rep.GatheredRate(), rep.MeanGatherSteps(), rep.GatherHist)
	}
	fmt.Printf("coverage: mean %.2f of %d nodes, %d lanes covered all\n",
		float64(rep.CoverageSum)/float64(rep.Samples), n, rep.CoveredLanes)
	if task == ringrobots.Searching {
		fmt.Printf("clearing: %d all-clear events, %d lanes cleared, %d recurrently (mean %.1f events/lane)\n",
			rep.AllClearEvents, rep.AllClearLanes, rep.RecurrentClearLanes,
			float64(rep.AllClearEvents)/float64(rep.Samples))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
