// Command transitions regenerates the configuration-transition diagrams
// of the paper's Figures 4–9: the distinct exclusive configurations for
// the six impossibility cases of Theorem 5 and the single-move arcs
// between them.
//
// Usage:
//
//	transitions            # all six paper figures, as text
//	transitions -dot       # Graphviz output
//	transitions -n 8 -k 4  # one custom case
package main

import (
	"flag"
	"fmt"
	"log"

	"ringrobots"
	"ringrobots/internal/feasibility"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("transitions: ")
	var (
		n   = flag.Int("n", 0, "ring size (0 = all six paper figures)")
		k   = flag.Int("k", 0, "number of robots")
		dot = flag.Bool("dot", false, "emit Graphviz DOT instead of text")
	)
	flag.Parse()

	if *n != 0 || *k != 0 {
		emit(*n, *k, 0, *dot)
		return
	}
	for _, f := range feasibility.PaperFigures() {
		emit(f.N, f.K, f.Figure, *dot)
	}
}

func emit(n, k, figure int, dot bool) {
	g, err := ringrobots.TransitionGraph(n, k)
	if err != nil {
		log.Fatal(err)
	}
	if figure > 0 {
		fmt.Printf("── paper Figure %d ──\n", figure)
	}
	if dot {
		fmt.Print(g.DOT())
	} else {
		fmt.Print(g.String())
	}
	fmt.Println()
}
