// Command bench runs the repo's benchmark families programmatically and
// emits a machine-readable BENCH_<date>.json, so the performance
// trajectory of the hot paths (configuration algebra, Align planning,
// Look/snapshot construction, enumeration, the impossibility solver) is
// tracked across PRs.
//
// Usage:
//
//	go run ./cmd/bench            # writes BENCH_<yyyy-mm-dd>.json
//	go run ./cmd/bench -out f.json -filter Align
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"ringrobots/internal/align"
	"ringrobots/internal/config"
	"ringrobots/internal/corda"
	"ringrobots/internal/enumerate"
	"ringrobots/internal/feasibility"
	"ringrobots/internal/gather"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	Benchmarks []result `json:"benchmarks"`
}

type family struct {
	name string
	fn   func(b *testing.B)
}

func families() []family {
	var fams []family
	add := func(name string, fn func(b *testing.B)) {
		fams = append(fams, family{name: name, fn: fn})
	}

	rigid := func(seed int64, n, k int) config.Config {
		c, err := enumerate.RandomRigid(rand.New(rand.NewSource(seed)), n, k, 100000)
		if err != nil {
			panic(err)
		}
		return c
	}

	// Configuration algebra: memoized, cold-kernel, and canonical key.
	c256 := rigid(3, 256, 32)
	add("Supermin/n=256/k=32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c256.Supermin()
		}
	})
	nodes256 := c256.Nodes()
	add("SuperminCold/n=256/k=32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fresh := config.MustNew(256, nodes256...)
			fresh.Supermin()
		}
	})
	add("CanonKey/n=256/k=32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fresh := config.MustNew(256, nodes256...)
			fresh.CanonKey()
		}
	})
	c128 := rigid(4, 128, 24)
	add("RigidityDetection/n=128/k=24", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !c128.IsRigid() {
				b.Fatal("fixture lost rigidity")
			}
		}
	})

	// Align planning loop (drive to C* from a rigid start).
	for _, tc := range []struct{ n, k int }{{12, 5}, {24, 8}, {48, 12}, {96, 16}} {
		start := rigid(1, tc.n, tc.k)
		add(fmt.Sprintf("AlignPlanner/n=%d/k=%d", tc.n, tc.k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := start
				for !c.IsCStar() {
					p, err := align.ComputePlan(c)
					if err != nil {
						b.Fatal(err)
					}
					c, err = align.Apply(c, p)
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}

	// One robot's Look+Compute.
	cLocal := rigid(2, 32, 10)
	wLocal := corda.FromConfig(cLocal, true)
	snapLocal, _ := wLocal.Snapshot(3)
	add("AlignLocalDecision/n=32/k=10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			align.DecideFromSnapshot(snapLocal)
		}
	})

	// Snapshot construction (the shared cost of every Look).
	cSnap := rigid(7, 256, 24)
	wSnap := corda.FromConfig(cSnap, true)
	add("Snapshot/n=256/k=24", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wSnap.Snapshot(i % 24)
		}
	})

	// Enumeration / transition diagrams (Figure 5: k=4, n=8).
	add("TransitionDiagram/fig5_k4_n8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := feasibility.NewTransitionGraph(8, 4)
			if err != nil {
				b.Fatal(err)
			}
			if len(g.Classes) != 8 {
				b.Fatalf("class count %d != 8", len(g.Classes))
			}
		}
	})

	// Impossibility game solver (Figure 4's parameters).
	add("Impossibility/k=4_n=7", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := feasibility.NewSolver(7, 4).Solve()
			if err != nil {
				b.Fatal(err)
			}
			if !res.Impossible {
				b.Fatal("expected impossibility")
			}
		}
	})

	// Full solver runs, sequential vs parallel (the sharded table search;
	// on a single-vCPU runner both land in the same ballpark).
	for _, tc := range []struct {
		n, k, workers int
	}{
		{7, 4, 1}, {7, 4, 0}, {8, 5, 1}, {8, 5, 0},
	} {
		tc := tc
		add(fmt.Sprintf("FeasibilitySolve/n=%d/k=%d/workers=%d", tc.n, tc.k, tc.workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := feasibility.NewSolver(tc.n, tc.k)
				s.Workers = tc.workers
				res, err := s.Solve()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Impossible {
					b.Fatal("expected impossibility")
				}
			}
		})
	}

	// State-expansion throughput on the deep (5,9) case: fixed
	// 2M-expansion budget per op, so every op does identical graph work.
	for _, workers := range []int{1, 0} {
		workers := workers
		add(fmt.Sprintf("FeasibilityThroughput/n=9/k=5/budget=2M/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := feasibility.NewSolver(9, 5)
				s.Workers = workers
				s.MaxExpansions = 2_000_000
				if _, err := s.Solve(); err != nil && err != feasibility.ErrBudget {
					b.Fatal(err)
				}
			}
		})
	}

	// Full gathering run (Align phase + contraction + final walk).
	gStart := rigid(5, 24, 8)
	add("Gathering/n=24/k=8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w, err := gather.NewWorld(gStart)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := gather.Run(w, 500*24*24); err != nil {
				b.Fatal(err)
			}
		}
	})

	return fams
}

func main() {
	date := time.Now().Format("2006-01-02")
	out := flag.String("out", "BENCH_"+date+".json", "output JSON path")
	filter := flag.String("filter", "", "only run families whose name contains this substring")
	flag.Parse()

	rep := report{
		Date:      date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, f := range families() {
		if *filter != "" && !strings.Contains(f.name, *filter) {
			continue
		}
		r := testing.Benchmark(f.fn)
		res := result{
			Name:        f.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
		fmt.Printf("%-32s %12.1f ns/op %8d allocs/op %10d B/op\n",
			res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
