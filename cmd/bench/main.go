// Command bench runs the repo's benchmark families programmatically and
// emits a machine-readable BENCH_<date>.json, so the performance
// trajectory of the hot paths (configuration algebra, Align planning,
// Look/snapshot construction, enumeration, the impossibility solver) is
// tracked across PRs.
//
// Usage:
//
//	go run ./cmd/bench            # writes BENCH_<yyyy-mm-dd>.json
//	go run ./cmd/bench -out f.json -filter Align
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"ringrobots/internal/align"
	"ringrobots/internal/config"
	"ringrobots/internal/corda"
	"ringrobots/internal/core"
	"ringrobots/internal/enumerate"
	"ringrobots/internal/feasibility"
	"ringrobots/internal/gather"
	"ringrobots/internal/mcsim"
)

type result struct {
	Name       string `json:"name"`
	Iterations int    `json:"iterations"`
	// NsPerOp is the median over Repeats independent runs — the point
	// estimate benchdiff compares.
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Repeats and the spread below let benchdiff separate machine noise
	// from real regressions: a slowdown only counts when the runs'
	// ranges are disjoint beyond the threshold. Repeats == 1 (or absent,
	// in reports from before the field existed) disables that and falls
	// back to comparing point estimates.
	Repeats     int     `json:"repeats,omitempty"`
	NsPerOpMin  float64 `json:"ns_per_op_min,omitempty"`
	NsPerOpMax  float64 `json:"ns_per_op_max,omitempty"`
	NsPerOpStdd float64 `json:"ns_per_op_stddev,omitempty"`
}

type report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	Repeats    int      `json:"repeats,omitempty"`
	Benchmarks []result `json:"benchmarks"`
	// SolverCounters records the tree-level statistics of reference
	// impossibility solves (explored tables, memo hits, dominated
	// branches, …) so the pruning trajectory is tracked alongside the
	// timing rows. Ignored by cmd/benchdiff (which gates only ns/op).
	SolverCounters []solverCounters `json:"solver_counters,omitempty"`
}

// solverCounters is one reference solve's tree-level statistics.
type solverCounters struct {
	Case              string `json:"case"`
	TablesExplored    int    `json:"tables_explored"`
	TablesMemoHit     int64  `json:"tables_memo_hit"`
	BranchesDominated int64  `json:"branches_dominated"`
	BranchesReused    int64  `json:"branches_reused"`
	StatesReexpanded  int64  `json:"states_reexpanded"`
}

type family struct {
	name string
	fn   func(b *testing.B)
}

func families() []family {
	var fams []family
	add := func(name string, fn func(b *testing.B)) {
		fams = append(fams, family{name: name, fn: fn})
	}

	rigid := func(seed int64, n, k int) config.Config {
		c, err := enumerate.RandomRigid(rand.New(rand.NewSource(seed)), n, k, 100000)
		if err != nil {
			panic(err)
		}
		return c
	}

	// Configuration algebra: memoized, cold-kernel, and canonical key.
	c256 := rigid(3, 256, 32)
	add("Supermin/n=256/k=32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c256.Supermin()
		}
	})
	nodes256 := c256.Nodes()
	add("SuperminCold/n=256/k=32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fresh := config.MustNew(256, nodes256...)
			fresh.Supermin()
		}
	})
	add("CanonKey/n=256/k=32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fresh := config.MustNew(256, nodes256...)
			fresh.CanonKey()
		}
	})
	c128 := rigid(4, 128, 24)
	add("RigidityDetection/n=128/k=24", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !c128.IsRigid() {
				b.Fatal("fixture lost rigidity")
			}
		}
	})

	// Align planning loop (drive to C* from a rigid start).
	for _, tc := range []struct{ n, k int }{{12, 5}, {24, 8}, {48, 12}, {96, 16}} {
		start := rigid(1, tc.n, tc.k)
		add(fmt.Sprintf("AlignPlanner/n=%d/k=%d", tc.n, tc.k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := start
				for !c.IsCStar() {
					p, err := align.ComputePlan(c)
					if err != nil {
						b.Fatal(err)
					}
					c, err = align.Apply(c, p)
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}

	// One robot's Look+Compute.
	cLocal := rigid(2, 32, 10)
	wLocal := corda.FromConfig(cLocal, true)
	snapLocal, _ := wLocal.Snapshot(3)
	add("AlignLocalDecision/n=32/k=10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			align.DecideFromSnapshot(snapLocal)
		}
	})

	// Snapshot construction (the shared cost of every Look).
	cSnap := rigid(7, 256, 24)
	wSnap := corda.FromConfig(cSnap, true)
	add("Snapshot/n=256/k=24", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wSnap.Snapshot(i % 24)
		}
	})

	// Enumeration / transition diagrams (Figure 5: k=4, n=8).
	add("TransitionDiagram/fig5_k4_n8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := feasibility.NewTransitionGraph(8, 4)
			if err != nil {
				b.Fatal(err)
			}
			if len(g.Classes) != 8 {
				b.Fatalf("class count %d != 8", len(g.Classes))
			}
		}
	})

	// Impossibility game solver (Figure 4's parameters).
	add("Impossibility/k=4_n=7", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := feasibility.NewSolver(7, 4).Solve()
			if err != nil {
				b.Fatal(err)
			}
			if !res.Impossible {
				b.Fatal("expected impossibility")
			}
		}
	})

	// Full solver runs, sequential vs parallel (the sharded table search;
	// on a single-vCPU runner both land in the same ballpark). The
	// incremental=off and prune=off rows keep the respective oracles'
	// cost on record, quantifying the sibling-branch reuse and
	// tree-level pruning wins over time.
	for _, tc := range []struct {
		n, k, workers int
		noIncremental bool
		noPrune       bool
	}{
		{7, 4, 1, false, false}, {7, 4, 0, false, false},
		{8, 5, 1, false, false}, {8, 5, 0, false, false},
		{7, 4, 1, true, false}, {8, 5, 1, true, false},
		{7, 4, 1, false, true}, {8, 5, 1, false, true},
	} {
		tc := tc
		name := fmt.Sprintf("FeasibilitySolve/n=%d/k=%d/workers=%d", tc.n, tc.k, tc.workers)
		if tc.noIncremental {
			name += "/incremental=off"
		}
		if tc.noPrune {
			name += "/prune=off"
		}
		add(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := feasibility.NewSolver(tc.n, tc.k)
				s.Workers = tc.workers
				s.NoIncremental = tc.noIncremental
				s.NoPrune = tc.noPrune
				res, err := s.Solve()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Impossible {
					b.Fatal("expected impossibility")
				}
			}
		})
	}

	// State-expansion throughput on the deep (5,9) case: fixed
	// 2M-expansion budget per op, so every op does identical graph work.
	// The quotient=off row keeps the unquotiented oracle's cost on
	// record, quantifying the symmetry quotient's win over time.
	for _, tc := range []struct {
		workers    int
		noQuotient bool
	}{
		{1, false}, {0, false}, {1, true},
	} {
		tc := tc
		quot := "on"
		if tc.noQuotient {
			quot = "off"
		}
		add(fmt.Sprintf("FeasibilityThroughput/n=9/k=5/budget=2M/workers=%d/quotient=%s", tc.workers, quot), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := feasibility.NewSolver(9, 5)
				s.Workers = tc.workers
				s.MaxExpansions = 2_000_000
				s.NoQuotient = tc.noQuotient
				if _, err := s.Solve(); err != nil && !errors.Is(err, feasibility.ErrBudget) {
					b.Fatal(err)
				}
			}
		})
	}

	// Full gathering run (Align phase + contraction + final walk).
	gStart := rigid(5, 24, 8)
	add("Gathering/n=24/k=8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w, err := gather.NewWorld(gStart)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := gather.Run(w, 500*24*24); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Batched Monte Carlo simulation (internal/mcsim): one op = one warm
	// batch (caches populated, steady state allocates nothing). Divide
	// ns/op by the lane count for per-sample cost; the
	// EngineGoroutineGather row is the goroutine-per-robot baseline the
	// batch engine's speedup is measured against (per gathered sample).
	mcStart := rigid(8, 12, 5)
	mcSpec := func(task core.Task, samples, steps int) corda.SimSpec {
		spec, err := mcsim.SpecFor(task, mcStart, samples, steps, 42)
		if err != nil {
			panic(err)
		}
		return spec
	}
	addMC := func(name string, spec corda.SimSpec, workers int) {
		e, err := mcsim.New(spec, workers)
		if err != nil {
			panic(err)
		}
		if _, err := e.Simulate(); err != nil {
			panic(err)
		}
		add(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Simulate(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	addMC("MCSimGather/n=12/k=5/lanes=4096/workers=1", mcSpec(core.Gathering, 4096, 100000), 1)
	addMC("MCSimGather/n=12/k=5/lanes=4096/workers=0", mcSpec(core.Gathering, 4096, 100000), 0)
	sStart := rigid(8, 12, 6)
	sSpec, err := mcsim.SpecFor(core.Searching, sStart, 256, 4096, 42)
	if err != nil {
		panic(err)
	}
	sEng, err := mcsim.New(sSpec, 1)
	if err != nil {
		panic(err)
	}
	if _, err := sEng.Simulate(); err != nil {
		panic(err)
	}
	add("MCSimSearch/n=12/k=6/lanes=256/workers=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sEng.Simulate(); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("EngineGoroutineGather/n=12/k=5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := corda.FromConfig(mcStart, false)
			w.EnableMultiplicityDetection()
			e := &corda.Engine{
				World:     w,
				Algorithm: gather.Gathering{},
				Budget:    2_000_000,
				Seed:      int64(i + 1),
				Stop:      (*corda.World).Gathered,
			}
			if _, _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
			if !w.Gathered() {
				b.Fatal("engine budget exhausted")
			}
		}
	})

	return fams
}

// runFamily benchmarks one family `repeats` times and aggregates: the
// reported ns/op is the median run (robust against one-off scheduler
// hiccups), the min/max/stddev record the spread for benchdiff's
// jitter-vs-regression call. Alloc stats are taken from the median run.
func runFamily(f family, repeats int) result {
	type run struct {
		ns     float64
		iters  int
		allocs int64
		bytes  int64
	}
	runs := make([]run, 0, repeats)
	for i := 0; i < repeats; i++ {
		r := testing.Benchmark(f.fn)
		runs = append(runs, run{
			ns:     float64(r.T.Nanoseconds()) / float64(r.N),
			iters:  r.N,
			allocs: r.AllocsPerOp(),
			bytes:  r.AllocedBytesPerOp(),
		})
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].ns < runs[j].ns })
	// Lower-middle for even counts: on shared runners noise is one-sided
	// (slowdowns, not speedups), so the faster middle run is the better
	// point estimate — with -repeats 2 this reports min, not max.
	med := runs[(len(runs)-1)/2]
	mean := 0.0
	for _, r := range runs {
		mean += r.ns
	}
	mean /= float64(len(runs))
	variance := 0.0
	for _, r := range runs {
		variance += (r.ns - mean) * (r.ns - mean)
	}
	variance /= float64(len(runs))
	return result{
		Name:        f.name,
		Iterations:  med.iters,
		NsPerOp:     med.ns,
		AllocsPerOp: med.allocs,
		BytesPerOp:  med.bytes,
		Repeats:     len(runs),
		NsPerOpMin:  runs[0].ns,
		NsPerOpMax:  runs[len(runs)-1].ns,
		NsPerOpStdd: math.Sqrt(variance),
	}
}

func main() {
	date := time.Now().Format("2006-01-02")
	out := flag.String("out", "BENCH_"+date+".json", "output JSON path")
	filter := flag.String("filter", "", "only run families whose name contains this substring")
	repeats := flag.Int("repeats", 3, "independent runs per family (median reported; min/max/stddev recorded for benchdiff's noise gate)")
	flag.Parse()
	if *repeats < 1 {
		*repeats = 1
	}

	rep := report{
		Date:      date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Repeats:   *repeats,
	}
	for _, f := range families() {
		if *filter != "" && !strings.Contains(f.name, *filter) {
			continue
		}
		res := runFamily(f, *repeats)
		rep.Benchmarks = append(rep.Benchmarks, res)
		fmt.Printf("%-32s %12.1f ns/op %8d allocs/op %10d B/op  (±%.0f over %d runs)\n",
			res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, res.NsPerOpStdd, res.Repeats)
	}

	// Reference tree-level counters (skipped under -filter, which is
	// used for quick timing passes).
	if *filter == "" {
		for _, tc := range []struct{ n, k int }{{7, 4}, {8, 5}, {9, 4}} {
			s := feasibility.NewSolver(tc.n, tc.k)
			s.Workers = 1
			res, err := s.Solve()
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			sc := solverCounters{
				Case:              fmt.Sprintf("n=%d/k=%d", tc.n, tc.k),
				TablesExplored:    res.TablesExplored,
				TablesMemoHit:     res.TablesMemoHit,
				BranchesDominated: res.BranchesDominated,
				BranchesReused:    res.BranchesReused,
				StatesReexpanded:  res.StatesReexpanded,
			}
			rep.SolverCounters = append(rep.SolverCounters, sc)
			fmt.Printf("counters %-12s tables=%d memoHit=%d dominated=%d reused=%d reexpanded=%d\n",
				sc.Case, sc.TablesExplored, sc.TablesMemoHit, sc.BranchesDominated, sc.BranchesReused, sc.StatesReexpanded)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	// Temp-file + rename: a crash (or full disk) mid-write must never
	// leave a truncated report where benchdiff — or a later bench run's
	// baseline lookup — would read it as the real thing.
	if err := writeFileAtomic(*out, buf); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}

func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
