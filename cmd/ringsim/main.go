// Command ringsim runs one of the paper's three tasks on an anonymous
// ring and streams the execution trace.
//
// Usage:
//
//	ringsim -task gathering -n 12 -k 5 -seed 7 [-async] [-quiet]
//	ringsim -task searching -n 12 -k 6 -moves 40
//
// The starting configuration is a seeded random rigid exclusive
// configuration. For the perpetual tasks the run stops after -moves
// moves; gathering stops when gathered.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"ringrobots"
	"ringrobots/internal/corda"
	"ringrobots/internal/search"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ringsim: ")
	var (
		taskName = flag.String("task", "gathering", "task: exploration | searching | gathering")
		n        = flag.Int("n", 12, "ring size")
		k        = flag.Int("k", 5, "number of robots")
		seed     = flag.Int64("seed", 1, "random seed (initial configuration and async adversary)")
		moves    = flag.Int("moves", 60, "move budget for perpetual tasks")
		async    = flag.Bool("async", false, "use the fully asynchronous adversary instead of round-robin")
		quiet    = flag.Bool("quiet", false, "suppress the per-move trace")
	)
	flag.Parse()

	var task ringrobots.Task
	switch *taskName {
	case "exploration":
		task = ringrobots.Exploration
	case "searching":
		task = ringrobots.Searching
	case "gathering":
		task = ringrobots.Gathering
	default:
		log.Fatalf("unknown task %q", *taskName)
	}

	alg, err := ringrobots.NewAlgorithm(task, *n, *k)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	start, err := ringrobots.RandomRigidConfig(rng, *n, *k)
	if err != nil {
		log.Fatal(err)
	}
	world, err := ringrobots.NewWorld(task, start)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("task=%s algorithm=%s n=%d k=%d\n", task, alg.Name(), *n, *k)
	fmt.Printf("start: %v\n", start)

	var cont *search.Contamination
	if task == ringrobots.Searching {
		cont = ringrobots.NewContamination(world)
	}
	exp := ringrobots.NewExplorationTracker(world)

	printer := &tracePrinter{world: world, cont: cont, quiet: *quiet}
	budget := 1000 * *n * *k

	if *async {
		r := ringrobots.NewAsyncRunner(world, alg, ringrobots.NewRandomAsyncAdversary(*seed, 0.3))
		if cont != nil {
			r.Observe(cont) // before the printer so printed counts are current
		}
		r.Observe(exp)
		r.Observe(printer)
		stop := stopCondition(task, world, printer, *moves)
		if _, err := r.RunUntil(stop, budget); err != nil {
			log.Fatal(err)
		}
	} else {
		r := ringrobots.NewRunner(world, alg)
		if cont != nil {
			r.Observe(cont)
		}
		r.Observe(exp)
		r.Observe(printer)
		stop := stopCondition(task, world, printer, *moves)
		if _, err := r.RunUntil(stop, budget); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("final: %v\n", world.Config())
	fmt.Printf("moves: %d\n", printer.moves)
	cov := exp.CoverageByRobot()
	fmt.Printf("coverage per robot (distinct nodes visited): %v\n", cov)
	if cont != nil {
		fmt.Printf("clear edges: %d/%d, all-clear events: %d\n", cont.ClearCount(), *n, cont.AllClearEvents())
	}
	if task == ringrobots.Gathering && !world.Gathered() {
		fmt.Println("warning: budget exhausted before gathering")
		os.Exit(1)
	}
}

func stopCondition(task ringrobots.Task, w *ringrobots.World, p *tracePrinter, moveBudget int) func(*ringrobots.World) bool {
	if task == ringrobots.Gathering {
		return (*ringrobots.World).Gathered
	}
	return func(*ringrobots.World) bool { return p.moves >= moveBudget }
}

// tracePrinter prints each executed move with the resulting configuration.
type tracePrinter struct {
	world *ringrobots.World
	cont  *search.Contamination
	quiet bool
	moves int
}

func (t *tracePrinter) ObserveMove(ev corda.MoveEvent, w *corda.World) {
	t.moves++
	if t.quiet {
		return
	}
	line := fmt.Sprintf("move %3d: robot@%d → %d   config %v", t.moves, ev.From, ev.To, w.Config().Nodes())
	if t.cont != nil {
		line += fmt.Sprintf("   clear %d/%d", t.cont.ClearCount(), w.N())
	}
	fmt.Println(line)
}
