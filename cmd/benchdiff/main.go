// Command benchdiff compares two BENCH_<date>.json reports produced by
// cmd/bench and prints per-benchmark ns/op and allocs/op deltas, so the
// performance trajectory across PRs is a one-command diff:
//
//	go run ./cmd/benchdiff BENCH_2026-07-29.json BENCH_2026-07-30.json
//
// Benchmarks present in only one report are listed as added/removed.
// The exit status is the regression gate: benchdiff exits nonzero when
// any benchmark common to both reports slowed down by more than
// -threshold (default 2×) in ns/op, which CI runs as a soft gate
// (reported, not blocking — machine noise on shared runners can exceed
// 2× without a real regression).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	NumCPU     int      `json:"num_cpu"`
	Benchmarks []result `json:"benchmarks"`
}

func load(path string) (report, error) {
	var rep report
	buf, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func main() {
	threshold := flag.Float64("threshold", 2.0, "fail on ns/op regressions beyond this factor")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 2.0] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	oldBy := make(map[string]result, len(oldRep.Benchmarks))
	for _, r := range oldRep.Benchmarks {
		oldBy[r.Name] = r
	}

	fmt.Printf("benchdiff %s (%s) -> %s (%s)\n", flag.Arg(0), oldRep.Date, flag.Arg(1), newRep.Date)
	fmt.Printf("%-42s %14s %14s %8s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "ratio", "old all/op", "new all/op")
	regressions := 0
	for _, nw := range newRep.Benchmarks {
		old, ok := oldBy[nw.Name]
		if !ok {
			fmt.Printf("%-42s %14s %14.1f %8s %9s %9d  (added)\n", nw.Name, "-", nw.NsPerOp, "-", "-", nw.AllocsPerOp)
			continue
		}
		delete(oldBy, nw.Name)
		ratio := 0.0
		if old.NsPerOp > 0 {
			ratio = nw.NsPerOp / old.NsPerOp
		}
		flagStr := ""
		if ratio > *threshold {
			flagStr = "  << REGRESSION"
			regressions++
		}
		fmt.Printf("%-42s %14.1f %14.1f %7.2fx %9d %9d%s\n",
			nw.Name, old.NsPerOp, nw.NsPerOp, ratio, old.AllocsPerOp, nw.AllocsPerOp, flagStr)
	}
	removed := make([]string, 0, len(oldBy))
	for name := range oldBy {
		removed = append(removed, name)
	}
	sort.Strings(removed)
	for _, name := range removed {
		old := oldBy[name]
		fmt.Printf("%-42s %14.1f %14s %8s %9d %9s  (removed)\n", name, old.NsPerOp, "-", "-", old.AllocsPerOp, "-")
	}
	if regressions > 0 {
		fmt.Printf("%d benchmark(s) regressed beyond %.2fx\n", regressions, *threshold)
		os.Exit(1)
	}
	fmt.Println("no regressions beyond threshold")
}
