// Command benchdiff compares two BENCH_<date>.json reports produced by
// cmd/bench and prints per-benchmark ns/op and allocs/op deltas, so the
// performance trajectory across PRs is a one-command diff:
//
//	go run ./cmd/benchdiff BENCH_2026-07-29.json BENCH_2026-07-30.json
//
// Benchmarks present in only one report are listed as added/removed.
// The exit status is the regression gate: benchdiff exits nonzero when
// any benchmark common to both reports slowed down by more than
// -threshold (default 2×) in ns/op. The gate is noise-aware: when both
// reports carry repeat-run spreads (cmd/bench -repeats ≥ 2, recorded as
// ns_per_op_min/max), a slowdown only counts when the runs' ranges are
// disjoint beyond the threshold — the new benchmark's *fastest* run
// must exceed threshold × the old benchmark's *slowest* run. Point
// ratios that exceed the threshold inside overlapping noise bands are
// reported as jitter, not failures. Reports without spread data fall
// back to comparing point estimates, preserving the old behavior.
// Sub-microsecond rows (below -min-ns, default 1000) are reported but
// never gated: a 2.7 ns cached lookup swings past any ratio threshold
// on a CPU frequency shift alone.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Repeats     int     `json:"repeats,omitempty"`
	NsPerOpMin  float64 `json:"ns_per_op_min,omitempty"`
	NsPerOpMax  float64 `json:"ns_per_op_max,omitempty"`
	NsPerOpStdd float64 `json:"ns_per_op_stddev,omitempty"`
}

type report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	NumCPU     int      `json:"num_cpu"`
	Repeats    int      `json:"repeats,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func load(path string) (report, error) {
	var rep report
	buf, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if len(buf) == 0 {
		return rep, fmt.Errorf("%s: empty report (truncated write?)", path)
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return rep, fmt.Errorf("%s: corrupt report: %w", path, err)
	}
	// A parseable report with no benchmark rows is not a baseline to
	// gate against — diffing it would "pass" with every row added or
	// removed. Most likely a truncated or hand-mangled file that still
	// happened to parse.
	if len(rep.Benchmarks) == 0 {
		return rep, fmt.Errorf("%s: report contains no benchmarks (truncated or not a cmd/bench report)", path)
	}
	return rep, nil
}

// spread returns the benchmark's ns/op range, degenerating to the point
// estimate for single-run (or pre-variance-format) results.
func spread(r result) (lo, hi float64) {
	if r.Repeats >= 2 && r.NsPerOpMin > 0 && r.NsPerOpMax >= r.NsPerOpMin {
		return r.NsPerOpMin, r.NsPerOpMax
	}
	return r.NsPerOp, r.NsPerOp
}

func main() {
	threshold := flag.Float64("threshold", 2.0, "fail on ns/op regressions beyond this factor")
	minNs := flag.Float64("min-ns", 1000, "report but never fail benchmarks whose old ns/op is below this floor (sub-microsecond rows are noise-dominated)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 2.0] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	oldBy := make(map[string]result, len(oldRep.Benchmarks))
	for _, r := range oldRep.Benchmarks {
		oldBy[r.Name] = r
	}

	fmt.Printf("benchdiff %s (%s) -> %s (%s)\n", flag.Arg(0), oldRep.Date, flag.Arg(1), newRep.Date)
	fmt.Printf("%-52s %14s %14s %8s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "ratio", "old all/op", "new all/op")
	regressions := 0
	jitter := 0
	floored := 0
	for _, nw := range newRep.Benchmarks {
		old, ok := oldBy[nw.Name]
		if !ok {
			fmt.Printf("%-52s %14s %14.1f %8s %9s %9d  (added)\n", nw.Name, "-", nw.NsPerOp, "-", "-", nw.AllocsPerOp)
			continue
		}
		delete(oldBy, nw.Name)
		ratio := 0.0
		if old.NsPerOp > 0 {
			ratio = nw.NsPerOp / old.NsPerOp
		}
		flagStr := ""
		if ratio > *threshold {
			// Conservative ratio: fastest new run vs slowest old run.
			// Only a slowdown that survives both spreads is a regression.
			_, oldHi := spread(old)
			newLo, _ := spread(nw)
			switch {
			case old.NsPerOp < *minNs && nw.NsPerOp < *minNs:
				// Nanosecond-scale rows (a cached lookup, a bitmask op)
				// swing past any ratio threshold on CPU frequency or
				// noisy-neighbor shifts alone; report, never gate. Both
				// sides must sit below the floor — a sub-floor row that
				// regressed past it is a real slowdown and still gates.
				flagStr = "  (below gate floor)"
				floored++
			case oldHi > 0 && newLo/oldHi > *threshold:
				flagStr = "  << REGRESSION"
				regressions++
			default:
				flagStr = "  (jitter: spreads overlap)"
				jitter++
			}
		}
		fmt.Printf("%-52s %14.1f %14.1f %7.2fx %9d %9d%s\n",
			nw.Name, old.NsPerOp, nw.NsPerOp, ratio, old.AllocsPerOp, nw.AllocsPerOp, flagStr)
	}
	removed := make([]string, 0, len(oldBy))
	for name := range oldBy {
		removed = append(removed, name)
	}
	sort.Strings(removed)
	for _, name := range removed {
		old := oldBy[name]
		fmt.Printf("%-52s %14.1f %14s %8s %9d %9s  (removed)\n", name, old.NsPerOp, "-", "-", old.AllocsPerOp, "-")
	}
	if jitter > 0 {
		fmt.Printf("%d benchmark(s) beyond %.2fx on point estimates but within run spread (not failed)\n", jitter, *threshold)
	}
	if floored > 0 {
		fmt.Printf("%d sub-%.0fns benchmark(s) beyond %.2fx excluded by the gate floor (not failed)\n", floored, *minNs, *threshold)
	}
	if regressions > 0 {
		fmt.Printf("%d benchmark(s) regressed beyond %.2fx\n", regressions, *threshold)
		os.Exit(1)
	}
	fmt.Println("no regressions beyond threshold")
}
