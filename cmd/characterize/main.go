// Command characterize prints the paper's almost-complete
// characterization of exclusive perpetual graph searching on rings
// (which (n, k) are solvable, impossible, or open) and the gathering
// range of Theorem 8 — the reproduction of the paper's headline
// contribution table.
//
// Usage:
//
//	characterize          # searching matrix for n ≤ 20
//	characterize -max 30  # larger grid
//	characterize -task gathering
package main

import (
	"flag"
	"fmt"
	"log"

	"ringrobots"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")
	var (
		maxN = flag.Int("max", 20, "largest ring size")
		task = flag.String("task", "searching", "searching | gathering")
	)
	flag.Parse()

	characterize := ringrobots.CharacterizeSearching
	if *task == "gathering" {
		characterize = ringrobots.CharacterizeGathering
	} else if *task != "searching" {
		log.Fatalf("unknown task %q", *task)
	}

	fmt.Printf("exclusive perpetual %s on n-node rings with k robots\n", *task)
	fmt.Println("  S solvable   X impossible   ? open   - no rigid start   . degenerate")
	fmt.Print("      k:")
	for k := 1; k <= *maxN; k++ {
		fmt.Printf("%3d", k)
	}
	fmt.Println()
	for n := 3; n <= *maxN; n++ {
		fmt.Printf("  n=%3d ", n)
		for k := 1; k <= n; k++ {
			v, _ := characterize(n, k)
			fmt.Printf("  %s", symbol(v))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("selected verdicts with reasons:")
	for _, pair := range [][2]int{{12, 2}, {9, 5}, {12, 4}, {10, 5}, {12, 6}, {12, 9}, {12, 10}, {12, 11}} {
		v, reason := characterize(pair[0], pair[1])
		fmt.Printf("  n=%-3d k=%-3d %-14s %s\n", pair[0], pair[1], v, reason)
	}
}

func symbol(v ringrobots.Verdict) string {
	switch v {
	case ringrobots.Solvable:
		return "S"
	case ringrobots.Impossible:
		return "X"
	case ringrobots.Open:
		return "?"
	case ringrobots.NoRigidStart:
		return "-"
	}
	return "."
}
