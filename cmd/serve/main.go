// Command serve runs the long-running verdict service: an HTTP/JSON
// API answering feasibility/impossibility queries for arbitrary
// (k, n), backed by a journal-persisted content-addressed verdict
// store, single-flight deduplication, a bounded worker pool with
// cheapest-first admission, and graceful degradation — budget or
// deadline exhaustion and SIGTERM all suspend in-flight solves to
// journaled checkpoints that later identical requests resume.
//
// Usage:
//
//	serve -addr :8080 -store verdicts.log
//	curl 'localhost:8080/solve?n=9&k=5'
//	curl localhost:8080/metricz
//
// SIGINT/SIGTERM drain: new requests get 503, queued ones a retryable
// 503, in-flight solves suspend through the checkpoint path and answer
// 202; the process exits 0 once every accepted request was answered.
//
// Storage failure (ENOSPC, I/O errors, a failed fsync) flips the
// service to sticky degraded read-only mode rather than killing it:
// cached verdicts still answer 200, anything needing a store write gets
// 503 with Retry-After, and /healthz reports "degraded: <reason>" until
// an operator fixes the storage and restarts. A store journal that was
// corrupted while the service was down refuses to open; run
// `drain -fsck -repair -journal <store>` to quarantine the damage and
// recover every intact record before restarting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ringrobots/internal/journal"
	"ringrobots/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	store := flag.String("store", "", "verdict-store journal path (required)")
	workers := flag.Int("workers", 2, "concurrent solves")
	queueCap := flag.Int("queue", 64, "admission queue capacity")
	solveWorkers := flag.Int("solve-workers", 1, "solver goroutines per solve (1 = deterministic resume chains)")
	defaultBudget := flag.Int("default-budget", 50_000_000, "per-request expansion budget when the request sets none")
	maxBudget := flag.Int("max-budget", 500_000_000, "cap on the per-request expansion budget")
	every := flag.Int("checkpoint-every", 64, "journal a checkpoint every this many branches (0 disables periodic checkpoints)")
	compactAbove := flag.Int("compact-above", 256, "compact the store journal above this many records (0 disables)")
	sync := flag.Bool("sync", true, "fsync the store journal after every append")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight solves on shutdown")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	cfg := service.Config{
		StorePath:       *store,
		Workers:         *workers,
		QueueCap:        *queueCap,
		SolveWorkers:    *solveWorkers,
		DefaultBudget:   *defaultBudget,
		MaxBudget:       *maxBudget,
		CheckpointEvery: *every,
		CompactAbove:    *compactAbove,
		Sync:            *sync,
		Logger:          logger,
	}
	// Fail fast with every problem at once, not first-error-wins.
	var errs []error
	if err := cfg.Validate(); err != nil {
		errs = append(errs, err)
	}
	if *drainTimeout <= 0 {
		errs = append(errs, fmt.Errorf("-drain-timeout %v must be positive", *drainTimeout))
	}
	if len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "serve: invalid flags:\n%v\n", errors.Join(errs...))
		os.Exit(1)
	}

	svc, err := service.New(cfg)
	if err != nil {
		if errors.Is(err, journal.ErrCorrupt) {
			logger.Error("startup failed: store journal is corrupt mid-file; refusing to truncate recoverable records",
				"err", err, "hint", fmt.Sprintf("run `drain -fsck -repair -journal %s` to quarantine the damage and recover, then restart", *store))
		} else {
			logger.Error("startup failed", "err", err)
		}
		os.Exit(1)
	}

	server := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- server.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "store", *store)

	select {
	case err := <-serveErr:
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("signal received; draining", "timeout", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the service first so every pending Solve call returns (the
	// in-flight HTTP handlers then finish writing their responses),
	// then close the listener and wait for those handlers.
	code := 0
	if err := svc.Shutdown(drainCtx); err != nil {
		logger.Error("service drain failed", "err", err)
		code = 1
	}
	if err := server.Shutdown(drainCtx); err != nil {
		logger.Error("http drain failed", "err", err)
		code = 1
	}
	os.Exit(code)
}
