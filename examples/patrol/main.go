// Patrol: perpetual graph searching as a patrolling scenario.
//
// A museum's circular corridor (the ring) must be swept continuously:
// an intruder could recontaminate any section the guards stop watching.
// The guards are min-CORDA robots — no radios, no compasses, no memory —
// running the paper's Ring Clearing algorithm (Theorem 6). The example
// shows the two-phase structure: Align funnels an arbitrary rigid start
// into C*, then the A-a → … → A-e caterpillar cycle sweeps the corridor
// forever; we recontaminate everything twice mid-run to show the sweep
// recovers.
//
//	go run ./examples/patrol
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ringrobots"
)

func main() {
	const n, k = 13, 6

	rng := rand.New(rand.NewSource(7))
	start, err := ringrobots.RandomRigidConfig(rng, n, k)
	if err != nil {
		log.Fatal(err)
	}
	alg, err := ringrobots.NewAlgorithm(ringrobots.Searching, n, k)
	if err != nil {
		log.Fatal(err)
	}
	world, err := ringrobots.NewWorld(ringrobots.Searching, start)
	if err != nil {
		log.Fatal(err)
	}

	contamination := ringrobots.NewContamination(world)
	runner := ringrobots.NewRunner(world, alg)
	runner.Observe(contamination)

	fmt.Printf("corridor with %d sections, %d guards, start %v\n", n, k, start.Nodes())

	sweeps := 0
	moves := 0
	intrusions := []int{40, 90} // recontaminate everything at these moves
	for moves < 140 {
		moved, err := runner.Step()
		if err != nil {
			log.Fatal(err)
		}
		if !moved {
			continue
		}
		moves++
		for _, at := range intrusions {
			if moves == at {
				contamination.Reset(world)
				fmt.Printf("move %3d: INTRUSION — all %d sections recontaminated\n", moves, n)
			}
		}
		if contamination.AllClear() && contamination.AllClearEvents() > sweeps {
			sweeps = contamination.AllClearEvents()
			fmt.Printf("move %3d: corridor fully swept (sweep #%d), guards at %v\n",
				moves, sweeps, world.Config().Nodes())
		}
	}
	fmt.Printf("done: %d complete sweeps in %d moves; %d/%d sections currently clear\n",
		sweeps, moves, contamination.ClearCount(), n)
}
