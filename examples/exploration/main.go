// Exploration: every robot visits every node, forever, without any
// coordination primitives.
//
// A fleet of inspection robots must each examine every segment of a
// circular pipeline infinitely often (so that every robot's distinct
// sensor passes everywhere). The robots are anonymous, oblivious and
// disoriented; the paper's NminusThree algorithm (Theorem 7, k = n−3)
// achieves this with the ring almost saturated with robots. The example
// reports per-robot coverage as the caterpillar formation rotates.
//
//	go run ./examples/exploration
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ringrobots"
)

func main() {
	const n = 12
	const k = n - 3

	rng := rand.New(rand.NewSource(42))
	start, err := ringrobots.RandomRigidConfig(rng, n, k)
	if err != nil {
		log.Fatal(err)
	}
	alg, err := ringrobots.NewAlgorithm(ringrobots.Exploration, n, k)
	if err != nil {
		log.Fatal(err)
	}
	world, err := ringrobots.NewWorld(ringrobots.Exploration, start)
	if err != nil {
		log.Fatal(err)
	}

	tracker := ringrobots.NewExplorationTracker(world)
	runner := ringrobots.NewRunner(world, alg)
	runner.Observe(tracker)

	fmt.Printf("pipeline with %d segments, %d inspection robots (k = n-3), start %v\n", n, k, start.Nodes())

	milestone := 1
	moves := 0
	for !tracker.FullyExplored(2) {
		moved, err := runner.Step()
		if err != nil {
			log.Fatal(err)
		}
		if moved {
			moves++
		}
		if tracker.FullyExplored(milestone) {
			fmt.Printf("after %4d moves: every robot has visited every node >= %d time(s)\n", moves, milestone)
			milestone++
		}
		if moves > 100_000 {
			log.Fatal("budget exhausted")
		}
	}
	fmt.Printf("coverage per robot (distinct nodes): %v\n", tracker.CoverageByRobot())
	fmt.Printf("minimum visits over all (robot, node) pairs: %d\n", tracker.MinVisits())
}
