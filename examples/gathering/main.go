// Gathering under adversity: rendezvous against a hostile scheduler and
// on a real concurrent runtime.
//
// Five delivery drones parked on a circular taxiway must converge on a
// single bay. They cannot talk, have no ids, no memory and no compass,
// and an adversarial dispatcher delays their actions arbitrarily —
// drones move on positions observed long ago. The example runs the
// paper's gathering algorithm (Theorem 8) three ways from the same rigid
// start: atomic round-robin scheduling, a pending-move-holding random
// adversary, and the library's goroutine-per-robot CSP engine.
//
//	go run ./examples/gathering
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ringrobots"
)

const (
	n = 15
	k = 5
)

func main() {
	rng := rand.New(rand.NewSource(99))
	start, err := ringrobots.RandomRigidConfig(rng, n, k)
	if err != nil {
		log.Fatal(err)
	}
	alg, err := ringrobots.NewAlgorithm(ringrobots.Gathering, n, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("taxiway with %d bays, %d drones, start %v\n", n, k, start.Nodes())

	// 1. Atomic round-robin (the verification baseline).
	w1, err := ringrobots.NewWorld(ringrobots.Gathering, start)
	if err != nil {
		log.Fatal(err)
	}
	r1 := ringrobots.NewRunner(w1, alg)
	if _, err := r1.RunUntil((*ringrobots.World).Gathered, 200_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round-robin:        gathered at bay %2d after %3d moves\n", w1.Position(0), r1.Moves())

	// 2. Fully asynchronous adversary holding moves pending 40%% of the
	// time: drones execute decisions computed on stale observations.
	w2, err := ringrobots.NewWorld(ringrobots.Gathering, start)
	if err != nil {
		log.Fatal(err)
	}
	r2 := ringrobots.NewAsyncRunner(w2, alg, ringrobots.NewRandomAsyncAdversary(5, 0.4))
	if _, err := r2.RunUntil((*ringrobots.World).Gathered, 2_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("async adversary:    gathered at bay %2d after %3d moves (%d actions)\n",
		w2.Position(0), r2.Moves(), r2.Steps())

	// 3. One goroutine per drone against a coordinator goroutine: real
	// interleaving from the Go scheduler.
	w3, err := ringrobots.NewWorld(ringrobots.Gathering, start)
	if err != nil {
		log.Fatal(err)
	}
	engine := &ringrobots.Engine{
		World:     w3,
		Algorithm: alg,
		Budget:    2_000_000,
		Seed:      11,
		Stop:      (*ringrobots.World).Gathered,
	}
	looks, moves, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("goroutine engine:   gathered at bay %2d after %3d moves (%d looks)\n",
		w3.Position(0), moves, looks)

	if !w1.Gathered() || !w2.Gathered() || !w3.Gathered() {
		log.Fatal("some execution failed to gather")
	}
	fmt.Println("all three executions gathered — the algorithm is scheduler-independent")
}
