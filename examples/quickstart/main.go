// Quickstart: gather six oblivious robots on a 14-node anonymous ring.
//
// This is the smallest complete use of the library: draw a rigid
// starting configuration, build the task's world, run the paper's
// unified algorithm, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ringrobots"
)

func main() {
	const n, k = 14, 6

	rng := rand.New(rand.NewSource(2013))
	start, err := ringrobots.RandomRigidConfig(rng, n, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("start: %v\n", start)

	alg, err := ringrobots.NewAlgorithm(ringrobots.Gathering, n, k)
	if err != nil {
		log.Fatal(err)
	}
	world, err := ringrobots.NewWorld(ringrobots.Gathering, start)
	if err != nil {
		log.Fatal(err)
	}

	runner := ringrobots.NewRunner(world, alg)
	if _, err := runner.RunUntil((*ringrobots.World).Gathered, 100_000); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("gathered after %d moves at node %d: %d robots stacked\n",
		runner.Moves(), world.Position(0), world.CountAt(world.Position(0)))
}
