// Benchmarks, one family per reproduction experiment (see DESIGN.md's
// per-experiment index). Run with:
//
//	go test -bench=. -benchmem .
package ringrobots

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ringrobots/internal/align"
	"ringrobots/internal/config"
	"ringrobots/internal/corda"
	"ringrobots/internal/core"
	"ringrobots/internal/enumerate"
	"ringrobots/internal/feasibility"
	"ringrobots/internal/gather"
	"ringrobots/internal/mcsim"
	"ringrobots/internal/search"
)

// --- E1: Algorithm Align ---------------------------------------------------

func BenchmarkAlignPlanner(b *testing.B) {
	for _, tc := range []struct{ n, k int }{{12, 5}, {24, 8}, {48, 12}, {96, 16}} {
		b.Run(fmt.Sprintf("n=%d/k=%d", tc.n, tc.k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			start, err := enumerate.RandomRigid(rng, tc.n, tc.k, 100000)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := start
				for !c.IsCStar() {
					p, err := align.ComputePlan(c)
					if err != nil {
						b.Fatal(err)
					}
					c, err = align.Apply(c, p)
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkAlignLocalDecision(b *testing.B) {
	// Cost of one robot's Look+Compute in the Align phase.
	c, err := enumerate.RandomRigid(rand.New(rand.NewSource(2)), 32, 10, 100000)
	if err != nil {
		b.Fatal(err)
	}
	w := corda.FromConfig(c, true)
	snap, _ := w.Snapshot(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		align.DecideFromSnapshot(snap)
	}
}

// --- E2: configuration algebra (the substrate of every lemma check) --------

func BenchmarkSupermin(b *testing.B) {
	for _, tc := range []struct{ n, k int }{{16, 8}, {64, 16}, {256, 32}} {
		b.Run(fmt.Sprintf("n=%d/k=%d", tc.n, tc.k), func(b *testing.B) {
			c, err := enumerate.RandomRigid(rand.New(rand.NewSource(3)), tc.n, tc.k, 100000)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Supermin()
			}
		})
	}
}

// BenchmarkSuperminCold measures the one-shot cost of the canonical
// pass (Booth + KMP + key) on a fresh Config each iteration — the honest
// kernel cost, with the memoization benefit excluded. Rebuild overhead
// (BenchmarkConfigRebuild) is included and can be subtracted.
func BenchmarkSuperminCold(b *testing.B) {
	for _, tc := range []struct{ n, k int }{{16, 8}, {64, 16}, {256, 32}} {
		b.Run(fmt.Sprintf("n=%d/k=%d", tc.n, tc.k), func(b *testing.B) {
			c, err := enumerate.RandomRigid(rand.New(rand.NewSource(3)), tc.n, tc.k, 100000)
			if err != nil {
				b.Fatal(err)
			}
			nodes := c.Nodes()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fresh := config.MustNew(tc.n, nodes...)
				fresh.Supermin()
			}
		})
	}
}

// BenchmarkConfigRebuild isolates the construction cost paid inside
// BenchmarkSuperminCold.
func BenchmarkConfigRebuild(b *testing.B) {
	c, err := enumerate.RandomRigid(rand.New(rand.NewSource(3)), 256, 32, 100000)
	if err != nil {
		b.Fatal(err)
	}
	nodes := c.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		config.MustNew(256, nodes...)
	}
}

// BenchmarkCanonKey measures canonical-key construction on fresh
// configurations (the dedup cost in enumeration and solver seen-sets).
func BenchmarkCanonKey(b *testing.B) {
	for _, tc := range []struct{ n, k int }{{9, 4}, {64, 16}, {256, 32}} {
		b.Run(fmt.Sprintf("n=%d/k=%d", tc.n, tc.k), func(b *testing.B) {
			c, err := enumerate.RandomRigid(rand.New(rand.NewSource(9)), tc.n, tc.k, 100000)
			if err != nil {
				b.Fatal(err)
			}
			nodes := c.Nodes()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fresh := config.MustNew(tc.n, nodes...)
				fresh.CanonKey()
			}
		})
	}
}

func BenchmarkRigidityDetection(b *testing.B) {
	c, err := enumerate.RandomRigid(rand.New(rand.NewSource(4)), 128, 24, 100000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.IsRigid() {
			b.Fatal("fixture lost rigidity")
		}
	}
}

// --- E3: Figures 4–9 transition diagrams -----------------------------------

func BenchmarkTransitionDiagrams(b *testing.B) {
	for _, f := range feasibility.PaperFigures() {
		b.Run(fmt.Sprintf("fig%d_k%d_n%d", f.Figure, f.K, f.N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := feasibility.NewTransitionGraph(f.N, f.K)
				if err != nil {
					b.Fatal(err)
				}
				if len(g.Classes) != f.Classes {
					b.Fatalf("class count %d != %d", len(g.Classes), f.Classes)
				}
			}
		})
	}
}

// --- E4: impossibility game solver ------------------------------------------

func BenchmarkImpossibility(b *testing.B) {
	for _, tc := range []struct{ n, k int }{{5, 2}, {6, 3}, {7, 4}} {
		b.Run(fmt.Sprintf("k=%d_n=%d", tc.k, tc.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := feasibility.NewSolver(tc.n, tc.k).Solve()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Impossible {
					b.Fatal("expected impossibility")
				}
			}
		})
	}
}

// BenchmarkFeasibilitySolve measures full impossibility solves on the
// Theorem 5 cases, sequential (workers=1, isolating the single-thread
// interning win) and parallel (workers=GOMAXPROCS, the sharded table
// search). The incremental=off and prune=off rows keep the respective
// differential oracles' cost on record, quantifying the sibling-branch
// reuse and tree-level pruning wins over time.
func BenchmarkFeasibilitySolve(b *testing.B) {
	for _, tc := range []struct {
		n, k, workers int
		noIncremental bool
		noPrune       bool
	}{
		{7, 4, 1, false, false}, {7, 4, 0, false, false},
		{8, 5, 1, false, false}, {8, 5, 0, false, false},
		{7, 4, 1, true, false}, {8, 5, 1, true, false},
		{7, 4, 1, false, true}, {8, 5, 1, false, true},
	} {
		name := fmt.Sprintf("n=%d/k=%d/workers=%d", tc.n, tc.k, tc.workers)
		if tc.noIncremental {
			name += "/incremental=off"
		}
		if tc.noPrune {
			name += "/prune=off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := feasibility.NewSolver(tc.n, tc.k)
				s.Workers = tc.workers
				s.NoIncremental = tc.noIncremental
				s.NoPrune = tc.noPrune
				res, err := s.Solve()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Impossible {
					b.Fatal("expected impossibility")
				}
			}
		})
	}
}

// BenchmarkFeasibilityThroughput measures state-expansion throughput on
// the deep (5,9) case with a fixed 2M-expansion budget per op, the
// stable proxy for the full multi-second solve: every op performs the
// same amount of graph work regardless of verdict. The quotient=off row
// is the unquotiented differential oracle, kept on record to quantify
// the symmetry quotient's win.
func BenchmarkFeasibilityThroughput(b *testing.B) {
	for _, tc := range []struct {
		workers    int
		noQuotient bool
	}{
		{1, false}, {0, false}, {1, true},
	} {
		quot := "on"
		if tc.noQuotient {
			quot = "off"
		}
		b.Run(fmt.Sprintf("n=9/k=5/budget=2M/workers=%d/quotient=%s", tc.workers, quot), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := feasibility.NewSolver(9, 5)
				s.Workers = tc.workers
				s.MaxExpansions = 2_000_000
				s.NoQuotient = tc.noQuotient
				if _, err := s.Solve(); err != nil && !errors.Is(err, feasibility.ErrBudget) {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5: Ring Clearing ------------------------------------------------------

func BenchmarkRingClearingCycle(b *testing.B) {
	for _, tc := range []struct{ n, k int }{{11, 5}, {12, 6}, {16, 8}, {24, 12}} {
		b.Run(fmt.Sprintf("n=%d/k=%d", tc.n, tc.k), func(b *testing.B) {
			c, err := config.CStar(tc.n, tc.k)
			if err != nil {
				b.Fatal(err)
			}
			alg := search.RingClearing{}
			if err := alg.Validate(tc.n, tc.k); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := corda.FromConfig(c, true)
				r := corda.NewRunner(w, alg)
				moves := 0
				for moves < tc.n+5 { // one full A-cycle of moves
					moved, err := r.Step()
					if err != nil {
						b.Fatal(err)
					}
					if moved {
						moves++
					}
				}
			}
		})
	}
}

func BenchmarkVerifyPerpetualSearch(b *testing.B) {
	c, err := config.CStar(12, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := search.Verify(c, search.RingClearing{}, 500000)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Explored {
			b.Fatal("verification failed")
		}
	}
}

// --- E6: NminusThree ---------------------------------------------------------

func BenchmarkNminusThree(b *testing.B) {
	for _, n := range []int{10, 12, 16, 24} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			// Phase 1 from the worst spread + one phase-2 cycle.
			occupied := make([]int, 0, n-3)
			pos := 0
			for _, size := range []int{1, 2, n - 6} {
				pos++
				for j := 0; j < size; j++ {
					occupied = append(occupied, pos)
					pos++
				}
			}
			c := config.MustNew(n, occupied...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cur := c
				for steps := 0; steps < 3*n; steps++ {
					p, err := search.ComputeN3Plan(cur)
					if err != nil {
						b.Fatal(err)
					}
					cur, err = cur.Move(p.Mover, p.Target)
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- E7: gathering ------------------------------------------------------------

func BenchmarkGathering(b *testing.B) {
	for _, tc := range []struct{ n, k int }{{12, 5}, {24, 8}, {48, 10}, {96, 12}} {
		b.Run(fmt.Sprintf("n=%d/k=%d", tc.n, tc.k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			start, err := enumerate.RandomRigid(rng, tc.n, tc.k, 100000)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w, err := gather.NewWorld(start)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := gather.Run(w, 500*tc.n*tc.n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: characterization -------------------------------------------------------

func BenchmarkCharacterize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for n := 3; n <= 40; n++ {
			for k := 1; k <= n; k++ {
				CharacterizeSearching(n, k)
			}
		}
	}
}

// --- E9: engines ----------------------------------------------------------------

func BenchmarkEngineSequential(b *testing.B) {
	start, err := enumerate.RandomRigid(rand.New(rand.NewSource(6)), 16, 6, 100000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := gather.NewWorld(start)
		r := corda.NewRunner(w, gather.Gathering{})
		if _, err := r.RunUntil((*corda.World).Gathered, 100000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineAsync(b *testing.B) {
	start, err := enumerate.RandomRigid(rand.New(rand.NewSource(6)), 16, 6, 100000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := gather.NewWorld(start)
		r := corda.NewAsyncRunner(w, gather.Gathering{}, corda.NewRandomAsync(int64(i), 0.3))
		if _, err := r.RunUntil((*corda.World).Gathered, 1000000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineGoroutines(b *testing.B) {
	start, err := enumerate.RandomRigid(rand.New(rand.NewSource(6)), 16, 6, 100000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := gather.NewWorld(start)
		e := &corda.Engine{
			World:     w,
			Algorithm: gather.Gathering{},
			Budget:    2_000_000,
			Seed:      int64(i),
			Stop:      (*corda.World).Gathered,
		}
		if _, _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
		if !w.Gathered() {
			b.Fatal("engine budget exhausted")
		}
	}
}

// --- E10: batched Monte Carlo simulation (internal/mcsim) -------------------

// BenchmarkMCSimThroughput measures the batch engine's steady-state
// step rate: one op simulates a full warm batch (decision caches
// populated, zero allocations). steps/sec and samples/sec are reported
// as extra metrics; the gathering rows stop lanes at the goal, the
// searching row runs every lane to its full tick budget.
func BenchmarkMCSimThroughput(b *testing.B) {
	for _, tc := range []struct {
		name    string
		task    core.Task
		n, k    int
		samples int
		steps   int
		workers int
	}{
		{"gathering/n=12/k=5/workers=1", core.Gathering, 12, 5, 4096, 100000, 1},
		{"gathering/n=12/k=5/workers=0", core.Gathering, 12, 5, 4096, 100000, 0},
		{"searching/n=12/k=6/workers=1", core.Searching, 12, 6, 256, 4096, 1},
	} {
		b.Run(tc.name, func(b *testing.B) {
			start, err := enumerate.RandomRigid(rand.New(rand.NewSource(8)), tc.n, tc.k, 100000)
			if err != nil {
				b.Fatal(err)
			}
			spec, err := mcsim.SpecFor(tc.task, start, tc.samples, tc.steps, 42)
			if err != nil {
				b.Fatal(err)
			}
			e, err := mcsim.New(spec, tc.workers)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := e.Simulate() // warm the decision cache
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep, err = e.Simulate(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(rep.Steps)*float64(b.N)/sec, "steps/sec")
				b.ReportMetric(float64(rep.Samples)*float64(b.N)/sec, "samples/sec")
			}
		})
	}
}

// BenchmarkMCSimVsGoroutineEngine is the speedup pairing behind the
// batch engine: one op completes one gathered (n=12, k=5) sample, via
// the batch engine (amortized over a 1024-lane batch) or via the
// goroutine-per-robot CSP Engine. The ns/op ratio of the two rows is
// the per-sample speedup.
func BenchmarkMCSimVsGoroutineEngine(b *testing.B) {
	start, err := enumerate.RandomRigid(rand.New(rand.NewSource(8)), 12, 5, 100000)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("batch/per-sample", func(b *testing.B) {
		spec, err := mcsim.SpecFor(core.Gathering, start, 1024, 100000, 42)
		if err != nil {
			b.Fatal(err)
		}
		e, err := mcsim.New(spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Simulate(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		done := 0
		for done < b.N {
			rep, err := e.Simulate()
			if err != nil {
				b.Fatal(err)
			}
			if rep.Gathered() != rep.Samples {
				b.Fatal("lane failed to gather")
			}
			done += rep.Samples
		}
	})
	b.Run("goroutines/per-sample", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := corda.FromConfig(start, false)
			w.EnableMultiplicityDetection()
			e := &corda.Engine{
				World:     w,
				Algorithm: gather.Gathering{},
				Budget:    2_000_000,
				Seed:      int64(i + 1),
				Stop:      (*corda.World).Gathered,
			}
			if _, _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
			if !w.Gathered() {
				b.Fatal("engine budget exhausted")
			}
		}
	})
}

// --- snapshot construction (shared cost of every Look in every experiment) ---

func BenchmarkSnapshot(b *testing.B) {
	for _, tc := range []struct{ n, k int }{{16, 6}, {64, 16}, {256, 24}} {
		b.Run(fmt.Sprintf("n=%d/k=%d", tc.n, tc.k), func(b *testing.B) {
			c, err := enumerate.RandomRigid(rand.New(rand.NewSource(7)), tc.n, tc.k, 100000)
			if err != nil {
				b.Fatal(err)
			}
			w := corda.FromConfig(c, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Snapshot(i % tc.k)
			}
		})
	}
}
